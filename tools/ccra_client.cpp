//===- tools/ccra_client.cpp - Allocation service client ------------------===//
//
// Command-line client for ccra_serve: submit one allocation, fetch server
// stats, or drive the mixed smoke burst used by CI.
//
//   ccra_client [--unix=PATH | --port=N] [--timeout=MS] <command> [args]
//
//   commands:
//     alloc [--allocator=NAME] [--config=Ri,Rf,Ei,Ef] [--static]
//           [--deadline-ms=N] [--emit-ir] [--wire=v1|v2] <input>
//        Allocate one module (IR file, '-' for stdin, or a built-in proxy
//        name) on the server; print the cost breakdown (and the allocated
//        IR with --emit-ir). --wire=v2 ships the module in the binary
//        codec (an AllocRequestV2 frame) when the server's hello
//        advertises codec-max >= 2, falling back to textual v1 with a
//        notice otherwise; responses are identical either way.
//     stats
//        Print the server-wide telemetry snapshot (JSON).
//     burst [--requests=N] [--clients=N] [--malformed-every=N]
//           [--deadline-every=N] [--zipf] [--wire=v2]
//        CI smoke: N requests (default 200) across C concurrent client
//        connections (default 4), cycling the built-in proxies and
//        allocator configurations, interleaving malformed frames (every
//        Nth request opens a throwaway connection and writes garbage;
//        default 17) and tiny deadlines (default 31). Every successful
//        response is verified BIT-IDENTICAL to an in-process allocation of
//        the same module/options. Exits non-zero on any mismatch, crash,
//        or transport error on a valid request.
//        --zipf is the cache smoke: cases are sampled from a Zipfian
//        distribution (skew 1.1) instead of round-robin, and when the
//        server's hello advertises the v1.1 cache capability the burst
//        additionally requires a nonzero cache hit count from STATS (the
//        bit-identity check above then covers cached responses too). A
//        v1.0 server without the capability fields just skips the
//        hit-rate assertion — the mixed-version path.
//     --version
//        Print build info and exit.
//
//===----------------------------------------------------------------------===//

#include "core/EngineBuilder.h"
#include "ir/IRBinary.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "service/Client.h"
#include "support/BuildInfo.h"
#include "support/Rng.h"
#include "workloads/SpecProxies.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace ccra;

namespace {

struct Endpoint {
  std::string UnixPath;
  int Port = -1;
  int TimeoutMs = 30000;

  bool connect(ServiceClient &C, std::string *Err) const {
    C.setTimeoutMs(TimeoutMs);
    if (!UnixPath.empty())
      return C.connectUnix(UnixPath, Err);
    return C.connectTcp(Port, Err);
  }
};

void printUsage() {
  std::cerr
      << "usage: ccra_client [--unix=PATH | --port=N] [--timeout=MS] "
         "<command>\n"
         "  commands: alloc [opts] <input> | stats | burst [opts] | "
         "--version\n"
         "  alloc opts: --allocator=NAME --config=Ri,Rf,Ei,Ef --static\n"
         "              --deadline-ms=N --emit-ir --wire=v1|v2\n"
         "  burst opts: --requests=N --clients=N --malformed-every=N\n"
         "              --deadline-every=N --zipf --wire=v1|v2\n";
}

bool allocatorOptionsFor(const std::string &Name, AllocatorOptions &Opts) {
  if (Name == "base")
    Opts = baseChaitinOptions();
  else if (Name == "optimistic")
    Opts = optimisticOptions();
  else if (Name == "improved")
    Opts = improvedOptions();
  else if (Name == "improved-opt")
    Opts = improvedOptimisticOptions();
  else if (Name == "priority")
    Opts = priorityOptions();
  else if (Name == "cbh")
    Opts = cbhOptions();
  else
    return false;
  return true;
}

std::unique_ptr<Module> loadInput(const std::string &Input) {
  const auto &Proxies = specProxyNames();
  if (std::find(Proxies.begin(), Proxies.end(), Input) != Proxies.end())
    return buildSpecProxy(Input);

  std::string Text;
  if (Input == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Text = Buffer.str();
  } else {
    std::ifstream File(Input);
    if (!File) {
      std::cerr << "cannot open '" << Input << "'\n";
      return nullptr;
    }
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    Text = Buffer.str();
  }
  ParseResult R = parseModule(Text);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::cerr << Input << ": " << E << '\n';
    return nullptr;
  }
  std::vector<std::string> Errors;
  if (!verifyModule(*R.M, &Errors)) {
    for (const std::string &E : Errors)
      std::cerr << Input << ": " << E << '\n';
    return nullptr;
  }
  return std::move(R.M);
}

std::string moduleText(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

/// The in-process half of the bit-identity contract: allocate \p Request's
/// module locally and render exactly what the server renders.
bool expectedAllocation(const AllocRequest &Request, std::string &IrOut,
                        CostBreakdown &TotalsOut) {
  ParseResult PR = parseModule(Request.ModuleText);
  if (!PR.ok())
    return false;
  FrequencyInfo Freq = FrequencyInfo::compute(*PR.M, Request.Mode);
  AllocationEngine Engine =
      EngineBuilder(Request.Config).options(Request.Options).build();
  ModuleAllocationResult R = Engine.allocateModule(*PR.M, Freq);
  IrOut = moduleText(*PR.M);
  TotalsOut = R.Totals;
  return true;
}

int runAlloc(const Endpoint &EP, int Argc, char **Argv, int First) {
  AllocRequest Request;
  std::string Allocator = "improved";
  std::string Input;
  bool EmitIr = false;
  bool WireV2 = false;
  for (int I = First; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--static") {
      Request.Mode = FrequencyMode::Static;
    } else if (Arg == "--emit-ir") {
      EmitIr = true;
    } else if (Arg == "--wire=v1") {
      WireV2 = false;
    } else if (Arg == "--wire=v2") {
      WireV2 = true;
    } else if (Arg.rfind("--allocator=", 0) == 0) {
      Allocator = Arg.substr(12);
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      if (std::sscanf(Arg.c_str() + 14, "%u", &Request.DeadlineMs) != 1) {
        printUsage();
        return 2;
      }
    } else if (Arg.rfind("--config=", 0) == 0) {
      unsigned Ri, Rf, Ei, Ef;
      if (std::sscanf(Arg.c_str() + 9, "%u,%u,%u,%u", &Ri, &Rf, &Ei, &Ef) !=
          4) {
        printUsage();
        return 2;
      }
      Request.Config = RegisterConfig(Ri, Rf, Ei, Ef);
    } else if (Arg.rfind("--", 0) == 0 || !Input.empty()) {
      printUsage();
      return 2;
    } else {
      Input = Arg;
    }
  }
  if (Input.empty() || !allocatorOptionsFor(Allocator, Request.Options)) {
    printUsage();
    return 2;
  }
  std::unique_ptr<Module> M = loadInput(Input);
  if (!M)
    return 1;
  Request.ModuleText = moduleText(*M);

  ServiceClient Client;
  std::string Err;
  if (!EP.connect(Client, &Err)) {
    std::cerr << "ccra_client: " << Err << '\n';
    return 1;
  }
  if (WireV2) {
    if (Client.hello().MaxCodec < 2) {
      std::cerr << "ccra_client: server speaks codec-max "
                << Client.hello().MaxCodec
                << "; falling back to textual v1\n";
    } else if (!encodeModuleBinary(*M, Request.ModuleBinary, &Err)) {
      std::cerr << "ccra_client: cannot binary-encode module: " << Err
                << "; falling back to textual v1\n";
      Request.ModuleBinary.clear();
    } else {
      Request.ModuleText.clear();
    }
  }
  AllocResponse Response;
  ErrorResponse ServerError;
  RpcStatus Status = Client.allocate(Request, Response, ServerError, &Err);
  if (Status == RpcStatus::Shed) {
    std::cerr << "ccra_client: shed: " << ServerError.Message << '\n';
    return 3;
  }
  if (Status == RpcStatus::Rejected) {
    std::cerr << "ccra_client: server error [" << ServerError.Code << "] "
              << ServerError.Message << '\n';
    return 1;
  }
  if (Status != RpcStatus::Ok) {
    std::cerr << "ccra_client: " << Err << '\n';
    return 1;
  }

  std::cout << "total " << formatExactDouble(Response.Totals.total())
            << " (spill " << formatExactDouble(Response.Totals.Spill)
            << ", caller-save " << formatExactDouble(Response.Totals.CallerSave)
            << ", callee-save " << formatExactDouble(Response.Totals.CalleeSave)
            << ", shuffle " << formatExactDouble(Response.Totals.Shuffle)
            << ")\n";
  for (const FunctionSummary &F : Response.Functions)
    std::cout << "  " << F.Name << ": cost "
              << formatExactDouble(F.Costs.total()) << ", rounds " << F.Rounds
              << ", spilled " << F.SpilledRanges << '\n';
  if (EmitIr)
    std::cout << Response.AllocatedIr;
  return 0;
}

int runStats(const Endpoint &EP) {
  ServiceClient Client;
  std::string Err;
  if (!EP.connect(Client, &Err)) {
    std::cerr << "ccra_client: " << Err << '\n';
    return 1;
  }
  TelemetrySnapshot Snapshot;
  ErrorResponse ServerError;
  if (Client.stats(Snapshot, ServerError, &Err) != RpcStatus::Ok) {
    std::cerr << "ccra_client: " << Err << '\n';
    return 1;
  }
  std::cout << Snapshot.toJson() << '\n';
  return 0;
}

// --- burst: the CI smoke ------------------------------------------------

struct BurstOptions {
  unsigned Requests = 200;
  unsigned Clients = 4;
  unsigned MalformedEvery = 17;
  unsigned DeadlineEvery = 31;
  bool Zipf = false;
  /// Ship modules in the binary codec (AllocRequestV2) when the server
  /// advertises codec-max >= 2; the bit-identity check is unchanged, so a
  /// v2 burst proves both ingestion paths produce the same bytes.
  bool WireV2 = false;
};

/// Cumulative Zipf(1.1) distribution over case ranks: Cdf[R] is the
/// probability of drawing a case of rank <= R. Rank 0 is the hottest.
std::vector<double> zipfCdf(std::size_t Count) {
  std::vector<double> Cdf;
  Cdf.reserve(Count);
  double Sum = 0;
  for (std::size_t R = 0; R < Count; ++R) {
    Sum += 1.0 / std::pow(static_cast<double>(R + 1), 1.1);
    Cdf.push_back(Sum);
  }
  for (double &V : Cdf)
    V /= Sum;
  return Cdf;
}

std::size_t sampleZipf(const std::vector<double> &Cdf, Rng &R) {
  double U = R.nextDouble();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    return Cdf.size() - 1;
  return static_cast<std::size_t>(It - Cdf.begin());
}

struct BurstTally {
  std::atomic<unsigned> Ok{0};
  std::atomic<unsigned> Shed{0};
  std::atomic<unsigned> Deadline{0};
  std::atomic<unsigned> MalformedAnswered{0};
  std::atomic<unsigned> Failures{0};
};

/// One precomputed request: what to send plus the bit-exact expectation.
struct BurstCase {
  AllocRequest Request; ///< textual form (ModuleText set)
  std::string ModuleBinary; ///< codec-v2 form of the same module
  std::string ExpectedIr;
  CostBreakdown ExpectedTotals;
};

std::string encodeGarbageTornFrame(unsigned Seed);

void burstWorker(const Endpoint &EP, const BurstOptions &Opts,
                 const std::vector<BurstCase> &Cases,
                 const std::vector<double> &ZipfTable, unsigned Worker,
                 BurstTally &Tally, std::mutex &LogMutex) {
  auto Fail = [&](const std::string &Msg) {
    std::lock_guard<std::mutex> Lock(LogMutex);
    std::cerr << "ccra_client: worker " << Worker << ": " << Msg << '\n';
    Tally.Failures.fetch_add(1);
  };
  // Deterministic per-worker stream: reruns replay the same sample path.
  Rng ZipfRng(0x5eedull + Worker);

  ServiceClient Client;
  std::string Err;
  if (!EP.connect(Client, &Err)) {
    Fail("connect: " + Err);
    return;
  }
  bool UseV2 = Opts.WireV2 && Client.hello().MaxCodec >= 2;
  if (Opts.WireV2 && !UseV2 && Worker == 0) {
    std::lock_guard<std::mutex> Lock(LogMutex);
    std::cerr << "ccra_client: server speaks codec-max "
              << Client.hello().MaxCodec << "; burst falls back to v1\n";
  }

  for (unsigned I = Worker; I < Opts.Requests; I += Opts.Clients) {
    if (Opts.MalformedEvery && I % Opts.MalformedEvery == 0) {
      // A torn/garbage frame burns its own throwaway connection: the
      // server is expected to answer (or close on a torn header) and keep
      // serving everyone else.
      ServiceClient Bad;
      if (!EP.connect(Bad, &Err)) {
        Fail("malformed-leg connect: " + Err);
        return;
      }
      std::string Garbage = (I % 2 == 0)
                                ? std::string("\x13\x37not a frame at all", 19)
                                : encodeGarbageTornFrame(I);
      if (Bad.sendRawBytes(Garbage)) {
        Frame Resp;
        if (Bad.readResponse(Resp) == FrameReadStatus::Ok)
          Tally.MalformedAnswered.fetch_add(1);
      }
      Bad.close();
      continue;
    }

    const BurstCase &Case = ZipfTable.empty()
                                ? Cases[I % Cases.size()]
                                : Cases[sampleZipf(ZipfTable, ZipfRng)];
    AllocRequest Request = Case.Request;
    if (UseV2) {
      Request.ModuleBinary = Case.ModuleBinary;
      Request.ModuleText.clear();
    }
    bool TinyDeadline = Opts.DeadlineEvery && I % Opts.DeadlineEvery == 0;
    if (TinyDeadline)
      Request.DeadlineMs = 1;

    AllocResponse Response;
    ErrorResponse ServerError;
    RpcStatus Status = Client.allocate(Request, Response, ServerError, &Err);
    if (Status == RpcStatus::Shed) {
      Tally.Shed.fetch_add(1);
      continue;
    }
    if (Status == RpcStatus::Rejected) {
      if (ServerError.Code == "deadline" && TinyDeadline) {
        Tally.Deadline.fetch_add(1);
        continue;
      }
      Fail("request " + std::to_string(I) + " rejected [" + ServerError.Code +
           "] " + ServerError.Message);
      continue;
    }
    if (Status != RpcStatus::Ok) {
      Fail("request " + std::to_string(I) + " transport: " + Err);
      if (!EP.connect(Client, &Err)) {
        Fail("reconnect: " + Err);
        return;
      }
      continue;
    }

    // The bit-identity contract: IR and exact costs must match the
    // in-process allocation of the same module/options.
    if (Response.AllocatedIr != Case.ExpectedIr) {
      Fail("request " + std::to_string(I) +
           ": allocated IR differs from in-process allocation");
      continue;
    }
    if (Response.Totals != Case.ExpectedTotals) {
      Fail("request " + std::to_string(I) +
           ": cost totals differ from in-process allocation");
      continue;
    }
    Tally.Ok.fetch_add(1);
  }
}

std::string encodeGarbageTornFrame(unsigned Seed) {
  // A valid header announcing more payload than we send: the server's
  // frame read must time out or see EOF, count it malformed, and move on.
  Frame F;
  F.Type = FrameType::AllocRequest;
  F.Payload = "config: 9,7,3,3\nmodule:\nmodule torn\n";
  std::string Bytes;
  encodeFrame(F, Bytes);
  return Bytes.substr(0, WireHeaderSize + (Seed % 10));
}

int runBurst(const Endpoint &EP, int Argc, char **Argv, int First) {
  BurstOptions Opts;
  for (int I = First; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Unsigned = [&](std::size_t Prefix, unsigned &Out) {
      return std::sscanf(Arg.c_str() + Prefix, "%u", &Out) == 1;
    };
    if (Arg.rfind("--requests=", 0) == 0) {
      if (!Unsigned(11, Opts.Requests))
        return 2;
    } else if (Arg.rfind("--clients=", 0) == 0) {
      if (!Unsigned(10, Opts.Clients) || Opts.Clients == 0)
        return 2;
    } else if (Arg.rfind("--malformed-every=", 0) == 0) {
      if (!Unsigned(18, Opts.MalformedEvery))
        return 2;
    } else if (Arg.rfind("--deadline-every=", 0) == 0) {
      if (!Unsigned(17, Opts.DeadlineEvery))
        return 2;
    } else if (Arg == "--zipf") {
      Opts.Zipf = true;
    } else if (Arg == "--wire=v1") {
      Opts.WireV2 = false;
    } else if (Arg == "--wire=v2") {
      Opts.WireV2 = true;
    } else {
      printUsage();
      return 2;
    }
  }

  // Precompute the case mix and its bit-exact expectations once, so the
  // hot loop only compares.
  const char *Allocators[] = {"improved", "base", "cbh", "priority"};
  std::vector<BurstCase> Cases;
  for (const std::string &Proxy : specProxyNames()) {
    BurstCase Case;
    std::unique_ptr<Module> M = buildSpecProxy(Proxy);
    Case.Request.ModuleText = moduleText(*M);
    if (Opts.WireV2) {
      std::string EncErr;
      if (!encodeModuleBinary(*M, Case.ModuleBinary, &EncErr)) {
        std::cerr << "ccra_client: cannot binary-encode " << Proxy << ": "
                  << EncErr << '\n';
        return 1;
      }
    }
    allocatorOptionsFor(Allocators[Cases.size() % 4], Case.Request.Options);
    Case.Request.Mode =
        Cases.size() % 2 ? FrequencyMode::Static : FrequencyMode::Profile;
    if (!expectedAllocation(Case.Request, Case.ExpectedIr,
                            Case.ExpectedTotals)) {
      std::cerr << "ccra_client: failed to precompute expectation for "
                << Proxy << '\n';
      return 1;
    }
    Cases.push_back(std::move(Case));
  }

  std::vector<double> ZipfTable;
  if (Opts.Zipf)
    ZipfTable = zipfCdf(Cases.size());

  BurstTally Tally;
  std::mutex LogMutex;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Opts.Clients; ++W)
    Workers.emplace_back([&, W] {
      burstWorker(EP, Opts, Cases, ZipfTable, W, Tally, LogMutex);
    });
  for (std::thread &T : Workers)
    T.join();

  std::cout << "burst: " << Tally.Ok.load() << " ok, " << Tally.Shed.load()
            << " shed, " << Tally.Deadline.load() << " deadline, "
            << Tally.MalformedAnswered.load() << " malformed answered, "
            << Tally.Failures.load() << " failures\n";
  if (Tally.Failures.load())
    return 1;
  if (Tally.Ok.load() == 0) {
    std::cerr << "ccra_client: burst completed no successful requests\n";
    return 1;
  }

  if (Opts.Zipf) {
    // The cache smoke's second assertion: a skewed workload against a
    // cache-capable server must actually hit. A v1.0 server never
    // advertises the capability, so mixed-version runs skip the check.
    ServiceClient Client;
    std::string Err;
    if (!EP.connect(Client, &Err)) {
      std::cerr << "ccra_client: zipf stats connect: " << Err << '\n';
      return 1;
    }
    bool CacheCapable =
        Client.hello().ProtocolMinor >= 1 && Client.hello().CacheEnabled;
    TelemetrySnapshot Snapshot;
    ErrorResponse ServerError;
    if (Client.stats(Snapshot, ServerError, &Err) != RpcStatus::Ok) {
      std::cerr << "ccra_client: zipf stats: " << Err << '\n';
      return 1;
    }
    double Hits = Snapshot.count(telemetry::CacheHits);
    double Misses = Snapshot.count(telemetry::CacheMisses);
    double Rate = (Hits + Misses) > 0 ? Hits / (Hits + Misses) : 0.0;
    std::cout << "zipf: cache hits " << Hits << ", misses " << Misses
              << ", hit-rate " << Rate
              << (CacheCapable ? "" : " (server not cache-capable; skipped)")
              << '\n';
    if (CacheCapable && Hits <= 0) {
      std::cerr << "ccra_client: zipf burst produced no cache hits against a "
                   "cache-capable server\n";
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Endpoint EP;
  int I = 1;
  for (; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--version") {
      std::cout << buildInfoString() << '\n';
      return 0;
    } else if (Arg.rfind("--unix=", 0) == 0) {
      EP.UnixPath = Arg.substr(7);
    } else if (Arg.rfind("--port=", 0) == 0) {
      if (std::sscanf(Arg.c_str() + 7, "%d", &EP.Port) != 1) {
        printUsage();
        return 2;
      }
    } else if (Arg.rfind("--timeout=", 0) == 0) {
      if (std::sscanf(Arg.c_str() + 10, "%d", &EP.TimeoutMs) != 1) {
        printUsage();
        return 2;
      }
    } else {
      break;
    }
  }
  if (I >= Argc || (EP.UnixPath.empty() && EP.Port < 0)) {
    printUsage();
    return 2;
  }
  std::string Command = Argv[I];
  if (Command == "alloc")
    return runAlloc(EP, Argc, Argv, I + 1);
  if (Command == "stats")
    return runStats(EP);
  if (Command == "burst")
    return runBurst(EP, Argc, Argv, I + 1);
  printUsage();
  return 2;
}
