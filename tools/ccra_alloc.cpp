//===- tools/ccra_alloc.cpp - Command-line register allocator -------------===//
//
// The library as a command-line tool: read a program (a .ccra IR file, "-"
// for stdin, or the name of a built-in SPEC proxy), run a chosen register
// allocator under a chosen register configuration, and print the allocated
// code and/or the cost breakdown.
//
//   ccra_alloc [options] <input>
//     <input>                 IR file path, '-' (stdin), or a proxy name
//                             (eqntott, ear, li, ... — see --list)
//     --allocator=<name>      base | optimistic | improved | improved-opt |
//                             priority | cbh              (default improved)
//     --config=Ri,Rf,Ei,Ef    register configuration      (default 9,7,3,3)
//     --static                use static frequency estimates (default:
//                             profile-truth probabilities)
//     --jobs=N                allocate N functions concurrently (default 1;
//                             0 = one per hardware thread; same results at
//                             any setting)
//     --emit-ir               print the allocated module (with spill and
//                             save/restore code)
//     --locations             print every virtual register's location
//     --telemetry[=json|csv]  print allocation telemetry (counters and
//                             per-phase timers) to stderr
//     --list                  list built-in proxy programs
//
// Examples:
//   ccra_alloc eqntott
//   ccra_alloc --allocator=base --config=6,4,0,0 --emit-ir program.ccra
//   ccra_alloc --jobs=0 --telemetry=json li
//   build/examples/quickstart | ccra_alloc -          # (not valid IR; demo)
//
//===----------------------------------------------------------------------===//

#include "ccra.h"
#include "support/BuildInfo.h"
#include "support/Table.h"
#include "workloads/SpecProxies.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace ccra;

namespace {

struct CliOptions {
  std::string Input;
  std::string Allocator = "improved";
  RegisterConfig Config = RegisterConfig(9, 7, 3, 3);
  FrequencyMode Mode = FrequencyMode::Profile;
  unsigned Jobs = 1;
  bool EmitIr = false;
  bool Locations = false;
  bool List = false;
  bool Version = false;
  bool EmitTelemetry = false;
  std::string TelemetryFormat = "json";
};

void printUsage() {
  std::cerr << "usage: ccra_alloc [--allocator=NAME] [--config=Ri,Rf,Ei,Ef]\n"
               "                  [--static] [--jobs=N] [--emit-ir] "
               "[--locations]\n"
               "                  [--telemetry[=json|csv]] [--list] <input>\n"
               "  input: IR file, '-' for stdin, or a proxy name "
               "(try --list)\n";
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--list") {
      Opts.List = true;
    } else if (Arg == "--version") {
      Opts.Version = true;
    } else if (Arg == "--static") {
      Opts.Mode = FrequencyMode::Static;
    } else if (Arg == "--emit-ir") {
      Opts.EmitIr = true;
    } else if (Arg == "--locations") {
      Opts.Locations = true;
    } else if (Arg == "--telemetry") {
      Opts.EmitTelemetry = true;
    } else if (Arg.rfind("--telemetry=", 0) == 0) {
      Opts.EmitTelemetry = true;
      Opts.TelemetryFormat = Arg.substr(12);
      if (Opts.TelemetryFormat != "json" && Opts.TelemetryFormat != "csv") {
        std::cerr << "bad --telemetry, expected json or csv\n";
        return false;
      }
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (std::sscanf(Arg.c_str() + 7, "%u", &Opts.Jobs) != 1) {
        std::cerr << "bad --jobs, expected a number\n";
        return false;
      }
    } else if (Arg.rfind("--allocator=", 0) == 0) {
      Opts.Allocator = Arg.substr(12);
    } else if (Arg.rfind("--config=", 0) == 0) {
      unsigned Ri, Rf, Ei, Ef;
      if (std::sscanf(Arg.c_str() + 9, "%u,%u,%u,%u", &Ri, &Rf, &Ei, &Ef) !=
          4) {
        std::cerr << "bad --config, expected Ri,Rf,Ei,Ef\n";
        return false;
      }
      Opts.Config = RegisterConfig(Ri, Rf, Ei, Ef);
    } else if (Arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << Arg << '\n';
      return false;
    } else if (Opts.Input.empty()) {
      Opts.Input = Arg;
    } else {
      std::cerr << "multiple inputs given\n";
      return false;
    }
  }
  return true;
}

bool allocatorOptionsFor(const std::string &Name, AllocatorOptions &Opts) {
  if (Name == "base")
    Opts = baseChaitinOptions();
  else if (Name == "optimistic")
    Opts = optimisticOptions();
  else if (Name == "improved")
    Opts = improvedOptions();
  else if (Name == "improved-opt")
    Opts = improvedOptimisticOptions();
  else if (Name == "priority")
    Opts = priorityOptions();
  else if (Name == "cbh")
    Opts = cbhOptions();
  else
    return false;
  return true;
}

std::unique_ptr<Module> loadInput(const std::string &Input) {
  const auto &Proxies = specProxyNames();
  if (std::find(Proxies.begin(), Proxies.end(), Input) != Proxies.end())
    return buildSpecProxy(Input);

  std::string Text;
  if (Input == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Text = Buffer.str();
  } else {
    std::ifstream File(Input);
    if (!File) {
      std::cerr << "cannot open '" << Input << "'\n";
      return nullptr;
    }
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    Text = Buffer.str();
  }
  ParseResult R = parseModule(Text);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::cerr << Input << ": " << E << '\n';
    return nullptr;
  }
  std::vector<std::string> Errors;
  if (!verifyModule(*R.M, &Errors)) {
    for (const std::string &E : Errors)
      std::cerr << Input << ": " << E << '\n';
    return nullptr;
  }
  return std::move(R.M);
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    printUsage();
    return 1;
  }
  if (Cli.Version) {
    std::cout << buildInfoString() << '\n';
    return 0;
  }
  if (Cli.List) {
    for (const std::string &Name : specProxyNames())
      std::cout << Name << '\n';
    return 0;
  }
  if (Cli.Input.empty()) {
    printUsage();
    return 1;
  }

  AllocatorOptions AllocOpts;
  if (!allocatorOptionsFor(Cli.Allocator, AllocOpts)) {
    std::cerr << "unknown allocator '" << Cli.Allocator << "'\n";
    return 1;
  }

  std::unique_ptr<Module> M = loadInput(Cli.Input);
  if (!M)
    return 1;

  FrequencyInfo Freq = FrequencyInfo::compute(*M, Cli.Mode);
  Telemetry T;
  AllocationEngine Engine = EngineBuilder(Cli.Config)
                                .options(AllocOpts)
                                .jobs(Cli.Jobs)
                                .telemetry(Cli.EmitTelemetry ? &T : nullptr)
                                .build();
  ModuleAllocationResult Result = Engine.allocateModule(*M, Freq);

  if (Cli.EmitIr)
    printModule(*M, std::cout);

  if (Cli.Locations) {
    for (const auto &F : M->functions()) {
      if (F->isDeclaration())
        continue;
      const FunctionAllocation &FA = Result.PerFunction.at(F.get());
      std::cout << "@" << F->getName() << ":\n";
      for (unsigned V = 0; V < F->numVRegs(); ++V) {
        auto It = FA.VRegLocations.find(V);
        if (It == FA.VRegLocations.end())
          continue;
        std::cout << "  " << formatVReg(*F, VirtReg(V)) << " -> "
                  << (It->second.isRegister() ? formatPhysReg(It->second.Reg)
                                              : std::string("memory"))
                  << '\n';
      }
    }
  }

  TextTable Table;
  Table.setHeader({"function", "spill", "caller_sv", "callee_sv", "total",
                   "rounds", "spilled"});
  for (const auto &F : M->functions()) {
    if (F->isDeclaration())
      continue;
    const FunctionAllocation &FA = Result.PerFunction.at(F.get());
    Table.addRow({"@" + F->getName(), TextTable::formatCount(FA.Costs.Spill),
                  TextTable::formatCount(FA.Costs.CallerSave),
                  TextTable::formatCount(FA.Costs.CalleeSave),
                  TextTable::formatCount(FA.Costs.total()),
                  std::to_string(FA.Rounds),
                  std::to_string(FA.SpilledRanges)});
  }
  Table.addRow({"TOTAL", TextTable::formatCount(Result.Totals.Spill),
                TextTable::formatCount(Result.Totals.CallerSave),
                TextTable::formatCount(Result.Totals.CalleeSave),
                TextTable::formatCount(Result.Totals.total()), "", ""});
  std::cout << "allocator=" << AllocOpts.describe()
            << " config=" << Cli.Config.label() << " freq="
            << frequencyModeName(Cli.Mode) << '\n';
  Table.print(std::cout);

  if (Cli.EmitTelemetry) {
    TelemetrySnapshot Snap = T.snapshot();
    if (Cli.TelemetryFormat == "csv")
      Snap.writeCsv(std::cerr);
    else
      Snap.writeJson(std::cerr);
  }
  return 0;
}
