//===- tools/ccra_fuzz.cpp - Differential fuzzing driver ------------------===//
//
// Sweeps seeded random modules (workloads/FuzzGen.h) through the oracle
// lattice (fuzz/Oracle.h): every optimization toggle the allocator has
// grown is cross-checked against the baseline execution model, and every
// leg is held to the soundness oracles (allocation verifier, IR verifier,
// analytic-vs-measured cost reconciliation). On a mismatch the module is
// shrunk (fuzz/Shrinker.h) into a minimal reproducer and written to the
// corpus directory; committed corpus files replay as tier-1 tests
// (tests/FuzzTest.cpp).
//
// Every generated and replayed module is additionally held to the wire
// codec v2 equivalence contract (service/BinaryCodec.h): the binary
// round trip must print the same bytes as the text round trip, and both
// forms must allocate identically. --codec-sweep=N runs that check alone
// over N fresh modules (the nightly workflow's dedicated codec leg).
//
//   ccra_fuzz [options]
//     --count=N             modules to generate and check  (default 500)
//     --seed-base=S         first seed                     (default 1)
//     --profile=NAME        one generation profile (mixed | call-dense |
//                           bank-mix | high-degree | pathological-live |
//                           tiny); default: round-robin over all
//     --smoke               CI/check.sh quick pass: count=60, smaller
//                           shrink budget (a fixed seed range, so local
//                           verification matches CI)
//     --replay=PATH         replay a corpus dir (or one .ccra file)
//                           through the lattice instead of generating
//     --corpus-dir=PATH     where reproducers go   (default fuzz/corpus)
//     --time-budget=SECS    stop starting new modules after SECS seconds
//                           (0 = unbounded; the nightly workflow sets it)
//     --max-shrink-evals=N  shrinker predicate budget      (default 600)
//     --jobs-leg=N          width of the parallel lattice leg (default 4)
//     --codec-sweep=N       ONLY check v1<->v2 codec equivalence (bytes
//                           and allocations) over N generated modules
//     --keep-going          check every module even after a failure
//     --quiet               only report failures and the final summary
//
// Exit status: 0 = every module passed every oracle; 1 = mismatch found
// (reproducers written); 2 = usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "core/EngineBuilder.h"
#include "fuzz/Corpus.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"
#include "ir/IRBinary.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "support/BuildInfo.h"
#include "support/Rng.h"
#include "workloads/FuzzGen.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

using namespace ccra;

namespace {

struct CliOptions {
  unsigned Count = 500;
  uint64_t SeedBase = 1;
  std::string Profile; // empty = round-robin
  bool Smoke = false;
  std::string Replay;
  std::string CorpusDir = "fuzz/corpus";
  unsigned TimeBudgetSec = 0;
  unsigned MaxShrinkEvals = 600;
  unsigned JobsLeg = 4;
  unsigned CodecSweep = 0;
  bool KeepGoing = false;
  bool Quiet = false;
};

void printUsage() {
  std::cerr
      << "usage: ccra_fuzz [--count=N] [--seed-base=S] [--profile=NAME]\n"
         "                 [--smoke] [--replay=PATH] [--corpus-dir=PATH]\n"
         "                 [--time-budget=SECS] [--max-shrink-evals=N]\n"
         "                 [--jobs-leg=N] [--codec-sweep=N] [--keep-going]\n"
         "                 [--quiet]\n";
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  auto Unsigned = [](const std::string &Arg, size_t Prefix, auto &Out) {
    unsigned long long V = 0;
    if (std::sscanf(Arg.c_str() + Prefix, "%llu", &V) != 1)
      return false;
    Out = static_cast<std::remove_reference_t<decltype(Out)>>(V);
    return true;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--version") {
      std::cout << buildInfoString() << '\n';
      std::exit(0);
    } else if (Arg == "--smoke")
      Opts.Smoke = true;
    else if (Arg == "--keep-going")
      Opts.KeepGoing = true;
    else if (Arg == "--quiet")
      Opts.Quiet = true;
    else if (Arg.rfind("--count=", 0) == 0) {
      if (!Unsigned(Arg, 8, Opts.Count))
        return false;
    } else if (Arg.rfind("--seed-base=", 0) == 0) {
      if (!Unsigned(Arg, 12, Opts.SeedBase))
        return false;
    } else if (Arg.rfind("--profile=", 0) == 0) {
      Opts.Profile = Arg.substr(10);
    } else if (Arg.rfind("--replay=", 0) == 0) {
      Opts.Replay = Arg.substr(9);
    } else if (Arg.rfind("--corpus-dir=", 0) == 0) {
      Opts.CorpusDir = Arg.substr(13);
    } else if (Arg.rfind("--time-budget=", 0) == 0) {
      if (!Unsigned(Arg, 14, Opts.TimeBudgetSec))
        return false;
    } else if (Arg.rfind("--max-shrink-evals=", 0) == 0) {
      if (!Unsigned(Arg, 19, Opts.MaxShrinkEvals))
        return false;
    } else if (Arg.rfind("--jobs-leg=", 0) == 0) {
      if (!Unsigned(Arg, 11, Opts.JobsLeg))
        return false;
    } else if (Arg.rfind("--codec-sweep=", 0) == 0) {
      if (!Unsigned(Arg, 14, Opts.CodecSweep))
        return false;
    } else {
      std::cerr << "unknown option " << Arg << '\n';
      return false;
    }
  }
  return true;
}

/// "config: Ri,Rf,Ei,Ef" from a reproducer header, if present.
bool configFromHeader(const std::vector<std::string> &Header,
                      RegisterConfig &Config) {
  for (const std::string &Line : Header) {
    unsigned Ri, Rf, Ei, Ef;
    if (std::sscanf(Line.c_str(), "config: %u,%u,%u,%u", &Ri, &Rf, &Ei,
                    &Ef) == 4) {
      Config = RegisterConfig(Ri, Rf, Ei, Ef);
      return true;
    }
  }
  return false;
}

/// The wire codec v2 equivalence contract, checked for one module:
///
///   printModule(decodeModuleBinary(encodeModuleBinary(M)))
///     == printModule(parseModule(printModule(M)))
///
/// and, beyond bytes, both round-tripped forms must ALLOCATE identically
/// (same printed allocation, same cost totals) under \p Config / \p Mode —
/// a byte-equal module that diverged under allocation would mean the
/// decoder rebuilt some table the printer does not cover. Returns false
/// with a diagnostic in \p Why.
bool checkCodecEquivalence(const Module &M, const RegisterConfig &Config,
                           FrequencyMode Mode, std::string &Why) {
  std::string Text;
  printModule(M, Text);
  ParseResult PR = parseModule(Text);
  if (!PR.ok()) {
    Why = "text round trip failed: " +
          (PR.Errors.empty() ? std::string("?") : PR.Errors.front());
    return false;
  }
  std::string ViaText;
  printModule(*PR.M, ViaText);

  std::string Bytes, Err;
  if (!encodeModuleBinary(M, Bytes, &Err)) {
    Why = "encodeModuleBinary failed: " + Err;
    return false;
  }
  std::unique_ptr<Module> Decoded = decodeModuleBinary(Bytes, &Err);
  if (!Decoded) {
    Why = "decodeModuleBinary failed: " + Err;
    return false;
  }
  std::string ViaBinary;
  printModule(*Decoded, ViaBinary);
  if (ViaBinary != ViaText) {
    Why = "binary and text round trips print different bytes (" +
          std::to_string(ViaBinary.size()) + " vs " +
          std::to_string(ViaText.size()) + ")";
    return false;
  }

  auto Allocate = [&](Module &Target, std::string &IrOut,
                      CostBreakdown &Totals) {
    FrequencyInfo Freq = FrequencyInfo::compute(Target, Mode);
    AllocationEngine Engine = EngineBuilder(Config).build();
    Totals = Engine.allocateModule(Target, Freq).Totals;
    printModule(Target, IrOut);
  };
  std::string TextIr, BinaryIr;
  CostBreakdown TextTotals, BinaryTotals;
  Allocate(*PR.M, TextIr, TextTotals);
  Allocate(*Decoded, BinaryIr, BinaryTotals);
  if (TextIr != BinaryIr) {
    Why = "allocations diverge between ingestion paths";
    return false;
  }
  if (!(TextTotals == BinaryTotals)) {
    Why = "cost totals diverge between ingestion paths";
    return false;
  }
  return true;
}

/// Standalone --codec-sweep=N mode: only the codec contract, over fresh
/// modules round-robined across every generation profile.
int runCodecSweep(const CliOptions &Cli) {
  const std::vector<FuzzProfile> &Profiles = allFuzzProfiles();
  unsigned Failures = 0;
  for (unsigned I = 0; I < Cli.CodecSweep; ++I) {
    FuzzGenParams Params;
    Params.Seed = Cli.SeedBase + I;
    Params.Profile = Profiles[I % Profiles.size()];
    std::unique_ptr<Module> M = generateFuzzModule(Params);

    Rng ConfigRng(Params.Seed ^ 0xc0ffee);
    RegisterConfig Config = fuzzRegisterConfig(ConfigRng);
    FrequencyMode Mode =
        (I % 3 == 2) ? FrequencyMode::Static : FrequencyMode::Profile;

    std::string Why;
    if (!checkCodecEquivalence(*M, Config, Mode, Why)) {
      ++Failures;
      std::cerr << "FAIL codec " << fuzzProfileName(Params.Profile)
                << "-seed" << Params.Seed << " (config " << Config.label()
                << "): " << Why << '\n';
      if (!Cli.KeepGoing)
        break;
    } else if (!Cli.Quiet && ((I + 1) % 100 == 0)) {
      std::cout << "  ..." << (I + 1) << " modules codec-equivalent\n";
    }
  }
  std::cout << "ccra_fuzz codec-sweep: " << Cli.CodecSweep << " modules, "
            << Failures << " failures\n";
  return Failures ? 1 : 0;
}

struct FailureSink {
  const CliOptions &Cli;
  unsigned Failures = 0;

  /// Reports, shrinks, and writes a reproducer for one failing module.
  void handle(const Module &M, const OracleOptions &OO,
              const OracleReport &Report, const std::string &Tag) {
    ++Failures;
    std::cerr << "FAIL " << Tag << " (config " << OO.Config.label()
              << "):\n";
    for (const std::string &Line : Report.lines())
      std::cerr << "  " << Line << '\n';

    ShrinkOptions SO;
    SO.MaxEvaluations = Cli.MaxShrinkEvals;
    ShrinkStats Stats;
    std::unique_ptr<Module> Minimal = shrinkModule(
        M, [&](const Module &Candidate) {
          return !runOracleLattice(Candidate, OO).ok();
        },
        SO, &Stats);

    // Re-run once for the header: the minimal module's own failure lines.
    OracleReport MinReport = runOracleLattice(*Minimal, OO);
    std::vector<std::string> Header;
    Header.push_back("ccra_fuzz minimized reproducer");
    Header.push_back("source: " + Tag);
    Header.push_back("config: " + std::to_string(OO.Config.IntCallerSave) +
                     "," + std::to_string(OO.Config.FloatCallerSave) + "," +
                     std::to_string(OO.Config.IntCalleeSave) + "," +
                     std::to_string(OO.Config.FloatCalleeSave));
    Header.push_back(
        "shrink: " + std::to_string(Stats.InstructionsBefore) + " -> " +
        std::to_string(Stats.InstructionsAfter) + " instructions in " +
        std::to_string(Stats.Evaluations) + " evaluations");
    for (const std::string &Line : MinReport.lines())
      Header.push_back("failure: " + Line);

    std::string Path =
        writeCorpusFile(*Minimal, Cli.CorpusDir, "repro-" + Tag, Header);
    if (Path.empty())
      std::cerr << "  (could not write reproducer under " << Cli.CorpusDir
                << ")\n";
    else
      std::cerr << "  minimized reproducer ("
                << Stats.InstructionsAfter << " instructions) -> " << Path
                << '\n';
  }
};

/// "source: examples/corpus_c/foo.c" from a corpus header, if present.
/// Set by `ccra_cc --emit-corpus`; entries carrying it were lowered from C
/// by the frontend, so a replay failure is reproducible from source.
std::string sourceFromHeader(const std::vector<std::string> &HeaderLines) {
  for (const std::string &Line : HeaderLines)
    if (Line.rfind("source: ", 0) == 0)
      return Line.substr(8);
  return "";
}

int replayCorpus(const CliOptions &Cli) {
  std::vector<std::string> Errors;
  std::vector<CorpusEntry> Entries;
  // A single .ccra file replays as a one-entry corpus.
  if (Cli.Replay.size() > 5 &&
      Cli.Replay.rfind(".ccra") == Cli.Replay.size() - 5) {
    size_t Slash = Cli.Replay.find_last_of('/');
    std::string Dir =
        Slash == std::string::npos ? "." : Cli.Replay.substr(0, Slash);
    std::string File =
        Slash == std::string::npos ? Cli.Replay : Cli.Replay.substr(Slash + 1);
    for (CorpusEntry &E : loadCorpusDir(Dir, Errors)) {
      size_t ESlash = E.Path.find_last_of('/');
      std::string EFile =
          ESlash == std::string::npos ? E.Path : E.Path.substr(ESlash + 1);
      if (EFile == File)
        Entries.push_back(std::move(E));
    }
    if (Entries.empty() && Errors.empty())
      Errors.push_back(Cli.Replay + ": not found");
  } else {
    Entries = loadCorpusDir(Cli.Replay, Errors);
  }
  for (const std::string &E : Errors)
    std::cerr << "corpus error: " << E << '\n';
  if (!Errors.empty())
    return 2;

  unsigned Failures = 0, Legs = 0, FromFrontend = 0;
  for (const CorpusEntry &Entry : Entries) {
    OracleOptions OO;
    OO.ParallelJobs = Cli.JobsLeg;
    configFromHeader(Entry.HeaderLines, OO.Config); // default when absent
    std::string Source = sourceFromHeader(Entry.HeaderLines);
    if (!Source.empty())
      ++FromFrontend;
    OracleReport Report = runOracleLattice(*Entry.M, OO);
    Legs += Report.LegsRun;
    std::string CodecWhy;
    bool CodecOk =
        checkCodecEquivalence(*Entry.M, OO.Config, OO.Mode, CodecWhy);
    if (!Report.ok() || !CodecOk) {
      ++Failures;
      std::cerr << "FAIL replay " << Entry.Path << ":\n";
      for (const std::string &Line : Report.lines())
        std::cerr << "  " << Line << '\n';
      if (!CodecOk)
        std::cerr << "  codec: " << CodecWhy << '\n';
      if (!Source.empty())
        std::cerr << "  provenance: frontend (" << Source
                  << "); reproduce with ccra_cc " << Source << '\n';
    } else if (!Cli.Quiet) {
      std::cout << "ok replay " << Entry.Path;
      if (!Source.empty())
        std::cout << " (frontend: " << Source << ')';
      std::cout << '\n';
    }
  }
  std::cout << "ccra_fuzz replay: " << Entries.size() << " modules ("
            << FromFrontend << " frontend-lowered), " << Legs
            << " lattice legs, " << Failures << " failures\n";
  return Failures ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    printUsage();
    return 2;
  }
  if (Cli.Smoke) {
    // The fixed quick range shared by tools/check.sh and the CI smoke
    // step. Deliberately not seed-base dependent: local and CI runs cover
    // the same inputs.
    Cli.Count = 60;
    Cli.SeedBase = 1;
    Cli.MaxShrinkEvals = 200;
  }
  if (Cli.CodecSweep > 0)
    return runCodecSweep(Cli);
  if (!Cli.Replay.empty())
    return replayCorpus(Cli);

  FuzzProfile Fixed = FuzzProfile::Mixed;
  bool HaveFixed = false;
  if (!Cli.Profile.empty()) {
    if (!parseFuzzProfile(Cli.Profile, Fixed)) {
      std::cerr << "unknown profile '" << Cli.Profile << "'\n";
      return 2;
    }
    HaveFixed = true;
  }

  const auto Start = std::chrono::steady_clock::now();
  auto OverBudget = [&]() {
    if (Cli.TimeBudgetSec == 0)
      return false;
    return std::chrono::steady_clock::now() - Start >=
           std::chrono::seconds(Cli.TimeBudgetSec);
  };

  FailureSink Sink{Cli};
  const std::vector<FuzzProfile> &Profiles = allFuzzProfiles();
  unsigned Checked = 0, Legs = 0;
  for (unsigned I = 0; I < Cli.Count; ++I) {
    if (OverBudget()) {
      if (!Cli.Quiet)
        std::cout << "time budget reached after " << Checked
                  << " modules\n";
      break;
    }
    FuzzGenParams Params;
    Params.Seed = Cli.SeedBase + I;
    Params.Profile = HaveFixed ? Fixed : Profiles[I % Profiles.size()];
    std::unique_ptr<Module> M = generateFuzzModule(Params);

    // The register file and frequency mode are drawn from the same seed,
    // so one integer reproduces the whole trial.
    Rng ConfigRng(Params.Seed ^ 0xc0ffee);
    OracleOptions OO;
    OO.Config = fuzzRegisterConfig(ConfigRng);
    OO.Mode = (I % 3 == 2) ? FrequencyMode::Static : FrequencyMode::Profile;
    OO.ParallelJobs = Cli.JobsLeg;

    OracleReport Report = runOracleLattice(*M, OO);
    ++Checked;
    Legs += Report.LegsRun;
    std::string Tag = std::string(fuzzProfileName(Params.Profile)) +
                      "-seed" + std::to_string(Params.Seed);
    // The codec contract rides along on every sweep module: it is cheap
    // next to the lattice and catches decoder drift the day it lands.
    std::string CodecWhy;
    if (!checkCodecEquivalence(*M, OO.Config, OO.Mode, CodecWhy)) {
      ++Sink.Failures;
      std::cerr << "FAIL codec " << Tag << " (config " << OO.Config.label()
                << "): " << CodecWhy << '\n';
      writeCorpusFile(*M, Cli.CorpusDir, "repro-codec-" + Tag,
                      {"ccra_fuzz codec-equivalence reproducer",
                       "failure: " + CodecWhy});
      if (!Cli.KeepGoing)
        break;
    }
    if (!Report.ok()) {
      Sink.handle(*M, OO, Report, Tag);
      if (!Cli.KeepGoing)
        break;
    } else if (!Cli.Quiet && (Checked % 50 == 0)) {
      std::cout << "  ..." << Checked << " modules clean\n";
    }
  }

  std::cout << "ccra_fuzz: " << Checked << " modules, " << Legs
            << " lattice legs, " << Sink.Failures << " failures\n";
  return Sink.Failures ? 1 : 0;
}
