#!/usr/bin/env bash
# Repository check: configure, build, and run the full test suite; then
# rebuild with ThreadSanitizer (-DCCRA_TSAN=ON) and rerun the
# concurrency-sensitive tests — the thread pool, the parallel-vs-serial
# determinism suite, and the telemetry recorder — under it; finally run
# the Release-mode grid-throughput smoke (bench/perf_grid), which exits
# non-zero if the cached/arena'd grid path ever diverges from the legacy
# per-point execution model.
#
# Usage: tools/check.sh [extra cmake args...]
#   JOBS=N   parallel build jobs (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== build + full test suite =="
cmake -B build -S . "$@"
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo "== ThreadSanitizer: thread pool / parallel determinism / telemetry =="
cmake -B build-tsan -S . -DCCRA_TSAN=ON "$@"
cmake --build build-tsan -j "$JOBS" --target test_parallel test_telemetry
ctest --test-dir build-tsan --output-on-failure \
      -R 'ThreadPool|ParallelAllocation|Telemetry'

echo "== Release perf smoke: grid throughput bit-identity (bench/perf_grid) =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release "$@"
cmake --build build-release -j "$JOBS" --target perf_grid
(cd build-release && ./bench/perf_grid)

echo "check.sh: all green"
