#!/usr/bin/env bash
# Repository check: configure, build, and run the full test suite; then
# rebuild with ThreadSanitizer (-DCCRA_TSAN=ON) and rerun the
# concurrency-sensitive tests — the thread pool, the parallel-vs-serial
# determinism suite, and the telemetry recorder — under it; finally run
# the Release-mode perf smokes: the grid-throughput benchmark
# (bench/perf_grid) and the per-function scaling benchmark
# (bench/perf_scaling), both of which exit non-zero if the optimized
# paths (shared caches/arenas, sparse graphs, worklist simplifier) ever
# diverge bit-for-bit from the legacy execution model; and last, the
# time-boxed differential-fuzz smoke (tools/ccra_fuzz --smoke): a fixed
# seed range through the full oracle lattice — the same range the CI
# smoke step sweeps, so a local pass predicts a CI pass; and the serving
# stack's gates: a live ccra_serve daemon driven through a mixed client
# burst (valid + malformed frames) and drained with SIGTERM, a cache
# smoke (a Zipfian burst against a cache-enabled sharded daemon that must
# produce a nonzero hit rate with every response still bit-identical),
# then the soak (bench/perf_service) whose every valid response must be
# bit-identical to in-process allocation and whose Zipf phase must clear
# 100x the committed pre-cache baseline.
#
# Usage: tools/check.sh [extra cmake args...]
#   JOBS=N   parallel build jobs (default: nproc)
#   SOAK_REQUESTS=N   perf_service soak size (default: 10000)
#   ZIPF_REQUESTS=N   perf_service Zipf phase size (default: 20000)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== build + full test suite =="
cmake -B build -S . "$@"
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo "== ThreadSanitizer: thread pool / parallel determinism / telemetry / service / cache =="
cmake -B build-tsan -S . -DCCRA_TSAN=ON "$@"
cmake --build build-tsan -j "$JOBS" --target test_parallel test_telemetry \
      test_service test_cache
ctest --test-dir build-tsan --output-on-failure \
      -R 'ThreadPool|ParallelAllocation|Telemetry|Service|WireCodec|AllocationCache|ShardRing|CacheService'

echo "== Release perf smokes: bit-identity gates (perf_grid, perf_scaling) =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release "$@"
cmake --build build-release -j "$JOBS" --target perf_grid perf_scaling
(cd build-release && ./bench/perf_grid)
(cd build-release && ./bench/perf_scaling)

echo "== Differential-fuzz smoke: oracle lattice over the fixed seed range =="
cmake --build build-release -j "$JOBS" --target ccra_fuzz
# --smoke pins the seed range and shrink budget; the 10-minute box only
# guards against a pathological slowdown, it is not reached normally.
./build-release/tools/ccra_fuzz --smoke --time-budget=600 --keep-going

echo "== Service smoke: live daemon + mixed burst + graceful SIGTERM drain =="
cmake --build build-release -j "$JOBS" --target ccra_serve ccra_client \
      perf_service
SOCK="$(mktemp -u /tmp/ccra-check-XXXXXX.sock)"
./build-release/tools/ccra_serve --unix="$SOCK" &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
# 200 mixed requests (valid across the proxy/config grid, malformed
# frames, tiny deadlines) from 4 concurrent clients; every valid response
# is checked bit-identical to in-process allocation.
./build-release/tools/ccra_client --unix="$SOCK" burst --requests=200 \
      --clients=4
./build-release/tools/ccra_client --unix="$SOCK" stats > /dev/null
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"   # exit 0 == clean drain
trap - EXIT

echo "== Cache smoke: Zipfian burst must hit, bit-identically =="
SOCK="$(mktemp -u /tmp/ccra-cache-XXXXXX.sock)"
./build-release/tools/ccra_serve --unix="$SOCK" --shards=2 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
# Zipf-sampled cases repeat, so the burst exits non-zero unless the
# daemon's STATS report a nonzero cache hit count AND every response
# (cached or cold) is bit-identical to in-process allocation.
./build-release/tools/ccra_client --unix="$SOCK" burst --requests=300 \
      --clients=4 --zipf
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"   # exit 0 == clean drain
trap - EXIT

echo "== Service soak gate (perf_service -> BENCH_service.json) =="
(cd build-release && ./bench/perf_service \
      --requests="${SOAK_REQUESTS:-10000}" \
      --zipf-requests="${ZIPF_REQUESTS:-20000}")

echo "check.sh: all green"
