#!/usr/bin/env bash
# Repository check: configure, build, and run the full test suite; then
# rebuild with ThreadSanitizer (-DCCRA_TSAN=ON) and rerun the
# concurrency-sensitive tests — the thread pool, the parallel-vs-serial
# determinism suite, and the telemetry recorder — under it; finally run
# the Release-mode perf smokes: the grid-throughput benchmark
# (bench/perf_grid) and the per-function scaling benchmark
# (bench/perf_scaling), both of which exit non-zero if the optimized
# paths (shared caches/arenas, sparse graphs, worklist simplifier) ever
# diverge bit-for-bit from the legacy execution model; and last, the
# time-boxed differential-fuzz smoke (tools/ccra_fuzz --smoke): a fixed
# seed range through the full oracle lattice — the same range the CI
# smoke step sweeps, so a local pass predicts a CI pass; and the serving
# stack's gates: a live ccra_serve daemon driven through a mixed client
# burst (valid + malformed frames) and drained with SIGTERM, a cache
# smoke (a Zipfian burst against a cache-enabled sharded daemon that must
# produce a nonzero hit rate with every response still bit-identical),
# then the soak (bench/perf_service) whose every valid response must be
# bit-identical to in-process allocation and whose Zipf phase must clear
# 100x the committed pre-cache baseline.
#
# Usage: tools/check.sh [extra cmake args...]
#   JOBS=N   parallel build jobs (default: nproc)
#   SOAK_REQUESTS=N   perf_service soak size (default: 10000)
#   ZIPF_REQUESTS=N   perf_service Zipf phase size (default: 20000)
#   C10K_CONNECTIONS=N   perf_service connection-scaling phase (default:
#                        10000; 0 skips it — useful under tight fd limits)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== build + full test suite =="
cmake -B build -S . "$@"
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo "== C frontend smoke: compile, verify, round-trip the committed corpus =="
# Every examples/corpus_c program must compile through the C frontend,
# pass the IR verifier, and round-trip byte-exactly through the printer
# and parser (--check-corpus exits non-zero otherwise). Then recompile
# into a scratch dir and diff against the committed fuzz/corpus lowering:
# frontend changes must regenerate cc-*.ccra in the same commit.
./build/tools/ccra_cc --check-corpus examples/corpus_c/*.c
rm -rf build/cc-corpus-check
./build/tools/ccra_cc --emit-corpus=build/cc-corpus-check \
      examples/corpus_c/*.c > /dev/null
for f in build/cc-corpus-check/cc-*.ccra; do
  diff -u "fuzz/corpus/$(basename "$f")" "$f"
done

echo "== ThreadSanitizer: tests labeled 'concurrency' (tests/CMakeLists.txt) =="
cmake -B build-tsan -S . -DCCRA_TSAN=ON "$@"
cmake --build build-tsan -j "$JOBS" --target test_parallel test_telemetry \
      test_service test_cache test_binarycodec
ctest --test-dir build-tsan --output-on-failure -L concurrency

echo "== Release perf smokes: bit-identity gates (perf_grid, perf_scaling) =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release "$@"
cmake --build build-release -j "$JOBS" --target perf_grid perf_scaling
(cd build-release && ./bench/perf_grid)
(cd build-release && ./bench/perf_scaling)

echo "== Differential-fuzz smoke: oracle lattice over the fixed seed range =="
cmake --build build-release -j "$JOBS" --target ccra_fuzz
# --smoke pins the seed range and shrink budget; the 10-minute box only
# guards against a pathological slowdown, it is not reached normally.
./build-release/tools/ccra_fuzz --smoke --time-budget=600 --keep-going

echo "== Codec sweep: wire v2 encode/decode equivalent to the text path =="
./build-release/tools/ccra_fuzz --codec-sweep=500

echo "== Service smokes: burst + drain via .github/scripts/service_smoke.sh =="
cmake --build build-release -j "$JOBS" --target ccra_serve ccra_client \
      perf_service
# 200 mixed requests (valid across the proxy/config grid, malformed
# frames, tiny deadlines) from 4 concurrent clients; every valid response
# is checked bit-identical to in-process allocation.
.github/scripts/service_smoke.sh --build-dir=build-release \
      --requests=200 --clients=4 --stats
# Zipf-sampled cases repeat, so the burst exits non-zero unless the
# daemon's STATS report a nonzero cache hit count AND every response
# (cached or cold) is bit-identical to in-process allocation.
.github/scripts/service_smoke.sh --build-dir=build-release \
      --requests=300 --clients=4 --serve-args="--shards=2" \
      --client-args="--zipf"
# The same mixed burst over the binary module codec (wire v2).
.github/scripts/service_smoke.sh --build-dir=build-release \
      --requests=200 --clients=4 --client-args="--wire=v2"

echo "== Service soak gate (perf_service -> BENCH_service.json) =="
(cd build-release && ./bench/perf_service \
      --requests="${SOAK_REQUESTS:-10000}" \
      --zipf-requests="${ZIPF_REQUESTS:-20000}" \
      --c10k-connections="${C10K_CONNECTIONS:-10000}")

echo "== Bench gate: fresh Release numbers vs committed baselines =="
tools/bench_gate --baseline BENCH_service.json \
      --fresh build-release/BENCH_service.json
tools/bench_gate --baseline BENCH_grid.json \
      --fresh build-release/BENCH_grid.json

echo "check.sh: all green"
