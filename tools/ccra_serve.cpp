//===- tools/ccra_serve.cpp - Allocation service daemon -------------------===//
//
// The allocation engine as a long-lived daemon: binds a Unix-domain or
// loopback-TCP socket, speaks the framed protocol of service/WireProtocol.h,
// answers repeat requests from a content-addressed allocation cache,
// consistent-hashes cold requests across in-process shards that batch them
// into engine runs, sheds load when a shard's bounded queue overflows, and
// drains gracefully on SIGTERM/SIGINT (stops accepting, finishes in-flight
// work, flushes responses, exits 0).
//
//   ccra_serve [options]
//     --unix=PATH        listen on a Unix-domain socket at PATH
//     --port=N           listen on 127.0.0.1:N (default; 0 = ephemeral,
//                        the chosen port is printed on stdout)
//     --pool-threads=N   engine thread-pool width, split across shards
//                        (default 0 = hardware)
//     --queue=N          request queue capacity, split across shards
//                        (default 64)
//     --max-batch=N      max requests fused into one engine grid run
//                        (default 8)
//     --max-payload=N    per-frame payload limit in bytes (default 16 MiB)
//     --write-timeout=MS slow-client response write budget (default 5000)
//     --shards=N         in-process dispatch shards (default 1); requests
//                        route by consistent hash of the module text
//     --cache-bytes=N    allocation cache budget in bytes (default 64 MiB;
//                        0 disables the cache)
//     --version          print build info and exit
//
// On successful startup prints exactly one line to stdout:
//   listening unix <path>     or     listening tcp <port>
// so wrappers (tools/check.sh, tests) can scrape the endpoint.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/BuildInfo.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

using namespace ccra;

namespace {

std::atomic<bool> StopRequested{false};

void onStopSignal(int) { StopRequested.store(true); }

void printUsage() {
  std::cerr << "usage: ccra_serve [--unix=PATH | --port=N] [--pool-threads=N]\n"
               "                  [--queue=N] [--max-batch=N] "
               "[--max-payload=N]\n"
               "                  [--write-timeout=MS] [--shards=N]\n"
               "                  [--cache-bytes=N] [--version]\n";
}

bool parseUnsigned(const std::string &Arg, std::size_t Prefix, unsigned &Out) {
  return std::sscanf(Arg.c_str() + Prefix, "%u", &Out) == 1;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerConfig Config;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    unsigned V = 0;
    if (Arg == "--version") {
      std::cout << buildInfoString() << '\n';
      return 0;
    } else if (Arg.rfind("--unix=", 0) == 0) {
      Config.UnixPath = Arg.substr(7);
    } else if (Arg.rfind("--port=", 0) == 0) {
      if (!parseUnsigned(Arg, 7, V)) {
        printUsage();
        return 2;
      }
      Config.TcpPort = static_cast<int>(V);
    } else if (Arg.rfind("--pool-threads=", 0) == 0) {
      if (!parseUnsigned(Arg, 15, Config.PoolThreads)) {
        printUsage();
        return 2;
      }
    } else if (Arg.rfind("--queue=", 0) == 0) {
      if (!parseUnsigned(Arg, 8, Config.QueueCapacity) ||
          Config.QueueCapacity == 0) {
        printUsage();
        return 2;
      }
    } else if (Arg.rfind("--max-batch=", 0) == 0) {
      if (!parseUnsigned(Arg, 12, Config.MaxBatch) || Config.MaxBatch == 0) {
        printUsage();
        return 2;
      }
    } else if (Arg.rfind("--max-payload=", 0) == 0) {
      if (!parseUnsigned(Arg, 14, V) || V == 0) {
        printUsage();
        return 2;
      }
      Config.MaxPayloadBytes = V;
    } else if (Arg.rfind("--write-timeout=", 0) == 0) {
      if (!parseUnsigned(Arg, 16, V)) {
        printUsage();
        return 2;
      }
      Config.WriteTimeoutMs = static_cast<int>(V);
    } else if (Arg.rfind("--shards=", 0) == 0) {
      if (!parseUnsigned(Arg, 9, Config.Shards) || Config.Shards == 0) {
        printUsage();
        return 2;
      }
    } else if (Arg.rfind("--cache-bytes=", 0) == 0) {
      if (!parseUnsigned(Arg, 14, V)) {
        printUsage();
        return 2;
      }
      Config.CacheBytes = V;
    } else {
      std::cerr << "unknown option " << Arg << '\n';
      printUsage();
      return 2;
    }
  }

  // Graceful drain on SIGTERM/SIGINT. The handler only flips a flag (all
  // the real work is async-signal-unsafe); the main thread polls it.
  // Installed before start() so a supervisor's fast restart signal in the
  // startup window still drains instead of taking the default action.
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  AllocationServer Server(Config);
  std::string Err;
  if (!Server.start(&Err)) {
    std::cerr << "ccra_serve: " << Err << '\n';
    return 1;
  }
  if (!Config.UnixPath.empty())
    std::cout << "listening unix " << Config.UnixPath << std::endl;
  else
    std::cout << "listening tcp " << Server.boundPort() << std::endl;
  std::cerr << buildInfoString() << '\n';

  while (!StopRequested.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::cerr << "ccra_serve: draining\n";
  Server.requestDrain();
  Server.wait();

  TelemetrySnapshot Final = Server.stats();
  std::cerr << "ccra_serve: drained after "
            << static_cast<unsigned long long>(
                   Final.count(telemetry::ServeRequests))
            << " requests ("
            << static_cast<unsigned long long>(
                   Final.count(telemetry::ServeResponsesOk))
            << " ok, "
            << static_cast<unsigned long long>(Final.count(telemetry::ServeShed))
            << " shed, "
            << static_cast<unsigned long long>(
                   Final.count(telemetry::CacheHits))
            << " cache hits)\n";
  return 0;
}
