//===- tools/ccra_cc.cpp - C-subset compiler driver -----------------------===//
//
// Compiles C-subset source files (see DESIGN.md "The C frontend") into
// ccra IR, and optionally runs the register allocator on the result —
// real programs feeding the same pipeline the synthetic workloads use.
//
//   ccra_cc [options] <input.c>...
//     <input.c>...            one or more C source files ('-' for stdin)
//     --emit-ir               print the lowered IR module(s) (default when
//                             no other action is chosen)
//     --alloc                 run the register allocator and print the
//                             per-function cost table
//     --allocator=<name>      base | optimistic | improved | improved-opt |
//                             priority | cbh              (default improved)
//     --options=<key>         AllocatorOptions canonical key (the cache /
//                             wire form; overrides --allocator)
//     --config=Ri,Rf,Ei,Ef    register configuration      (default 9,7,3,3)
//     --static                use static frequency estimates
//     --emit-corpus=<dir>     write each module to <dir>/cc-<name>.ccra
//                             with a provenance header naming the source
//     --check-corpus          compile-and-verify gate (CI): every input
//                             must compile, IR-verify, and round-trip
//                             through the printer/parser byte-exactly
//
// Every emitted module is verifier-clean by construction; --check-corpus
// re-checks that claim from the outside and is wired into check.sh and
// every CI leg.
//
// Examples:
//   ccra_cc --emit-ir examples/corpus_c/fib.c
//   ccra_cc --alloc --allocator=base --config=6,4,0,0 examples/corpus_c/*.c
//   ccra_cc --check-corpus examples/corpus_c/*.c
//
//===----------------------------------------------------------------------===//

#include "ccra.h"
#include "frontend/Frontend.h"
#include "fuzz/Corpus.h"
#include "support/BuildInfo.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

using namespace ccra;

namespace {

struct CliOptions {
  std::vector<std::string> Inputs;
  std::string Allocator = "improved";
  std::string OptionsKey;
  RegisterConfig Config = RegisterConfig(9, 7, 3, 3);
  FrequencyMode Mode = FrequencyMode::Profile;
  bool EmitIr = false;
  bool Alloc = false;
  bool CheckCorpus = false;
  std::string EmitCorpusDir;
  bool Version = false;
};

void printUsage() {
  std::cerr << "usage: ccra_cc [--emit-ir] [--alloc] [--allocator=NAME]\n"
               "               [--options=KEY] [--config=Ri,Rf,Ei,Ef] "
               "[--static]\n"
               "               [--emit-corpus=DIR] [--check-corpus] "
               "<input.c>...\n";
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--version") {
      Opts.Version = true;
    } else if (Arg == "--emit-ir") {
      Opts.EmitIr = true;
    } else if (Arg == "--alloc") {
      Opts.Alloc = true;
    } else if (Arg == "--check-corpus") {
      Opts.CheckCorpus = true;
    } else if (Arg == "--static") {
      Opts.Mode = FrequencyMode::Static;
    } else if (Arg.rfind("--emit-corpus=", 0) == 0) {
      Opts.EmitCorpusDir = Arg.substr(14);
      if (Opts.EmitCorpusDir.empty()) {
        std::cerr << "bad --emit-corpus, expected a directory\n";
        return false;
      }
    } else if (Arg.rfind("--allocator=", 0) == 0) {
      Opts.Allocator = Arg.substr(12);
    } else if (Arg.rfind("--options=", 0) == 0) {
      Opts.OptionsKey = Arg.substr(10);
    } else if (Arg.rfind("--config=", 0) == 0) {
      unsigned Ri, Rf, Ei, Ef;
      if (std::sscanf(Arg.c_str() + 9, "%u,%u,%u,%u", &Ri, &Rf, &Ei, &Ef) !=
          4) {
        std::cerr << "bad --config, expected Ri,Rf,Ei,Ef\n";
        return false;
      }
      Opts.Config = RegisterConfig(Ri, Rf, Ei, Ef);
    } else if (Arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << Arg << '\n';
      return false;
    } else {
      Opts.Inputs.push_back(Arg);
    }
  }
  return true;
}

bool allocatorOptionsFor(const CliOptions &Cli, AllocatorOptions &Opts) {
  if (!Cli.OptionsKey.empty()) {
    std::string Error;
    if (!parseAllocatorOptions(Cli.OptionsKey, Opts, &Error)) {
      std::cerr << "bad --options: " << Error << '\n';
      return false;
    }
    return true;
  }
  if (Cli.Allocator == "base")
    Opts = baseChaitinOptions();
  else if (Cli.Allocator == "optimistic")
    Opts = optimisticOptions();
  else if (Cli.Allocator == "improved")
    Opts = improvedOptions();
  else if (Cli.Allocator == "improved-opt")
    Opts = improvedOptimisticOptions();
  else if (Cli.Allocator == "priority")
    Opts = priorityOptions();
  else if (Cli.Allocator == "cbh")
    Opts = cbhOptions();
  else {
    std::cerr << "unknown allocator '" << Cli.Allocator << "'\n";
    return false;
  }
  return true;
}

CompileResult compileInput(const std::string &Input) {
  if (Input != "-")
    return Frontend::compileFile(Input);
  std::ostringstream Buffer;
  Buffer << std::cin.rdbuf();
  return Frontend::compile(Buffer.str(), "stdin");
}

void reportDiagnostics(const std::string &Input,
                       const std::vector<Diagnostic> &Diags) {
  for (const Diagnostic &D : Diags)
    std::cerr << Input << ": " << D.render() << '\n';
}

/// The post-compile gate shared by every mode: the module must IR-verify
/// and must survive print -> parse -> print with identical bytes.
bool checkModule(const std::string &Input, const Module &M) {
  std::vector<std::string> Errors;
  if (!verifyModule(M, &Errors)) {
    for (const std::string &E : Errors)
      std::cerr << Input << ": verifier: " << E << '\n';
    return false;
  }
  std::string Printed;
  printModule(M, Printed);
  ParseResult Reparsed = parseModule(Printed);
  if (!Reparsed.ok()) {
    for (const std::string &E : Reparsed.Errors)
      std::cerr << Input << ": round-trip parse: " << E << '\n';
    return false;
  }
  std::string Reprinted;
  printModule(*Reparsed.M, Reprinted);
  if (Printed != Reprinted) {
    std::cerr << Input << ": round-trip is not byte-identical\n";
    return false;
  }
  return true;
}

void printCostTable(const Module &M, const ModuleAllocationResult &Result,
                    const AllocatorOptions &AllocOpts,
                    const CliOptions &Cli) {
  TextTable Table;
  Table.setHeader({"function", "spill", "caller_sv", "callee_sv", "total",
                   "rounds", "spilled"});
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    const FunctionAllocation &FA = Result.PerFunction.at(F.get());
    Table.addRow({"@" + F->getName(), TextTable::formatCount(FA.Costs.Spill),
                  TextTable::formatCount(FA.Costs.CallerSave),
                  TextTable::formatCount(FA.Costs.CalleeSave),
                  TextTable::formatCount(FA.Costs.total()),
                  std::to_string(FA.Rounds),
                  std::to_string(FA.SpilledRanges)});
  }
  Table.addRow({"TOTAL", TextTable::formatCount(Result.Totals.Spill),
                TextTable::formatCount(Result.Totals.CallerSave),
                TextTable::formatCount(Result.Totals.CalleeSave),
                TextTable::formatCount(Result.Totals.total()), "", ""});
  std::cout << "module=" << M.getName()
            << " allocator=" << AllocOpts.describe()
            << " config=" << Cli.Config.label()
            << " freq=" << frequencyModeName(Cli.Mode) << '\n';
  Table.print(std::cout);
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    printUsage();
    return 1;
  }
  if (Cli.Version) {
    std::cout << buildInfoString() << '\n';
    return 0;
  }
  if (Cli.Inputs.empty()) {
    printUsage();
    return 1;
  }
  if (!Cli.EmitIr && !Cli.Alloc && !Cli.CheckCorpus &&
      Cli.EmitCorpusDir.empty())
    Cli.EmitIr = true;

  AllocatorOptions AllocOpts;
  if (Cli.Alloc && !allocatorOptionsFor(Cli, AllocOpts))
    return 1;

  bool AllOk = true;
  for (const std::string &Input : Cli.Inputs) {
    CompileResult Compiled = compileInput(Input);
    if (!Compiled.ok()) {
      reportDiagnostics(Input, Compiled.Diags);
      AllOk = false;
      continue;
    }
    Module &M = *Compiled.M;
    if (!checkModule(Input, M)) {
      AllOk = false;
      continue;
    }

    if (Cli.CheckCorpus) {
      unsigned Blocks = 0;
      for (const auto &F : M.functions())
        Blocks += F->numBlocks();
      std::cout << "ok " << M.getName() << " functions="
                << M.functions().size() << " blocks=" << Blocks << '\n';
    }
    if (!Cli.EmitCorpusDir.empty()) {
      std::vector<std::string> Header = {
          "ccra_cc corpus entry",
          "source: " + Input,
          "config: " + std::to_string(Cli.Config.IntCallerSave) + "," +
              std::to_string(Cli.Config.FloatCallerSave) + "," +
              std::to_string(Cli.Config.IntCalleeSave) + "," +
              std::to_string(Cli.Config.FloatCalleeSave),
      };
      std::string Path = writeCorpusFile(M, Cli.EmitCorpusDir,
                                         "cc-" + M.getName(), Header);
      if (Path.empty()) {
        std::cerr << Input << ": cannot write corpus file under '"
                  << Cli.EmitCorpusDir << "'\n";
        AllOk = false;
        continue;
      }
      std::cout << "wrote " << Path << '\n';
    }
    if (Cli.EmitIr)
      printModule(M, std::cout);
    if (Cli.Alloc) {
      FrequencyInfo Freq = FrequencyInfo::compute(M, Cli.Mode);
      AllocationEngine Engine =
          EngineBuilder(Cli.Config).options(AllocOpts).build();
      ModuleAllocationResult Result = Engine.allocateModule(M, Freq);
      printCostTable(M, Result, AllocOpts, Cli);
    }
  }
  return AllOk ? 0 : 1;
}
