//===- examples/convention_explorer.cpp - Sweep the calling convention ----===//
//
// How should a calling convention split the register file between
// caller-save and callee-save registers? This example takes one workload
// (default: eqntott; pass another SPEC proxy name as argv[1]) and sweeps
// the (Ri,Rf,Ei,Ef) split, printing the total overhead of the base and the
// improved allocator at each point — the experiment behind the paper's
// Figure 2/7 pair, usable for any workload. The whole grid is described as
// ExperimentSpecs up front and fanned across the hardware threads with
// runExperiments.
//
// Run:  ./convention_explorer [program]
//
//===----------------------------------------------------------------------===//

#include "ccra.h"
#include "support/Table.h"
#include "workloads/SpecProxies.h"

#include <algorithm>
#include <iostream>

using namespace ccra;

int main(int Argc, char **Argv) {
  std::string Program = Argc > 1 ? Argv[1] : "eqntott";
  const auto &Names = specProxyNames();
  if (std::find(Names.begin(), Names.end(), Program) == Names.end()) {
    std::cerr << "unknown program '" << Program << "'. Choices:";
    for (const std::string &Name : Names)
      std::cerr << ' ' << Name;
    std::cerr << '\n';
    return 1;
  }

  std::unique_ptr<Module> M = buildSpecProxy(Program);

  // Describe the whole grid (two allocators per register split), then run
  // it with one grid point per hardware thread.
  const std::vector<RegisterConfig> Sweep = standardConfigSweep();
  std::vector<ExperimentSpec> Specs;
  for (const RegisterConfig &Config : Sweep) {
    Specs.push_back({M.get(), Config, baseChaitinOptions(),
                     FrequencyMode::Profile, /*Jobs=*/1});
    Specs.push_back({M.get(), Config, improvedOptions(),
                     FrequencyMode::Profile, /*Jobs=*/1});
  }
  std::vector<ExperimentRun> Runs = runExperiments(Specs, /*Jobs=*/0);

  TextTable Table;
  Table.setHeader({"config", "base_total", "improved_total", "ratio",
                   "best"});
  std::string BestLabel;
  double BestCost = -1.0;
  for (std::size_t I = 0; I < Sweep.size(); ++I) {
    const RegisterConfig &Config = Sweep[I];
    const ExperimentResult &Base = Runs[2 * I].Result;
    const ExperimentResult &Improved = Runs[2 * I + 1].Result;
    if (BestCost < 0.0 || Improved.Costs.total() < BestCost) {
      BestCost = Improved.Costs.total();
      BestLabel = Config.label();
    }
    Table.addRow({Config.label(), TextTable::formatCount(Base.Costs.total()),
                  TextTable::formatCount(Improved.Costs.total()),
                  TextTable::formatDouble(
                      Base.Costs.total() /
                      std::max(Improved.Costs.total(), 1.0)),
                  ""});
  }
  std::cout << "register-split sweep for " << Program
            << " (dynamic overhead operations):\n";
  Table.print(std::cout);
  std::cout << "\ncheapest split for the improved allocator: " << BestLabel
            << " (" << TextTable::formatCount(BestCost)
            << " overhead operations)\n";
  return 0;
}
