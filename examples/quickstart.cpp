//===- examples/quickstart.cpp - Build, allocate, inspect -----------------===//
//
// The smallest end-to-end use of the library:
//  1. build a function with IRBuilder (a hot loop plus a cold error call),
//  2. compute execution frequencies,
//  3. assemble the paper's improved Chaitin-style allocator with
//     EngineBuilder (telemetry attached) and allocate,
//  4. print the allocated code, the storage decisions, the §3 cost
//     breakdown, and the telemetry the run recorded.
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "ccra.h"

#include <iostream>

using namespace ccra;

int main() {
  // --- 1. Build a program -------------------------------------------------
  Module M("quickstart");
  Function *Log = M.createFunction("log_error"); // external: body-less
  Function *MainF = M.createFunction("main");
  M.setEntryFunction(MainF);

  IRBuilder B(*MainF);
  BasicBlock *Entry = B.startBlock("entry");
  (void)Entry;
  // Long-lived values: a running sum and a scale factor.
  VirtReg Sum = B.buildLoadImm(0);
  VirtReg Scale = B.buildLoadImm(3);
  VirtReg Limit = B.buildLoadImm(1000);

  // Hot loop: sum = sum * scale + i, one hundred iterations.
  BasicBlock *Loop = MainF->createBlock("loop");
  B.buildBr(Loop);
  B.setInsertBlock(Loop);
  VirtReg Tmp = B.buildBinary(Opcode::Mul, Sum, Scale);
  B.buildBinaryInto(Sum, Opcode::Add, Tmp, Scale);
  VirtReg Again = B.buildCmp(Sum, Limit);
  BasicBlock *Tail = MainF->createBlock("tail");
  B.buildCondBr(Again, Loop, Tail, /*TrueProbability=*/0.99);

  // Cold tail: 1% of runs report an error — Sum and Scale are live across
  // the call, which is exactly the situation the paper's storage-class
  // analysis reasons about.
  B.setInsertBlock(Tail);
  VirtReg Bad = B.buildCmp(Sum, Scale);
  BasicBlock *Error = MainF->createBlock("error");
  BasicBlock *Done = MainF->createBlock("done");
  B.buildCondBr(Bad, Error, Done, /*TrueProbability=*/0.01);
  B.setInsertBlock(Error);
  B.buildCall(Log, {Sum});
  B.buildBr(Done);
  B.setInsertBlock(Done);
  VirtReg Out = B.buildBinary(Opcode::Add, Sum, Scale);
  B.buildRet(Out);

  if (!verifyModule(M, nullptr)) {
    std::cerr << "module failed verification\n";
    return 1;
  }
  std::cout << "=== input program ===\n";
  printModule(M, std::cout);

  // --- 2. Frequencies, 3. allocation --------------------------------------
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  MachineDescription Machine(RegisterConfig(4, 2, 2, 2));
  Telemetry T;
  AllocationEngine Engine = EngineBuilder(Machine)
                                .options(improvedOptions())
                                .telemetry(&T)
                                .build();
  ModuleAllocationResult Result = Engine.allocateModule(M, Freq);

  // --- 4. Inspect ----------------------------------------------------------
  std::cout << "\n=== allocated program (spill + save/restore code "
               "materialized) ===\n";
  printModule(M, std::cout);

  const FunctionAllocation &FA = Result.PerFunction.at(MainF);
  std::cout << "storage decisions:\n";
  for (VirtReg R : {Sum, Scale, Limit, Out}) {
    Location Loc = FA.locationOf(R);
    std::cout << "  " << formatVReg(*MainF, R) << " -> "
              << (Loc.isRegister() ? formatPhysReg(Loc.Reg) +
                                         (Machine.isCallerSave(Loc.Reg)
                                              ? " (caller-save)"
                                              : " (callee-save)")
                                   : std::string("memory"))
              << '\n';
  }
  std::cout << "cost breakdown (weighted overhead operations):\n"
            << "  spill:       " << FA.Costs.Spill << '\n'
            << "  caller-save: " << FA.Costs.CallerSave << '\n'
            << "  callee-save: " << FA.Costs.CalleeSave << '\n'
            << "  total:       " << FA.Costs.total() << '\n';

  std::cout << "\n=== telemetry (counters + per-phase timers) ===\n";
  T.snapshot().writeJson(std::cout);
  return 0;
}
