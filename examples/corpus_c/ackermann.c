// Ackermann's function plus a call-counting wrapper: the most call-dense
// function per instruction in the corpus. Nearly every value is live
// across a call, so allocation cost here is almost pure call cost.

int calls = 0;

int ack(int m, int n) {
  calls = calls + 1;
  if (m == 0) {
    return n + 1;
  }
  if (n == 0) {
    return ack(m - 1, 1);
  }
  return ack(m - 1, ack(m, n - 1));
}

int ack_budget(int m, int n, int budget) {
  calls = 0;
  int result = ack(m, n);
  if (calls > budget) {
    return -1;
  }
  return result;
}

int main() {
  int total = 0;
  for (int m = 0; m < 3; m = m + 1) {
    for (int n = 0; n < 4; n = n + 1) {
      int r = ack_budget(m, n, 100000);
      if (r < 0) {
        return 1;
      }
      total = total + r;
    }
  }
  return total;
}
