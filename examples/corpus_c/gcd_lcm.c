// Euclid's algorithm, recursive and iterative, composed into lcm and a
// pairwise-coprime scan. Small leaf functions called from loops: the
// caller-save / callee-save split decides almost all of the overhead.

int gcd_rec(int a, int b) {
  if (b == 0) {
    return a;
  }
  return gcd_rec(b, a % b);
}

int gcd_iter(int a, int b) {
  while (b != 0) {
    int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int lcm(int a, int b) {
  int g = gcd_iter(a, b);
  if (g == 0) {
    return 0;
  }
  return a / g * b;
}

int coprime_count(int limit) {
  int count = 0;
  for (int a = 1; a < limit; a = a + 1) {
    for (int b = a + 1; b < limit; b = b + 1) {
      if (gcd_rec(a, b) == 1) {
        count = count + 1;
      }
    }
  }
  return count;
}

int main() {
  if (gcd_rec(252, 105) != gcd_iter(252, 105)) {
    return 1;
  }
  int l = lcm(12, 18);
  int c = coprime_count(30);
  return (l + c) % 256;
}
