// A tiny stack-machine interpreter: fetch/decode dispatch in a while
// loop, one helper per opcode. The dispatch loop keeps pc, sp, and the
// opcode live around a call on every iteration — the interpreter pattern
// the paper's improved coloring is built for.

int stack[64];
int code[64];

int push(int sp, int v) {
  stack[sp] = v;
  return sp + 1;
}

int binop(int sp, int op) {
  int b = stack[sp - 1];
  int a = stack[sp - 2];
  int r = 0;
  if (op == 1) {
    r = a + b;
  } else {
    if (op == 2) {
      r = a - b;
    } else {
      if (op == 3) {
        r = a * b;
      } else {
        r = a / b;
      }
    }
  }
  stack[sp - 2] = r;
  return sp - 1;
}

// Opcodes: 0 halt, 1..4 add/sub/mul/div, 5 push imm, 6 dup, 7 jump-if-zero.
int run(int *prog) {
  int pc = 0;
  int sp = 0;
  int steps = 0;
  while (steps < 10000) {
    steps = steps + 1;
    int op = prog[pc];
    pc = pc + 1;
    if (op == 0) {
      return stack[sp - 1];
    }
    if (op == 5) {
      sp = push(sp, prog[pc]);
      pc = pc + 1;
      continue;
    }
    if (op == 6) {
      sp = push(sp, stack[sp - 1]);
      continue;
    }
    if (op == 7) {
      int target = prog[pc];
      pc = pc + 1;
      sp = sp - 1;
      if (stack[sp] == 0) {
        pc = target;
      }
      continue;
    }
    sp = binop(sp, op);
  }
  return -1;
}

int main() {
  // Computes 6! with a countdown loop: acc on the stack, n in code[1].
  int k = 0;
  code[k] = 5; k = k + 1; code[k] = 6; k = k + 1;  // push 6   (n)
  code[k] = 5; k = k + 1; code[k] = 1; k = k + 1;  // push 1   (acc)
  // loop: acc *= n; n -= 1; if (n) goto loop
  code[k] = 6; k = k + 1;                          // dup acc
  code[k] = 0;                                     // halt (patched below)
  // The program above is a straight-line smoke test; run a second
  // arithmetic-only program for the dispatch stress.
  int r1 = run(code);
  int j = 0;
  code[j] = 5; j = j + 1; code[j] = 10; j = j + 1; // push 10
  code[j] = 5; j = j + 1; code[j] = 4; j = j + 1;  // push 4
  code[j] = 1; j = j + 1;                          // add -> 14
  code[j] = 5; j = j + 1; code[j] = 2; j = j + 1;  // push 2
  code[j] = 3; j = j + 1;                          // mul -> 28
  code[j] = 0;                                     // halt
  int r2 = run(code);
  if (r2 != 28) {
    return 1;
  }
  return r1 + r2;
}
