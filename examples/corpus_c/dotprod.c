// Vector kernels: dot product, axpy, and an L1 norm, composed into a
// Gram-matrix corner. Pointer-parameter loops with multiply-accumulate
// chains — moderate pressure, no recursion, call-dense driver.

int dot(int *x, int *y, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc + x[i] * y[i];
  }
  return acc;
}

int axpy(int a, int *x, int *y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    y[i] = a * x[i] + y[i];
  }
  return 0;
}

int norm1(int *x, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int v = x[i];
    if (v < 0) {
      v = -v;
    }
    acc = acc + v;
  }
  return acc;
}

int vx[32];
int vy[32];
int vz[32];
int gram[9];

int main() {
  int n = 32;
  for (int i = 0; i < n; i = i + 1) {
    vx[i] = i - 16;
    vy[i] = 2 * i - n;
    vz[i] = (i * i) % 17;
  }
  gram[0] = dot(vx, vx, n);
  gram[1] = dot(vx, vy, n);
  gram[2] = dot(vx, vz, n);
  gram[4] = dot(vy, vy, n);
  gram[5] = dot(vy, vz, n);
  gram[8] = dot(vz, vz, n);
  gram[3] = gram[1];
  gram[6] = gram[2];
  gram[7] = gram[5];
  axpy(3, vx, vy, n);
  int total = norm1(vy, n) + norm1(vz, n);
  return (gram[0] + total) % 256;
}
