// Collatz trajectories: step counts and peak values over a range, with
// the per-number loop factored into helpers so every iteration of the
// scan makes two calls.

int collatz_steps(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
  }
  return steps;
}

int collatz_peak(int n) {
  int peak = n;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    if (n > peak) {
      peak = n;
    }
  }
  return peak;
}

int main() {
  int longest = 0;
  int argmax = 1;
  int highest = 0;
  for (int i = 1; i < 200; i = i + 1) {
    int s = collatz_steps(i);
    int p = collatz_peak(i);
    if (s > longest) {
      longest = s;
      argmax = i;
    }
    if (p > highest) {
      highest = p;
    }
  }
  if (highest < longest) {
    return 1;
  }
  return argmax;
}
