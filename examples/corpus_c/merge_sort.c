// Bottom-up merge sort with an explicit scratch buffer: nested run loops
// around a three-cursor merge helper. High integer pressure in merge
// (six live cursors) with calls at every run boundary.

int merge(int *a, int *tmp, int lo, int mid, int hi) {
  int i = lo;
  int j = mid;
  int k = lo;
  while (i < mid && j < hi) {
    if (a[i] <= a[j]) {
      tmp[k] = a[i];
      i = i + 1;
    } else {
      tmp[k] = a[j];
      j = j + 1;
    }
    k = k + 1;
  }
  while (i < mid) {
    tmp[k] = a[i];
    i = i + 1;
    k = k + 1;
  }
  while (j < hi) {
    tmp[k] = a[j];
    j = j + 1;
    k = k + 1;
  }
  for (int t = lo; t < hi; t = t + 1) {
    a[t] = tmp[t];
  }
  return hi - lo;
}

int min_int(int a, int b) {
  if (a < b) {
    return a;
  }
  return b;
}

int merge_sort(int *a, int *tmp, int n) {
  int merges = 0;
  for (int width = 1; width < n; width = 2 * width) {
    for (int lo = 0; lo < n; lo = lo + 2 * width) {
      int mid = min_int(lo + width, n);
      int hi = min_int(lo + 2 * width, n);
      if (mid < hi) {
        merge(a, tmp, lo, mid, hi);
        merges = merges + 1;
      }
    }
  }
  return merges;
}

int input[80];
int scratch[80];

int main() {
  int n = 80;
  for (int i = 0; i < n; i = i + 1) {
    input[i] = (n - i) * 31 % 103;
  }
  int merges = merge_sort(input, scratch, n);
  for (int i = 1; i < n; i = i + 1) {
    if (input[i - 1] > input[i]) {
      return 1;
    }
  }
  return merges;
}
