// Insertion sort plus a binary-search variant that calls a comparator
// helper from the hot inner loop: a call inside a loop nest is the paper's
// canonical caller-save stress.

int less_than(int x, int y) {
  if (x < y) {
    return 1;
  }
  return 0;
}

int insertion_sort(int *a, int n) {
  int moves = 0;
  for (int i = 1; i < n; i = i + 1) {
    int key = a[i];
    int j = i - 1;
    while (j >= 0 && less_than(key, a[j])) {
      a[j + 1] = a[j];
      j = j - 1;
      moves = moves + 1;
    }
    a[j + 1] = key;
  }
  return moves;
}

int find_slot(int *a, int n, int key) {
  int lo = 0;
  int hi = n;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (less_than(a[mid], key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int buffer[48];

int main() {
  int n = 48;
  for (int i = 0; i < n; i = i + 1) {
    buffer[i] = (i * 37 + 11) % 97;
  }
  int moves = insertion_sort(buffer, n);
  int pos = find_slot(buffer, n, 50);
  return moves + pos;
}
