// Binary search, iterative and recursive, plus lower-bound, exercised
// over a generated sorted table. Short hot loops where the three cursors
// (lo, hi, mid) fight the call for registers.

int bsearch_iter(int *a, int n, int key) {
  int lo = 0;
  int hi = n - 1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (a[mid] == key) {
      return mid;
    }
    if (a[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

int bsearch_rec(int *a, int lo, int hi, int key) {
  if (lo > hi) {
    return -1;
  }
  int mid = lo + (hi - lo) / 2;
  if (a[mid] == key) {
    return mid;
  }
  if (a[mid] < key) {
    return bsearch_rec(a, mid + 1, hi, key);
  }
  return bsearch_rec(a, lo, mid - 1, key);
}

int lower_bound(int *a, int n, int key) {
  int lo = 0;
  int hi = n;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (a[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int table[100];

int main() {
  int n = 100;
  for (int i = 0; i < n; i = i + 1) {
    table[i] = i * 3;
  }
  int hits = 0;
  for (int key = 0; key < 300; key = key + 7) {
    int a = bsearch_iter(table, n, key);
    int b = bsearch_rec(table, 0, n - 1, key);
    if (a != b) {
      return 1;
    }
    if (a >= 0) {
      hits = hits + 1;
    }
    if (lower_bound(table, n, key) > n) {
      return 2;
    }
  }
  return hits;
}
