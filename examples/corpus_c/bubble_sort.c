// Bubble sort with an early-exit pass flag, plus a verification sweep.
// Classic quadratic nest: a compare-heavy inner loop around a swap helper,
// so the caller keeps hot values live across calls.

int swap(int *a, int i, int j) {
  int tmp = a[i];
  a[i] = a[j];
  a[j] = tmp;
  return 0;
}

int bubble_sort(int *a, int n) {
  int swapped = 1;
  int passes = 0;
  while (swapped) {
    swapped = 0;
    for (int i = 0; i + 1 < n; i = i + 1) {
      if (a[i] > a[i + 1]) {
        swap(a, i, i + 1);
        swapped = 1;
      }
    }
    passes = passes + 1;
  }
  return passes;
}

int is_sorted(int *a, int n) {
  for (int i = 0; i + 1 < n; i = i + 1) {
    if (a[i] > a[i + 1]) {
      return 0;
    }
  }
  return 1;
}

int data[64];

int main() {
  int n = 64;
  for (int i = 0; i < n; i = i + 1) {
    data[i] = (n - i) * 7 % 101;
  }
  int passes = bubble_sort(data, n);
  if (!is_sorted(data, n)) {
    return 1;
  }
  return passes;
}
