// Dense matrix multiply on flattened N x N arrays (the subset has 1-D
// arrays only). The triple nest keeps row/column cursors and the
// accumulator competing for registers at depth 3.

int n_dim() {
  return 12;
}

int matmul(int *a, int *b, int *c, int n) {
  for (int i = 0; i < n; i = i + 1) {
    for (int j = 0; j < n; j = j + 1) {
      int acc = 0;
      for (int k = 0; k < n; k = k + 1) {
        acc = acc + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = acc;
    }
  }
  return 0;
}

int trace(int *m, int n) {
  int t = 0;
  for (int i = 0; i < n; i = i + 1) {
    t = t + m[i * n + i];
  }
  return t;
}

int ma[144];
int mb[144];
int mc[144];

int main() {
  int n = n_dim();
  for (int i = 0; i < n; i = i + 1) {
    for (int j = 0; j < n; j = j + 1) {
      ma[i * n + j] = i + j;
      if (i == j) {
        mb[i * n + j] = 1;
      } else {
        mb[i * n + j] = 0;
      }
    }
  }
  matmul(ma, mb, mc, n);
  return trace(mc, n) - trace(ma, n);
}
