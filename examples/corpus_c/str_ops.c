// C-string routines over word arrays (the subset has no char type, so
// "strings" are zero-terminated int arrays): length, copy, compare, and a
// naive substring search built on them.

int str_len(int *s) {
  int n = 0;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

int str_copy(int *dst, int *src) {
  int i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

int str_cmp(int *a, int *b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) {
    i = i + 1;
  }
  return a[i] - b[i];
}

int str_find(int *hay, int *needle) {
  int n = str_len(hay);
  int m = str_len(needle);
  for (int i = 0; i + m <= n; i = i + 1) {
    int j = 0;
    while (j < m && hay[i + j] == needle[j]) {
      j = j + 1;
    }
    if (j == m) {
      return i;
    }
  }
  return -1;
}

int text[32];
int pattern[8];
int scratch[32];

int main() {
  // "abracadabra" encoded as small ints, 0-terminated.
  int k = 0;
  text[k] = 1; k = k + 1;  // a
  text[k] = 2; k = k + 1;  // b
  text[k] = 18; k = k + 1; // r
  text[k] = 1; k = k + 1;  // a
  text[k] = 3; k = k + 1;  // c
  text[k] = 1; k = k + 1;  // a
  text[k] = 4; k = k + 1;  // d
  text[k] = 1; k = k + 1;  // a
  text[k] = 2; k = k + 1;  // b
  text[k] = 18; k = k + 1; // r
  text[k] = 1; k = k + 1;  // a
  text[k] = 0;
  pattern[0] = 4;
  pattern[1] = 1;
  pattern[2] = 2;
  pattern[3] = 0;
  str_copy(scratch, text);
  if (str_cmp(scratch, text) != 0) {
    return 1;
  }
  int at = str_find(text, pattern);
  return str_len(text) * 10 + at;
}
