// In-place reversal and palindrome testing over zero-terminated word
// arrays, with a rotate built from three reversals — helpers stacked on
// helpers, so most functions are both callers and callees.

int w_len(int *s) {
  int n = 0;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

int reverse_range(int *s, int lo, int hi) {
  while (lo < hi) {
    int t = s[lo];
    s[lo] = s[hi];
    s[hi] = t;
    lo = lo + 1;
    hi = hi - 1;
  }
  return 0;
}

int reverse(int *s) {
  int n = w_len(s);
  reverse_range(s, 0, n - 1);
  return n;
}

int is_palindrome(int *s) {
  int i = 0;
  int j = w_len(s) - 1;
  while (i < j) {
    if (s[i] != s[j]) {
      return 0;
    }
    i = i + 1;
    j = j - 1;
  }
  return 1;
}

int rotate(int *s, int k) {
  int n = w_len(s);
  if (n == 0) {
    return 0;
  }
  k = k % n;
  reverse_range(s, 0, k - 1);
  reverse_range(s, k, n - 1);
  reverse_range(s, 0, n - 1);
  return k;
}

int word[16];

int main() {
  int n = 9;
  for (int i = 0; i < n; i = i + 1) {
    word[i] = i + 1;
  }
  word[n] = 0;
  reverse(word);
  if (word[0] != n) {
    return 1;
  }
  rotate(word, 4);
  reverse(word);
  int pal = is_palindrome(word);
  return word[0] * 10 + pal;
}
