// N-queens backtracking: a recursive solver whose safety predicate is
// called once per candidate square. Deep recursion with loop-carried
// state live across every call.

int cols[12];

int safe(int row, int col) {
  for (int r = 0; r < row; r = r + 1) {
    if (cols[r] == col) {
      return 0;
    }
    int diff = cols[r] - col;
    if (diff < 0) {
      diff = -diff;
    }
    if (diff == row - r) {
      return 0;
    }
  }
  return 1;
}

int solve(int row, int n) {
  if (row == n) {
    return 1;
  }
  int count = 0;
  for (int col = 0; col < n; col = col + 1) {
    if (safe(row, col)) {
      cols[row] = col;
      count = count + solve(row + 1, n);
    }
  }
  return count;
}

int main() {
  int solutions = solve(0, 7);
  if (solutions != 40) {
    return 1;
  }
  return solutions;
}
