// Rolling checksums: an Adler-style pair of running sums and a
// multiplicative hash, chained block by block so each block's digest
// feeds the next call. Long dependence chains across call boundaries.

int mod_adler() {
  return 65521;
}

int adler(int *data, int n, int seed) {
  int a = seed % 65536;
  int b = seed / 65536;
  for (int i = 0; i < n; i = i + 1) {
    a = (a + data[i]) % mod_adler();
    b = (b + a) % mod_adler();
  }
  return b * 65536 + a;
}

int mix_hash(int *data, int n, int seed) {
  int h = seed;
  for (int i = 0; i < n; i = i + 1) {
    h = h * 31 + data[i];
    h = h % 1000003;
    if (h < 0) {
      h = -h;
    }
  }
  return h;
}

int block[64];

int main() {
  int digest = 1;
  int mixed = 7;
  for (int chunk = 0; chunk < 8; chunk = chunk + 1) {
    for (int i = 0; i < 64; i = i + 1) {
      block[i] = (chunk * 64 + i) * 13 % 251;
    }
    digest = adler(block, 64, digest);
    mixed = mix_hash(block, 64, mixed);
  }
  if (digest == 0) {
    return 1;
  }
  return (digest + mixed) % 256;
}
