// Sieve of Eratosthenes cross-checked against trial division. Mixes a
// memory-bound marking loop with a division-heavy predicate called from a
// loop — two very different register-pressure profiles in one module.

int sieve[256];

int run_sieve(int limit) {
  for (int i = 0; i < limit; i = i + 1) {
    sieve[i] = 1;
  }
  sieve[0] = 0;
  sieve[1] = 0;
  for (int p = 2; p * p < limit; p = p + 1) {
    if (sieve[p]) {
      for (int q = p * p; q < limit; q = q + p) {
        sieve[q] = 0;
      }
    }
  }
  int count = 0;
  for (int i = 0; i < limit; i = i + 1) {
    count = count + sieve[i];
  }
  return count;
}

int is_prime(int n) {
  if (n < 2) {
    return 0;
  }
  for (int d = 2; d * d <= n; d = d + 1) {
    if (n % d == 0) {
      return 0;
    }
  }
  return 1;
}

int main() {
  int limit = 256;
  int from_sieve = run_sieve(limit);
  int from_trial = 0;
  for (int i = 0; i < limit; i = i + 1) {
    if (is_prime(i)) {
      if (!sieve[i]) {
        return 1;
      }
      from_trial = from_trial + 1;
    }
  }
  if (from_sieve != from_trial) {
    return 2;
  }
  return from_sieve;
}
