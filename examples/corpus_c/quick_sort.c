// Recursive quicksort with Lomuto partitioning. The recursion makes every
// local in quick_sort live across two calls — exactly the storage-class
// decision (caller-save vs callee-save vs spill) the allocator weighs.

int partition(int *a, int lo, int hi) {
  int pivot = a[hi];
  int i = lo;
  for (int j = lo; j < hi; j = j + 1) {
    if (a[j] < pivot) {
      int tmp = a[i];
      a[i] = a[j];
      a[j] = tmp;
      i = i + 1;
    }
  }
  int tmp = a[i];
  a[i] = a[hi];
  a[hi] = tmp;
  return i;
}

int quick_sort(int *a, int lo, int hi) {
  if (lo >= hi) {
    return 0;
  }
  int p = partition(a, lo, hi);
  quick_sort(a, lo, p - 1);
  quick_sort(a, p + 1, hi);
  return 0;
}

int check(int *a, int n) {
  for (int i = 1; i < n; i = i + 1) {
    if (a[i - 1] > a[i]) {
      return 0;
    }
  }
  return 1;
}

int values[128];

int main() {
  int n = 128;
  int seed = 12345;
  for (int i = 0; i < n; i = i + 1) {
    seed = (seed * 1103 + 12345) % 65536;
    values[i] = seed % 1000;
  }
  quick_sort(values, 0, n - 1);
  return check(values, n);
}
