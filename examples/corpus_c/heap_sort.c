// Heapsort with sift-down factored out: log-depth loops inside a linear
// loop, all array traffic through one helper. The sift cursor pair stays
// live across the compare/swap sequence.

int sift_down(int *a, int start, int end) {
  int root = start;
  while (2 * root + 1 <= end) {
    int child = 2 * root + 1;
    int best = root;
    if (a[best] < a[child]) {
      best = child;
    }
    if (child + 1 <= end && a[best] < a[child + 1]) {
      best = child + 1;
    }
    if (best == root) {
      return root;
    }
    int t = a[root];
    a[root] = a[best];
    a[best] = t;
    root = best;
  }
  return root;
}

int heapify(int *a, int n) {
  for (int start = (n - 2) / 2; start >= 0; start = start - 1) {
    sift_down(a, start, n - 1);
  }
  return 0;
}

int heap_sort(int *a, int n) {
  heapify(a, n);
  for (int end = n - 1; end > 0; end = end - 1) {
    int t = a[0];
    a[0] = a[end];
    a[end] = t;
    sift_down(a, 0, end - 1);
  }
  return 0;
}

int keys[96];

int main() {
  int n = 96;
  for (int i = 0; i < n; i = i + 1) {
    keys[i] = (i * 53 + 29) % 89;
  }
  heap_sort(keys, n);
  for (int i = 1; i < n; i = i + 1) {
    if (keys[i - 1] > keys[i]) {
      return 1;
    }
  }
  return keys[n - 1];
}
