// Fibonacci three ways: naive double recursion, an iterative loop, and a
// memoized variant over a global table. Dense call sites with tiny frames
// — the optimistic allocator's favorite shape (Lueh & Gross §4.2).

int fib_rec(int n) {
  if (n < 2) {
    return n;
  }
  return fib_rec(n - 1) + fib_rec(n - 2);
}

int fib_iter(int n) {
  int a = 0;
  int b = 1;
  for (int i = 0; i < n; i = i + 1) {
    int next = a + b;
    a = b;
    b = next;
  }
  return a;
}

int memo[32];

int fib_memo(int n) {
  if (n < 2) {
    return n;
  }
  if (memo[n] > 0) {
    return memo[n];
  }
  int value = fib_memo(n - 1) + fib_memo(n - 2);
  memo[n] = value;
  return value;
}

int main() {
  for (int i = 0; i < 32; i = i + 1) {
    memo[i] = 0;
  }
  int r = fib_rec(14);
  int it = fib_iter(14);
  int mm = fib_memo(14);
  if (r != it) {
    return 1;
  }
  if (it != mm) {
    return 2;
  }
  return r % 256;
}
