// Histogram build, mode finding, and a cumulative-distribution rewrite
// over a pseudo-random sample: indexed global updates in loops, with the
// generator factored out so sampling is a call per element.

int state = 42;

int next_rand() {
  state = (state * 1103 + 12345) % 65536;
  return state;
}

int bins[16];

int build(int samples) {
  for (int i = 0; i < 16; i = i + 1) {
    bins[i] = 0;
  }
  for (int i = 0; i < samples; i = i + 1) {
    int v = next_rand() % 16;
    bins[v] = bins[v] + 1;
  }
  return samples;
}

int mode() {
  int best = 0;
  for (int i = 1; i < 16; i = i + 1) {
    if (bins[i] > bins[best]) {
      best = i;
    }
  }
  return best;
}

int to_cdf() {
  int run = 0;
  for (int i = 0; i < 16; i = i + 1) {
    run = run + bins[i];
    bins[i] = run;
  }
  return run;
}

int main() {
  int samples = 500;
  build(samples);
  int m = mode();
  int total = to_cdf();
  if (total != samples) {
    return 1;
  }
  if (bins[15] != samples) {
    return 2;
  }
  return m;
}
