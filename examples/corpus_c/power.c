// Modular exponentiation by squaring, recursive and iterative, plus a
// Fermat-style probe loop: multiplicative dependence chains where the
// base/exponent/modulus triple must survive each recursive call.

int mulmod(int a, int b, int m) {
  return a * b % m;
}

int pow_rec(int base, int exp, int m) {
  if (exp == 0) {
    return 1 % m;
  }
  int half = pow_rec(base, exp / 2, m);
  int sq = mulmod(half, half, m);
  if (exp % 2 == 1) {
    return mulmod(sq, base, m);
  }
  return sq;
}

int pow_iter(int base, int exp, int m) {
  int result = 1 % m;
  base = base % m;
  while (exp > 0) {
    if (exp % 2 == 1) {
      result = mulmod(result, base, m);
    }
    base = mulmod(base, base, m);
    exp = exp / 2;
  }
  return result;
}

int probe(int n) {
  // Fermat check base 2..5: n is "probably prime" if pass == 4.
  int pass = 0;
  for (int a = 2; a <= 5; a = a + 1) {
    if (pow_iter(a, n - 1, n) == 1) {
      pass = pass + 1;
    }
  }
  return pass;
}

int main() {
  for (int e = 0; e < 12; e = e + 1) {
    if (pow_rec(3, e, 1009) != pow_iter(3, e, 1009)) {
      return 1;
    }
  }
  int witnesses = probe(97) + probe(91); // 97 prime, 91 = 7*13
  return witnesses;
}
