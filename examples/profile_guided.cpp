//===- examples/profile_guided.cpp - Static vs profile frequencies --------===//
//
// The benefit functions are only as accurate as the execution-frequency
// estimates behind them (§4). This example allocates the same workload
// twice — once with the compiler's static estimates (50/50 branches, loops
// x10) and once with profile-accurate frequencies — and reports the
// overhead *measured under the true profile* in both cases, i.e. what the
// program would actually pay at run time. The gap is the value of
// profile-guided register allocation.
//
// Run:  ./profile_guided [program]
//
//===----------------------------------------------------------------------===//

#include "ccra.h"
#include "regalloc/CostAccounting.h"
#include "support/Table.h"
#include "workloads/SpecProxies.h"

#include <iostream>

using namespace ccra;

namespace {

/// Allocates a clone of \p M using \p DecisionMode frequencies, then
/// re-measures the resulting overhead instructions under the *true*
/// profile.
CostBreakdown allocateAndMeasure(const Module &M, FrequencyMode DecisionMode) {
  std::unique_ptr<Module> Clone = cloneModule(M);
  FrequencyInfo DecisionFreq = FrequencyInfo::compute(*Clone, DecisionMode);
  AllocationEngine Engine = EngineBuilder(RegisterConfig(9, 7, 3, 3))
                                .options(improvedOptions())
                                .build();
  Engine.allocateModule(*Clone, DecisionFreq);

  // The allocated clone now contains every overhead instruction (spill,
  // save/restore); weigh them with the truth.
  FrequencyInfo TrueFreq =
      FrequencyInfo::compute(*Clone, FrequencyMode::Profile);
  CostBreakdown Total;
  for (const auto &F : Clone->functions())
    Total += measureCostFromCode(*F, TrueFreq);
  return Total;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Program = Argc > 1 ? Argv[1] : "espresso";
  std::unique_ptr<Module> M = buildSpecProxy(Program);

  TextTable Table;
  Table.setHeader({"decision_info", "spill", "caller_sv", "callee_sv",
                   "total_at_runtime"});
  CostBreakdown Static = allocateAndMeasure(*M, FrequencyMode::Static);
  CostBreakdown Profile = allocateAndMeasure(*M, FrequencyMode::Profile);
  for (auto &[Name, Costs] :
       {std::pair<const char *, CostBreakdown &>{"static", Static},
        std::pair<const char *, CostBreakdown &>{"profile", Profile}})
    Table.addRow({Name, TextTable::formatCount(Costs.Spill),
                  TextTable::formatCount(Costs.CallerSave),
                  TextTable::formatCount(Costs.CalleeSave),
                  TextTable::formatCount(Costs.total())});

  std::cout << "profile-guided allocation for " << Program
            << " at (9,7,3,3); overhead measured under the true profile:\n";
  Table.print(std::cout);
  double Gain = Static.total() / std::max(Profile.total(), 1.0);
  std::cout << "\nprofile information removes a factor of "
            << TextTable::formatDouble(Gain, 2)
            << " of run-time allocation overhead on this workload\n";
  return 0;
}
