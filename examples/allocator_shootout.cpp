//===- examples/allocator_shootout.cpp - Compare every allocator ----------===//
//
// Runs all the register-allocation approaches in the framework — base
// Chaitin, optimistic (Briggs), improved Chaitin (the paper's SC+BS+PR),
// the improved+optimistic hybrid, priority-based (Chow) with its three
// orderings, and CBH — on one workload and configuration, and prints a
// side-by-side comparison of cost components and allocator statistics.
//
// Run:  ./allocator_shootout [program] [Ri Rf Ei Ef]
//
//===----------------------------------------------------------------------===//

#include "ccra.h"
#include "support/Table.h"
#include "workloads/SpecProxies.h"

#include <cstdlib>
#include <iostream>

using namespace ccra;

int main(int Argc, char **Argv) {
  std::string Program = Argc > 1 ? Argv[1] : "eqntott";
  RegisterConfig Config(9, 7, 3, 3);
  if (Argc == 6)
    Config = RegisterConfig(static_cast<unsigned>(std::atoi(Argv[2])),
                            static_cast<unsigned>(std::atoi(Argv[3])),
                            static_cast<unsigned>(std::atoi(Argv[4])),
                            static_cast<unsigned>(std::atoi(Argv[5])));

  std::unique_ptr<Module> M = buildSpecProxy(Program);

  const std::vector<AllocatorOptions> Contenders = {
      baseChaitinOptions(),
      optimisticOptions(),
      improvedOptions(true, false, false),
      improvedOptions(),
      improvedOptimisticOptions(),
      priorityOptions(PriorityOrdering::FullSort),
      priorityOptions(PriorityOrdering::RemoveUnconstrained),
      priorityOptions(PriorityOrdering::SortUnconstrained),
      cbhOptions(),
  };

  // One grid point per contender, run concurrently; the telemetry half of
  // each run supplies the allocation wall-clock column.
  std::vector<ExperimentSpec> Specs;
  for (const AllocatorOptions &Opts : Contenders)
    Specs.push_back({M.get(), Config, Opts, FrequencyMode::Profile,
                     /*Jobs=*/1});
  std::vector<ExperimentRun> Runs = runExperiments(Specs, /*Jobs=*/0);

  TextTable Table;
  Table.setHeader({"allocator", "spill", "caller_sv", "callee_sv", "total",
                   "spilled", "voluntary", "coalesced", "rounds", "alloc_ms"});
  for (std::size_t I = 0; I < Contenders.size(); ++I) {
    const ExperimentResult &R = Runs[I].Result;
    Table.addRow({Contenders[I].describe(),
                  TextTable::formatCount(R.Costs.Spill),
                  TextTable::formatCount(R.Costs.CallerSave),
                  TextTable::formatCount(R.Costs.CalleeSave),
                  TextTable::formatCount(R.Costs.total()),
                  std::to_string(R.SpilledRanges),
                  std::to_string(R.VoluntarySpills),
                  std::to_string(R.CoalescedMoves),
                  std::to_string(R.MaxRounds),
                  TextTable::formatDouble(
                      Runs[I].Telemetry.timeMs(telemetry::AllocateTotal), 2)});
  }
  std::cout << "allocator shootout on " << Program << " at " << Config.label()
            << " (dynamic frequencies):\n";
  Table.print(std::cout);
  return 0;
}
