//===- examples/allocator_shootout.cpp - Compare every allocator ----------===//
//
// Runs all the register-allocation approaches in the framework — base
// Chaitin, optimistic (Briggs), improved Chaitin (the paper's SC+BS+PR),
// the improved+optimistic hybrid, priority-based (Chow) with its three
// orderings, and CBH — on one workload and configuration, and prints a
// side-by-side comparison of cost components and allocator statistics.
//
// Run:  ./allocator_shootout [program] [Ri Rf Ei Ef]
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/Table.h"
#include "workloads/SpecProxies.h"

#include <cstdlib>
#include <iostream>

using namespace ccra;

int main(int Argc, char **Argv) {
  std::string Program = Argc > 1 ? Argv[1] : "eqntott";
  RegisterConfig Config(9, 7, 3, 3);
  if (Argc == 6)
    Config = RegisterConfig(static_cast<unsigned>(std::atoi(Argv[2])),
                            static_cast<unsigned>(std::atoi(Argv[3])),
                            static_cast<unsigned>(std::atoi(Argv[4])),
                            static_cast<unsigned>(std::atoi(Argv[5])));

  std::unique_ptr<Module> M = buildSpecProxy(Program);

  const std::vector<AllocatorOptions> Contenders = {
      baseChaitinOptions(),
      optimisticOptions(),
      improvedOptions(true, false, false),
      improvedOptions(),
      improvedOptimisticOptions(),
      priorityOptions(PriorityOrdering::FullSort),
      priorityOptions(PriorityOrdering::RemoveUnconstrained),
      priorityOptions(PriorityOrdering::SortUnconstrained),
      cbhOptions(),
  };

  TextTable Table;
  Table.setHeader({"allocator", "spill", "caller_sv", "callee_sv", "total",
                   "spilled", "voluntary", "coalesced", "rounds"});
  for (const AllocatorOptions &Opts : Contenders) {
    ExperimentResult R =
        runExperiment(*M, Config, Opts, FrequencyMode::Profile);
    Table.addRow({Opts.describe(), TextTable::formatCount(R.Costs.Spill),
                  TextTable::formatCount(R.Costs.CallerSave),
                  TextTable::formatCount(R.Costs.CalleeSave),
                  TextTable::formatCount(R.Costs.total()),
                  std::to_string(R.SpilledRanges),
                  std::to_string(R.VoluntarySpills),
                  std::to_string(R.CoalescedMoves),
                  std::to_string(R.MaxRounds)});
  }
  std::cout << "allocator shootout on " << Program << " at " << Config.label()
            << " (dynamic frequencies):\n";
  Table.print(std::cout);
  return 0;
}
