//===- bench/perf_grid.cpp - Grid-throughput benchmark --------------------===//
//
// Measures the wall-clock throughput of a register-configuration sweep —
// the shape of every reproduction figure — with and without the shared
// infrastructure this library's grid path uses:
//
//   legacy:    per-point frequency/liveness recomputation, per-pass
//              liveness recomputation in the coalescer, per-use scratch
//              allocations, a private (nested) pool per engine, the dense
//              bit-matrix interference graph, and the O(V^2) reference
//              simplifier — the pre-optimization execution model, selected
//              via AllocatorOptions::IncrementalLiveness/ScratchArenas =
//              false, GraphMode = Dense, LegacySimplifier = true, and
//              plain per-spec runExperiment calls.
//   optimized: one ModuleAnalysisCache and one shared ThreadPool for the
//              whole grid (runExperiments), baseline-liveness seeding,
//              incremental liveness, per-slot scratch arenas,
//              biggest-function-first task order, the sparse interference
//              graph, and the worklist simplifier.
//
// The two paths must produce bit-identical ExperimentResults; any
// divergence is a correctness bug and exits non-zero (tools/check.sh runs
// this as a Release-mode smoke). The speedup, telemetry, and the
// at-most-one-liveness-compute-per-round invariant are reported on stdout
// and written to BENCH_grid.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>
#include <cmath>
#include <fstream>

using namespace ccra;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The legacy execution model: no shared cache, no shared pool (each
/// parallel engine spawns its own), grid-level fan-out via a private pool.
std::vector<ExperimentRun>
runLegacyGrid(const std::vector<ExperimentSpec> &Specs, unsigned Jobs) {
  std::vector<ExperimentRun> Runs(Specs.size());
  if (Jobs <= 1) {
    for (std::size_t I = 0; I < Specs.size(); ++I)
      Runs[I] = runExperiment(Specs[I]);
    return Runs;
  }
  ThreadPool Pool(Jobs);
  Pool.parallelForEach(Specs.size(), [&](std::size_t I) {
    Runs[I] = runExperiment(Specs[I]);
  });
  return Runs;
}

bool sameResult(const ExperimentResult &A, const ExperimentResult &B) {
  return A.Costs.Spill == B.Costs.Spill &&
         A.Costs.CallerSave == B.Costs.CallerSave &&
         A.Costs.CalleeSave == B.Costs.CalleeSave &&
         A.Costs.Shuffle == B.Costs.Shuffle &&
         A.SpilledRanges == B.SpilledRanges &&
         A.VoluntarySpills == B.VoluntarySpills &&
         A.CoalescedMoves == B.CoalescedMoves &&
         A.CalleeRegsPaid == B.CalleeRegsPaid &&
         A.MaxRounds == B.MaxRounds && A.Cycles == B.Cycles;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  unsigned Jobs =
      Args.Jobs == 1 ? ThreadPool::defaultParallelism() : Args.Jobs;

  // The sweep: every standard register configuration (17) for three of the
  // larger proxies — at least a 24-point grid. Spec.Jobs = 2 gives each
  // point internal function parallelism, which on the legacy path means a
  // nested pool per engine (the oversubscription this PR removes) and on
  // the optimized path means nested batches on the one shared pool.
  std::vector<std::unique_ptr<Module>> Programs;
  for (const char *Name : {"gcc", "espresso", "fpppp"})
    Programs.push_back(buildSpecProxy(Name));

  AllocatorOptions Optimized = improvedOptions();
  Optimized.Verify = false; // measured elsewhere; keep the loop hot
  // Force the sparse graph everywhere so the bit-identity gate spans the
  // representations (Auto would pick Dense at these function sizes).
  Optimized.GraphMode = GraphRep::Sparse;
  AllocatorOptions Legacy = Optimized;
  Legacy.IncrementalLiveness = false;
  Legacy.ScratchArenas = false;
  Legacy.LegacySimplifier = true;
  Legacy.GraphMode = GraphRep::Dense;

  std::vector<ExperimentSpec> LegacySpecs, OptimizedSpecs;
  for (const auto &M : Programs)
    for (const RegisterConfig &Config : standardConfigSweep()) {
      LegacySpecs.push_back(
          {M.get(), Config, Legacy, FrequencyMode::Profile, /*Jobs=*/2});
      OptimizedSpecs.push_back(
          {M.get(), Config, Optimized, FrequencyMode::Profile, /*Jobs=*/2});
    }

  // Warm-up pass (untimed) so both timed runs see hot caches and a
  // faulted-in heap, then best-of-5 wall clock per path (the grids are
  // millisecond-scale, so the minimum is the noise-robust statistic).
  runLegacyGrid(LegacySpecs, Jobs);
  double LegacySeconds = 1e9, OptimizedSeconds = 1e9;
  std::vector<ExperimentRun> LegacyRuns, OptimizedRuns;
  TelemetrySnapshot GridTelemetry;
  for (int Rep = 0; Rep < 5; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    LegacyRuns = runLegacyGrid(LegacySpecs, Jobs);
    LegacySeconds = std::min(LegacySeconds, secondsSince(T0));

    auto T1 = std::chrono::steady_clock::now();
    OptimizedRuns = runExperiments(OptimizedSpecs, Jobs, &GridTelemetry);
    OptimizedSeconds = std::min(OptimizedSeconds, secondsSince(T1));
  }

  // Correctness gate: the optimized grid must reproduce the legacy grid
  // bit for bit (same costs, same statistics, same cycle estimates).
  unsigned Divergences = 0;
  for (std::size_t I = 0; I < LegacyRuns.size(); ++I)
    if (!sameResult(LegacyRuns[I].Result, OptimizedRuns[I].Result)) {
      std::cerr << "DIVERGENCE at grid point " << I << "\n";
      ++Divergences;
    }

  // Invariant gate: with incremental liveness each allocation runs the
  // full dataflow at most once per round (exactly zero times when the
  // baseline seed covers round 1).
  double Computes = 0, Rounds = 0, CacheHits = 0, ScratchReuses = 0;
  for (const ExperimentRun &Run : OptimizedRuns) {
    auto Count = [&](const char *Key) {
      auto It = Run.Telemetry.Counters.find(Key);
      return It == Run.Telemetry.Counters.end() ? 0.0 : It->second;
    };
    Computes += Count(telemetry::LivenessComputes);
    Rounds += Count(telemetry::Rounds);
    CacheHits += Count(telemetry::SchedAnalysisCacheHits);
    ScratchReuses += Count(telemetry::SchedScratchReuses);
  }
  bool ComputesBounded = Computes <= Rounds;

  double Speedup = OptimizedSeconds > 0 ? LegacySeconds / OptimizedSeconds
                                        : 0.0;
  std::cout << "== perf_grid: " << LegacySpecs.size()
            << "-point sweep, jobs=" << Jobs << " ==\n"
            << "legacy:     " << TextTable::formatDouble(LegacySeconds, 3)
            << " s\n"
            << "optimized:  " << TextTable::formatDouble(OptimizedSeconds, 3)
            << " s\n"
            << "speedup:    " << TextTable::formatDouble(Speedup, 2) << "x\n"
            << "bit-identical results: "
            << (Divergences == 0 ? "yes" : "NO") << "\n"
            << "liveness computes <= rounds: " << Computes << " <= " << Rounds
            << (ComputesBounded ? "" : "  VIOLATED") << "\n"
            << "analysis cache hits: " << CacheHits
            << ", scratch reuses: " << ScratchReuses << "\n";

  std::ofstream Json("BENCH_grid.json");
  Json << "{\n"
       << "  \"points\": " << LegacySpecs.size() << ",\n"
       << "  \"jobs\": " << Jobs << ",\n"
       << "  \"legacy_seconds\": " << LegacySeconds << ",\n"
       << "  \"optimized_seconds\": " << OptimizedSeconds << ",\n"
       << "  \"speedup\": " << Speedup << ",\n"
       << "  \"bit_identical\": " << (Divergences == 0 ? "true" : "false")
       << ",\n"
       << "  \"liveness_computes\": " << Computes << ",\n"
       << "  \"rounds\": " << Rounds << ",\n"
       << "  \"analysis_cache_hits\": " << CacheHits << ",\n"
       << "  \"scratch_reuses\": " << ScratchReuses << ",\n"
       << "  \"grid\": ";
  GridTelemetry.writeJson(Json);
  Json << "\n}\n";

  if (Args.Telemetry)
    GridTelemetry.writeJson(std::cerr);
  return (Divergences == 0 && ComputesBounded) ? 0 : 1;
}
