//===- bench/BenchUtil.h - Shared helpers for the bench binaries -*- C++ -*-===//
///
/// \file
/// Small shared pieces for the reproduction benches: flag parsing (--csv
/// for machine-readable output), ratio formatting, and the experiment-grid
/// helpers every figure/table binary uses.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_BENCH_BENCHUTIL_H
#define CCRA_BENCH_BENCHUTIL_H

#include "harness/Experiment.h"
#include "support/Table.h"
#include "workloads/SpecProxies.h"

#include <cstring>
#include <iostream>
#include <string>

namespace ccra {

struct BenchArgs {
  bool Csv = false;
  bool Orderings = false; ///< fig10: also compare the §9.1 orderings.
};

inline BenchArgs parseBenchArgs(int Argc, char **Argv) {
  BenchArgs Args;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--csv") == 0)
      Args.Csv = true;
    else if (std::strcmp(Argv[I], "--orderings") == 0)
      Args.Orderings = true;
  }
  return Args;
}

inline void emitTable(const TextTable &Table, const BenchArgs &Args) {
  if (Args.Csv)
    Table.printCsv(std::cout);
  else
    Table.print(std::cout);
}

/// Overhead ratio "Base / Other" with the paper's convention: bigger than
/// 1.00 means Other removes overhead relative to base Chaitin coloring.
inline double overheadRatio(const ExperimentResult &Base,
                            const ExperimentResult &Other) {
  double Denominator = Other.Costs.total();
  double Numerator = Base.Costs.total();
  if (Denominator == 0.0)
    return Numerator == 0.0 ? 1.0 : 999.0;
  return Numerator / Denominator;
}

} // namespace ccra

#endif // CCRA_BENCH_BENCHUTIL_H
