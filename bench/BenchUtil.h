//===- bench/BenchUtil.h - Shared helpers for the bench binaries -*- C++ -*-===//
///
/// \file
/// Small shared pieces for the reproduction benches: flag parsing (--csv
/// for machine-readable output, --telemetry for the aggregate counters and
/// phase timers on stderr, --jobs=N for parallel function allocation),
/// ratio formatting, and the experiment-grid helpers every figure/table
/// binary uses.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_BENCH_BENCHUTIL_H
#define CCRA_BENCH_BENCHUTIL_H

#include "ccra.h"
#include "support/Table.h"
#include "workloads/SpecProxies.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

namespace ccra {

struct BenchArgs {
  bool Csv = false;
  bool Orderings = false;  ///< fig10: also compare the §9.1 orderings.
  bool Telemetry = false;  ///< emit the aggregate telemetry on stderr
  unsigned Jobs = 1;       ///< function allocations per experiment (0=hw)
};

inline BenchArgs parseBenchArgs(int Argc, char **Argv) {
  BenchArgs Args;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--csv") == 0)
      Args.Csv = true;
    else if (std::strcmp(Argv[I], "--orderings") == 0)
      Args.Orderings = true;
    else if (std::strcmp(Argv[I], "--telemetry") == 0)
      Args.Telemetry = true;
    else if (std::strncmp(Argv[I], "--jobs=", 7) == 0)
      std::sscanf(Argv[I] + 7, "%u", &Args.Jobs);
  }
  return Args;
}

/// Runs a bench binary's experiment grid points and accumulates the
/// telemetry of every run. Call emitTelemetry() once the grid is done;
/// with --telemetry it prints the aggregate to stderr (JSON, or CSV when
/// --csv is also given) so tables stay clean on stdout.
///
/// The runner owns a ModuleAnalysisCache scoped to the module currently
/// being swept, so a bench running many configurations over one program
/// computes each frequency analysis and baseline liveness once, not once
/// per grid point. The cache is dropped when the module changes (benches
/// sweep one program at a time and may destroy it afterwards, so holding
/// entries for a dead module's address would be unsound).
class GridRunner {
public:
  explicit GridRunner(const BenchArgs &Args) : Args(Args) {}

  ExperimentResult run(const Module &M, const RegisterConfig &Config,
                       const AllocatorOptions &Opts, FrequencyMode Mode) {
    if (&M != LastModule || M.getName() != LastName) {
      Cache = std::make_unique<ModuleAnalysisCache>();
      LastModule = &M;
      LastName = M.getName();
    }
    ExperimentRun Run =
        runExperiment({&M, Config, Opts, Mode, Args.Jobs}, Cache.get());
    Total += Run.Telemetry;
    return Run.Result;
  }

  void emitTelemetry() const {
    if (!Args.Telemetry)
      return;
    if (Args.Csv)
      Total.writeCsv(std::cerr);
    else
      Total.writeJson(std::cerr);
  }

private:
  BenchArgs Args;
  std::unique_ptr<ModuleAnalysisCache> Cache;
  const Module *LastModule = nullptr;
  std::string LastName;
  TelemetrySnapshot Total;
};

inline void emitTable(const TextTable &Table, const BenchArgs &Args) {
  if (Args.Csv)
    Table.printCsv(std::cout);
  else
    Table.print(std::cout);
}

/// Overhead ratio "Base / Other" with the paper's convention: bigger than
/// 1.00 means Other removes overhead relative to base Chaitin coloring.
inline double overheadRatio(const ExperimentResult &Base,
                            const ExperimentResult &Other) {
  double Denominator = Other.Costs.total();
  double Numerator = Base.Costs.total();
  if (Denominator == 0.0)
    return Numerator == 0.0 ? 1.0 : 999.0;
  return Numerator / Denominator;
}

} // namespace ccra

#endif // CCRA_BENCH_BENCHUTIL_H
