//===- bench/fig11_cbh_comparison.cpp - Paper Figure 11 & §10 -------------===//
//
// Figure 11: improved Chaitin-style coloring vs the CBH cost model, as
// overhead ratios over base Chaitin, per configuration and frequency
// source. The paper's findings this reproduces:
//  - CBH forbids caller-save registers to call-crossing live ranges, so
//    with few callee-save registers those ranges compete for a starved
//    resource and spill (ratios below base for alvinn/compress/ear/
//    espresso/gcc/li/sc/doduc/matrix300/spice at small Ei/Ef);
//  - CBH needs several extra callee-save registers to catch up
//    (matrix300, nasa7);
//  - under profile information CBH cannot match improved coloring for
//    programs whose hot-path live ranges cross cold calls: it pays callee
//    saves (or spills) for calls that almost never run, while improved
//    coloring pays the cold calls' tiny caller-save cost.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  GridRunner Grid(Args);

  const std::vector<std::string> Programs = {"alvinn", "ear",   "li",
                                             "matrix300", "nasa7", "gcc",
                                             "compress",  "tomcatv"};
  for (const std::string &Program : Programs) {
    std::unique_ptr<Module> M = buildSpecProxy(Program);
    for (FrequencyMode Mode :
         {FrequencyMode::Static, FrequencyMode::Profile}) {
      TextTable Table;
      Table.setHeader({"config", "CBH", "improved"});
      for (const RegisterConfig &Config : standardConfigSweep()) {
        ExperimentResult Base =
            Grid.run(*M, Config, baseChaitinOptions(), Mode);
        ExperimentResult Cbh = Grid.run(*M, Config, cbhOptions(), Mode);
        ExperimentResult Improved =
            Grid.run(*M, Config, improvedOptions(), Mode);
        Table.addRow({Config.label(),
                      TextTable::formatDouble(overheadRatio(Base, Cbh)),
                      TextTable::formatDouble(overheadRatio(Base, Improved))});
      }
      std::cout << "== Figure 11: " << Program << " ("
                << frequencyModeName(Mode)
                << "), ratios over base Chaitin ==\n";
      emitTable(Table, Args);
      std::cout << '\n';
    }
  }
  Grid.emitTelemetry();
  return 0;
}
