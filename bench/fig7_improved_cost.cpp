//===- bench/fig7_improved_cost.cpp - Paper Figure 7 ----------------------===//
//
// Figure 7: the absolute register overhead of improved Chaitin-style
// coloring (SC+BS+PR) for ear and eqntott — the companion to Figure 2. At
// the configurations where the base allocator's call cost dominates, the
// improved allocator removes it almost entirely: the paper reports the
// base allocator producing ~45x (ear) and ~66x (eqntott) the overhead of
// improved coloring.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  GridRunner Grid(Args);

  for (const std::string &Program : {std::string("ear"),
                                     std::string("eqntott")}) {
    std::unique_ptr<Module> M = buildSpecProxy(Program);
    TextTable Table;
    Table.setHeader({"config", "spill", "caller_sv", "callee_sv",
                     "improved_total", "base_total", "base/improved"});
    double BestRatio = 0.0;
    for (const RegisterConfig &Config : standardConfigSweep()) {
      ExperimentResult Improved = Grid.run(
          *M, Config, improvedOptions(), FrequencyMode::Profile);
      ExperimentResult Base = Grid.run(*M, Config, baseChaitinOptions(),
                                       FrequencyMode::Profile);
      double Ratio = overheadRatio(Base, Improved);
      BestRatio = std::max(BestRatio, Ratio);
      Table.addRow({Config.label(),
                    TextTable::formatCount(Improved.Costs.Spill),
                    TextTable::formatCount(Improved.Costs.CallerSave),
                    TextTable::formatCount(Improved.Costs.CalleeSave),
                    TextTable::formatCount(Improved.Costs.total()),
                    TextTable::formatCount(Base.Costs.total()),
                    TextTable::formatDouble(Ratio, 1)});
    }
    std::cout << "== Figure 7: improved (SC+BS+PR) register overhead, "
              << Program << " (dynamic) ==\n";
    emitTable(Table, Args);
    std::cout << "max base/improved factor: "
              << TextTable::formatDouble(BestRatio, 1) << "  (paper: "
              << (Program == "ear" ? "45" : "66") << "x)\n\n";
  }
  Grid.emitTelemetry();
  return 0;
}
