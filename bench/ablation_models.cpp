//===- bench/ablation_models.cpp - Design-choice ablations ----------------===//
//
// Ablations for the design choices DESIGN.md calls out, beyond the paper's
// own figures:
//
//  1. Callee-save cost model (§4): "first user pays" vs "shared". The paper
//     states the shared model is better for some SPEC92 programs and equal
//     for the rest — never worse.
//  2. Benefit-driven simplification key (§5): strategy 1 (max) vs strategy
//     2 (delta). The paper picked the delta key after strategy 1 *increased*
//     overhead for some programs.
//  3. Coalescing aggressiveness: Briggs-conservative (default) vs
//     aggressive (ignore the degree test). Aggressive coalescing can merge
//     itself into spills.
//
// Each table reports total overhead (dynamic frequencies) per program at a
// representative configuration, for both variants.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"

using namespace ccra;

namespace {

void runAblation(const std::string &Title, const AllocatorOptions &VariantA,
                 const std::string &NameA, const AllocatorOptions &VariantB,
                 const std::string &NameB, const RegisterConfig &Config,
                 const BenchArgs &Args, GridRunner &Grid) {
  TextTable Table;
  Table.setHeader({"program", NameA, NameB, NameA + "/" + NameB});
  for (const std::string &Program : specProxyNames()) {
    std::unique_ptr<Module> M = buildSpecProxy(Program);
    ExperimentResult A =
        Grid.run(*M, Config, VariantA, FrequencyMode::Profile);
    ExperimentResult B =
        Grid.run(*M, Config, VariantB, FrequencyMode::Profile);
    Table.addRow({Program, TextTable::formatCount(A.Costs.total()),
                  TextTable::formatCount(B.Costs.total()),
                  TextTable::formatDouble(
                      safeRatio(A.Costs.total(), B.Costs.total()))});
  }
  std::cout << "== Ablation: " << Title << " at " << Config.label()
            << " ==\n";
  emitTable(Table, Args);
  std::cout << '\n';
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  GridRunner Grid(Args);
  RegisterConfig Config(9, 7, 3, 3);

  AllocatorOptions FirstUser = improvedOptions();
  FirstUser.CalleeModel = CalleeCostModel::FirstUserPays;
  AllocatorOptions Shared = improvedOptions();
  Shared.CalleeModel = CalleeCostModel::Shared;
  runAblation("callee-save cost model (§4)", FirstUser, "first_user",
              Shared, "shared", Config, Args, Grid);

  AllocatorOptions MaxKey = improvedOptions();
  MaxKey.BSKey = BenefitKeyStrategy::MaxBenefit;
  AllocatorOptions DeltaKey = improvedOptions();
  DeltaKey.BSKey = BenefitKeyStrategy::Delta;
  runAblation("benefit-simplification key (§5)", MaxKey, "max_key",
              DeltaKey, "delta_key", Config, Args, Grid);

  AllocatorOptions Conservative = improvedOptions();
  AllocatorOptions Aggressive = improvedOptions();
  Aggressive.AggressiveCoalescing = true;
  runAblation("coalescing aggressiveness", Aggressive, "aggressive",
              Conservative, "conservative", Config, Args, Grid);

  Grid.emitTelemetry();
  return 0;
}
