//===- bench/fig6_enhancement_ratios.cpp - Paper Figure 6 -----------------===//
//
// Figure 6: overhead of base Chaitin-style coloring divided by the
// overhead of improved Chaitin-style coloring with enhancement combinations
// (SC, SC+PR, SC+BS, SC+BS+PR), per register configuration, for all
// fourteen programs, using profile ("dynamic") frequencies. Ratios above
// 1.0 mean the enhancement removes overhead. The paper's four program
// classes:
//   1. every enhancement contributes (nasa7, ear),
//   2. only storage-class analysis matters (li, sc, matrix300),
//   3. the preference decision changes nothing (eqntott, espresso,
//      compress, spice, fpppp, doduc),
//   4. nothing matters — no calls (tomcatv).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  GridRunner Grid(Args);

  for (const std::string &Program : specProxyNames()) {
    std::unique_ptr<Module> M = buildSpecProxy(Program);
    TextTable Table;
    Table.setHeader({"config", "SC", "SC+PR", "SC+BS", "SC+BS+PR"});
    for (const RegisterConfig &Config : standardConfigSweep()) {
      ExperimentResult Base = Grid.run(*M, Config, baseChaitinOptions(),
                                       FrequencyMode::Profile);
      ExperimentResult Sc = Grid.run(
          *M, Config, improvedOptions(true, false, false),
          FrequencyMode::Profile);
      ExperimentResult ScPr = Grid.run(
          *M, Config, improvedOptions(true, false, true),
          FrequencyMode::Profile);
      ExperimentResult ScBs = Grid.run(
          *M, Config, improvedOptions(true, true, false),
          FrequencyMode::Profile);
      ExperimentResult ScBsPr = Grid.run(
          *M, Config, improvedOptions(true, true, true),
          FrequencyMode::Profile);
      Table.addRow({Config.label(),
                    TextTable::formatDouble(overheadRatio(Base, Sc)),
                    TextTable::formatDouble(overheadRatio(Base, ScPr)),
                    TextTable::formatDouble(overheadRatio(Base, ScBs)),
                    TextTable::formatDouble(overheadRatio(Base, ScBsPr))});
    }
    std::cout << "== Figure 6: base/improved overhead ratio, " << Program
              << " (dynamic) ==\n";
    emitTable(Table, Args);
    std::cout << '\n';
  }
  Grid.emitTelemetry();
  return 0;
}
