//===- bench/OptimisticTable.h - Shared Table 2/3 driver --------*- C++ -*-===//
///
/// \file
/// Tables 2 and 3 are the same experiment under the two frequency sources:
/// base-Chaitin / optimistic overhead ratio per (program, configuration).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_BENCH_OPTIMISTICTABLE_H
#define CCRA_BENCH_OPTIMISTICTABLE_H

#include "BenchUtil.h"

namespace ccra {

inline void runOptimisticTable(FrequencyMode Mode, const BenchArgs &Args) {
  GridRunner Grid(Args);
  // A compact config subset keeps the table readable.
  const std::vector<RegisterConfig> Configs = {
      RegisterConfig(6, 4, 0, 0),  RegisterConfig(8, 6, 0, 0),
      RegisterConfig(7, 5, 1, 1),  RegisterConfig(8, 6, 2, 2),
      RegisterConfig(9, 7, 3, 3),  RegisterConfig(10, 8, 4, 4),
      RegisterConfig(12, 9, 5, 5), RegisterConfig(18, 10, 8, 6),
  };
  TextTable Table;
  std::vector<std::string> Header = {"program"};
  for (const RegisterConfig &Config : Configs)
    Header.push_back(Config.label());
  Table.setHeader(Header);

  for (const std::string &Program : specProxyNames()) {
    std::unique_ptr<Module> M = buildSpecProxy(Program);
    std::vector<std::string> Row = {Program};
    for (const RegisterConfig &Config : Configs) {
      ExperimentResult Base =
          Grid.run(*M, Config, baseChaitinOptions(), Mode);
      ExperimentResult Optimistic =
          Grid.run(*M, Config, optimisticOptions(), Mode);
      Row.push_back(TextTable::formatDouble(overheadRatio(Base, Optimistic)));
    }
    Table.addRow(Row);
  }
  emitTable(Table, Args);
  Grid.emitTelemetry();
}

} // namespace ccra

#endif // CCRA_BENCH_OPTIMISTICTABLE_H
