//===- bench/perf_service.cpp - Allocation service soak benchmark ---------===//
//
// The serving-stack gate: runs an in-process AllocationServer on an
// ephemeral loopback port and drives a mixed soak through real sockets —
// valid allocations over the SPEC proxies under rotating allocator
// configurations, malformed/torn frames on throwaway connections, tiny
// deadlines, and hook-forced queue overflow (SHED) slices — from several
// concurrent client connections.
//
// Every valid response is checked BIT-IDENTICAL (allocated IR text and
// exact cost totals) against an in-process allocation of the same request.
// After the soak, a second phase asserts graceful degradation: a drain is
// requested mid-flight and every outstanding request must still be
// answered (completed or refused with "draining") before wait() quiesces.
//
// Reports throughput and p50/p95/p99 request latency on stdout and writes
// BENCH_service.json. Exits non-zero on any bit-identity divergence,
// unexplained failure, or unclean drain.
//
// Phase 3 is the caching-tier gate: a Zipfian workload (skew 1.1 over the
// proxy x config x mode case population) against a cache-enabled, sharded
// server. Every response — cached or cold — is still checked bit-identical
// to in-process allocation, and the phase must clear 100x the committed
// pre-cache baseline (~64 req/s) with a nonzero hit rate. The mixed soak
// above runs with the cache DISABLED so "rps_before" stays comparable to
// that committed baseline.
//
// Phase 3b repeats the Zipf discipline over REAL code: every program
// under examples/corpus_c/ lowered by the C frontend, crossed with the
// allocator rotation and both frequency modes, with requests alternating
// the v1 text and v2 binary wire codecs. Gates: bit-identity on every
// response and a nonzero cache hit rate.
//
// Phase 4 is the connection-scaling gate for the event-loop server: it
// raises RLIMIT_NOFILE, parks --c10k-connections idle peers on the daemon
// (default 10000; 0 skips the phase), verifies allocations still complete
// bit-identical THROUGH the idle crowd, and then drains mid-flight — the
// whole crowd must be swept promptly, not waited out one timeout at a
// time.
//
// The mixed soak alternates wire codecs request-by-request (v1 text /
// v2 binary), so the soak numbers cover both ingestion paths, and it
// gates serve.batch <= 1.5x allocate_total: the response path may not
// cost more than half again the allocation work it transports.
//
//   perf_service [--requests=N] [--clients=N] [--queue=N] [--max-batch=N]
//                [--pool-threads=N] [--zipf-requests=N] [--shards=N]
//                [--cache-bytes=N] [--c10k-connections=N]
//                [--real-corpus-requests=N] [--real-corpus=DIR]
//
// Defaults: 10000 requests, 6 clients, 20000 Zipf requests, 2 shards,
// 10000 idle connections — the soak gate CI runs (CI sizes the idle
// crowd down to 5000 to stay within runner fd limits).
//
//===----------------------------------------------------------------------===//

#include "core/EngineBuilder.h"
#include "frontend/Frontend.h"
#include "ir/IRBinary.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Rng.h"
#include "workloads/SpecProxies.h"

#include <cmath>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#ifndef CCRA_SOURCE_DIR
#define CCRA_SOURCE_DIR "."
#endif

using namespace ccra;

namespace {

/// The committed pre-cache serving baseline this machine class measured
/// (BENCH_service.json before the caching tier landed). The Zipf phase
/// gates on 100x this number.
constexpr double CommittedBaselineRps = 64.0;

struct SoakOptions {
  unsigned Requests = 10000;
  unsigned Clients = 6;
  unsigned QueueCapacity = 64;
  unsigned MaxBatch = 8;
  unsigned PoolThreads = 0;
  unsigned MalformedEvery = 23;
  unsigned DeadlineEvery = 41;
  unsigned ShedEvery = 97;
  unsigned ZipfRequests = 20000;
  unsigned Shards = 2;
  std::size_t CacheBytes = 64u << 20;
  unsigned C10kConnections = 10000;
  /// Phase 3b: Zipf-sampled serving of the REAL modules the C frontend
  /// lowers from examples/corpus_c/, alternating wire codecs per request.
  /// 0 skips the phase.
  unsigned RealCorpusRequests = 5000;
  std::string RealCorpusDir = std::string(CCRA_SOURCE_DIR) +
                              "/examples/corpus_c";
};

struct SoakCase {
  AllocRequest Request;
  /// The same module as Request.ModuleText in the binary interchange
  /// form; the soak alternates codecs per request so both ingestion
  /// paths carry the traffic.
  std::string ModuleBinary;
  std::string ExpectedIr;
  CostBreakdown ExpectedTotals;
};

struct SoakTally {
  std::atomic<unsigned> Ok{0};
  std::atomic<unsigned> Shed{0};
  std::atomic<unsigned> Deadline{0};
  std::atomic<unsigned> Malformed{0};
  std::atomic<unsigned> Failures{0};
  std::atomic<unsigned> BitDivergences{0};
};

std::string printed(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

/// The case mix: every proxy crossed with a rotation of allocator
/// configurations and frequency modes, expectations precomputed once.
std::vector<SoakCase> buildCases() {
  const AllocatorOptions Configs[] = {improvedOptions(), baseChaitinOptions(),
                                      cbhOptions(), priorityOptions(),
                                      improvedOptimisticOptions()};
  std::vector<SoakCase> Cases;
  for (const std::string &Proxy : specProxyNames()) {
    std::unique_ptr<Module> M = buildSpecProxy(Proxy);
    std::string Text = printed(*M);
    SoakCase Case;
    Case.Request.ModuleText = Text;
    Case.Request.Options = Configs[Cases.size() % 5];
    Case.Request.Mode =
        Cases.size() % 3 == 0 ? FrequencyMode::Static : FrequencyMode::Profile;

    ParseResult PR = parseModule(Text);
    encodeModuleBinary(*PR.M, Case.ModuleBinary);
    FrequencyInfo Freq = FrequencyInfo::compute(*PR.M, Case.Request.Mode);
    AllocationEngine Engine = EngineBuilder(Case.Request.Config)
                                  .options(Case.Request.Options)
                                  .build();
    ModuleAllocationResult R = Engine.allocateModule(*PR.M, Freq);
    Case.ExpectedIr = printed(*PR.M);
    Case.ExpectedTotals = R.Totals;
    Cases.push_back(std::move(Case));
  }
  return Cases;
}

std::string tornFrame(unsigned Seed) {
  Frame F;
  F.Type = FrameType::AllocRequest;
  F.Payload = "config: 9,7,3,3\nmodule:\nmodule torn\n";
  std::string Bytes;
  encodeFrame(F, Bytes);
  return Bytes.substr(0, WireHeaderSize + (Seed % 12));
}

void soakWorker(int Port, const SoakOptions &Opts,
                const std::vector<SoakCase> &Cases, unsigned Worker,
                SoakTally &Tally, std::vector<double> &LatenciesMs,
                std::mutex &Mutex) {
  auto Fail = [&](const std::string &Msg) {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::cerr << "perf_service: worker " << Worker << ": " << Msg << '\n';
    Tally.Failures.fetch_add(1);
  };

  ServiceClient Client;
  std::string Err;
  if (!Client.connectTcp(Port, &Err)) {
    Fail("connect: " + Err);
    return;
  }
  std::vector<double> Local;

  for (unsigned I = Worker; I < Opts.Requests; I += Opts.Clients) {
    if (I % Opts.MalformedEvery == 0) {
      // Abuse burns a throwaway connection; the serving connection and
      // everyone else must be unaffected.
      ServiceClient Bad;
      if (Bad.connectTcp(Port, &Err)) {
        Bad.setTimeoutMs(2000);
        std::string Bytes = (I % 2 == 0)
                                ? std::string("\x00garbage, not a frame", 21)
                                : tornFrame(I);
        if (Bad.sendRawBytes(Bytes)) {
          Frame Resp;
          Bad.readResponse(Resp);
        }
        Bad.close();
        Tally.Malformed.fetch_add(1);
      }
      continue;
    }

    const SoakCase &Case = Cases[I % Cases.size()];
    AllocRequest Request = Case.Request;
    // Alternate wire codecs: odd requests ship the binary module. The
    // expected bytes are identical either way — that IS the contract.
    if (I % 2 == 1 && !Case.ModuleBinary.empty()) {
      Request.ModuleBinary = Case.ModuleBinary;
      Request.ModuleText.clear();
    }
    bool TinyDeadline = I % Opts.DeadlineEvery == 0;
    if (TinyDeadline)
      Request.DeadlineMs = 1;

    AllocResponse Response;
    ErrorResponse ServerError;
    auto Start = std::chrono::steady_clock::now();
    RpcStatus Status = Client.allocate(Request, Response, ServerError, &Err);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

    switch (Status) {
    case RpcStatus::Shed:
      Tally.Shed.fetch_add(1);
      continue;
    case RpcStatus::Rejected:
      if (ServerError.Code == "deadline" && TinyDeadline) {
        Tally.Deadline.fetch_add(1);
        continue;
      }
      Fail("request " + std::to_string(I) + " rejected [" + ServerError.Code +
           "] " + ServerError.Message);
      continue;
    case RpcStatus::Transport:
      Fail("request " + std::to_string(I) + " transport: " + Err);
      if (!Client.connectTcp(Port, &Err)) {
        Fail("reconnect: " + Err);
        return;
      }
      continue;
    case RpcStatus::Ok:
      break;
    }

    if (Response.AllocatedIr != Case.ExpectedIr ||
        !(Response.Totals == Case.ExpectedTotals)) {
      Tally.BitDivergences.fetch_add(1);
      Fail("request " + std::to_string(I) +
           ": response diverges from in-process allocation");
      continue;
    }
    Local.push_back(Ms);
    Tally.Ok.fetch_add(1);
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  LatenciesMs.insert(LatenciesMs.end(), Local.begin(), Local.end());
}

double percentile(std::vector<double> &Sorted, double P);

/// The Zipf phase's case population: every proxy crossed with the full
/// configuration rotation and both frequency modes, so the hot head of the
/// distribution is a handful of (module, options, mode) tuples and the
/// tail still forces cold allocations.
std::vector<SoakCase> buildZipfCases() {
  const AllocatorOptions Configs[] = {improvedOptions(), baseChaitinOptions(),
                                      cbhOptions(), priorityOptions(),
                                      improvedOptimisticOptions()};
  std::vector<SoakCase> Cases;
  for (const std::string &Proxy : specProxyNames()) {
    std::unique_ptr<Module> M = buildSpecProxy(Proxy);
    std::string Text = printed(*M);
    for (const AllocatorOptions &Opts : Configs) {
      for (FrequencyMode Mode :
           {FrequencyMode::Profile, FrequencyMode::Static}) {
        SoakCase Case;
        Case.Request.ModuleText = Text;
        Case.Request.Options = Opts;
        Case.Request.Mode = Mode;

        ParseResult PR = parseModule(Text);
        FrequencyInfo Freq = FrequencyInfo::compute(*PR.M, Mode);
        AllocationEngine Engine = EngineBuilder(Case.Request.Config)
                                      .options(Case.Request.Options)
                                      .build();
        ModuleAllocationResult R = Engine.allocateModule(*PR.M, Freq);
        Case.ExpectedIr = printed(*PR.M);
        Case.ExpectedTotals = R.Totals;
        Cases.push_back(std::move(Case));
      }
    }
  }
  return Cases;
}

/// Phase 3b's case population: every program under \p Dir lowered by the
/// C frontend, crossed with the allocator rotation and both frequency
/// modes — real code on the wire instead of the synthetic proxies. The
/// binary interchange form is precomputed so the phase can alternate
/// codecs per request. Returns an empty vector (phase fails) if any
/// program does not compile.
std::vector<SoakCase> buildRealCorpusCases(const std::string &Dir) {
  const AllocatorOptions Configs[] = {improvedOptions(), baseChaitinOptions(),
                                      cbhOptions(), priorityOptions(),
                                      improvedOptimisticOptions()};
  std::vector<std::string> Paths;
  std::error_code EC;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, EC))
    if (Entry.path().extension() == ".c")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  if (Paths.empty()) {
    std::cerr << "perf_service: real-corpus phase: no .c programs under "
              << Dir << '\n';
    return {};
  }

  std::vector<SoakCase> Cases;
  for (const std::string &Path : Paths) {
    CompileResult CR = Frontend::compileFile(Path);
    if (!CR.ok()) {
      std::cerr << "perf_service: real-corpus phase: " << Path
                << " does not compile\n";
      return {};
    }
    std::string Text = printed(*CR.M);
    for (const AllocatorOptions &Opts : Configs) {
      for (FrequencyMode Mode :
           {FrequencyMode::Profile, FrequencyMode::Static}) {
        SoakCase Case;
        Case.Request.ModuleText = Text;
        Case.Request.Options = Opts;
        Case.Request.Mode = Mode;

        ParseResult PR = parseModule(Text);
        encodeModuleBinary(*PR.M, Case.ModuleBinary);
        FrequencyInfo Freq = FrequencyInfo::compute(*PR.M, Mode);
        AllocationEngine Engine = EngineBuilder(Case.Request.Config)
                                      .options(Case.Request.Options)
                                      .build();
        ModuleAllocationResult R = Engine.allocateModule(*PR.M, Freq);
        Case.ExpectedIr = printed(*PR.M);
        Case.ExpectedTotals = R.Totals;
        Cases.push_back(std::move(Case));
      }
    }
  }
  return Cases;
}

/// Zipf(1.1) cumulative distribution over case ranks; rank 0 is hottest.
std::vector<double> zipfCdf(std::size_t Count) {
  std::vector<double> Cdf;
  Cdf.reserve(Count);
  double Sum = 0;
  for (std::size_t R = 0; R < Count; ++R) {
    Sum += 1.0 / std::pow(static_cast<double>(R + 1), 1.1);
    Cdf.push_back(Sum);
  }
  for (double &V : Cdf)
    V /= Sum;
  return Cdf;
}

struct ZipfResult {
  unsigned Ok = 0;
  unsigned Failures = 0;
  unsigned BitDivergences = 0;
  double Seconds = 0, Rps = 0;
  double P50 = 0, P95 = 0, P99 = 0;
  double Hits = 0, Misses = 0, HitRate = 0;
};

/// Phases 3 and 3b: the caching-tier gate. Pure allocation traffic
/// sampled from a Zipfian distribution against a cache-enabled, sharded
/// server; every response is still verified bit-identical to in-process
/// allocation. With \p AlternateCodecs, odd requests ship the binary (v2)
/// module so both wire paths carry the Zipf traffic.
ZipfResult zipfPhase(const SoakOptions &Opts,
                     const std::vector<SoakCase> &Cases, unsigned Requests,
                     bool AlternateCodecs, const char *PhaseName) {
  ZipfResult Result;
  if (Cases.empty()) {
    Result.Failures = 1;
    return Result;
  }
  ServerConfig Config;
  Config.TcpPort = 0;
  Config.QueueCapacity = Opts.QueueCapacity;
  Config.MaxBatch = Opts.MaxBatch;
  Config.PoolThreads = Opts.PoolThreads;
  Config.Shards = Opts.Shards;
  Config.CacheBytes = Opts.CacheBytes;
  AllocationServer Server(Config);
  std::string Err;
  if (!Server.start(&Err)) {
    std::cerr << "perf_service: " << PhaseName << " phase: " << Err << '\n';
    Result.Failures = 1;
    return Result;
  }
  int Port = Server.boundPort();

  const std::vector<double> Cdf = zipfCdf(Cases.size());
  std::atomic<unsigned> Ok{0}, Failures{0}, BitDivergences{0};
  std::vector<double> LatenciesMs;
  std::mutex Mutex;

  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Opts.Clients; ++W)
    Workers.emplace_back([&, W] {
      auto Fail = [&](const std::string &Msg) {
        std::lock_guard<std::mutex> Lock(Mutex);
        std::cerr << "perf_service: " << PhaseName << " worker " << W
                  << ": " << Msg << '\n';
        Failures.fetch_add(1);
      };
      ServiceClient Client;
      std::string CErr;
      if (!Client.connectTcp(Port, &CErr)) {
        Fail("connect: " + CErr);
        return;
      }
      Rng R(0x21bful + W); // deterministic per-worker sample path
      std::vector<double> Local;
      for (unsigned I = W; I < Requests; I += Opts.Clients) {
        double U = R.nextDouble();
        std::size_t Rank = static_cast<std::size_t>(
            std::lower_bound(Cdf.begin(), Cdf.end(), U) - Cdf.begin());
        const SoakCase &Case = Cases[std::min(Rank, Cases.size() - 1)];
        AllocRequest Request = Case.Request;
        if (AlternateCodecs && I % 2 == 1 && !Case.ModuleBinary.empty()) {
          Request.ModuleBinary = Case.ModuleBinary;
          Request.ModuleText.clear();
        }

        AllocResponse Response;
        ErrorResponse ServerError;
        auto T0 = std::chrono::steady_clock::now();
        RpcStatus Status =
            Client.allocate(Request, Response, ServerError, &CErr);
        double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
        if (Status != RpcStatus::Ok) {
          Fail("request " + std::to_string(I) + " status " +
               std::to_string(static_cast<int>(Status)) + ": [" +
               ServerError.Code + "] " + CErr);
          if (Status == RpcStatus::Transport &&
              !Client.connectTcp(Port, &CErr))
            return;
          continue;
        }
        if (Response.AllocatedIr != Case.ExpectedIr ||
            !(Response.Totals == Case.ExpectedTotals)) {
          BitDivergences.fetch_add(1);
          Fail("request " + std::to_string(I) +
               ": response diverges from in-process allocation");
          continue;
        }
        Local.push_back(Ms);
        Ok.fetch_add(1);
      }
      std::lock_guard<std::mutex> Lock(Mutex);
      LatenciesMs.insert(LatenciesMs.end(), Local.begin(), Local.end());
    });
  for (std::thread &T : Workers)
    T.join();
  Result.Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  TelemetrySnapshot Stats = Server.stats();
  Server.requestDrain();
  Server.wait();

  Result.Ok = Ok.load();
  Result.Failures = Failures.load();
  Result.BitDivergences = BitDivergences.load();
  Result.Rps = Result.Seconds > 0 ? Result.Ok / Result.Seconds : 0.0;
  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  Result.P50 = percentile(LatenciesMs, 0.50);
  Result.P95 = percentile(LatenciesMs, 0.95);
  Result.P99 = percentile(LatenciesMs, 0.99);
  Result.Hits = Stats.count(telemetry::CacheHits);
  Result.Misses = Stats.count(telemetry::CacheMisses);
  Result.HitRate = (Result.Hits + Result.Misses) > 0
                       ? Result.Hits / (Result.Hits + Result.Misses)
                       : 0.0;
  return Result;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  double Rank = P * static_cast<double>(Sorted.size() - 1);
  std::size_t Lo = static_cast<std::size_t>(Rank);
  std::size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

/// Phase 2: drain mid-flight. Every request launched before the drain must
/// be answered — completed bit-identical, shed, or refused "draining" —
/// and wait() must quiesce with no client left hanging.
bool drainMidFlight(const SoakOptions &Opts,
                    const std::vector<SoakCase> &Cases) {
  ServerConfig Config;
  Config.TcpPort = 0;
  Config.QueueCapacity = Opts.QueueCapacity;
  Config.MaxBatch = Opts.MaxBatch;
  Config.PoolThreads = Opts.PoolThreads;
  AllocationServer Server(Config);
  std::string Err;
  if (!Server.start(&Err)) {
    std::cerr << "perf_service: drain phase: " << Err << '\n';
    return false;
  }
  int Port = Server.boundPort();

  std::atomic<unsigned> Answered{0};
  std::atomic<unsigned> Hung{0};
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < 4; ++W)
    Workers.emplace_back([&, W] {
      ServiceClient Client;
      std::string CErr;
      if (!Client.connectTcp(Port, &CErr))
        return;
      Client.setTimeoutMs(30000);
      for (unsigned I = 0;; ++I) {
        const SoakCase &Case = Cases[(W + I) % Cases.size()];
        AllocResponse Response;
        ErrorResponse ServerError;
        RpcStatus Status =
            Client.allocate(Case.Request, Response, ServerError, &CErr);
        if (Status == RpcStatus::Ok || Status == RpcStatus::Shed) {
          Answered.fetch_add(1);
          continue;
        }
        if (Status == RpcStatus::Rejected &&
            ServerError.Code == "draining") {
          Answered.fetch_add(1);
          return; // the drain refused us explicitly — clean exit
        }
        if (Status == RpcStatus::Transport)
          return; // connection closed by the drain — also clean
        Hung.fetch_add(1);
        return;
      }
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Server.requestDrain();
  for (std::thread &T : Workers)
    T.join();
  Server.wait();

  // After wait(), the endpoint must be gone.
  ServiceClient Late;
  bool Refused = !Late.connectTcp(Port, &Err);

  bool Clean = Hung.load() == 0 && Answered.load() > 0 && Refused;
  std::cout << "drain: " << Answered.load()
            << " requests answered across the drain, "
            << (Clean ? "clean" : "NOT CLEAN") << '\n';
  return Clean;
}

struct C10kResult {
  unsigned Target = 0;
  unsigned Opened = 0;
  unsigned VerifiedOk = 0;
  double PeakConnections = 0;
  double OpenAtPeak = 0;
  double DrainSeconds = 0;
  bool Ok = false;
  bool DrainClean = false;
};

/// Phase 4: connection scaling. Parks \p Opts.C10kConnections idle peers
/// on the daemon, proves allocations still flow through the crowd
/// bit-identical, then drains mid-flight: the idle crowd and the active
/// workers must all be swept promptly.
C10kResult c10kPhase(const SoakOptions &Opts,
                     const std::vector<SoakCase> &Cases) {
  C10kResult Result;
  Result.Target = Opts.C10kConnections;

  // The server side of the crowd must fit this process's fd limit; raise
  // the soft limit to the hard cap before judging feasibility. The CLIENT
  // side is held by forked children (below), each with its own fd budget,
  // so a 20k-fd container can still park 10k connections on the daemon.
  rlimit Rl{};
  if (getrlimit(RLIMIT_NOFILE, &Rl) == 0 && Rl.rlim_cur < Rl.rlim_max) {
    rlimit Want = Rl;
    Want.rlim_cur = Rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &Want);
    getrlimit(RLIMIT_NOFILE, &Rl);
  }
  rlim_t Needed = static_cast<rlim_t>(Opts.C10kConnections) + 512;
  if (Rl.rlim_cur < Needed) {
    std::cerr << "perf_service: c10k phase: RLIMIT_NOFILE " << Rl.rlim_cur
              << " < required " << Needed << '\n';
    return Result;
  }

  ServerConfig Config;
  Config.TcpPort = 0;
  Config.QueueCapacity = Opts.QueueCapacity;
  Config.MaxBatch = Opts.MaxBatch;
  Config.PoolThreads = Opts.PoolThreads;
  AllocationServer Server(Config);
  std::string Err;
  if (!Server.start(&Err)) {
    std::cerr << "perf_service: c10k phase: " << Err << '\n';
    return Result;
  }
  int Port = Server.boundPort();

  // The idle crowd, held by forked children so the client-side fds come
  // out of THEIR limits, not this process's (the server side alone is
  // 10k fds here). Hellos stay unread in the kernel buffers: an idle
  // peer costs the server one fd and one epoll registration, nothing
  // else. Each child reports how many it opened, then parks until the
  // drain has been verified.
  const unsigned PerChild = 5000;
  const unsigned NumChildren =
      (Opts.C10kConnections + PerChild - 1) / PerChild;
  struct Child {
    pid_t Pid = -1;
    int ReadyFd = -1;   // child -> parent: u32 count of opened conns
    int ReleaseFd = -1; // parent -> child: one byte releases the child
  };
  std::vector<Child> Children;
  unsigned Remaining = Opts.C10kConnections;
  for (unsigned C = 0; C < NumChildren; ++C) {
    unsigned Quota = std::min(PerChild, Remaining);
    Remaining -= Quota;
    int Ready[2], Release[2];
    if (pipe(Ready) != 0 || pipe(Release) != 0) {
      std::cerr << "perf_service: c10k phase: pipe failed\n";
      break;
    }
    pid_t Pid = fork();
    if (Pid < 0) {
      std::cerr << "perf_service: c10k phase: fork failed\n";
      break;
    }
    if (Pid == 0) {
      // Child: open the quota, report, park, exit (the kernel closes the
      // crowd when we _exit; the server sees clean EOFs or is already
      // gone post-drain).
      ::close(Ready[0]);
      ::close(Release[1]);
      std::vector<Socket> Crowd;
      Crowd.reserve(Quota);
      std::string CErr;
      for (unsigned I = 0; I < Quota; ++I) {
        Socket S = Socket::connectTcp(Port, &CErr);
        if (!S.valid())
          break;
        Crowd.push_back(std::move(S));
      }
      std::uint32_t Opened = static_cast<std::uint32_t>(Crowd.size());
      (void)!::write(Ready[1], &Opened, sizeof(Opened));
      char Byte;
      (void)!::read(Release[0], &Byte, 1);
      _exit(0);
    }
    ::close(Ready[1]);
    ::close(Release[0]);
    Children.push_back(Child{Pid, Ready[0], Release[1]});
  }
  unsigned TotalOpened = 0;
  for (Child &C : Children) {
    std::uint32_t Opened = 0;
    if (::read(C.ReadyFd, &Opened, sizeof(Opened)) == sizeof(Opened))
      TotalOpened += Opened;
  }
  Result.Opened = TotalOpened;
  if (TotalOpened < Opts.C10kConnections)
    std::cerr << "perf_service: c10k phase: only " << TotalOpened << " of "
              << Opts.C10kConnections << " connections opened\n";

  // Active traffic through the crowd, still held bit-identical.
  unsigned VerifiedOk = 0, Divergences = 0;
  {
    ServiceClient Client;
    if (!Client.connectTcp(Port, &Err)) {
      std::cerr << "perf_service: c10k phase: active connect: " << Err
                << '\n';
    } else {
      for (unsigned I = 0; I < 100; ++I) {
        const SoakCase &Case = Cases[I % Cases.size()];
        AllocRequest Request = Case.Request;
        if (I % 2 == 1 && !Case.ModuleBinary.empty()) {
          Request.ModuleBinary = Case.ModuleBinary;
          Request.ModuleText.clear();
        }
        AllocResponse Response;
        ErrorResponse ServerError;
        if (Client.allocate(Request, Response, ServerError, &Err) !=
            RpcStatus::Ok)
          continue;
        if (Response.AllocatedIr == Case.ExpectedIr &&
            Response.Totals == Case.ExpectedTotals)
          ++VerifiedOk;
        else
          ++Divergences;
      }
    }
  }
  Result.VerifiedOk = VerifiedOk;

  TelemetrySnapshot Stats = Server.stats();
  Result.PeakConnections = Stats.count(telemetry::ServePeakConnections);
  Result.OpenAtPeak = Stats.count(telemetry::ServeOpenConnections);

  // Drain mid-flight with the whole crowd still parked: active workers
  // must be answered or refused, the idle thousands swept immediately.
  std::atomic<unsigned> Hung{0};
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < 4; ++W)
    Workers.emplace_back([&, W] {
      ServiceClient Client;
      std::string CErr;
      if (!Client.connectTcp(Port, &CErr))
        return;
      Client.setTimeoutMs(30000);
      for (unsigned I = 0;; ++I) {
        const SoakCase &Case = Cases[(W + I) % Cases.size()];
        AllocResponse Response;
        ErrorResponse ServerError;
        RpcStatus Status =
            Client.allocate(Case.Request, Response, ServerError, &CErr);
        if (Status == RpcStatus::Ok || Status == RpcStatus::Shed)
          continue;
        if (Status == RpcStatus::Rejected && ServerError.Code == "draining")
          return;
        if (Status == RpcStatus::Transport)
          return;
        Hung.fetch_add(1);
        return;
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto DrainStart = std::chrono::steady_clock::now();
  Server.requestDrain();
  for (std::thread &T : Workers)
    T.join();
  Server.wait();
  Result.DrainSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - DrainStart)
                            .count();

  ServiceClient Late;
  bool Refused = !Late.connectTcp(Port, &Err);

  // Release and reap the crowd-holders.
  for (Child &C : Children) {
    char Byte = 'g';
    (void)!::write(C.ReleaseFd, &Byte, 1);
  }
  for (Child &C : Children) {
    int Status = 0;
    ::waitpid(C.Pid, &Status, 0);
    ::close(C.ReadyFd);
    ::close(C.ReleaseFd);
  }

  Result.DrainClean = Hung.load() == 0 && Refused &&
                      Result.DrainSeconds < 10.0;
  Result.Ok = Result.Opened >= Result.Target && VerifiedOk > 0 &&
              Divergences == 0 &&
              Result.PeakConnections >=
                  static_cast<double>(Result.Target);
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  SoakOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Unsigned = [&](std::size_t Prefix, unsigned &Out) {
      return std::sscanf(Arg.c_str() + Prefix, "%u", &Out) == 1;
    };
    if (Arg.rfind("--requests=", 0) == 0 && Unsigned(11, Opts.Requests))
      continue;
    if (Arg.rfind("--clients=", 0) == 0 && Unsigned(10, Opts.Clients) &&
        Opts.Clients > 0)
      continue;
    if (Arg.rfind("--queue=", 0) == 0 && Unsigned(8, Opts.QueueCapacity))
      continue;
    if (Arg.rfind("--max-batch=", 0) == 0 && Unsigned(12, Opts.MaxBatch))
      continue;
    if (Arg.rfind("--pool-threads=", 0) == 0 && Unsigned(15, Opts.PoolThreads))
      continue;
    if (Arg.rfind("--zipf-requests=", 0) == 0 && Unsigned(16, Opts.ZipfRequests))
      continue;
    if (Arg.rfind("--shards=", 0) == 0 && Unsigned(9, Opts.Shards) &&
        Opts.Shards > 0)
      continue;
    if (Arg.rfind("--c10k-connections=", 0) == 0 &&
        Unsigned(19, Opts.C10kConnections))
      continue;
    if (Arg.rfind("--real-corpus-requests=", 0) == 0 &&
        Unsigned(23, Opts.RealCorpusRequests))
      continue;
    if (Arg.rfind("--real-corpus=", 0) == 0) {
      Opts.RealCorpusDir = Arg.substr(14);
      continue;
    }
    unsigned CacheBytes = 0;
    if (Arg.rfind("--cache-bytes=", 0) == 0 && Unsigned(14, CacheBytes)) {
      Opts.CacheBytes = CacheBytes;
      continue;
    }
    std::cerr << "usage: perf_service [--requests=N] [--clients=N] "
                 "[--queue=N] [--max-batch=N] [--pool-threads=N]\n"
                 "                    [--zipf-requests=N] [--shards=N] "
                 "[--cache-bytes=N] [--c10k-connections=N]\n"
                 "                    [--real-corpus-requests=N] "
                 "[--real-corpus=DIR]\n";
    return 2;
  }

  std::vector<SoakCase> Cases = buildCases();

  ServerConfig Config;
  Config.TcpPort = 0;
  Config.QueueCapacity = Opts.QueueCapacity;
  Config.MaxBatch = Opts.MaxBatch;
  Config.PoolThreads = Opts.PoolThreads;
  // The mixed soak measures the ENGINE path: cache off so "rps_before"
  // stays comparable to the committed pre-cache baseline the Zipf phase
  // gates against.
  Config.CacheBytes = 0;
  // SHED slices: every ShedEvery-th admission is forced to overflow, so
  // the soak exercises backpressure even when the queue keeps up.
  std::atomic<unsigned> Admissions{0};
  ServerTestHooks Hooks;
  Hooks.ForceQueueOverflow = [&] {
    return Admissions.fetch_add(1) % Opts.ShedEvery == Opts.ShedEvery - 1;
  };
  AllocationServer Server(Config, Hooks);
  std::string Err;
  if (!Server.start(&Err)) {
    std::cerr << "perf_service: " << Err << '\n';
    return 1;
  }

  SoakTally Tally;
  std::vector<double> LatenciesMs;
  std::mutex Mutex;
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Opts.Clients; ++W)
    Workers.emplace_back([&, W] {
      soakWorker(Server.boundPort(), Opts, Cases, W, Tally, LatenciesMs,
                 Mutex);
    });
  for (std::thread &T : Workers)
    T.join();
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  TelemetrySnapshot Stats = Server.stats();
  Server.requestDrain();
  Server.wait();

  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  double P50 = percentile(LatenciesMs, 0.50);
  double P95 = percentile(LatenciesMs, 0.95);
  double P99 = percentile(LatenciesMs, 0.99);
  double Throughput = Seconds > 0 ? Tally.Ok.load() / Seconds : 0.0;

  bool DrainClean = drainMidFlight(Opts, Cases);
  bool BitIdentical = Tally.BitDivergences.load() == 0;
  bool Healthy = Tally.Failures.load() == 0 && Tally.Ok.load() > 0;

  // The response-path overhead gate: time spent in serve.batch (parse or
  // decode, cache bookkeeping, response rendering) on top of the engine's
  // own allocate_total may not exceed half the allocation work again.
  double ServeBatchMs = Stats.timeMs("serve.batch");
  double AllocateTotalMs = Stats.timeMs("allocate_total");
  double BatchRatio =
      AllocateTotalMs > 0 ? ServeBatchMs / AllocateTotalMs : 0.0;
  bool BatchLean = AllocateTotalMs > 0 && BatchRatio <= 1.5;

  // Phase 3: the Zipfian caching-tier gate.
  std::vector<SoakCase> ZipfCases = buildZipfCases();
  ZipfResult Zipf =
      zipfPhase(Opts, ZipfCases, Opts.ZipfRequests, false, "zipf");
  double Speedup = Zipf.Rps / CommittedBaselineRps;
  bool ZipfBitIdentical = Zipf.BitDivergences == 0;
  bool ZipfHealthy = Zipf.Failures == 0 && Zipf.Ok > 0 && Zipf.Hits > 0;
  bool ZipfFastEnough = Speedup >= 100.0;

  // Phase 3b: the same Zipfian serving discipline over REAL modules — the
  // C frontend's lowering of examples/corpus_c/ — alternating v1/v2 wire
  // codecs per request. Gates: every response bit-identical, no failures,
  // and the cache must actually hit (the Zipf head is hot).
  ZipfResult Real;
  bool RealBitIdentical = true, RealHealthy = true;
  if (Opts.RealCorpusRequests > 0) {
    std::vector<SoakCase> RealCases =
        buildRealCorpusCases(Opts.RealCorpusDir);
    Real = zipfPhase(Opts, RealCases, Opts.RealCorpusRequests, true,
                     "real-corpus");
    RealBitIdentical = Real.BitDivergences == 0;
    RealHealthy = Real.Failures == 0 && Real.Ok > 0 && Real.Hits > 0;
  }

  std::cout << "== perf_service: " << Opts.Requests << " requests, "
            << Opts.Clients << " clients ==\n"
            << "ok:          " << Tally.Ok.load() << '\n'
            << "shed:        " << Tally.Shed.load() << '\n'
            << "deadline:    " << Tally.Deadline.load() << '\n'
            << "malformed:   " << Tally.Malformed.load() << '\n'
            << "failures:    " << Tally.Failures.load() << '\n'
            << "throughput:  " << Throughput << " req/s\n"
            << "latency p50: " << P50 << " ms, p95: " << P95 << " ms, p99: "
            << P99 << " ms\n"
            << "bit-identical responses: " << (BitIdentical ? "yes" : "NO")
            << '\n'
            << "peak queue depth: "
            << Stats.count(telemetry::ServePeakQueue) << ", peak batch: "
            << Stats.count(telemetry::ServePeakBatch) << '\n'
            << "serve.batch: " << ServeBatchMs << " ms over allocate_total "
            << AllocateTotalMs << " ms (ratio " << BatchRatio
            << ", gate <= 1.5: " << (BatchLean ? "pass" : "FAIL") << ")\n";

  std::cout << "== zipf phase: " << Opts.ZipfRequests << " requests, "
            << Opts.Clients << " clients, " << Opts.Shards << " shards, "
            << (Opts.CacheBytes >> 20) << " MiB cache ==\n"
            << "ok:          " << Zipf.Ok << '\n'
            << "failures:    " << Zipf.Failures << '\n'
            << "throughput:  " << Zipf.Rps << " req/s ("
            << Speedup << "x the committed " << CommittedBaselineRps
            << " req/s baseline)\n"
            << "hit rate:    " << Zipf.HitRate << " (" << Zipf.Hits
            << " hits, " << Zipf.Misses << " misses)\n"
            << "latency p50: " << Zipf.P50 << " ms, p95: " << Zipf.P95
            << " ms, p99: " << Zipf.P99 << " ms\n"
            << "bit-identical responses: "
            << (ZipfBitIdentical ? "yes" : "NO") << '\n'
            << "gate (>=100x): " << (ZipfFastEnough ? "pass" : "FAIL")
            << '\n';

  if (Opts.RealCorpusRequests > 0)
    std::cout << "== real-corpus phase: " << Opts.RealCorpusRequests
              << " requests over " << Opts.RealCorpusDir
              << " (v1/v2 alternating) ==\n"
              << "ok:          " << Real.Ok << '\n'
              << "failures:    " << Real.Failures << '\n'
              << "throughput:  " << Real.Rps << " req/s\n"
              << "hit rate:    " << Real.HitRate << " (" << Real.Hits
              << " hits, " << Real.Misses << " misses)\n"
              << "latency p50: " << Real.P50 << " ms, p95: " << Real.P95
              << " ms, p99: " << Real.P99 << " ms\n"
              << "bit-identical responses: "
              << (RealBitIdentical ? "yes" : "NO") << '\n'
              << "gate (bit-identity, nonzero hit rate): "
              << (RealBitIdentical && RealHealthy ? "pass" : "FAIL")
              << '\n';

  // Phase 4: the connection-scaling gate.
  C10kResult C10k;
  bool C10kOk = true, C10kDrainClean = true;
  if (Opts.C10kConnections > 0) {
    C10k = c10kPhase(Opts, Cases);
    C10kOk = C10k.Ok;
    C10kDrainClean = C10k.DrainClean;
    std::cout << "== c10k phase: " << C10k.Target
              << " idle connections ==\n"
              << "opened:      " << C10k.Opened << '\n'
              << "peak open:   " << C10k.PeakConnections
              << " (server saw " << C10k.OpenAtPeak
              << " open at sample time)\n"
              << "verified ok: " << C10k.VerifiedOk
              << " allocations through the crowd\n"
              << "drain:       " << C10k.DrainSeconds << " s, "
              << (C10k.DrainClean ? "clean" : "NOT CLEAN") << '\n'
              << "gate: " << (C10kOk && C10kDrainClean ? "pass" : "FAIL")
              << '\n';
  }

  std::ofstream Json("BENCH_service.json");
  Json << "{\n"
       << "  \"requests\": " << Opts.Requests << ",\n"
       << "  \"clients\": " << Opts.Clients << ",\n"
       << "  \"ok\": " << Tally.Ok.load() << ",\n"
       << "  \"shed\": " << Tally.Shed.load() << ",\n"
       << "  \"deadline_missed\": " << Tally.Deadline.load() << ",\n"
       << "  \"malformed_sent\": " << Tally.Malformed.load() << ",\n"
       << "  \"failures\": " << Tally.Failures.load() << ",\n"
       << "  \"seconds\": " << Seconds << ",\n"
       << "  \"throughput_rps\": " << Throughput << ",\n"
       << "  \"latency_p50_ms\": " << P50 << ",\n"
       << "  \"latency_p95_ms\": " << P95 << ",\n"
       << "  \"latency_p99_ms\": " << P99 << ",\n"
       << "  \"bit_identical\": "
       << (BitIdentical && ZipfBitIdentical ? "true" : "false") << ",\n"
       << "  \"drain_clean\": " << (DrainClean ? "true" : "false") << ",\n"
       << "  \"shards\": " << Opts.Shards << ",\n"
       << "  \"cache_bytes\": " << Opts.CacheBytes << ",\n"
       << "  \"zipf_requests\": " << Opts.ZipfRequests << ",\n"
       << "  \"zipf_ok\": " << Zipf.Ok << ",\n"
       << "  \"zipf_seconds\": " << Zipf.Seconds << ",\n"
       << "  \"hit_rate\": " << Zipf.HitRate << ",\n"
       << "  \"rps_before\": " << Throughput << ",\n"
       << "  \"rps_after\": " << Zipf.Rps << ",\n"
       << "  \"speedup_vs_committed\": " << Speedup << ",\n"
       << "  \"zipf_latency_p50_ms\": " << Zipf.P50 << ",\n"
       << "  \"zipf_latency_p95_ms\": " << Zipf.P95 << ",\n"
       << "  \"zipf_latency_p99_ms\": " << Zipf.P99 << ",\n"
       << "  \"serve_batch_ms\": " << ServeBatchMs << ",\n"
       << "  \"allocate_total_ms\": " << AllocateTotalMs << ",\n"
       << "  \"batch_overhead_ratio\": " << BatchRatio << ",\n"
       << "  \"real_corpus_requests\": " << Opts.RealCorpusRequests
       << ",\n"
       << "  \"real_corpus_ok\": " << Real.Ok << ",\n"
       << "  \"real_corpus_rps\": " << Real.Rps << ",\n"
       << "  \"real_corpus_hit_rate\": " << Real.HitRate << ",\n"
       << "  \"real_corpus_latency_p50_ms\": " << Real.P50 << ",\n"
       << "  \"real_corpus_latency_p99_ms\": " << Real.P99 << ",\n"
       << "  \"real_corpus_bit_identical\": "
       << (Opts.RealCorpusRequests > 0 && RealBitIdentical && RealHealthy
               ? "true"
               : "false")
       << ",\n"
       << "  \"c10k_connections\": " << C10k.Opened << ",\n"
       << "  \"c10k_peak_connections\": " << C10k.PeakConnections << ",\n"
       << "  \"c10k_drain_seconds\": " << C10k.DrainSeconds << ",\n"
       << "  \"c10k_drain_clean\": "
       << (Opts.C10kConnections > 0 && C10k.DrainClean ? "true" : "false")
       << ",\n"
       << "  \"server\": ";
  Stats.writeJson(Json);
  Json << "\n}\n";

  return (BitIdentical && DrainClean && Healthy && BatchLean &&
          ZipfBitIdentical && ZipfHealthy && ZipfFastEnough &&
          RealBitIdentical && RealHealthy && C10kOk && C10kDrainClean)
             ? 0
             : 1;
}
