//===- bench/fig10_priority_vs_chaitin.cpp - Paper Figure 10 & §9.1 -------===//
//
// Figure 10: priority-based coloring (Chow, no splitting) vs improved
// Chaitin-style coloring, as overhead ratios over base Chaitin, per
// configuration, for both frequency sources. The paper's three classes:
// equal (alvinn, eqntott, gcc, li), improved wins (compress, ear, sc,
// doduc, nasa7, spice, tomcatv — priority-based packs live ranges less
// densely and its priority function lets low-cost ranges take registers
// from high-cost ones), and mixed (espresso, matrix300, fpppp).
//
// With --orderings, also reproduces §9.1: the three color-ordering
// heuristics for priority-based coloring (remove-unconstrained,
// sort-unconstrained, full sorting) agree within ~10% for most programs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  GridRunner Grid(Args);

  const std::vector<std::string> Programs = {"alvinn", "nasa7", "fpppp",
                                             "espresso", "gcc", "tomcatv"};
  for (const std::string &Program : Programs) {
    std::unique_ptr<Module> M = buildSpecProxy(Program);
    for (FrequencyMode Mode :
         {FrequencyMode::Static, FrequencyMode::Profile}) {
      TextTable Table;
      Table.setHeader({"config", "priority", "improved"});
      for (const RegisterConfig &Config : standardConfigSweep()) {
        ExperimentResult Base =
            Grid.run(*M, Config, baseChaitinOptions(), Mode);
        ExperimentResult Priority =
            Grid.run(*M, Config, priorityOptions(), Mode);
        ExperimentResult Improved =
            Grid.run(*M, Config, improvedOptions(), Mode);
        Table.addRow({Config.label(),
                      TextTable::formatDouble(overheadRatio(Base, Priority)),
                      TextTable::formatDouble(overheadRatio(Base, Improved))});
      }
      std::cout << "== Figure 10: " << Program << " ("
                << frequencyModeName(Mode)
                << "), ratios over base Chaitin ==\n";
      emitTable(Table, Args);
      std::cout << '\n';
    }
  }

  if (Args.Orderings) {
    std::cout << "== §9.1: priority-based color-ordering heuristics "
                 "(total overhead, dynamic) ==\n";
    TextTable Table;
    Table.setHeader({"program", "remove_unconstrained", "sort_unconstrained",
                     "full_sort"});
    for (const std::string &Program : specProxyNames()) {
      std::unique_ptr<Module> M = buildSpecProxy(Program);
      RegisterConfig Config(9, 7, 3, 3);
      ExperimentResult Remove = Grid.run(
          *M, Config, priorityOptions(PriorityOrdering::RemoveUnconstrained),
          FrequencyMode::Profile);
      ExperimentResult Sorted = Grid.run(
          *M, Config, priorityOptions(PriorityOrdering::SortUnconstrained),
          FrequencyMode::Profile);
      ExperimentResult Full = Grid.run(
          *M, Config, priorityOptions(PriorityOrdering::FullSort),
          FrequencyMode::Profile);
      Table.addRow({Program, TextTable::formatCount(Remove.Costs.total()),
                    TextTable::formatCount(Sorted.Costs.total()),
                    TextTable::formatCount(Full.Costs.total())});
    }
    emitTable(Table, Args);
  }
  Grid.emitTelemetry();
  return 0;
}
