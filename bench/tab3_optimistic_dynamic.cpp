//===- bench/tab3_optimistic_dynamic.cpp - Paper Table 3 ------------------===//
//
// Table 3: base-Chaitin / optimistic overhead ratio with *dynamic*
// (profile) frequencies — same experiment as Table 2 under the accurate
// frequency source. The paper's conclusion holds in both: once call cost
// is part of the model, optimistic coloring helps rarely and can hurt
// (cells below 1.00), because squeezing otherwise-spilled live ranges into
// the wrong kind of register costs more than their spill code.
//
//===----------------------------------------------------------------------===//

#include "OptimisticTable.h"

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  std::cout << "== Table 3: base-Chaitin / optimistic overhead ratio "
               "(dynamic profiles; <1.00 = optimistic is worse) ==\n";
  runOptimisticTable(FrequencyMode::Profile, Args);
  return 0;
}
