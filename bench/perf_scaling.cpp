//===- bench/perf_scaling.cpp - Per-function scaling benchmark ------------===//
//
// Measures how one allocation scales with live-range count V: a single
// synthetic function per size (staggered overlapping chains — linear-size
// interval graphs with bounded degree, the shape where sparse adjacency
// and worklist simplification pay off) is allocated twice per size:
//
//   reference: the O(V^2) reference simplifier over the dense triangular
//              bit matrix (LegacySimplifier = true, GraphMode = Dense) —
//              quadratic time and memory, capped at the size where it
//              stops being worth the wait.
//   hybrid:    the worklist simplifier over the shipped Auto policy
//              (dense matrix up to DenseNodeThreshold nodes, sorted
//              sparse adjacency above it).
//
// Both arms must produce bit-identical ExperimentResults at every size
// where both run; any divergence exits non-zero. Per-size wall clock, the
// alloc.simplify phase timer, and the alloc.peak_graph_bytes high-water
// mark are printed as a table and written to BENCH_scaling.json, where
// near-linear growth of the hybrid arm (and the reference arm's quadratic
// departure) is the acceptance signal.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/SyntheticBuilder.h"

#include <chrono>
#include <fstream>
#include <vector>

using namespace ccra;

namespace {

/// Largest size the quadratic reference arm runs at; beyond this only the
/// hybrid arm is timed (the gate has already covered both arms below).
constexpr unsigned ReferenceCap = 20000;

/// Every value is live across the next OverlapDepth definitions, so node
/// degree is ~2 * OverlapDepth independent of V and the clique number is
/// OverlapDepth + 1 — comfortably colorable with the config below, which
/// keeps every size on the one-round no-spill path and makes the timing a
/// clean read of build + simplify + select.
constexpr unsigned OverlapDepth = 6;

std::unique_ptr<Module> buildChainProgram(unsigned NumValues) {
  auto M = std::make_unique<Module>("scaling-" + std::to_string(NumValues));
  Function *F = M->createFunction("chain");
  SyntheticFunctionBuilder B(*F, /*Seed=*/0x5ca11e + NumValues);
  B.staggeredChain(RegBank::Int, NumValues, OverlapDepth);
  B.finish();
  M->setEntryFunction(F);
  return M;
}

struct ArmSample {
  double Seconds = 0;
  double SimplifyMs = 0;
  double PeakGraphBytes = 0;
  ExperimentResult Result;
  bool Ran = false;
};

ArmSample timeArm(const Module &M, const RegisterConfig &Config,
                  const AllocatorOptions &Opts, int Reps) {
  ArmSample Sample;
  Sample.Seconds = 1e9;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    ExperimentRun Run =
        runExperiment({&M, Config, Opts, FrequencyMode::Profile, /*Jobs=*/1});
    double Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    Sample.Seconds = std::min(Sample.Seconds, Seconds);
    Sample.SimplifyMs = Run.Telemetry.timeMs(telemetry::AllocSimplifyPhase);
    Sample.PeakGraphBytes = Run.Telemetry.count(telemetry::AllocPeakGraphBytes);
    Sample.Result = Run.Result;
    Sample.Ran = true;
  }
  return Sample;
}

bool sameResult(const ExperimentResult &A, const ExperimentResult &B) {
  return A.Costs.Spill == B.Costs.Spill &&
         A.Costs.CallerSave == B.Costs.CallerSave &&
         A.Costs.CalleeSave == B.Costs.CalleeSave &&
         A.Costs.Shuffle == B.Costs.Shuffle &&
         A.SpilledRanges == B.SpilledRanges &&
         A.VoluntarySpills == B.VoluntarySpills &&
         A.CoalescedMoves == B.CoalescedMoves &&
         A.CalleeRegsPaid == B.CalleeRegsPaid &&
         A.MaxRounds == B.MaxRounds && A.Cycles == B.Cycles;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);

  const std::vector<unsigned> Sizes = {1000, 2000, 5000, 10000, 20000, 50000};
  // 8 + 8 int registers: clique number 7 fits, so no size ever spills and
  // both arms stay on the single-round path.
  RegisterConfig Config(/*Ri=*/8, /*Rf=*/4, /*Ei=*/8, /*Ef=*/4);

  AllocatorOptions Hybrid = improvedOptions();
  Hybrid.Verify = false; // verified by ctest; keep the timing loop hot
  Hybrid.GraphMode = GraphRep::Auto;
  AllocatorOptions Reference = Hybrid;
  Reference.LegacySimplifier = true;
  Reference.GraphMode = GraphRep::Dense;

  TextTable Table;
  Table.setHeader(
      {"V", "ref s", "hybrid s", "speedup", "simplify ms", "graph MiB"});
  unsigned Divergences = 0;
  std::ofstream Json("BENCH_scaling.json");
  Json << "{\n  \"sizes\": [";

  for (std::size_t I = 0; I < Sizes.size(); ++I) {
    unsigned V = Sizes[I];
    std::unique_ptr<Module> M = buildChainProgram(V);
    int Reps = V <= 10000 ? 3 : 1;

    ArmSample Hyb = timeArm(*M, Config, Hybrid, Reps);
    ArmSample Ref;
    if (V <= ReferenceCap) {
      Ref = timeArm(*M, Config, Reference, Reps);
      if (!sameResult(Ref.Result, Hyb.Result)) {
        std::cerr << "DIVERGENCE at V=" << V
                  << " (reference vs hybrid allocation)\n";
        ++Divergences;
      }
    }

    double Speedup = Ref.Ran && Hyb.Seconds > 0 ? Ref.Seconds / Hyb.Seconds
                                                : 0.0;
    Table.addRow({std::to_string(V),
                  Ref.Ran ? TextTable::formatDouble(Ref.Seconds, 3) : "-",
                  TextTable::formatDouble(Hyb.Seconds, 3),
                  Ref.Ran ? TextTable::formatDouble(Speedup, 2) + "x" : "-",
                  TextTable::formatDouble(Hyb.SimplifyMs, 2),
                  TextTable::formatDouble(
                      Hyb.PeakGraphBytes / (1024.0 * 1024.0), 2)});

    Json << (I ? ",\n            " : "") << "{\"v\": " << V
         << ", \"reference_seconds\": "
         << (Ref.Ran ? Ref.Seconds : -1.0)
         << ", \"hybrid_seconds\": " << Hyb.Seconds
         << ", \"speedup\": " << Speedup
         << ", \"hybrid_simplify_ms\": " << Hyb.SimplifyMs
         << ", \"reference_simplify_ms\": "
         << (Ref.Ran ? Ref.SimplifyMs : -1.0)
         << ", \"hybrid_peak_graph_bytes\": " << Hyb.PeakGraphBytes
         << ", \"reference_peak_graph_bytes\": "
         << (Ref.Ran ? Ref.PeakGraphBytes : -1.0) << "}";
  }

  Json << "],\n  \"reference_cap\": " << ReferenceCap
       << ",\n  \"bit_identical\": " << (Divergences == 0 ? "true" : "false")
       << "\n}\n";

  std::cout << "== perf_scaling: staggered chains, overlap depth "
            << OverlapDepth << " ==\n";
  if (Args.Csv)
    Table.printCsv(std::cout);
  else
    Table.print(std::cout);
  std::cout << "bit-identical results: " << (Divergences == 0 ? "yes" : "NO")
            << " (reference arm capped at V=" << ReferenceCap << ")\n";
  return Divergences == 0 ? 0 : 1;
}
