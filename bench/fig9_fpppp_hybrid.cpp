//===- bench/fig9_fpppp_hybrid.cpp - Paper Figure 9 -----------------------===//
//
// Figure 9: fpppp under static estimates — optimistic coloring,
// improved Chaitin-style coloring, and their integration, all as ratios
// over base Chaitin coloring per register configuration. The paper's
// shape: optimistic wins while registers are scarce (it rescues blocked
// live ranges that are colorable after all), improved wins once registers
// are plentiful (choosing the right *kind* is what's left), and the hybrid
// tracks the better of the two at each end.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  GridRunner Grid(Args);

  std::unique_ptr<Module> M = buildSpecProxy("fpppp");
  TextTable Table;
  Table.setHeader({"config", "optimistic", "improved", "improved+opt"});
  for (const RegisterConfig &Config : standardConfigSweep()) {
    ExperimentResult Base =
        Grid.run(*M, Config, baseChaitinOptions(), FrequencyMode::Static);
    ExperimentResult Optimistic =
        Grid.run(*M, Config, optimisticOptions(), FrequencyMode::Static);
    ExperimentResult Improved =
        Grid.run(*M, Config, improvedOptions(), FrequencyMode::Static);
    ExperimentResult Hybrid = Grid.run(
        *M, Config, improvedOptimisticOptions(), FrequencyMode::Static);
    Table.addRow({Config.label(),
                  TextTable::formatDouble(overheadRatio(Base, Optimistic)),
                  TextTable::formatDouble(overheadRatio(Base, Improved)),
                  TextTable::formatDouble(overheadRatio(Base, Hybrid))});
  }
  std::cout << "== Figure 9: fpppp, ratios over base Chaitin (static; "
               ">1.00 = better than base) ==\n";
  emitTable(Table, Args);
  Grid.emitTelemetry();
  return 0;
}
