//===- bench/real_corpus_sweep.cpp - Real-code (Ri,Rf,Ei,Ef) sweep --------===//
//
// The compile-sourced leg of the experiment grid: instead of the synthetic
// SPEC proxies, every program under examples/corpus_c/ is lowered by the C
// frontend and swept across the standard register configurations and the
// five allocator families (base Chaitin, optimistic, priority, CBH,
// improved). Two views:
//
//  - aggregate: total overhead across the whole corpus per configuration,
//    plus call cost (caller-save + callee-save) as a fraction of total
//    overhead for the base allocator — the paper's central claim is that
//    this fraction approaches 1 as the register budget grows;
//  - per-program: base/improved overhead ratio on the most call-dense
//    programs at representative budgets.
//
// EXPERIMENTS.md section "Real-code corpus" is regenerated from this
// binary's output.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "frontend/Frontend.h"

#include <algorithm>
#include <filesystem>

#ifndef CCRA_SOURCE_DIR
#define CCRA_SOURCE_DIR "."
#endif

using namespace ccra;

namespace {

struct CorpusProgram {
  std::string Name;
  std::unique_ptr<Module> M;
  unsigned Calls = 0; ///< static call-site count, for the call-dense pick
};

unsigned countCalls(const Module &M) {
  unsigned Calls = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const Instruction &I : BB->instructions())
        if (I.Op == Opcode::Call)
          ++Calls;
  return Calls;
}

std::vector<CorpusProgram> compileCorpus(const std::string &Dir) {
  std::vector<std::string> Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".c")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());

  std::vector<CorpusProgram> Programs;
  for (const std::string &Path : Paths) {
    CompileResult R = Frontend::compileFile(Path);
    if (!R.ok()) {
      std::cerr << Path << ": compile failed";
      if (!R.Diags.empty())
        std::cerr << ": " << R.Diags.front().render();
      std::cerr << '\n';
      std::exit(1);
    }
    CorpusProgram P;
    P.Name = Frontend::moduleNameForPath(Path);
    P.Calls = countCalls(*R.M);
    P.M = std::move(R.M);
    Programs.push_back(std::move(P));
  }
  return Programs;
}

double callFraction(const ExperimentResult &R) {
  double Total = R.Costs.total();
  if (Total == 0.0)
    return 0.0;
  return (R.Costs.CallerSave + R.Costs.CalleeSave) / Total;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  std::string Dir = std::string(CCRA_SOURCE_DIR) + "/examples/corpus_c";
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--corpus=", 9) == 0)
      Dir = Argv[I] + 9;

  std::vector<CorpusProgram> Programs = compileCorpus(Dir);
  GridRunner Grid(Args);

  struct Family {
    const char *Label;
    AllocatorOptions Opts;
  };
  const Family Families[] = {
      {"base", baseChaitinOptions()},     {"optimistic", optimisticOptions()},
      {"priority", priorityOptions()},    {"cbh", cbhOptions()},
      {"improved", improvedOptions()},
  };

  // Aggregate sweep: whole-corpus overhead per configuration and family.
  TextTable Aggregate;
  Aggregate.setHeader({"config", "base", "optimistic", "priority", "cbh",
                       "improved", "base_call_frac", "base/improved"});
  // Per (program, config): base and improved totals, reused for the
  // per-program view below.
  std::vector<RegisterConfig> Sweep = standardConfigSweep();
  std::vector<std::vector<double>> BaseTotals(Programs.size()),
      ImprovedTotals(Programs.size());

  for (unsigned C = 0; C < Sweep.size(); ++C) {
    const RegisterConfig &Config = Sweep[C];
    double Totals[5] = {};
    double CallCost = 0.0, BaseTotal = 0.0;
    for (unsigned P = 0; P < Programs.size(); ++P) {
      for (unsigned F = 0; F < 5; ++F) {
        ExperimentResult R = Grid.run(*Programs[P].M, Config,
                                      Families[F].Opts,
                                      FrequencyMode::Profile);
        Totals[F] += R.Costs.total();
        if (F == 0) {
          CallCost += R.Costs.CallerSave + R.Costs.CalleeSave;
          BaseTotal += R.Costs.total();
          BaseTotals[P].push_back(R.Costs.total());
        } else if (F == 4) {
          ImprovedTotals[P].push_back(R.Costs.total());
        }
      }
    }
    double Ratio = Totals[4] == 0.0 ? (Totals[0] == 0.0 ? 1.0 : 999.0)
                                    : Totals[0] / Totals[4];
    Aggregate.addRow({Config.label(), TextTable::formatCount(Totals[0]),
                      TextTable::formatCount(Totals[1]),
                      TextTable::formatCount(Totals[2]),
                      TextTable::formatCount(Totals[3]),
                      TextTable::formatCount(Totals[4]),
                      TextTable::formatDouble(
                          BaseTotal == 0.0 ? 0.0 : CallCost / BaseTotal),
                      TextTable::formatDouble(Ratio)});
  }
  std::cout << "== Real-code corpus (" << Programs.size()
            << " programs, C frontend): total overhead per allocator ==\n";
  emitTable(Aggregate, Args);
  std::cout << '\n';

  // Per-program view on the most call-dense programs: base/improved ratio
  // at representative budgets, plus base's call-cost fraction at the
  // largest budget (where spill cost is gone and only call cost is left).
  std::vector<unsigned> Order(Programs.size());
  for (unsigned I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return Programs[A].Calls > Programs[B].Calls;
  });

  const RegisterConfig Spot[] = {RegisterConfig(6, 4, 0, 0),
                                 RegisterConfig(8, 6, 2, 2),
                                 RegisterConfig(9, 7, 3, 3),
                                 fullMipsConfig()};
  TextTable PerProgram;
  PerProgram.setHeader({"program", "calls", "b/i (6,4,0,0)", "b/i (8,6,2,2)",
                        "b/i (9,7,3,3)", "b/i (18,10,8,6)",
                        "call_frac (18,10,8,6)"});
  unsigned Shown = std::min<unsigned>(8, Order.size());
  for (unsigned I = 0; I < Shown; ++I) {
    const CorpusProgram &P = Programs[Order[I]];
    std::vector<std::string> Row = {P.Name, std::to_string(P.Calls)};
    ExperimentResult LastBase;
    for (const RegisterConfig &Config : Spot) {
      ExperimentResult Base = Grid.run(*P.M, Config, baseChaitinOptions(),
                                       FrequencyMode::Profile);
      ExperimentResult Improved = Grid.run(*P.M, Config, improvedOptions(),
                                           FrequencyMode::Profile);
      Row.push_back(TextTable::formatDouble(overheadRatio(Base, Improved)));
      LastBase = Base;
    }
    Row.push_back(TextTable::formatDouble(callFraction(LastBase)));
    PerProgram.addRow(std::move(Row));
  }
  std::cout << "== Most call-dense programs: base/improved overhead ratio ==\n";
  emitTable(PerProgram, Args);

  Grid.emitTelemetry();
  return 0;
}
