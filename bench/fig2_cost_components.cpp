//===- bench/fig2_cost_components.cpp - Paper Figure 2 --------------------===//
//
// Figure 2: register-allocation cost of the base Chaitin-style allocator
// for eqntott and ear across register configurations (Ri,Rf,Ei,Ef). The
// paper's observations this bench reproduces:
//  - spill cost collapses once enough registers are available
//    (eqntott by (10,8,4,4), ear by (9,7,3,3)),
//  - call cost (caller-save + callee-save) then dominates, and
//  - adding registers can *increase* total cost, because live ranges move
//    into callee-save registers whose save/restore traffic exceeds their
//    spill cost.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  GridRunner Grid(Args);

  for (const std::string &Program : {std::string("eqntott"),
                                     std::string("ear")}) {
    std::unique_ptr<Module> M = buildSpecProxy(Program);
    TextTable Table;
    Table.setHeader({"config", "spill", "caller_sv", "callee_sv", "total"});
    for (const RegisterConfig &Config : standardConfigSweep()) {
      ExperimentResult R = Grid.run(*M, Config, baseChaitinOptions(),
                                    FrequencyMode::Profile);
      Table.addRow({Config.label(), TextTable::formatCount(R.Costs.Spill),
                    TextTable::formatCount(R.Costs.CallerSave),
                    TextTable::formatCount(R.Costs.CalleeSave),
                    TextTable::formatCount(R.Costs.total())});
    }
    std::cout << "== Figure 2: base Chaitin register-allocation cost, "
              << Program << " (dynamic overhead operations) ==\n";
    emitTable(Table, Args);
    std::cout << '\n';
  }
  Grid.emitTelemetry();
  return 0;
}
