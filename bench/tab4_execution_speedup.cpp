//===- bench/tab4_execution_speedup.cpp - Paper Table 4 -------------------===//
//
// Table 4: execution-time speedup of the three enhancements over
// optimistic coloring with the full register file (26 integer + 16
// floating-point registers), using the cycle model: one cycle per dynamic
// instruction, one extra cycle per memory operation (including every
// overhead load/store the allocator introduced). The paper measured up to
// 4.4% on a DECstation 5000 for compress/eqntott/li/sc/spice.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  GridRunner Grid(Args);

  TextTable Table;
  Table.setHeader({"program", "optimistic_cycles", "improved_cycles",
                   "speedup_%"});
  for (const std::string &Program : {std::string("compress"),
                                     std::string("eqntott"), std::string("li"),
                                     std::string("sc"), std::string("spice")}) {
    std::unique_ptr<Module> M = buildSpecProxy(Program);
    ExperimentResult Optimistic = Grid.run(
        *M, fullMipsConfig(), optimisticOptions(), FrequencyMode::Profile);
    ExperimentResult Improved = Grid.run(
        *M, fullMipsConfig(), improvedOptions(), FrequencyMode::Profile);
    double SpeedupPercent =
        (Optimistic.Cycles / Improved.Cycles - 1.0) * 100.0;
    Table.addRow({Program, TextTable::formatCount(Optimistic.Cycles),
                  TextTable::formatCount(Improved.Cycles),
                  TextTable::formatDouble(SpeedupPercent, 1)});
  }
  std::cout << "== Table 4: execution-time speedup of improved (SC+BS+PR) "
               "over optimistic, full MIPS register file ==\n";
  emitTable(Table, Args);
  std::cout << "(paper: compress 2.9, eqntott 2.2, li 2.8, sc 4.4, "
               "spice 1.0)\n";
  Grid.emitTelemetry();
  return 0;
}
