//===- bench/perf_allocators.cpp - Compile-time microbenchmarks -----------===//
//
// google-benchmark timings of the framework phases (liveness, live-range
// construction, graph construction, coalescing) and of whole-module
// allocation per allocator, over randomized programs of increasing size.
// This is the compile-time dimension the paper's framework optimizes with
// graph reconstruction (rebuilding only what spilling changed).
//
//===----------------------------------------------------------------------===//

#include "analysis/Frequency.h"
#include "analysis/Liveness.h"
#include "core/AllocatorFactory.h"
#include "ir/Cloner.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/LiveRange.h"
#include "regalloc/VRegClasses.h"
#include "workloads/RandomProgram.h"
#include "workloads/SpecProxies.h"

#include <benchmark/benchmark.h>

using namespace ccra;

namespace {

RandomProgramParams sizedParams(int64_t Scale) {
  RandomProgramParams Params;
  Params.Seed = 42;
  Params.NumFunctions = 2;
  Params.RegionsPerFunction = static_cast<unsigned>(4 * Scale);
  Params.IntValues = static_cast<unsigned>(4 * Scale);
  Params.FloatValues = static_cast<unsigned>(2 * Scale);
  return Params;
}

void BM_Liveness(benchmark::State &State) {
  auto M = generateRandomProgram(sizedParams(State.range(0)));
  Function *F = M->getEntryFunction();
  for (auto _ : State) {
    (void)_;
    benchmark::DoNotOptimize(Liveness::compute(*F));
  }
}
BENCHMARK(BM_Liveness)->Arg(1)->Arg(2)->Arg(4);

void BM_GraphConstruction(benchmark::State &State) {
  auto M = generateRandomProgram(sizedParams(State.range(0)));
  Function *F = M->getEntryFunction();
  FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
  Liveness LV = Liveness::compute(*F);
  VRegClasses Classes(F->numVRegs());
  LiveRangeSet LRS = LiveRangeSet::build(*F, LV, Freq, Classes);
  for (auto _ : State) {
    (void)_;
    benchmark::DoNotOptimize(InterferenceGraph::build(*F, LV, LRS));
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(1)->Arg(2)->Arg(4);

void allocateWith(benchmark::State &State, const AllocatorOptions &Opts) {
  auto M = generateRandomProgram(sizedParams(2));
  for (auto _ : State) {
    (void)_;
    auto Clone = cloneModule(*M);
    FrequencyInfo Freq =
        FrequencyInfo::compute(*Clone, FrequencyMode::Profile);
    AllocationEngine Engine =
        makeEngine(MachineDescription(RegisterConfig(8, 6, 2, 2)), Opts);
    benchmark::DoNotOptimize(Engine.allocateModule(*Clone, Freq));
  }
}

void BM_AllocateBase(benchmark::State &State) {
  allocateWith(State, baseChaitinOptions());
}
void BM_AllocateOptimistic(benchmark::State &State) {
  allocateWith(State, optimisticOptions());
}
void BM_AllocateImproved(benchmark::State &State) {
  allocateWith(State, improvedOptions());
}
void BM_AllocatePriority(benchmark::State &State) {
  allocateWith(State, priorityOptions());
}
void BM_AllocateCBH(benchmark::State &State) {
  allocateWith(State, cbhOptions());
}
BENCHMARK(BM_AllocateBase);
BENCHMARK(BM_AllocateOptimistic);
BENCHMARK(BM_AllocateImproved);
BENCHMARK(BM_AllocatePriority);
BENCHMARK(BM_AllocateCBH);

void BM_ReconstructionOnOff(benchmark::State &State) {
  // Compile-time value of graph reconstruction (paper §2): same
  // high-pressure allocation with incremental patching on vs off.
  RandomProgramParams Params;
  Params.Seed = 99;
  Params.UseMoves = false;
  Params.IntValues = 14;
  Params.FloatValues = 8;
  Params.RegionsPerFunction = 8;
  auto M = generateRandomProgram(Params);
  AllocatorOptions Opts = improvedOptions();
  Opts.IncrementalReconstruction = State.range(0) != 0;
  for (auto _ : State) {
    (void)_;
    auto Clone = cloneModule(*M);
    FrequencyInfo Freq =
        FrequencyInfo::compute(*Clone, FrequencyMode::Profile);
    AllocationEngine Engine =
        makeEngine(MachineDescription(RegisterConfig(6, 4, 1, 1)), Opts);
    benchmark::DoNotOptimize(Engine.allocateModule(*Clone, Freq));
  }
  State.SetLabel(State.range(0) ? "incremental" : "from-scratch");
}
BENCHMARK(BM_ReconstructionOnOff)->Arg(0)->Arg(1);

void BM_AllocateSpecProxy(benchmark::State &State) {
  auto All = buildAllSpecProxies();
  const Module &M = *All[static_cast<size_t>(State.range(0))].second;
  for (auto _ : State) {
    (void)_;
    auto Clone = cloneModule(M);
    FrequencyInfo Freq =
        FrequencyInfo::compute(*Clone, FrequencyMode::Profile);
    AllocationEngine Engine = makeEngine(
        MachineDescription(RegisterConfig(9, 7, 3, 3)), improvedOptions());
    benchmark::DoNotOptimize(Engine.allocateModule(*Clone, Freq));
  }
  State.SetLabel(All[static_cast<size_t>(State.range(0))].first);
}
BENCHMARK(BM_AllocateSpecProxy)->DenseRange(0, 13);

} // namespace

BENCHMARK_MAIN();
