//===- bench/perf_allocators.cpp - Compile-time microbenchmarks -----------===//
//
// google-benchmark timings of the framework phases (liveness, live-range
// construction, graph construction, coalescing) and of whole-module
// allocation per allocator, over randomized programs of increasing size.
// This is the compile-time dimension the paper's framework optimizes with
// graph reconstruction (rebuilding only what spilling changed), and that
// the parallel engine scales across functions (BM_AllocateModuleJobs).
// Telemetry counters from the engine are surfaced as benchmark counters.
//
//===----------------------------------------------------------------------===//

#include "ccra.h"

#include "analysis/Liveness.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/LiveRange.h"
#include "regalloc/VRegClasses.h"
#include "workloads/RandomProgram.h"
#include "workloads/SpecProxies.h"

#include <benchmark/benchmark.h>

using namespace ccra;

namespace {

RandomProgramParams sizedParams(int64_t Scale) {
  RandomProgramParams Params;
  Params.Seed = 42;
  Params.NumFunctions = 2;
  Params.RegionsPerFunction = static_cast<unsigned>(4 * Scale);
  Params.IntValues = static_cast<unsigned>(4 * Scale);
  Params.FloatValues = static_cast<unsigned>(2 * Scale);
  return Params;
}

void BM_Liveness(benchmark::State &State) {
  auto M = generateRandomProgram(sizedParams(State.range(0)));
  Function *F = M->getEntryFunction();
  for (auto _ : State) {
    (void)_;
    benchmark::DoNotOptimize(Liveness::compute(*F));
  }
}
BENCHMARK(BM_Liveness)->Arg(1)->Arg(2)->Arg(4);

void BM_GraphConstruction(benchmark::State &State) {
  auto M = generateRandomProgram(sizedParams(State.range(0)));
  Function *F = M->getEntryFunction();
  FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
  Liveness LV = Liveness::compute(*F);
  VRegClasses Classes(F->numVRegs());
  LiveRangeSet LRS = LiveRangeSet::build(*F, LV, Freq, Classes);
  for (auto _ : State) {
    (void)_;
    benchmark::DoNotOptimize(InterferenceGraph::build(*F, LV, LRS));
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(1)->Arg(2)->Arg(4);

void allocateWith(benchmark::State &State, const AllocatorOptions &Opts) {
  auto M = generateRandomProgram(sizedParams(2));
  Telemetry T;
  for (auto _ : State) {
    (void)_;
    auto Clone = cloneModule(*M);
    FrequencyInfo Freq =
        FrequencyInfo::compute(*Clone, FrequencyMode::Profile);
    AllocationEngine Engine = EngineBuilder(RegisterConfig(8, 6, 2, 2))
                                  .options(Opts)
                                  .telemetry(&T)
                                  .build();
    benchmark::DoNotOptimize(Engine.allocateModule(*Clone, Freq));
  }
  // Per-iteration allocation telemetry as benchmark counters.
  TelemetrySnapshot Snap = T.snapshot();
  auto PerIteration = benchmark::Counter(
      0, benchmark::Counter::kAvgIterations);
  for (const char *Name : {telemetry::Rounds, telemetry::SpilledRanges,
                           telemetry::CoalescedMoves,
                           telemetry::CalleeRegsPaid}) {
    PerIteration.value = Snap.count(Name);
    State.counters[Name] = PerIteration;
  }
}

void BM_AllocateBase(benchmark::State &State) {
  allocateWith(State, baseChaitinOptions());
}
void BM_AllocateOptimistic(benchmark::State &State) {
  allocateWith(State, optimisticOptions());
}
void BM_AllocateImproved(benchmark::State &State) {
  allocateWith(State, improvedOptions());
}
void BM_AllocatePriority(benchmark::State &State) {
  allocateWith(State, priorityOptions());
}
void BM_AllocateCBH(benchmark::State &State) {
  allocateWith(State, cbhOptions());
}
BENCHMARK(BM_AllocateBase);
BENCHMARK(BM_AllocateOptimistic);
BENCHMARK(BM_AllocateImproved);
BENCHMARK(BM_AllocatePriority);
BENCHMARK(BM_AllocateCBH);

void BM_ReconstructionOnOff(benchmark::State &State) {
  // Compile-time value of graph reconstruction (paper §2): same
  // high-pressure allocation with incremental patching on vs off.
  RandomProgramParams Params;
  Params.Seed = 99;
  Params.UseMoves = false;
  Params.IntValues = 14;
  Params.FloatValues = 8;
  Params.RegionsPerFunction = 8;
  auto M = generateRandomProgram(Params);
  AllocatorOptions Opts = improvedOptions();
  Opts.IncrementalReconstruction = State.range(0) != 0;
  for (auto _ : State) {
    (void)_;
    auto Clone = cloneModule(*M);
    FrequencyInfo Freq =
        FrequencyInfo::compute(*Clone, FrequencyMode::Profile);
    AllocationEngine Engine = EngineBuilder(RegisterConfig(6, 4, 1, 1))
                                  .options(Opts)
                                  .build();
    benchmark::DoNotOptimize(Engine.allocateModule(*Clone, Freq));
  }
  State.SetLabel(State.range(0) ? "incremental" : "from-scratch");
}
BENCHMARK(BM_ReconstructionOnOff)->Arg(0)->Arg(1);

void BM_AllocateModuleJobs(benchmark::State &State) {
  // Scaling of the parallel engine across a many-function module. Jobs=1
  // is the serial baseline; results are bit-identical at every setting
  // (tests/ParallelTest.cpp), so this measures pure wall-clock scaling.
  RandomProgramParams Params;
  Params.Seed = 7;
  Params.NumFunctions = 16;
  Params.RegionsPerFunction = 6;
  Params.IntValues = 10;
  Params.FloatValues = 6;
  auto M = generateRandomProgram(Params);
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    (void)_;
    auto Clone = cloneModule(*M);
    FrequencyInfo Freq =
        FrequencyInfo::compute(*Clone, FrequencyMode::Profile);
    AllocationEngine Engine = EngineBuilder(RegisterConfig(8, 6, 2, 2))
                                  .options(improvedOptions())
                                  .jobs(Jobs)
                                  .build();
    benchmark::DoNotOptimize(Engine.allocateModule(*Clone, Freq));
  }
  State.SetLabel("jobs=" + std::to_string(Jobs));
}
BENCHMARK(BM_AllocateModuleJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_AllocateSpecProxy(benchmark::State &State) {
  auto All = buildAllSpecProxies();
  const Module &M = *All[static_cast<size_t>(State.range(0))].second;
  for (auto _ : State) {
    (void)_;
    auto Clone = cloneModule(M);
    FrequencyInfo Freq =
        FrequencyInfo::compute(*Clone, FrequencyMode::Profile);
    AllocationEngine Engine = EngineBuilder(RegisterConfig(9, 7, 3, 3))
                                  .options(improvedOptions())
                                  .build();
    benchmark::DoNotOptimize(Engine.allocateModule(*Clone, Freq));
  }
  State.SetLabel(All[static_cast<size_t>(State.range(0))].first);
}
BENCHMARK(BM_AllocateSpecProxy)->DenseRange(0, 13);

} // namespace

BENCHMARK_MAIN();
