//===- bench/tab2_optimistic_static.cpp - Paper Table 2 -------------------===//
//
// Table 2: base-Chaitin / optimistic overhead ratio with *static*
// frequency estimates, for every program over a register sweep. Values
// below 1.00 (the paper's darkly shaded cells) are configurations where
// optimistic coloring *adds* overhead: the live ranges it rescues from
// spilling land in the wrong kind of register, whose call cost exceeds
// their spill cost. The paper found the effect small (within about +-6%)
// except fpppp under static estimates (up to ~36% improvement).
//
//===----------------------------------------------------------------------===//

#include "OptimisticTable.h"

using namespace ccra;

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  std::cout << "== Table 2: base-Chaitin / optimistic overhead ratio "
               "(static estimates; <1.00 = optimistic is worse) ==\n";
  runOptimisticTable(FrequencyMode::Static, Args);
  return 0;
}
