#!/usr/bin/env bash
# One parameterized service smoke: start a ccra_serve daemon on a fresh
# Unix socket, drive a client burst through it, optionally ask for STATS,
# then SIGTERM it and require a clean drain (exit 0). CI and check.sh both
# call this instead of carrying their own copy of the boilerplate; the
# ASan legs get their zero-leak gate for free from the daemon's exit-time
# leak check.
#
# Usage: service_smoke.sh --build-dir=DIR [options]
#   --build-dir=DIR      build tree holding tools/ccra_serve + ccra_client
#   --requests=N         burst size (default 200)
#   --clients=N          concurrent burst clients (default 4)
#   --serve-args="..."   extra daemon flags (e.g. --shards=2)
#   --client-args="..."  extra burst flags (e.g. --zipf, --wire=v2)
#   --stats              fetch STATS after the burst (sanity + coverage)

set -euo pipefail

BUILD_DIR=""
REQUESTS=200
CLIENTS=4
SERVE_ARGS=""
CLIENT_ARGS=""
STATS=0

for Arg in "$@"; do
  case "$Arg" in
    --build-dir=*) BUILD_DIR="${Arg#*=}" ;;
    --requests=*) REQUESTS="${Arg#*=}" ;;
    --clients=*) CLIENTS="${Arg#*=}" ;;
    --serve-args=*) SERVE_ARGS="${Arg#*=}" ;;
    --client-args=*) CLIENT_ARGS="${Arg#*=}" ;;
    --stats) STATS=1 ;;
    *) echo "service_smoke.sh: unknown argument: $Arg" >&2; exit 2 ;;
  esac
done

[ -n "$BUILD_DIR" ] || { echo "service_smoke.sh: --build-dir is required" >&2; exit 2; }
SERVE="$BUILD_DIR/tools/ccra_serve"
CLIENT="$BUILD_DIR/tools/ccra_client"
[ -x "$SERVE" ] && [ -x "$CLIENT" ] || {
  echo "service_smoke.sh: $SERVE / $CLIENT not built" >&2; exit 2; }

SOCK="$(mktemp -u /tmp/ccra-smoke-XXXXXX.sock)"

# shellcheck disable=SC2086  # SERVE_ARGS is intentionally word-split
"$SERVE" --unix="$SOCK" $SERVE_ARGS &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "service_smoke.sh: daemon never bound $SOCK" >&2; exit 1; }

# The burst exits non-zero unless every valid response is bit-identical
# to in-process allocation (and, with --zipf, unless the cache hit).
# shellcheck disable=SC2086
"$CLIENT" --unix="$SOCK" burst --requests="$REQUESTS" \
    --clients="$CLIENTS" $CLIENT_ARGS

if [ "$STATS" = 1 ]; then
  "$CLIENT" --unix="$SOCK" stats > /dev/null
fi

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"   # exit 0 == clean drain
trap - EXIT
rm -f "$SOCK"
echo "service_smoke.sh: clean drain"
