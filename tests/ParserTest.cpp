//===- tests/ParserTest.cpp - Textual IR parser tests ---------------------===//

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "workloads/RandomProgram.h"
#include "workloads/SpecProxies.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ccra;

namespace {

std::string printToString(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

TEST(IRParser, ParsesMinimalModule) {
  ParseResult R = parseModule("module demo\n"
                              "func @main {\n"
                              "entry:\n"
                              "  %i0 = loadimm 42\n"
                              "  ret %i0\n"
                              "}\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_EQ(R.M->getName(), "demo");
  Function *F = R.M->getFunction("main");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(R.M->getEntryFunction(), F);
  EXPECT_TRUE(verifyModule(*R.M, nullptr));
  const auto &Insts = F->getEntryBlock()->instructions();
  ASSERT_EQ(Insts.size(), 2u);
  EXPECT_EQ(Insts[0].Op, Opcode::LoadImm);
  EXPECT_EQ(Insts[0].Imm, 42);
  EXPECT_EQ(Insts[1].Op, Opcode::Ret);
}

TEST(IRParser, ParsesControlFlowWithProbabilities) {
  ParseResult R = parseModule("module m\n"
                              "func @main {\n"
                              "entry:\n"
                              "  %i0 = loadimm 1\n"
                              "  %i1 = cmp %i0, %i0\n"
                              "  condbr %i1\n"
                              "  ; succs: hot(0.9) cold(0.1)\n"
                              "hot:\n"
                              "  ret %i0\n"
                              "cold:\n"
                              "  ret %i0\n"
                              "}\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
  Function *F = R.M->getFunction("main");
  const auto &Succs = F->getEntryBlock()->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0].Succ->getName(), "hot");
  EXPECT_DOUBLE_EQ(Succs[0].Probability, 0.9);
  EXPECT_DOUBLE_EQ(Succs[1].Probability, 0.1);
  EXPECT_TRUE(verifyModule(*R.M, nullptr));
}

TEST(IRParser, ResolvesForwardCalls) {
  ParseResult R = parseModule("module m\n"
                              "func @main {\n"
                              "entry:\n"
                              "  %i0 = loadimm 1\n"
                              "  %i1 = call @later(%i0)\n"
                              "  ret %i1\n"
                              "}\n"
                              "func @later (external)\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
  const Instruction &Call =
      R.M->getFunction("main")->getEntryBlock()->instructions()[1];
  EXPECT_EQ(Call.Callee, R.M->getFunction("later"));
}

TEST(IRParser, ParsesBanksFromRegisterNames) {
  ParseResult R = parseModule("module m\n"
                              "func @main {\n"
                              "entry:\n"
                              "  %f0 = floadimm 2\n"
                              "  %f1 = fadd %f0, %f0\n"
                              "  %i2 = cvt.f2i %f1\n"
                              "  ret %i2\n"
                              "}\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
  Function *F = R.M->getFunction("main");
  EXPECT_EQ(F->vregBank(VirtReg(0)), RegBank::Float);
  EXPECT_EQ(F->vregBank(VirtReg(2)), RegBank::Int);
  EXPECT_TRUE(verifyModule(*R.M, nullptr));
}

TEST(IRParser, ParsesSpillAndSaveRestoreCode) {
  ParseResult R = parseModule("module m\n"
                              "func @main {\n"
                              "entry:\n"
                              "  save r3\n"
                              "  %i0 = spill.load slot2\n"
                              "  spill.store %i0, slot2\n"
                              "  restore r3\n"
                              "  ret\n"
                              "}\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
  const auto &Insts = R.M->getFunction("main")->getEntryBlock()->instructions();
  EXPECT_EQ(Insts[0].Phys, PhysReg(RegBank::Int, 3));
  EXPECT_EQ(Insts[1].SpillSlot, 2u);
  EXPECT_EQ(Insts[1].Overhead, OverheadKind::Spill);
  EXPECT_EQ(Insts[2].Uses[0], Insts[1].Defs[0]);
}

// --- Error reporting ----------------------------------------------------------

TEST(IRParser, RejectsUnknownOpcode) {
  ParseResult R = parseModule("module m\nfunc @f {\nentry:\n  frobnicate\n}\n");
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors[0].find("unknown opcode"), std::string::npos);
  EXPECT_NE(R.Errors[0].find("line 4"), std::string::npos);
}

TEST(IRParser, RejectsBankConflict) {
  ParseResult R = parseModule("module m\nfunc @f {\nentry:\n"
                              "  %i0 = loadimm 1\n"
                              "  %f0 = cvt.i2f %i0\n" // %f0 reuses id 0
                              "  ret %i0\n}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("two banks"), std::string::npos);
}

TEST(IRParser, RejectsUnknownSuccessor) {
  ParseResult R = parseModule("module m\nfunc @f {\nentry:\n  br\n"
                              "  ; succs: nowhere(1)\n}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("unknown block"), std::string::npos);
}

TEST(IRParser, RejectsUnknownCallee) {
  ParseResult R = parseModule("module m\nfunc @f {\nentry:\n"
                              "  call @ghost()\n  ret\n}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("unknown function"), std::string::npos);
}

TEST(IRParser, RejectsMissingBrace) {
  ParseResult R = parseModule("module m\nfunc @f {\nentry:\n  ret\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("missing '}'"), std::string::npos);
}

TEST(IRParser, RejectsTextBeforeModule) {
  ParseResult R = parseModule("func @f (external)\n");
  EXPECT_FALSE(R.ok());
}

// --- Round trips -----------------------------------------------------------------

TEST(IRParser, RoundTripsAllSpecProxies) {
  for (const std::string &Name : specProxyNames()) {
    SCOPED_TRACE(Name);
    std::unique_ptr<Module> Original = buildSpecProxy(Name);
    std::string Text = printToString(*Original);
    ParseResult R = parseModule(Text);
    ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
    EXPECT_EQ(printToString(*R.M), Text);
    EXPECT_TRUE(verifyModule(*R.M, nullptr));
  }
}

TEST(IRParser, RoundTripsRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    SCOPED_TRACE(Seed);
    RandomProgramParams Params;
    Params.Seed = Seed;
    std::unique_ptr<Module> Original = generateRandomProgram(Params);
    std::string Text = printToString(*Original);
    ParseResult R = parseModule(Text);
    ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
    EXPECT_EQ(printToString(*R.M), Text);
    EXPECT_TRUE(verifyModule(*R.M, nullptr));
  }
}

} // namespace
