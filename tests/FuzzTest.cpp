//===- tests/FuzzTest.cpp - Fuzz harness + seed-corpus replay -------------===//
//
// Tier-1 coverage for the differential fuzzing subsystem:
//
//  - the committed seed corpus (fuzz/corpus/*.ccra) replays clean through
//    the full oracle lattice — every past reproducer stays fixed;
//  - FuzzGen is deterministic per seed and its modules survive a textual
//    round trip;
//  - a fresh slice of seeds passes the lattice (the in-tree slice of what
//    ccra_fuzz sweeps at scale);
//  - the shrinker converges: a planted mismatch (OracleOptions'
//    test-only fault hook) is minimized to a near-trivial module that
//    still fails, and the evaluation budget is honored.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "support/Rng.h"
#include "workloads/FuzzGen.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ccra;

#ifndef CCRA_SOURCE_DIR
#define CCRA_SOURCE_DIR "."
#endif

namespace {

std::string printed(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

TEST(FuzzCorpus, SeedCorpusReplaysClean) {
  std::vector<std::string> Errors;
  std::vector<CorpusEntry> Entries =
      loadCorpusDir(std::string(CCRA_SOURCE_DIR) + "/fuzz/corpus", Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  // The committed seed corpus is never empty: generated seeds plus any
  // minimized reproducers live there.
  EXPECT_FALSE(Entries.empty());
  for (const CorpusEntry &Entry : Entries) {
    OracleOptions OO;
    // Reproducers carry their original register file in the header.
    for (const std::string &Line : Entry.HeaderLines) {
      unsigned Ri, Rf, Ei, Ef;
      if (std::sscanf(Line.c_str(), "config: %u,%u,%u,%u", &Ri, &Rf, &Ei,
                      &Ef) == 4)
        OO.Config = RegisterConfig(Ri, Rf, Ei, Ef);
    }
    OracleReport Report = runOracleLattice(*Entry.M, OO);
    for (const std::string &Line : Report.lines())
      ADD_FAILURE() << Entry.Path << ": " << Line;
  }
}

TEST(FuzzGenTest, DeterministicPerSeed) {
  for (FuzzProfile P : allFuzzProfiles()) {
    FuzzGenParams Params;
    Params.Seed = 42;
    Params.Profile = P;
    std::unique_ptr<Module> A = generateFuzzModule(Params);
    std::unique_ptr<Module> B = generateFuzzModule(Params);
    EXPECT_EQ(printed(*A), printed(*B)) << fuzzProfileName(P);

    Params.Seed = 43;
    std::unique_ptr<Module> C = generateFuzzModule(Params);
    EXPECT_NE(printed(*A), printed(*C)) << fuzzProfileName(P);
  }
}

TEST(FuzzGenTest, ModulesRoundTripThroughText) {
  for (FuzzProfile P : allFuzzProfiles()) {
    FuzzGenParams Params;
    Params.Seed = 7;
    Params.Profile = P;
    std::unique_ptr<Module> M = generateFuzzModule(Params);
    ParseResult R = parseModule(printed(*M));
    ASSERT_TRUE(R.ok()) << fuzzProfileName(P) << ": "
                        << (R.Errors.empty() ? "?" : R.Errors.front());
    EXPECT_TRUE(verifyModule(*R.M, nullptr));
    EXPECT_EQ(printed(*M), printed(*R.M)) << fuzzProfileName(P);
  }
}

TEST(FuzzGenTest, ProfileNamesRoundTrip) {
  for (FuzzProfile P : allFuzzProfiles()) {
    FuzzProfile Parsed;
    ASSERT_TRUE(parseFuzzProfile(fuzzProfileName(P), Parsed));
    EXPECT_EQ(P, Parsed);
  }
  FuzzProfile Ignored;
  EXPECT_FALSE(parseFuzzProfile("not-a-profile", Ignored));
}

TEST(FuzzLattice, FreshSeedsPassAllOracles) {
  // The in-tree slice of the at-scale ccra_fuzz sweep: one seed per
  // profile, randomized register file, full lattice.
  for (FuzzProfile P : allFuzzProfiles()) {
    FuzzGenParams Params;
    Params.Seed = 1000 + static_cast<uint64_t>(P);
    Params.Profile = P;
    std::unique_ptr<Module> M = generateFuzzModule(Params);
    Rng ConfigRng(Params.Seed ^ 0xc0ffee);
    OracleOptions OO;
    OO.Config = fuzzRegisterConfig(ConfigRng);
    OO.ParallelJobs = 2;
    OracleReport Report = runOracleLattice(*M, OO);
    EXPECT_GT(Report.LegsRun, 10u);
    for (const std::string &Line : Report.lines())
      ADD_FAILURE() << fuzzProfileName(P) << " seed " << Params.Seed << ": "
                    << Line;
  }
}

TEST(FuzzShrinker, ConvergesOnInjectedFault) {
  // Plant a mismatch via the test-only hook: "fails while the module
  // still contains a call". The minimizer must converge to a near-trivial
  // module that still trips the same fault and still IR-verifies.
  FuzzGenParams Params;
  Params.Seed = 11;
  Params.Profile = FuzzProfile::CallDense;
  std::unique_ptr<Module> M = generateFuzzModule(Params);

  auto ContainsCall = [](const Module &Mod) {
    for (const auto &F : Mod.functions())
      for (const auto &BB : F->blocks())
        for (const Instruction &I : BB->instructions())
          if (I.isCall())
            return true;
    return false;
  };
  ASSERT_TRUE(ContainsCall(*M));

  OracleOptions OO;
  OO.InjectedFault = ContainsCall;
  ASSERT_FALSE(runOracleLattice(*M, OO).ok());

  ShrinkStats Stats;
  std::unique_ptr<Module> Minimal = shrinkModule(
      *M,
      [&](const Module &Candidate) {
        return !runOracleLattice(Candidate, OO).ok();
      },
      {}, &Stats);

  EXPECT_TRUE(ContainsCall(*Minimal));
  EXPECT_TRUE(verifyModule(*Minimal, nullptr));
  EXPECT_LT(Stats.InstructionsAfter, Stats.InstructionsBefore / 4)
      << "shrinker failed to make substantial progress";
  // A "contains a call" failure minimizes hard: nothing but the calling
  // skeleton should survive.
  EXPECT_LE(Stats.InstructionsAfter, 12u);
}

TEST(FuzzShrinker, RespectsEvaluationBudget) {
  FuzzGenParams Params;
  Params.Seed = 12;
  Params.Profile = FuzzProfile::Mixed;
  std::unique_ptr<Module> M = generateFuzzModule(Params);

  unsigned Calls = 0;
  ShrinkOptions SO;
  SO.MaxEvaluations = 25;
  ShrinkStats Stats;
  std::unique_ptr<Module> Minimal = shrinkModule(
      *M,
      [&](const Module &) {
        ++Calls;
        return true; // everything "fails": worst case for the budget
      },
      SO, &Stats);
  EXPECT_LE(Stats.Evaluations, SO.MaxEvaluations);
  EXPECT_EQ(Calls, Stats.Evaluations);
  EXPECT_TRUE(verifyModule(*Minimal, nullptr));
}

TEST(FuzzCorpusIO, WriteLoadRoundTripsHeader) {
  FuzzGenParams Params;
  Params.Seed = 3;
  Params.Profile = FuzzProfile::Tiny;
  std::unique_ptr<Module> M = generateFuzzModule(Params);

  std::string Dir = ::testing::TempDir() + "ccra-corpus-test";
  std::string Path = writeCorpusFile(
      *M, Dir, "roundtrip", {"config: 6,4,1,1", "note: header survives"});
  ASSERT_FALSE(Path.empty());

  std::vector<std::string> Errors;
  std::vector<CorpusEntry> Entries = loadCorpusDir(Dir, Errors);
  EXPECT_TRUE(Errors.empty());
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Path, Path);
  ASSERT_EQ(Entries[0].HeaderLines.size(), 2u);
  EXPECT_EQ(Entries[0].HeaderLines[0], "config: 6,4,1,1");
  EXPECT_EQ(printed(*M), printed(*Entries[0].M));
}

TEST(FuzzCorpusIO, MissingDirectoryIsEmptyCorpus) {
  std::vector<std::string> Errors;
  EXPECT_TRUE(loadCorpusDir("/nonexistent/ccra-no-such-dir", Errors).empty());
  EXPECT_TRUE(Errors.empty());
}

} // namespace
