//===- tests/SpillTest.cpp - Spill code & overhead materialization --------===//

#include "analysis/Frequency.h"
#include "core/EngineBuilder.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "regalloc/CostAccounting.h"
#include "regalloc/SpillCodeInserter.h"
#include "workloads/SpecProxies.h"

#include <gtest/gtest.h>

using namespace ccra;

namespace {

// --- SpillCodeInserter ---------------------------------------------------------

struct SpillFixture {
  Module M{"m"};
  Function *F;
  VirtReg A, C, Sum;

  SpillFixture() {
    F = M.createFunction("main");
    IRBuilder B(*F);
    B.startBlock("entry");
    A = B.buildLoadImm(1); // will be spilled
    C = B.buildLoadImm(2);
    Sum = B.buildBinary(Opcode::Add, A, C);
    B.buildBinaryInto(Sum, Opcode::Add, A, A); // two uses of A in one instr
    B.buildRet(Sum);
    M.setEntryFunction(F);
  }
};

TEST(SpillCodeInserter, RewritesDefsAndUses) {
  SpillFixture Fx;
  SpillCodeInserter::Stats Stats =
      SpillCodeInserter::run(*Fx.F, {{Fx.A}});
  EXPECT_EQ(Stats.RangesSpilled, 1u);
  EXPECT_EQ(Stats.StoresInserted, 1u); // one def
  EXPECT_EQ(Stats.LoadsInserted, 2u);  // two using instructions
  EXPECT_TRUE(verifyModule(Fx.M, nullptr));

  // The spilled register must no longer occur anywhere.
  for (const auto &BB : Fx.F->blocks())
    for (const Instruction &I : BB->instructions()) {
      for (VirtReg D : I.Defs)
        EXPECT_NE(D, Fx.A);
      for (VirtReg U : I.Uses)
        EXPECT_NE(U, Fx.A);
    }
}

TEST(SpillCodeInserter, SingleReloadForMultipleUsesInOneInstruction) {
  SpillFixture Fx;
  SpillCodeInserter::run(*Fx.F, {{Fx.A}});
  // The "Sum = A + A" instruction must use one reload temp twice, fed by a
  // single spill.load.
  const auto &Insts = Fx.F->getEntryBlock()->instructions();
  unsigned Loads = 0;
  for (const Instruction &I : Insts)
    Loads += (I.Op == Opcode::SpillLoad) ? 1 : 0;
  EXPECT_EQ(Loads, 2u);
}

TEST(SpillCodeInserter, StoreFollowsDefiningInstruction) {
  SpillFixture Fx;
  SpillCodeInserter::run(*Fx.F, {{Fx.A}});
  const auto &Insts = Fx.F->getEntryBlock()->instructions();
  // Pattern: loadimm(temp); spill.store temp ...
  ASSERT_GE(Insts.size(), 2u);
  EXPECT_EQ(Insts[0].Op, Opcode::LoadImm);
  EXPECT_EQ(Insts[1].Op, Opcode::SpillStore);
  EXPECT_EQ(Insts[1].Uses[0], Insts[0].Defs[0]);
  EXPECT_EQ(Insts[1].Overhead, OverheadKind::Spill);
}

TEST(SpillCodeInserter, TempsAreUnspillable) {
  SpillFixture Fx;
  SpillCodeInserter::run(*Fx.F, {{Fx.A}});
  for (const auto &BB : Fx.F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::SpillLoad) {
        EXPECT_TRUE(Fx.F->isSpillTemp(I.Defs[0]));
      }
}

TEST(SpillCodeInserter, DistinctSlotsPerClass) {
  SpillFixture Fx;
  SpillCodeInserter::run(*Fx.F, {{Fx.A}, {Fx.C}});
  unsigned Slots[2] = {~0u, ~0u};
  for (const auto &BB : Fx.F->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::SpillLoad || I.Op == Opcode::SpillStore) {
        ASSERT_LT(I.SpillSlot, 2u);
        Slots[I.SpillSlot] = I.SpillSlot;
      }
  EXPECT_EQ(Slots[0], 0u);
  EXPECT_EQ(Slots[1], 1u);
}

TEST(SpillCodeInserter, ReloadBeforeTerminatorUse) {
  Module M("m");
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg C = B.buildCmp(A, A);
  BasicBlock *T = F.createBlock("t");
  BasicBlock *E = F.createBlock("e");
  B.buildCondBr(C, T, E, 0.5);
  B.setInsertBlock(T);
  B.buildRet(A);
  B.setInsertBlock(E);
  B.buildRet(A);
  M.setEntryFunction(&F);
  SpillCodeInserter::run(F, {{C}});
  EXPECT_TRUE(verifyModule(M, nullptr));
  // The reload must precede the condbr inside the entry block.
  const auto &Insts = F.getEntryBlock()->instructions();
  ASSERT_GE(Insts.size(), 2u);
  EXPECT_EQ(Insts[Insts.size() - 2].Op, Opcode::SpillLoad);
  EXPECT_EQ(Insts.back().Op, Opcode::CondBr);
  EXPECT_EQ(Insts.back().Uses[0], Insts[Insts.size() - 2].Defs[0]);
}

// --- End-to-end spill + materialization ------------------------------------------

TEST(OverheadMaterialization, SaveRestoreBracketsCalls) {
  // One value live across a call, few registers so it lands caller-save.
  Module M("m");
  Function *Leaf = M.createFunction("leaf");
  {
    IRBuilder B(*Leaf);
    B.startBlock("entry");
    B.buildRet();
  }
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  B.buildCall(Leaf, {});
  B.buildRet(A);
  M.setEntryFunction(&F);

  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  // No callee-save registers: A must live in a caller-save register.
  AllocationEngine Engine =
      EngineBuilder(RegisterConfig(4, 2, 0, 0))
          .options(baseChaitinOptions()).build();
  Engine.allocateModule(M, Freq);

  const auto &Insts = F.getEntryBlock()->instructions();
  // Expected: loadimm, save, call, restore, ret.
  std::vector<Opcode> Ops;
  for (const Instruction &I : Insts)
    Ops.push_back(I.Op);
  EXPECT_EQ(Ops, (std::vector<Opcode>{Opcode::LoadImm, Opcode::Save,
                                      Opcode::Call, Opcode::Restore,
                                      Opcode::Ret}));
  EXPECT_EQ(Insts[1].Overhead, OverheadKind::CallerSave);
  EXPECT_EQ(Insts[1].Phys, Insts[3].Phys);
}

TEST(OverheadMaterialization, CalleeSavePrologueEpilogue) {
  Module M("m");
  Function *Leaf = M.createFunction("leaf");
  {
    IRBuilder B(*Leaf);
    B.startBlock("entry");
    B.buildRet();
  }
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  B.buildCall(Leaf, {});
  B.buildRet(A);
  M.setEntryFunction(&F);

  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  // Only callee-save registers available beyond none caller: force A into
  // a callee-save register by having zero... caller-save registers must
  // exist (config minimum); use base model which prefers callee-save for
  // call-crossing ranges.
  AllocationEngine Engine =
      EngineBuilder(RegisterConfig(2, 2, 2, 2))
          .options(baseChaitinOptions()).build();
  Engine.allocateModule(M, Freq);

  const auto &Insts = F.getEntryBlock()->instructions();
  EXPECT_EQ(Insts.front().Op, Opcode::Save);
  EXPECT_EQ(Insts.front().Overhead, OverheadKind::CalleeSave);
  // Restore sits just before the ret.
  EXPECT_EQ(Insts[Insts.size() - 2].Op, Opcode::Restore);
  EXPECT_EQ(Insts[Insts.size() - 2].Overhead, OverheadKind::CalleeSave);
  EXPECT_EQ(Insts.back().Op, Opcode::Ret);
}

TEST(CostAccounting, MeasuredEqualsAnalyticOnProxies) {
  // The two independent cost paths — reading tagged overhead instructions
  // off the final code vs deriving caller/callee components from the
  // assignment — must agree for every program and allocator.
  for (const std::string &Name : {std::string("eqntott"), std::string("li"),
                                  std::string("fpppp"),
                                  std::string("tomcatv")}) {
    for (const AllocatorOptions &Opts :
         {baseChaitinOptions(), improvedOptions(), cbhOptions()}) {
      std::unique_ptr<Module> M = buildSpecProxy(Name);
      FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
      AllocationEngine Engine = EngineBuilder(RegisterConfig(9, 7, 3, 3))
          .options(Opts).build();
      ModuleAllocationResult Result = Engine.allocateModule(*M, Freq);

      CostBreakdown Measured;
      for (const auto &F : M->functions())
        Measured += measureCostFromCode(*F, Freq);

      EXPECT_NEAR(Measured.Spill, Result.Totals.Spill,
                  1e-6 * (1 + Result.Totals.Spill))
          << Name << ' ' << Opts.describe();
      EXPECT_NEAR(Measured.CallerSave, Result.Totals.CallerSave,
                  1e-6 * (1 + Result.Totals.CallerSave))
          << Name << ' ' << Opts.describe();
      EXPECT_NEAR(Measured.CalleeSave, Result.Totals.CalleeSave,
                  1e-6 * (1 + Result.Totals.CalleeSave))
          << Name << ' ' << Opts.describe();
    }
  }
}

TEST(SpillIteration, ConvergesUnderExtremePressure) {
  // Minimal register file on a high-pressure program: several spill
  // rounds, and the result still verifies (the engine aborts otherwise).
  std::unique_ptr<Module> M = buildSpecProxy("fpppp");
  FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
  AllocationEngine Engine = EngineBuilder(minimalMipsConfig())
      .options(baseChaitinOptions()).build();
  ModuleAllocationResult Result = Engine.allocateModule(*M, Freq);
  unsigned MaxRounds = 0;
  for (const auto &[F, FA] : Result.PerFunction) {
    (void)F;
    MaxRounds = std::max(MaxRounds, FA.Rounds);
  }
  EXPECT_GE(MaxRounds, 2u); // spilling actually happened
  EXPECT_TRUE(verifyModule(*M, nullptr));
}

} // namespace
