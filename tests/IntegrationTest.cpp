//===- tests/IntegrationTest.cpp - End-to-end allocation tests ------------===//
//
// Whole-pipeline tests: build a workload, run every allocator over several
// register configurations and both frequency modes, and check the
// qualitative relationships the paper reports.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "workloads/SpecProxies.h"

#include <gtest/gtest.h>

using namespace ccra;

namespace {

/// All allocator configurations exercised by the integration sweeps.
std::vector<AllocatorOptions> allAllocatorOptions() {
  return {
      baseChaitinOptions(),
      optimisticOptions(),
      improvedOptions(true, false, false),
      improvedOptions(true, true, false),
      improvedOptions(true, true, true),
      improvedOptimisticOptions(),
      priorityOptions(PriorityOrdering::FullSort),
      priorityOptions(PriorityOrdering::RemoveUnconstrained),
      priorityOptions(PriorityOrdering::SortUnconstrained),
      cbhOptions(),
  };
}

TEST(Integration, EveryAllocatorConvergesOnEqntott) {
  std::unique_ptr<Module> M = buildSpecProxy("eqntott");
  for (const AllocatorOptions &Opts : allAllocatorOptions()) {
    ExperimentResult R = runExperiment(*M, RegisterConfig(8, 6, 2, 2), Opts,
                                       FrequencyMode::Profile);
    EXPECT_GE(R.Costs.total(), 0.0) << Opts.describe();
    EXPECT_GT(R.Cycles, 0.0) << Opts.describe();
  }
}

TEST(Integration, EveryProxyAllocatesUnderMinimalAndFullConfigs) {
  for (const std::string &Name : specProxyNames()) {
    SCOPED_TRACE(Name);
    std::unique_ptr<Module> M = buildSpecProxy(Name);
    for (const RegisterConfig &Config :
         {minimalMipsConfig(), fullMipsConfig()}) {
      ExperimentResult Base = runExperiment(*M, Config, baseChaitinOptions(),
                                            FrequencyMode::Profile);
      ExperimentResult Improved = runExperiment(
          *M, Config, improvedOptions(), FrequencyMode::Profile);
      EXPECT_GE(Base.Costs.total(), 0.0);
      EXPECT_GE(Improved.Costs.total(), 0.0);
    }
  }
}

TEST(Integration, ImprovedBeatsBaseOnEqntottWithManyRegisters) {
  // §7: with ample registers the improved allocator removes nearly all of
  // the base allocator's callee-save overhead (factors of tens).
  std::unique_ptr<Module> M = buildSpecProxy("eqntott");
  ExperimentResult Base = runExperiment(*M, fullMipsConfig(),
                                        baseChaitinOptions(),
                                        FrequencyMode::Profile);
  ExperimentResult Improved = runExperiment(*M, fullMipsConfig(),
                                            improvedOptions(),
                                            FrequencyMode::Profile);
  EXPECT_GT(Base.Costs.total(), 5.0 * Improved.Costs.total());
}

TEST(Integration, TomcatvIsInsensitiveToCallCostMachinery) {
  // §7 class 4: one big function without calls — all three enhancements
  // are no-ops.
  std::unique_ptr<Module> M = buildSpecProxy("tomcatv");
  for (const RegisterConfig &Config : standardConfigSweep()) {
    ExperimentResult Base = runExperiment(*M, Config, baseChaitinOptions(),
                                          FrequencyMode::Profile);
    ExperimentResult Improved = runExperiment(*M, Config, improvedOptions(),
                                              FrequencyMode::Profile);
    EXPECT_NEAR(Base.Costs.total(), Improved.Costs.total(),
                1e-6 * (1.0 + Base.Costs.total()))
        << Config.label();
  }
}

TEST(Integration, Figure2ShapeSpillCollapsesThenCallCostGrows) {
  // The paper's central observation: spill cost vanishes with enough
  // registers, call cost takes over, and *more* registers then increase
  // the base allocator's total cost.
  std::unique_ptr<Module> M = buildSpecProxy("eqntott");
  ExperimentResult Minimal = runExperiment(*M, minimalMipsConfig(),
                                           baseChaitinOptions(),
                                           FrequencyMode::Profile);
  ExperimentResult Mid = runExperiment(*M, RegisterConfig(11, 8, 5, 4),
                                       baseChaitinOptions(),
                                       FrequencyMode::Profile);
  ExperimentResult Full = runExperiment(*M, fullMipsConfig(),
                                        baseChaitinOptions(),
                                        FrequencyMode::Profile);
  EXPECT_GT(Minimal.Costs.Spill, 20.0 * Mid.Costs.total());
  EXPECT_DOUBLE_EQ(Mid.Costs.Spill, 0.0);
  EXPECT_DOUBLE_EQ(Full.Costs.Spill, 0.0);
  // Adding registers beyond the sweet spot makes the base allocator worse.
  EXPECT_GT(Full.Costs.total(), 1.2 * Mid.Costs.total());
  EXPECT_GT(Full.Costs.CalleeSave, Mid.Costs.CalleeSave);
}

TEST(Integration, Figure9ShapeOptimisticEarlyImprovedLate) {
  std::unique_ptr<Module> M = buildSpecProxy("fpppp");
  auto Ratio = [&](const RegisterConfig &Config,
                   const AllocatorOptions &Opts) {
    ExperimentResult Base = runExperiment(*M, Config, baseChaitinOptions(),
                                          FrequencyMode::Static);
    ExperimentResult Other =
        runExperiment(*M, Config, Opts, FrequencyMode::Static);
    return Base.Costs.total() / Other.Costs.total();
  };
  // Optimistic coloring shines while registers are scarce...
  EXPECT_GT(Ratio(RegisterConfig(8, 6, 0, 0), optimisticOptions()), 1.2);
  // ...and has nothing left once the blocked structures are colorable.
  EXPECT_NEAR(Ratio(fullMipsConfig(), optimisticOptions()), 1.0, 0.05);
  // Improved coloring is the mirror image.
  EXPECT_GT(Ratio(fullMipsConfig(), improvedOptions()), 1.5);
  // The hybrid tracks the better of the two at both ends.
  EXPECT_GT(Ratio(RegisterConfig(8, 6, 0, 0), improvedOptimisticOptions()),
            1.2);
  EXPECT_GT(Ratio(fullMipsConfig(), improvedOptimisticOptions()), 1.5);
}

TEST(Integration, OptimisticCanLoseOnceCallCostCounts) {
  // Tables 2/3's darkly shaded cells: optimistic coloring below 1.00.
  std::unique_ptr<Module> M = buildSpecProxy("li");
  ExperimentResult Base = runExperiment(*M, RegisterConfig(9, 7, 3, 3),
                                        baseChaitinOptions(),
                                        FrequencyMode::Profile);
  ExperimentResult Optimistic = runExperiment(*M, RegisterConfig(9, 7, 3, 3),
                                              optimisticOptions(),
                                              FrequencyMode::Profile);
  EXPECT_LT(Base.Costs.total(), Optimistic.Costs.total());
  // But its *spill* component never exceeds base Chaitin's (§8).
  EXPECT_LE(Optimistic.Costs.Spill, Base.Costs.Spill + 1e-9);
}

TEST(Integration, CBHStarvesCallCrossingRanges) {
  // Figure 11 / §10: with few callee-save registers CBH spills the hot
  // crossing ranges that improved coloring keeps in caller-save registers.
  std::unique_ptr<Module> M = buildSpecProxy("matrix300");
  RegisterConfig Config(10, 8, 3, 3);
  ExperimentResult Base = runExperiment(*M, Config, baseChaitinOptions(),
                                        FrequencyMode::Profile);
  ExperimentResult Cbh =
      runExperiment(*M, Config, cbhOptions(), FrequencyMode::Profile);
  ExperimentResult Improved = runExperiment(*M, Config, improvedOptions(),
                                            FrequencyMode::Profile);
  EXPECT_GT(Cbh.Costs.total(), 2.0 * Base.Costs.total());
  EXPECT_LE(Improved.Costs.total(), Base.Costs.total() * 1.0 + 1e-9);
  // CBH recovers ground as callee-save registers are added.
  ExperimentResult CbhFull =
      runExperiment(*M, fullMipsConfig(), cbhOptions(),
                    FrequencyMode::Profile);
  ExperimentResult BaseFull = runExperiment(
      *M, fullMipsConfig(), baseChaitinOptions(), FrequencyMode::Profile);
  EXPECT_LT(CbhFull.Costs.total() / BaseFull.Costs.total(),
            Cbh.Costs.total() / Base.Costs.total());
}

TEST(Integration, PreferenceDecisionHelpsNasa7WithoutBS) {
  // §6: PR arbitrates callee-save contention by cost. Its effect is
  // visible over SC alone (benefit-driven simplification independently
  // achieves the same ordering when enabled — see EXPERIMENTS.md).
  std::unique_ptr<Module> M = buildSpecProxy("nasa7");
  ExperimentResult Sc = runExperiment(*M, RegisterConfig(10, 8, 4, 4),
                                      improvedOptions(true, false, false),
                                      FrequencyMode::Profile);
  ExperimentResult ScPr = runExperiment(*M, RegisterConfig(10, 8, 4, 4),
                                        improvedOptions(true, false, true),
                                        FrequencyMode::Profile);
  EXPECT_GT(Sc.Costs.total(), 1.5 * ScPr.Costs.total());
}

TEST(Integration, Table4SpeedupOrdering) {
  // spice has the least to gain (the paper's 1.0% row).
  auto Speedup = [](const std::string &Name) {
    std::unique_ptr<Module> M = buildSpecProxy(Name);
    ExperimentResult Optimistic = runExperiment(
        *M, fullMipsConfig(), optimisticOptions(), FrequencyMode::Profile);
    ExperimentResult Improved = runExperiment(
        *M, fullMipsConfig(), improvedOptions(), FrequencyMode::Profile);
    return Optimistic.Cycles / Improved.Cycles - 1.0;
  };
  double Spice = Speedup("spice");
  EXPECT_GT(Spice, 0.0);
  EXPECT_LT(Spice, Speedup("sc"));
  EXPECT_LT(Spice, Speedup("eqntott"));
  EXPECT_LT(Spice, Speedup("compress"));
}

TEST(Integration, StaticAndDynamicModesBothWork) {
  std::unique_ptr<Module> M = buildSpecProxy("ear");
  for (FrequencyMode Mode : {FrequencyMode::Static, FrequencyMode::Profile}) {
    ExperimentResult R = runExperiment(*M, RegisterConfig(9, 7, 3, 3),
                                       improvedOptions(), Mode);
    EXPECT_GE(R.Costs.total(), 0.0);
  }
}

} // namespace
