//===- tests/AnalysisTest.cpp - CFG/dominator/loop/liveness/frequency -----===//

#include "analysis/AnalysisCache.h"
#include "analysis/CfgTraversal.h"
#include "analysis/Dominators.h"
#include "analysis/Frequency.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace ccra;

namespace {

/// entry -> (then | else) -> join -> ret, with probability \p ThenProb.
struct Diamond {
  Module M{"m"};
  Function *F;
  BasicBlock *Entry, *Then, *Else, *Join;
  VirtReg A, B2, ThenVal;

  explicit Diamond(double ThenProb = 0.5) {
    F = M.createFunction("f");
    IRBuilder B(*F);
    Entry = B.startBlock("entry");
    A = B.buildLoadImm(1);
    B2 = B.buildLoadImm(2);
    VirtReg C = B.buildCmp(A, B2);
    Then = F->createBlock("then");
    Else = F->createBlock("else");
    Join = F->createBlock("join");
    B.buildCondBr(C, Then, Else, ThenProb);
    B.setInsertBlock(Then);
    ThenVal = B.buildBinary(Opcode::Add, A, B2);
    B.buildBr(Join);
    B.setInsertBlock(Else);
    B.buildBr(Join);
    B.setInsertBlock(Join);
    VirtReg R = B.buildBinary(Opcode::Add, A, A);
    B.buildRet(R);
    EXPECT_TRUE(verifyFunction(*F, nullptr));
  }
};

/// entry -> header (self loop with back probability P) -> exit.
struct SingleLoop {
  Module M{"m"};
  Function *F;
  BasicBlock *Entry, *Header, *Exit;
  VirtReg LiveThrough;

  explicit SingleLoop(double BackProb = 0.9) {
    F = M.createFunction("f");
    IRBuilder B(*F);
    Entry = B.startBlock("entry");
    LiveThrough = B.buildLoadImm(5);
    Header = F->createBlock("header");
    B.buildBr(Header);
    B.setInsertBlock(Header);
    VirtReg C = B.buildCmp(LiveThrough, LiveThrough);
    Exit = F->createBlock("exit");
    B.buildCondBr(C, Header, Exit, BackProb);
    B.setInsertBlock(Exit);
    B.buildRet(LiveThrough);
    EXPECT_TRUE(verifyFunction(*F, nullptr));
  }
};

// --- RPO ---------------------------------------------------------------------

TEST(CfgTraversal, DiamondRpo) {
  Diamond D;
  auto Rpo = computeReversePostOrder(*D.F);
  ASSERT_EQ(Rpo.size(), 4u);
  EXPECT_EQ(Rpo.front(), D.Entry);
  EXPECT_EQ(Rpo.back(), D.Join);
  EXPECT_TRUE(allBlocksReachable(*D.F));
}

TEST(CfgTraversal, UnreachableBlockDetected) {
  Diamond D;
  BasicBlock *Orphan = D.F->createBlock("orphan");
  Orphan->append(Instruction(Opcode::Ret));
  EXPECT_FALSE(allBlocksReachable(*D.F));
}

// --- Dominators ----------------------------------------------------------------

TEST(Dominators, Diamond) {
  Diamond D;
  DominatorTree DT = DominatorTree::compute(*D.F);
  EXPECT_EQ(DT.immediateDominator(D.Entry), nullptr);
  EXPECT_EQ(DT.immediateDominator(D.Then), D.Entry);
  EXPECT_EQ(DT.immediateDominator(D.Else), D.Entry);
  EXPECT_EQ(DT.immediateDominator(D.Join), D.Entry);
  EXPECT_TRUE(DT.dominates(D.Entry, D.Join));
  EXPECT_TRUE(DT.dominates(D.Join, D.Join));
  EXPECT_FALSE(DT.dominates(D.Then, D.Join));
}

TEST(Dominators, Loop) {
  SingleLoop L;
  DominatorTree DT = DominatorTree::compute(*L.F);
  EXPECT_TRUE(DT.dominates(L.Header, L.Exit));
  EXPECT_TRUE(DT.dominates(L.Entry, L.Header));
  EXPECT_FALSE(DT.dominates(L.Exit, L.Header));
}

// --- Loops ------------------------------------------------------------------------

TEST(LoopInfoTest, DetectsSelfLoop) {
  SingleLoop L;
  DominatorTree DT = DominatorTree::compute(*L.F);
  LoopInfo LI = LoopInfo::compute(*L.F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0].Header, L.Header);
  EXPECT_EQ(LI.loopDepth(L.Header), 1u);
  EXPECT_EQ(LI.loopDepth(L.Entry), 0u);
  EXPECT_EQ(LI.loopDepth(L.Exit), 0u);
  EXPECT_TRUE(LI.isBackEdge(L.Header, L.Header));
  EXPECT_FALSE(LI.isBackEdge(L.Entry, L.Header));
  EXPECT_TRUE(LI.isLoopHeader(L.Header));
}

TEST(LoopInfoTest, NestedLoopDepths) {
  // entry -> H1 -> H2(self) -> T1 -> (H1 | exit)
  Module M("m");
  Function &F = *M.createFunction("f");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg V = B.buildLoadImm(1);
  BasicBlock *H1 = F.createBlock("h1");
  B.buildBr(H1);
  B.setInsertBlock(H1);
  BasicBlock *H2 = F.createBlock("h2");
  B.buildBr(H2);
  B.setInsertBlock(H2);
  VirtReg C2 = B.buildCmp(V, V);
  BasicBlock *T1 = F.createBlock("t1");
  B.buildCondBr(C2, H2, T1, 0.9);
  B.setInsertBlock(T1);
  VirtReg C1 = B.buildCmp(V, V);
  BasicBlock *Exit = F.createBlock("exit");
  B.buildCondBr(C1, H1, Exit, 0.9);
  B.setInsertBlock(Exit);
  B.buildRet(V);
  ASSERT_TRUE(verifyFunction(F, nullptr));

  DominatorTree DT = DominatorTree::compute(F);
  LoopInfo LI = LoopInfo::compute(F, DT);
  EXPECT_EQ(LI.loops().size(), 2u);
  EXPECT_EQ(LI.loopDepth(H2), 2u);
  EXPECT_EQ(LI.loopDepth(H1), 1u);
  EXPECT_EQ(LI.loopDepth(T1), 1u);
  EXPECT_EQ(LI.loopDepth(Exit), 0u);
}

// --- Liveness -------------------------------------------------------------------

TEST(LivenessTest, StraightLine) {
  Module M("m");
  Function &F = *M.createFunction("f");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg C = B.buildBinary(Opcode::Add, A, A);
  B.buildRet(C);
  Liveness LV = Liveness::compute(F);
  // Nothing is live across block boundaries in a single-block function.
  EXPECT_TRUE(LV.liveOut(*F.getEntryBlock()).none());
  EXPECT_TRUE(LV.liveIn(*F.getEntryBlock()).none());
  EXPECT_FALSE(LV.liveIntoEntry(F, A));
}

TEST(LivenessTest, AcrossDiamond) {
  Diamond D;
  Liveness LV = Liveness::compute(*D.F);
  // A is used in the join block, so it is live out of entry and live
  // through both arms.
  EXPECT_TRUE(LV.liveOut(*D.Entry).test(D.A.Id));
  EXPECT_TRUE(LV.liveIn(*D.Then).test(D.A.Id));
  EXPECT_TRUE(LV.liveIn(*D.Else).test(D.A.Id));
  EXPECT_TRUE(LV.liveIn(*D.Join).test(D.A.Id));
  // B2 is last used in then; it is not live into join.
  EXPECT_FALSE(LV.liveIn(*D.Join).test(D.B2.Id));
  // ThenVal is dead (never used).
  EXPECT_FALSE(LV.liveOut(*D.Then).test(D.ThenVal.Id));
}

TEST(LivenessTest, LiveThroughLoop) {
  SingleLoop L;
  Liveness LV = Liveness::compute(*L.F);
  EXPECT_TRUE(LV.liveIn(*L.Header).test(L.LiveThrough.Id));
  EXPECT_TRUE(LV.liveOut(*L.Header).test(L.LiveThrough.Id));
  EXPECT_TRUE(LV.liveIn(*L.Exit).test(L.LiveThrough.Id));
}

// --- Frequencies -------------------------------------------------------------------

TEST(Frequency, DiamondSplit) {
  Diamond D(0.2);
  auto Freq = computeRelativeBlockFrequencies(*D.F, FrequencyMode::Profile);
  EXPECT_NEAR(Freq[D.Entry->getId()], 1.0, 1e-9);
  EXPECT_NEAR(Freq[D.Then->getId()], 0.2, 1e-9);
  EXPECT_NEAR(Freq[D.Else->getId()], 0.8, 1e-9);
  EXPECT_NEAR(Freq[D.Join->getId()], 1.0, 1e-9);
}

TEST(Frequency, StaticIgnoresRecordedProbabilities) {
  Diamond D(0.01); // true probabilities are extreme...
  auto Freq = computeRelativeBlockFrequencies(*D.F, FrequencyMode::Static);
  EXPECT_NEAR(Freq[D.Then->getId()], 0.5, 1e-9); // ...static says 50/50
  EXPECT_NEAR(Freq[D.Else->getId()], 0.5, 1e-9);
}

TEST(Frequency, LoopTripCount) {
  SingleLoop L(0.95); // trip count 20
  auto Freq = computeRelativeBlockFrequencies(*L.F, FrequencyMode::Profile);
  EXPECT_NEAR(Freq[L.Header->getId()], 20.0, 1e-6);
  EXPECT_NEAR(Freq[L.Exit->getId()], 1.0, 1e-9);
}

TEST(Frequency, StaticLoopHeuristicIsTenTrips) {
  SingleLoop L(0.999); // truth: 1000 trips
  auto Freq = computeRelativeBlockFrequencies(*L.F, FrequencyMode::Static);
  EXPECT_NEAR(Freq[L.Header->getId()], 10.0, 1e-6);
}

TEST(Frequency, DeeplyNestedLoopsSolveExactly) {
  // Three nested trip-100 loops: the inner header runs 1e6 times. (This is
  // the case fixpoint iteration cannot solve in reasonable time; the exact
  // linear solve must.)
  Module M("m");
  Function &F = *M.createFunction("f");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg V = B.buildLoadImm(1);
  std::vector<BasicBlock *> Headers, Exits;
  for (int I = 0; I < 3; ++I) {
    BasicBlock *H = F.createBlock();
    B.buildBr(H);
    B.setInsertBlock(H);
    Headers.push_back(H);
    Exits.push_back(F.createBlock());
  }
  for (int I = 2; I >= 0; --I) {
    VirtReg C = B.buildCmp(V, V);
    B.buildCondBr(C, Headers[static_cast<size_t>(I)],
                  Exits[static_cast<size_t>(I)], 0.99);
    B.setInsertBlock(Exits[static_cast<size_t>(I)]);
  }
  B.buildRet(V);
  ASSERT_TRUE(verifyFunction(F, nullptr));
  auto Freq = computeRelativeBlockFrequencies(F, FrequencyMode::Profile);
  EXPECT_NEAR(Freq[Headers[2]->getId()], 1e6, 1.0);
}

TEST(Frequency, InterproceduralInvocationCounts) {
  Module M("m");
  Function *Leaf = M.createFunction("leaf");
  {
    IRBuilder B(*Leaf);
    B.startBlock("entry");
    B.buildRet();
  }
  Function *MainF = M.createFunction("main");
  {
    IRBuilder B(*MainF);
    B.startBlock("entry");
    VirtReg V = B.buildLoadImm(1);
    BasicBlock *H = MainF->createBlock("loop");
    B.buildBr(H);
    B.setInsertBlock(H);
    B.buildCall(Leaf, {});
    B.buildCall(Leaf, {}); // two call sites per iteration
    VirtReg C = B.buildCmp(V, V);
    BasicBlock *Exit = MainF->createBlock("exit");
    B.buildCondBr(C, H, Exit, 0.9); // ten iterations
    B.setInsertBlock(Exit);
    B.buildRet(V);
  }
  M.setEntryFunction(MainF);
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  EXPECT_NEAR(Freq.entryFrequency(*MainF), 1.0, 1e-9);
  EXPECT_NEAR(Freq.entryFrequency(*Leaf), 20.0, 1e-6);
}

TEST(Frequency, EntryInvocationsScale) {
  SingleLoop L(0.9);
  L.M.setEntryFunction(L.F);
  FrequencyInfo Freq =
      FrequencyInfo::compute(L.M, FrequencyMode::Profile, 50.0);
  EXPECT_NEAR(Freq.entryFrequency(*L.F), 50.0, 1e-9);
  EXPECT_NEAR(Freq.blockFrequency(*L.Header), 500.0, 1e-4);
}

TEST(Frequency, ModeNames) {
  EXPECT_STREQ(frequencyModeName(FrequencyMode::Static), "static");
  EXPECT_STREQ(frequencyModeName(FrequencyMode::Profile), "dynamic");
}

// The grid path computes frequencies once on the source module and rekeys
// them onto each private clone. The remap must be a pure re-keying: every
// block and entry frequency bit-identical (same doubles, not just close)
// to a fresh computation on the clone.
TEST(Frequency, RemappedToCloneIsBitIdentical) {
  RandomProgramParams Params;
  Params.Seed = 11;
  Params.NumFunctions = 4;
  auto M = generateRandomProgram(Params);
  auto Clone = cloneModule(*M);

  for (FrequencyMode Mode : {FrequencyMode::Static, FrequencyMode::Profile}) {
    FrequencyInfo Source = FrequencyInfo::compute(*M, Mode);
    FrequencyInfo Remapped = Source.remappedTo(*M, *Clone);
    FrequencyInfo Fresh = FrequencyInfo::compute(*Clone, Mode);
    for (const auto &F : Clone->functions()) {
      if (F->isDeclaration())
        continue;
      EXPECT_EQ(Remapped.entryFrequency(*F), Fresh.entryFrequency(*F));
      for (const auto &BB : F->blocks())
        EXPECT_EQ(Remapped.blockFrequency(*BB), Fresh.blockFrequency(*BB));
    }
  }
}

// One compute per key, hits afterwards, and the cached baseline liveness
// is exact for the same-index function of a pristine clone (cloneModule
// preserves block ids and vreg numbering).
TEST(AnalysisCache, SharesFrequenciesAndBaselineLiveness) {
  RandomProgramParams Params;
  Params.Seed = 23;
  Params.NumFunctions = 3;
  auto M = generateRandomProgram(Params);
  auto Clone = cloneModule(*M);

  ModuleAnalysisCache Cache;
  bool Hit = true;
  const FrequencyInfo &F1 =
      Cache.frequencies(*M, FrequencyMode::Profile, &Hit);
  EXPECT_FALSE(Hit);
  const FrequencyInfo &F2 =
      Cache.frequencies(*M, FrequencyMode::Profile, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(&F1, &F2); // one shared object, not a copy per caller

  // A different mode is a different key.
  Cache.frequencies(*M, FrequencyMode::Static, &Hit);
  EXPECT_FALSE(Hit);

  for (unsigned I = 0; I < M->functions().size(); ++I) {
    const Function &Fn = *M->functions()[I];
    if (Fn.isDeclaration())
      continue;
    const Liveness &Baseline = Cache.baselineLiveness(*M, I, &Hit);
    EXPECT_FALSE(Hit);
    EXPECT_TRUE(Baseline == Liveness::compute(Fn));
    // Exact for the pristine clone's same-index function too.
    EXPECT_TRUE(Baseline == Liveness::compute(*Clone->functions()[I]));
    Cache.baselineLiveness(*M, I, &Hit);
    EXPECT_TRUE(Hit);
  }

  ModuleAnalysisCache::Stats Stats = Cache.stats();
  EXPECT_EQ(Stats.FrequencyHits, 1u);
  EXPECT_EQ(Stats.FrequencyMisses, 2u);
  EXPECT_GT(Stats.LivenessHits, 0u);
  EXPECT_EQ(Stats.LivenessHits, Stats.LivenessMisses);
  EXPECT_EQ(Stats.hits(), Stats.FrequencyHits + Stats.LivenessHits);
  EXPECT_EQ(Stats.misses(), Stats.FrequencyMisses + Stats.LivenessMisses);
}

} // namespace
