//===- tests/AllocatorTest.cpp - Allocator behavior unit tests ------------===//
//
// Scenario-level tests of each allocator's decision rules, using
// hand-crafted live ranges with exact benefit values (TestUtil.h).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/AllocatorFactory.h"
#include "regalloc/AllocationVerifier.h"

#include <gtest/gtest.h>

using namespace ccra;

namespace {

RoundResult runOn(AllocationContext &Ctx, const AllocatorOptions &Opts) {
  RoundResult RR;
  createAllocator(Opts)->runRound(Ctx, RR);
  EXPECT_EQ(RR.Assignment.size(), Ctx.LRS.numRanges());
  return RR;
}

bool inCalleeSave(const AllocationContext &Ctx, const RoundResult &RR,
                  unsigned RangeId) {
  const Location &Loc = RR.Assignment[RangeId];
  return Loc.isRegister() && Ctx.MD.isCalleeSave(Loc.Reg);
}
bool inCallerSave(const AllocationContext &Ctx, const RoundResult &RR,
                  unsigned RangeId) {
  const Location &Loc = RR.Assignment[RangeId];
  return Loc.isRegister() && Ctx.MD.isCallerSave(Loc.Reg);
}
bool spilled(const RoundResult &RR, unsigned RangeId) {
  return RR.Assignment[RangeId].isMemory();
}

// --- Base model (§3.1) -------------------------------------------------------

TEST(BaseChaitin, CallCrossingPrefersCalleeSave) {
  ScenarioBuilder S(RegisterConfig(2, 0, 2, 0), /*EntryFreq=*/100);
  unsigned Crossing = S.addRange(RegBank::Int, 1000, 50, /*ContainsCall=*/true);
  unsigned Local = S.addRange(RegBank::Int, 1000, 0, /*ContainsCall=*/false);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, baseChaitinOptions());
  EXPECT_TRUE(inCalleeSave(Ctx, RR, Crossing));
  EXPECT_TRUE(inCallerSave(Ctx, RR, Local));
}

TEST(BaseChaitin, FallsBackToOtherKindWhenPreferredExhausted) {
  // Three mutually conflicting crossing ranges, two callee-save registers:
  // the third range takes a caller-save register rather than spilling.
  ScenarioBuilder S(RegisterConfig(2, 0, 2, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 1000, 50);
  unsigned B = S.addRange(RegBank::Int, 1000, 50);
  unsigned C = S.addRange(RegBank::Int, 1000, 50);
  S.addEdge(A, B);
  S.addEdge(B, C);
  S.addEdge(A, C);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, baseChaitinOptions());
  unsigned Callee = 0, Caller = 0;
  for (unsigned Id : {A, B, C}) {
    Callee += inCalleeSave(Ctx, RR, Id);
    Caller += inCallerSave(Ctx, RR, Id);
  }
  EXPECT_EQ(Callee, 2u);
  EXPECT_EQ(Caller, 1u);
}

TEST(BaseChaitin, SpillsCheapestPerDegreeWhenBlocked) {
  // A 4-clique with 3 registers: simplification blocks; the victim is the
  // smallest spillCost/degree.
  ScenarioBuilder S(RegisterConfig(3, 0, 0, 0), 100);
  unsigned Cheap = S.addRange(RegBank::Int, 10, 0, false);
  unsigned E1 = S.addRange(RegBank::Int, 1000, 0, false);
  unsigned E2 = S.addRange(RegBank::Int, 1000, 0, false);
  unsigned E3 = S.addRange(RegBank::Int, 1000, 0, false);
  for (unsigned A : {Cheap, E1, E2, E3})
    for (unsigned B : {Cheap, E1, E2, E3})
      if (A < B)
        S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, baseChaitinOptions());
  EXPECT_TRUE(spilled(RR, Cheap));
  EXPECT_FALSE(spilled(RR, E1));
  EXPECT_FALSE(spilled(RR, E2));
  EXPECT_FALSE(spilled(RR, E3));
}

// --- Storage-class analysis (§4) ------------------------------------------------

TEST(StorageClass, SpillsInsteadOfExpensiveCallerSave) {
  // benefitCaller < 0 and no callee-save register exists: memory beats the
  // caller-save register even though one is free.
  ScenarioBuilder S(RegisterConfig(4, 0, 0, 0), 100);
  unsigned Bait = S.addRange(RegBank::Int, /*Refs=*/500, /*CallerCost=*/2000);
  AllocationContext &Ctx = S.context();

  RoundResult Base = runOn(Ctx, baseChaitinOptions());
  EXPECT_TRUE(inCallerSave(Ctx, Base, Bait)); // the base model pays 2000

  RoundResult Improved = runOn(Ctx, improvedOptions());
  EXPECT_TRUE(spilled(Improved, Bait)); // SC pays 500 instead
  EXPECT_EQ(Improved.VoluntarySpills, 1u);
}

TEST(StorageClass, PrefersCallerSaveWhenCallsAreCold) {
  // Crossing a cold call: benefitCaller (refs - 2) beats benefitCallee
  // (refs - 200); the base model would burn a callee-save register.
  ScenarioBuilder S(RegisterConfig(2, 0, 2, 0), 100);
  unsigned ColdCrossing = S.addRange(RegBank::Int, 1000, /*CallerCost=*/2);
  AllocationContext &Ctx = S.context();

  RoundResult Base = runOn(Ctx, baseChaitinOptions());
  EXPECT_TRUE(inCalleeSave(Ctx, Base, ColdCrossing));

  RoundResult Improved = runOn(Ctx, improvedOptions());
  EXPECT_TRUE(inCallerSave(Ctx, Improved, ColdCrossing));
}

TEST(StorageClass, KeepsWorthwhileCalleeSaveResident) {
  ScenarioBuilder S(RegisterConfig(1, 0, 1, 0), 100); // calleeCost = 200
  unsigned Hot = S.addRange(RegBank::Int, 5000, /*CallerCost=*/4000);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, improvedOptions());
  EXPECT_TRUE(inCalleeSave(Ctx, RR, Hot));
  EXPECT_EQ(RR.VoluntarySpills, 0u);
}

// --- Priority-based coloring (§9) ---------------------------------------------

TEST(Priority, NegativeBenefitGoesToMemory) {
  ScenarioBuilder S(RegisterConfig(4, 0, 4, 0), 100);
  unsigned Useless = S.addRange(RegBank::Int, 100, /*CallerCost=*/500);
  // benefitCaller = -400, benefitCallee = -100: memory is best.
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, priorityOptions());
  EXPECT_TRUE(spilled(RR, Useless));
}

TEST(Priority, HighPriorityWinsTheOnlyRegister) {
  ScenarioBuilder S(RegisterConfig(1, 0, 0, 0), 100);
  unsigned Low = S.addRange(RegBank::Int, 500, 0, false, /*NumBlocks=*/1);
  unsigned High = S.addRange(RegBank::Int, 5000, 0, false, /*NumBlocks=*/1);
  S.addEdge(Low, High);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, priorityOptions());
  EXPECT_TRUE(inCallerSave(Ctx, RR, High));
  EXPECT_TRUE(spilled(RR, Low));
}

TEST(Priority, SizeNormalizationDemotesBigRanges) {
  // Chow's priority divides by size: a big live range with slightly larger
  // total benefit loses to a compact one.
  ScenarioBuilder S(RegisterConfig(1, 0, 0, 0), 100);
  unsigned Big = S.addRange(RegBank::Int, 1200, 0, false, /*NumBlocks=*/10);
  unsigned Small = S.addRange(RegBank::Int, 1000, 0, false, /*NumBlocks=*/1);
  S.addEdge(Big, Small);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, priorityOptions());
  EXPECT_TRUE(inCallerSave(Ctx, RR, Small));
  EXPECT_TRUE(spilled(RR, Big));
}

TEST(Priority, AllOrderingsProduceValidAssignments) {
  for (PriorityOrdering Ordering :
       {PriorityOrdering::RemoveUnconstrained,
        PriorityOrdering::SortUnconstrained, PriorityOrdering::FullSort}) {
    ScenarioBuilder S(RegisterConfig(2, 0, 1, 0), 100);
    std::vector<unsigned> Ids;
    for (int I = 0; I < 5; ++I)
      Ids.push_back(S.addRange(RegBank::Int, 1000 + 100 * I, 300));
    for (unsigned A : Ids)
      for (unsigned B : Ids)
        if (A < B)
          S.addEdge(A, B);
    AllocationContext &Ctx = S.context();
    RoundResult RR = runOn(Ctx, priorityOptions(Ordering));
    AllocationVerifyReport Report = verifyAllocation(Ctx, RR, false);
    // Spills are allowed (5 ranges, 3 registers); register clashes are not.
    for (const std::string &E : Report.Errors)
      EXPECT_EQ(E.find("share register"), std::string::npos) << E;
  }
}

// --- CBH (§10) -------------------------------------------------------------------

TEST(CBH, CrossingRangeCannotUseCallerSave) {
  // One crossing range, zero callee-save registers: CBH must spill it even
  // though caller-save registers are free.
  ScenarioBuilder S(RegisterConfig(4, 0, 0, 0), 100);
  unsigned Crossing = S.addRange(RegBank::Int, 5000, 10);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, cbhOptions());
  EXPECT_TRUE(spilled(RR, Crossing));

  // The improved allocator happily uses a caller-save register (cold call).
  RoundResult Improved = runOn(Ctx, improvedOptions());
  EXPECT_TRUE(inCallerSave(Ctx, Improved, Crossing));
}

TEST(CBH, UnlocksCalleeSaveWhenWorthIt) {
  ScenarioBuilder S(RegisterConfig(2, 0, 1, 0), 100); // save/restore = 200
  unsigned Crossing = S.addRange(RegBank::Int, 5000, 10);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, cbhOptions());
  EXPECT_TRUE(inCalleeSave(Ctx, RR, Crossing));
  EXPECT_TRUE(RR.PayUnusedCallee);
  ASSERT_EQ(RR.ForcedCalleePaid.size(), 1u);
  EXPECT_TRUE(Ctx.MD.isCalleeSave(RR.ForcedCalleePaid[0]));
}

TEST(CBH, KeepsCalleeSaveLockedWhenSpillIsCheaper) {
  // The crossing range's spill code (10 ops) is cheaper than the
  // callee-save register's save/restore (2 x 100): CBH spills the range
  // and never unlocks the register.
  ScenarioBuilder S(RegisterConfig(2, 0, 1, 0), 100);
  unsigned Crossing = S.addRange(RegBank::Int, 10, 10);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, cbhOptions());
  EXPECT_TRUE(spilled(RR, Crossing));
  EXPECT_TRUE(RR.ForcedCalleePaid.empty());
}

TEST(CBH, NonCrossingRangesUseCallerSaveFreely) {
  ScenarioBuilder S(RegisterConfig(2, 0, 1, 0), 100);
  unsigned Local = S.addRange(RegBank::Int, 5000, 0, /*ContainsCall=*/false);
  AllocationContext &Ctx = S.context();
  RoundResult RR = runOn(Ctx, cbhOptions());
  EXPECT_TRUE(inCallerSave(Ctx, RR, Local));
}

// --- Optimistic (§8) -----------------------------------------------------------

TEST(Optimistic, RescuesBlockedButColorableCycle) {
  // C4 cycle, one register per kind: every degree is 2 >= N=2, so plain
  // Chaitin spills a node; the cycle is 2-colorable, so optimistic
  // coloring places everything.
  ScenarioBuilder S(RegisterConfig(1, 0, 1, 0), 100);
  std::vector<unsigned> Ids;
  for (int I = 0; I < 4; ++I)
    Ids.push_back(S.addRange(RegBank::Int, 1000, 50));
  for (int I = 0; I < 4; ++I)
    S.addEdge(Ids[static_cast<size_t>(I)], Ids[static_cast<size_t>((I + 1) % 4)]);
  AllocationContext &Ctx = S.context();

  RoundResult Pessimistic = runOn(Ctx, baseChaitinOptions());
  unsigned PessimisticSpills = 0;
  for (unsigned Id : Ids)
    PessimisticSpills += spilled(Pessimistic, Id);
  EXPECT_GE(PessimisticSpills, 1u);

  RoundResult Optimistic = runOn(Ctx, optimisticOptions());
  for (unsigned Id : Ids)
    EXPECT_FALSE(spilled(Optimistic, Id));
}

// --- Verifier --------------------------------------------------------------------

TEST(AllocationVerifierTest, CatchesRegisterClash) {
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 100, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  RoundResult RR;
  RR.Assignment.assign(2, Location::inRegister(PhysReg(RegBank::Int, 0)));
  AllocationVerifyReport Report = verifyAllocation(Ctx, RR, false);
  EXPECT_FALSE(Report.ok());
}

TEST(AllocationVerifierTest, CatchesWrongBank) {
  ScenarioBuilder S(RegisterConfig(2, 2, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Float, 100, 0, false);
  (void)A;
  AllocationContext &Ctx = S.context();
  RoundResult RR;
  RR.Assignment.assign(1, Location::inRegister(PhysReg(RegBank::Int, 0)));
  AllocationVerifyReport Report = verifyAllocation(Ctx, RR, false);
  EXPECT_FALSE(Report.ok());
}

TEST(AllocationVerifierTest, AcceptsCleanAssignment) {
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 100, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  RoundResult RR;
  RR.Assignment = {Location::inRegister(PhysReg(RegBank::Int, 0)),
                   Location::inRegister(PhysReg(RegBank::Int, 1))};
  EXPECT_TRUE(verifyAllocation(Ctx, RR, false).ok());
}

} // namespace
