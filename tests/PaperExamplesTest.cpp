//===- tests/PaperExamplesTest.cpp - The paper's worked examples ----------===//
//
// The illustrating examples of the paper, run against the real allocators:
//
//  - Figure 3: the order of removing unconstrained live ranges decides who
//    gets the scarce callee-save registers (3200 vs 4100 saved operations).
//  - Figure 4: the two priority keys of §5; the delta key (strategy 2)
//    beats the max key (strategy 1), 5300 vs 4500.
//  - §4's shared callee-save cost example: two live ranges with spill cost
//    4000 sharing a register whose save/restore costs 5000 — "first user
//    pays" spills both (8000 ops), the shared model keeps both (5000 ops).
//  - Figure 5 (§6): the preference decision displaces a wrongful
//    callee-save taker by cost.
//  - Figure 8 (§8): optimistic coloring rescues a cycle node into a
//    caller-save register whose save/restore cost exceeds the spill cost
//    it avoided.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/AllocatorFactory.h"

#include <gtest/gtest.h>

using namespace ccra;

namespace {

RoundResult runOn(AllocationContext &Ctx, const AllocatorOptions &Opts) {
  RoundResult RR;
  createAllocator(Opts)->runRound(Ctx, RR);
  return RR;
}

/// Total overhead of an assignment: spill cost for memory residents,
/// caller-save cost for caller-save residents, 2 x entryFreq per distinct
/// callee-save register.
double overheadOf(const AllocationContext &Ctx, const RoundResult &RR) {
  double Overhead = 0.0;
  std::vector<PhysReg> CalleePaid;
  for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I) {
    const LiveRange &LR = Ctx.LRS.range(I);
    const Location &Loc = RR.Assignment[I];
    if (Loc.isMemory()) {
      Overhead += LR.WeightedRefs;
      continue;
    }
    if (Ctx.MD.isCallerSave(Loc.Reg)) {
      Overhead += LR.CallerSaveCost;
      continue;
    }
    bool Seen = false;
    for (PhysReg Reg : CalleePaid)
      Seen |= (Reg == Loc.Reg);
    if (!Seen) {
      CalleePaid.push_back(Loc.Reg);
      Overhead += 2.0 * Ctx.EntryFreq;
    }
  }
  return Overhead;
}

/// Figure 3's interference graph: a triangle of three live ranges that all
/// prefer callee-save registers, with N = 3 (two callee-save + one
/// caller-save).
struct Figure3 {
  // entryFreq 500 -> calleeSaveCost 1000.
  // lr_x, lr_y: benefitCaller 1000, benefitCallee 2000.
  // lr_z:       benefitCaller 100,  benefitCallee 200.
  ScenarioBuilder S{RegisterConfig(1, 0, 2, 0), 500};
  unsigned X, Y, Z;

  Figure3() {
    X = S.addRange(RegBank::Int, 3000, 2000);
    Y = S.addRange(RegBank::Int, 3000, 2000);
    Z = S.addRange(RegBank::Int, 1200, 1100);
    S.addEdge(X, Y);
    S.addEdge(Y, Z);
    S.addEdge(X, Z);
  }
};

TEST(PaperFigure3, BenefitValuesMatchThePaper) {
  Figure3 Fig;
  AllocationContext &Ctx = Fig.S.context();
  EXPECT_DOUBLE_EQ(Ctx.LRS.range(Fig.X).benefitCaller(), 1000);
  EXPECT_DOUBLE_EQ(Ctx.LRS.range(Fig.X).benefitCallee(), 2000);
  EXPECT_DOUBLE_EQ(Ctx.LRS.range(Fig.Z).benefitCaller(), 100);
  EXPECT_DOUBLE_EQ(Ctx.LRS.range(Fig.Z).benefitCallee(), 200);
}

TEST(PaperFigure3, ArbitraryOrderSaves3200) {
  Figure3 Fig;
  AllocationContext &Ctx = Fig.S.context();
  // Base Chaitin removes unconstrained ranges in id order (x, y, z), so z
  // sits on top of the stack, is colored first, and takes a callee-save
  // register that lr_x or lr_y needed more.
  RoundResult RR = runOn(Ctx, baseChaitinOptions());
  EXPECT_DOUBLE_EQ(assignmentSavings(Ctx, RR), 3200.0);
}

TEST(PaperFigure3, BenefitDrivenSimplificationSaves4100) {
  Figure3 Fig;
  AllocationContext &Ctx = Fig.S.context();
  // Benefit-driven simplification removes the smallest-penalty range (z)
  // first; x and y end up on top and take the callee-save registers.
  RoundResult RR = runOn(Ctx, improvedOptions(true, true, false));
  EXPECT_DOUBLE_EQ(assignmentSavings(Ctx, RR), 4100.0);
}

/// Figure 4: same triangle shape, benefits chosen so the two key
/// strategies of §5 disagree.
struct Figure4 {
  // entryFreq 500 -> calleeSaveCost 1000.
  // lr_x, lr_y: benefitCaller 1800, benefitCallee 2000 (delta 200).
  // lr_z:       benefitCaller 500,  benefitCallee 1500 (delta 1000).
  ScenarioBuilder S{RegisterConfig(1, 0, 2, 0), 500};
  unsigned X, Y, Z;

  Figure4() {
    X = S.addRange(RegBank::Int, 3000, 1200);
    Y = S.addRange(RegBank::Int, 3000, 1200);
    Z = S.addRange(RegBank::Int, 2500, 2000);
    S.addEdge(X, Y);
    S.addEdge(Y, Z);
    S.addEdge(X, Z);
  }
};

TEST(PaperFigure4, MaxBenefitKeySaves4500) {
  Figure4 Fig;
  AllocationContext &Ctx = Fig.S.context();
  AllocatorOptions Opts = improvedOptions(true, true, false);
  Opts.BSKey = BenefitKeyStrategy::MaxBenefit; // strategy 1
  RoundResult RR = runOn(Ctx, Opts);
  EXPECT_DOUBLE_EQ(assignmentSavings(Ctx, RR), 4500.0);
}

TEST(PaperFigure4, DeltaKeySaves5300) {
  Figure4 Fig;
  AllocationContext &Ctx = Fig.S.context();
  AllocatorOptions Opts = improvedOptions(true, true, false);
  Opts.BSKey = BenefitKeyStrategy::Delta; // strategy 2, the paper's choice
  RoundResult RR = runOn(Ctx, Opts);
  EXPECT_DOUBLE_EQ(assignmentSavings(Ctx, RR), 5300.0);
}

/// §4's callee-save cost model example: two live ranges with spill cost
/// 4000 can share one callee-save register whose save/restore costs 5000.
struct SharedCostExample {
  ScenarioBuilder S{RegisterConfig(1, 0, 1, 0), 2500}; // calleeCost 5000
  unsigned A, B;

  SharedCostExample() {
    // High caller-save cost: both prefer the callee-save register. They do
    // not interfere (sequential lifetimes), so they can share it.
    A = S.addRange(RegBank::Int, 4000, 10000);
    B = S.addRange(RegBank::Int, 4000, 10000);
  }
};

TEST(PaperSection4, FirstUserPaysSpillsBoth) {
  SharedCostExample Ex;
  AllocationContext &Ctx = Ex.S.context();
  AllocatorOptions Opts = improvedOptions(true, false, false);
  Opts.CalleeModel = CalleeCostModel::FirstUserPays;
  RoundResult RR = runOn(Ctx, Opts);
  EXPECT_TRUE(RR.Assignment[Ex.A].isMemory());
  EXPECT_TRUE(RR.Assignment[Ex.B].isMemory());
  EXPECT_DOUBLE_EQ(overheadOf(Ctx, RR), 8000.0); // the paper's bad outcome
}

TEST(PaperSection4, SharedCostKeepsBoth) {
  SharedCostExample Ex;
  AllocationContext &Ctx = Ex.S.context();
  AllocatorOptions Opts = improvedOptions(true, false, false);
  Opts.CalleeModel = CalleeCostModel::Shared;
  RoundResult RR = runOn(Ctx, Opts);
  EXPECT_TRUE(RR.Assignment[Ex.A].isRegister());
  EXPECT_TRUE(RR.Assignment[Ex.B].isRegister());
  EXPECT_EQ(RR.Assignment[Ex.A].Reg, RR.Assignment[Ex.B].Reg);
  EXPECT_DOUBLE_EQ(overheadOf(Ctx, RR), 5000.0); // saves 3000 over spilling
}

TEST(PaperSection4, SharedCostStillEvictsWhenUnprofitable) {
  // Combined spill cost 1500 < calleeCost 5000: the shared model spills
  // the whole group.
  ScenarioBuilder S(RegisterConfig(1, 0, 1, 0), 2500);
  unsigned A = S.addRange(RegBank::Int, 700, 10000);
  unsigned B = S.addRange(RegBank::Int, 800, 10000);
  AllocationContext &Ctx = S.context();
  AllocatorOptions Opts = improvedOptions(true, false, false);
  Opts.CalleeModel = CalleeCostModel::Shared;
  RoundResult RR = runOn(Ctx, Opts);
  EXPECT_TRUE(RR.Assignment[A].isMemory());
  EXPECT_TRUE(RR.Assignment[B].isMemory());
  EXPECT_EQ(RR.VoluntarySpills, 2u);
  EXPECT_EQ(RR.NewlyRefusedCalleeRegs.size(), 1u);
}

/// Figure 5 (§6), values adapted: lr_w deserves the single callee-save
/// register (enormous caller-save cost); lr_x is colored first and would
/// take it. The preference decision displaces lr_x by cost.
struct Figure5 {
  ScenarioBuilder S{RegisterConfig(2, 0, 1, 0), 100}; // calleeCost 200
  unsigned W, X;

  Figure5() {
    // lr_w: refs 5000, callerCost 4800 -> benefitCaller 200 > 0.
    W = S.addRange(RegBank::Int, 5000, 4800);
    // lr_x: refs 1000, callerCost 2000 -> benefitCaller -1000 < 0,
    // benefitCallee 800 > 0: prefers callee, but spilling beats caller.
    X = S.addRange(RegBank::Int, 1000, 2000);
    S.addEdge(W, X);
    // Both cross the same high-frequency call: L = 2 > M = 1.
    S.addCall(1000, {W, X});
  }
};

TEST(PaperFigure5, WithoutPreferenceDecisionTheWrongRangeWins) {
  Figure5 Fig;
  AllocationContext &Ctx = Fig.S.context();
  // SC only (no BS): removal in id order puts lr_x on top; it takes the
  // callee-save register and lr_w pays 4800 at the calls.
  RoundResult RR = runOn(Ctx, improvedOptions(true, false, false));
  EXPECT_TRUE(RR.Assignment[Fig.X].isRegister());
  EXPECT_TRUE(Ctx.MD.isCalleeSave(RR.Assignment[Fig.X].Reg));
  EXPECT_DOUBLE_EQ(assignmentSavings(Ctx, RR), 1000.0); // 800 + 200
}

TEST(PaperFigure5, PreferenceDecisionDisplacesByCost) {
  Figure5 Fig;
  AllocationContext &Ctx = Fig.S.context();
  RoundResult RR = runOn(Ctx, improvedOptions(true, false, true));
  // lr_x is forced toward caller-save; storage-class analysis then spills
  // it (benefitCaller < 0) and lr_w gets the callee-save register.
  EXPECT_TRUE(RR.Assignment[Fig.X].isMemory());
  EXPECT_TRUE(RR.Assignment[Fig.W].isRegister());
  EXPECT_TRUE(Ctx.MD.isCalleeSave(RR.Assignment[Fig.W].Reg));
  EXPECT_DOUBLE_EQ(assignmentSavings(Ctx, RR), 4800.0);
}

/// Figure 8 (§8): a C4 cycle with one caller-save and one callee-save
/// register. Plain Chaitin spills lr_x (cheapest); optimistic coloring
/// rescues it into the caller-save register whose cost (2000) dwarfs the
/// avoided spill (400).
struct Figure8 {
  ScenarioBuilder S{RegisterConfig(1, 0, 1, 0), 50}; // calleeCost 100
  unsigned U, V, W, X;

  Figure8() {
    U = S.addRange(RegBank::Int, 600, 300);
    V = S.addRange(RegBank::Int, 600, 300);
    W = S.addRange(RegBank::Int, 600, 300);
    X = S.addRange(RegBank::Int, 400, 2000); // cheapest spill, huge caller cost
    S.addEdge(U, V);
    S.addEdge(V, W);
    S.addEdge(W, X);
    S.addEdge(X, U);
  }
};

TEST(PaperFigure8, OptimisticColoringCanLose) {
  Figure8 Fig;
  AllocationContext &Ctx = Fig.S.context();

  RoundResult Pessimistic = runOn(Ctx, baseChaitinOptions());
  EXPECT_TRUE(Pessimistic.Assignment[Fig.X].isMemory());

  RoundResult Optimistic = runOn(Ctx, optimisticOptions());
  EXPECT_TRUE(Optimistic.Assignment[Fig.X].isRegister());

  // Rescuing lr_x put it in the wrong kind of register: total overhead
  // rises above the pessimistic allocation.
  EXPECT_GT(overheadOf(Ctx, Optimistic), overheadOf(Ctx, Pessimistic));
}

TEST(PaperFigure8, StorageClassAnalysisFixesTheRescue) {
  // Improved + optimistic: the rescue is vetoed (benefitCaller < 0), so
  // lr_x is spilled after all — optimistic coloring "needs to take call
  // cost into account" (§12).
  Figure8 Fig;
  AllocationContext &Ctx = Fig.S.context();
  RoundResult RR = runOn(Ctx, improvedOptimisticOptions());
  EXPECT_TRUE(RR.Assignment[Fig.X].isMemory());
  RoundResult Pessimistic = runOn(Ctx, baseChaitinOptions());
  EXPECT_LE(overheadOf(Ctx, RR), overheadOf(Ctx, Pessimistic));
}

} // namespace
