//===- tests/EngineTest.cpp - Allocation-engine driver tests --------------===//

#include "analysis/Frequency.h"
#include "core/EngineBuilder.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "workloads/SpecProxies.h"

#include <gtest/gtest.h>

using namespace ccra;

namespace {

struct SmallProgram {
  Module M{"m"};
  Function *Leaf, *MainF;
  VirtReg Hot, Cold;

  SmallProgram() {
    Leaf = M.createFunction("leaf");
    {
      IRBuilder B(*Leaf);
      B.startBlock("entry");
      B.buildRet();
    }
    MainF = M.createFunction("main");
    IRBuilder B(*MainF);
    B.startBlock("entry");
    Hot = B.buildLoadImm(1);
    Cold = B.buildLoadImm(2);
    BasicBlock *Loop = MainF->createBlock("loop");
    B.buildBr(Loop);
    B.setInsertBlock(Loop);
    B.buildBinaryInto(Hot, Opcode::Add, Hot, Hot);
    VirtReg C = B.buildCmp(Hot, Hot);
    BasicBlock *Exit = MainF->createBlock("exit");
    B.buildCondBr(C, Loop, Exit, 0.99);
    B.setInsertBlock(Exit);
    B.buildCall(Leaf, {});
    VirtReg Sum = B.buildBinary(Opcode::Add, Hot, Cold);
    B.buildRet(Sum);
    M.setEntryFunction(MainF);
    EXPECT_TRUE(verifyModule(M, nullptr));
  }
};

TEST(Engine, RecordsLocationsForEveryRegister) {
  SmallProgram P;
  FrequencyInfo Freq = FrequencyInfo::compute(P.M, FrequencyMode::Profile);
  AllocationEngine Engine = EngineBuilder(RegisterConfig(4, 2, 2, 2))
      .options(improvedOptions()).build();
  ModuleAllocationResult R = Engine.allocateModule(P.M, Freq);
  const FunctionAllocation &FA = R.PerFunction.at(P.MainF);
  for (unsigned V = 0; V < P.MainF->numVRegs(); ++V)
    EXPECT_TRUE(FA.VRegLocations.count(V)) << 'v' << V;
}

TEST(Engine, DeclarationsAreSkipped) {
  Module M("m");
  M.createFunction("external_only");
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  AllocationEngine Engine = EngineBuilder(RegisterConfig(4, 2, 0, 0))
      .options(baseChaitinOptions()).build();
  ModuleAllocationResult R = Engine.allocateModule(M, Freq);
  EXPECT_TRUE(R.PerFunction.empty());
  EXPECT_DOUBLE_EQ(R.Totals.total(), 0.0);
}

TEST(Engine, SingleRoundWhenNothingSpills) {
  SmallProgram P;
  FrequencyInfo Freq = FrequencyInfo::compute(P.M, FrequencyMode::Profile);
  AllocationEngine Engine = EngineBuilder(RegisterConfig(8, 4, 4, 2))
      .options(improvedOptions()).build();
  ModuleAllocationResult R = Engine.allocateModule(P.M, Freq);
  EXPECT_EQ(R.PerFunction.at(P.MainF).Rounds, 1u);
  EXPECT_EQ(R.PerFunction.at(P.MainF).SpilledRanges, 0u);
}

TEST(Engine, SpilledRegisterIsMappedToMemory) {
  // One register, three conflicting values: somebody lands in memory and
  // the location map says so.
  Module M("m");
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg C = B.buildLoadImm(2);
  VirtReg D = B.buildLoadImm(3);
  VirtReg S1 = B.buildBinary(Opcode::Add, A, C);
  VirtReg S2 = B.buildBinary(Opcode::Add, S1, D);
  B.buildRet(S2);
  M.setEntryFunction(&F);
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  AllocationEngine Engine = EngineBuilder(RegisterConfig(2, 1, 0, 0))
      .options(baseChaitinOptions()).build();
  ModuleAllocationResult R = Engine.allocateModule(M, Freq);
  const FunctionAllocation &FA = R.PerFunction.at(&F);
  EXPECT_GE(FA.SpilledRanges, 1u);
  unsigned MemoryLocations = 0;
  for (VirtReg V : {A, C, D})
    MemoryLocations += FA.locationOf(V).isMemory() ? 1 : 0;
  EXPECT_GE(MemoryLocations, 1u);
  EXPECT_GT(FA.Costs.Spill, 0.0);
  // The rewritten function stays well-formed, with spill code present.
  EXPECT_TRUE(verifyModule(M, nullptr));
}

TEST(Engine, MaterializationCanBeDisabled) {
  SmallProgram P;
  FrequencyInfo Freq = FrequencyInfo::compute(P.M, FrequencyMode::Profile);
  AllocatorOptions Opts = baseChaitinOptions();
  Opts.MaterializeSaveRestore = false;
  AllocationEngine Engine =
      EngineBuilder(RegisterConfig(4, 2, 2, 2)).options(Opts).build();
  ModuleAllocationResult R = Engine.allocateModule(P.M, Freq);
  // Costs are still computed analytically...
  EXPECT_GT(R.Totals.total(), 0.0);
  // ...but no Save/Restore instructions were inserted.
  for (const auto &BB : P.MainF->blocks())
    for (const Instruction &I : BB->instructions())
      EXPECT_TRUE(I.Op != Opcode::Save && I.Op != Opcode::Restore);
}

TEST(Engine, CalleeRegsPaidMatchesBreakdown) {
  SmallProgram P;
  FrequencyInfo Freq = FrequencyInfo::compute(P.M, FrequencyMode::Profile);
  AllocationEngine Engine = EngineBuilder(RegisterConfig(2, 2, 2, 2))
      .options(baseChaitinOptions()).build();
  ModuleAllocationResult R = Engine.allocateModule(P.M, Freq);
  for (const auto &[F, FA] : R.PerFunction) {
    double EntryFreq = Freq.entryFrequency(*F);
    EXPECT_NEAR(FA.Costs.CalleeSave, 2.0 * EntryFreq * FA.CalleeRegsPaid,
                1e-9);
  }
}

TEST(Engine, ProxiesConvergeWithinAFewRounds) {
  for (const std::string &Name : specProxyNames()) {
    SCOPED_TRACE(Name);
    std::unique_ptr<Module> M = buildSpecProxy(Name);
    FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
    AllocationEngine Engine = EngineBuilder(minimalMipsConfig())
        .options(improvedOptions()).build();
    ModuleAllocationResult R = Engine.allocateModule(*M, Freq);
    for (const auto &[F, FA] : R.PerFunction) {
      (void)F;
      EXPECT_LE(FA.Rounds, 8u);
    }
  }
}

TEST(Engine, MachineDescriptionQueries) {
  MachineDescription MD(RegisterConfig(3, 2, 2, 1));
  EXPECT_EQ(MD.numRegs(RegBank::Int), 5u);
  EXPECT_EQ(MD.numRegs(RegBank::Float), 3u);
  EXPECT_TRUE(MD.isCallerSave(PhysReg(RegBank::Int, 2)));
  EXPECT_TRUE(MD.isCalleeSave(PhysReg(RegBank::Int, 3)));
  EXPECT_EQ(MD.callerSaveReg(RegBank::Int, 0), PhysReg(RegBank::Int, 0));
  EXPECT_EQ(MD.calleeSaveReg(RegBank::Int, 0), PhysReg(RegBank::Int, 3));
  EXPECT_EQ(MD.calleeSaveReg(RegBank::Float, 0), PhysReg(RegBank::Float, 2));
  EXPECT_EQ(RegisterConfig(3, 2, 2, 1).label(), "(3,2,2,1)");
  EXPECT_TRUE(RegisterConfig(3, 2, 2, 1) == RegisterConfig(3, 2, 2, 1));
  EXPECT_FALSE(RegisterConfig(3, 2, 2, 1) == RegisterConfig(3, 2, 1, 2));
  EXPECT_EQ(standardConfigSweep().size(), 17u);
  EXPECT_TRUE(standardConfigSweep().front() == minimalMipsConfig());
  EXPECT_TRUE(standardConfigSweep().back() == fullMipsConfig());
}

TEST(Engine, DescribeTags) {
  EXPECT_EQ(baseChaitinOptions().describe(), "base");
  EXPECT_EQ(optimisticOptions().describe(), "optimistic");
  EXPECT_EQ(improvedOptions().describe(), "SC+BS+PR");
  EXPECT_EQ(improvedOptions(true, false, false).describe(), "SC");
  EXPECT_EQ(improvedOptimisticOptions().describe(), "SC+BS+PR+opt");
  EXPECT_EQ(priorityOptions().describe(), "priority");
  EXPECT_EQ(cbhOptions().describe(), "CBH");
}

} // namespace
