//===- tests/ParallelTest.cpp - Thread pool and parallel determinism ------===//
//
// The contract of the parallel allocation engine: allocateModule with any
// Jobs setting produces bit-identical results to the serial path, because
// every task allocates with a private allocator instance and the engine
// reduces per-function results in function order. Plus unit tests of the
// ThreadPool primitive itself.
//
//===----------------------------------------------------------------------===//

#include "ccra.h"
#include "workloads/RandomProgram.h"

#include <atomic>
#include <gtest/gtest.h>
#include <set>
#include <stdexcept>
#include <vector>

using namespace ccra;

namespace {

// --- ThreadPool ---------------------------------------------------------

TEST(ThreadPool, SizeIsRequestedThreadCount) {
  ThreadPool Pool(3);
  EXPECT_EQ(Pool.size(), 3u);
  ThreadPool Auto(0);
  EXPECT_EQ(Auto.size(), ThreadPool::defaultParallelism());
  EXPECT_GE(ThreadPool::defaultParallelism(), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr std::size_t Count = 1000;
  std::vector<std::atomic<unsigned>> Hits(Count);
  Pool.parallelForEach(Count, [&](std::size_t I) { Hits[I]++; });
  for (std::size_t I = 0; I < Count; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool Pool(2);
  Pool.parallelForEach(0, [&](std::size_t) { FAIL() << "body ran"; });
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool Pool(2);
  std::atomic<std::size_t> Total{0};
  for (int Batch = 0; Batch < 10; ++Batch)
    Pool.parallelForEach(100, [&](std::size_t) { Total++; });
  EXPECT_EQ(Total.load(), 1000u);
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool Pool(3);
  std::atomic<unsigned> Ran{0};
  EXPECT_THROW(Pool.parallelForEach(64,
                                    [&](std::size_t I) {
                                      Ran++;
                                      if (I == 7)
                                        throw std::runtime_error("boom");
                                    }),
               std::runtime_error);
  EXPECT_GE(Ran.load(), 1u);
  // The pool must still be usable after a failed batch.
  std::atomic<unsigned> After{0};
  Pool.parallelForEach(16, [&](std::size_t) { After++; });
  EXPECT_EQ(After.load(), 16u);
}

TEST(ThreadPool, SingleThreadPoolStillRunsAllTasks) {
  ThreadPool Pool(1);
  std::set<std::size_t> Seen;
  Pool.parallelForEach(20, [&](std::size_t I) { Seen.insert(I); });
  EXPECT_EQ(Seen.size(), 20u);
}

TEST(ThreadPool, NestedSubmissionCompletesOnSharedWorkers) {
  // A task may submit its own batch to the pool it runs on (the engine
  // does exactly this when a shared grid pool carries its function
  // fan-out). The submitter drains its own batch, so this cannot deadlock
  // even when every worker is busy.
  ThreadPool Pool(3);
  std::atomic<unsigned> Inner{0};
  Pool.parallelForEach(8, [&](std::size_t) {
    Pool.parallelForEach(8, [&](std::size_t) { Inner++; });
  });
  EXPECT_EQ(Inner.load(), 64u);
  ThreadPool::Stats S = Pool.stats();
  EXPECT_EQ(S.Batches, 9u);
  EXPECT_EQ(S.Tasks, 8u + 64u);
}

TEST(ThreadPool, SlotsStayWithinPoolSize) {
  ThreadPool Pool(4);
  std::vector<unsigned> SlotOfTask(200, ~0u);
  Pool.parallelForEachSlot(SlotOfTask.size(),
                           [&](std::size_t I, unsigned Slot) {
                             SlotOfTask[I] = Slot;
                           });
  for (unsigned Slot : SlotOfTask)
    EXPECT_LT(Slot, Pool.size());
  ThreadPool::Stats S = Pool.stats();
  std::uint64_t Sum = 0;
  for (std::uint64_t N : S.TasksPerSlot)
    Sum += N;
  EXPECT_EQ(Sum, S.Tasks);
}

// --- Parallel allocation determinism ------------------------------------

RandomProgramParams manyFunctionParams(uint64_t Seed) {
  RandomProgramParams Params;
  Params.Seed = Seed;
  Params.NumFunctions = 7;
  Params.RegionsPerFunction = 5;
  Params.IntValues = 10;
  Params.FloatValues = 5;
  return Params;
}

ModuleAllocationResult allocateClone(const Module &M, unsigned Jobs,
                                     const AllocatorOptions &Opts,
                                     std::unique_ptr<Module> &CloneOut,
                                     Telemetry *T = nullptr) {
  CloneOut = cloneModule(M);
  FrequencyInfo Freq = FrequencyInfo::compute(*CloneOut, FrequencyMode::Profile);
  AllocationEngine Engine = EngineBuilder(RegisterConfig(6, 4, 2, 2))
                                .options(Opts)
                                .jobs(Jobs)
                                .telemetry(T)
                                .build();
  return Engine.allocateModule(*CloneOut, Freq);
}

void expectIdenticalAllocations(const Module &Serial,
                                const ModuleAllocationResult &A,
                                const Module &Parallel,
                                const ModuleAllocationResult &B) {
  // Costs must match bit for bit, not just approximately: the parallel
  // reduction runs in function order exactly like the serial loop.
  EXPECT_EQ(A.Totals.Spill, B.Totals.Spill);
  EXPECT_EQ(A.Totals.CallerSave, B.Totals.CallerSave);
  EXPECT_EQ(A.Totals.CalleeSave, B.Totals.CalleeSave);
  EXPECT_EQ(A.Totals.Shuffle, B.Totals.Shuffle);

  ASSERT_EQ(A.PerFunction.size(), B.PerFunction.size());
  auto SerialIt = Serial.functions().begin();
  auto ParallelIt = Parallel.functions().begin();
  for (; SerialIt != Serial.functions().end(); ++SerialIt, ++ParallelIt) {
    const Function *FA = SerialIt->get();
    const Function *FB = ParallelIt->get();
    ASSERT_EQ(FA->getName(), FB->getName());
    if (FA->isDeclaration())
      continue;
    const FunctionAllocation &RA = A.PerFunction.at(FA);
    const FunctionAllocation &RB = B.PerFunction.at(FB);
    EXPECT_EQ(RA.Rounds, RB.Rounds);
    EXPECT_EQ(RA.SpilledRanges, RB.SpilledRanges);
    EXPECT_EQ(RA.VoluntarySpills, RB.VoluntarySpills);
    EXPECT_EQ(RA.CoalescedMoves, RB.CoalescedMoves);
    EXPECT_EQ(RA.CalleeRegsPaid, RB.CalleeRegsPaid);
    EXPECT_EQ(RA.Costs.total(), RB.Costs.total());
    ASSERT_EQ(RA.VRegLocations.size(), RB.VRegLocations.size())
        << "@" << FA->getName();
    for (const auto &[VReg, LocA] : RA.VRegLocations) {
      auto It = RB.VRegLocations.find(VReg);
      ASSERT_NE(It, RB.VRegLocations.end());
      const Location &LocB = It->second;
      EXPECT_EQ(LocA.isRegister(), LocB.isRegister());
      if (LocA.isRegister() && LocB.isRegister()) {
        EXPECT_EQ(LocA.Reg, LocB.Reg);
      }
    }
  }
}

TEST(ParallelAllocation, JobsSettingDoesNotChangeResults) {
  for (uint64_t Seed : {11u, 22u, 33u}) {
    std::unique_ptr<Module> M = generateRandomProgram(manyFunctionParams(Seed));
    for (const AllocatorOptions &Opts :
         {improvedOptions(), baseChaitinOptions(), cbhOptions()}) {
      std::unique_ptr<Module> SerialClone, ParallelClone;
      ModuleAllocationResult Serial =
          allocateClone(*M, 1, Opts, SerialClone);
      ModuleAllocationResult Parallel =
          allocateClone(*M, 4, Opts, ParallelClone);
      expectIdenticalAllocations(*SerialClone, Serial, *ParallelClone,
                                 Parallel);
    }
  }
}

TEST(ParallelAllocation, HardwareJobsMatchesSerial) {
  std::unique_ptr<Module> M = generateRandomProgram(manyFunctionParams(77));
  std::unique_ptr<Module> SerialClone, ParallelClone;
  ModuleAllocationResult Serial =
      allocateClone(*M, 1, improvedOptions(), SerialClone);
  ModuleAllocationResult Parallel =
      allocateClone(*M, 0, improvedOptions(), ParallelClone); // 0 = hardware
  expectIdenticalAllocations(*SerialClone, Serial, *ParallelClone, Parallel);
}

TEST(ParallelAllocation, TelemetryCountersMatchSerial) {
  // Timers are wall-clock and may differ; every counter outside the
  // "sched." namespace is a deterministic function of the allocation and
  // must not. "sched." counters (scratch reuses, pool stats) describe the
  // execution schedule and legitimately vary with Jobs.
  std::unique_ptr<Module> M = generateRandomProgram(manyFunctionParams(5));
  Telemetry SerialT, ParallelT;
  std::unique_ptr<Module> C1, C2;
  allocateClone(*M, 1, improvedOptions(), C1, &SerialT);
  allocateClone(*M, 3, improvedOptions(), C2, &ParallelT);
  EXPECT_EQ(SerialT.snapshot().withoutSchedulingCounters().Counters,
            ParallelT.snapshot().withoutSchedulingCounters().Counters);
  EXPECT_GT(SerialT.count(telemetry::Functions), 0.0);
  // Both paths exercised their scratch arenas.
  EXPECT_GT(SerialT.count(telemetry::SchedScratchReuses), 0.0);
  EXPECT_GT(ParallelT.count(telemetry::SchedScratchReuses), 0.0);
}

TEST(ParallelAllocation, OptimizationsOnOffBitIdenticalAtAnyJobs) {
  // The three throughput features — incremental liveness (with or without
  // a cached baseline seed), scratch arenas, and the shared pool — are
  // pure compute-sharing: allocations and costs must be bit-identical
  // with all of them on or off, serial or parallel.
  std::unique_ptr<Module> M = generateRandomProgram(manyFunctionParams(91));
  AllocatorOptions On = improvedOptions();
  On.IncrementalLiveness = true;
  On.ScratchArenas = true;
  AllocatorOptions Off = On;
  Off.IncrementalLiveness = false;
  Off.ScratchArenas = false;

  std::unique_ptr<Module> RefClone;
  ModuleAllocationResult Ref = allocateClone(*M, 1, Off, RefClone);
  for (unsigned Jobs : {1u, 8u}) {
    std::unique_ptr<Module> OnClone;
    ModuleAllocationResult WithOn = allocateClone(*M, Jobs, On, OnClone);
    expectIdenticalAllocations(*RefClone, Ref, *OnClone, WithOn);

    // Through the harness, with the shared analysis cache and pool.
    ModuleAnalysisCache Cache;
    ThreadPool Pool(Jobs);
    ExperimentRun Cached = runExperiment(
        {M.get(), RegisterConfig(6, 4, 2, 2), On, FrequencyMode::Profile,
         Jobs},
        &Cache, &Pool);
    ExperimentRun Plain = runExperiment({M.get(), RegisterConfig(6, 4, 2, 2),
                                         Off, FrequencyMode::Profile, 1});
    EXPECT_EQ(Cached.Result.Costs.total(), Plain.Result.Costs.total());
    EXPECT_EQ(Cached.Result.SpilledRanges, Plain.Result.SpilledRanges);
    EXPECT_EQ(Cached.Result.CoalescedMoves, Plain.Result.CoalescedMoves);
    EXPECT_EQ(Cached.Result.Cycles, Plain.Result.Cycles);
    EXPECT_GT(Cache.stats().misses(), 0u);
  }
}

TEST(ParallelAllocation, ExperimentGridIsDeterministic) {
  std::unique_ptr<Module> M = generateRandomProgram(manyFunctionParams(42));
  std::vector<ExperimentSpec> Specs;
  for (const RegisterConfig &Config :
       {RegisterConfig(6, 4, 0, 0), RegisterConfig(8, 6, 2, 2)})
    for (unsigned Jobs : {1u, 2u})
      Specs.push_back({M.get(), Config, improvedOptions(),
                       FrequencyMode::Profile, Jobs});

  std::vector<ExperimentRun> Serial = runExperiments(Specs, 1);
  std::vector<ExperimentRun> Parallel = runExperiments(Specs, 4);
  ASSERT_EQ(Serial.size(), Specs.size());
  ASSERT_EQ(Parallel.size(), Specs.size());
  for (std::size_t I = 0; I < Specs.size(); ++I) {
    EXPECT_EQ(Serial[I].Result.Costs.total(), Parallel[I].Result.Costs.total());
    EXPECT_EQ(Serial[I].Result.Cycles, Parallel[I].Result.Cycles);
    EXPECT_EQ(Serial[I].Result.SpilledRanges, Parallel[I].Result.SpilledRanges);
    EXPECT_EQ(Serial[I].Telemetry.withoutSchedulingCounters().Counters,
              Parallel[I].Telemetry.withoutSchedulingCounters().Counters);
  }
  // The two specs that differ only in per-experiment Jobs agree too.
  EXPECT_EQ(Serial[0].Result.Costs.total(), Serial[1].Result.Costs.total());
  EXPECT_EQ(Serial[2].Result.Costs.total(), Serial[3].Result.Costs.total());
}

} // namespace
