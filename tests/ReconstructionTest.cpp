//===- tests/ReconstructionTest.cpp - Graph reconstruction equivalence ----===//
//
// The incremental graph reconstruction (paper §2) must produce *exactly*
// the state a from-scratch recomputation would: same live ranges with the
// same metrics, same interference edges, same liveness sets — and the
// engine must produce identical allocations with the feature on or off.
//
//===----------------------------------------------------------------------===//

#include "analysis/Frequency.h"
#include "core/EngineBuilder.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "regalloc/GraphReconstructor.h"
#include "regalloc/SpillCodeInserter.h"
#include "regalloc/VRegClasses.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace ccra;

namespace {

std::set<std::pair<unsigned, unsigned>> edgeSet(const InterferenceGraph &IG) {
  std::set<std::pair<unsigned, unsigned>> Edges;
  for (unsigned A = 0; A < IG.numNodes(); ++A)
    for (unsigned B : IG.neighbors(A))
      Edges.insert({std::min(A, B), std::max(A, B)});
  return Edges;
}

void expectSameRanges(const LiveRangeSet &Patched, const LiveRangeSet &Fresh,
                      unsigned NumVRegs) {
  ASSERT_EQ(Patched.numRanges(), Fresh.numRanges());
  for (unsigned I = 0; I < Patched.numRanges(); ++I) {
    const LiveRange &A = Patched.range(I);
    const LiveRange &B = Fresh.range(I);
    EXPECT_EQ(A.Root, B.Root) << I;
    EXPECT_EQ(A.Bank, B.Bank) << I;
    EXPECT_DOUBLE_EQ(A.WeightedRefs, B.WeightedRefs) << I;
    EXPECT_DOUBLE_EQ(A.CallerSaveCost, B.CallerSaveCost) << I;
    EXPECT_DOUBLE_EQ(A.CalleeSaveCost, B.CalleeSaveCost) << I;
    EXPECT_EQ(A.NumRefs, B.NumRefs) << I;
    EXPECT_EQ(A.NoSpill, B.NoSpill) << I;
    EXPECT_EQ(A.ContainsCall, B.ContainsCall) << I;
    EXPECT_EQ(A.CrossedCalls, B.CrossedCalls) << I;
  }
  for (unsigned V = 0; V < NumVRegs; ++V)
    EXPECT_EQ(Patched.rangeIdOf(VirtReg(V)), Fresh.rangeIdOf(VirtReg(V)))
        << 'v' << V;
}

/// Builds a copy-free function with a call and pressure, spills one class,
/// and compares patched state against freshly computed state.
TEST(GraphReconstruction, MatchesFromScratchOnHandBuiltFunction) {
  Module M("m");
  Function *Leaf = M.createFunction("leaf");
  {
    IRBuilder B(*Leaf);
    B.startBlock("entry");
    B.buildRet();
  }
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  std::vector<VirtReg> Pool;
  for (int I = 0; I < 5; ++I)
    Pool.push_back(B.buildLoadImm(I));
  B.buildCall(Leaf, {});
  BasicBlock *Next = F.createBlock("next");
  B.buildBr(Next);
  B.setInsertBlock(Next);
  VirtReg Acc = Pool[0];
  for (int I = 1; I < 5; ++I)
    Acc = B.buildBinary(Opcode::Add, Acc, Pool[static_cast<size_t>(I)]);
  B.buildRet(Acc);
  M.setEntryFunction(&F);

  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  VRegClasses Classes(F.numVRegs());
  Liveness LV = Liveness::compute(F);
  LiveRangeSet LRS = LiveRangeSet::build(F, LV, Freq, Classes);
  InterferenceGraph IG = InterferenceGraph::build(F, LV, LRS);

  // Spill Pool[1]'s live range.
  unsigned SpilledId = static_cast<unsigned>(LRS.rangeIdOf(Pool[1]));
  unsigned OldNumVRegs = F.numVRegs();
  SpillCodeInserter::run(F, {{Pool[1]}});

  Classes.grow(F.numVRegs());
  GraphReconstructor::apply(F, Freq, LV, LRS, IG, {SpilledId}, OldNumVRegs);

  Liveness FreshLV = Liveness::compute(F);
  LiveRangeSet FreshLRS = LiveRangeSet::build(F, FreshLV, Freq, Classes);
  InterferenceGraph FreshIG = InterferenceGraph::build(F, FreshLV, FreshLRS);

  expectSameRanges(LRS, FreshLRS, F.numVRegs());
  EXPECT_EQ(edgeSet(IG), edgeSet(FreshIG));
  for (const auto &BB : F.blocks()) {
    EXPECT_TRUE(LV.liveIn(*BB) == FreshLV.liveIn(*BB)) << BB->getName();
    EXPECT_TRUE(LV.liveOut(*BB) == FreshLV.liveOut(*BB)) << BB->getName();
  }
  EXPECT_EQ(LRS.callSites().size(), FreshLRS.callSites().size());
}

TEST(GraphReconstruction, MatchesFromScratchOnRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    SCOPED_TRACE(Seed);
    RandomProgramParams Params;
    Params.Seed = Seed;
    Params.UseMoves = false; // copy-free, the exactness precondition
    std::unique_ptr<Module> M = generateRandomProgram(Params);
    FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);

    for (const auto &FPtr : M->functions()) {
      Function &F = *FPtr;
      if (F.isDeclaration())
        continue;
      ASSERT_TRUE(GraphReconstructor::hasNoCopies(F));
      VRegClasses Classes(F.numVRegs());
      Liveness LV = Liveness::compute(F);
      LiveRangeSet LRS = LiveRangeSet::build(F, LV, Freq, Classes);
      InterferenceGraph IG = InterferenceGraph::build(F, LV, LRS);
      if (LRS.numRanges() < 3)
        continue;

      // Spill the two highest-degree spillable ranges.
      std::vector<unsigned> ByDegree;
      for (unsigned I = 0; I < LRS.numRanges(); ++I)
        if (!LRS.range(I).NoSpill)
          ByDegree.push_back(I);
      std::sort(ByDegree.begin(), ByDegree.end(),
                [&](unsigned A, unsigned B) {
                  return IG.degree(A) > IG.degree(B);
                });
      ByDegree.resize(std::min<size_t>(2, ByDegree.size()));

      std::vector<std::vector<VirtReg>> SpillClasses;
      for (unsigned Id : ByDegree) {
        std::vector<VirtReg> Members;
        for (unsigned V = 0; V < F.numVRegs(); ++V)
          if (LRS.rangeIdOf(VirtReg(V)) == static_cast<int>(Id))
            Members.push_back(VirtReg(V));
        SpillClasses.push_back(std::move(Members));
      }
      unsigned OldNumVRegs = F.numVRegs();
      SpillCodeInserter::run(F, SpillClasses);
      Classes.grow(F.numVRegs());
      GraphReconstructor::apply(F, Freq, LV, LRS, IG, ByDegree, OldNumVRegs);

      Liveness FreshLV = Liveness::compute(F);
      LiveRangeSet FreshLRS = LiveRangeSet::build(F, FreshLV, Freq, Classes);
      InterferenceGraph FreshIG = InterferenceGraph::build(F, FreshLV, FreshLRS);
      expectSameRanges(LRS, FreshLRS, F.numVRegs());
      EXPECT_EQ(edgeSet(IG), edgeSet(FreshIG));
    }
  }
}

TEST(GraphReconstruction, EngineResultsIdenticalOnOrOff) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    SCOPED_TRACE(Seed);
    RandomProgramParams Params;
    Params.Seed = Seed;
    Params.UseMoves = false;
    Params.IntValues = 12; // pressure, so spilling and retry rounds happen
    std::unique_ptr<Module> Source = generateRandomProgram(Params);

    auto Run = [&](bool Incremental) {
      std::unique_ptr<Module> M = cloneModule(*Source);
      FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
      AllocatorOptions Opts = improvedOptions();
      Opts.IncrementalReconstruction = Incremental;
      AllocationEngine Engine = EngineBuilder(RegisterConfig(6, 4, 1, 1))
          .options(Opts).build();
      return Engine.allocateModule(*M, Freq);
    };
    ModuleAllocationResult On = Run(true);
    ModuleAllocationResult Off = Run(false);
    EXPECT_DOUBLE_EQ(On.Totals.Spill, Off.Totals.Spill);
    EXPECT_DOUBLE_EQ(On.Totals.CallerSave, Off.Totals.CallerSave);
    EXPECT_DOUBLE_EQ(On.Totals.CalleeSave, Off.Totals.CalleeSave);
  }
}

TEST(GraphReconstruction, HasNoCopiesDetectsMoves) {
  Module M("m");
  Function &F = *M.createFunction("f");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  EXPECT_TRUE(GraphReconstructor::hasNoCopies(F));
  B.buildMove(A);
  EXPECT_FALSE(GraphReconstructor::hasNoCopies(F));
}

} // namespace
