//===- tests/BinaryCodecTest.cpp - Wire codec v2 / binary IR tests --------===//
//
// Covers the two layers behind AllocRequestV2: the binary module encoding
// (ir/IRBinary.h) and the request payload codec (service/BinaryCodec.h).
// The load-bearing contract is byte-exact equivalence with the textual
// path over every module the generator and the committed corpus produce:
//
//   printModule(decodeModuleBinary(encodeModuleBinary(M)))
//     == printModule(parseModule(printModule(M)))
//
// plus decoder robustness: hostile bytes (truncation, corruption, bad
// indices, oversized counts) must fail cleanly, never crash or hang.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBinary.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "fuzz/Corpus.h"
#include "service/BinaryCodec.h"
#include "workloads/FuzzGen.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace ccra;

namespace {

std::string printToString(const Module &M) {
  std::string Out;
  printModule(M, Out);
  return Out;
}

/// The equivalence contract for one module: binary round trip prints the
/// same bytes as the text round trip. Returns the diagnostic on failure.
::testing::AssertionResult roundTripsEquivalently(const Module &M) {
  std::string Text = printToString(M);
  ParseResult PR = parseModule(Text);
  if (!PR.ok())
    return ::testing::AssertionFailure()
           << "text round trip failed: "
           << (PR.Errors.empty() ? "?" : PR.Errors.front());
  std::string ViaText = printToString(*PR.M);

  std::string Bytes, Err;
  if (!encodeModuleBinary(M, Bytes, &Err))
    return ::testing::AssertionFailure() << "encode failed: " << Err;
  std::unique_ptr<Module> Decoded = decodeModuleBinary(Bytes, &Err);
  if (!Decoded)
    return ::testing::AssertionFailure() << "decode failed: " << Err;
  if (!verifyModule(*Decoded, nullptr))
    return ::testing::AssertionFailure() << "decoded module fails verify";
  std::string ViaBinary = printToString(*Decoded);

  if (ViaBinary != ViaText)
    return ::testing::AssertionFailure()
           << "binary and text round trips disagree (binary "
           << ViaBinary.size() << " bytes, text " << ViaText.size()
           << " bytes)";
  return ::testing::AssertionSuccess();
}

std::unique_ptr<Module> smallModule() {
  ParseResult R = parseModule("module codec\n"
                              "func @leaf {\n"
                              "entry:\n"
                              "  %i0 = loadimm -7\n"
                              "  ret %i0\n"
                              "}\n"
                              "func @main {\n"
                              "entry:\n"
                              "  %i0 = loadimm 42\n"
                              "  %i1 = call @leaf(%i0)\n"
                              "  %i2 = cmp %i0, %i1\n"
                              "  condbr %i2\n"
                              "  ; succs: hot(0.75) cold(0.25)\n"
                              "hot:\n"
                              "  %i3 = add %i0, %i1\n"
                              "  ret %i3\n"
                              "cold:\n"
                              "  ret %i0\n"
                              "}\n");
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
  return std::move(R.M);
}

//===----------------------------------------------------------------------===//
// Equivalence: generated modules and the committed corpus
//===----------------------------------------------------------------------===//

TEST(BinaryCodec, RoundTripsSmallHandWrittenModule) {
  auto M = smallModule();
  ASSERT_TRUE(M);
  EXPECT_TRUE(roundTripsEquivalently(*M));
}

TEST(BinaryCodec, EquivalentToTextOverEveryFuzzProfile) {
  for (FuzzProfile P : allFuzzProfiles()) {
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      FuzzGenParams Params;
      Params.Seed = Seed;
      Params.Profile = P;
      auto M = generateFuzzModule(Params);
      ASSERT_TRUE(M);
      EXPECT_TRUE(roundTripsEquivalently(*M))
          << "profile " << static_cast<int>(P) << " seed " << Seed;
    }
  }
}

TEST(BinaryCodec, EquivalentToTextOverLargerModules) {
  FuzzGenParams Params;
  Params.SizeScale = 3;
  for (uint64_t Seed = 100; Seed < 104; ++Seed) {
    Params.Seed = Seed;
    auto M = generateFuzzModule(Params);
    ASSERT_TRUE(M);
    EXPECT_TRUE(roundTripsEquivalently(*M)) << "seed " << Seed;
  }
}

TEST(BinaryCodec, EquivalentToTextOverSeedCorpus) {
  std::vector<std::string> Errors;
  auto Entries =
      loadCorpusDir(std::string(CCRA_SOURCE_DIR) + "/fuzz/corpus", Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << "corpus load: " << E;
  ASSERT_FALSE(Entries.empty());
  for (const auto &Entry : Entries) {
    ASSERT_TRUE(Entry.M) << Entry.Path;
    EXPECT_TRUE(roundTripsEquivalently(*Entry.M)) << Entry.Path;
  }
}

TEST(BinaryCodec, EncodingIsDeterministic) {
  auto M = smallModule();
  ASSERT_TRUE(M);
  std::string A, B;
  ASSERT_TRUE(encodeModuleBinary(*M, A));
  ASSERT_TRUE(encodeModuleBinary(*M, B));
  EXPECT_EQ(A, B);
  // Re-encoding the decoded module is also stable: decode loses nothing
  // the encoder needs.
  auto D = decodeModuleBinary(A);
  ASSERT_TRUE(D);
  std::string C;
  ASSERT_TRUE(encodeModuleBinary(*D, C));
  EXPECT_EQ(A, C);
}

//===----------------------------------------------------------------------===//
// Decoder robustness: hostile bytes must fail cleanly
//===----------------------------------------------------------------------===//

TEST(BinaryCodec, RejectsEmptyAndBadMagic) {
  std::string Err;
  EXPECT_EQ(decodeModuleBinary("", &Err), nullptr);
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(decodeModuleBinary("XXXX", &Err), nullptr);
  EXPECT_EQ(decodeModuleBinary(std::string("\x00\x00\x00\x00", 4), &Err),
            nullptr);
  // Text accidentally fed to the binary decoder (the common operator
  // mistake) must be a clean error, not a crash.
  EXPECT_EQ(decodeModuleBinary("module demo\nfunc @main {\n", &Err), nullptr);
}

TEST(BinaryCodec, RejectsTruncationAtEveryPrefixLength) {
  auto M = smallModule();
  ASSERT_TRUE(M);
  std::string Bytes;
  ASSERT_TRUE(encodeModuleBinary(*M, Bytes));
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::string Err;
    std::unique_ptr<Module> D =
        decodeModuleBinary(Bytes.substr(0, Len), &Err);
    EXPECT_EQ(D, nullptr) << "prefix of " << Len << " bytes decoded";
  }
}

TEST(BinaryCodec, RejectsTrailingGarbage) {
  auto M = smallModule();
  ASSERT_TRUE(M);
  std::string Bytes;
  ASSERT_TRUE(encodeModuleBinary(*M, Bytes));
  std::string Err;
  EXPECT_EQ(decodeModuleBinary(Bytes + "x", &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(BinaryCodec, SingleByteCorruptionNeverCrashes) {
  // Flip every byte of a valid encoding through a handful of masks. Each
  // mutant must either fail cleanly or decode to a module the verifier
  // and printer can walk — never crash, hang, or trip a sanitizer.
  auto M = smallModule();
  ASSERT_TRUE(M);
  std::string Bytes;
  ASSERT_TRUE(encodeModuleBinary(*M, Bytes));
  const unsigned char Masks[] = {0x01, 0x80, 0xFF};
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    for (unsigned char Mask : Masks) {
      std::string Mutant = Bytes;
      Mutant[I] = static_cast<char>(Mutant[I] ^ Mask);
      if (Mutant == Bytes)
        continue;
      std::unique_ptr<Module> D = decodeModuleBinary(Mutant);
      if (D) {
        std::string Sink;
        printModule(*D, Sink);
        verifyModule(*D, nullptr);
      }
    }
  }
}

TEST(BinaryCodec, RejectsOversizedCountsWithoutAllocating) {
  // Magic followed by a varint that claims ~2^60 functions: the decoder
  // must bail on the buffer bound, not try to reserve the table.
  std::string Bytes = "CIR2";
  Bytes += '\x00'; // module name: empty string
  for (int I = 0; I < 8; ++I)
    Bytes += '\xFF';
  Bytes += '\x0F';
  std::string Err;
  EXPECT_EQ(decodeModuleBinary(Bytes, &Err), nullptr);
  EXPECT_FALSE(Err.empty());

  // Same for a string length far past the end of the buffer.
  std::string Bytes2 = "CIR2";
  Bytes2 += '\xFF';
  Bytes2 += '\x7F'; // module name claims 16383 bytes; buffer has none
  EXPECT_EQ(decodeModuleBinary(Bytes2, &Err), nullptr);
}

TEST(BinaryCodec, RejectsHugeVRegCountWithoutIterating) {
  // One function whose vreg count is the maximal 10-byte varint (2^64-1).
  // A bitmap-size guard of (N + 7) / 8 wraps to 0 for counts this large,
  // admitting an empty bitmap and sending the createVReg loop ~2^64
  // iterations; the decoder must bound the count itself, not the wrapped
  // byte size. This test hangs (or dies on OOM) if that guard regresses.
  std::string Bytes = "CIR2";
  Bytes += '\x00'; // module name: empty
  Bytes += '\x01'; // one function
  Bytes += '\x01'; // function name: 1 byte
  Bytes += 'f';
  for (int I = 0; I < 9; ++I)
    Bytes += '\xFF';
  Bytes += '\x01'; // vreg count = 2^64 - 1
  std::string Err;
  EXPECT_EQ(decodeModuleBinary(Bytes, &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(BinaryCodec, RejectsNonCanonicalVarints) {
  // An empty module whose function count is a 10-byte varint with a bit
  // set past the 64-bit range. The decode shift would silently discard
  // that bit and yield 0 — the same module as the canonical one-byte
  // encoding — so two distinct byte strings would decode equal. The
  // decoder must reject the overlong form and keep the canonical one.
  std::string Canonical = "CIR2";
  Canonical += '\x00'; // module name: empty
  Canonical += '\x00'; // zero functions
  ASSERT_NE(decodeModuleBinary(Canonical), nullptr);

  std::string Overlong = "CIR2";
  Overlong += '\x00';
  for (int I = 0; I < 9; ++I)
    Overlong += '\x80'; // continuations, all payload bits zero
  Overlong += '\x02';   // bit 64: out of range
  std::string Err;
  EXPECT_EQ(decodeModuleBinary(Overlong, &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// AllocRequestV2 payload codec
//===----------------------------------------------------------------------===//

AllocRequest binaryRequestFor(const Module &M) {
  AllocRequest R;
  R.Config = RegisterConfig(8, 6, 2, 2);
  R.Mode = FrequencyMode::Static;
  R.DeadlineMs = 1500;
  EXPECT_TRUE(encodeModuleBinary(M, R.ModuleBinary));
  return R;
}

TEST(BinaryCodec, RequestPayloadRoundTrips) {
  auto M = smallModule();
  ASSERT_TRUE(M);
  AllocRequest R = binaryRequestFor(*M);
  std::string Payload = encodeAllocRequestV2(R);

  AllocRequest Out;
  std::string Err;
  ASSERT_TRUE(parseAllocRequestV2(Payload, Out, &Err)) << Err;
  EXPECT_EQ(Out.ModuleBinary, R.ModuleBinary);
  EXPECT_TRUE(Out.ModuleText.empty());
  EXPECT_EQ(Out.Config.IntCallerSave, R.Config.IntCallerSave);
  EXPECT_EQ(Out.Config.FloatCallerSave, R.Config.FloatCallerSave);
  EXPECT_EQ(Out.Mode, R.Mode);
  EXPECT_EQ(Out.DeadlineMs, R.DeadlineMs);
  EXPECT_EQ(Out.Options.canonicalKey(), R.Options.canonicalKey());

  // The headers are byte-identical to the v1 form: everything before the
  // module section parses with the v1 parser once a module is appended.
  std::string HeaderPart = Payload.substr(0, Payload.find("module-bytes:"));
  AllocRequest V1;
  ASSERT_TRUE(
      parseAllocRequest(HeaderPart + "module:\nmodule m\n", V1, &Err))
      << Err;
  EXPECT_EQ(V1.Config.IntCallerSave, R.Config.IntCallerSave);
  EXPECT_EQ(V1.Mode, R.Mode);
  EXPECT_EQ(V1.DeadlineMs, R.DeadlineMs);
}

TEST(BinaryCodec, ConvenienceEncoderFillsModuleBinary) {
  auto M = smallModule();
  ASSERT_TRUE(M);
  AllocRequest R;
  R.ModuleText = "stale text that must be cleared";
  std::string Payload, Err;
  ASSERT_TRUE(encodeAllocRequestV2(R, *M, Payload, &Err)) << Err;
  EXPECT_TRUE(R.ModuleText.empty());
  EXPECT_FALSE(R.ModuleBinary.empty());

  AllocRequest Out;
  ASSERT_TRUE(parseAllocRequestV2(Payload, Out, &Err)) << Err;
  auto D = decodeModuleBinary(Out.ModuleBinary, &Err);
  ASSERT_TRUE(D) << Err;
  EXPECT_EQ(printToString(*D), printToString(*M));
}

TEST(BinaryCodec, RequestParserRejectsMalformedPayloads) {
  auto M = smallModule();
  ASSERT_TRUE(M);
  AllocRequest R = binaryRequestFor(*M);
  std::string Good = encodeAllocRequestV2(R);

  AllocRequest Out;
  std::string Err;

  // Truncated module bytes: declared count exceeds what is present.
  EXPECT_FALSE(
      parseAllocRequestV2(Good.substr(0, Good.size() - 1), Out, &Err));
  // Extra bytes past the declared count.
  EXPECT_FALSE(parseAllocRequestV2(Good + "x", Out, &Err));

  // Hand-built payloads around the module-bytes header itself.
  auto WithModuleBytes = [&](const std::string &Header) {
    return "config: 8,6,2,2\nmode: static\n" + Header;
  };
  EXPECT_FALSE(parseAllocRequestV2(
      WithModuleBytes("module-bytes: -1\n"), Out, &Err));
  EXPECT_FALSE(parseAllocRequestV2(
      WithModuleBytes("module-bytes: banana\n"), Out, &Err));
  EXPECT_FALSE(parseAllocRequestV2(
      WithModuleBytes("module-bytes: 007\nABCDEFG"), Out, &Err));
  EXPECT_FALSE(parseAllocRequestV2(
      WithModuleBytes("module-bytes: 99999999\nAB"), Out, &Err));
  // Missing module section entirely.
  EXPECT_FALSE(parseAllocRequestV2("config: 8,6,2,2\nmode: static\n", Out,
                                   &Err));
  // Zero-length module.
  EXPECT_FALSE(parseAllocRequestV2(
      WithModuleBytes("module-bytes: 0\n"), Out, &Err));
  // Unknown header key.
  EXPECT_FALSE(parseAllocRequestV2(
      "config: 8,6,2,2\nmode: static\nshoe-size: 11\nmodule-bytes: 1\nA",
      Out, &Err));
  // v1's module: section is not valid in a v2 payload.
  EXPECT_FALSE(parseAllocRequestV2(
      "config: 8,6,2,2\nmode: static\nmodule:\nmodule m\n", Out, &Err));
}

} // namespace
