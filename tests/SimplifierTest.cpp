//===- tests/SimplifierTest.cpp - Simplification phase unit tests ---------===//

#include "TestUtil.h"
#include "regalloc/Simplifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

using namespace ccra;

namespace {

TEST(Simplifier, UnconstrainedGraphFullySimplifies) {
  ScenarioBuilder S(RegisterConfig(3, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 100, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, /*Optimistic=*/false);
  EXPECT_EQ(R.Stack.size(), 2u);
  EXPECT_TRUE(R.SpilledNodes.empty());
  EXPECT_FALSE(R.PushedOptimistically[A]);
  EXPECT_FALSE(R.PushedOptimistically[B]);
}

TEST(Simplifier, KeyOrdersUnconstrainedRemovals) {
  // Three independent nodes, all unconstrained: removal order follows the
  // key ascending, so the largest key ends up on top of the stack.
  ScenarioBuilder S(RegisterConfig(4, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 100, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  unsigned C = S.addRange(RegBank::Int, 100, 0, false);
  AllocationContext &Ctx = S.context();
  std::vector<double> Keys = {2.0, 0.5, 1.0};
  SimplifyResult R = Simplifier::run(
      Ctx, false, [&](const LiveRange &LR) { return Keys[LR.Id]; });
  EXPECT_EQ(R.Stack, (std::vector<unsigned>{B, C, A}));
}

TEST(Simplifier, CliqueBeyondRegistersSpillsCheapest) {
  // 3-clique, 2 registers: exactly one node must be spilled — the one with
  // the smallest spillCost/degree.
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 900, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false); // cheapest
  unsigned C = S.addRange(RegBank::Int, 900, 0, false);
  S.addEdge(A, B);
  S.addEdge(B, C);
  S.addEdge(A, C);
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, false);
  ASSERT_EQ(R.SpilledNodes.size(), 1u);
  EXPECT_EQ(R.SpilledNodes[0], B);
  EXPECT_EQ(R.Stack.size(), 2u);
}

TEST(Simplifier, OptimisticPushesInsteadOfSpilling) {
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 900, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  unsigned C = S.addRange(RegBank::Int, 900, 0, false);
  S.addEdge(A, B);
  S.addEdge(B, C);
  S.addEdge(A, C);
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, /*Optimistic=*/true);
  EXPECT_TRUE(R.SpilledNodes.empty());
  EXPECT_EQ(R.Stack.size(), 3u);
  EXPECT_TRUE(R.PushedOptimistically[B]);
  EXPECT_FALSE(R.PushedOptimistically[A]);
}

TEST(Simplifier, NoSpillNodesAreNeverSpillVictims) {
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 900, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  unsigned C = S.addRange(RegBank::Int, 900, 0, false);
  AllocationContext &Ctx = S.context();
  Ctx.LRS.range(B).NoSpill = true; // cheapest but untouchable
  Ctx.IG.addEdge(A, B);
  Ctx.IG.addEdge(B, C);
  Ctx.IG.addEdge(A, C);
  SimplifyResult R = Simplifier::run(Ctx, false);
  for (unsigned Node : R.SpilledNodes)
    EXPECT_NE(Node, B);
}

TEST(Simplifier, BanksHaveIndependentThresholds) {
  // An int node with degree 2 is unconstrained when the int bank has 3
  // registers, even if the float bank has only 1.
  ScenarioBuilder S(RegisterConfig(3, 1, 0, 0), 100);
  unsigned I1 = S.addRange(RegBank::Int, 100, 0, false);
  unsigned I2 = S.addRange(RegBank::Int, 100, 0, false);
  unsigned I3 = S.addRange(RegBank::Int, 100, 0, false);
  unsigned F1 = S.addRange(RegBank::Float, 100, 0, false);
  unsigned F2 = S.addRange(RegBank::Float, 100, 0, false);
  S.addEdge(I1, I2);
  S.addEdge(I2, I3);
  S.addEdge(I1, I3);
  S.addEdge(F1, F2); // float 2-clique with 1 register: one spills
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, false);
  ASSERT_EQ(R.SpilledNodes.size(), 1u);
  EXPECT_TRUE(R.SpilledNodes[0] == F1 || R.SpilledNodes[0] == F2);
}

TEST(Simplifier, RefusedRegistersLowerTheColorLimit) {
  // 2 registers, a 2-clique — normally colorable. With one register
  // refused, the effective limit is 1 and one node must be spilled (if it
  // were pushed as guaranteed, color assignment would fail).
  ScenarioBuilder S(RegisterConfig(0, 0, 2, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 900, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  Ctx.RefusedCalleeRegs.push_back(PhysReg(RegBank::Int, 1));
  SimplifyResult R = Simplifier::run(Ctx, false);
  ASSERT_EQ(R.SpilledNodes.size(), 1u);
  EXPECT_EQ(R.SpilledNodes[0], B);
}

TEST(Simplifier, CascadingRemovalUnlocksNeighbors) {
  // A path A-B-C-D with 2 registers: ends have degree 1 (< 2), and peeling
  // them unlocks the middle — everything simplifies, nothing spills.
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 100, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  unsigned C = S.addRange(RegBank::Int, 100, 0, false);
  unsigned D = S.addRange(RegBank::Int, 100, 0, false);
  S.addEdge(A, B);
  S.addEdge(B, C);
  S.addEdge(C, D);
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, false);
  EXPECT_TRUE(R.SpilledNodes.empty());
  EXPECT_EQ(R.Stack.size(), 4u);
}

// --- Worklist vs reference equivalence ----------------------------------
//
// run() and runReference() must produce byte-identical results on every
// input: same stack, same spill set, same optimistic flags. The scenarios
// below sweep seeds, both key strategies, optimistic on/off, NoSpill
// flags, and refused-callee locking.

/// Pseudo-random scenario over both banks with mixed costs, NoSpill flags
/// and ~15% edge density; deterministic in \p Seed.
AllocationContext &buildEquivalenceScenario(ScenarioBuilder &S, uint64_t Seed,
                                            unsigned NumNodes) {
  uint64_t X = Seed * 0x9E3779B97F4A7C15ull + 1;
  auto Next = [&X]() {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<unsigned>(X >> 33);
  };
  for (unsigned I = 0; I < NumNodes; ++I) {
    RegBank Bank = Next() % 4 == 0 ? RegBank::Float : RegBank::Int;
    double Refs = 1.0 + Next() % 997;
    double CallerCost = Next() % 311;
    S.addRange(Bank, Refs, CallerCost, /*ContainsCall=*/Next() % 2 == 0);
  }
  for (unsigned A = 0; A < NumNodes; ++A)
    for (unsigned B = A + 1; B < NumNodes; ++B)
      if (Next() % 100 < 15)
        S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  for (unsigned I = 0; I < NumNodes; ++I)
    if (Next() % 11 == 0)
      Ctx.LRS.range(I).NoSpill = true;
  return Ctx;
}

void expectIdenticalResults(const SimplifyResult &A, const SimplifyResult &B) {
  EXPECT_EQ(A.Stack, B.Stack);
  EXPECT_EQ(A.SpilledNodes, B.SpilledNodes);
  EXPECT_EQ(A.PushedOptimistically, B.PushedOptimistically);
}

// The two §5 key strategies, as pure functions of the live range (what the
// improved allocator feeds the simplifier).
double maxBenefitKey(const LiveRange &LR) {
  return std::max(LR.benefitCaller(), LR.benefitCallee());
}

double deltaBenefitKey(const LiveRange &LR) {
  double Caller = LR.benefitCaller();
  double Callee = LR.benefitCallee();
  if (Caller >= 0.0 && Callee >= 0.0)
    return std::abs(Caller - Callee);
  return std::max(Caller, Callee);
}

TEST(SimplifierEquivalence, WorklistMatchesReferenceAcrossSeedsKeysModes) {
  struct NamedKey {
    const char *Name;
    Simplifier::KeyFn Key;
  };
  const NamedKey Keys[] = {
      {"id-order", nullptr},
      {"max-benefit", maxBenefitKey},
      {"delta", deltaBenefitKey},
  };
  for (uint64_t Seed = 1; Seed <= 6; ++Seed)
    for (bool Optimistic : {false, true})
      for (const NamedKey &NK : Keys) {
        SCOPED_TRACE(testing::Message() << "seed=" << Seed << " optimistic="
                                        << Optimistic << " key=" << NK.Name);
        ScenarioBuilder S(RegisterConfig(3, 1, 2, 1), 100);
        AllocationContext &Ctx = buildEquivalenceScenario(S, Seed, 40);
        expectIdenticalResults(
            Simplifier::run(Ctx, Optimistic, NK.Key),
            Simplifier::runReference(Ctx, Optimistic, NK.Key));
      }
}

TEST(SimplifierEquivalence, UniformKeysTieBreakToLowestIndex) {
  // Every node identical and unconstrained with an everywhere-equal key:
  // both implementations must fall back to index order — the documented
  // lowest-index tie-break, and the hardest case for a heap to preserve.
  ScenarioBuilder S(RegisterConfig(4, 0, 0, 0), 100);
  for (unsigned I = 0; I < 12; ++I)
    S.addRange(RegBank::Int, 100, 0, false);
  AllocationContext &Ctx = S.context();
  Simplifier::KeyFn Constant = [](const LiveRange &) { return 1.0; };
  SimplifyResult A = Simplifier::run(Ctx, false, Constant);
  expectIdenticalResults(A, Simplifier::runReference(Ctx, false, Constant));
  std::vector<unsigned> Ascending(12);
  for (unsigned I = 0; I < 12; ++I)
    Ascending[I] = I;
  EXPECT_EQ(A.Stack, Ascending);
}

TEST(SimplifierEquivalence, RefusedCalleeRegistersLockIdentically) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed)
    for (bool Optimistic : {false, true}) {
      SCOPED_TRACE(testing::Message()
                   << "seed=" << Seed << " optimistic=" << Optimistic);
      ScenarioBuilder S(RegisterConfig(0, 0, 3, 2), 100);
      AllocationContext &Ctx = buildEquivalenceScenario(S, Seed, 30);
      Ctx.RefusedCalleeRegs = {PhysReg(RegBank::Int, 1),
                               PhysReg(RegBank::Int, 2),
                               PhysReg(RegBank::Float, 0)};
      expectIdenticalResults(Simplifier::run(Ctx, Optimistic, deltaBenefitKey),
                             Simplifier::runReference(Ctx, Optimistic,
                                                      deltaBenefitKey));
    }
}

TEST(SimplifierEquivalence, EmergencyNoSpillPathMatches) {
  // A 4-clique of unspillable nodes over 2 registers: the victim scan finds
  // nothing and both implementations must take the emergency path.
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  for (unsigned I = 0; I < 4; ++I)
    S.addRange(RegBank::Int, 100 + I, 0, false);
  for (unsigned A = 0; A < 4; ++A)
    for (unsigned B = A + 1; B < 4; ++B)
      S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  for (unsigned I = 0; I < 4; ++I)
    Ctx.LRS.range(I).NoSpill = true;
  SimplifyResult A = Simplifier::run(Ctx, false);
  expectIdenticalResults(A, Simplifier::runReference(Ctx, false));
  EXPECT_TRUE(A.SpilledNodes.empty()); // NoSpill nodes are pushed, not spilled
  EXPECT_EQ(A.Stack.size(), 4u);
}

} // namespace
