//===- tests/SimplifierTest.cpp - Simplification phase unit tests ---------===//

#include "TestUtil.h"
#include "regalloc/Simplifier.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ccra;

namespace {

TEST(Simplifier, UnconstrainedGraphFullySimplifies) {
  ScenarioBuilder S(RegisterConfig(3, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 100, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, /*Optimistic=*/false);
  EXPECT_EQ(R.Stack.size(), 2u);
  EXPECT_TRUE(R.SpilledNodes.empty());
  EXPECT_FALSE(R.PushedOptimistically[A]);
  EXPECT_FALSE(R.PushedOptimistically[B]);
}

TEST(Simplifier, KeyOrdersUnconstrainedRemovals) {
  // Three independent nodes, all unconstrained: removal order follows the
  // key ascending, so the largest key ends up on top of the stack.
  ScenarioBuilder S(RegisterConfig(4, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 100, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  unsigned C = S.addRange(RegBank::Int, 100, 0, false);
  AllocationContext &Ctx = S.context();
  std::vector<double> Keys = {2.0, 0.5, 1.0};
  SimplifyResult R = Simplifier::run(
      Ctx, false, [&](const LiveRange &LR) { return Keys[LR.Id]; });
  EXPECT_EQ(R.Stack, (std::vector<unsigned>{B, C, A}));
}

TEST(Simplifier, CliqueBeyondRegistersSpillsCheapest) {
  // 3-clique, 2 registers: exactly one node must be spilled — the one with
  // the smallest spillCost/degree.
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 900, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false); // cheapest
  unsigned C = S.addRange(RegBank::Int, 900, 0, false);
  S.addEdge(A, B);
  S.addEdge(B, C);
  S.addEdge(A, C);
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, false);
  ASSERT_EQ(R.SpilledNodes.size(), 1u);
  EXPECT_EQ(R.SpilledNodes[0], B);
  EXPECT_EQ(R.Stack.size(), 2u);
}

TEST(Simplifier, OptimisticPushesInsteadOfSpilling) {
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 900, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  unsigned C = S.addRange(RegBank::Int, 900, 0, false);
  S.addEdge(A, B);
  S.addEdge(B, C);
  S.addEdge(A, C);
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, /*Optimistic=*/true);
  EXPECT_TRUE(R.SpilledNodes.empty());
  EXPECT_EQ(R.Stack.size(), 3u);
  EXPECT_TRUE(R.PushedOptimistically[B]);
  EXPECT_FALSE(R.PushedOptimistically[A]);
}

TEST(Simplifier, NoSpillNodesAreNeverSpillVictims) {
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 900, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  unsigned C = S.addRange(RegBank::Int, 900, 0, false);
  AllocationContext &Ctx = S.context();
  Ctx.LRS.range(B).NoSpill = true; // cheapest but untouchable
  Ctx.IG.addEdge(A, B);
  Ctx.IG.addEdge(B, C);
  Ctx.IG.addEdge(A, C);
  SimplifyResult R = Simplifier::run(Ctx, false);
  for (unsigned Node : R.SpilledNodes)
    EXPECT_NE(Node, B);
}

TEST(Simplifier, BanksHaveIndependentThresholds) {
  // An int node with degree 2 is unconstrained when the int bank has 3
  // registers, even if the float bank has only 1.
  ScenarioBuilder S(RegisterConfig(3, 1, 0, 0), 100);
  unsigned I1 = S.addRange(RegBank::Int, 100, 0, false);
  unsigned I2 = S.addRange(RegBank::Int, 100, 0, false);
  unsigned I3 = S.addRange(RegBank::Int, 100, 0, false);
  unsigned F1 = S.addRange(RegBank::Float, 100, 0, false);
  unsigned F2 = S.addRange(RegBank::Float, 100, 0, false);
  S.addEdge(I1, I2);
  S.addEdge(I2, I3);
  S.addEdge(I1, I3);
  S.addEdge(F1, F2); // float 2-clique with 1 register: one spills
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, false);
  ASSERT_EQ(R.SpilledNodes.size(), 1u);
  EXPECT_TRUE(R.SpilledNodes[0] == F1 || R.SpilledNodes[0] == F2);
}

TEST(Simplifier, RefusedRegistersLowerTheColorLimit) {
  // 2 registers, a 2-clique — normally colorable. With one register
  // refused, the effective limit is 1 and one node must be spilled (if it
  // were pushed as guaranteed, color assignment would fail).
  ScenarioBuilder S(RegisterConfig(0, 0, 2, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 900, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  S.addEdge(A, B);
  AllocationContext &Ctx = S.context();
  Ctx.RefusedCalleeRegs.push_back(PhysReg(RegBank::Int, 1));
  SimplifyResult R = Simplifier::run(Ctx, false);
  ASSERT_EQ(R.SpilledNodes.size(), 1u);
  EXPECT_EQ(R.SpilledNodes[0], B);
}

TEST(Simplifier, CascadingRemovalUnlocksNeighbors) {
  // A path A-B-C-D with 2 registers: ends have degree 1 (< 2), and peeling
  // them unlocks the middle — everything simplifies, nothing spills.
  ScenarioBuilder S(RegisterConfig(2, 0, 0, 0), 100);
  unsigned A = S.addRange(RegBank::Int, 100, 0, false);
  unsigned B = S.addRange(RegBank::Int, 100, 0, false);
  unsigned C = S.addRange(RegBank::Int, 100, 0, false);
  unsigned D = S.addRange(RegBank::Int, 100, 0, false);
  S.addEdge(A, B);
  S.addEdge(B, C);
  S.addEdge(C, D);
  AllocationContext &Ctx = S.context();
  SimplifyResult R = Simplifier::run(Ctx, false);
  EXPECT_TRUE(R.SpilledNodes.empty());
  EXPECT_EQ(R.Stack.size(), 4u);
}

} // namespace
