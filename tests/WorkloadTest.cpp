//===- tests/WorkloadTest.cpp - Workload generator tests ------------------===//

#include "analysis/Frequency.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "workloads/RandomProgram.h"
#include "workloads/SpecProxies.h"
#include "workloads/SyntheticBuilder.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ccra;

namespace {

std::string printToString(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

unsigned countCalls(const Module &M) {
  unsigned Count = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const Instruction &I : BB->instructions())
        Count += I.isCall() ? 1 : 0;
  return Count;
}

// --- SyntheticFunctionBuilder -----------------------------------------------

TEST(SyntheticBuilder, LoopShapesVerify) {
  Module M("m");
  Function &F = *M.createFunction("f");
  SyntheticFunctionBuilder B(F, 1);
  std::vector<VirtReg> Pool = B.makeValues(RegBank::Int, 4);
  LoopHandles Outer = B.beginLoop(10);
  LoopHandles Inner = B.beginLoop(20);
  B.touch(Pool, 5);
  B.endLoop(Inner);
  B.endLoop(Outer);
  B.useEach(Pool);
  B.finish();
  EXPECT_TRUE(verifyFunction(F, nullptr));
  M.setEntryFunction(&F);
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  // The inner loop body runs 200 times.
  double MaxFreq = 0;
  for (const auto &BB : F.blocks())
    MaxFreq = std::max(MaxFreq, Freq.blockFrequency(*BB));
  EXPECT_NEAR(MaxFreq, 200.0, 1e-6);
}

TEST(SyntheticBuilder, BranchShapesVerify) {
  Module M("m");
  Function &F = *M.createFunction("f");
  SyntheticFunctionBuilder B(F, 2);
  std::vector<VirtReg> Pool = B.makeValues(RegBank::Float, 3);
  BranchHandles Br = B.beginBranch(0.3);
  B.touch(Pool, 2);
  B.elseBranch(Br);
  B.localWork(RegBank::Float, 1, 2);
  B.endBranch(Br);
  B.useEach(Pool);
  B.finish();
  EXPECT_TRUE(verifyFunction(F, nullptr));
}

TEST(SyntheticBuilder, CirculantWebVerifiesAndBlocksChaitin) {
  Module M("m");
  Function &F = *M.createFunction("f");
  SyntheticFunctionBuilder B(F, 3);
  B.circulantWeb(RegBank::Int, 8, 3, 5, {});
  B.finish();
  EXPECT_TRUE(verifyFunction(F, nullptr));
}

TEST(SyntheticBuilder, UseEachReferencesEveryValue) {
  Module M("m");
  Function &F = *M.createFunction("f");
  SyntheticFunctionBuilder B(F, 4);
  std::vector<VirtReg> Pool = B.makeValues(RegBank::Int, 5);
  B.useEach(Pool);
  B.finish();
  std::vector<unsigned> UseCount(F.numVRegs(), 0);
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      for (VirtReg U : I.Uses)
        ++UseCount[U.Id];
  for (VirtReg R : Pool)
    EXPECT_GE(UseCount[R.Id], 1u) << R.Id;
}

// --- SPEC proxies ------------------------------------------------------------

TEST(SpecProxies, FourteenPrograms) {
  EXPECT_EQ(specProxyNames().size(), 14u);
}

TEST(SpecProxies, AllVerifyAndHaveEntry) {
  for (const std::string &Name : specProxyNames()) {
    SCOPED_TRACE(Name);
    std::unique_ptr<Module> M = buildSpecProxy(Name);
    EXPECT_TRUE(verifyModule(*M, nullptr));
    ASSERT_NE(M->getEntryFunction(), nullptr);
    EXPECT_GT(M->getEntryFunction()->countProgramInstructions(), 0u);
  }
}

TEST(SpecProxies, Deterministic) {
  for (const std::string &Name : specProxyNames()) {
    std::unique_ptr<Module> A = buildSpecProxy(Name);
    std::unique_ptr<Module> B = buildSpecProxy(Name);
    EXPECT_EQ(printToString(*A), printToString(*B)) << Name;
  }
}

TEST(SpecProxies, TomcatvHasNoCalls) {
  std::unique_ptr<Module> M = buildSpecProxy("tomcatv");
  EXPECT_EQ(M->functions().size(), 1u);
  EXPECT_EQ(countCalls(*M), 0u);
}

TEST(SpecProxies, CallHeavyProgramsHaveCalls) {
  EXPECT_GE(countCalls(*buildSpecProxy("eqntott")), 2u);
  EXPECT_GE(countCalls(*buildSpecProxy("li")), 5u);
  EXPECT_GE(countCalls(*buildSpecProxy("gcc")), 4u);
}

TEST(SpecProxies, HotFunctionsAreHot) {
  // The frequency analysis must make the proxy's hot function orders of
  // magnitude hotter than main.
  std::unique_ptr<Module> M = buildSpecProxy("eqntott");
  FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
  Function *Cmppt = M->getFunction("cmppt");
  ASSERT_NE(Cmppt, nullptr);
  EXPECT_GT(Freq.entryFrequency(*Cmppt), 1e5);
}

TEST(SpecProxies, FloatProgramsUseTheFloatBank) {
  for (const std::string &Name : {std::string("ear"), std::string("fpppp"),
                                  std::string("tomcatv")}) {
    std::unique_ptr<Module> M = buildSpecProxy(Name);
    unsigned FloatRegs = 0;
    for (const auto &F : M->functions())
      for (unsigned V = 0; V < F->numVRegs(); ++V)
        FloatRegs += F->vregBank(VirtReg(V)) == RegBank::Float ? 1 : 0;
    EXPECT_GT(FloatRegs, 10u) << Name;
  }
}

TEST(SpecProxies, BuildAllReturnsEverything) {
  auto All = buildAllSpecProxies();
  EXPECT_EQ(All.size(), 14u);
  for (const auto &[Name, M] : All)
    EXPECT_EQ(M->getName(), Name);
}

// --- Random programs ------------------------------------------------------------

TEST(RandomProgram, VerifiesAcrossSeeds) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    RandomProgramParams Params;
    Params.Seed = Seed;
    std::unique_ptr<Module> M = generateRandomProgram(Params);
    EXPECT_TRUE(verifyModule(*M, nullptr)) << Seed;
  }
}

TEST(RandomProgram, DeterministicPerSeed) {
  RandomProgramParams Params;
  Params.Seed = 77;
  auto A = generateRandomProgram(Params);
  auto B = generateRandomProgram(Params);
  EXPECT_EQ(printToString(*A), printToString(*B));
}

TEST(RandomProgram, SeedsProduceDifferentPrograms) {
  RandomProgramParams A, B;
  A.Seed = 1;
  B.Seed = 2;
  EXPECT_NE(printToString(*generateRandomProgram(A)),
            printToString(*generateRandomProgram(B)));
}

TEST(RandomProgram, CallGraphIsAcyclicByConstruction) {
  // Functions only call earlier-created functions; the frequency analysis
  // must converge to stable invocation counts.
  RandomProgramParams Params;
  Params.Seed = 5;
  Params.NumFunctions = 6;
  Params.CallProbability = 0.8;
  std::unique_ptr<Module> M = generateRandomProgram(Params);
  FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
  for (const auto &F : M->functions())
    EXPECT_GE(Freq.entryFrequency(*F), 0.0);
  EXPECT_NEAR(Freq.entryFrequency(*M->getEntryFunction()), 1.0, 1e-9);
}

} // namespace
