//===- tests/LiveRangeTest.cpp - Live-range metrics unit tests ------------===//

#include "analysis/Frequency.h"
#include "analysis/Liveness.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "regalloc/LiveRange.h"
#include "regalloc/VRegClasses.h"

#include <cmath>

#include <gtest/gtest.h>

using namespace ccra;

namespace {

// --- VRegClasses -------------------------------------------------------------

TEST(VRegClassesTest, SingletonsByDefault) {
  VRegClasses C(4);
  EXPECT_EQ(C.find(VirtReg(2)), VirtReg(2));
  EXPECT_FALSE(C.sameClass(VirtReg(0), VirtReg(1)));
}

TEST(VRegClassesTest, MergeAndFind) {
  VRegClasses C(5);
  C.merge(VirtReg(0), VirtReg(1));
  C.merge(VirtReg(1), VirtReg(4));
  EXPECT_TRUE(C.sameClass(VirtReg(0), VirtReg(4)));
  EXPECT_FALSE(C.sameClass(VirtReg(0), VirtReg(2)));
  auto Members = C.classMembers(VirtReg(4));
  EXPECT_EQ(Members.size(), 3u);
}

TEST(VRegClassesTest, GrowPreservesClasses) {
  VRegClasses C(2);
  C.merge(VirtReg(0), VirtReg(1));
  C.grow(6);
  EXPECT_TRUE(C.sameClass(VirtReg(0), VirtReg(1)));
  EXPECT_EQ(C.find(VirtReg(5)), VirtReg(5));
}

// --- LiveRange metrics ----------------------------------------------------------

struct CallCrossingFixture {
  // entry: a = imm; b = imm; arg = imm
  //        call leaf(arg)        ; a live across, b defined after? no:
  //        c = call result
  //        use a; use c          ; b last used before the call
  Module M{"m"};
  Function *Leaf, *F;
  VirtReg A, B2, Arg, CallResult;
  FrequencyInfo Freq;
  Liveness LV;
  VRegClasses Classes;
  LiveRangeSet LRS;

  CallCrossingFixture() {
    Leaf = M.createFunction("leaf");
    {
      IRBuilder B(*Leaf);
      B.startBlock("entry");
      B.buildRet();
    }
    F = M.createFunction("main");
    IRBuilder B(*F);
    B.startBlock("entry");
    A = B.buildLoadImm(1);
    B2 = B.buildLoadImm(2);
    Arg = B.buildBinary(Opcode::Add, B2, B2); // last use of B2 before call
    CallResult = B.buildCall(Leaf, {Arg}, {RegBank::Int})[0];
    VirtReg S = B.buildBinary(Opcode::Add, A, CallResult);
    B.buildRet(S);
    M.setEntryFunction(F);
    EXPECT_TRUE(verifyModule(M, nullptr));
    Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
    LV = Liveness::compute(*F);
    Classes.grow(F->numVRegs());
    LRS = LiveRangeSet::build(*F, LV, Freq, Classes);
  }

  const LiveRange &rangeOf(VirtReg R) {
    int Id = LRS.rangeIdOf(R);
    EXPECT_GE(Id, 0);
    return LRS.range(static_cast<unsigned>(Id));
  }
};

TEST(LiveRangeMetrics, CallSiteEnumeration) {
  CallCrossingFixture Fx;
  ASSERT_EQ(Fx.LRS.callSites().size(), 1u);
  EXPECT_DOUBLE_EQ(Fx.LRS.callSites()[0].Freq, 1.0);
}

TEST(LiveRangeMetrics, LiveThroughValueCrossesCall) {
  CallCrossingFixture Fx;
  const LiveRange &LR = Fx.rangeOf(Fx.A);
  EXPECT_TRUE(LR.ContainsCall);
  EXPECT_EQ(LR.CrossedCalls.size(), 1u);
  EXPECT_DOUBLE_EQ(LR.CallerSaveCost, 2.0); // one save + one restore
}

TEST(LiveRangeMetrics, ArgumentDyingAtCallDoesNotCross) {
  CallCrossingFixture Fx;
  EXPECT_FALSE(Fx.rangeOf(Fx.Arg).ContainsCall);
  EXPECT_FALSE(Fx.rangeOf(Fx.B2).ContainsCall);
}

TEST(LiveRangeMetrics, CallResultDoesNotCrossItsOwnCall) {
  CallCrossingFixture Fx;
  EXPECT_FALSE(Fx.rangeOf(Fx.CallResult).ContainsCall);
}

TEST(LiveRangeMetrics, WeightedRefsCountDefsAndUses) {
  CallCrossingFixture Fx;
  // A: 1 def + 1 use, at frequency 1.
  EXPECT_DOUBLE_EQ(Fx.rangeOf(Fx.A).WeightedRefs, 2.0);
  // B2: 1 def + 2 uses.
  EXPECT_DOUBLE_EQ(Fx.rangeOf(Fx.B2).WeightedRefs, 3.0);
  EXPECT_EQ(Fx.rangeOf(Fx.B2).NumRefs, 3u);
}

TEST(LiveRangeMetrics, BenefitFunctions) {
  CallCrossingFixture Fx;
  const LiveRange &LR = Fx.rangeOf(Fx.A);
  // benefitCaller = refs - callerCost = 2 - 2 = 0;
  // benefitCallee = refs - 2*entryFreq = 2 - 2 = 0.
  EXPECT_DOUBLE_EQ(LR.benefitCaller(), 0.0);
  EXPECT_DOUBLE_EQ(LR.benefitCallee(), 0.0);
  EXPECT_DOUBLE_EQ(LR.spillCost(), 2.0);
}

TEST(LiveRangeMetrics, NoSpillFlagFromTemps) {
  Module M("m");
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg T = F.createSpillTemp(RegBank::Int);
  Instruction Load(Opcode::SpillLoad);
  Load.Defs.push_back(T);
  Load.SpillSlot = F.createSpillSlot();
  B.getInsertBlock()->append(std::move(Load));
  B.buildRet(T);
  M.setEntryFunction(&F);
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  Liveness LV = Liveness::compute(F);
  VRegClasses Classes(F.numVRegs());
  LiveRangeSet LRS = LiveRangeSet::build(F, LV, Freq, Classes);
  const LiveRange &LR = LRS.range(static_cast<unsigned>(LRS.rangeIdOf(T)));
  EXPECT_TRUE(LR.NoSpill);
  EXPECT_TRUE(std::isinf(LR.spillCost()));
}

TEST(LiveRangeMetrics, CoalescedClassIsOneRange) {
  Module M("m");
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg C = B.buildMove(A);
  B.buildRet(C);
  M.setEntryFunction(&F);
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  Liveness LV = Liveness::compute(F);
  VRegClasses Classes(F.numVRegs());
  Classes.merge(A, C);
  LiveRangeSet LRS = LiveRangeSet::build(F, LV, Freq, Classes);
  EXPECT_EQ(LRS.rangeIdOf(A), LRS.rangeIdOf(C));
  const LiveRange &LR = LRS.range(static_cast<unsigned>(LRS.rangeIdOf(A)));
  // Refs of both members accumulate: A def + A use + C def + C use.
  EXPECT_DOUBLE_EQ(LR.WeightedRefs, 4.0);
}

TEST(LiveRangeMetrics, NumBlocksSpansLiveRegion) {
  // A value defined in entry and used two blocks later spans all three.
  Module M("m");
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  BasicBlock *Mid = F.createBlock("mid");
  B.buildBr(Mid);
  B.setInsertBlock(Mid);
  VirtReg Unrelated = B.buildLoadImm(2);
  VirtReg Dead = B.buildBinary(Opcode::Add, Unrelated, Unrelated);
  (void)Dead;
  BasicBlock *End = F.createBlock("end");
  B.buildBr(End);
  B.setInsertBlock(End);
  B.buildRet(A);
  M.setEntryFunction(&F);
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  Liveness LV = Liveness::compute(F);
  VRegClasses Classes(F.numVRegs());
  LiveRangeSet LRS = LiveRangeSet::build(F, LV, Freq, Classes);
  EXPECT_EQ(LRS.range(static_cast<unsigned>(LRS.rangeIdOf(A))).NumBlocks, 3u);
  EXPECT_EQ(
      LRS.range(static_cast<unsigned>(LRS.rangeIdOf(Unrelated))).NumBlocks,
      1u);
}

TEST(LiveRangeMetrics, SpilledAwayRegisterHasNoRange) {
  // A register that no longer occurs in the code (e.g. fully rewritten by
  // spilling) gets no live range.
  Module M("m");
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg Ghost = F.createVReg(RegBank::Int); // never referenced
  B.buildRet(A);
  M.setEntryFunction(&F);
  FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
  Liveness LV = Liveness::compute(F);
  VRegClasses Classes(F.numVRegs());
  LiveRangeSet LRS = LiveRangeSet::build(F, LV, Freq, Classes);
  EXPECT_EQ(LRS.rangeIdOf(Ghost), -1);
  EXPECT_GE(LRS.rangeIdOf(A), 0);
}

} // namespace
