//===- tests/CoalescerTest.cpp - Coalescing phase unit tests --------------===//

#include "analysis/Frequency.h"
#include "analysis/Liveness.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "regalloc/Coalescer.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/LiveRange.h"
#include "regalloc/VRegClasses.h"
#include "target/MachineDescription.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace ccra;

namespace {

unsigned countMoves(const Function &F) {
  unsigned Count = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      Count += I.isMove() ? 1 : 0;
  return Count;
}

struct CoalesceFixture {
  Module M{"m"};
  Function *F = nullptr;
  MachineDescription MD{RegisterConfig(4, 2, 2, 2)};

  CoalesceStats run(bool Aggressive = false) {
    M.setEntryFunction(F);
    EXPECT_TRUE(verifyModule(M, nullptr));
    FrequencyInfo Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
    Classes.grow(F->numVRegs());
    Liveness LV;
    CoalesceStats Stats =
        Coalescer::run(*F, Classes, MD, Freq, LV, Aggressive);
    EXPECT_TRUE(verifyModule(M, nullptr));
    return Stats;
  }

  VRegClasses Classes;
};

TEST(CoalescerTest, MergesSimpleCopy) {
  CoalesceFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg Copy = B.buildMove(A); // A dies here
  B.buildRet(Copy);
  CoalesceStats Stats = Fx.run();
  EXPECT_EQ(Stats.CoalescedMoves, 1u);
  EXPECT_TRUE(Fx.Classes.sameClass(A, Copy));
  EXPECT_EQ(countMoves(*Fx.F), 0u); // the copy was deleted
}

TEST(CoalescerTest, MergesCopyChains) {
  CoalesceFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg C1 = B.buildMove(A);
  VirtReg C2 = B.buildMove(C1);
  VirtReg C3 = B.buildMove(C2);
  B.buildRet(C3);
  CoalesceStats Stats = Fx.run();
  EXPECT_EQ(Stats.CoalescedMoves, 3u);
  EXPECT_TRUE(Fx.Classes.sameClass(A, C3));
  EXPECT_EQ(countMoves(*Fx.F), 0u);
}

TEST(CoalescerTest, KeepsInterferingCopy) {
  CoalesceFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg Copy = B.buildMove(A);
  B.buildBinaryInto(A, Opcode::Add, A, A); // A redefined while Copy lives
  VirtReg S = B.buildBinary(Opcode::Add, A, Copy);
  B.buildRet(S);
  CoalesceStats Stats = Fx.run();
  EXPECT_EQ(Stats.CoalescedMoves, 0u);
  EXPECT_FALSE(Fx.Classes.sameClass(A, Copy));
  EXPECT_EQ(countMoves(*Fx.F), 1u); // the copy must remain
}

TEST(CoalescerTest, ConservativeTestBlocksRiskyMergeAggressiveTakesIt) {
  // The copy's source and destination together conflict with more than N
  // significant-degree neighbors, so Briggs-conservative coalescing must
  // refuse — merging could turn a colorable graph into a spilling one.
  auto Build = [](Module &M) {
    Function *F = M.createFunction("main");
    IRBuilder B(*F);
    B.startBlock("entry");
    // N = 2 int registers. Build 3 long-lived values (significant degree)
    // overlapping both sides of a copy.
    std::vector<VirtReg> Frame;
    for (int I = 0; I < 3; ++I)
      Frame.push_back(B.buildLoadImm(I));
    VirtReg A = B.buildLoadImm(10);
    VirtReg Acc = B.buildBinary(Opcode::Add, A, Frame[0]);
    VirtReg Copy = B.buildMove(Acc);
    VirtReg S = B.buildBinary(Opcode::Add, Copy, Frame[1]);
    VirtReg S2 = B.buildBinary(Opcode::Add, S, Frame[2]);
    VirtReg S3 = B.buildBinary(Opcode::Add, S2, Frame[0]);
    VirtReg S4 = B.buildBinary(Opcode::Add, S3, Frame[1]);
    VirtReg S5 = B.buildBinary(Opcode::Add, S4, Frame[2]);
    B.buildRet(S5);
    M.setEntryFunction(F);
    return F;
  };

  Module M1("m1");
  Function *F1 = Build(M1);
  FrequencyInfo Freq1 = FrequencyInfo::compute(M1, FrequencyMode::Profile);
  VRegClasses Classes1(F1->numVRegs());
  Liveness LV1;
  MachineDescription Small(RegisterConfig(2, 2, 0, 0));
  CoalesceStats Conservative =
      Coalescer::run(*F1, Classes1, Small, Freq1, LV1, false);

  Module M2("m2");
  Function *F2 = Build(M2);
  FrequencyInfo Freq2 = FrequencyInfo::compute(M2, FrequencyMode::Profile);
  VRegClasses Classes2(F2->numVRegs());
  Liveness LV2;
  CoalesceStats Aggressive =
      Coalescer::run(*F2, Classes2, Small, Freq2, LV2, true);

  EXPECT_EQ(Conservative.CoalescedMoves, 0u);
  EXPECT_EQ(Aggressive.CoalescedMoves, 1u);
}

TEST(CoalescerTest, DeletesSelfCopyFromPreMergedClasses) {
  CoalesceFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg Copy = B.buildMove(A);
  B.buildRet(Copy);
  // Pre-merge the classes (as a previous round would have done): the move
  // is now a self copy and must be deleted without being counted again.
  Fx.Classes.grow(Fx.F->numVRegs());
  Fx.Classes.merge(A, Copy);
  CoalesceStats Stats = Fx.run();
  EXPECT_EQ(Stats.CoalescedMoves, 0u);
  EXPECT_EQ(countMoves(*Fx.F), 0u);
}

TEST(CoalescerTest, LivenessReturnedMatchesFinalCode) {
  CoalesceFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg Copy = B.buildMove(A);
  B.buildRet(Copy);
  Fx.M.setEntryFunction(Fx.F);
  FrequencyInfo Freq = FrequencyInfo::compute(Fx.M, FrequencyMode::Profile);
  Fx.Classes.grow(Fx.F->numVRegs());
  Liveness LV;
  Coalescer::run(*Fx.F, Fx.Classes, Fx.MD, Freq, LV, false);
  Liveness Fresh = Liveness::compute(*Fx.F);
  for (const auto &BB : Fx.F->blocks()) {
    EXPECT_TRUE(LV.liveIn(*BB) == Fresh.liveIn(*BB));
    EXPECT_TRUE(LV.liveOut(*BB) == Fresh.liveOut(*BB));
  }
}

TEST(CoalescerTest, IncrementalLivenessMatchesFreshCompute) {
  // The incremental mode renames/patches the liveness solution across
  // passes instead of recomputing it; the maintained solution must equal a
  // fresh dataflow run on the final code, for every combination of
  // aggressive coalescing and baseline seeding, across random programs.
  for (uint64_t Seed : {3u, 7u, 19u, 42u}) {
    RandomProgramParams Params;
    Params.Seed = Seed;
    Params.NumFunctions = 4;
    Params.RegionsPerFunction = 5;
    Params.IntValues = 10;
    Params.FloatValues = 5;
    for (bool Aggressive : {false, true})
      for (bool Seeded : {false, true}) {
        std::unique_ptr<Module> M = generateRandomProgram(Params);
        FrequencyInfo Freq =
            FrequencyInfo::compute(*M, FrequencyMode::Profile);
        MachineDescription MD{RegisterConfig(6, 4, 2, 2)};
        for (const auto &FPtr : M->functions()) {
          if (FPtr->isDeclaration())
            continue;
          Function &F = *FPtr;
          VRegClasses Classes(F.numVRegs());
          Liveness LV;
          CoalesceRequest Req;
          Req.Aggressive = Aggressive;
          Req.IncrementalLiveness = true;
          if (Seeded) {
            LV = Liveness::compute(F);
            Req.SeededLV = true;
          }
          LiveRangeSet LRS;
          InterferenceGraph IG;
          CoalesceStats Stats =
              Coalescer::run(F, Classes, MD, Freq, LV, Req, LRS, IG);
          EXPECT_TRUE(LV == Liveness::compute(F))
              << "seed " << Seed << " fn " << F.getName() << " aggressive "
              << Aggressive << " seeded " << Seeded;
          // The contract behind "at most one full compute per round":
          // exactly zero when seeded, exactly one otherwise.
          EXPECT_EQ(Stats.LivenessComputes, Seeded ? 0u : 1u);
          EXPECT_EQ(Stats.Passes,
                    Stats.LivenessComputes + Stats.IncrementalLVUpdates);
        }
      }
  }
}

TEST(CoalescerTest, IncrementalLivenessPreservesMergeDecisions) {
  // Same merges, same final code, either liveness mode.
  for (uint64_t Seed : {5u, 11u}) {
    RandomProgramParams Params;
    Params.Seed = Seed;
    Params.NumFunctions = 3;
    Params.RegionsPerFunction = 4;
    Params.IntValues = 8;
    Params.FloatValues = 4;
    std::unique_ptr<Module> A = generateRandomProgram(Params);
    std::unique_ptr<Module> B = generateRandomProgram(Params);
    MachineDescription MD{RegisterConfig(6, 4, 2, 2)};
    FrequencyInfo FreqA = FrequencyInfo::compute(*A, FrequencyMode::Profile);
    FrequencyInfo FreqB = FrequencyInfo::compute(*B, FrequencyMode::Profile);
    for (std::size_t I = 0; I < A->functions().size(); ++I) {
      Function &FA = *A->functions()[I];
      Function &FB = *B->functions()[I];
      if (FA.isDeclaration())
        continue;
      VRegClasses ClassesA(FA.numVRegs()), ClassesB(FB.numVRegs());
      Liveness LVA, LVB;
      CoalesceRequest ReqA;
      ReqA.IncrementalLiveness = true;
      CoalesceRequest ReqB;
      ReqB.IncrementalLiveness = false;
      LiveRangeSet LRSA, LRSB;
      InterferenceGraph IGA, IGB;
      CoalesceStats SA =
          Coalescer::run(FA, ClassesA, MD, FreqA, LVA, ReqA, LRSA, IGA);
      CoalesceStats SB =
          Coalescer::run(FB, ClassesB, MD, FreqB, LVB, ReqB, LRSB, IGB);
      EXPECT_EQ(SA.CoalescedMoves, SB.CoalescedMoves);
      EXPECT_EQ(SA.Passes, SB.Passes);
      EXPECT_EQ(countMoves(FA), countMoves(FB));
      EXPECT_EQ(LRSA.numRanges(), LRSB.numRanges());
      EXPECT_EQ(IGA.numEdges(), IGB.numEdges());
      for (unsigned V = 0; V < FA.numVRegs(); ++V)
        EXPECT_EQ(ClassesA.find(VirtReg(V)), ClassesB.find(VirtReg(V)));
    }
  }
}

TEST(CoalescerTest, FloatMovesCoalesceToo) {
  CoalesceFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildFLoadImm(1);
  VirtReg Copy = B.buildMove(A);
  VirtReg S = B.buildBinary(Opcode::FAdd, Copy, Copy);
  VirtReg R = B.buildCvtFloatToInt(S);
  B.buildRet(R);
  CoalesceStats Stats = Fx.run();
  EXPECT_EQ(Stats.CoalescedMoves, 1u);
}

} // namespace
