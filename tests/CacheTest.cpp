//===- tests/CacheTest.cpp - Allocation cache + shard ring coverage -------===//
//
// Tier-1 coverage for the caching-and-sharding tier (src/service/):
//
//  - AllocationCache unit behavior: miss-then-hit replay, per-function
//    reassembly (declarations included), the byte-bounded LRU eviction
//    policy, oversized-entry rejection, disabled-cache semantics, and
//    idempotent re-insertion (the publish race two shards can run);
//  - allocationCacheKey covers exactly the result-affecting request fields
//    and is blind to admission control (DeadlineMs) and execution
//    strategy (Jobs et al.);
//  - ConsistentHashRing: determinism across instances, full shard
//    coverage, rough balance, single-shard degeneration, and bounded key
//    movement when the shard count grows;
//  - a concurrent hit storm over one shared cache (the TSan stage runs
//    this binary; see tools/check.sh);
//  - the end-to-end contract: every committed fuzz corpus entry replayed
//    twice through a cache-enabled server, with the cached response
//    byte-identical to the cold one and both bit-identical to in-process
//    allocation.
//
//===----------------------------------------------------------------------===//

#include "core/EngineBuilder.h"
#include "fuzz/Corpus.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "service/AllocationCache.h"
#include "service/Client.h"
#include "service/Server.h"
#include "service/Sharding.h"
#include "support/Hash.h"
#include "workloads/SpecProxies.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ccra;

#ifndef CCRA_SOURCE_DIR
#define CCRA_SOURCE_DIR "."
#endif

namespace {

using FunctionRecord = AllocationCache::FunctionRecord;

/// A two-function module entry (one allocated function, one declaration)
/// whose reassembled IR is distinctive enough to catch ordering bugs.
struct SampleEntry {
  std::string Key;
  std::string IrHeader;
  CostBreakdown Totals;
  TelemetrySnapshot Telemetry;
  std::vector<FunctionRecord> Functions;
  std::string ExpectedIr;

  explicit SampleEntry(const std::string &Tag) {
    Key = "options for " + Tag + "\nmodule " + Tag + "\n";
    IrHeader = "module " + Tag + "\n";
    Totals = {1.5, 2.5, 0.25, 0.125};
    Telemetry.Counters["functions"] = 1;

    FunctionRecord Fn;
    Fn.HasSummary = true;
    Fn.Summary = {"f_" + Tag, {1.5, 2.5, 0.25, 0.125}, 2, 1, 0, 3, 2};
    Fn.Ir = "func @f_" + Tag + " {\nentry:\n  ret\n}\n\n";
    FunctionRecord Decl;
    Decl.HasSummary = false;
    Decl.Ir = "func @ext_" + Tag + " (external)\n\n";
    Functions = {Fn, Decl};
    ExpectedIr = IrHeader + Fn.Ir + Decl.Ir;
  }

  void insertInto(AllocationCache &C) const {
    C.insert(Key, IrHeader, Totals, Telemetry, Functions);
  }
};

TEST(AllocationCacheUnit, MissThenHitReplaysTheStoredResponse) {
  AllocationCache Cache(1u << 20);
  ASSERT_TRUE(Cache.enabled());
  SampleEntry E("m");

  AllocResponse Out;
  EXPECT_FALSE(Cache.lookup(E.Key, Out));
  E.insertInto(Cache);
  ASSERT_TRUE(Cache.lookup(E.Key, Out));

  // Reassembled byte-for-byte from the header and per-function slices,
  // declarations included; the response's function list carries only the
  // functions that had summaries.
  EXPECT_EQ(E.ExpectedIr, Out.AllocatedIr);
  EXPECT_TRUE(E.Totals == Out.Totals);
  ASSERT_EQ(1u, Out.Functions.size());
  EXPECT_EQ("f_m", Out.Functions[0].Name);
  EXPECT_EQ(1.0, Out.Telemetry.count("functions"));

  AllocationCacheStats S = Cache.stats();
  EXPECT_EQ(1u, S.Hits);
  EXPECT_EQ(1u, S.Misses);
  EXPECT_EQ(1u, S.Insertions);
  EXPECT_EQ(1u, S.Modules);
  EXPECT_EQ(2u, S.Functions);
  EXPECT_GT(S.Bytes, 0u);
}

TEST(AllocationCacheUnit, DisabledCacheNeverHitsAndStoresNothing) {
  AllocationCache Cache(0);
  EXPECT_FALSE(Cache.enabled());
  SampleEntry E("off");
  E.insertInto(Cache);
  AllocResponse Out;
  EXPECT_FALSE(Cache.lookup(E.Key, Out));
  AllocationCacheStats S = Cache.stats();
  EXPECT_EQ(0u, S.Insertions);
  EXPECT_EQ(0u, S.Modules);
  EXPECT_EQ(0u, S.Bytes);
}

TEST(AllocationCacheUnit, EvictsLeastRecentlyUsedModulesToFitTheBudget) {
  SampleEntry A("aaaa"), B("bbbb"), C("cccc");
  // Budget sized for exactly two entries (all three are the same shape).
  AllocationCache Probe(1u << 20);
  A.insertInto(Probe);
  const std::size_t OneEntry = Probe.stats().Bytes;
  ASSERT_GT(OneEntry, 0u);

  AllocationCache Cache(2 * OneEntry + OneEntry / 2);
  A.insertInto(Cache);
  B.insertInto(Cache);
  // Touch A so B is the LRU module when C arrives.
  AllocResponse Out;
  ASSERT_TRUE(Cache.lookup(A.Key, Out));
  C.insertInto(Cache);

  EXPECT_TRUE(Cache.lookup(A.Key, Out));
  EXPECT_FALSE(Cache.lookup(B.Key, Out)) << "LRU module survived eviction";
  EXPECT_TRUE(Cache.lookup(C.Key, Out));

  AllocationCacheStats S = Cache.stats();
  EXPECT_EQ(1u, S.Evictions);
  EXPECT_EQ(2u, S.Modules);
  EXPECT_LE(S.Bytes, Cache.capacityBytes());
}

TEST(AllocationCacheUnit, EntryLargerThanTheWholeBudgetIsNotAdmitted) {
  SampleEntry Small("s");
  AllocationCache Probe(1u << 20);
  Small.insertInto(Probe);
  AllocationCache Cache(Probe.stats().Bytes / 2);

  Small.insertInto(Cache);
  AllocResponse Out;
  EXPECT_FALSE(Cache.lookup(Small.Key, Out));
  AllocationCacheStats S = Cache.stats();
  EXPECT_EQ(0u, S.Insertions);
  EXPECT_EQ(0u, S.Evictions) << "rejection must not churn resident entries";
}

TEST(AllocationCacheUnit, ReinsertingAnExistingKeyIsANoOp) {
  AllocationCache Cache(1u << 20);
  SampleEntry E("twice");
  E.insertInto(Cache);
  const std::size_t Bytes = Cache.stats().Bytes;
  E.insertInto(Cache); // the two-shards-publish-the-same-miss race
  AllocationCacheStats S = Cache.stats();
  EXPECT_EQ(1u, S.Insertions);
  EXPECT_EQ(1u, S.Modules);
  EXPECT_EQ(Bytes, S.Bytes);
}

TEST(AllocationCacheKey, CoversResultFieldsAndIgnoresAdmissionControl) {
  AllocRequest R;
  R.ModuleText = "module m\nfunc @f (external)\n";
  R.Options = improvedOptions();
  const std::string Key = allocationCacheKey(R);

  // Result-affecting fields each change the key...
  AllocRequest Mode = R;
  Mode.Mode = FrequencyMode::Static;
  EXPECT_NE(Key, allocationCacheKey(Mode));
  AllocRequest Config = R;
  Config.Config = RegisterConfig(6, 4, 2, 1);
  EXPECT_NE(Key, allocationCacheKey(Config));
  AllocRequest Text = R;
  Text.ModuleText += "func @g (external)\n";
  EXPECT_NE(Key, allocationCacheKey(Text));
  AllocRequest Behavior = R;
  Behavior.Options.Optimistic = !Behavior.Options.Optimistic;
  EXPECT_NE(Key, allocationCacheKey(Behavior));

  // ...admission control and execution strategy do not.
  AllocRequest Deadline = R;
  Deadline.DeadlineMs = 1234;
  EXPECT_EQ(Key, allocationCacheKey(Deadline));
  AllocRequest Exec = R;
  Exec.Options.Jobs = 16;
  Exec.Options.ScratchArenas = !Exec.Options.ScratchArenas;
  EXPECT_EQ(Key, allocationCacheKey(Exec));
}

// --- consistent-hash ring ------------------------------------------------

TEST(ShardRing, IsDeterministicCoversAllShardsAndRoughlyBalances) {
  ConsistentHashRing Ring(4);
  ConsistentHashRing Twin(4);
  std::vector<unsigned> Load(4, 0);
  const unsigned Keys = 10000;
  for (unsigned I = 0; I < Keys; ++I) {
    std::uint64_t H = fnv1a64("module key " + std::to_string(I));
    unsigned Shard = Ring.shardFor(H);
    ASSERT_LT(Shard, 4u);
    // Pure function of (shard count, key): a rebuilt ring agrees, which is
    // what lets restarts and tests reason about placement.
    EXPECT_EQ(Shard, Twin.shardFor(H));
    ++Load[Shard];
  }
  for (unsigned S = 0; S < 4; ++S)
    EXPECT_GT(Load[S], Keys / 20)
        << "shard " << S << " got under 5% of a uniform keyspace";
}

TEST(ShardRing, SingleShardDegeneratesToZero) {
  ConsistentHashRing Ring(1);
  EXPECT_EQ(1u, Ring.shards());
  for (unsigned I = 0; I < 100; ++I)
    EXPECT_EQ(0u, Ring.shardFor(fnv1a64(std::to_string(I))));
  // Shards == 0 is clamped, not UB.
  ConsistentHashRing Zero(0);
  EXPECT_EQ(1u, Zero.shards());
  EXPECT_EQ(0u, Zero.shardFor(42));
}

TEST(ShardRing, GrowingTheRingMovesOnlyAFractionOfKeys) {
  // The property that makes consistent hashing worth its vnodes: going
  // 4 -> 5 shards must not reshuffle the world (modulo hashing would move
  // ~80% of keys; the ring should move roughly 1/5, asserted loosely).
  ConsistentHashRing Four(4), Five(5);
  const unsigned Keys = 10000;
  unsigned Moved = 0;
  for (unsigned I = 0; I < Keys; ++I) {
    std::uint64_t H = fnv1a64("stable key " + std::to_string(I));
    if (Four.shardFor(H) != Five.shardFor(H))
      ++Moved;
  }
  EXPECT_GT(Moved, 0u);
  EXPECT_LT(Moved, Keys / 2) << "ring growth reshuffled over half the keys";
}

// --- concurrency (exercised under TSan by tools/check.sh) ----------------

TEST(AllocationCacheConcurrency, HitStormWithConcurrentInsertsIsRaceFree) {
  AllocationCache Cache(1u << 20);
  SampleEntry Hot("hot");
  Hot.insertInto(Cache);

  const unsigned Threads = 8, Rounds = 500;
  std::vector<std::thread> Workers;
  std::atomic<unsigned> BadReplays{0};
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      for (unsigned I = 0; I < Rounds; ++I) {
        AllocResponse Out;
        if (!Cache.lookup(Hot.Key, Out) || Out.AllocatedIr != Hot.ExpectedIr)
          BadReplays.fetch_add(1);
        if (I % 50 == T) {
          // Cold traffic churning the LRU list under the readers.
          SampleEntry Cold("t" + std::to_string(T) + "i" +
                           std::to_string(I));
          Cold.insertInto(Cache);
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(0u, BadReplays.load());
  EXPECT_EQ(0u, Cache.stats().Misses)
      << "the hot entry fell out of a 1 MiB cache";
}

// --- end to end: cached == cold, bit for bit -----------------------------

std::string printed(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

TEST(CacheService, CorpusReplaysHitAndStayByteIdenticalToCold) {
  std::vector<std::string> Errors;
  std::vector<CorpusEntry> Entries =
      loadCorpusDir(std::string(CCRA_SOURCE_DIR) + "/fuzz/corpus", Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  ASSERT_FALSE(Entries.empty());

  ServerConfig Config;
  Config.Shards = 2;
  AllocationServer Server(Config);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  ServiceClient C;
  ASSERT_TRUE(C.connectTcp(Server.boundPort(), &Err)) << Err;

  for (const CorpusEntry &Entry : Entries) {
    AllocRequest Request;
    Request.Options = improvedOptions();
    for (const std::string &Line : Entry.HeaderLines) {
      unsigned Ri, Rf, Ei, Ef;
      if (std::sscanf(Line.c_str(), "config: %u,%u,%u,%u", &Ri, &Rf, &Ei,
                      &Ef) == 4)
        Request.Config = RegisterConfig(Ri, Rf, Ei, Ef);
    }
    Request.ModuleText = printed(*Entry.M);

    // In-process expectation: the cold half of the bit-identity contract.
    ParseResult PR = parseModule(Request.ModuleText);
    ASSERT_TRUE(PR.ok()) << Entry.Path;
    FrequencyInfo Freq = FrequencyInfo::compute(*PR.M, Request.Mode);
    AllocationEngine Engine =
        EngineBuilder(Request.Config).options(Request.Options).build();
    ModuleAllocationResult Cold = Engine.allocateModule(*PR.M, Freq);
    const std::string ExpectedIr = printed(*PR.M);

    // Round one misses and allocates; round two must be served from the
    // cache. Raw frames so the comparison covers the whole payload.
    Frame Req;
    Req.Type = FrameType::AllocRequest;
    Req.Payload = encodeAllocRequest(Request);
    std::string Bytes;
    encodeFrame(Req, Bytes);
    std::string Payloads[2];
    for (int Round = 0; Round < 2; ++Round) {
      ASSERT_TRUE(C.sendRawBytes(Bytes, &Err)) << Entry.Path << ": " << Err;
      Frame Resp;
      ASSERT_EQ(FrameReadStatus::Ok, C.readResponse(Resp, &Err))
          << Entry.Path << ": " << Err;
      ASSERT_EQ(FrameType::AllocResponse, Resp.Type) << Entry.Path;
      Payloads[Round] = Resp.Payload;
    }
    EXPECT_EQ(Payloads[0], Payloads[1])
        << Entry.Path << ": cached response diverged from cold";

    AllocResponse Parsed;
    ASSERT_TRUE(parseAllocResponse(Payloads[1], Parsed, &Err))
        << Entry.Path << ": " << Err;
    EXPECT_EQ(ExpectedIr, Parsed.AllocatedIr) << Entry.Path;
    EXPECT_TRUE(Cold.Totals == Parsed.Totals) << Entry.Path;
  }

  TelemetrySnapshot Stats = Server.stats();
  EXPECT_EQ(static_cast<double>(Entries.size()),
            Stats.count(telemetry::CacheHits));
  EXPECT_EQ(static_cast<double>(Entries.size()),
            Stats.count(telemetry::CacheMisses));

  Server.requestDrain();
  Server.wait();
}

} // namespace
