//===- tests/InterferenceTest.cpp - Interference graph unit tests ---------===//

#include "analysis/Frequency.h"
#include "analysis/Liveness.h"
#include "ir/IRBuilder.h"
#include "regalloc/AllocationScratch.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/VRegClasses.h"
#include "workloads/RandomProgram.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace ccra;

namespace {

struct GraphFixture {
  Module M{"m"};
  Function *F = nullptr;
  FrequencyInfo Freq;
  VRegClasses Classes;
  LiveRangeSet LRS;
  InterferenceGraph IG;

  void finalize() {
    M.setEntryFunction(F);
    Freq = FrequencyInfo::compute(M, FrequencyMode::Profile);
    Liveness LV = Liveness::compute(*F);
    Classes.grow(F->numVRegs());
    LRS = LiveRangeSet::build(*F, LV, Freq, Classes);
    IG = InterferenceGraph::build(*F, LV, LRS);
  }

  bool interfere(VirtReg A, VirtReg B) {
    return IG.interfere(static_cast<unsigned>(LRS.rangeIdOf(A)),
                        static_cast<unsigned>(LRS.rangeIdOf(B)));
  }
  unsigned degreeOf(VirtReg A) {
    return IG.degree(static_cast<unsigned>(LRS.rangeIdOf(A)));
  }
};

TEST(InterferenceGraphTest, AddEdgeIsIdempotentAndSymmetric) {
  InterferenceGraph IG(4);
  IG.addEdge(0, 2);
  IG.addEdge(2, 0);
  IG.addEdge(0, 0); // self edges ignored
  EXPECT_TRUE(IG.interfere(0, 2));
  EXPECT_TRUE(IG.interfere(2, 0));
  EXPECT_FALSE(IG.interfere(0, 1));
  EXPECT_FALSE(IG.interfere(0, 0));
  EXPECT_EQ(IG.degree(0), 1u);
  EXPECT_EQ(IG.degree(2), 1u);
  EXPECT_EQ(IG.numEdges(), 1u);
}

TEST(InterferenceGraphTest, OverlappingValuesConflict) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg C = B.buildLoadImm(2);        // A live here -> conflict
  VirtReg S = B.buildBinary(Opcode::Add, A, C);
  B.buildRet(S);
  Fx.finalize();
  EXPECT_TRUE(Fx.interfere(A, C));
  EXPECT_FALSE(Fx.interfere(A, S)); // A dies where S is defined
}

TEST(InterferenceGraphTest, SequentialValuesDoNotConflict) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg A2 = B.buildBinary(Opcode::Add, A, A); // A dies here
  VirtReg C = B.buildLoadImm(2);                 // born after A's death
  VirtReg S = B.buildBinary(Opcode::Add, A2, C);
  B.buildRet(S);
  Fx.finalize();
  EXPECT_FALSE(Fx.interfere(A, C));
}

TEST(InterferenceGraphTest, MoveSourceAndDestDoNotConflict) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg Copy = B.buildMove(A); // Chaitin's special case
  B.buildRet(Copy);
  Fx.finalize();
  EXPECT_FALSE(Fx.interfere(A, Copy));
}

TEST(InterferenceGraphTest, MoveRelatedValuesCanShareWhileEqual) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg Copy = B.buildMove(A);
  VirtReg S = B.buildBinary(Opcode::Add, A, Copy); // A used after the copy
  B.buildRet(S);
  Fx.finalize();
  // Both live in [copy, S], but they hold the same value the whole time —
  // no interference, and coalescing may merge them.
  EXPECT_FALSE(Fx.interfere(A, Copy));
}

TEST(InterferenceGraphTest, MoveDestConflictsOnceSourceIsRedefined) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg Copy = B.buildMove(A);
  B.buildBinaryInto(A, Opcode::Add, A, A); // A diverges from Copy
  VirtReg S = B.buildBinary(Opcode::Add, A, Copy);
  B.buildRet(S);
  Fx.finalize();
  EXPECT_TRUE(Fx.interfere(A, Copy));
}

TEST(InterferenceGraphTest, DifferentBanksNeverConflict) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg I = B.buildLoadImm(1);
  VirtReg Fl = B.buildFLoadImm(2);
  VirtReg Fl2 = B.buildBinary(Opcode::FAdd, Fl, Fl);
  VirtReg S = B.buildBinary(Opcode::Add, I, I);
  VirtReg C = B.buildFCmp(Fl2, Fl2);
  VirtReg R = B.buildBinary(Opcode::Add, S, C);
  B.buildRet(R);
  Fx.finalize();
  EXPECT_FALSE(Fx.interfere(I, Fl));
}

TEST(InterferenceGraphTest, MultipleCallResultsConflict) {
  GraphFixture Fx;
  Function *Leaf = Fx.M.createFunction("leaf");
  {
    IRBuilder B(*Leaf);
    B.startBlock("entry");
    B.buildRet();
  }
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  auto Results = B.buildCall(Leaf, {}, {RegBank::Int, RegBank::Int});
  VirtReg S = B.buildBinary(Opcode::Add, Results[0], Results[1]);
  B.buildRet(S);
  Fx.finalize();
  EXPECT_TRUE(Fx.interfere(Results[0], Results[1]));
}

TEST(InterferenceGraphTest, LiveThroughBranchConflictsWithBothArms) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  VirtReg A = B.buildLoadImm(1);
  VirtReg C = B.buildCmp(A, A);
  BasicBlock *Then = Fx.F->createBlock("then");
  BasicBlock *Else = Fx.F->createBlock("else");
  BasicBlock *Join = Fx.F->createBlock("join");
  B.buildCondBr(C, Then, Else, 0.5);
  B.setInsertBlock(Then);
  VirtReg T = B.buildLoadImm(10);
  VirtReg T2 = B.buildBinary(Opcode::Add, T, T);
  (void)T2;
  B.buildBr(Join);
  B.setInsertBlock(Else);
  VirtReg E = B.buildLoadImm(20);
  VirtReg E2 = B.buildBinary(Opcode::Add, E, E);
  (void)E2;
  B.buildBr(Join);
  B.setInsertBlock(Join);
  B.buildRet(A);
  Fx.finalize();
  EXPECT_TRUE(Fx.interfere(A, T));
  EXPECT_TRUE(Fx.interfere(A, E));
  EXPECT_FALSE(Fx.interfere(T, E)); // disjoint arms
}

TEST(InterferenceGraphTest, DegreeMatchesAdjacency) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  std::vector<VirtReg> Pool;
  for (int I = 0; I < 5; ++I)
    Pool.push_back(B.buildLoadImm(I));
  VirtReg Acc = Pool[0];
  for (int I = 1; I < 5; ++I)
    Acc = B.buildBinary(Opcode::Add, Acc, Pool[static_cast<size_t>(I)]);
  B.buildRet(Acc);
  Fx.finalize();
  // Pool[4] coexists with all other pool values.
  EXPECT_GE(Fx.degreeOf(Pool[4]), 4u);
  for (unsigned Node = 0; Node < Fx.IG.numNodes(); ++Node) {
    const auto &Neighbors = Fx.IG.neighbors(Node);
    EXPECT_EQ(Fx.IG.degree(Node), Neighbors.size());
    for (unsigned Neighbor : Neighbors) {
      EXPECT_TRUE(Fx.IG.interfere(Node, Neighbor));
      const auto &Back = Fx.IG.neighbors(Neighbor);
      EXPECT_NE(std::find(Back.begin(), Back.end(), Node), Back.end());
    }
  }
}

TEST(InterferenceGraphTest, NumEdgesMatchesHandshakeCount) {
  GraphFixture Fx;
  Fx.F = Fx.M.createFunction("main");
  IRBuilder B(*Fx.F);
  B.startBlock("entry");
  std::vector<VirtReg> Pool;
  for (int I = 0; I < 8; ++I)
    Pool.push_back(B.buildLoadImm(I));
  VirtReg Acc = Pool[0];
  for (int I = 1; I < 8; ++I)
    Acc = B.buildBinary(Opcode::Add, Acc, Pool[static_cast<size_t>(I)]);
  B.buildRet(Acc);
  Fx.finalize();
  // The maintained edge counter must agree with the handshake lemma over
  // the adjacency lists it summarizes.
  std::size_t DegreeSum = 0;
  for (unsigned Node = 0; Node < Fx.IG.numNodes(); ++Node)
    DegreeSum += Fx.IG.degree(Node);
  EXPECT_GT(Fx.IG.numEdges(), 0u);
  EXPECT_EQ(Fx.IG.numEdges() * 2, DegreeSum);
}

// --- Dense / sparse representation cross-checks --------------------------

TEST(InterferenceGraphTest, DenseAndSparseAgreeOnRandomPrograms) {
  for (uint64_t Seed : {1u, 7u, 23u}) {
    RandomProgramParams P;
    P.Seed = Seed;
    std::unique_ptr<Module> M = generateRandomProgram(P);
    FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
    for (const auto &F : M->functions()) {
      if (F->isDeclaration())
        continue;
      SCOPED_TRACE(testing::Message()
                   << "seed=" << Seed << " fn=" << F->getName());
      Liveness LV = Liveness::compute(*F);
      VRegClasses Classes(F->numVRegs());
      LiveRangeSet LRS = LiveRangeSet::build(*F, LV, Freq, Classes);
      InterferenceGraph Dense =
          InterferenceGraph::build(*F, LV, LRS, nullptr, GraphRep::Dense);
      InterferenceGraph Sparse =
          InterferenceGraph::build(*F, LV, LRS, nullptr, GraphRep::Sparse);
      ASSERT_EQ(Dense.activeRep(), GraphRep::Dense);
      ASSERT_EQ(Sparse.activeRep(), GraphRep::Sparse);
      ASSERT_EQ(Dense.numNodes(), Sparse.numNodes());
      EXPECT_EQ(Dense.numEdges(), Sparse.numEdges());
      EXPECT_GT(Dense.memoryBytes(), 0u);
      for (unsigned A = 0; A < Dense.numNodes(); ++A) {
        // finalize() canonicalizes adjacency, so the *order* must match
        // too — consumers like the steal fallback observe it.
        EXPECT_EQ(Dense.neighbors(A), Sparse.neighbors(A));
        for (unsigned B = 0; B < Dense.numNodes(); ++B)
          EXPECT_EQ(Dense.interfere(A, B), Sparse.interfere(A, B));
      }
    }
  }
}

TEST(InterferenceGraphTest, SparseQueriesWorkBeforeAndAfterFinalize) {
  InterferenceGraph IG(8, GraphRep::Sparse);
  ASSERT_EQ(IG.activeRep(), GraphRep::Sparse);
  IG.addEdge(0, 5);
  IG.addEdge(5, 2);
  IG.addEdge(7, 0);
  EXPECT_TRUE(IG.interfere(0, 5)); // hash-set path
  EXPECT_FALSE(IG.interfere(1, 2));
  IG.finalize();
  EXPECT_TRUE(IG.interfere(5, 0)); // binary-search path
  EXPECT_FALSE(IG.interfere(3, 4));
  EXPECT_EQ(IG.neighbors(0), (std::vector<unsigned>{5, 7})); // canonical
  // addEdge after finalize transparently re-opens the build state, with
  // dedup intact.
  IG.addEdge(1, 0);
  EXPECT_TRUE(IG.interfere(0, 1));
  EXPECT_TRUE(IG.interfere(0, 5));
  IG.addEdge(0, 1);
  EXPECT_EQ(IG.degree(1), 1u);
  IG.finalize();
  EXPECT_EQ(IG.neighbors(0), (std::vector<unsigned>{1, 5, 7}));
  EXPECT_EQ(IG.numEdges(), 4u);
}

TEST(InterferenceGraphTest, AutoPolicyPicksRepresentationByNodeCount) {
  InterferenceGraph Small(16);
  EXPECT_EQ(Small.activeRep(), GraphRep::Dense);
  EXPECT_EQ(Small.policy(), GraphRep::Auto);
  // Constructor-only: the sparse representation allocates no V^2 state.
  InterferenceGraph Large(InterferenceGraph::DenseNodeThreshold + 1);
  EXPECT_EQ(Large.activeRep(), GraphRep::Sparse);
  EXPECT_EQ(Large.policy(), GraphRep::Auto);
  InterferenceGraph Forced(16, GraphRep::Sparse);
  EXPECT_EQ(Forced.activeRep(), GraphRep::Sparse);
}

TEST(InterferenceGraphTest, RecycledBuffersDoNotLeakEdges) {
  AllocationScratch S;
  for (GraphRep Rep : {GraphRep::Dense, GraphRep::Sparse}) {
    SCOPED_TRACE(Rep == GraphRep::Dense ? "dense" : "sparse");
    InterferenceGraph A(6, Rep, &S);
    A.addEdge(0, 1);
    A.addEdge(2, 3);
    A.addEdge(4, 5);
    A.finalize();
    A.recycle(S);
    InterferenceGraph B(4, Rep, &S);
    EXPECT_EQ(B.numEdges(), 0u);
    for (unsigned X = 0; X < 4; ++X) {
      EXPECT_EQ(B.degree(X), 0u);
      for (unsigned Y = 0; Y < 4; ++Y)
        EXPECT_FALSE(B.interfere(X, Y));
    }
    B.addEdge(1, 2);
    EXPECT_TRUE(B.interfere(2, 1));
    B.recycle(S);
  }
  EXPECT_GT(S.reuses(), 0u);
}

} // namespace
