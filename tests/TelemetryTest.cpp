//===- tests/TelemetryTest.cpp - Telemetry recorder and (de)serialization -===//

#include "ccra.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>
#include <sstream>
#include <thread>

using namespace ccra;

namespace {

TEST(TelemetrySnapshot, JsonRoundTripIsExact) {
  TelemetrySnapshot Snap;
  Snap.Counters["functions"] = 14.0;
  Snap.Counters["rounds"] = 19.0;
  Snap.Counters["tiny"] = 1e-9;
  Snap.Counters["third"] = 1.0 / 3.0; // not representable in short decimal
  Snap.TimersMs["color"] = 1.7400000000000002;
  Snap.TimersMs["coalesce"] = 0.0;
  Snap.TimersMs["huge"] = 1.23e12;

  TelemetrySnapshot Parsed;
  ASSERT_TRUE(TelemetrySnapshot::fromJson(Snap.toJson(), Parsed));
  EXPECT_EQ(Snap, Parsed);
}

TEST(TelemetrySnapshot, EmptyRoundTrips) {
  TelemetrySnapshot Empty;
  EXPECT_TRUE(Empty.empty());
  TelemetrySnapshot Parsed;
  ASSERT_TRUE(TelemetrySnapshot::fromJson(Empty.toJson(), Parsed));
  EXPECT_EQ(Empty, Parsed);
}

TEST(TelemetrySnapshot, RejectsMalformedJson) {
  TelemetrySnapshot Out;
  EXPECT_FALSE(TelemetrySnapshot::fromJson("", Out));
  EXPECT_FALSE(TelemetrySnapshot::fromJson("{}", Out));
  EXPECT_FALSE(TelemetrySnapshot::fromJson("{\"counters\": {}}", Out));
  EXPECT_FALSE(TelemetrySnapshot::fromJson(
      "{\"counters\": {\"a\": }, \"timers_ms\": {}}", Out));
  EXPECT_FALSE(TelemetrySnapshot::fromJson(
      "{\"counters\": {}, \"timers_ms\": {}} trailing", Out));
}

TEST(TelemetrySnapshot, AccumulateMergesBothMaps) {
  TelemetrySnapshot A, B;
  A.Counters["rounds"] = 2.0;
  A.TimersMs["color"] = 1.0;
  B.Counters["rounds"] = 3.0;
  B.Counters["spilled_ranges"] = 1.0;
  B.TimersMs["color"] = 0.5;
  A += B;
  EXPECT_EQ(A.count("rounds"), 5.0);
  EXPECT_EQ(A.count("spilled_ranges"), 1.0);
  EXPECT_EQ(A.timeMs("color"), 1.5);
  EXPECT_EQ(A.count("missing"), 0.0);
}

TEST(TelemetrySnapshot, WithoutSchedulingCountersStripsOnlySchedKeys) {
  TelemetrySnapshot S;
  S.Counters["rounds"] = 4.0;
  S.Counters["liveness_computes"] = 1.0;
  S.Counters[std::string(telemetry::SchedPrefix) + "scratch_reuses"] = 7.0;
  S.Counters[telemetry::SchedPoolBatches] = 2.0;
  S.TimersMs["color"] = 1.5;
  TelemetrySnapshot Stripped = S.withoutSchedulingCounters();
  EXPECT_EQ(Stripped.Counters.size(), 2u);
  EXPECT_EQ(Stripped.count("rounds"), 4.0);
  EXPECT_EQ(Stripped.count("liveness_computes"), 1.0);
  EXPECT_EQ(Stripped.count(telemetry::SchedPoolBatches), 0.0);
  EXPECT_EQ(Stripped.timeMs("color"), 1.5); // timers are left alone
  // The original is untouched.
  EXPECT_EQ(S.Counters.size(), 4u);
}

TEST(TelemetrySnapshot, CsvHasHeaderAndOneRowPerEntry) {
  TelemetrySnapshot Snap;
  Snap.Counters["rounds"] = 4.0;
  Snap.TimersMs["color"] = 2.5;
  std::ostringstream OS;
  Snap.writeCsv(OS);
  EXPECT_EQ(OS.str(), "kind,name,value\n"
                      "counter,rounds,4\n"
                      "timer_ms,color,2.5\n");
}

TEST(Telemetry, RecorderIsThreadSafe) {
  Telemetry T;
  std::vector<std::thread> Threads;
  for (int W = 0; W < 4; ++W)
    Threads.emplace_back([&T] {
      for (int I = 0; I < 1000; ++I)
        T.addCount("hits");
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(T.count("hits"), 4000.0);
}

TEST(Telemetry, ScopedTimerIsNullSafeAndRecords) {
  { Telemetry::ScopedTimer NoOp(nullptr, "ignored"); }
  Telemetry T;
  {
    Telemetry::ScopedTimer Timer(&T, "phase");
  }
  TelemetrySnapshot Snap = T.snapshot();
  ASSERT_EQ(Snap.TimersMs.count("phase"), 1u);
  EXPECT_GE(Snap.timeMs("phase"), 0.0);
  T.reset();
  EXPECT_TRUE(T.snapshot().empty());
}

TEST(Telemetry, EngineRecordsCountersAndPhaseTimers) {
  RandomProgramParams Params;
  Params.Seed = 3;
  Params.NumFunctions = 4;
  std::unique_ptr<Module> M = generateRandomProgram(Params);
  FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);

  Telemetry T;
  AllocationEngine Engine = EngineBuilder(RegisterConfig(6, 4, 1, 1))
                                .options(improvedOptions())
                                .telemetry(&T)
                                .build();
  ModuleAllocationResult Result = Engine.allocateModule(*M, Freq);

  TelemetrySnapshot Snap = T.snapshot();
  EXPECT_EQ(Snap.count(telemetry::Functions),
            static_cast<double>(Result.PerFunction.size()));
  // Every converged function took at least one round.
  EXPECT_GE(Snap.count(telemetry::Rounds), Snap.count(telemetry::Functions));
  double SpilledRanges = 0.0, CoalescedMoves = 0.0, CalleeRegsPaid = 0.0;
  for (const auto &[F, FA] : Result.PerFunction) {
    (void)F;
    SpilledRanges += FA.SpilledRanges;
    CoalescedMoves += FA.CoalescedMoves;
    CalleeRegsPaid += FA.CalleeRegsPaid;
  }
  EXPECT_EQ(Snap.count(telemetry::SpilledRanges), SpilledRanges);
  EXPECT_EQ(Snap.count(telemetry::CoalescedMoves), CoalescedMoves);
  EXPECT_EQ(Snap.count(telemetry::CalleeRegsPaid), CalleeRegsPaid);
  // The phase timers of the main loop are present and non-negative.
  for (const char *Phase :
       {telemetry::CoalescePhase, telemetry::BuildRangesPhase,
        telemetry::BuildGraphPhase, telemetry::ColorPhase,
        telemetry::VerifyPhase, telemetry::AllocateTotal}) {
    ASSERT_EQ(Snap.TimersMs.count(Phase), 1u) << Phase;
    EXPECT_GE(Snap.timeMs(Phase), 0.0) << Phase;
  }
  // A detached engine records nothing new.
  Engine.setTelemetry(nullptr);
  std::unique_ptr<Module> M2 = generateRandomProgram(Params);
  FrequencyInfo Freq2 = FrequencyInfo::compute(*M2, FrequencyMode::Profile);
  Engine.allocateModule(*M2, Freq2);
  EXPECT_EQ(T.snapshot(), Snap);
}

TEST(Telemetry, ExperimentRunCarriesTelemetry) {
  RandomProgramParams Params;
  Params.Seed = 9;
  std::unique_ptr<Module> M = generateRandomProgram(Params);
  ExperimentRun Run = runExperiment(
      {M.get(), RegisterConfig(6, 4, 1, 1), improvedOptions(),
       FrequencyMode::Profile, /*Jobs=*/1});
  EXPECT_EQ(Run.Telemetry.count(telemetry::Experiments), 1.0);
  EXPECT_GT(Run.Telemetry.count(telemetry::Functions), 0.0);
  // The snapshot survives a JSON round trip unchanged.
  TelemetrySnapshot Parsed;
  ASSERT_TRUE(TelemetrySnapshot::fromJson(Run.Telemetry.toJson(), Parsed));
  EXPECT_EQ(Run.Telemetry, Parsed);
}

} // namespace
