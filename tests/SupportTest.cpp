//===- tests/SupportTest.cpp - support library unit tests -----------------===//

#include "support/BitVector.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ccra;

namespace {

// --- BitVector -----------------------------------------------------------

TEST(BitVector, StartsEmpty) {
  BitVector BV(130);
  EXPECT_EQ(BV.size(), 130u);
  EXPECT_TRUE(BV.none());
  EXPECT_FALSE(BV.any());
  EXPECT_EQ(BV.count(), 0u);
}

TEST(BitVector, SetResetTest) {
  BitVector BV(100);
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(99);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(99));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVector, InitialValueTrue) {
  BitVector BV(70, true);
  EXPECT_EQ(BV.count(), 70u);
  for (unsigned I = 0; I < 70; ++I)
    EXPECT_TRUE(BV.test(I)) << I;
}

TEST(BitVector, ResizeGrowWithOnes) {
  BitVector BV(10);
  BV.set(3);
  BV.resize(130, true);
  EXPECT_TRUE(BV.test(3));
  EXPECT_FALSE(BV.test(4));
  for (unsigned I = 10; I < 130; ++I)
    EXPECT_TRUE(BV.test(I)) << I;
  EXPECT_EQ(BV.count(), 121u);
}

TEST(BitVector, ResizeShrinkClearsTail) {
  BitVector BV(128, true);
  BV.resize(65);
  EXPECT_EQ(BV.count(), 65u);
  BV.resize(128);
  EXPECT_EQ(BV.count(), 65u); // regrown bits are zero
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector BV(67);
  BV.setAll();
  EXPECT_EQ(BV.count(), 67u);
}

TEST(BitVector, UnionReportsChange) {
  BitVector A(80), B(80);
  B.set(5);
  B.set(70);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)); // second union changes nothing
  EXPECT_TRUE(A.test(5));
  EXPECT_TRUE(A.test(70));
}

TEST(BitVector, IntersectAndSubtract) {
  BitVector A(64), B(64);
  A.set(1);
  A.set(2);
  A.set(3);
  B.set(2);
  B.set(3);
  B.set(4);
  BitVector I = A;
  I.intersectWith(B);
  EXPECT_EQ(I.count(), 2u);
  EXPECT_TRUE(I.test(2));
  EXPECT_TRUE(I.test(3));
  BitVector S = A;
  S.subtract(B);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_TRUE(S.test(1));
}

TEST(BitVector, FindNextAndIteration) {
  BitVector BV(200);
  BV.set(0);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 0);
  EXPECT_EQ(BV.findNext(1), 64);
  EXPECT_EQ(BV.findNext(65), 199);
  EXPECT_EQ(BV.findNext(200), -1);

  std::vector<unsigned> Bits;
  for (unsigned Bit : BV)
    Bits.push_back(Bit);
  EXPECT_EQ(Bits, (std::vector<unsigned>{0, 64, 199}));
}

TEST(BitVector, CollectSetBits) {
  BitVector BV(10);
  BV.set(2);
  BV.set(7);
  std::vector<unsigned> Out;
  BV.collectSetBits(Out);
  EXPECT_EQ(Out, (std::vector<unsigned>{2, 7}));
}

TEST(BitVector, Equality) {
  BitVector A(33), B(33);
  A.set(32);
  EXPECT_FALSE(A == B);
  B.set(32);
  EXPECT_TRUE(A == B);
}

// --- Rng -------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(Rng, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  bool SawLow = false, SawHigh = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLow |= (V == -3);
    SawHigh |= (V == 3);
  }
  EXPECT_TRUE(SawLow);
  EXPECT_TRUE(SawHigh);
}

TEST(Rng, NextDoubleUnit) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, ForkIndependent) {
  Rng A(5);
  Rng B = A.fork();
  EXPECT_NE(A.next(), B.next());
}

TEST(Rng, PickCoversElements) {
  Rng R(3);
  std::vector<int> Items = {10, 20, 30};
  bool Seen[3] = {false, false, false};
  for (int I = 0; I < 300; ++I)
    Seen[R.pick(Items) / 10 - 1] = true;
  EXPECT_TRUE(Seen[0] && Seen[1] && Seen[2]);
}

// --- Statistics -------------------------------------------------------------

TEST(Statistics, Mean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Statistics, GeometricMean) {
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Statistics, SafeRatio) {
  EXPECT_DOUBLE_EQ(safeRatio(4.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(safeRatio(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(safeRatio(5.0, 0.0, 99.0), 99.0);
}

// --- TextTable ---------------------------------------------------------------

TEST(TextTable, FormatDouble) {
  EXPECT_EQ(TextTable::formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::formatDouble(2.0, 1), "2.0");
}

TEST(TextTable, FormatCountSeparators) {
  EXPECT_EQ(TextTable::formatCount(0), "0");
  EXPECT_EQ(TextTable::formatCount(999), "999");
  EXPECT_EQ(TextTable::formatCount(1000), "1,000");
  EXPECT_EQ(TextTable::formatCount(120000000), "120,000,000");
  EXPECT_EQ(TextTable::formatCount(-54321), "-54,321");
}

TEST(TextTable, PrintAlignsColumns) {
  TextTable Table;
  Table.setHeader({"name", "value"});
  Table.addRow({"x", "1"});
  Table.addRow({"longer", "12345"});
  std::ostringstream OS;
  Table.print(OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("name"), std::string::npos);
  EXPECT_NE(Text.find("longer"), std::string::npos);
  EXPECT_NE(Text.find("-----"), std::string::npos);
  EXPECT_EQ(Table.numRows(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable Table;
  Table.setHeader({"a", "b"});
  Table.addRow({"1", "2"});
  std::ostringstream OS;
  Table.printCsv(OS);
  EXPECT_EQ(OS.str(), "a,b\n1,2\n");
}

} // namespace
