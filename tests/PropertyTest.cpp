//===- tests/PropertyTest.cpp - Property-based allocation tests -----------===//
//
// Parameterized sweeps over random programs x allocators x register
// configurations, checking the invariants that must hold everywhere:
//
//  - allocation converges and passes the soundness verifier (the engine
//    aborts the process on a verifier failure, so completing is passing);
//  - the final code still passes the IR verifier;
//  - the cost measured off the tagged overhead instructions equals the
//    analytically derived cost;
//  - allocation is deterministic;
//  - overhead is monotone: strictly more registers of both kinds never
//    increase the *spill* component for the same allocator... is not
//    actually guaranteed for coloring heuristics, so the checked property
//    is the sound one: costs are finite and non-negative, and spilling is
//    impossible when the register file exceeds the live-range count.
//
//===----------------------------------------------------------------------===//

#include "analysis/Frequency.h"
#include "core/EngineBuilder.h"
#include "ir/Cloner.h"
#include "ir/Verifier.h"
#include "regalloc/CostAccounting.h"
#include "support/Rng.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>

using namespace ccra;

namespace {

struct PropertyCase {
  uint64_t Seed;
  AllocatorKind Kind;

  std::string name() const {
    AllocatorOptions Opts;
    Opts.Kind = Kind;
    std::string Tag = Opts.describe();
    for (char &C : Tag)
      if (!std::isalnum(static_cast<unsigned char>(C)))
        C = '_';
    return "seed" + std::to_string(Seed) + "_" + Tag;
  }
};

AllocatorOptions optionsFor(AllocatorKind Kind) {
  switch (Kind) {
  case AllocatorKind::Chaitin:
    return baseChaitinOptions();
  case AllocatorKind::Improved:
    return improvedOptions();
  case AllocatorKind::Priority:
    return priorityOptions();
  case AllocatorKind::CBH:
    return cbhOptions();
  }
  return baseChaitinOptions();
}

class AllocationProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {
protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  AllocatorOptions options() const {
    return optionsFor(static_cast<AllocatorKind>(std::get<1>(GetParam())));
  }
  std::unique_ptr<Module> makeProgram() const {
    RandomProgramParams Params;
    Params.Seed = seed();
    return generateRandomProgram(Params);
  }
};

TEST_P(AllocationProperty, ConvergesAndStaysWellFormed) {
  for (const RegisterConfig &Config :
       {RegisterConfig(6, 4, 0, 0), RegisterConfig(8, 6, 2, 2),
        RegisterConfig(18, 10, 8, 6)}) {
    std::unique_ptr<Module> M = makeProgram();
    FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
    AllocationEngine Engine =
        EngineBuilder(Config).options(options()).build();
    ModuleAllocationResult Result = Engine.allocateModule(*M, Freq);
    EXPECT_TRUE(verifyModule(*M, nullptr)) << Config.label();
    EXPECT_GE(Result.Totals.total(), 0.0);
    EXPECT_TRUE(std::isfinite(Result.Totals.total()));
  }
}

TEST_P(AllocationProperty, MeasuredCostMatchesAnalytic) {
  std::unique_ptr<Module> M = makeProgram();
  FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
  AllocationEngine Engine =
      EngineBuilder(RegisterConfig(8, 6, 2, 2)).options(options()).build();
  ModuleAllocationResult Result = Engine.allocateModule(*M, Freq);

  CostBreakdown Measured;
  for (const auto &F : M->functions())
    Measured += measureCostFromCode(*F, Freq);
  EXPECT_NEAR(Measured.Spill, Result.Totals.Spill,
              1e-6 * (1 + Result.Totals.Spill));
  EXPECT_NEAR(Measured.CallerSave, Result.Totals.CallerSave,
              1e-6 * (1 + Result.Totals.CallerSave));
  EXPECT_NEAR(Measured.CalleeSave, Result.Totals.CalleeSave,
              1e-6 * (1 + Result.Totals.CalleeSave));
  EXPECT_NEAR(Measured.Shuffle, Result.Totals.Shuffle, 1e-9);
}

TEST_P(AllocationProperty, Deterministic) {
  auto RunOnce = [&]() {
    std::unique_ptr<Module> M = makeProgram();
    FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
    AllocationEngine Engine = EngineBuilder(RegisterConfig(7, 5, 1, 1))
        .options(options()).build();
    return Engine.allocateModule(*M, Freq).Totals.total();
  };
  EXPECT_DOUBLE_EQ(RunOnce(), RunOnce());
}

TEST_P(AllocationProperty, AbundantRegistersMeanNoInvoluntarySpills) {
  // With a register file far larger than the program's live-range count,
  // nothing can be spilled for lack of colors. (Voluntary storage-class
  // spills are still allowed — memory can simply be cheaper.) CBH is
  // exempt: its cost model deliberately spills a call-crossing live range
  // whenever that is cheaper than unlocking one more callee-save register,
  // registers to spare or not (§10).
  if (options().Kind == AllocatorKind::CBH)
    GTEST_SKIP() << "CBH spills by cost even with spare registers";
  RandomProgramParams Params;
  Params.Seed = seed();
  Params.IntValues = 4;
  Params.FloatValues = 2;
  Params.RegionsPerFunction = 3;
  std::unique_ptr<Module> M = generateRandomProgram(Params);
  FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
  AllocationEngine Engine = EngineBuilder(RegisterConfig(60, 60, 60, 60))
      .options(options()).build();
  ModuleAllocationResult Result = Engine.allocateModule(*M, Freq);
  for (const auto &[F, FA] : Result.PerFunction) {
    (void)F;
    EXPECT_EQ(FA.SpilledRanges, FA.VoluntarySpills);
  }
}

std::string propertyCaseName(
    const ::testing::TestParamInfo<std::tuple<uint64_t, int>> &Info) {
  PropertyCase Case{std::get<0>(Info.param),
                    static_cast<AllocatorKind>(std::get<1>(Info.param))};
  return Case.name();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocationProperty,
    ::testing::Combine(::testing::Range<uint64_t>(1, 13),
                       ::testing::Values(0, 1, 2, 3)),
    propertyCaseName);

// --- Cross-allocator relationships on the proxies ------------------------------

TEST(AllocationRelations, OptimisticNeverSpillsMoreThanChaitin) {
  // §8: ignoring call cost, optimistic coloring is at least as good — its
  // spill component never exceeds plain Chaitin's on the same input.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    RandomProgramParams Params;
    Params.Seed = Seed;
    std::unique_ptr<Module> Source = generateRandomProgram(Params);

    auto SpillOf = [&](const AllocatorOptions &Opts) {
      std::unique_ptr<Module> M = cloneModule(*Source);
      FrequencyInfo Freq = FrequencyInfo::compute(*M, FrequencyMode::Profile);
      AllocationEngine Engine = EngineBuilder(RegisterConfig(7, 5, 1, 1))
          .options(Opts).build();
      return Engine.allocateModule(*M, Freq).Totals.Spill;
    };
    EXPECT_LE(SpillOf(optimisticOptions()),
              SpillOf(baseChaitinOptions()) + 1e-9)
        << Seed;
  }
}

// --- AllocatorOptions textual round trip ---------------------------------------
//
// Fuzz reproducer headers embed the full serializeAllocatorOptions form, so
// the round trip must be exact over the *whole* option space — every field,
// including Jobs, the cost-model enums, and the legacy toggles. (The wire
// protocol ships the behavior-only canonicalKey() instead; see below.)

AllocatorOptions randomOptions(Rng &R) {
  AllocatorOptions O;
  O.Kind = static_cast<AllocatorKind>(R.nextBelow(4));
  O.Optimistic = R.nextBool();
  O.StorageClass = R.nextBool();
  O.BenefitSimplify = R.nextBool();
  O.PreferenceDecision = R.nextBool();
  O.BSKey = R.nextBool() ? BenefitKeyStrategy::MaxBenefit
                         : BenefitKeyStrategy::Delta;
  O.CalleeModel = R.nextBool() ? CalleeCostModel::FirstUserPays
                               : CalleeCostModel::Shared;
  O.Ordering = static_cast<PriorityOrdering>(R.nextBelow(3));
  O.AggressiveCoalescing = R.nextBool();
  O.MaterializeSaveRestore = R.nextBool();
  O.Verify = R.nextBool();
  O.VerifyReportOnly = R.nextBool();
  O.IncrementalReconstruction = R.nextBool();
  O.IncrementalLiveness = R.nextBool();
  O.ScratchArenas = R.nextBool();
  O.GraphMode = static_cast<GraphRep>(R.nextBelow(3));
  O.LegacySimplifier = R.nextBool();
  O.MaxRounds = static_cast<unsigned>(R.nextBelow(1000));
  O.Jobs = static_cast<unsigned>(R.nextBelow(64));
  return O;
}

TEST(OptionsRoundTrip, RandomOptionSpaceIsExact) {
  Rng R(20260806);
  for (int I = 0; I < 2000; ++I) {
    AllocatorOptions O = randomOptions(R);
    std::string Text = serializeAllocatorOptions(O);
    AllocatorOptions Back;
    std::string Err;
    ASSERT_TRUE(parseAllocatorOptions(Text, Back, &Err)) << Text << ": " << Err;
    EXPECT_TRUE(O == Back) << Text;
    // The serialized form itself is canonical: a second trip is a fixpoint.
    EXPECT_EQ(Text, serializeAllocatorOptions(Back));
  }
}

TEST(OptionsRoundTrip, NamedConfigurationsAreExact) {
  for (const AllocatorOptions &O :
       {baseChaitinOptions(), optimisticOptions(), improvedOptions(),
        improvedOptions(false, true, false), improvedOptimisticOptions(),
        priorityOptions(PriorityOrdering::RemoveUnconstrained),
        priorityOptions(PriorityOrdering::SortUnconstrained), priorityOptions(),
        cbhOptions()}) {
    AllocatorOptions Back;
    ASSERT_TRUE(parseAllocatorOptions(serializeAllocatorOptions(O), Back));
    EXPECT_TRUE(O == Back) << serializeAllocatorOptions(O);
  }
}

TEST(OptionsRoundTrip, TokensParseInAnyOrderAndOmittedFieldsDefault) {
  AllocatorOptions O;
  ASSERT_TRUE(parseAllocatorOptions("jobs=7 kind=cbh", O));
  AllocatorOptions Expected;
  Expected.Kind = AllocatorKind::CBH;
  Expected.Jobs = 7;
  EXPECT_TRUE(O == Expected);

  // Reversed full form parses to the same struct as the canonical order.
  Rng R(99);
  AllocatorOptions Sample = randomOptions(R);
  std::istringstream IS(serializeAllocatorOptions(Sample));
  std::vector<std::string> Tokens;
  for (std::string T; IS >> T;)
    Tokens.push_back(T);
  std::string Reversed;
  for (auto It = Tokens.rbegin(); It != Tokens.rend(); ++It)
    Reversed += (Reversed.empty() ? "" : " ") + *It;
  AllocatorOptions Back;
  ASSERT_TRUE(parseAllocatorOptions(Reversed, Back));
  EXPECT_TRUE(Sample == Back);
}

TEST(OptionsRoundTrip, MalformedInputIsRejected) {
  AllocatorOptions O;
  std::string Err;
  EXPECT_FALSE(parseAllocatorOptions("kind=nonsense", O, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseAllocatorOptions("no-such-key=1", O));
  EXPECT_FALSE(parseAllocatorOptions("jobs=notanumber", O));
  EXPECT_FALSE(parseAllocatorOptions("optimistic=2", O));
  EXPECT_FALSE(parseAllocatorOptions("=1", O));
  EXPECT_FALSE(parseAllocatorOptions("kind", O));
  // Empty text is the all-defaults struct, not an error.
  EXPECT_TRUE(parseAllocatorOptions("", O));
  EXPECT_TRUE(O == AllocatorOptions());
}

// --- AllocatorOptions::canonicalKey --------------------------------------
//
// The one true cache/serialization form: the wire protocol and the
// allocation cache both key on it, so it must cover exactly the fields
// that change WHAT is computed and be blind to every field that only
// changes HOW. The determinism lattice (OracleTest) proves the excluded
// fields never change results; these tests pin the key to that split.

/// Rerandomizes every execution-strategy field canonicalKey excludes.
void scrambleExecutionFields(AllocatorOptions &O, Rng &R) {
  O.Verify = R.nextBool();
  O.VerifyReportOnly = R.nextBool();
  O.IncrementalReconstruction = R.nextBool();
  O.IncrementalLiveness = R.nextBool();
  O.ScratchArenas = R.nextBool();
  O.GraphMode = static_cast<GraphRep>(R.nextBelow(3));
  O.LegacySimplifier = R.nextBool();
  O.Jobs = static_cast<unsigned>(R.nextBelow(64));
}

TEST(CanonicalKey, ExecutionStrategyNeverPerturbsTheKey) {
  Rng R(20260809);
  for (int I = 0; I < 1000; ++I) {
    AllocatorOptions A = randomOptions(R);
    AllocatorOptions B = A;
    scrambleExecutionFields(B, R);
    EXPECT_EQ(A.canonicalKey(), B.canonicalKey())
        << serializeAllocatorOptions(A) << " vs "
        << serializeAllocatorOptions(B);
  }
}

TEST(CanonicalKey, EveryBehaviorFieldPerturbsTheKey) {
  using Mutator = void (*)(AllocatorOptions &);
  const Mutator Mutations[] = {
      [](AllocatorOptions &O) {
        O.Kind = static_cast<AllocatorKind>(
            (static_cast<unsigned>(O.Kind) + 1) % 4);
      },
      [](AllocatorOptions &O) { O.Optimistic = !O.Optimistic; },
      [](AllocatorOptions &O) { O.StorageClass = !O.StorageClass; },
      [](AllocatorOptions &O) { O.BenefitSimplify = !O.BenefitSimplify; },
      [](AllocatorOptions &O) {
        O.PreferenceDecision = !O.PreferenceDecision;
      },
      [](AllocatorOptions &O) {
        O.BSKey = O.BSKey == BenefitKeyStrategy::MaxBenefit
                      ? BenefitKeyStrategy::Delta
                      : BenefitKeyStrategy::MaxBenefit;
      },
      [](AllocatorOptions &O) {
        O.CalleeModel = O.CalleeModel == CalleeCostModel::FirstUserPays
                            ? CalleeCostModel::Shared
                            : CalleeCostModel::FirstUserPays;
      },
      [](AllocatorOptions &O) {
        O.Ordering = static_cast<PriorityOrdering>(
            (static_cast<unsigned>(O.Ordering) + 1) % 3);
      },
      [](AllocatorOptions &O) {
        O.AggressiveCoalescing = !O.AggressiveCoalescing;
      },
      [](AllocatorOptions &O) {
        O.MaterializeSaveRestore = !O.MaterializeSaveRestore;
      },
      [](AllocatorOptions &O) { O.MaxRounds += 1; },
  };

  Rng R(424242);
  for (int I = 0; I < 200; ++I) {
    AllocatorOptions A = randomOptions(R);
    const std::string Key = A.canonicalKey();
    for (Mutator Mutate : Mutations) {
      AllocatorOptions B = A;
      Mutate(B);
      EXPECT_NE(Key, B.canonicalKey()) << serializeAllocatorOptions(A);
    }
  }
}

TEST(CanonicalKey, KeyIsAParsableFixpoint) {
  // The wire protocol ships the key and parses it with
  // parseAllocatorOptions: the key must parse, reproduce every behavior
  // field, and leave the execution fields at their defaults.
  Rng R(7);
  for (int I = 0; I < 500; ++I) {
    AllocatorOptions A = randomOptions(R);
    AllocatorOptions Back;
    std::string Err;
    ASSERT_TRUE(parseAllocatorOptions(A.canonicalKey(), Back, &Err))
        << A.canonicalKey() << ": " << Err;
    EXPECT_EQ(A.canonicalKey(), Back.canonicalKey());

    AllocatorOptions Expected = A;
    AllocatorOptions Defaults;
    Expected.Verify = Defaults.Verify;
    Expected.VerifyReportOnly = Defaults.VerifyReportOnly;
    Expected.IncrementalReconstruction = Defaults.IncrementalReconstruction;
    Expected.IncrementalLiveness = Defaults.IncrementalLiveness;
    Expected.ScratchArenas = Defaults.ScratchArenas;
    Expected.GraphMode = Defaults.GraphMode;
    Expected.LegacySimplifier = Defaults.LegacySimplifier;
    Expected.Jobs = Defaults.Jobs;
    EXPECT_TRUE(Expected == Back) << A.canonicalKey();
  }
}

} // namespace
