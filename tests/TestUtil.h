//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
///
/// \file
/// ScenarioBuilder constructs hand-crafted allocation contexts — live
/// ranges with exact benefit values and an explicit interference graph —
/// so the paper's illustrating examples (Figures 3, 4, 5, 8, and the §4
/// shared-cost example) run as direct unit tests against the real
/// allocators.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_TESTS_TESTUTIL_H
#define CCRA_TESTS_TESTUTIL_H

#include "analysis/Frequency.h"
#include "regalloc/AllocationContext.h"
#include "target/MachineDescription.h"

#include <memory>
#include <utility>
#include <vector>

namespace ccra {

class ScenarioBuilder {
public:
  ScenarioBuilder(RegisterConfig Config, double EntryFreq)
      : M("scenario"), MD(Config), EntryFreq(EntryFreq) {
    F = M.createFunction("f");
  }

  /// Adds a live range with the given weighted reference count and
  /// caller-save cost; its callee-save cost is 2 x entry frequency like in
  /// real allocation. Returns the live-range id.
  unsigned addRange(RegBank Bank, double WeightedRefs, double CallerSaveCost,
                    bool ContainsCall = true, unsigned NumBlocks = 1) {
    LiveRange LR;
    LR.Root = F->createVReg(Bank);
    LR.Bank = Bank;
    LR.WeightedRefs = WeightedRefs;
    LR.CallerSaveCost = CallerSaveCost;
    LR.CalleeSaveCost = 2.0 * EntryFreq;
    LR.NumRefs = 1;
    LR.NumBlocks = NumBlocks;
    LR.ContainsCall = ContainsCall;
    return LRS.addRange(std::move(LR));
  }

  void addEdge(unsigned A, unsigned B) { Edges.push_back({A, B}); }

  /// Registers a call site of frequency \p Freq crossed by \p Crossing.
  void addCall(double Freq, const std::vector<unsigned> &Crossing) {
    CallSite CS;
    CS.Id = static_cast<unsigned>(LRS.callSites().size());
    CS.Freq = Freq;
    LRS.addCallSite(CS);
    for (unsigned RangeId : Crossing)
      LRS.range(RangeId).CrossedCalls.push_back(CS.Id);
  }

  /// Finalizes the interference graph and returns the context. Call once.
  AllocationContext &context() {
    Ctx = std::unique_ptr<AllocationContext>(new AllocationContext{
        *F, MD, Freq, Liveness(), std::move(LRS), InterferenceGraph(),
        EntryFreq, {}});
    Ctx->IG = InterferenceGraph(Ctx->LRS.numRanges());
    for (auto [A, B] : Edges)
      Ctx->IG.addEdge(A, B);
    return *Ctx;
  }

  const MachineDescription &machine() const { return MD; }

private:
  Module M;
  Function *F;
  FrequencyInfo Freq;
  MachineDescription MD;
  double EntryFreq;
  LiveRangeSet LRS;
  std::vector<std::pair<unsigned, unsigned>> Edges;
  std::unique_ptr<AllocationContext> Ctx;
};

/// Total savings of an assignment over leaving everything in memory:
/// benefitCallee for callee-save residents (first user per register pays;
/// the scenario tests use distinct registers so this is exact), and
/// benefitCaller for caller-save residents.
inline double assignmentSavings(const AllocationContext &Ctx,
                                const RoundResult &RR) {
  double Savings = 0.0;
  for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I) {
    const Location &Loc = RR.Assignment[I];
    if (!Loc.isRegister())
      continue;
    Savings += Ctx.MD.isCalleeSave(Loc.Reg) ? Ctx.LRS.range(I).benefitCallee()
                                            : Ctx.LRS.range(I).benefitCaller();
  }
  return Savings;
}

} // namespace ccra

#endif // CCRA_TESTS_TESTUTIL_H
