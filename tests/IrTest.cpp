//===- tests/IrTest.cpp - IR substrate unit tests -------------------------===//

#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ccra;

namespace {

std::string printToString(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

// --- Opcode properties -------------------------------------------------------

TEST(Opcode, PropertyTable) {
  EXPECT_TRUE(getOpcodeInfo(Opcode::Br).IsTerminator);
  EXPECT_TRUE(getOpcodeInfo(Opcode::CondBr).IsTerminator);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Ret).IsTerminator);
  EXPECT_FALSE(getOpcodeInfo(Opcode::Call).IsTerminator);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Call).IsCall);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Move).IsMove);
  EXPECT_TRUE(getOpcodeInfo(Opcode::FMove).IsMove);
  EXPECT_TRUE(getOpcodeInfo(Opcode::SpillLoad).IsOverhead);
  EXPECT_TRUE(getOpcodeInfo(Opcode::SpillLoad).IsMemory);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Save).IsOverhead);
  EXPECT_TRUE(getOpcodeInfo(Opcode::ShuffleMove).IsOverhead);
  EXPECT_FALSE(getOpcodeInfo(Opcode::Add).IsOverhead);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Load).IsMemory);
  EXPECT_FALSE(getOpcodeInfo(Opcode::Add).IsMemory);
}

// --- Builder shapes ----------------------------------------------------------

class BuilderTest : public ::testing::Test {
protected:
  BuilderTest() : F(*M.createFunction("f")), B(F) { B.startBlock("entry"); }

  Module M{"m"};
  Function &F;
  IRBuilder B;
};

TEST_F(BuilderTest, ArithmeticBanks) {
  VirtReg I1 = B.buildLoadImm(1);
  VirtReg I2 = B.buildLoadImm(2);
  VirtReg Sum = B.buildBinary(Opcode::Add, I1, I2);
  EXPECT_EQ(F.vregBank(Sum), RegBank::Int);

  VirtReg F1 = B.buildFLoadImm(1);
  VirtReg F2 = B.buildFLoadImm(2);
  VirtReg FSum = B.buildBinary(Opcode::FAdd, F1, F2);
  EXPECT_EQ(F.vregBank(FSum), RegBank::Float);

  VirtReg Cmp = B.buildFCmp(F1, F2);
  EXPECT_EQ(F.vregBank(Cmp), RegBank::Int);

  VirtReg Cvt = B.buildCvtIntToFloat(I1);
  EXPECT_EQ(F.vregBank(Cvt), RegBank::Float);
  VirtReg Back = B.buildCvtFloatToInt(Cvt);
  EXPECT_EQ(F.vregBank(Back), RegBank::Int);
}

TEST_F(BuilderTest, MovesAreCoalescable) {
  VirtReg V = B.buildLoadImm(7);
  VirtReg Copy = B.buildMove(V);
  const Instruction &I = B.getInsertBlock()->instructions().back();
  EXPECT_TRUE(I.isMove());
  EXPECT_EQ(I.moveSource(), V);
  EXPECT_EQ(I.moveDest(), Copy);
}

TEST_F(BuilderTest, CallCarriesArgsAndResults) {
  Function *Callee = M.createFunction("g");
  VirtReg Arg = B.buildLoadImm(3);
  std::vector<VirtReg> Results =
      B.buildCall(Callee, {Arg}, {RegBank::Int, RegBank::Float});
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(F.vregBank(Results[0]), RegBank::Int);
  EXPECT_EQ(F.vregBank(Results[1]), RegBank::Float);
  const Instruction &I = B.getInsertBlock()->instructions().back();
  EXPECT_TRUE(I.isCall());
  EXPECT_EQ(I.Callee, Callee);
  EXPECT_EQ(I.Uses.size(), 1u);
  EXPECT_EQ(I.Defs.size(), 2u);
}

TEST_F(BuilderTest, CondBrRecordsProbabilities) {
  BasicBlock *Then = F.createBlock("then");
  BasicBlock *Else = F.createBlock("else");
  VirtReg A = B.buildLoadImm(1);
  VirtReg C = B.buildCmp(A, A);
  B.buildCondBr(C, Then, Else, 0.25);
  const auto &Succs = F.getEntryBlock()->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_DOUBLE_EQ(Succs[0].Probability, 0.25);
  EXPECT_DOUBLE_EQ(Succs[1].Probability, 0.75);
  EXPECT_EQ(Then->predecessors().size(), 1u);
  EXPECT_EQ(Else->predecessors().size(), 1u);
}

TEST_F(BuilderTest, SpillTempsAreFlagged) {
  VirtReg Normal = F.createVReg(RegBank::Int);
  VirtReg Temp = F.createSpillTemp(RegBank::Float);
  EXPECT_FALSE(F.isSpillTemp(Normal));
  EXPECT_TRUE(F.isSpillTemp(Temp));
  EXPECT_EQ(F.vregBank(Temp), RegBank::Float);
}

TEST_F(BuilderTest, SpillSlotsCount) {
  EXPECT_EQ(F.createSpillSlot(), 0u);
  EXPECT_EQ(F.createSpillSlot(), 1u);
  EXPECT_EQ(F.numSpillSlots(), 2u);
}

// --- Module -------------------------------------------------------------------

TEST(ModuleTest, LookupAndEntry) {
  Module M("m");
  Function *A = M.createFunction("a");
  Function *MainF = M.createFunction("main");
  EXPECT_EQ(M.getFunction("a"), A);
  EXPECT_EQ(M.getFunction("nope"), nullptr);
  EXPECT_EQ(M.getEntryFunction(), MainF); // defaults to "main"
  M.setEntryFunction(A);
  EXPECT_EQ(M.getEntryFunction(), A);
}

TEST(ModuleTest, DeclarationHasNoBody) {
  Module M("m");
  Function *External = M.createFunction("ext");
  EXPECT_TRUE(External->isDeclaration());
  External->createBlock("entry");
  EXPECT_FALSE(External->isDeclaration());
}

// --- Verifier -------------------------------------------------------------------

TEST(VerifierTest, AcceptsWellFormed) {
  Module M("m");
  Function &F = *M.createFunction("f");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg V = B.buildLoadImm(1);
  B.buildRet(V);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(F, &Errors)) << Errors.front();
}

TEST(VerifierTest, RejectsUnterminatedBlock) {
  Module M("m");
  Function &F = *M.createFunction("f");
  IRBuilder B(F);
  B.startBlock("entry");
  B.buildLoadImm(1);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, &Errors));
  EXPECT_NE(Errors.front().find("not terminated"), std::string::npos);
}

TEST(VerifierTest, RejectsUseWithoutDef) {
  Module M("m");
  Function &F = *M.createFunction("f");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg Ghost = F.createVReg(RegBank::Int);
  B.buildRet(Ghost);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, &Errors));
}

TEST(VerifierTest, RejectsBadProbabilitySum) {
  Module M("m");
  Function &F = *M.createFunction("f");
  BasicBlock *Entry = F.createBlock("entry");
  BasicBlock *Next = F.createBlock("next");
  Instruction Ret(Opcode::Ret);
  Next->append(std::move(Ret));
  Instruction Cond(Opcode::CondBr);
  Instruction Imm(Opcode::LoadImm);
  VirtReg C = F.createVReg(RegBank::Int);
  Imm.Defs.push_back(C);
  Entry->append(std::move(Imm));
  Cond.Uses.push_back(C);
  Entry->append(std::move(Cond));
  Entry->addSuccessor(Next, 0.4);
  Entry->addSuccessor(Next, 0.4); // sums to 0.8
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, &Errors));
}

TEST(VerifierTest, RejectsWrongOperandBank) {
  Module M("m");
  Function &F = *M.createFunction("f");
  BasicBlock *Entry = F.createBlock("entry");
  VirtReg FV = F.createVReg(RegBank::Float);
  Instruction FImm(Opcode::FLoadImm);
  FImm.Defs.push_back(FV);
  Entry->append(std::move(FImm));
  Instruction Add(Opcode::Add); // integer add over a float operand
  VirtReg D = F.createVReg(RegBank::Int);
  Add.Defs.push_back(D);
  Add.Uses.push_back(FV);
  Add.Uses.push_back(FV);
  Entry->append(std::move(Add));
  Entry->append(Instruction(Opcode::Ret));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, &Errors));
}

TEST(VerifierTest, DeclarationsAlwaysVerify) {
  Module M("m");
  M.createFunction("ext");
  EXPECT_TRUE(verifyModule(M, nullptr));
}

// --- Printer ---------------------------------------------------------------------

TEST(PrinterTest, FormatsRegistersByBank) {
  Module M("m");
  Function &F = *M.createFunction("f");
  VirtReg I = F.createVReg(RegBank::Int);
  VirtReg Fl = F.createVReg(RegBank::Float);
  EXPECT_EQ(formatVReg(F, I), "%i0");
  EXPECT_EQ(formatVReg(F, Fl), "%f1");
  EXPECT_EQ(formatPhysReg(PhysReg(RegBank::Int, 3)), "r3");
  EXPECT_EQ(formatPhysReg(PhysReg(RegBank::Float, 2)), "fp2");
}

TEST(PrinterTest, ModuleOutputContainsStructure) {
  Module M("demo");
  Function &F = *M.createFunction("f");
  IRBuilder B(F);
  B.startBlock("entry");
  VirtReg V = B.buildLoadImm(42);
  B.buildRet(V);
  std::string Text = printToString(M);
  EXPECT_NE(Text.find("module demo"), std::string::npos);
  EXPECT_NE(Text.find("func @f"), std::string::npos);
  EXPECT_NE(Text.find("loadimm 42"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

// --- Cloner -----------------------------------------------------------------------

TEST(ClonerTest, CloneIsTextuallyIdentical) {
  Module M("m");
  Function *Leaf = M.createFunction("leaf");
  {
    IRBuilder B(*Leaf);
    B.startBlock("entry");
    B.buildRet();
  }
  Function &F = *M.createFunction("main");
  {
    IRBuilder B(F);
    B.startBlock("entry");
    VirtReg V = B.buildLoadImm(1);
    BasicBlock *Loop = F.createBlock("loop");
    B.buildBr(Loop);
    B.setInsertBlock(Loop);
    VirtReg C = B.buildCmp(V, V);
    B.buildCall(Leaf, {V});
    BasicBlock *Exit = F.createBlock("exit");
    B.buildCondBr(C, Loop, Exit, 0.9);
    B.setInsertBlock(Exit);
    B.buildRet(V);
  }
  auto Clone = cloneModule(M);
  EXPECT_EQ(printToString(M), printToString(*Clone));
  EXPECT_TRUE(verifyModule(*Clone, nullptr));

  // Call targets were remapped into the clone, not shared.
  const Function *ClonedMain = Clone->getFunction("main");
  for (const auto &BB : ClonedMain->blocks())
    for (const Instruction &I : BB->instructions())
      if (I.isCall()) {
        EXPECT_EQ(I.Callee, Clone->getFunction("leaf"));
      }
}

TEST(ClonerTest, MutatingCloneLeavesOriginalIntact) {
  Module M("m");
  Function &F = *M.createFunction("main");
  IRBuilder B(F);
  B.startBlock("entry");
  B.buildRet(B.buildLoadImm(5));
  std::string Before = printToString(M);

  auto Clone = cloneModule(M);
  Clone->getFunction("main")
      ->getEntryBlock()
      ->instructions()
      .front()
      .Imm = 99;
  EXPECT_EQ(printToString(M), Before);
  EXPECT_NE(printToString(*Clone), Before);
}

} // namespace
