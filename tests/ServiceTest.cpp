//===- tests/ServiceTest.cpp - Allocation service coverage ----------------===//
//
// Tier-1 coverage for the serving stack (src/service/):
//
//  - frame and payload codecs round-trip exactly (including the
//    shortest-round-trip doubles the bit-identity contract rests on);
//  - a live server answers allocations BIT-IDENTICAL to in-process
//    allocation — asserted for the SPEC proxies and for every committed
//    fuzz corpus entry replayed over the wire under its original register
//    configuration;
//  - protocol robustness: garbage bytes, torn frames, checksum corruption,
//    wrong-version headers, and oversized declarations are answered with
//    Error frames (or a clean close) and never take the daemon down — the
//    next well-formed request on a fresh connection still succeeds;
//  - operational behavior under test hooks (fuzz/Oracle.h's InjectedFault
//    pattern): forced queue overflow sheds, an injected worker fault fails
//    only the targeted request, stalled batching expires deadlines;
//  - graceful drain: queued work completes, responses flush, new requests
//    are refused, wait() quiesces.
//
//===----------------------------------------------------------------------===//

#include "core/EngineBuilder.h"
#include "fuzz/Corpus.h"
#include "ir/IRBinary.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "service/BinaryCodec.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/BuildInfo.h"
#include "workloads/SpecProxies.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <vector>

using namespace ccra;

#ifndef CCRA_SOURCE_DIR
#define CCRA_SOURCE_DIR "."
#endif

namespace {

std::string printed(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

/// In-process allocation rendered exactly as the server renders it.
void expectedAllocation(const std::string &ModuleText,
                        const AllocRequest &Request, std::string &IrOut,
                        CostBreakdown &TotalsOut) {
  ParseResult PR = parseModule(ModuleText);
  ASSERT_TRUE(PR.ok());
  FrequencyInfo Freq = FrequencyInfo::compute(*PR.M, Request.Mode);
  AllocationEngine Engine =
      EngineBuilder(Request.Config).options(Request.Options).build();
  ModuleAllocationResult R = Engine.allocateModule(*PR.M, Freq);
  IrOut = printed(*PR.M);
  TotalsOut = R.Totals;
}

/// A server on an ephemeral loopback port plus a connected client.
struct LiveServer {
  explicit LiveServer(ServerConfig Config = ServerConfig(),
                      ServerTestHooks Hooks = ServerTestHooks())
      : Server(std::move(Config), std::move(Hooks)) {
    std::string Err;
    Ok = Server.start(&Err);
    EXPECT_TRUE(Ok) << Err;
  }

  ServiceClient connect() {
    ServiceClient C;
    std::string Err;
    EXPECT_TRUE(C.connectTcp(Server.boundPort(), &Err)) << Err;
    return C;
  }

  AllocationServer Server;
  bool Ok = false;
};

AllocRequest proxyRequest(const std::string &Proxy) {
  AllocRequest R;
  R.Options = improvedOptions();
  R.ModuleText = printed(*buildSpecProxy(Proxy));
  return R;
}

// --- codecs --------------------------------------------------------------

TEST(WireCodec, FrameRoundTripsOverSocketPair) {
  int Fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  Socket Writer(Fds[0]), Reader(Fds[1]);

  Frame Out;
  Out.Type = FrameType::AllocRequest;
  Out.Payload = "config: 9,7,3,3\nmodule:\nmodule m\n";
  ASSERT_EQ(IoStatus::Ok, writeFrame(Writer, Out, 1000));

  Frame In;
  ASSERT_EQ(FrameReadStatus::Ok, readFrame(Reader, In, 1u << 20, 1000, 1000));
  EXPECT_EQ(Out.Type, In.Type);
  EXPECT_EQ(Out.Payload, In.Payload);
}

TEST(WireCodec, IdleThenEofThenGarbageAreDistinguished) {
  int Fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  Socket Writer(Fds[0]), Reader(Fds[1]);

  // Nothing sent yet: Idle, nothing consumed.
  Frame In;
  EXPECT_EQ(FrameReadStatus::Idle, readFrame(Reader, In, 1024, 50, 1000));

  // A full header's worth of garbage magic: Malformed.
  const char Garbage[WireHeaderSize] = {'n', 'o', 'p', 'e'};
  ASSERT_EQ(IoStatus::Ok, Writer.sendAll(Garbage, sizeof(Garbage), 1000));
  EXPECT_EQ(FrameReadStatus::Malformed,
            readFrame(Reader, In, 1024, 1000, 1000));

  // Clean close between frames: Eof.
  int Fds2[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds2));
  Socket Writer2(Fds2[0]), Reader2(Fds2[1]);
  Writer2.close();
  EXPECT_EQ(FrameReadStatus::Eof, readFrame(Reader2, In, 1024, 1000, 1000));
}

TEST(WireCodec, TornFrameIsMalformedChecksumGuardsPayload) {
  Frame Out;
  Out.Type = FrameType::StatsRequest;
  Out.Payload = "some payload";
  std::string Bytes;
  encodeFrame(Out, Bytes);

  {
    // Header promises more bytes than ever arrive.
    int Fds[2];
    ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
    Socket Writer(Fds[0]), Reader(Fds[1]);
    std::string Torn = Bytes.substr(0, WireHeaderSize + 3);
    ASSERT_EQ(IoStatus::Ok, Writer.sendAll(Torn.data(), Torn.size(), 1000));
    Writer.close();
    Frame In;
    EXPECT_EQ(FrameReadStatus::Malformed,
              readFrame(Reader, In, 1024, 1000, 1000));
  }
  {
    // Flipped payload byte: checksum mismatch.
    int Fds[2];
    ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
    Socket Writer(Fds[0]), Reader(Fds[1]);
    std::string Corrupt = Bytes;
    Corrupt[WireHeaderSize] ^= 0x40;
    ASSERT_EQ(IoStatus::Ok,
              Writer.sendAll(Corrupt.data(), Corrupt.size(), 1000));
    Frame In;
    EXPECT_EQ(FrameReadStatus::Malformed,
              readFrame(Reader, In, 1024, 1000, 1000));
  }
  {
    // Oversized declaration: TooLarge before any payload is consumed.
    int Fds[2];
    ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
    Socket Writer(Fds[0]), Reader(Fds[1]);
    ASSERT_EQ(IoStatus::Ok, Writer.sendAll(Bytes.data(), Bytes.size(), 1000));
    Frame In;
    EXPECT_EQ(FrameReadStatus::TooLarge, readFrame(Reader, In, 4, 1000, 1000));
  }
}

TEST(Sockets, SendAllDeadlineHoldsWhenPeerStopsReading) {
  // A slow client that accepts the connection but never drains its receive
  // buffer must surface as Timeout within the write budget — the server's
  // slow-client guarantee (and with it SIGTERM drain) rests on this. Uses
  // real connect/accept sockets because those are the fds the fix switches
  // to O_NONBLOCK; a blocking fd would wedge in ::send() here.
  std::string Err;
  ListenSocket L = ListenSocket::listenTcp(0, 4, &Err);
  ASSERT_TRUE(L.valid()) << Err;
  Socket Client = Socket::connectTcp(L.boundPort(), &Err);
  ASSERT_TRUE(Client.valid()) << Err;
  IoStatus St = IoStatus::Error;
  Socket Server = L.accept(1000, St, &Err);
  ASSERT_EQ(IoStatus::Ok, St) << Err;

  // Far larger than any kernel socket buffer pair, so the transfer cannot
  // complete without the peer reading.
  std::string Big(64u << 20, 'x');
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(IoStatus::Timeout, Server.sendAll(Big.data(), Big.size(), 300));
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_LT(ElapsedMs, 5000) << "send blocked far past its deadline";
}

TEST(WireCodec, AllocRequestRoundTripsExactly) {
  AllocRequest R;
  R.Config = RegisterConfig(6, 4, 2, 1);
  R.Mode = FrequencyMode::Static;
  R.Options = cbhOptions();
  // Execution-strategy fields are the server's policy, not the request's:
  // the wire ships canonicalKey(), so Jobs must NOT survive the round trip.
  R.Options.Jobs = 5;
  R.DeadlineMs = 1234;
  R.ModuleText = "module m\nfunc @f (external)\n";

  AllocRequest Back;
  std::string Err;
  ASSERT_TRUE(parseAllocRequest(encodeAllocRequest(R), Back, &Err)) << Err;
  EXPECT_EQ(R.Config.IntCallerSave, Back.Config.IntCallerSave);
  EXPECT_EQ(R.Config.FloatCalleeSave, Back.Config.FloatCalleeSave);
  EXPECT_EQ(R.Mode, Back.Mode);
  EXPECT_EQ(1u, Back.Options.Jobs);
  EXPECT_EQ(R.Options.canonicalKey(), Back.Options.canonicalKey());
  AllocatorOptions Canonical = R.Options;
  Canonical.Jobs = 1;
  EXPECT_EQ(Canonical, Back.Options);
  EXPECT_EQ(R.DeadlineMs, Back.DeadlineMs);
  EXPECT_EQ(R.ModuleText, Back.ModuleText);
}

TEST(WireCodec, AllocResponseRoundTripsBitExactDoubles) {
  AllocResponse R;
  // Values chosen to be unrepresentable in short decimal: the codec must
  // still reproduce them bit-for-bit.
  R.Totals = {0.1 + 0.2, 1e300, 4.9e-324, 123456.789012345};
  R.Functions.push_back({"f", {3.14159265358979, 0, 2.5, 0.1}, 3, 2, 1, 7, 4});
  R.Functions.push_back({"g", {}, 1, 0, 0, 0, 0});
  R.Telemetry.Counters["rounds"] = 4;
  R.Telemetry.TimersMs["color"] = 0.12345;
  R.AllocatedIr = "module m\nfunc @f {\nentry:\n  ret\n}\n";

  AllocResponse Back;
  std::string Err;
  ASSERT_TRUE(parseAllocResponse(encodeAllocResponse(R), Back, &Err)) << Err;
  EXPECT_TRUE(R.Totals == Back.Totals);
  ASSERT_EQ(R.Functions.size(), Back.Functions.size());
  for (std::size_t I = 0; I < R.Functions.size(); ++I) {
    EXPECT_EQ(R.Functions[I].Name, Back.Functions[I].Name);
    EXPECT_TRUE(R.Functions[I].Costs == Back.Functions[I].Costs);
    EXPECT_EQ(R.Functions[I].Rounds, Back.Functions[I].Rounds);
    EXPECT_EQ(R.Functions[I].CalleeRegsPaid, Back.Functions[I].CalleeRegsPaid);
  }
  EXPECT_EQ(R.Telemetry, Back.Telemetry);
  EXPECT_EQ(R.AllocatedIr, Back.AllocatedIr);
}

TEST(WireCodec, HelloAndErrorRoundTrip) {
  HelloInfo H;
  H.ServerInfo = buildInfoString();
  H.MaxPayloadBytes = 16u << 20;
  H.QueueCapacity = 64;
  H.MaxBatch = 8;
  HelloInfo BH;
  std::string Err;
  ASSERT_TRUE(parseHello(encodeHello(H), BH, &Err)) << Err;
  EXPECT_EQ(H.ServerInfo, BH.ServerInfo);
  EXPECT_EQ(H.Protocol, BH.Protocol);
  EXPECT_EQ(H.MaxPayloadBytes, BH.MaxPayloadBytes);
  EXPECT_EQ(H.QueueCapacity, BH.QueueCapacity);
  EXPECT_EQ(H.MaxBatch, BH.MaxBatch);

  ErrorResponse E{"deadline", "expired after 5 ms\nwhile queued"};
  ErrorResponse BE;
  ASSERT_TRUE(parseError(encodeError(E), BE));
  EXPECT_EQ(E.Code, BE.Code);
  EXPECT_EQ(E.Message, BE.Message);
}

// --- live server ---------------------------------------------------------

TEST(Service, HelloCarriesBuildInfoAndLimits) {
  ServerConfig Config;
  Config.QueueCapacity = 5;
  Config.MaxBatch = 3;
  LiveServer S(Config);
  ServiceClient C = S.connect();
  EXPECT_EQ(buildInfoString(), C.hello().ServerInfo);
  EXPECT_EQ(WireVersion, C.hello().Protocol);
  EXPECT_EQ(5u, C.hello().QueueCapacity);
  EXPECT_EQ(3u, C.hello().MaxBatch);
}

TEST(Service, AllocationIsBitIdenticalToInProcess) {
  LiveServer S;
  ServiceClient C = S.connect();
  for (const char *Proxy : {"eqntott", "li"}) {
    AllocRequest Request = proxyRequest(Proxy);
    std::string ExpectedIr;
    CostBreakdown ExpectedTotals;
    expectedAllocation(Request.ModuleText, Request, ExpectedIr,
                       ExpectedTotals);

    AllocResponse Response;
    ErrorResponse ServerError;
    std::string Err;
    ASSERT_EQ(RpcStatus::Ok,
              C.allocate(Request, Response, ServerError, &Err))
        << Err << " [" << ServerError.Code << "] " << ServerError.Message;
    EXPECT_EQ(ExpectedIr, Response.AllocatedIr) << Proxy;
    EXPECT_TRUE(ExpectedTotals == Response.Totals) << Proxy;
    EXPECT_FALSE(Response.Functions.empty());
    EXPECT_GT(Response.Telemetry.count("functions"), 0.0);
  }
}

TEST(Service, CorpusReplaysBitIdenticalOverTheWire) {
  std::vector<std::string> Errors;
  std::vector<CorpusEntry> Entries =
      loadCorpusDir(std::string(CCRA_SOURCE_DIR) + "/fuzz/corpus", Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  ASSERT_FALSE(Entries.empty());

  LiveServer S;
  ServiceClient C = S.connect();
  for (const CorpusEntry &Entry : Entries) {
    AllocRequest Request;
    Request.Options = improvedOptions();
    for (const std::string &Line : Entry.HeaderLines) {
      unsigned Ri, Rf, Ei, Ef;
      if (std::sscanf(Line.c_str(), "config: %u,%u,%u,%u", &Ri, &Rf, &Ei,
                      &Ef) == 4)
        Request.Config = RegisterConfig(Ri, Rf, Ei, Ef);
    }
    Request.ModuleText = printed(*Entry.M);

    std::string ExpectedIr;
    CostBreakdown ExpectedTotals;
    expectedAllocation(Request.ModuleText, Request, ExpectedIr,
                       ExpectedTotals);

    AllocResponse Response;
    ErrorResponse ServerError;
    std::string Err;
    ASSERT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError, &Err))
        << Entry.Path << ": " << Err;
    EXPECT_EQ(ExpectedIr, Response.AllocatedIr) << Entry.Path;
    EXPECT_TRUE(ExpectedTotals == Response.Totals) << Entry.Path;
  }
}

TEST(Service, StatsReflectServedRequests) {
  LiveServer S;
  ServiceClient C = S.connect();
  AllocRequest Request = proxyRequest("eqntott");
  AllocResponse Response;
  ErrorResponse ServerError;
  ASSERT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError));

  TelemetrySnapshot Stats;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_EQ(1.0, Stats.count(telemetry::ServeRequests));
  EXPECT_EQ(1.0, Stats.count(telemetry::ServeResponsesOk));
  EXPECT_GE(Stats.count(telemetry::ServeBatches), 1.0);
  EXPECT_GE(Stats.count(telemetry::ServeConnections), 1.0);
  // The server merged the request's engine telemetry into its own.
  EXPECT_GT(Stats.count("functions"), 0.0);
}

TEST(Service, MalformedModuleAnswersErrorAndKeepsConnection) {
  LiveServer S;
  ServiceClient C = S.connect();

  AllocRequest Bad = proxyRequest("eqntott");
  Bad.ModuleText = "this is not ccra ir\n";
  AllocResponse Response;
  ErrorResponse ServerError;
  EXPECT_EQ(RpcStatus::Rejected, C.allocate(Bad, Response, ServerError));
  EXPECT_EQ("malformed", ServerError.Code);

  // Same connection still serves valid work.
  AllocRequest Good = proxyRequest("eqntott");
  EXPECT_EQ(RpcStatus::Ok, C.allocate(Good, Response, ServerError));
}

TEST(Service, GarbageAndTornFramesNeverTakeTheServerDown) {
  LiveServer S;

  // A connection per abuse; each must at worst die alone.
  {
    ServiceClient C = S.connect();
    ASSERT_TRUE(C.sendRawBytes(std::string("\xde\xad\xbe\xef garbage")));
    Frame In;
    FrameReadStatus RS = C.readResponse(In);
    // Either an Error frame or a close; never a hang.
    if (RS == FrameReadStatus::Ok) {
      EXPECT_EQ(FrameType::Error, In.Type);
    }
  }
  {
    // Torn frame: valid header, truncated payload, then close.
    ServiceClient C = S.connect();
    Frame F;
    F.Type = FrameType::AllocRequest;
    F.Payload = proxyRequest("eqntott").ModuleText;
    std::string Bytes;
    encodeFrame(F, Bytes);
    ASSERT_TRUE(C.sendRawBytes(Bytes.substr(0, WireHeaderSize + 10)));
    C.close();
  }
  {
    // Oversized declaration.
    ServiceClient C = S.connect();
    Frame F;
    F.Type = FrameType::AllocRequest;
    F.Payload = "x";
    std::string Huge;
    encodeFrame(F, Huge);
    // Rewrite the length field (header offset 8) to 1 GiB.
    Huge[8] = 0;
    Huge[9] = 0;
    Huge[10] = 0;
    Huge[11] = 0x40;
    ASSERT_TRUE(C.sendRawBytes(Huge));
    Frame In;
    FrameReadStatus RS = C.readResponse(In);
    if (RS == FrameReadStatus::Ok) {
      EXPECT_EQ(FrameType::Error, In.Type);
    }
  }

  // After all that, a fresh client still gets served.
  ServiceClient C = S.connect();
  AllocRequest Request = proxyRequest("eqntott");
  AllocResponse Response;
  ErrorResponse ServerError;
  std::string Err;
  EXPECT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError, &Err))
      << Err;

  TelemetrySnapshot Stats;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_GE(Stats.count(telemetry::ServeMalformed), 2.0);
}

// --- test hooks: shed, fault, deadline -----------------------------------

TEST(Service, ForcedQueueOverflowSheds) {
  ServerTestHooks Hooks;
  std::atomic<bool> Force{true};
  Hooks.ForceQueueOverflow = [&] { return Force.load(); };
  LiveServer S(ServerConfig(), Hooks);
  ServiceClient C = S.connect();

  AllocRequest Request = proxyRequest("eqntott");
  AllocResponse Response;
  ErrorResponse ServerError;
  EXPECT_EQ(RpcStatus::Shed, C.allocate(Request, Response, ServerError));
  EXPECT_EQ("shed", ServerError.Code);

  // Backpressure is advisory: once load clears, the same connection
  // succeeds on retry.
  Force.store(false);
  EXPECT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError));

  TelemetrySnapshot Stats;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_EQ(1.0, Stats.count(telemetry::ServeShed));
}

TEST(Service, InjectedWorkerFaultFailsOnlyTheTargetedRequest) {
  ServerTestHooks Hooks;
  Hooks.FailRequest = [](const AllocRequest &R) {
    return R.ModuleText.find("module li") != std::string::npos;
  };
  LiveServer S(ServerConfig(), Hooks);
  ServiceClient C = S.connect();

  AllocResponse Response;
  ErrorResponse ServerError;
  AllocRequest Poisoned = proxyRequest("li");
  EXPECT_EQ(RpcStatus::Rejected, C.allocate(Poisoned, Response, ServerError));
  EXPECT_EQ("fault", ServerError.Code);

  AllocRequest Healthy = proxyRequest("eqntott");
  EXPECT_EQ(RpcStatus::Ok, C.allocate(Healthy, Response, ServerError));

  TelemetrySnapshot Stats;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_EQ(1.0, Stats.count(telemetry::ServeWorkerFaults));
}

TEST(Service, StalledBatcherExpiresDeadlines) {
  ServerTestHooks Hooks;
  Hooks.BeforeBatch = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  LiveServer S(ServerConfig(), Hooks);
  ServiceClient C = S.connect();

  AllocRequest Request = proxyRequest("eqntott");
  Request.DeadlineMs = 1;
  AllocResponse Response;
  ErrorResponse ServerError;
  EXPECT_EQ(RpcStatus::Rejected, C.allocate(Request, Response, ServerError));
  EXPECT_EQ("deadline", ServerError.Code);

  // Without a deadline the same stalled server still answers.
  Request.DeadlineMs = 0;
  EXPECT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError));
}

// --- drain ---------------------------------------------------------------

TEST(Service, DrainFinishesInFlightWorkAndRefusesNew) {
  auto S = std::make_unique<LiveServer>();
  int Port = S->Server.boundPort();

  // Hold a connection open across the drain; its request was fully served
  // beforehand and the drain must not tear the socket from under it.
  ServiceClient C;
  std::string Err;
  ASSERT_TRUE(C.connectTcp(Port, &Err)) << Err;
  AllocRequest Request = proxyRequest("eqntott");
  AllocResponse Response;
  ErrorResponse ServerError;
  ASSERT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError));

  S->Server.requestDrain();
  EXPECT_TRUE(S->Server.draining());

  // The held connection is told "draining" (or closed) on its next try...
  RpcStatus Status = C.allocate(Request, Response, ServerError, &Err);
  EXPECT_TRUE(Status == RpcStatus::Rejected || Status == RpcStatus::Transport);
  if (Status == RpcStatus::Rejected) {
    EXPECT_EQ("draining", ServerError.Code);
  }

  // ...new connections are refused outright, and wait() quiesces.
  S->Server.wait();
  ServiceClient Late;
  EXPECT_FALSE(Late.connectTcp(Port, &Err));
  S.reset();
}

// --- cache and shards (wire v1.1) ----------------------------------------

TEST(WireCodec, HelloMinorVersionFieldsAreVersionGated) {
  // A v1.0 hello (ProtocolMinor == 0) must not emit the v1.1 keys, and a
  // v1.0 payload parsed by a v1.1 client must land on the defaults — the
  // two directions of the mixed-version contract.
  HelloInfo Old;
  Old.ServerInfo = "old server";
  Old.ProtocolMinor = 0;
  std::string OldPayload = encodeHello(Old);
  EXPECT_EQ(std::string::npos, OldPayload.find("minor:"));
  EXPECT_EQ(std::string::npos, OldPayload.find("cache:"));
  EXPECT_EQ(std::string::npos, OldPayload.find("shards:"));

  HelloInfo ParsedOld;
  std::string Err;
  ASSERT_TRUE(parseHello(OldPayload, ParsedOld, &Err)) << Err;
  EXPECT_EQ(0u, ParsedOld.ProtocolMinor);
  EXPECT_FALSE(ParsedOld.CacheEnabled);
  EXPECT_EQ(0u, ParsedOld.Shards);

  // v1.1 round-trips its capability fields...
  HelloInfo New;
  New.ServerInfo = "new server";
  New.ProtocolMinor = WireMinorVersion;
  New.CacheEnabled = true;
  New.Shards = 4;
  HelloInfo ParsedNew;
  ASSERT_TRUE(parseHello(encodeHello(New), ParsedNew, &Err)) << Err;
  EXPECT_EQ(WireMinorVersion, ParsedNew.ProtocolMinor);
  EXPECT_TRUE(ParsedNew.CacheEnabled);
  EXPECT_EQ(4u, ParsedNew.Shards);

  // ...and an old client's parser (which ignores unknown keys) survives a
  // v1.1 payload: the same parse simply never sees the keys it predates.
  HelloInfo Tolerant;
  ASSERT_TRUE(parseHello("server: x\nfuture-key: whatever\n", Tolerant, &Err))
      << Err;
  EXPECT_EQ("x", Tolerant.ServerInfo);
}

TEST(Service, HelloAdvertisesCacheAndShards) {
  {
    LiveServer S; // defaults: cache on, one shard
    ServiceClient C = S.connect();
    EXPECT_EQ(WireMinorVersion, C.hello().ProtocolMinor);
    EXPECT_TRUE(C.hello().CacheEnabled);
    EXPECT_EQ(1u, C.hello().Shards);
  }
  {
    ServerConfig Config;
    Config.CacheBytes = 0;
    Config.Shards = 3;
    LiveServer S(Config);
    ServiceClient C = S.connect();
    EXPECT_FALSE(C.hello().CacheEnabled);
    EXPECT_EQ(3u, C.hello().Shards);
  }
}

TEST(Service, RepeatRequestServedFromCacheByteIdentical) {
  LiveServer S;
  ServiceClient C = S.connect();

  // Raw frames so the comparison covers the ENTIRE response payload —
  // costs, per-function summaries, telemetry, and IR — not just the
  // fields a parsed AllocResponse happens to surface.
  AllocRequest Request = proxyRequest("eqntott");
  Frame Req;
  Req.Type = FrameType::AllocRequest;
  Req.Payload = encodeAllocRequest(Request);
  std::string Bytes;
  encodeFrame(Req, Bytes);

  std::string Payloads[2];
  for (int I = 0; I < 2; ++I) {
    std::string Err;
    ASSERT_TRUE(C.sendRawBytes(Bytes, &Err)) << Err;
    Frame Resp;
    ASSERT_EQ(FrameReadStatus::Ok, C.readResponse(Resp, &Err)) << Err;
    ASSERT_EQ(FrameType::AllocResponse, Resp.Type);
    Payloads[I] = Resp.Payload;
  }
  EXPECT_EQ(Payloads[0], Payloads[1])
      << "cache hit diverged from the cold allocation";

  TelemetrySnapshot Stats;
  ErrorResponse ServerError;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_EQ(1.0, Stats.count(telemetry::CacheHits));
  EXPECT_EQ(1.0, Stats.count(telemetry::CacheMisses));
  EXPECT_EQ(1.0, Stats.count(telemetry::CacheInsertions));
  EXPECT_EQ(1.0, Stats.count(telemetry::CacheModules));
  EXPECT_GT(Stats.count(telemetry::CacheBytes), 0.0);
  // The hit bypassed the engine: only the cold run was batched.
  EXPECT_EQ(1.0, Stats.count(telemetry::ServeBatches));
  EXPECT_EQ(2.0, Stats.count(telemetry::ServeResponsesOk));
}

TEST(Service, OptionsPerturbationMissesCache) {
  LiveServer S;
  ServiceClient C = S.connect();

  AllocRequest Request = proxyRequest("eqntott");
  AllocResponse Response;
  ErrorResponse ServerError;
  ASSERT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError));

  // Same module, one behavior field perturbed: a different allocation
  // problem, so it must miss and be solved cold.
  AllocRequest Perturbed = Request;
  Perturbed.Options.AggressiveCoalescing =
      !Perturbed.Options.AggressiveCoalescing;
  ASSERT_EQ(RpcStatus::Ok, C.allocate(Perturbed, Response, ServerError));

  TelemetrySnapshot Stats;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_EQ(0.0, Stats.count(telemetry::CacheHits));
  EXPECT_EQ(2.0, Stats.count(telemetry::CacheMisses));
  EXPECT_EQ(2.0, Stats.count(telemetry::CacheInsertions));
}

TEST(Service, ShardedDispatchStaysBitIdentical) {
  ServerConfig Config;
  Config.Shards = 3;
  LiveServer S(Config);
  ServiceClient C = S.connect();

  TelemetrySnapshot Stats;
  ErrorResponse ServerError;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_EQ(3.0, Stats.count(telemetry::ShardCount));

  unsigned Sent = 0;
  for (const std::string &Proxy : specProxyNames()) {
    AllocRequest Request = proxyRequest(Proxy);
    std::string ExpectedIr;
    CostBreakdown ExpectedTotals;
    expectedAllocation(Request.ModuleText, Request, ExpectedIr,
                       ExpectedTotals);
    AllocResponse Response;
    std::string Err;
    ASSERT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError, &Err))
        << Proxy << ": " << Err;
    EXPECT_EQ(ExpectedIr, Response.AllocatedIr) << Proxy;
    EXPECT_TRUE(ExpectedTotals == Response.Totals) << Proxy;
    ++Sent;
  }

  // Every cold request was dispatched to exactly one shard.
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  double Dispatched = 0;
  for (unsigned I = 0; I < 3; ++I)
    Dispatched +=
        Stats.count("shard." + std::to_string(I) + ".dispatched");
  EXPECT_EQ(static_cast<double>(Sent), Dispatched);
}

// --- wire codec v2: binary modules (wire v1.2) ---------------------------

TEST(WireCodec, HelloCodecMaxIsVersionGated) {
  // Pre-v1.2 hellos carry no codec-max key and parse as text-only; a
  // v1.2 hello advertises the binary codec explicitly.
  HelloInfo Old;
  Old.ProtocolMinor = 1;
  Old.MaxCodec = 2; // must still be suppressed below the gating minor
  EXPECT_EQ(std::string::npos, encodeHello(Old).find("codec-max:"));

  HelloInfo Parsed;
  std::string Err;
  ASSERT_TRUE(parseHello(encodeHello(Old), Parsed, &Err)) << Err;
  EXPECT_EQ(1u, Parsed.MaxCodec) << "absent codec-max must mean text-only";

  HelloInfo New;
  New.ProtocolMinor = WireMinorVersion;
  New.MaxCodec = WireMaxCodec;
  ASSERT_TRUE(parseHello(encodeHello(New), Parsed, &Err)) << Err;
  EXPECT_EQ(WireMaxCodec, Parsed.MaxCodec);
}

TEST(Service, HelloAdvertisesBinaryCodec) {
  LiveServer S;
  ServiceClient C = S.connect();
  EXPECT_EQ(WireMaxCodec, C.hello().MaxCodec);
  EXPECT_GE(C.hello().MaxCodec, 2u);
}

TEST(Service, BinaryRequestsBitIdenticalToTextRequests) {
  // The two ingestion paths must be indistinguishable in their output:
  // same IR bytes, same totals, for every SPEC proxy. The cache keys the
  // codecs separately, so the v2 request is solved cold even right after
  // its v1 twin — this compares two independent allocations, not a
  // cached echo.
  LiveServer S;
  ServiceClient C = S.connect();
  for (const std::string &Proxy : specProxyNames()) {
    AllocRequest TextReq = proxyRequest(Proxy);

    AllocRequest BinReq = TextReq;
    ParseResult PR = parseModule(TextReq.ModuleText);
    ASSERT_TRUE(PR.ok()) << Proxy;
    std::string Err;
    ASSERT_TRUE(encodeModuleBinary(*PR.M, BinReq.ModuleBinary, &Err))
        << Proxy << ": " << Err;
    BinReq.ModuleText.clear();

    AllocResponse TextResp, BinResp;
    ErrorResponse ServerError;
    ASSERT_EQ(RpcStatus::Ok,
              C.allocate(TextReq, TextResp, ServerError, &Err))
        << Proxy << ": " << Err;
    ASSERT_EQ(RpcStatus::Ok, C.allocate(BinReq, BinResp, ServerError, &Err))
        << Proxy << ": " << Err << " [" << ServerError.Code << "] "
        << ServerError.Message;

    EXPECT_EQ(TextResp.AllocatedIr, BinResp.AllocatedIr) << Proxy;
    EXPECT_TRUE(TextResp.Totals == BinResp.Totals) << Proxy;
  }

  // Both codecs populated the cache under their own keys: all cold.
  TelemetrySnapshot Stats;
  ErrorResponse ServerError;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_EQ(0.0, Stats.count(telemetry::CacheHits));
}

TEST(Service, RepeatBinaryRequestServedFromCacheByteIdentical) {
  LiveServer S;
  ServiceClient C = S.connect();

  AllocRequest Request = proxyRequest("eqntott");
  ParseResult PR = parseModule(Request.ModuleText);
  ASSERT_TRUE(PR.ok());
  std::string Err;
  ASSERT_TRUE(encodeModuleBinary(*PR.M, Request.ModuleBinary, &Err)) << Err;
  Request.ModuleText.clear();

  Frame Req;
  Req.Type = FrameType::AllocRequestV2;
  Req.Payload = encodeAllocRequestV2(Request);
  std::string Bytes;
  encodeFrame(Req, Bytes);

  std::string Payloads[2];
  for (int I = 0; I < 2; ++I) {
    ASSERT_TRUE(C.sendRawBytes(Bytes, &Err)) << Err;
    Frame Resp;
    ASSERT_EQ(FrameReadStatus::Ok, C.readResponse(Resp, &Err)) << Err;
    ASSERT_EQ(FrameType::AllocResponse, Resp.Type);
    Payloads[I] = Resp.Payload;
  }
  EXPECT_EQ(Payloads[0], Payloads[1]);

  TelemetrySnapshot Stats;
  ErrorResponse ServerError;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_EQ(1.0, Stats.count(telemetry::CacheHits));
  EXPECT_EQ(1.0, Stats.count(telemetry::CacheMisses));
}

TEST(Service, V2GarbageAndTornFramesNeverTakeTheServerDown) {
  // The v1 robustness ladder, restated for the binary codec: every abuse
  // is answered with an Error frame or a clean close, the daemon stays up,
  // and the next well-formed v2 request succeeds.
  LiveServer S;

  {
    // Well-framed AllocRequestV2 whose payload is not a v2 payload.
    ServiceClient C = S.connect();
    Frame F;
    F.Type = FrameType::AllocRequestV2;
    F.Payload = "\xde\xad not a request";
    std::string Bytes;
    encodeFrame(F, Bytes);
    ASSERT_TRUE(C.sendRawBytes(Bytes));
    Frame In;
    ASSERT_EQ(FrameReadStatus::Ok, C.readResponse(In));
    ASSERT_EQ(FrameType::Error, In.Type);
    ErrorResponse E;
    ASSERT_TRUE(parseError(In.Payload, E));
    EXPECT_EQ("malformed", E.Code);
  }
  {
    // Valid v2 headers carrying corrupted module bytes: the frame and
    // request parse, the module decode fails, the connection survives.
    ServiceClient C = S.connect();
    AllocRequest R = proxyRequest("eqntott");
    ParseResult PR = parseModule(R.ModuleText);
    ASSERT_TRUE(PR.ok());
    std::string Err;
    ASSERT_TRUE(encodeModuleBinary(*PR.M, R.ModuleBinary, &Err));
    R.ModuleText.clear();
    R.ModuleBinary[R.ModuleBinary.size() / 2] ^= 0x5A;

    AllocResponse Response;
    ErrorResponse ServerError;
    EXPECT_EQ(RpcStatus::Rejected, C.allocate(R, Response, ServerError));
    EXPECT_EQ("malformed", ServerError.Code);

    // Same connection still serves valid v2 work.
    AllocRequest Good = proxyRequest("eqntott");
    PR = parseModule(Good.ModuleText);
    ASSERT_TRUE(PR.ok());
    ASSERT_TRUE(encodeModuleBinary(*PR.M, Good.ModuleBinary, &Err));
    Good.ModuleText.clear();
    EXPECT_EQ(RpcStatus::Ok, C.allocate(Good, Response, ServerError));
  }
  {
    // Torn v2 frame: header promises more payload than ever arrives.
    ServiceClient C = S.connect();
    AllocRequest R = proxyRequest("eqntott");
    ParseResult PR = parseModule(R.ModuleText);
    ASSERT_TRUE(PR.ok());
    std::string Err;
    ASSERT_TRUE(encodeModuleBinary(*PR.M, R.ModuleBinary, &Err));
    R.ModuleText.clear();
    Frame F;
    F.Type = FrameType::AllocRequestV2;
    F.Payload = encodeAllocRequestV2(R);
    std::string Bytes;
    encodeFrame(F, Bytes);
    ASSERT_TRUE(C.sendRawBytes(Bytes.substr(0, WireHeaderSize + 10)));
    C.close();
  }
  {
    // Oversized declared length on the v2 frame type.
    ServiceClient C = S.connect();
    Frame F;
    F.Type = FrameType::AllocRequestV2;
    F.Payload = "x";
    std::string Huge;
    encodeFrame(F, Huge);
    Huge[8] = 0;
    Huge[9] = 0;
    Huge[10] = 0;
    Huge[11] = 0x40;
    ASSERT_TRUE(C.sendRawBytes(Huge));
    Frame In;
    FrameReadStatus RS = C.readResponse(In);
    if (RS == FrameReadStatus::Ok) {
      EXPECT_EQ(FrameType::Error, In.Type);
    }
  }

  ServiceClient C = S.connect();
  AllocRequest Request = proxyRequest("eqntott");
  AllocResponse Response;
  ErrorResponse ServerError;
  std::string Err;
  EXPECT_EQ(RpcStatus::Ok, C.allocate(Request, Response, ServerError, &Err))
      << Err;

  TelemetrySnapshot Stats;
  ASSERT_EQ(RpcStatus::Ok, C.stats(Stats, ServerError));
  EXPECT_GE(Stats.count(telemetry::ServeMalformed), 2.0);
}

// --- event loop: connection scaling --------------------------------------

TEST(Service, ManyIdleConnectionsPlusActiveWork) {
  // The event loop decouples connection count from thread count: hundreds
  // of idle peers must cost nothing but a file descriptor each while
  // allocations proceed on other connections, and drain must sweep the
  // idle crowd without waiting on any of them.
  LiveServer S;

  std::vector<ServiceClient> Idle(200);
  std::string Err;
  for (auto &C : Idle)
    ASSERT_TRUE(C.connectTcp(S.Server.boundPort(), &Err)) << Err;

  ServiceClient Active = S.connect();
  AllocRequest Request = proxyRequest("eqntott");
  AllocResponse Response;
  ErrorResponse ServerError;
  ASSERT_EQ(RpcStatus::Ok, Active.allocate(Request, Response, ServerError));

  TelemetrySnapshot Stats;
  ASSERT_EQ(RpcStatus::Ok, Active.stats(Stats, ServerError));
  EXPECT_GE(Stats.count(telemetry::ServeOpenConnections), 201.0);
  EXPECT_GE(Stats.count(telemetry::ServePeakConnections), 201.0);

  // Drain with every idle connection still open: the loop closes them
  // immediately rather than waiting out any per-connection timeout.
  auto Start = std::chrono::steady_clock::now();
  S.Server.requestDrain();
  S.Server.wait();
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_LT(ElapsedMs, 5000) << "drain waited on idle connections";
}

TEST(Service, DrainInterruptsSilentAndMidFramePeers) {
  auto S = std::make_unique<LiveServer>();
  std::string Err;

  // One peer that never reads its Hello and goes silent, and one that
  // sends a torn header fragment then stalls: without the read-side
  // shutdown in requestDrain() the second would pin its connection thread
  // for the full mid-frame read budget (30 s) and wait() would hang on it.
  Socket Silent = Socket::connectTcp(S->Server.boundPort(), &Err);
  ASSERT_TRUE(Silent.valid()) << Err;
  Socket Torn = Socket::connectTcp(S->Server.boundPort(), &Err);
  ASSERT_TRUE(Torn.valid()) << Err;
  const char Fragment[2] = {'\x00', '\x01'};
  ASSERT_EQ(IoStatus::Ok, Torn.sendAll(Fragment, sizeof(Fragment), 1000));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  auto Start = std::chrono::steady_clock::now();
  S->Server.requestDrain();
  S->Server.wait();
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_LT(ElapsedMs, 5000) << "drain waited out a wedged peer";
  S.reset();
}

} // namespace
