//===- tests/FrontendTest.cpp - C-subset frontend tests -------------------===//
//
// Covers the four pipeline stages (lexer, parser, sema, irgen) plus the
// contracts every compiled module is held to: verifier-clean, byte-exact
// print -> parse -> print round-trip, deterministic recompilation, and a
// clean pass through the oracle lattice. The committed corpus under
// examples/corpus_c/ is compiled wholesale; its lowered IR additionally
// lives in fuzz/corpus/ where FuzzTest replays every entry through the
// full lattice.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "fuzz/Oracle.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef CCRA_SOURCE_DIR
#define CCRA_SOURCE_DIR "."
#endif

using namespace ccra;
using namespace ccra::cc;

namespace {

std::vector<std::string> corpusSources() {
  std::vector<std::string> Paths;
  const std::string Dir = std::string(CCRA_SOURCE_DIR) + "/examples/corpus_c";
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".c")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

std::string printed(const Module &M) {
  std::string Out;
  printModule(M, Out);
  return Out;
}

std::string firstDiag(const std::vector<Diagnostic> &Diags) {
  return Diags.empty() ? std::string() : Diags.front().render();
}

/// Compiles \p Source expecting failure and returns the diagnostics.
std::vector<Diagnostic> expectDiags(const std::string &Source) {
  CompileResult R = Frontend::compile(Source, "t");
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.Diags.empty());
  return R.Diags;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(FrontendLexer, TokenPositions) {
  std::vector<Diagnostic> Diags;
  std::vector<Token> Toks = lex("int main() {\n  return 42;\n}\n", Diags);
  ASSERT_TRUE(Diags.empty());
  ASSERT_GE(Toks.size(), 9u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[0].Column, 1u);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[1].Text, "main");
  EXPECT_EQ(Toks[1].Column, 5u);
  // "return" is at line 2 column 3, "42" at column 10.
  auto It = std::find_if(Toks.begin(), Toks.end(), [](const Token &T) {
    return T.Kind == TokenKind::Number;
  });
  ASSERT_NE(It, Toks.end());
  EXPECT_EQ(It->Value, 42);
  EXPECT_EQ(It->Line, 2u);
  EXPECT_EQ(It->Column, 10u);
  EXPECT_EQ(Toks.back().Kind, TokenKind::Eof);
}

TEST(FrontendLexer, UnexpectedCharacterPosition) {
  std::vector<Diagnostic> Diags;
  lex("int main() {\n  return 1 $ 2;\n}\n", Diags);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Line, 2u);
  EXPECT_EQ(Diags[0].Column, 12u);
  EXPECT_NE(Diags[0].Message.find("unexpected character"), std::string::npos);
}

TEST(FrontendLexer, UnterminatedBlockComment) {
  std::vector<Diagnostic> Diags;
  lex("int x;\n/* never closed\nint y;\n", Diags);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Line, 2u);
  EXPECT_NE(Diags[0].Message.find("unterminated"), std::string::npos);
}

TEST(FrontendLexer, CommentsAndOperators) {
  std::vector<Diagnostic> Diags;
  std::vector<Token> Toks =
      lex("// line comment\na <= b /* inline */ != c && d", Diags);
  ASSERT_TRUE(Diags.empty());
  std::vector<TokenKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::LessEq, TokenKind::Identifier,
      TokenKind::NotEq,      TokenKind::Identifier, TokenKind::AndAnd,
      TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

//===----------------------------------------------------------------------===//
// Parser diagnostics
//===----------------------------------------------------------------------===//

TEST(FrontendParser, MissingSemicolonPosition) {
  std::vector<Diagnostic> Diags = expectDiags("int main() {\n  int x = 1\n  return x;\n}\n");
  EXPECT_EQ(Diags[0].Line, 3u);
  EXPECT_EQ(Diags[0].Near, "return");
  EXPECT_NE(Diags[0].Message.find("expected ';'"), std::string::npos);
}

TEST(FrontendParser, MissingCloseParen) {
  std::vector<Diagnostic> Diags = expectDiags("int main() {\n  return (1 + 2;\n}\n");
  EXPECT_EQ(Diags[0].Line, 2u);
  EXPECT_NE(Diags[0].Message.find("expected ')'"), std::string::npos);
}

TEST(FrontendParser, RenderedDiagnosticMatchesIRParserShape) {
  // Frontend and IR-parser diagnostics share support/Diagnostic.h, so both
  // render as "line L:C: message ...".
  std::vector<Diagnostic> FeDiags = expectDiags("int main( {\n  return 0;\n}\n");
  std::string FeLine = FeDiags[0].render();
  EXPECT_EQ(FeLine.rfind("line 1:", 0), 0u) << FeLine;

  ParseResult IrR = parseModule("module m\nfunc @f {\nentry:\n  %i0 = bogus 1\n}\n");
  ASSERT_FALSE(IrR.ok());
  ASSERT_FALSE(IrR.Diags.empty());
  std::string IrLine = IrR.Diags[0].render();
  EXPECT_EQ(IrLine.rfind("line 4:", 0), 0u) << IrLine;
  EXPECT_NE(IrLine.find("unknown opcode"), std::string::npos);
  EXPECT_NE(IrLine.find("'bogus'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sema diagnostics
//===----------------------------------------------------------------------===//

TEST(FrontendSema, UndeclaredIdentifier) {
  std::vector<Diagnostic> Diags =
      expectDiags("int main() {\n  return nope;\n}\n");
  EXPECT_EQ(Diags[0].Line, 2u);
  EXPECT_NE(Diags[0].Message.find("undeclared"), std::string::npos);
  EXPECT_EQ(Diags[0].Near, "nope");
}

TEST(FrontendSema, CallArgumentCountMismatch) {
  std::vector<Diagnostic> Diags = expectDiags(
      "int f(int a, int b) { return a + b; }\nint main() {\n  return f(1);\n}\n");
  EXPECT_EQ(Diags[0].Line, 3u);
  EXPECT_NE(Diags[0].Message.find("argument"), std::string::npos);
}

TEST(FrontendSema, BreakOutsideLoop) {
  std::vector<Diagnostic> Diags =
      expectDiags("int main() {\n  break;\n  return 0;\n}\n");
  EXPECT_EQ(Diags[0].Line, 2u);
  EXPECT_NE(Diags[0].Message.find("break"), std::string::npos);
}

TEST(FrontendSema, Redefinition) {
  std::vector<Diagnostic> Diags =
      expectDiags("int main() {\n  int x = 1;\n  int x = 2;\n  return x;\n}\n");
  EXPECT_EQ(Diags[0].Line, 3u);
  EXPECT_NE(Diags[0].Message.find("redefinition"), std::string::npos);
}

TEST(FrontendSema, PointerArithmeticTypeRules) {
  // ptr + int is fine; ptr * int is not.
  CompileResult Ok = Frontend::compile(
      "int a[4];\nint main() {\n  int *p = a;\n  return *(p + 1);\n}\n", "t");
  EXPECT_TRUE(Ok.ok());

  std::vector<Diagnostic> Diags = expectDiags(
      "int a[4];\nint main() {\n  int *p = a;\n  return *(p * 2);\n}\n");
  EXPECT_EQ(Diags[0].Line, 4u);
}

//===----------------------------------------------------------------------===//
// Lowering (golden IR)
//===----------------------------------------------------------------------===//

TEST(FrontendIRGen, GoldenStraightLine) {
  CompileResult R = Frontend::compile(
      "int add3(int a, int b, int c) {\n"
      "  return a + b + c;\n"
      "}\n"
      "\n"
      "int main() {\n"
      "  return add3(1, 2, 3);\n"
      "}\n",
      "g1");
  ASSERT_TRUE(R.ok()) << firstDiag(R.Diags);
  EXPECT_EQ(printed(*R.M),
            "module g1\n"
            "func @add3 {\n"
            "entry:\n"
            "  %i1 = loadimm 0\n"
            "  %i0 = move %i1\n"
            "  %i3 = loadimm 1\n"
            "  %i2 = move %i3\n"
            "  %i5 = loadimm 2\n"
            "  %i4 = move %i5\n"
            "  %i6 = add %i0, %i2\n"
            "  %i7 = add %i6, %i4\n"
            "  ret %i7\n"
            "}\n"
            "\n"
            "func @main {\n"
            "entry:\n"
            "  %i0 = loadimm 1\n"
            "  %i1 = loadimm 2\n"
            "  %i2 = loadimm 3\n"
            "  %i3 = call @add3(%i0, %i1, %i2)\n"
            "  ret %i3\n"
            "}\n"
            "\n");
}

TEST(FrontendIRGen, GoldenLoopAndGlobal) {
  CompileResult R = Frontend::compile(
      "int g;\n"
      "\n"
      "int sum_to(int n) {\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < n; i = i + 1) {\n"
      "    acc = acc + i;\n"
      "  }\n"
      "  g = acc;\n"
      "  return acc;\n"
      "}\n"
      "\n"
      "int main() {\n"
      "  if (sum_to(10) != 45) {\n"
      "    return 1;\n"
      "  }\n"
      "  return g;\n"
      "}\n",
      "g2");
  ASSERT_TRUE(R.ok()) << firstDiag(R.Diags);
  EXPECT_EQ(printed(*R.M),
            "module g2\n"
            "func @sum_to {\n"
            "entry:\n"
            "  %i1 = loadimm 0\n"
            "  %i0 = move %i1\n"
            "  %i3 = loadimm 0\n"
            "  %i2 = move %i3\n"
            "  %i5 = loadimm 0\n"
            "  %i4 = move %i5\n"
            "  br\n"
            "  ; succs: for.cond.1(1)\n"
            "for.cond.1:    ; preds: entry for.step.1\n"
            "  %i6 = cmp %i4, %i0\n"
            "  condbr %i6\n"
            "  ; succs: for.body.1(0.875) for.end.1(0.125)\n"
            "for.body.1:    ; preds: for.cond.1\n"
            "  %i7 = add %i2, %i4\n"
            "  %i2 = move %i7\n"
            "  br\n"
            "  ; succs: for.step.1(1)\n"
            "for.step.1:    ; preds: for.body.1\n"
            "  %i8 = loadimm 1\n"
            "  %i9 = add %i4, %i8\n"
            "  %i4 = move %i9\n"
            "  br\n"
            "  ; succs: for.cond.1(1)\n"
            "for.end.1:    ; preds: for.cond.1\n"
            "  %i10 = loadimm 4096\n"
            "  store %i2, %i10\n"
            "  ret %i2\n"
            "}\n"
            "\n"
            "func @main {\n"
            "entry:\n"
            "  %i0 = loadimm 10\n"
            "  %i1 = call @sum_to(%i0)\n"
            "  %i2 = loadimm 45\n"
            "  %i3 = cmp %i1, %i2\n"
            "  condbr %i3\n"
            "  ; succs: then.1(0.25) endif.1(0.75)\n"
            "then.1:    ; preds: entry\n"
            "  %i4 = loadimm 1\n"
            "  ret %i4\n"
            "endif.1:    ; preds: entry\n"
            "  %i5 = loadimm 4096\n"
            "  %i6 = load %i5\n"
            "  ret %i6\n"
            "}\n"
            "\n");
}

TEST(FrontendIRGen, NestedLoopProbabilities) {
  // Loop back-edge probability deepens with nesting: 0.875 at depth 1,
  // 0.9375 at depth 2.
  CompileResult R = Frontend::compile(
      "int main() {\n"
      "  int s = 0;\n"
      "  int i = 0;\n"
      "  while (i < 10) {\n"
      "    int j = 0;\n"
      "    while (j < 10) {\n"
      "      s = s + 1;\n"
      "      j = j + 1;\n"
      "    }\n"
      "    i = i + 1;\n"
      "  }\n"
      "  return s;\n"
      "}\n",
      "t");
  ASSERT_TRUE(R.ok());
  std::string Text = printed(*R.M);
  EXPECT_NE(Text.find("while.body.1(0.875)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("while.body.2(0.9375)"), std::string::npos) << Text;
}

TEST(FrontendIRGen, RecursionAndForwardReferences) {
  // Mutual recursion without prototypes: callees are created up front.
  CompileResult R = Frontend::compile(
      "int is_even(int n) {\n"
      "  if (n == 0) { return 1; }\n"
      "  return is_odd(n - 1);\n"
      "}\n"
      "int is_odd(int n) {\n"
      "  if (n == 0) { return 0; }\n"
      "  return is_even(n - 1);\n"
      "}\n"
      "int main() {\n"
      "  return is_even(10);\n"
      "}\n",
      "t");
  ASSERT_TRUE(R.ok()) << firstDiag(R.Diags);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*R.M, &Errors)) << (Errors.empty() ? "" : Errors[0]);
  EXPECT_NE(R.M->getFunction("is_odd"), nullptr);
  EXPECT_EQ(R.M->getEntryFunction()->getName(), "main");
}

//===----------------------------------------------------------------------===//
// Whole-corpus contracts
//===----------------------------------------------------------------------===//

TEST(FrontendCorpus, CompilesVerifiesAndRoundTrips) {
  std::vector<std::string> Paths = corpusSources();
  ASSERT_GE(Paths.size(), 15u) << "corpus_c should hold at least 15 programs";
  for (const std::string &Path : Paths) {
    CompileResult R = Frontend::compileFile(Path);
    ASSERT_TRUE(R.ok()) << Path << ": " << firstDiag(R.Diags);

    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*R.M, &Errors))
        << Path << ": " << (Errors.empty() ? "" : Errors[0]);

    std::string First = printed(*R.M);
    ParseResult P = parseModule(First);
    ASSERT_TRUE(P.ok()) << Path << ": " << firstDiag(P.Diags);
    EXPECT_EQ(printed(*P.M), First) << Path << ": round-trip not byte-exact";
  }
}

TEST(FrontendCorpus, DeterministicRecompilation) {
  for (const std::string &Path : corpusSources()) {
    CompileResult A = Frontend::compileFile(Path);
    CompileResult B = Frontend::compileFile(Path);
    ASSERT_TRUE(A.ok() && B.ok()) << Path;
    EXPECT_EQ(printed(*A.M), printed(*B.M)) << Path;
  }
}

TEST(FrontendCorpus, OracleLatticeSpotCheck) {
  // Full-lattice coverage of every corpus program lives in FuzzTest via the
  // committed fuzz/corpus/cc-*.ccra entries; here we lattice-check a few
  // shapes (recursion, loops+arrays, dispatch loop) straight from source.
  const char *Spots[] = {"fib.c", "heap_sort.c", "interp.c"};
  for (const char *Name : Spots) {
    std::string Path =
        std::string(CCRA_SOURCE_DIR) + "/examples/corpus_c/" + Name;
    CompileResult R = Frontend::compileFile(Path);
    ASSERT_TRUE(R.ok()) << Path;
    OracleReport Report = runOracleLattice(*R.M, OracleOptions());
    EXPECT_TRUE(Report.ok()) << Path << ": "
                             << (Report.Failures.empty()
                                     ? ""
                                     : Report.Failures[0].Detail);
    EXPECT_GT(Report.LegsRun, 0u);
  }
}

TEST(FrontendCorpus, CommittedFuzzCorpusMatchesRecompile) {
  // The committed fuzz/corpus/cc-<name>.ccra entries must stay in sync with
  // recompiling the C sources (the nightly fuzz leg enforces the same).
  std::string FuzzDir = std::string(CCRA_SOURCE_DIR) + "/fuzz/corpus";
  unsigned Checked = 0;
  for (const std::string &Path : corpusSources()) {
    std::string Name = Frontend::moduleNameForPath(Path);
    std::string Committed = FuzzDir + "/cc-" + Name + ".ccra";
    if (!std::filesystem::exists(Committed))
      continue;
    std::ifstream In(Committed);
    std::stringstream SS;
    SS << In.rdbuf();
    std::string Text = SS.str();
    // Strip the "; " provenance header lines; the body is printed IR.
    std::string Body;
    std::istringstream Lines(Text);
    std::string Line;
    while (std::getline(Lines, Line))
      if (Line.rfind(";", 0) != 0)
        Body += Line + "\n";
    while (Body.size() && Body.front() == '\n')
      Body.erase(Body.begin());

    CompileResult R = Frontend::compileFile(Path);
    ASSERT_TRUE(R.ok()) << Path;
    EXPECT_EQ(printed(*R.M), Body)
        << Committed << " is stale; regenerate with "
        << "ccra_cc --emit-corpus=fuzz/corpus examples/corpus_c/*.c";
    ++Checked;
  }
  EXPECT_GE(Checked, 15u) << "expected committed cc-*.ccra fuzz corpus entries";
}

} // namespace
