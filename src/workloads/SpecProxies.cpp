//===- workloads/SpecProxies.cpp ------------------------------------------===//
//
// Each builder documents how the proxy's structure maps to the program
// characteristics the paper reports for the original SPEC92 benchmark. The
// magnitudes (invocation counts, reference densities, branch probabilities)
// are chosen so the *shape* of each reproduced figure matches: where spill
// cost dominates, where call cost takes over, and which enhancement matters.
//
//===----------------------------------------------------------------------===//

#include "workloads/SpecProxies.h"

#include "ir/Verifier.h"
#include "workloads/SyntheticBuilder.h"

#include <cassert>

using namespace ccra;

namespace {

/// Builds a main() that invokes \p Hot once per innermost iteration of a
/// loop nest with the given per-level trip counts (profile truth). Keeps
/// a small pool live across the hot call: with callee-save registers
/// available both base and improved allocators handle main identically, so
/// main contributes the same small overhead to every allocator.
void buildDriverMain(Module &M, Function *Hot,
                     const std::vector<double> &Trips, uint64_t Seed) {
  Function *MainF = M.createFunction("main");
  SyntheticFunctionBuilder B(*MainF, Seed);
  std::vector<VirtReg> Pool = B.makeValues(RegBank::Int, 4);
  std::vector<LoopHandles> Loops;
  for (double Trip : Trips)
    Loops.push_back(B.beginLoop(Trip));
  B.touch(Pool, 4);
  B.call(Hot);
  B.touch(Pool, 2);
  for (auto It = Loops.rbegin(); It != Loops.rend(); ++It)
    B.endLoop(*It);
  B.touch(Pool, 2);
  B.finish();
  M.setEntryFunction(MainF);
}

/// A small leaf function: register traffic but no calls, so all of its
/// live ranges are happy in caller-save registers under every allocator.
Function *buildLeaf(Module &M, const std::string &Name, RegBank Bank,
                    unsigned PoolSize, unsigned Ops, uint64_t Seed) {
  Function *F = M.createFunction(Name);
  SyntheticFunctionBuilder B(*F, Seed);
  std::vector<VirtReg> Pool = B.makeValues(Bank, PoolSize);
  LoopHandles Loop = B.beginLoop(8);
  B.touch(Pool, Ops);
  B.localWork(Bank, 2, 3);
  B.endLoop(Loop);
  B.shufflePoolValue(Pool);
  B.touch(Pool, 2);
  B.finish();
  return F;
}

/// The eqntott/ear pattern (§3.2, Figures 2/6/7): a frequently invoked
/// function whose long-lived values are hot (dense references inside a
/// loop) but cross a call that sits on a rarely executed path after the
/// loop. The base model prefers callee-save registers for them (they
/// "contain a call"), paying 2 x entryFreq per register; storage-class
/// analysis sees benefitCaller >> benefitCallee and pays only the cold
/// call's tiny caller-save cost.
Function *buildHotFunctionWithColdCall(Module &M, const std::string &Name,
                                       Function *ColdCallee, RegBank Bank,
                                       unsigned PoolSize, double InnerTrip,
                                       unsigned OpsPerIter, double ColdProb,
                                       uint64_t Seed) {
  Function *F = M.createFunction(Name);
  SyntheticFunctionBuilder B(*F, Seed);
  std::vector<VirtReg> Pool = B.makeValues(Bank, PoolSize);

  LoopHandles Hot = B.beginLoop(InnerTrip);
  B.touch(Pool, OpsPerIter);
  B.localWork(Bank, 1, 3);
  B.endLoop(Hot);
  // Straight-line copies (the source dies at the move): the coalescing
  // phase merges them away.
  B.shufflePoolValue(Pool);
  B.shufflePoolValue(Pool);

  // The cold tail: a rarely taken path containing the call. The pool is
  // used again after the join, so every pool value is live across it.
  BranchHandles Cold = B.beginBranch(ColdProb);
  B.call(ColdCallee);
  B.elseBranch(Cold);
  B.localWork(Bank, 1, 2);
  B.endBranch(Cold);

  B.useEach(Pool);
  B.finish();
  return F;
}

/// The li/sc pattern (§4, Figure 6's "only storage-class analysis helps"
/// class): values with few references that are live across *hot* calls.
/// Caller-save residence costs more than their spill code; callee-save
/// residence costs more too (the function itself is hot). The right answer
/// is memory, which only storage-class analysis can choose.
void emitSpillBait(SyntheticFunctionBuilder &B, RegBank Bank, unsigned Count,
                   const std::vector<Function *> &HotCallees,
                   double ReuseProb, std::vector<VirtReg> &BaitOut) {
  BaitOut = B.makeValues(Bank, Count);
  for (Function *Callee : HotCallees)
    B.call(Callee);
  // One cheap reuse on a moderately likely path keeps the bait live across
  // the calls while keeping its reference count low.
  BranchHandles Reuse = B.beginBranch(ReuseProb);
  B.useEach(BaitOut);
  B.elseBranch(Reuse); // nothing on the else path
  B.endBranch(Reuse);
}

// ---------------------------------------------------------------------------
// The fourteen proxies.
// ---------------------------------------------------------------------------

std::unique_ptr<Module> buildEqntott() {
  auto M = std::make_unique<Module>("eqntott");
  // bit-vector comparison: cmppt is the famous hot function; its long-lived
  // values cross only a cold error/IO path.
  Function *BitCount = buildLeaf(*M, "bit_count", RegBank::Int, 5, 8, 11);
  Function *Cmppt = buildHotFunctionWithColdCall(
      *M, "cmppt", BitCount, RegBank::Int, /*PoolSize=*/10, /*InnerTrip=*/20,
      /*OpsPerIter=*/12, /*ColdProb=*/0.01, 12);
  buildDriverMain(*M, Cmppt, {100, 100, 100}, 13);
  return M;
}

std::unique_ptr<Module> buildEar() {
  auto M = std::make_unique<Module>("ear");
  // Cochlea model: floating-point FIR filters invoked per sample; results
  // cross a cold output call.
  Function *Output = buildLeaf(*M, "write_sample", RegBank::Int, 4, 6, 21);
  Function *Fir = buildHotFunctionWithColdCall(
      *M, "fir_filter", Output, RegBank::Float, /*PoolSize=*/8,
      /*InnerTrip=*/25, /*OpsPerIter=*/10, /*ColdProb=*/0.02, 22);
  buildDriverMain(*M, Fir, {100, 100, 100}, 23);
  return M;
}

std::unique_ptr<Module> buildLi() {
  auto M = std::make_unique<Module>("li");
  // Lisp interpreter: eval's environment bookkeeping values have few
  // references but are live across the hot apply/cons calls on the main
  // dispatch path.
  Function *Apply = buildLeaf(*M, "xlapply", RegBank::Int, 6, 10, 31);
  Function *Cons = buildLeaf(*M, "cons", RegBank::Int, 4, 6, 32);

  Function *Eval = M->createFunction("xleval");
  {
    SyntheticFunctionBuilder B(*Eval, 33);
    // A few genuinely hot values (the form under evaluation).
    std::vector<VirtReg> HotPool = B.makeValues(RegBank::Int, 4);
    LoopHandles L = B.beginLoop(30);
    B.touch(HotPool, 6);
    B.endLoop(L);
    // The Figure 8 structure (§8): a software-pipelined web whose values
    // cross the hot apply/cons calls. Pessimistic coloring spills them
    // (correctly — their spill code is cheaper than save/restores around
    // the hot calls); optimistic coloring rescues them into caller-save
    // registers and loses.
    B.circulantWeb(RegBank::Int, 12, 5, 1,
                   {Apply, Cons, Apply, Cons, Apply, Cons});
    // The bait: low-reference values crossing two hot calls.
    std::vector<VirtReg> Bait;
    emitSpillBait(B, RegBank::Int, 10, {Apply, Cons}, 0.2, Bait);
    B.touch(HotPool, 3);
    B.finish();
  }
  buildDriverMain(*M, Eval, {100, 100, 10}, 34);
  return M;
}

std::unique_ptr<Module> buildSc() {
  auto M = std::make_unique<Module>("sc");
  // Spreadsheet: cell re-evaluation calls the formula interpreter on the
  // hot path while carrying rarely reused bookkeeping values.
  Function *EvalCell = buildLeaf(*M, "eval_cell", RegBank::Int, 6, 9, 41);
  Function *Update = buildLeaf(*M, "update_deps", RegBank::Int, 5, 7, 42);

  Function *Recalc = M->createFunction("recalc");
  {
    SyntheticFunctionBuilder B(*Recalc, 43);
    std::vector<VirtReg> HotPool = B.makeValues(RegBank::Int, 5);
    LoopHandles L = B.beginLoop(40);
    B.touch(HotPool, 7);
    B.endLoop(L);
    B.circulantWeb(RegBank::Int, 12, 5, 1,
                   {EvalCell, Update, EvalCell, Update, EvalCell, Update});
    std::vector<VirtReg> Bait;
    emitSpillBait(B, RegBank::Int, 12, {EvalCell, Update}, 0.3, Bait);
    B.touch(HotPool, 3);
    B.finish();
  }
  buildDriverMain(*M, Recalc, {100, 100, 10}, 44);
  return M;
}

std::unique_ptr<Module> buildCompress() {
  auto M = std::make_unique<Module>("compress");
  // LZW: the hash/code values are hot in the scan loop and cross only the
  // cold table-flush call.
  Function *Flush = buildLeaf(*M, "cl_hash", RegBank::Int, 5, 8, 51);
  Function *Code = buildHotFunctionWithColdCall(
      *M, "output_code", Flush, RegBank::Int, /*PoolSize=*/8,
      /*InnerTrip=*/15, /*OpsPerIter=*/10, /*ColdProb=*/0.01, 52);
  buildDriverMain(*M, Code, {100, 100, 50}, 53);
  return M;
}

std::unique_ptr<Module> buildEspresso() {
  auto M = std::make_unique<Module>("espresso");
  // Two-level logic minimizer: moderate functions, few values crossing
  // each call — callee-save registers are rarely contended, so the
  // preference decision has nothing to arbitrate.
  Function *Count = buildLeaf(*M, "count_ones", RegBank::Int, 5, 8, 61);

  Function *Expand = M->createFunction("expand");
  {
    SyntheticFunctionBuilder B(*Expand, 62);
    std::vector<VirtReg> CubePool = B.makeValues(RegBank::Int, 6);
    LoopHandles L = B.beginLoop(25);
    B.touch(CubePool, 8);
    BranchHandles Br = B.beginBranch(0.01);
    B.call(Count);
    B.elseBranch(Br);
    B.localWork(RegBank::Int, 2, 3);
    B.endBranch(Br);
    B.touch(CubePool, 2);
    B.endLoop(L);
    B.touch(CubePool, 3);
    B.finish();
  }
  Function *Reduce = buildHotFunctionWithColdCall(
      *M, "reduce", Count, RegBank::Int, /*PoolSize=*/5, /*InnerTrip=*/20,
      /*OpsPerIter=*/8, /*ColdProb=*/0.05, 63);
  (void)Reduce;

  Function *MainF = M->createFunction("main");
  {
    SyntheticFunctionBuilder B(*MainF, 64);
    std::vector<VirtReg> Pool = B.makeValues(RegBank::Int, 4);
    LoopHandles L0 = B.beginLoop(100);
    LoopHandles L1 = B.beginLoop(100);
    B.touch(Pool, 3);
    B.call(Expand);
    B.call(Reduce);
    B.endLoop(L1);
    B.endLoop(L0);
    B.finish();
  }
  M->setEntryFunction(MainF);
  return M;
}

std::unique_ptr<Module> buildGcc() {
  auto M = std::make_unique<Module>("gcc");
  // Compiler passes: several mid-sized functions whose hot-path values
  // cross cold diagnostic/allocation calls — the pattern that starves
  // CBH's callee-save-only rule (§10).
  Function *Oble = buildLeaf(*M, "obstack_alloc", RegBank::Int, 5, 7, 71);
  Function *Warn = buildLeaf(*M, "warning", RegBank::Int, 4, 5, 72);

  Function *Fold = buildHotFunctionWithColdCall(
      *M, "fold_rtx", Oble, RegBank::Int, 9, 18, 11, 0.03, 73);
  Function *Combine = buildHotFunctionWithColdCall(
      *M, "try_combine", Warn, RegBank::Int, 8, 15, 10, 0.02, 74);
  Function *Jump = buildHotFunctionWithColdCall(
      *M, "jump_optimize", Oble, RegBank::Int, 7, 12, 9, 0.05, 75);

  Function *MainF = M->createFunction("main");
  {
    SyntheticFunctionBuilder B(*MainF, 76);
    std::vector<VirtReg> Pool = B.makeValues(RegBank::Int, 4);
    LoopHandles L0 = B.beginLoop(100);
    LoopHandles L1 = B.beginLoop(100);
    B.touch(Pool, 3);
    B.call(Fold);
    B.call(Combine);
    B.call(Jump);
    B.endLoop(L1);
    B.endLoop(L0);
    B.finish();
  }
  M->setEntryFunction(MainF);
  return M;
}

std::unique_ptr<Module> buildDoduc() {
  auto M = std::make_unique<Module>("doduc");
  // Monte-Carlo thermohydraulics: branchy floating-point code, a cold
  // diagnostic call, moderate pressure.
  Function *Diag = buildLeaf(*M, "x21y21", RegBank::Float, 4, 6, 81);

  Function *Kernel = M->createFunction("si");
  {
    SyntheticFunctionBuilder B(*Kernel, 82);
    std::vector<VirtReg> FPool = B.makeValues(RegBank::Float, 7);
    LoopHandles L = B.beginLoop(20);
    BranchHandles Br1 = B.beginBranch(0.3);
    B.touch(FPool, 6);
    B.elseBranch(Br1);
    B.touch(FPool, 4);
    B.localWork(RegBank::Float, 2, 3);
    B.endBranch(Br1);
    B.endLoop(L);
    BranchHandles Cold = B.beginBranch(0.02);
    B.call(Diag);
    B.elseBranch(Cold);
    B.localWork(RegBank::Float, 1, 2);
    B.endBranch(Cold);
    B.touch(FPool, 3);
    B.finish();
  }
  buildDriverMain(*M, Kernel, {100, 100, 20}, 83);
  return M;
}

std::unique_ptr<Module> buildFpppp() {
  auto M = std::make_unique<Module>("fpppp");
  // Gaussian integrals: enormous straight-line blocks of staggered
  // floating-point expressions — high interference degree with a modest
  // clique number, the structure where optimistic coloring shines (§8).
  Function *Dump = buildLeaf(*M, "fmtgen", RegBank::Int, 4, 5, 91);

  Function *Kernel = M->createFunction("fpppp_kernel");
  {
    SyntheticFunctionBuilder B(*Kernel, 92);
    std::vector<VirtReg> FPool = B.makeValues(RegBank::Float, 4);
    LoopHandles L = B.beginLoop(50);
    B.staggeredChain(RegBank::Float, 24, 4);
    B.touch(FPool, 6);
    B.endLoop(L);
    // The blocked-but-colorable structure (degree ~8, clique 5): Chaitin
    // simplification spills parts of it pessimistically; optimistic
    // coloring rescues them — for free, since no call is crossed.
    B.circulantWeb(RegBank::Float, 12, 4, 40, {});
    BranchHandles Cold = B.beginBranch(0.01);
    B.call(Dump);
    B.elseBranch(Cold);
    B.localWork(RegBank::Float, 1, 2);
    B.endBranch(Cold);
    B.touch(FPool, 3);
    B.finish();
  }
  buildDriverMain(*M, Kernel, {10, 100}, 93);
  return M;
}

std::unique_ptr<Module> buildMatrix300() {
  auto M = std::make_unique<Module>("matrix300");
  // Dense matrix multiply: the accumulator values are extremely hot and
  // cross the hot saxpy call; the column bookkeeping values are the
  // spill bait.
  Function *Saxpy = buildLeaf(*M, "saxpy", RegBank::Float, 6, 10, 101);

  Function *Dgemm = M->createFunction("dgemm");
  {
    SyntheticFunctionBuilder B(*Dgemm, 102);
    std::vector<VirtReg> Acc = B.makeValues(RegBank::Float, 7);
    std::vector<VirtReg> Bait = B.makeValues(RegBank::Float, 4);
    LoopHandles J = B.beginLoop(25);
    LoopHandles I = B.beginLoop(20);
    B.touch(Acc, 7);
    B.endLoop(I);
    B.call(Saxpy);
    B.endLoop(J);
    BranchHandles Reuse = B.beginBranch(0.3);
    B.useEach(Bait);
    B.elseBranch(Reuse);
    B.endBranch(Reuse);
    B.useEach(Acc);
    B.finish();
  }
  buildDriverMain(*M, Dgemm, {100}, 103);
  return M;
}

std::unique_ptr<Module> buildNasa7() {
  auto M = std::make_unique<Module>("nasa7");
  // Seven kernels: we model two — an FFT-ish float kernel whose values
  // cross a hot butterfly call with *heterogeneous* costs (the preference
  // decision's arbitration case, §6) and an integer index kernel with a
  // cold bounds-check call (the storage-class case).
  Function *Butterfly = buildLeaf(*M, "btrfly", RegBank::Float, 6, 9, 111);
  Function *Scale = buildLeaf(*M, "cscale", RegBank::Float, 5, 7, 116);
  Function *Twiddle = buildLeaf(*M, "twiddle", RegBank::Float, 5, 8, 117);
  Function *Bounds = buildLeaf(*M, "chkrng", RegBank::Int, 4, 5, 112);

  Function *Fft = M->createFunction("cfft2d");
  {
    SyntheticFunctionBuilder B(*Fft, 113);
    // The Figure 5 situation. Two groups of callee-save-preferring
    // crossing ranges compete for Ef callee-save registers:
    //  - Light: few references, crosses two medium-frequency calls; its
    //    degree is inflated by the staggered expression region, so
    //    simplification removes it late and colors it *first*.
    //  - Heavy: hot accumulators crossing a call inside the hot loop
    //    (large caller-save cost), low degree, colored *after* Light.
    // Without the preference decision the Light ranges grab the
    // callee-save registers they barely benefit from and the Heavy ranges
    // pay save/restores at the hot call; PR displaces the Light ranges by
    // cost (benefit-driven simplification cannot reorder them — their
    // degree keeps them out of the unconstrained pool until the end).
    std::vector<VirtReg> Light = B.makeValues(RegBank::Float, 5);
    B.touch(Light, 20); // Enough references that Light is no spill victim.
    B.staggeredChain(RegBank::Float, 16, 10);
    std::vector<VirtReg> Heavy = B.makeValues(RegBank::Float, 5);
    // Both groups cross these medium-frequency calls — the shared call
    // sites whose L > M contention the preference decision arbitrates.
    B.call(Butterfly);
    B.call(Scale);
    B.useEach(Light); // Last use: Light overlaps Heavy but not the hot loop.
    LoopHandles L = B.beginLoop(20);
    B.touch(Heavy, 8);
    B.call(Twiddle);
    B.touch(Heavy, 2);
    B.endLoop(L);
    BranchHandles Cold = B.beginBranch(0.02);
    B.call(Bounds);
    B.elseBranch(Cold);
    B.localWork(RegBank::Float, 1, 2);
    B.endBranch(Cold);
    B.useEach(Heavy);
    B.finish();
  }
  Function *Idx = buildHotFunctionWithColdCall(
      *M, "vpenta", Bounds, RegBank::Int, 8, 20, 10, 0.02, 114);

  Function *MainF = M->createFunction("main");
  {
    SyntheticFunctionBuilder B(*MainF, 115);
    std::vector<VirtReg> Pool = B.makeValues(RegBank::Int, 4);
    LoopHandles L0 = B.beginLoop(100);
    LoopHandles L1 = B.beginLoop(100);
    B.touch(Pool, 3);
    B.call(Fft);
    B.call(Idx);
    B.endLoop(L1);
    B.endLoop(L0);
    B.finish();
  }
  M->setEntryFunction(MainF);
  return M;
}

std::unique_ptr<Module> buildSpice() {
  auto M = std::make_unique<Module>("spice");
  // Circuit simulation: mixed integer/float device evaluation with cold
  // error handling and low-reference sparse-matrix bookkeeping.
  Function *Error = buildLeaf(*M, "errchk", RegBank::Int, 4, 5, 121);
  Function *Stamp = buildLeaf(*M, "stamp", RegBank::Float, 5, 7, 122);

  Function *Device = M->createFunction("diode_eval");
  {
    SyntheticFunctionBuilder B(*Device, 123);
    std::vector<VirtReg> FPool = B.makeValues(RegBank::Float, 6);
    std::vector<VirtReg> IPool = B.makeValues(RegBank::Int, 5);
    LoopHandles L = B.beginLoop(20);
    B.touch(FPool, 7);
    B.touch(IPool, 4);
    B.endLoop(L);
    B.circulantWeb(RegBank::Int, 12, 5, 1, {Stamp, Stamp, Stamp, Stamp});
    std::vector<VirtReg> Bait;
    emitSpillBait(B, RegBank::Int, 8, {Stamp}, 0.25, Bait);
    BranchHandles Cold = B.beginBranch(0.01);
    B.call(Error);
    B.elseBranch(Cold);
    B.localWork(RegBank::Int, 1, 2);
    B.endBranch(Cold);
    B.touch(FPool, 3);
    B.touch(IPool, 2);
    B.finish();
  }
  buildDriverMain(*M, Device, {100, 100, 10}, 124);
  return M;
}

std::unique_ptr<Module> buildAlvinn() {
  auto M = std::make_unique<Module>("alvinn");
  // Neural-net training: dense float dot products with a hot leaf call;
  // packing matters at few registers, call cost is benign — priority-based
  // and improved Chaitin end up equal here.
  Function *Dot = buildLeaf(*M, "dot8", RegBank::Float, 6, 10, 131);

  Function *Forward = M->createFunction("input_hidden");
  {
    SyntheticFunctionBuilder B(*Forward, 132);
    std::vector<VirtReg> Weights = B.makeValues(RegBank::Float, 8);
    LoopHandles L = B.beginLoop(30);
    B.staggeredChain(RegBank::Float, 20, 5);
    B.touch(Weights, 6);
    B.endLoop(L);
    LoopHandles Units = B.beginLoop(3);
    B.call(Dot);
    B.touch(Weights, 2);
    B.endLoop(Units);
    B.useEach(Weights);
    B.finish();
  }
  buildDriverMain(*M, Forward, {100, 100, 10}, 133);
  return M;
}

std::unique_ptr<Module> buildTomcatv() {
  auto M = std::make_unique<Module>("tomcatv");
  // Vectorized mesh generation: one big function, deep loop nest, no calls
  // at all — every call-cost mechanism is inert and all ratios are 1.0.
  Function *MainF = M->createFunction("main");
  SyntheticFunctionBuilder B(*MainF, 141);
  std::vector<VirtReg> FPool = B.makeValues(RegBank::Float, 10);
  std::vector<VirtReg> IPool = B.makeValues(RegBank::Int, 4);
  LoopHandles L0 = B.beginLoop(100);
  LoopHandles L1 = B.beginLoop(50);
  B.touch(FPool, 10);
  B.touch(IPool, 3);
  LoopHandles L2 = B.beginLoop(50);
  B.staggeredChain(RegBank::Float, 16, 5);
  B.touch(FPool, 4);
  B.endLoop(L2);
  B.endLoop(L1);
  B.endLoop(L0);
  B.touch(FPool, 3);
  B.finish();
  M->setEntryFunction(MainF);
  return M;
}

} // namespace

const std::vector<std::string> &ccra::specProxyNames() {
  static const std::vector<std::string> Names = {
      "alvinn", "compress", "ear",       "eqntott", "espresso",
      "gcc",    "li",       "sc",        "doduc",   "fpppp",
      "matrix300", "nasa7", "spice",     "tomcatv",
  };
  return Names;
}

std::unique_ptr<Module> ccra::buildSpecProxy(const std::string &Name) {
  std::unique_ptr<Module> M;
  if (Name == "alvinn")
    M = buildAlvinn();
  else if (Name == "compress")
    M = buildCompress();
  else if (Name == "ear")
    M = buildEar();
  else if (Name == "eqntott")
    M = buildEqntott();
  else if (Name == "espresso")
    M = buildEspresso();
  else if (Name == "gcc")
    M = buildGcc();
  else if (Name == "li")
    M = buildLi();
  else if (Name == "sc")
    M = buildSc();
  else if (Name == "doduc")
    M = buildDoduc();
  else if (Name == "fpppp")
    M = buildFpppp();
  else if (Name == "matrix300")
    M = buildMatrix300();
  else if (Name == "nasa7")
    M = buildNasa7();
  else if (Name == "spice")
    M = buildSpice();
  else if (Name == "tomcatv")
    M = buildTomcatv();
  assert(M && "unknown SPEC proxy name");
  assert(verifyModule(*M, nullptr) && "proxy module failed verification");
  return M;
}

std::vector<std::pair<std::string, std::unique_ptr<Module>>>
ccra::buildAllSpecProxies() {
  std::vector<std::pair<std::string, std::unique_ptr<Module>>> All;
  for (const std::string &Name : specProxyNames())
    All.emplace_back(Name, buildSpecProxy(Name));
  return All;
}
