//===- workloads/FuzzGen.cpp ----------------------------------------------===//

#include "workloads/FuzzGen.h"

#include "ir/Verifier.h"
#include "support/Rng.h"
#include "workloads/SyntheticBuilder.h"

#include <cassert>

using namespace ccra;

namespace {

/// Per-function generation knobs, derived from the profile + rng.
struct FunctionShape {
  unsigned IntValues;
  unsigned FloatValues;
  unsigned Regions;
  unsigned OpsPerRegion;
  unsigned MaxLoopDepth;
  double CallProbability;
  double ColdBranchProbability;
  double ConversionProbability; ///< chance a region mixes banks explicitly
  double MoveProbability;       ///< coalescable-copy fodder
  bool UseStaggered;            ///< staggered overlapping chains
  bool UseCirculant;            ///< circulant webs around back edges
};

FunctionShape shapeFor(FuzzProfile Profile, Rng &R, unsigned Scale) {
  FunctionShape S;
  // The Mixed profile picks one concrete shape per function.
  if (Profile == FuzzProfile::Mixed) {
    static const FuzzProfile Concrete[] = {
        FuzzProfile::CallDense, FuzzProfile::BankMix, FuzzProfile::HighDegree,
        FuzzProfile::PathologicalLive, FuzzProfile::Tiny};
    Profile = Concrete[R.nextBelow(5)];
  }
  switch (Profile) {
  case FuzzProfile::CallDense:
    S = {/*IntValues=*/6 + unsigned(R.nextBelow(5)),
         /*FloatValues=*/2 + unsigned(R.nextBelow(3)),
         /*Regions=*/5 * Scale,
         /*OpsPerRegion=*/4,
         /*MaxLoopDepth=*/2,
         /*CallProbability=*/0.9,
         /*ColdBranchProbability=*/0.2,
         /*ConversionProbability=*/0.1,
         /*MoveProbability=*/0.3,
         /*UseStaggered=*/false,
         /*UseCirculant=*/false};
    break;
  case FuzzProfile::BankMix:
    S = {/*IntValues=*/5 + unsigned(R.nextBelow(4)),
         /*FloatValues=*/5 + unsigned(R.nextBelow(4)),
         /*Regions=*/5 * Scale,
         /*OpsPerRegion=*/6,
         /*MaxLoopDepth=*/2,
         /*CallProbability=*/0.3,
         /*ColdBranchProbability=*/0.2,
         /*ConversionProbability=*/0.8,
         /*MoveProbability=*/0.4,
         /*UseStaggered=*/false,
         /*UseCirculant=*/false};
    break;
  case FuzzProfile::HighDegree:
    S = {/*IntValues=*/14 + unsigned(R.nextBelow(10)) * Scale,
         /*FloatValues=*/6 + unsigned(R.nextBelow(5)),
         /*Regions=*/4 * Scale,
         /*OpsPerRegion=*/10,
         /*MaxLoopDepth=*/1,
         /*CallProbability=*/0.2,
         /*ColdBranchProbability=*/0.1,
         /*ConversionProbability=*/0.2,
         /*MoveProbability=*/0.2,
         /*UseStaggered=*/true,
         /*UseCirculant=*/false};
    break;
  case FuzzProfile::PathologicalLive:
    S = {/*IntValues=*/4 + unsigned(R.nextBelow(4)),
         /*FloatValues=*/2 + unsigned(R.nextBelow(3)),
         /*Regions=*/3 * Scale,
         /*OpsPerRegion=*/4,
         /*MaxLoopDepth=*/3,
         /*CallProbability=*/0.4,
         /*ColdBranchProbability=*/0.5,
         /*ConversionProbability=*/0.2,
         /*MoveProbability=*/0.3,
         /*UseStaggered=*/true,
         /*UseCirculant=*/true};
    break;
  case FuzzProfile::Tiny:
    S = {/*IntValues=*/1 + unsigned(R.nextBelow(3)),
         /*FloatValues=*/unsigned(R.nextBelow(2)),
         /*Regions=*/1 + unsigned(R.nextBelow(2)),
         /*OpsPerRegion=*/1 + unsigned(R.nextBelow(3)),
         /*MaxLoopDepth=*/1,
         /*CallProbability=*/0.5,
         /*ColdBranchProbability=*/0.3,
         /*ConversionProbability=*/0.3,
         /*MoveProbability=*/0.5,
         /*UseStaggered=*/false,
         /*UseCirculant=*/false};
    break;
  case FuzzProfile::Mixed:
    assert(false && "resolved above");
    break;
  }
  return S;
}

void emitRegion(SyntheticFunctionBuilder &B, Rng &R, const FunctionShape &S,
                std::vector<VirtReg> &IntPool, std::vector<VirtReg> &FloatPool,
                const std::vector<Function *> &Callees, unsigned Depth) {
  enum { Straight, LoopRegion, BranchRegion, WebRegion };
  unsigned Kind = static_cast<unsigned>(R.nextBelow(S.UseCirculant ? 4 : 3));
  if ((Kind == LoopRegion || Kind == WebRegion) && Depth >= S.MaxLoopDepth)
    Kind = Straight;

  auto EmitWork = [&]() {
    if (!IntPool.empty())
      B.touch(IntPool, S.OpsPerRegion);
    if (!FloatPool.empty() && R.nextBool(0.7))
      B.touch(FloatPool, S.OpsPerRegion / 2 + 1);
    if (R.nextBool(S.ConversionProbability) && !IntPool.empty() &&
        !FloatPool.empty()) {
      // Explicit cross-bank traffic: convert a value each way so both banks
      // interleave their pressure at the same program point.
      IRBuilder &IRB = B.irb();
      VirtReg F = IRB.buildCvtIntToFloat(R.pick(IntPool));
      VirtReg I = IRB.buildCvtFloatToInt(R.pick(FloatPool));
      IRB.buildBinaryInto(R.pick(FloatPool), Opcode::FAdd, R.pick(FloatPool),
                          F);
      IRB.buildBinaryInto(R.pick(IntPool), Opcode::Add, R.pick(IntPool), I);
    }
    if (R.nextBool(0.4))
      B.localWork(R.nextBool() ? RegBank::Int : RegBank::Float, 1,
                  1 + static_cast<unsigned>(R.nextBelow(4)));
    if (S.UseStaggered && R.nextBool(0.5))
      B.staggeredChain(R.nextBool(0.75) ? RegBank::Int : RegBank::Float,
                       4 + static_cast<unsigned>(R.nextBelow(10)),
                       2 + static_cast<unsigned>(R.nextBelow(4)));
    if (!IntPool.empty() && R.nextBool(S.MoveProbability))
      B.shufflePoolValue(IntPool);
    if (!FloatPool.empty() && R.nextBool(S.MoveProbability / 2))
      B.shufflePoolValue(FloatPool);
    if (!Callees.empty()) {
      // Call-dense regions emit short call *bursts*, with pool values
      // deliberately touched between the calls so they are live across
      // every one of them.
      unsigned Calls = 0;
      while (Calls < 3 && R.nextBool(S.CallProbability)) {
        B.call(R.pick(Callees));
        if (!IntPool.empty() && R.nextBool(0.6))
          B.touch(IntPool, 1);
        ++Calls;
      }
    }
  };

  switch (Kind) {
  case Straight:
    EmitWork();
    break;
  case LoopRegion: {
    LoopHandles L = B.beginLoop(2 + static_cast<double>(R.nextBelow(60)));
    EmitWork();
    if (R.nextBool(0.5))
      emitRegion(B, R, S, IntPool, FloatPool, Callees, Depth + 1);
    B.endLoop(L);
    break;
  }
  case BranchRegion: {
    double Prob = R.nextBool(S.ColdBranchProbability)
                      ? 0.005 + R.nextDouble() * 0.05
                      : 0.3 + R.nextDouble() * 0.4;
    BranchHandles Br = B.beginBranch(Prob);
    EmitWork();
    B.elseBranch(Br);
    if (R.nextBool(0.6))
      EmitWork();
    B.endBranch(Br);
    break;
  }
  case WebRegion: {
    // The §8 separator: high degree, low clique number, wrapped around a
    // back edge, with calls inside the body when the profile has callees.
    unsigned Count = 5 + static_cast<unsigned>(R.nextBelow(8));
    unsigned Overlap = 2 + static_cast<unsigned>(R.nextBelow(Count - 2));
    std::vector<Function *> WebCallees;
    if (!Callees.empty() && R.nextBool(0.6))
      WebCallees.push_back(R.pick(Callees));
    B.circulantWeb(R.nextBool(0.8) ? RegBank::Int : RegBank::Float, Count,
                   Overlap, 2 + static_cast<double>(R.nextBelow(40)),
                   WebCallees);
    break;
  }
  default:
    break;
  }
}

void buildFunction(Function &F, Rng &R, const FuzzGenParams &P,
                   const std::vector<Function *> &Callees) {
  Rng Local = R.fork();
  FunctionShape S = shapeFor(P.Profile, Local, P.SizeScale);
  SyntheticFunctionBuilder B(F, Local.next());
  std::vector<VirtReg> IntPool = B.makeValues(RegBank::Int, S.IntValues);
  std::vector<VirtReg> FloatPool = B.makeValues(RegBank::Float, S.FloatValues);
  for (unsigned I = 0; I < S.Regions; ++I)
    emitRegion(B, Local, S, IntPool, FloatPool, Callees, 0);
  // Pin pool lifetimes to the end of the function, so everything emitted
  // above really was in the middle of the ranges.
  if (!IntPool.empty())
    B.useEach(IntPool);
  if (!FloatPool.empty())
    B.useEach(FloatPool);
  B.finish();
}

} // namespace

const std::vector<FuzzProfile> &ccra::allFuzzProfiles() {
  static const std::vector<FuzzProfile> All = {
      FuzzProfile::Mixed,          FuzzProfile::CallDense,
      FuzzProfile::BankMix,        FuzzProfile::HighDegree,
      FuzzProfile::PathologicalLive, FuzzProfile::Tiny};
  return All;
}

const char *ccra::fuzzProfileName(FuzzProfile P) {
  switch (P) {
  case FuzzProfile::Mixed:
    return "mixed";
  case FuzzProfile::CallDense:
    return "call-dense";
  case FuzzProfile::BankMix:
    return "bank-mix";
  case FuzzProfile::HighDegree:
    return "high-degree";
  case FuzzProfile::PathologicalLive:
    return "pathological-live";
  case FuzzProfile::Tiny:
    return "tiny";
  }
  return "unknown";
}

bool ccra::parseFuzzProfile(const std::string &Name, FuzzProfile &P) {
  for (FuzzProfile Candidate : allFuzzProfiles())
    if (Name == fuzzProfileName(Candidate)) {
      P = Candidate;
      return true;
    }
  return false;
}

std::unique_ptr<Module>
ccra::generateFuzzModule(const FuzzGenParams &Params) {
  Rng R(Params.Seed * 0x9e3779b97f4a7c15ULL + 0xfc0de +
        static_cast<uint64_t>(Params.Profile));
  auto M = std::make_unique<Module>(
      std::string("fuzz-") + fuzzProfileName(Params.Profile) + "-" +
      std::to_string(Params.Seed));

  unsigned NumFunctions =
      Params.Profile == FuzzProfile::Tiny
          ? 1 + static_cast<unsigned>(R.nextBelow(2))
          : 2 + static_cast<unsigned>(R.nextBelow(3)) * Params.SizeScale;
  // Leaf-first construction keeps the call graph a DAG (the interprocedural
  // frequency analysis relies on this, same as RandomProgram).
  std::vector<Function *> Built;
  for (unsigned I = 0; I < NumFunctions; ++I) {
    Function *F = M->createFunction("f" + std::to_string(I));
    buildFunction(*F, R, Params, Built);
    Built.push_back(F);
  }
  // An occasional external declaration: calls to it still carry call cost,
  // exercising the "no body to analyze" paths of the cost model.
  if (Params.Profile != FuzzProfile::Tiny && R.nextBool(0.3))
    Built.push_back(M->createFunction("ext"));
  Function *MainF = M->createFunction("main");
  buildFunction(*MainF, R, Params, Built);
  M->setEntryFunction(MainF);

  assert(verifyModule(*M, nullptr) && "fuzz module failed IR verification");
  return M;
}

RegisterConfig ccra::fuzzRegisterConfig(Rng &R) {
  // Small files dominate (they force spilling decisions); the corners —
  // zero callee-save, lopsided banks — show up regularly.
  unsigned Ri = 3 + static_cast<unsigned>(R.nextBelow(8));
  unsigned Rf = 2 + static_cast<unsigned>(R.nextBelow(7));
  unsigned Ei = static_cast<unsigned>(R.nextBelow(5));
  unsigned Ef = static_cast<unsigned>(R.nextBelow(4));
  if (R.nextBool(0.15)) { // no callee-save at all (the sweep's minimal point)
    Ei = 0;
    Ef = 0;
  }
  if (R.nextBool(0.1)) // a roomy file: exercises the no-pressure paths
    return RegisterConfig(Ri + 12, Rf + 10, Ei + 6, Ef + 5);
  return RegisterConfig(Ri, Rf, Ei, Ef);
}
