//===- workloads/RandomProgram.cpp ----------------------------------------===//

#include "workloads/RandomProgram.h"

#include "ir/Verifier.h"
#include "support/Rng.h"
#include "workloads/SyntheticBuilder.h"

#include <cassert>
#include <string>
#include <vector>

using namespace ccra;

namespace {

/// Emits one random region into \p B.
void emitRegion(SyntheticFunctionBuilder &B, Rng &R,
                const RandomProgramParams &P,
                std::vector<VirtReg> &IntPool, std::vector<VirtReg> &FloatPool,
                const std::vector<Function *> &Callees, unsigned Depth) {
  enum { Straight, LoopRegion, BranchRegion };
  unsigned Kind = static_cast<unsigned>(R.nextBelow(3));
  if (Kind == LoopRegion && Depth >= P.MaxLoopDepth)
    Kind = Straight;

  auto EmitWork = [&]() {
    if (!IntPool.empty())
      B.touch(IntPool, P.OpsPerRegion);
    if (!FloatPool.empty() && R.nextBool(0.7))
      B.touch(FloatPool, P.OpsPerRegion / 2 + 1);
    if (R.nextBool(0.4))
      B.localWork(R.nextBool() ? RegBank::Int : RegBank::Float, 1,
                  1 + static_cast<unsigned>(R.nextBelow(4)));
    if (P.UseMoves && !IntPool.empty() && R.nextBool(0.3))
      B.shufflePoolValue(IntPool);
    if (!Callees.empty() && R.nextBool(P.CallProbability))
      B.call(R.pick(Callees));
  };

  switch (Kind) {
  case Straight:
    EmitWork();
    break;
  case LoopRegion: {
    LoopHandles L = B.beginLoop(2 + static_cast<double>(R.nextBelow(40)));
    EmitWork();
    if (R.nextBool(0.5))
      emitRegion(B, R, P, IntPool, FloatPool, Callees, Depth + 1);
    B.endLoop(L);
    break;
  }
  case BranchRegion: {
    double Prob = R.nextBool(P.ColdBranchProbability)
                      ? 0.01 + R.nextDouble() * 0.05
                      : 0.3 + R.nextDouble() * 0.4;
    BranchHandles Br = B.beginBranch(Prob);
    EmitWork();
    B.elseBranch(Br);
    if (R.nextBool(0.6))
      EmitWork();
    B.endBranch(Br);
    break;
  }
  default:
    break;
  }
}

void buildRandomFunction(Function &F, Rng &R, const RandomProgramParams &P,
                         const std::vector<Function *> &Callees) {
  SyntheticFunctionBuilder B(F, R.next());
  std::vector<VirtReg> IntPool = B.makeValues(RegBank::Int, P.IntValues);
  std::vector<VirtReg> FloatPool =
      B.makeValues(RegBank::Float, P.FloatValues);
  for (unsigned I = 0; I < P.RegionsPerFunction; ++I)
    emitRegion(B, R, P, IntPool, FloatPool, Callees, 0);
  if (!IntPool.empty())
    B.touch(IntPool, 2);
  if (!FloatPool.empty())
    B.touch(FloatPool, 2);
  B.finish();
}

} // namespace

std::unique_ptr<Module>
ccra::generateRandomProgram(const RandomProgramParams &Params) {
  Rng R(Params.Seed);
  auto M = std::make_unique<Module>("random-" + std::to_string(Params.Seed));

  // Functions are created leaf-first so every call edge points "down" and
  // the call graph is a DAG (the frequency analysis relies on this).
  std::vector<Function *> Built;
  for (unsigned I = 0; I < Params.NumFunctions; ++I) {
    Function *F = M->createFunction("f" + std::to_string(I));
    buildRandomFunction(*F, R, Params, Built);
    Built.push_back(F);
  }
  Function *MainF = M->createFunction("main");
  buildRandomFunction(*MainF, R, Params, Built);
  M->setEntryFunction(MainF);

  assert(verifyModule(*M, nullptr) && "random module failed verification");
  return M;
}
