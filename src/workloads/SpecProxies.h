//===- workloads/SpecProxies.h - SPEC92 proxy programs ----------*- C++ -*-===//
///
/// \file
/// Fourteen deterministic synthetic programs standing in for the SPEC92
/// binaries the paper evaluates (alvinn, compress, doduc, ear, eqntott,
/// espresso, fpppp, gcc, li, matrix300, nasa7, sc, spice, tomcatv). The
/// actual SPEC92 sources/binaries and the cmcc compiler are unavailable, so
/// each proxy encodes the *shape* properties the paper attributes to that
/// program — the properties its experiments hinge on:
///
/// - eqntott/ear: hot, frequently invoked functions whose long-lived values
///   cross calls sitting on rarely executed paths. The base allocator's
///   "contains a call => prefer callee-save" rule buys callee-save
///   save/restores at full entry frequency where a caller-save register
///   would cost almost nothing (improvement factors of tens, §7).
/// - li/sc/matrix300: live ranges for which *memory* beats both register
///   kinds, or CBH-starved crossing ranges — only storage-class analysis
///   (spilling the wrong-kind residents) helps.
/// - eqntott/espresso/compress/spice/fpppp/doduc: callee-save registers are
///   not contended enough for the preference decision to matter.
/// - tomcatv: one big loop nest, no calls — all call-cost machinery is
///   moot and every ratio is 1.0.
/// - fpppp: huge straight-line blocks of staggered floating-point live
///   ranges (high degree, low clique number) — the structure where
///   optimistic coloring beats pessimistic spilling at small register
///   counts (§8, Figure 9).
///
/// Every proxy is deterministic: same name -> bit-identical module.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_WORKLOADS_SPECPROXIES_H
#define CCRA_WORKLOADS_SPECPROXIES_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace ccra {

/// Names of all proxy programs, in the paper's listing order.
const std::vector<std::string> &specProxyNames();

/// Builds the named proxy. Asserts on unknown names (see specProxyNames()).
std::unique_ptr<Module> buildSpecProxy(const std::string &Name);

/// Builds every proxy.
std::vector<std::pair<std::string, std::unique_ptr<Module>>>
buildAllSpecProxies();

} // namespace ccra

#endif // CCRA_WORKLOADS_SPECPROXIES_H
