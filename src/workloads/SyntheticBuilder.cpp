//===- workloads/SyntheticBuilder.cpp -------------------------------------===//

#include "workloads/SyntheticBuilder.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

SyntheticFunctionBuilder::SyntheticFunctionBuilder(Function &F, uint64_t Seed)
    : F(F), Builder(F), Random(Seed) {
  Builder.startBlock("entry");
  // Control values feed loop and branch conditions; like real induction
  // variables they pick up references all over the function.
  for (int I = 0; I < 2; ++I)
    ControlPool.push_back(
        Builder.buildLoadImm(Random.nextInRange(1, 1000)));
}

std::vector<VirtReg> SyntheticFunctionBuilder::makeValues(RegBank Bank,
                                                          unsigned Count) {
  std::vector<VirtReg> Pool;
  Pool.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    int64_t Imm = Random.nextInRange(1, 1 << 20);
    Pool.push_back(Bank == RegBank::Int ? Builder.buildLoadImm(Imm)
                                        : Builder.buildFLoadImm(Imm));
  }
  return Pool;
}

Opcode SyntheticFunctionBuilder::randomArith(RegBank Bank) {
  if (Bank == RegBank::Float) {
    static const Opcode Ops[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul};
    return Ops[Random.nextBelow(3)];
  }
  static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                               Opcode::And, Opcode::Xor};
  return Ops[Random.nextBelow(5)];
}

void SyntheticFunctionBuilder::touch(const std::vector<VirtReg> &Pool,
                                     unsigned Ops) {
  touchRange(Pool, 0, static_cast<unsigned>(Pool.size()), Ops);
}

void SyntheticFunctionBuilder::touchRange(const std::vector<VirtReg> &Pool,
                                          unsigned First, unsigned Count,
                                          unsigned Ops) {
  assert(First + Count <= Pool.size() && "touch range out of bounds");
  if (Count == 0 || Ops == 0)
    return;
  RegBank Bank = F.vregBank(Pool[First]);
  for (unsigned I = 0; I < Ops; ++I) {
    VirtReg A = Pool[First + Random.nextBelow(Count)];
    VirtReg B = Pool[First + Random.nextBelow(Count)];
    VirtReg D = Pool[First + Random.nextBelow(Count)];
    Builder.buildBinaryInto(D, randomArith(Bank), A, B);
  }
}

void SyntheticFunctionBuilder::useEach(const std::vector<VirtReg> &Pool) {
  RegBank Bank = F.vregBank(Pool.front());
  for (size_t I = 0; I < Pool.size(); ++I) {
    VirtReg Next = Pool[(I + 1) % Pool.size()];
    Builder.buildBinaryInto(Pool[I], randomArith(Bank), Pool[I], Next);
  }
}

void SyntheticFunctionBuilder::localWork(RegBank Bank, unsigned Chains,
                                         unsigned ChainLength) {
  for (unsigned C = 0; C < Chains; ++C) {
    VirtReg Value = Bank == RegBank::Int
                        ? Builder.buildLoadImm(Random.nextInRange(0, 255))
                        : Builder.buildFLoadImm(Random.nextInRange(0, 255));
    for (unsigned I = 1; I < ChainLength; ++I)
      Value = Builder.buildBinary(randomArith(Bank), Value, Value);
    // Sink the chain so it is not dead code: fold into a control value for
    // int chains, or convert-and-fold for float chains.
    VirtReg Sunk = Bank == RegBank::Int ? Value
                                        : Builder.buildCvtFloatToInt(Value);
    Builder.buildBinaryInto(ControlPool[0], Opcode::Xor, ControlPool[0],
                            Sunk);
  }
}

void SyntheticFunctionBuilder::staggeredChain(RegBank Bank, unsigned Count,
                                              unsigned OverlapDepth) {
  std::vector<VirtReg> Window;
  for (unsigned I = 0; I < Count; ++I) {
    VirtReg Fresh = Bank == RegBank::Int
                        ? Builder.buildLoadImm(static_cast<int64_t>(I))
                        : Builder.buildFLoadImm(static_cast<int64_t>(I));
    Window.push_back(Fresh);
    if (Window.size() > OverlapDepth) {
      // Last use of the oldest value: combine it with the newest.
      VirtReg Oldest = Window.front();
      Window.erase(Window.begin());
      VirtReg Dead = Builder.buildBinary(randomArith(Bank), Oldest, Fresh);
      (void)Dead;
    }
  }
  // Drain the window.
  while (Window.size() > 1) {
    VirtReg A = Window[Window.size() - 1];
    VirtReg B = Window[Window.size() - 2];
    Window.pop_back();
    Window.back() = Builder.buildBinary(randomArith(Bank), A, B);
  }
}

void SyntheticFunctionBuilder::shufflePoolValue(std::vector<VirtReg> &Pool) {
  assert(!Pool.empty() && "cannot shuffle an empty pool");
  size_t Index = Random.nextBelow(Pool.size());
  Pool[Index] = Builder.buildMove(Pool[Index]);
}

void SyntheticFunctionBuilder::circulantWeb(
    RegBank Bank, unsigned Count, unsigned Overlap, double Trip,
    const std::vector<Function *> &Callees) {
  assert(Overlap >= 1 && Overlap < Count && "overlap must be in [1, Count)");
  std::vector<VirtReg> Web = makeValues(Bank, Count);
  LoopHandles Loop = beginLoop(Trip);
  unsigned CallStride =
      Callees.empty() ? 0
                      : std::max(1u, Count / static_cast<unsigned>(
                                                 Callees.size()));
  for (unsigned I = 0; I < Count; ++I) {
    if (CallStride != 0 && I % CallStride == 0 &&
        I / CallStride < Callees.size())
      call(Callees[I / CallStride]);
    // Slot i: value i is redefined from the values Overlap and 1 slots
    // back; value i's previous definition dies at slot i + Overlap.
    VirtReg Back = Web[(I + Count - Overlap) % Count];
    VirtReg Prev = Web[(I + Count - 1) % Count];
    Builder.buildBinaryInto(Web[I], randomArith(Bank), Back, Prev);
  }
  endLoop(Loop);
}

VirtReg SyntheticFunctionBuilder::makeCondition() {
  return Builder.buildCmp(ControlPool[0],
                          ControlPool[1 % ControlPool.size()]);
}

LoopHandles SyntheticFunctionBuilder::beginLoop(double TripCount) {
  assert(TripCount >= 1.0 && "trip count below one");
  LoopHandles Loop;
  Loop.TripCount = TripCount;
  BasicBlock *Header = F.createBlock();
  Builder.buildBr(Header);
  Builder.setInsertBlock(Header);
  Loop.Header = Header;
  Loop.Exit = F.createBlock();
  return Loop;
}

void SyntheticFunctionBuilder::endLoop(const LoopHandles &Loop) {
  // do-while: branch back to the header with probability 1 - 1/trip, so
  // the header executes TripCount times per entry.
  double BackProbability = 1.0 - 1.0 / Loop.TripCount;
  VirtReg Cond = makeCondition();
  Builder.buildCondBr(Cond, Loop.Header, Loop.Exit, BackProbability);
  Builder.setInsertBlock(Loop.Exit);
}

BranchHandles SyntheticFunctionBuilder::beginBranch(double ThenProbability) {
  BranchHandles Branch;
  Branch.ThenBlock = F.createBlock();
  Branch.ElseBlock = F.createBlock();
  Branch.JoinBlock = F.createBlock();
  VirtReg Cond = makeCondition();
  Builder.buildCondBr(Cond, Branch.ThenBlock, Branch.ElseBlock,
                      ThenProbability);
  Builder.setInsertBlock(Branch.ThenBlock);
  return Branch;
}

void SyntheticFunctionBuilder::elseBranch(const BranchHandles &Branch) {
  Builder.buildBr(Branch.JoinBlock);
  Builder.setInsertBlock(Branch.ElseBlock);
}

void SyntheticFunctionBuilder::endBranch(const BranchHandles &Branch) {
  Builder.buildBr(Branch.JoinBlock);
  Builder.setInsertBlock(Branch.JoinBlock);
}

void SyntheticFunctionBuilder::call(Function *Callee,
                                    const std::vector<VirtReg> &Args) {
  Builder.buildCall(Callee, Args);
}

void SyntheticFunctionBuilder::finish() { Builder.buildRet(); }
