//===- workloads/RandomProgram.h - Randomized program generator -*- C++ -*-===//
///
/// \file
/// A fully randomized (but seeded, hence reproducible) program generator.
/// Unlike the SPEC proxies — which are hand-shaped to reproduce specific
/// figures — these programs exercise the allocator over a broad space of
/// CFGs, pressures and call patterns. The property-based test suite
/// allocates hundreds of them with every allocator and checks the
/// soundness invariants; the throughput benchmarks use them for sizing.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_WORKLOADS_RANDOMPROGRAM_H
#define CCRA_WORKLOADS_RANDOMPROGRAM_H

#include "ir/Module.h"

#include <cstdint>
#include <memory>

namespace ccra {

struct RandomProgramParams {
  uint64_t Seed = 1;
  unsigned NumFunctions = 3;     ///< Plus main.
  unsigned MaxLoopDepth = 2;     ///< Nesting cap per function.
  unsigned RegionsPerFunction = 6; ///< Loop/branch/straight regions emitted.
  unsigned IntValues = 8;        ///< Long-lived integer pool per function.
  unsigned FloatValues = 4;      ///< Long-lived float pool per function.
  unsigned OpsPerRegion = 6;
  double CallProbability = 0.3;  ///< Chance a region contains a call.
  double ColdBranchProbability = 0.2; ///< Chance a branch is heavily skewed.
  bool UseMoves = true;          ///< Sprinkle coalescable copies.
};

/// Generates a random, verified module. Deterministic in \p Params.
std::unique_ptr<Module> generateRandomProgram(const RandomProgramParams &Params);

} // namespace ccra

#endif // CCRA_WORKLOADS_RANDOMPROGRAM_H
