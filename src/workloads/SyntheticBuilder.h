//===- workloads/SyntheticBuilder.h - Structured program synthesis -*- C++ -*-===//
///
/// \file
/// A structured layer over IRBuilder for synthesizing workload functions:
/// counted loops (with profile-truth trip counts), skewed branches, pools
/// of long-lived values, bursts of arithmetic that reference those pools,
/// and short-lived local computation chains. The SPEC92 proxy programs
/// (SpecProxies.h) are written against this API; the shapes it can express
/// — hot loops, cold paths, calls crossed by long-lived values — are
/// exactly the program features the paper's evaluation hinges on.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_WORKLOADS_SYNTHETICBUILDER_H
#define CCRA_WORKLOADS_SYNTHETICBUILDER_H

#include "ir/IRBuilder.h"
#include "support/Rng.h"

#include <vector>

namespace ccra {

/// Handles for an open counted loop; produced by beginLoop, consumed by
/// endLoop.
struct LoopHandles {
  BasicBlock *Header = nullptr;
  BasicBlock *Exit = nullptr;
  double TripCount = 1.0;
};

/// Handles for an open two-way branch.
struct BranchHandles {
  BasicBlock *ThenBlock = nullptr;
  BasicBlock *ElseBlock = nullptr;
  BasicBlock *JoinBlock = nullptr;
};

class SyntheticFunctionBuilder {
public:
  /// Starts building \p F: creates the entry block and a small pool of
  /// control values used for loop/branch conditions.
  SyntheticFunctionBuilder(Function &F, uint64_t Seed);

  IRBuilder &irb() { return Builder; }
  Function &function() { return F; }

  /// Materializes \p Count long-lived values in \p Bank (via immediate
  /// loads in the current block). The returned registers accumulate
  /// references wherever touch() is called with them.
  std::vector<VirtReg> makeValues(RegBank Bank, unsigned Count);

  /// Emits \p Ops arithmetic instructions over \p Pool: each reads two pool
  /// values and overwrites a third (non-SSA reuse), keeping the whole pool
  /// live across the touched region and adding ~3 references per op.
  void touch(const std::vector<VirtReg> &Pool, unsigned Ops);

  /// Like touch() but only over \p Pool[First .. First+Count).
  void touchRange(const std::vector<VirtReg> &Pool, unsigned First,
                  unsigned Count, unsigned Ops);

  /// References *every* pool value exactly once (one combining op per
  /// value). touch() samples randomly and can miss values; useEach pins
  /// down liveness — a pool value is guaranteed live from its definition
  /// to the last useEach of the pool.
  void useEach(const std::vector<VirtReg> &Pool);

  /// Emits \p Chains independent short-lived computation chains of length
  /// \p ChainLength in \p Bank (each chain's values die within the chain);
  /// models expression temporaries and raises local register pressure.
  void localWork(RegBank Bank, unsigned Chains, unsigned ChainLength);

  /// Emits \p Count staggered overlapping live ranges: value i is defined,
  /// then used again after the next \p OverlapDepth values have been
  /// defined. Produces an interval graph where every node has degree about
  /// 2 * OverlapDepth while the clique number stays OverlapDepth + 1 — the
  /// structure that separates optimistic from pessimistic coloring (§8).
  void staggeredChain(RegBank Bank, unsigned Count, unsigned OverlapDepth);

  /// Emits a copy of a random pool value into a fresh register and swaps
  /// it into the pool — coalescing fodder.
  void shufflePoolValue(std::vector<VirtReg> &Pool);

  /// Emits a loop (trip count \p Trip) whose body is a software-pipelined
  /// web of \p Count values: slot i redefines value i from the values K and
  /// 1 slots back (cyclically, so lifetimes wrap around the back edge).
  /// Every value is live for \p Overlap slots of the N-slot body, giving a
  /// circulant interference graph: degree ~2*Overlap but clique number only
  /// Overlap+1 — colorable yet *blocked* for Chaitin simplification when
  /// Overlap+1 <= N <= 2*Overlap. This is the paper's Figure 8 structure:
  /// the live ranges optimistic coloring rescues from pessimistic spilling.
  /// \p Callees are called at evenly spaced slots inside the body, so the
  /// web values cross them — making the rescue a loss whenever the
  /// caller-save cost exceeds the spill cost (§8's negative cells).
  void circulantWeb(RegBank Bank, unsigned Count, unsigned Overlap,
                    double Trip, const std::vector<Function *> &Callees);

  /// Opens a do-while style counted loop with profile-truth trip count
  /// \p TripCount (the back edge gets probability 1 - 1/TripCount). The
  /// builder is left positioned in the loop body. Loops nest.
  LoopHandles beginLoop(double TripCount);
  /// Closes the innermost open loop; the builder moves to the exit block.
  void endLoop(const LoopHandles &Loop);

  /// Opens a two-way branch whose then-side has probability
  /// \p ThenProbability. The builder is positioned in the then block.
  BranchHandles beginBranch(double ThenProbability);
  /// Switches from the then side to the else side.
  void elseBranch(const BranchHandles &Branch);
  /// Closes the branch; the builder moves to the join block.
  void endBranch(const BranchHandles &Branch);

  /// Emits a call (no arguments/results by default — argument traffic is
  /// modeled by the surrounding pools).
  void call(Function *Callee, const std::vector<VirtReg> &Args = {});

  /// Terminates the function (emits ret in the current block).
  void finish();

private:
  /// A throwaway branch condition computed from the control pool.
  VirtReg makeCondition();
  Opcode randomArith(RegBank Bank);

  Function &F;
  IRBuilder Builder;
  Rng Random;
  std::vector<VirtReg> ControlPool;
};

} // namespace ccra

#endif // CCRA_WORKLOADS_SYNTHETICBUILDER_H
