//===- workloads/FuzzGen.h - Adversarial random module generator -*- C++ -*-===//
///
/// \file
/// The differential fuzzer's input generator. Where RandomProgram.h samples
/// a broad but benign space of CFGs, FuzzGen deliberately skews generation
/// toward the shapes that stress the allocator's cost-model and graph
/// machinery: call-dense regions crossed by long-lived values, mixed-bank
/// pressure with conversion traffic, huge-degree interference neighborhoods,
/// and the pathological live-range structures (staggered chains, circulant
/// webs) that separate the coloring heuristics. Each profile is a seeded,
/// fully deterministic distribution; the fuzz driver sweeps seeds and
/// profiles and runs every generated module through the oracle lattice
/// (fuzz/Oracle.h).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_WORKLOADS_FUZZGEN_H
#define CCRA_WORKLOADS_FUZZGEN_H

#include "ir/Module.h"
#include "target/MachineDescription.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccra {

class Rng;

/// Generation profiles: each skews the random distribution toward one
/// adversarial program shape.
enum class FuzzProfile {
  Mixed,            ///< Everything below, sampled per function.
  CallDense,        ///< Many callees, call-saturated regions, values
                    ///< deliberately live across the calls (§4-6 stress).
  BankMix,          ///< Heavy int/float interleaving with conversion
                    ///< traffic — both banks under pressure at once.
  HighDegree,       ///< Large value pools touched together: interference
                    ///< degree far above the register count.
  PathologicalLive, ///< Staggered chains and circulant webs: high-degree /
                    ///< low-clique ranges that block pessimistic coloring
                    ///< (§8), wrapped around loop back edges.
  Tiny,             ///< Very small modules — near-minimal inputs make
                    ///< mismatches cheap to shrink and keep the lattice
                    ///< fast, so the sweep covers many more seeds.
};

/// All profiles, in a stable order (the driver round-robins over these).
const std::vector<FuzzProfile> &allFuzzProfiles();

/// "mixed", "call-dense", ... (stable CLI / reproducer-naming tokens).
const char *fuzzProfileName(FuzzProfile P);

/// Parses a fuzzProfileName token; returns false on unknown names.
bool parseFuzzProfile(const std::string &Name, FuzzProfile &P);

struct FuzzGenParams {
  uint64_t Seed = 1;
  FuzzProfile Profile = FuzzProfile::Mixed;
  /// Scales function count / region count / pool sizes (1 = the default
  /// fuzzing size, small enough that one oracle-lattice pass is cheap).
  unsigned SizeScale = 1;
};

/// Generates a random, IR-verified module. Deterministic in \p Params.
std::unique_ptr<Module> generateFuzzModule(const FuzzGenParams &Params);

/// Draws a random register configuration from \p R, biased toward small
/// files (spill pressure) and including the degenerate corners the paper's
/// sweep touches: zero callee-save registers, and lopsided int/float banks.
RegisterConfig fuzzRegisterConfig(Rng &R);

} // namespace ccra

#endif // CCRA_WORKLOADS_FUZZGEN_H
