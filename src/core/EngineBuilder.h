//===- core/EngineBuilder.h - Fluent engine construction --------*- C++ -*-===//
///
/// \file
/// The single public way to assemble an AllocationEngine. The builder owns
/// the option-to-allocator mapping (createAllocator), so every engine it
/// produces can mint per-task allocators and run parallel module
/// allocation:
///
/// \code
///   Telemetry T;
///   AllocationEngine Engine = EngineBuilder(RegisterConfig(9, 7, 3, 3))
///                                 .options(improvedOptions())
///                                 .jobs(8)
///                                 .telemetry(&T)
///                                 .build();
///   ModuleAllocationResult R = Engine.allocateModule(M, Freq);
///   T.snapshot().writeJson(std::cout);
/// \endcode
///
/// Defaults: improvedOptions(), serial (jobs(1)), no telemetry.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_CORE_ENGINEBUILDER_H
#define CCRA_CORE_ENGINEBUILDER_H

#include "regalloc/AllocationEngine.h"

namespace ccra {

class EngineBuilder {
public:
  /// Starts from a register configuration (the common case) or a full
  /// machine description.
  explicit EngineBuilder(RegisterConfig Config) : MD(Config) {}
  explicit EngineBuilder(MachineDescription MD) : MD(MD) {}

  /// Selects the allocator point in the option space (see
  /// regalloc/AllocatorOptions.h's named factories). Replaces any options
  /// set so far, including a previous jobs() call's value.
  EngineBuilder &options(AllocatorOptions O) {
    Opts = std::move(O);
    return *this;
  }

  /// Concurrent function allocations in allocateModule: 1 = serial,
  /// 0 = one per hardware thread. Overrides Opts.Jobs.
  EngineBuilder &jobs(unsigned N) {
    Opts.Jobs = N;
    return *this;
  }

  /// Attaches a telemetry recorder to the built engine. Not owned; must
  /// outlive the engine's allocate calls. Null detaches.
  EngineBuilder &telemetry(Telemetry *T) {
    Telem = T;
    return *this;
  }

  /// Attaches an external shared thread pool for parallel module
  /// allocation (see AllocationEngine::setPool). Not owned; must outlive
  /// the engine's allocate calls. Null (the default) lets the engine spawn
  /// a private pool when Jobs asks for parallelism.
  EngineBuilder &pool(ThreadPool *P) {
    SharedPool = P;
    return *this;
  }

  /// Assembles the engine: the matching allocator factory is plugged in,
  /// so the engine honors Jobs > 1.
  AllocationEngine build() const;

private:
  MachineDescription MD;
  AllocatorOptions Opts; // defaults == improvedOptions()
  Telemetry *Telem = nullptr;
  ThreadPool *SharedPool = nullptr;
};

} // namespace ccra

#endif // CCRA_CORE_ENGINEBUILDER_H
