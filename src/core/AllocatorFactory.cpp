//===- core/AllocatorFactory.cpp ------------------------------------------===//

#include "core/AllocatorFactory.h"

#include "core/ImprovedChaitinAllocator.h"
#include "regalloc/CBHAllocator.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/PriorityAllocator.h"

#include <cassert>

using namespace ccra;

std::unique_ptr<RegAllocBase>
ccra::createAllocator(const AllocatorOptions &Opts) {
  switch (Opts.Kind) {
  case AllocatorKind::Chaitin:
    return std::make_unique<ChaitinAllocator>(Opts);
  case AllocatorKind::Improved:
    return std::make_unique<ImprovedChaitinAllocator>(Opts);
  case AllocatorKind::Priority:
    return std::make_unique<PriorityAllocator>(Opts);
  case AllocatorKind::CBH:
    return std::make_unique<CBHAllocator>(Opts);
  }
  assert(false && "unknown allocator kind");
  return nullptr;
}
