//===- core/AllocatorFactory.h - Options -> allocator + engine --*- C++ -*-===//
///
/// \file
/// Maps an AllocatorOptions value to the allocator implementing it. This
/// is the factory EngineBuilder plugs into every engine it assembles; use
/// it directly only when hand-building an engine from parts.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_CORE_ALLOCATORFACTORY_H
#define CCRA_CORE_ALLOCATORFACTORY_H

#include "regalloc/AllocationEngine.h"

#include <memory>

namespace ccra {

/// Creates the allocator implementing \p Opts. Stateless and safe to call
/// concurrently; matches the AllocatorFactory signature.
std::unique_ptr<RegAllocBase> createAllocator(const AllocatorOptions &Opts);

// The deprecated makeEngine(MD, Opts) shim was retired; build engines with
// EngineBuilder (core/EngineBuilder.h):
//   EngineBuilder(Config).options(Opts).jobs(N).telemetry(&T).build()

} // namespace ccra

#endif // CCRA_CORE_ALLOCATORFACTORY_H
