//===- core/AllocatorFactory.h - Options -> allocator + engine --*- C++ -*-===//
///
/// \file
/// Maps an AllocatorOptions value to the allocator implementing it, and
/// builds ready-to-run AllocationEngines. This is the one-stop entry point
/// the examples and benchmarks use:
///
/// \code
///   AllocationEngine Engine = makeEngine(MachineDescription(Config),
///                                        improvedOptions());
///   ModuleAllocationResult R = Engine.allocateModule(M, Freq);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_CORE_ALLOCATORFACTORY_H
#define CCRA_CORE_ALLOCATORFACTORY_H

#include "regalloc/AllocationEngine.h"

#include <memory>

namespace ccra {

/// Creates the allocator implementing \p Opts.
std::unique_ptr<RegAllocBase> createAllocator(const AllocatorOptions &Opts);

/// Convenience: engine with the matching allocator plugged in.
AllocationEngine makeEngine(MachineDescription MD,
                            const AllocatorOptions &Opts);

} // namespace ccra

#endif // CCRA_CORE_ALLOCATORFACTORY_H
