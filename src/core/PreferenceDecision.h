//===- core/PreferenceDecision.h - §6 preference decision -------*- C++ -*-===//
///
/// \file
/// The preference-decision pre-pass of §6. For every call site, in order of
/// decreasing weighted execution frequency: if L live ranges crossing the
/// call prefer callee-save registers but only M callee-save registers exist
/// in their bank, at least L - M of them must end up elsewhere no matter
/// how registers are assigned. The L - M cheapest ones — by the key
///
///   key(lr) = callerSaveCost(lr)  if benefitCaller(lr) > 0
///           = spillCost(lr)       otherwise
///
/// (the penalty they actually pay for *not* getting a callee-save
/// register) — are annotated to prefer caller-save registers, keeping the
/// scarce callee-save registers for the ranges that need them most
/// (Figure 5's example; reproduced in the test suite).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_CORE_PREFERENCEDECISION_H
#define CCRA_CORE_PREFERENCEDECISION_H

#include "regalloc/AllocationContext.h"

namespace ccra {

/// Sets LiveRange::ForcedCallerPref on the displaced live ranges. Returns
/// the number of live ranges annotated.
unsigned runPreferenceDecision(AllocationContext &Ctx);

/// The sorting key used to pick which live ranges to displace.
double preferenceDecisionKey(const LiveRange &LR);

} // namespace ccra

#endif // CCRA_CORE_PREFERENCEDECISION_H
