//===- core/ImprovedChaitinAllocator.cpp ----------------------------------===//

#include "core/ImprovedChaitinAllocator.h"

#include "core/BenefitKeys.h"
#include "core/PreferenceDecision.h"
#include "target/MachineDescription.h"

using namespace ccra;

void ImprovedChaitinAllocator::preColorOrdering(AllocationContext &Ctx) {
  if (Opts.PreferenceDecision)
    runPreferenceDecision(Ctx);
}

bool ImprovedChaitinAllocator::hasSimplifyKey() const {
  return Opts.BenefitSimplify;
}

double ImprovedChaitinAllocator::simplifyKey(const AllocationContext &Ctx,
                                             const LiveRange &LR) const {
  (void)Ctx;
  return benefitSimplificationKey(LR, Opts.BSKey);
}

RegKindPref ImprovedChaitinAllocator::preference(
    const AllocationContext &Ctx, unsigned Node, const LiveRange &LR,
    const AssignmentState &State) const {
  if (LR.ForcedCallerPref)
    return RegKindPref::Caller;
  if (!Opts.StorageClass)
    return ChaitinAllocator::preference(Ctx, Node, LR, State);
  // A callee-save register someone else already paid for is free to reuse
  // (§4: only the first user pays, or the cost is shared); its effective
  // benefit is the full reference weight.
  double BenefitCallee = LR.benefitCallee();
  if (State.hasReusableCalleeReg(Node))
    BenefitCallee = LR.WeightedRefs;
  return BenefitCallee > LR.benefitCaller() ? RegKindPref::Callee
                                            : RegKindPref::Caller;
}

bool ImprovedChaitinAllocator::shouldSpillInstead(
    const AllocationContext &Ctx, const LiveRange &LR, PhysReg Reg,
    const AssignmentState &State) const {
  if (!Opts.StorageClass)
    return false;
  if (Ctx.MD.isCallerSave(Reg)) {
    // §4: a caller-save resident live range with negative benefit costs
    // more in save/restore traffic than its spill code would.
    return LR.benefitCaller() < 0.0;
  }
  // Callee-save register.
  switch (Opts.CalleeModel) {
  case CalleeCostModel::FirstUserPays:
    // The first user pays the whole entry/exit save; subsequent users ride
    // along for free.
    return State.isFirstCalleeUser(Reg) && LR.benefitCallee() < 0.0;
  case CalleeCostModel::Shared:
    // Decided for the whole register in postAssignment, once every user is
    // known.
    return false;
  }
  return false;
}

void ImprovedChaitinAllocator::postAssignment(AllocationContext &Ctx,
                                              AssignmentState &State,
                                              RoundResult &RR) {
  if (!Opts.StorageClass || Opts.CalleeModel != CalleeCostModel::Shared)
    return;

  // §4, second model: the callee-save cost of a register is shared by all
  // its users; spill them all exactly when their combined spill cost is
  // below the register's save/restore cost.
  for (unsigned B = 0; B < NumRegBanks; ++B) {
    RegBank Bank = static_cast<RegBank>(B);
    for (unsigned J = 0; J < Ctx.MD.calleeCount(Bank); ++J) {
      PhysReg Reg = Ctx.MD.calleeSaveReg(Bank, J);
      const std::vector<unsigned> &Users = State.usersOf(Reg);
      if (Users.empty())
        continue;
      double CombinedSpillCost = 0.0;
      bool HasNoSpillUser = false;
      for (unsigned RangeId : Users) {
        const LiveRange &LR = Ctx.LRS.range(RangeId);
        HasNoSpillUser |= LR.NoSpill;
        CombinedSpillCost += LR.WeightedRefs;
      }
      // A reload temporary pins the register: its save/restore is paid no
      // matter what, so evicting the other users cannot help.
      if (HasNoSpillUser)
        continue;
      double CalleeCost = 2.0 * Ctx.EntryFreq;
      if (CombinedSpillCost >= CalleeCost)
        continue;
      std::vector<unsigned> Evicted(Users.begin(), Users.end());
      for (unsigned RangeId : Evicted) {
        State.unassign(RangeId);
        State.spill(RangeId);
        ++RR.VoluntarySpills;
      }
      RR.NewlyRefusedCalleeRegs.push_back(Reg);
    }
  }
}
