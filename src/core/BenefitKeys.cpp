//===- core/BenefitKeys.cpp -----------------------------------------------===//

#include "core/BenefitKeys.h"

#include <algorithm>
#include <cmath>

using namespace ccra;

double ccra::benefitSimplificationKey(const LiveRange &LR,
                                      BenefitKeyStrategy Strategy) {
  double Caller = LR.benefitCaller();
  double Callee = LR.benefitCallee();
  switch (Strategy) {
  case BenefitKeyStrategy::MaxBenefit:
    return std::max(Caller, Callee);
  case BenefitKeyStrategy::Delta:
    if (Caller >= 0.0 && Callee >= 0.0)
      return std::abs(Caller - Callee);
    return std::max(Caller, Callee);
  }
  return 0.0;
}
