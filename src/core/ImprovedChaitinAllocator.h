//===- core/ImprovedChaitinAllocator.h - The paper's allocator --*- C++ -*-===//
///
/// \file
/// The call-cost directed register allocator: Chaitin-style coloring with
/// the three improvements of the paper —
///
///  - storage-class analysis (§4): caller/callee/memory decided by the two
///    benefit functions; voluntary spilling when the available kind of
///    register costs more than memory, under either callee-save cost model
///    ("first user pays" or "shared");
///  - benefit-driven simplification (§5): unconstrained live ranges leave
///    the graph smallest-key first, so high-penalty ranges sit on top of
///    the color stack;
///  - preference decision (§6): per call site, live ranges that cannot all
///    get callee-save registers are pre-assigned a caller-save preference
///    by cost.
///
/// Each improvement can be toggled independently (the Figure 6 ablations);
/// combined with AllocatorOptions::Optimistic this also yields the
/// improved+optimistic hybrid of Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_CORE_IMPROVEDCHAITINALLOCATOR_H
#define CCRA_CORE_IMPROVEDCHAITINALLOCATOR_H

#include "regalloc/ChaitinAllocator.h"

namespace ccra {

class ImprovedChaitinAllocator : public ChaitinAllocator {
public:
  explicit ImprovedChaitinAllocator(const AllocatorOptions &Opts)
      : ChaitinAllocator(Opts) {}

  const char *name() const override { return "improved-chaitin"; }

protected:
  void preColorOrdering(AllocationContext &Ctx) override;
  bool hasSimplifyKey() const override;
  double simplifyKey(const AllocationContext &Ctx,
                     const LiveRange &LR) const override;
  RegKindPref preference(const AllocationContext &Ctx, unsigned Node,
                         const LiveRange &LR,
                         const AssignmentState &State) const override;
  bool shouldSpillInstead(const AllocationContext &Ctx, const LiveRange &LR,
                          PhysReg Reg,
                          const AssignmentState &State) const override;
  void postAssignment(AllocationContext &Ctx, AssignmentState &State,
                      RoundResult &RR) override;
};

} // namespace ccra

#endif // CCRA_CORE_IMPROVEDCHAITINALLOCATOR_H
