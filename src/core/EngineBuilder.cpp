//===- core/EngineBuilder.cpp ---------------------------------------------===//

#include "core/EngineBuilder.h"

#include "core/AllocatorFactory.h"

using namespace ccra;

AllocationEngine EngineBuilder::build() const {
  AllocationEngine Engine(MD, Opts, &createAllocator);
  Engine.setTelemetry(Telem);
  Engine.setPool(SharedPool);
  return Engine;
}
