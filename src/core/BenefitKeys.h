//===- core/BenefitKeys.h - Benefit-driven simplification keys --*- C++ -*-===//
///
/// \file
/// The ordering keys of §5 (benefit-driven simplification). During
/// simplification the unconstrained live range with the *smallest* key is
/// removed first, leaving large-key ranges near the top of the color stack
/// where they have the most freedom to obtain their preferred kind of
/// register.
///
/// Strategy 1 (MaxBenefit), max(benefitCaller, benefitCallee), is the
/// priority-based ordering; the paper shows it misfits Chaitin coloring
/// because simplification already guarantees a register — what matters is
/// the *penalty of getting the wrong kind*, the delta between the two
/// benefits (Strategy 2, the paper's choice; Figure 4 is the illustrating
/// example and lives in the test suite).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_CORE_BENEFITKEYS_H
#define CCRA_CORE_BENEFITKEYS_H

#include "regalloc/AllocatorOptions.h"
#include "regalloc/LiveRange.h"

namespace ccra {

/// Returns the simplification key of \p LR under \p Strategy.
double benefitSimplificationKey(const LiveRange &LR,
                                BenefitKeyStrategy Strategy);

} // namespace ccra

#endif // CCRA_CORE_BENEFITKEYS_H
