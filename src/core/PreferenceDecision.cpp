//===- core/PreferenceDecision.cpp ----------------------------------------===//

#include "core/PreferenceDecision.h"

#include "target/MachineDescription.h"

#include <algorithm>

using namespace ccra;

double ccra::preferenceDecisionKey(const LiveRange &LR) {
  if (LR.benefitCaller() > 0.0)
    return LR.CallerSaveCost;
  return LR.spillCost();
}

unsigned ccra::runPreferenceDecision(AllocationContext &Ctx) {
  LiveRangeSet &LRS = Ctx.LRS;

  // Call sites in decreasing weighted-frequency order.
  std::vector<unsigned> CallOrder;
  for (const CallSite &CS : LRS.callSites())
    CallOrder.push_back(CS.Id);
  std::sort(CallOrder.begin(), CallOrder.end(), [&](unsigned A, unsigned B) {
    double FA = LRS.callSites()[A].Freq;
    double FB = LRS.callSites()[B].Freq;
    if (FA != FB)
      return FA > FB;
    return A < B;
  });

  // Invert crossing info: live ranges per call site.
  std::vector<std::vector<unsigned>> RangesAtCall(LRS.callSites().size());
  for (const LiveRange &LR : LRS.ranges())
    for (unsigned CallId : LR.CrossedCalls)
      RangesAtCall[CallId].push_back(LR.Id);

  unsigned Forced = 0;
  for (unsigned CallId : CallOrder) {
    for (unsigned B = 0; B < NumRegBanks; ++B) {
      RegBank Bank = static_cast<RegBank>(B);
      unsigned M = Ctx.MD.calleeCount(Bank);

      std::vector<unsigned> Candidates;
      for (unsigned RangeId : RangesAtCall[CallId]) {
        const LiveRange &LR = LRS.range(RangeId);
        if (LR.Bank != Bank || LR.ForcedCallerPref)
          continue;
        if (LR.benefitCallee() > LR.benefitCaller())
          Candidates.push_back(RangeId);
      }
      if (Candidates.size() <= M)
        continue;

      std::sort(Candidates.begin(), Candidates.end(),
                [&](unsigned A, unsigned Bx) {
                  double KA = preferenceDecisionKey(LRS.range(A));
                  double KB = preferenceDecisionKey(LRS.range(Bx));
                  if (KA != KB)
                    return KA < KB;
                  return A < Bx;
                });
      unsigned Displace = static_cast<unsigned>(Candidates.size()) - M;
      for (unsigned I = 0; I < Displace; ++I) {
        LRS.range(Candidates[I]).ForcedCallerPref = true;
        ++Forced;
      }
    }
  }
  return Forced;
}
