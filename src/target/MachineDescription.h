//===- target/MachineDescription.h - Register configurations ----*- C++ -*-===//
///
/// \file
/// The machine model of the paper's evaluation (§3.2): a MIPS-like target
/// with two register banks (integer and floating-point), each split by the
/// calling convention into caller-save and callee-save registers. A
/// RegisterConfig is one point (Ri,Rf,Ei,Ef) of the paper's evaluation
/// grid: Ri/Rf caller-save and Ei/Ef callee-save registers in the
/// int/float bank respectively.
///
/// Register indices are laid out caller-save first: in a bank with C
/// caller-save and E callee-save registers, indices [0,C) are caller-save
/// and [C,C+E) are callee-save.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_TARGET_MACHINEDESCRIPTION_H
#define CCRA_TARGET_MACHINEDESCRIPTION_H

#include "ir/Register.h"

#include <string>
#include <vector>

namespace ccra {

/// One calling-convention split of the two register files:
/// (Ri,Rf) caller-save and (Ei,Ef) callee-save registers.
struct RegisterConfig {
  unsigned IntCallerSave = 0;
  unsigned FloatCallerSave = 0;
  unsigned IntCalleeSave = 0;
  unsigned FloatCalleeSave = 0;

  RegisterConfig() = default;
  RegisterConfig(unsigned Ri, unsigned Rf, unsigned Ei, unsigned Ef)
      : IntCallerSave(Ri), FloatCallerSave(Rf), IntCalleeSave(Ei),
        FloatCalleeSave(Ef) {}

  unsigned callerCount(RegBank Bank) const {
    return Bank == RegBank::Int ? IntCallerSave : FloatCallerSave;
  }
  unsigned calleeCount(RegBank Bank) const {
    return Bank == RegBank::Int ? IntCalleeSave : FloatCalleeSave;
  }
  unsigned totalCount(RegBank Bank) const {
    return callerCount(Bank) + calleeCount(Bank);
  }

  /// "(Ri,Rf,Ei,Ef)" — the notation used throughout the benches.
  std::string label() const;

  bool operator==(const RegisterConfig &Other) const {
    return IntCallerSave == Other.IntCallerSave &&
           FloatCallerSave == Other.FloatCallerSave &&
           IntCalleeSave == Other.IntCalleeSave &&
           FloatCalleeSave == Other.FloatCalleeSave;
  }
  bool operator!=(const RegisterConfig &Other) const {
    return !(*this == Other);
  }
};

/// Answers every register-kind question the allocators ask about one
/// RegisterConfig. Cheap to copy; all queries are O(1).
class MachineDescription {
public:
  MachineDescription() = default;
  MachineDescription(RegisterConfig Config) : Config(Config) {}

  const RegisterConfig &config() const { return Config; }

  unsigned numRegs(RegBank Bank) const { return Config.totalCount(Bank); }
  unsigned callerCount(RegBank Bank) const {
    return Config.callerCount(Bank);
  }
  unsigned calleeCount(RegBank Bank) const {
    return Config.calleeCount(Bank);
  }

  /// The \p I'th caller-save register of \p Bank (I < callerCount(Bank)).
  PhysReg callerSaveReg(RegBank Bank, unsigned I) const {
    return PhysReg(Bank, I);
  }
  /// The \p I'th callee-save register of \p Bank (I < calleeCount(Bank)).
  PhysReg calleeSaveReg(RegBank Bank, unsigned I) const {
    return PhysReg(Bank, Config.callerCount(Bank) + I);
  }

  bool isCallerSave(PhysReg Reg) const {
    return Reg.isValid() && Reg.Index < Config.callerCount(Reg.Bank);
  }
  bool isCalleeSave(PhysReg Reg) const {
    return Reg.isValid() && Reg.Index >= Config.callerCount(Reg.Bank) &&
           Reg.Index < Config.totalCount(Reg.Bank);
  }

private:
  RegisterConfig Config;
};

// The paper's evaluation grid. --------------------------------------------

/// The smallest configuration of the sweep: (6,4,0,0) — six integer and
/// four float caller-save registers, no callee-save registers.
RegisterConfig minimalMipsConfig();

/// The full MIPS-like register file: (18,10,8,6).
RegisterConfig fullMipsConfig();

/// The 17 register configurations the reproduction sweeps, from
/// minimalMipsConfig() up to fullMipsConfig(), growing both the file sizes
/// and the callee-save share.
std::vector<RegisterConfig> standardConfigSweep();

} // namespace ccra

#endif // CCRA_TARGET_MACHINEDESCRIPTION_H
