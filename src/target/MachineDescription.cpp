//===- target/MachineDescription.cpp --------------------------------------===//

#include "target/MachineDescription.h"

using namespace ccra;

std::string RegisterConfig::label() const {
  return "(" + std::to_string(IntCallerSave) + "," +
         std::to_string(FloatCallerSave) + "," +
         std::to_string(IntCalleeSave) + "," +
         std::to_string(FloatCalleeSave) + ")";
}

RegisterConfig ccra::minimalMipsConfig() { return RegisterConfig(6, 4, 0, 0); }

RegisterConfig ccra::fullMipsConfig() { return RegisterConfig(18, 10, 8, 6); }

std::vector<RegisterConfig> ccra::standardConfigSweep() {
  return {
      RegisterConfig(6, 4, 0, 0),   // minimalMipsConfig()
      RegisterConfig(7, 5, 0, 0),   //
      RegisterConfig(8, 6, 0, 0),   //
      RegisterConfig(6, 4, 1, 1),   //
      RegisterConfig(7, 5, 1, 1),   //
      RegisterConfig(8, 6, 1, 1),   //
      RegisterConfig(8, 6, 2, 2),   //
      RegisterConfig(9, 7, 2, 2),   //
      RegisterConfig(9, 7, 3, 3),   //
      RegisterConfig(10, 8, 3, 3),  //
      RegisterConfig(10, 8, 4, 4),  //
      RegisterConfig(11, 8, 5, 4),  //
      RegisterConfig(12, 9, 5, 5),  //
      RegisterConfig(14, 9, 6, 5),  //
      RegisterConfig(16, 10, 7, 6), //
      RegisterConfig(17, 10, 8, 6), //
      RegisterConfig(18, 10, 8, 6), // fullMipsConfig()
  };
}
