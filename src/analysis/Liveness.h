//===- analysis/Liveness.h - Backward liveness dataflow ---------*- C++ -*-===//
///
/// \file
/// Classic backward live-variable analysis over virtual registers. The
/// interference-graph builder consumes the per-block live-out sets and
/// re-derives instruction-level liveness with a local backward scan.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_ANALYSIS_LIVENESS_H
#define CCRA_ANALYSIS_LIVENESS_H

#include "ir/Function.h"
#include "support/BitVector.h"

#include <vector>

namespace ccra {

class Liveness {
public:
  /// Runs the dataflow to a fixpoint for \p F.
  static Liveness compute(const Function &F);

  const BitVector &liveIn(const BasicBlock &BB) const {
    return In[BB.getId()];
  }
  const BitVector &liveOut(const BasicBlock &BB) const {
    return Out[BB.getId()];
  }

  /// Number of virtual registers the sets are defined over.
  unsigned numVRegs() const { return NumVRegs; }

  /// Returns true if \p R is live at function entry — a well-formed
  /// function defines everything before use, so this indicates a
  /// use-before-def bug.
  bool liveIntoEntry(const Function &F, VirtReg R) const;

  // Incremental maintenance, used by graph reconstruction after spilling:
  // a spilled register vanishes from the code (clear its bits); reload
  // temporaries never live across block boundaries (grow the universe with
  // zero bits). Both keep the sets exact without re-running the dataflow.

  /// Clears \p R from every live-in/live-out set.
  void eraseRegister(VirtReg R);

  /// Extends every set to cover \p NewNumVRegs registers (new bits zero).
  void growUniverse(unsigned NewNumVRegs);

private:
  unsigned NumVRegs = 0;
  std::vector<BitVector> In, Out; // by block id
};

} // namespace ccra

#endif // CCRA_ANALYSIS_LIVENESS_H
