//===- analysis/Liveness.h - Backward liveness dataflow ---------*- C++ -*-===//
///
/// \file
/// Classic backward live-variable analysis over virtual registers. The
/// interference-graph builder consumes the per-block live-out sets and
/// re-derives instruction-level liveness with a local backward scan.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_ANALYSIS_LIVENESS_H
#define CCRA_ANALYSIS_LIVENESS_H

#include "ir/Function.h"
#include "support/BitVector.h"

#include <vector>

namespace ccra {

class Liveness {
public:
  /// Runs the dataflow to a fixpoint for \p F.
  static Liveness compute(const Function &F);

  const BitVector &liveIn(const BasicBlock &BB) const {
    return In[BB.getId()];
  }
  const BitVector &liveOut(const BasicBlock &BB) const {
    return Out[BB.getId()];
  }

  /// Number of virtual registers the sets are defined over.
  unsigned numVRegs() const { return NumVRegs; }

  /// Returns true if \p R is live at function entry — a well-formed
  /// function defines everything before use, so this indicates a
  /// use-before-def bug.
  bool liveIntoEntry(const Function &F, VirtReg R) const;

  // Incremental maintenance. Graph reconstruction after spilling: a
  // spilled register vanishes from the code (clear its bits); reload
  // temporaries never live across block boundaries (grow the universe with
  // zero bits). Coalescing: folding two non-interfering ranges unions
  // their solutions (renameRegister), and the rare block whose transfer
  // function a deleted copy changed gets a surgical single-register
  // re-solve (recomputeRegister). All keep the sets exact without
  // re-running the whole-function dataflow.

  /// Clears \p R from every live-in/live-out set.
  void eraseRegister(VirtReg R);

  /// Extends every set to cover \p NewNumVRegs registers (new bits zero).
  void growUniverse(unsigned NewNumVRegs);

  /// Folds \p From into \p To: wherever From was live, To becomes live,
  /// and From's bits are cleared. Exact when the two registers' ranges
  /// never interfere (neither is defined while the other is live) — the
  /// condition the coalescer establishes before merging — because then the
  /// merged register's solution is precisely the pointwise union.
  void renameRegister(VirtReg From, VirtReg To);

  /// Re-solves the dataflow for register \p R alone, given its per-block
  /// upward-exposed-use and kill bits (indexed by block id), leaving every
  /// other register's bits untouched. The caller computes \p UEVar /
  /// \p Kill from the current code; this runs the fixpoint for that one
  /// bit, which is sound because liveness decomposes per register.
  void recomputeRegister(const Function &F, VirtReg R,
                         const std::vector<unsigned char> &UEVar,
                         const std::vector<unsigned char> &Kill);

  /// Exact set equality, block by block. Used by tests to certify that
  /// incrementally maintained solutions match a fresh dataflow run.
  bool operator==(const Liveness &Other) const = default;

private:
  unsigned NumVRegs = 0;
  std::vector<BitVector> In, Out; // by block id
};

} // namespace ccra

#endif // CCRA_ANALYSIS_LIVENESS_H
