//===- analysis/Liveness.cpp ----------------------------------------------===//

#include "analysis/Liveness.h"

#include <cassert>

using namespace ccra;

Liveness Liveness::compute(const Function &F) {
  Liveness LV;
  LV.NumVRegs = F.numVRegs();
  unsigned NumBlocks = F.numBlocks();
  LV.In.assign(NumBlocks, BitVector(LV.NumVRegs));
  LV.Out.assign(NumBlocks, BitVector(LV.NumVRegs));

  // Per-block upward-exposed uses and kills.
  std::vector<BitVector> UEVar(NumBlocks, BitVector(LV.NumVRegs));
  std::vector<BitVector> Kill(NumBlocks, BitVector(LV.NumVRegs));
  for (const auto &BB : F.blocks()) {
    BitVector &UE = UEVar[BB->getId()];
    BitVector &KillSet = Kill[BB->getId()];
    for (const Instruction &I : BB->instructions()) {
      for (VirtReg R : I.Uses)
        if (!KillSet.test(R.Id))
          UE.set(R.Id);
      for (VirtReg R : I.Defs)
        KillSet.set(R.Id);
    }
  }

  // Iterate to a fixpoint. Sweeping blocks in reverse creation order is a
  // good approximation of post-order for the structured CFGs we build;
  // correctness does not depend on the order.
  bool Changed = true;
  BitVector Tmp(LV.NumVRegs);
  while (Changed) {
    Changed = false;
    for (auto It = F.blocks().rbegin(); It != F.blocks().rend(); ++It) {
      const BasicBlock &BB = **It;
      unsigned Id = BB.getId();
      // Out[b] = union of In[s] over successors.
      for (const CfgEdge &E : BB.successors())
        Changed |= LV.Out[Id].unionWith(LV.In[E.Succ->getId()]);
      // In[b] = UEVar[b] | (Out[b] - Kill[b]).
      Tmp = LV.Out[Id];
      Tmp.subtract(Kill[Id]);
      Tmp.unionWith(UEVar[Id]);
      Changed |= LV.In[Id].unionWith(Tmp);
    }
  }
  return LV;
}

void Liveness::eraseRegister(VirtReg R) {
  assert(R.Id < NumVRegs && "register outside the liveness universe");
  for (BitVector &Set : In)
    Set.reset(R.Id);
  for (BitVector &Set : Out)
    Set.reset(R.Id);
}

void Liveness::growUniverse(unsigned NewNumVRegs) {
  assert(NewNumVRegs >= NumVRegs && "universe cannot shrink");
  NumVRegs = NewNumVRegs;
  for (BitVector &Set : In)
    Set.resize(NewNumVRegs);
  for (BitVector &Set : Out)
    Set.resize(NewNumVRegs);
}

void Liveness::renameRegister(VirtReg From, VirtReg To) {
  assert(From.Id < NumVRegs && To.Id < NumVRegs && "register outside universe");
  assert(From.Id != To.Id && "rename to self");
  for (BitVector &Set : In)
    if (Set.test(From.Id)) {
      Set.set(To.Id);
      Set.reset(From.Id);
    }
  for (BitVector &Set : Out)
    if (Set.test(From.Id)) {
      Set.set(To.Id);
      Set.reset(From.Id);
    }
}

void Liveness::recomputeRegister(const Function &F, VirtReg R,
                                 const std::vector<unsigned char> &UEVar,
                                 const std::vector<unsigned char> &Kill) {
  assert(R.Id < NumVRegs && "register outside universe");
  assert(UEVar.size() == In.size() && Kill.size() == In.size() &&
         "per-block bits do not match block count");
  for (BitVector &Set : In)
    Set.reset(R.Id);
  for (BitVector &Set : Out)
    Set.reset(R.Id);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = F.blocks().rbegin(); It != F.blocks().rend(); ++It) {
      const BasicBlock &BB = **It;
      unsigned Id = BB.getId();
      bool OutBit = Out[Id].test(R.Id);
      for (const CfgEdge &E : BB.successors())
        OutBit |= In[E.Succ->getId()].test(R.Id);
      if (OutBit && !Out[Id].test(R.Id)) {
        Out[Id].set(R.Id);
        Changed = true;
      }
      bool InBit = UEVar[Id] || (OutBit && !Kill[Id]);
      if (InBit && !In[Id].test(R.Id)) {
        In[Id].set(R.Id);
        Changed = true;
      }
    }
  }
}

bool Liveness::liveIntoEntry(const Function &F, VirtReg R) const {
  const BasicBlock *Entry = F.getEntryBlock();
  assert(Entry && "function has no body");
  return In[Entry->getId()].test(R.Id);
}
