//===- analysis/Frequency.cpp ---------------------------------------------===//

#include "analysis/Frequency.h"

#include "analysis/CfgTraversal.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

#include <cassert>
#include <cmath>

using namespace ccra;

const char *ccra::frequencyModeName(FrequencyMode Mode) {
  return Mode == FrequencyMode::Static ? "static" : "dynamic";
}

namespace {

/// Probability the static estimator assigns to a loop back edge ("loops
/// iterate about ten times").
constexpr double StaticBackEdgeProbability = 0.9;

/// Returns the per-edge probabilities of \p BB under \p Mode.
std::vector<double> edgeProbabilities(const BasicBlock &BB,
                                      const LoopInfo &LI,
                                      FrequencyMode Mode) {
  const auto &Succs = BB.successors();
  std::vector<double> Probs(Succs.size(), 0.0);
  if (Succs.empty())
    return Probs;

  if (Mode == FrequencyMode::Profile) {
    for (size_t I = 0; I < Succs.size(); ++I)
      Probs[I] = Succs[I].Probability;
    return Probs;
  }

  // Static heuristic. Single successor: always taken. Two-way branch: a
  // back edge gets 0.9, the exit 0.1; otherwise 50/50.
  if (Succs.size() == 1) {
    Probs[0] = 1.0;
    return Probs;
  }
  bool HasBackEdge = false;
  for (const CfgEdge &E : Succs)
    HasBackEdge |= LI.isBackEdge(&BB, E.Succ);
  for (size_t I = 0; I < Succs.size(); ++I) {
    if (HasBackEdge)
      Probs[I] = LI.isBackEdge(&BB, Succs[I].Succ)
                     ? StaticBackEdgeProbability
                     : (1.0 - StaticBackEdgeProbability);
    else
      Probs[I] = 1.0 / static_cast<double>(Succs.size());
  }
  // Multiple back edges from one block: renormalize.
  double Total = 0.0;
  for (double P : Probs)
    Total += P;
  for (double &P : Probs)
    P /= Total;
  return Probs;
}

} // namespace

std::vector<double>
ccra::computeRelativeBlockFrequencies(const Function &F, FrequencyMode Mode) {
  std::vector<double> Freq(F.numBlocks(), 0.0);
  if (F.isDeclaration())
    return Freq;

  DominatorTree DT = DominatorTree::compute(F);
  LoopInfo LI = LoopInfo::compute(F, DT);
  std::vector<BasicBlock *> Rpo = computeReversePostOrder(F);

  // Pre-compute edge probabilities once.
  std::vector<std::vector<double>> Probs(F.numBlocks());
  for (BasicBlock *BB : Rpo)
    Probs[BB->getId()] = edgeProbabilities(*BB, LI, Mode);

  // The frequencies satisfy the linear system
  //   freq(b) = [b == entry] + sum over preds p of freq(p) * prob(p -> b),
  // i.e. (I - P^T) f = e_entry. Deeply nested loops make fixpoint
  // iteration impractically slow (the iteration matrix's spectral radius
  // approaches 1), so solve exactly with Gaussian elimination over the
  // reachable blocks — functions are at most a few hundred blocks.
  const BasicBlock *Entry = F.getEntryBlock();
  const size_t N = Rpo.size();
  std::vector<int> RowOf(F.numBlocks(), -1);
  for (size_t I = 0; I < N; ++I)
    RowOf[Rpo[I]->getId()] = static_cast<int>(I);

  // A[r][c]: coefficient of freq(block c) in block r's equation.
  std::vector<std::vector<double>> A(N, std::vector<double>(N, 0.0));
  std::vector<double> Rhs(N, 0.0);
  for (size_t R = 0; R < N; ++R) {
    BasicBlock *BB = Rpo[R];
    A[R][R] = 1.0;
    if (BB == Entry)
      Rhs[R] = 1.0;
    const auto &BlockProbs = Probs[BB->getId()];
    const auto &Succs = BB->successors();
    for (size_t I = 0; I < Succs.size(); ++I) {
      int C = RowOf[Succs[I].Succ->getId()];
      assert(C >= 0 && "successor of reachable block is reachable");
      A[C][R] -= BlockProbs[I];
    }
  }

  // Gaussian elimination with partial pivoting.
  std::vector<size_t> Perm(N);
  for (size_t I = 0; I < N; ++I)
    Perm[I] = I;
  for (size_t Col = 0; Col < N; ++Col) {
    size_t Pivot = Col;
    for (size_t R = Col + 1; R < N; ++R)
      if (std::abs(A[Perm[R]][Col]) > std::abs(A[Perm[Pivot]][Col]))
        Pivot = R;
    std::swap(Perm[Col], Perm[Pivot]);
    double Diag = A[Perm[Col]][Col];
    assert(std::abs(Diag) > 1e-300 && "singular frequency system");
    for (size_t R = Col + 1; R < N; ++R) {
      double Factor = A[Perm[R]][Col] / Diag;
      if (Factor == 0.0)
        continue;
      for (size_t C = Col; C < N; ++C)
        A[Perm[R]][C] -= Factor * A[Perm[Col]][C];
      Rhs[Perm[R]] -= Factor * Rhs[Perm[Col]];
    }
  }
  std::vector<double> Solution(N, 0.0);
  for (size_t Col = N; Col-- > 0;) {
    double Value = Rhs[Perm[Col]];
    for (size_t C = Col + 1; C < N; ++C)
      Value -= A[Perm[Col]][C] * Solution[C];
    Solution[Col] = Value / A[Perm[Col]][Col];
  }
  for (size_t I = 0; I < N; ++I)
    Freq[Rpo[I]->getId()] = std::max(Solution[I], 0.0);
  return Freq;
}

FrequencyInfo FrequencyInfo::compute(const Module &M, FrequencyMode Mode,
                                     double EntryInvocations) {
  FrequencyInfo Info;
  Info.Mode = Mode;

  for (const auto &F : M.functions()) {
    FunctionFrequencies FF;
    FF.RelativeBlockFreq = computeRelativeBlockFrequencies(*F, Mode);
    Info.PerFunction[F.get()] = std::move(FF);
  }

  // Interprocedural invocation counts: iterate the call-graph equations
  //   inv(G) = [G == entry] * EntryInvocations
  //          + sum over call sites c in F targeting G of
  //              relFreq(block(c)) * inv(F).
  // The workloads' call graphs are DAGs, so this converges in at most
  // #functions passes; the cap guards against accidental recursion.
  const Function *Entry = M.getEntryFunction();
  const int MaxPasses = static_cast<int>(M.functions().size()) + 8;
  for (int Pass = 0; Pass < MaxPasses; ++Pass) {
    bool Changed = false;
    for (const auto &G : M.functions()) {
      double NewInv = (G.get() == Entry) ? EntryInvocations : 0.0;
      for (const auto &F : M.functions()) {
        if (F->isDeclaration())
          continue;
        const FunctionFrequencies &FF = Info.PerFunction[F.get()];
        for (const auto &BB : F->blocks())
          for (const Instruction &I : BB->instructions())
            if (I.isCall() && I.Callee == G.get())
              NewInv += FF.RelativeBlockFreq[BB->getId()] * FF.EntryFreq;
      }
      FunctionFrequencies &GF = Info.PerFunction[G.get()];
      if (std::abs(NewInv - GF.EntryFreq) >
          1e-9 * std::max(1.0, std::abs(NewInv))) {
        GF.EntryFreq = NewInv;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return Info;
}

FrequencyInfo FrequencyInfo::remappedTo(const Module &Source,
                                        const Module &Target) const {
  assert(Source.functions().size() == Target.functions().size() &&
         "target is not a clone of source");
  FrequencyInfo Info;
  Info.Mode = Mode;
  for (size_t I = 0; I < Source.functions().size(); ++I) {
    auto It = PerFunction.find(Source.functions()[I].get());
    assert(It != PerFunction.end() && "source function missing frequencies");
    Info.PerFunction[Target.functions()[I].get()] = It->second;
  }
  return Info;
}

double FrequencyInfo::blockFrequency(const BasicBlock &BB) const {
  auto It = PerFunction.find(BB.getParent());
  assert(It != PerFunction.end() && "unknown function");
  const FunctionFrequencies &FF = It->second;
  assert(BB.getId() < FF.RelativeBlockFreq.size() && "unknown block");
  return FF.RelativeBlockFreq[BB.getId()] * FF.EntryFreq;
}

double FrequencyInfo::entryFrequency(const Function &F) const {
  auto It = PerFunction.find(&F);
  assert(It != PerFunction.end() && "unknown function");
  return It->second.EntryFreq;
}
