//===- analysis/Dominators.cpp --------------------------------------------===//

#include "analysis/Dominators.h"

#include "analysis/CfgTraversal.h"

#include <cassert>

using namespace ccra;

DominatorTree DominatorTree::compute(const Function &F) {
  DominatorTree DT;
  DT.IDom.assign(F.numBlocks(), nullptr);
  DT.Reachable.assign(F.numBlocks(), false);

  std::vector<BasicBlock *> Rpo = computeReversePostOrder(F);
  if (Rpo.empty())
    return DT;

  std::vector<int> RpoIndex(F.numBlocks(), -1);
  for (size_t I = 0; I < Rpo.size(); ++I) {
    RpoIndex[Rpo[I]->getId()] = static_cast<int>(I);
    DT.Reachable[Rpo[I]->getId()] = true;
  }

  BasicBlock *Entry = Rpo.front();
  DT.IDom[Entry->getId()] = Entry; // Temporarily self, fixed up at the end.

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RpoIndex[A->getId()] > RpoIndex[B->getId()])
        A = DT.IDom[A->getId()];
      while (RpoIndex[B->getId()] > RpoIndex[A->getId()])
        B = DT.IDom[B->getId()];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Rpo) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : BB->predecessors()) {
        if (!DT.Reachable[Pred->getId()] || !DT.IDom[Pred->getId()])
          continue;
        NewIDom = NewIDom ? Intersect(NewIDom, Pred) : Pred;
      }
      assert(NewIDom && "reachable block with no processed predecessor");
      if (DT.IDom[BB->getId()] != NewIDom) {
        DT.IDom[BB->getId()] = NewIDom;
        Changed = true;
      }
    }
  }

  DT.IDom[Entry->getId()] = nullptr; // The entry has no immediate dominator.
  return DT;
}

BasicBlock *DominatorTree::immediateDominator(const BasicBlock *BB) const {
  assert(BB->getId() < IDom.size() && "foreign block");
  return IDom[BB->getId()];
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  const BasicBlock *Walk = B;
  while (Walk) {
    if (Walk == A)
      return true;
    Walk = IDom[Walk->getId()];
  }
  return false;
}
