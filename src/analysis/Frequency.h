//===- analysis/Frequency.h - Execution frequency analysis ------*- C++ -*-===//
///
/// \file
/// Computes the weighted execution frequencies that drive every cost in the
/// paper: weighted reference counts, call-site frequencies, and function
/// entry frequencies. Two modes mirror the paper's two frequency sources:
///
/// - Static: compiler estimates. Branches split 50/50 and loop back edges
///   are taken with probability 0.9 ("loops iterate about ten times"),
///   regardless of the profile-truth probabilities on the CFG edges.
/// - Profile: the recorded (true) edge probabilities, i.e. what an
///   instrumented profiling run would measure on these workloads.
///
/// Within a function, block frequencies are relative to one function entry;
/// interprocedural propagation over the call graph then scales them by the
/// function's invocation count (the program entry function runs once).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_ANALYSIS_FREQUENCY_H
#define CCRA_ANALYSIS_FREQUENCY_H

#include "ir/Module.h"

#include <unordered_map>
#include <vector>

namespace ccra {

enum class FrequencyMode { Static, Profile };

const char *frequencyModeName(FrequencyMode Mode);

/// Absolute execution frequencies for one whole module.
class FrequencyInfo {
public:
  /// Computes frequencies for every function in \p M.
  /// \p EntryInvocations scales everything (the entry function's count).
  static FrequencyInfo compute(const Module &M, FrequencyMode Mode,
                               double EntryInvocations = 1.0);

  /// Returns a copy of this FrequencyInfo rekeyed onto \p Target, a clone
  /// of \p Source (the module this info was computed for). cloneModule
  /// preserves function order, block ids, and edge probabilities, so the
  /// clone's frequencies are the *same doubles* — pairing functions by
  /// position transfers them without re-running the per-function linear
  /// solves or the interprocedural iteration. This is what lets a shared
  /// analysis cache serve every grid point despite each point allocating
  /// its own clone.
  FrequencyInfo remappedTo(const Module &Source, const Module &Target) const;

  /// Expected number of executions of \p BB over the whole program run.
  double blockFrequency(const BasicBlock &BB) const;

  /// Expected number of invocations of \p F.
  double entryFrequency(const Function &F) const;

  FrequencyMode mode() const { return Mode; }

private:
  struct FunctionFrequencies {
    double EntryFreq = 0.0;
    std::vector<double> RelativeBlockFreq; // by block id, entry == 1
  };

  FrequencyMode Mode = FrequencyMode::Static;
  std::unordered_map<const Function *, FunctionFrequencies> PerFunction;
};

/// Computes the per-block frequencies of \p F relative to a single entry
/// (entry block == 1). Exposed separately for unit testing.
std::vector<double> computeRelativeBlockFrequencies(const Function &F,
                                                    FrequencyMode Mode);

} // namespace ccra

#endif // CCRA_ANALYSIS_FREQUENCY_H
