//===- analysis/CfgTraversal.cpp ------------------------------------------===//

#include "analysis/CfgTraversal.h"

#include <algorithm>

using namespace ccra;

std::vector<BasicBlock *> ccra::computeReversePostOrder(const Function &F) {
  std::vector<BasicBlock *> PostOrder;
  if (!F.getEntryBlock())
    return PostOrder;

  std::vector<bool> Visited(F.numBlocks(), false);
  // Iterative DFS with an explicit stack of (block, next-successor-index).
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  BasicBlock *Entry = F.getEntryBlock();
  Visited[Entry->getId()] = true;
  Stack.push_back({Entry, 0});
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    if (NextSucc < Block->successors().size()) {
      BasicBlock *Succ = Block->successors()[NextSucc].Succ;
      ++NextSucc;
      if (!Visited[Succ->getId()]) {
        Visited[Succ->getId()] = true;
        Stack.push_back({Succ, 0});
      }
      continue;
    }
    PostOrder.push_back(Block);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

bool ccra::allBlocksReachable(const Function &F) {
  return computeReversePostOrder(F).size() == F.numBlocks();
}
