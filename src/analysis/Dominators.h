//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
///
/// \file
/// Iterative dominator computation (Cooper/Harvey/Kennedy "A Simple, Fast
/// Dominance Algorithm"). Used by natural-loop detection, which in turn
/// feeds the static execution-frequency estimator.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_ANALYSIS_DOMINATORS_H
#define CCRA_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace ccra {

class DominatorTree {
public:
  /// Builds the dominator tree for the reachable blocks of \p F.
  static DominatorTree compute(const Function &F);

  /// Returns the immediate dominator of \p BB, or null for the entry block
  /// (and for unreachable blocks).
  BasicBlock *immediateDominator(const BasicBlock *BB) const;

  /// Returns true if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  bool isReachable(const BasicBlock *BB) const {
    return BB->getId() < Reachable.size() && Reachable[BB->getId()];
  }

private:
  std::vector<BasicBlock *> IDom; // indexed by block id
  std::vector<bool> Reachable;    // indexed by block id
};

} // namespace ccra

#endif // CCRA_ANALYSIS_DOMINATORS_H
