//===- analysis/AnalysisCache.h - Shared per-module analyses ----*- C++ -*-===//
///
/// \file
/// A concurrency-safe cache of the two expensive module-level analyses the
/// experiment grid recomputes per grid point today:
///
/// - FrequencyInfo, keyed by (module, FrequencyMode). One per-function
///   Gaussian solve + one interprocedural call-graph iteration per mode,
///   shared by every grid point of that mode; each point rekeys the result
///   onto its private clone with FrequencyInfo::remappedTo (cheap copies,
///   identical doubles).
/// - Baseline Liveness, keyed by (module, function index). Computed on the
///   pristine source function, and exact for function index I of any
///   pristine clone too: cloneModule preserves block ids and vreg
///   numbering, so the dataflow solution carries over bit for bit. Engines
///   use it to seed round 1 instead of re-running the fixpoint.
///
/// Keying rules (what makes sharing sound): entries are keyed by the
/// *source* module pointer — the immutable original that grid points clone
/// — never by a clone. Clones are mutated by allocation, so their analyses
/// go stale; the source module must stay unmodified for the cache's
/// lifetime, which the harness guarantees by allocating only clones.
///
/// Misses compute under the cache lock. That serializes first-computation,
/// which is the point: when 24 grid points race for the same key, one
/// computes and 23 wait, instead of 24 threads duplicating the work.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_ANALYSIS_ANALYSISCACHE_H
#define CCRA_ANALYSIS_ANALYSISCACHE_H

#include "analysis/Frequency.h"
#include "analysis/Liveness.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace ccra {

class ModuleAnalysisCache {
public:
  ModuleAnalysisCache() = default;
  ModuleAnalysisCache(const ModuleAnalysisCache &) = delete;
  ModuleAnalysisCache &operator=(const ModuleAnalysisCache &) = delete;

  /// Returns the shared FrequencyInfo for \p M under \p Mode, computing it
  /// on the first request. The reference stays valid (and the object
  /// unmodified) for the cache's lifetime. \p WasHit, if non-null, reports
  /// whether the entry already existed.
  const FrequencyInfo &frequencies(const Module &M, FrequencyMode Mode,
                                   bool *WasHit = nullptr);

  /// Returns the baseline liveness of `M.functions()[FnIdx]`, computing it
  /// on the first request. Valid as a round-1 seed for the same-index
  /// function of any pristine clone of \p M.
  const Liveness &baselineLiveness(const Module &M, unsigned FnIdx,
                                   bool *WasHit = nullptr);

  /// Occupancy counters (monotone since construction). Scheduling-
  /// dependent: hit/miss split varies with which grid point gets to a key
  /// first, so these feed the "sched." telemetry namespace only.
  struct Stats {
    std::uint64_t FrequencyHits = 0;
    std::uint64_t FrequencyMisses = 0;
    std::uint64_t LivenessHits = 0;
    std::uint64_t LivenessMisses = 0;

    std::uint64_t hits() const { return FrequencyHits + LivenessHits; }
    std::uint64_t misses() const { return FrequencyMisses + LivenessMisses; }
  };
  Stats stats() const;

private:
  mutable std::mutex M;
  // unique_ptr values: returned references survive map growth.
  std::map<std::pair<const Module *, FrequencyMode>,
           std::unique_ptr<FrequencyInfo>>
      Frequencies;
  std::map<std::pair<const Module *, unsigned>, std::unique_ptr<Liveness>>
      Baselines;
  Stats Counts;
};

} // namespace ccra

#endif // CCRA_ANALYSIS_ANALYSISCACHE_H
