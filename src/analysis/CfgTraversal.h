//===- analysis/CfgTraversal.h - CFG orderings ------------------*- C++ -*-===//
///
/// \file
/// Reverse post-order computation and reachability, the backbone of the
/// dominator, loop, frequency, and liveness analyses.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_ANALYSIS_CFGTRAVERSAL_H
#define CCRA_ANALYSIS_CFGTRAVERSAL_H

#include "ir/Function.h"

#include <vector>

namespace ccra {

/// Returns the blocks of \p F reachable from the entry in reverse
/// post-order (entry first).
std::vector<BasicBlock *> computeReversePostOrder(const Function &F);

/// Returns true if every block of \p F is reachable from the entry.
bool allBlocksReachable(const Function &F);

} // namespace ccra

#endif // CCRA_ANALYSIS_CFGTRAVERSAL_H
