//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
///
/// \file
/// Natural-loop detection from dominator-identified back edges. The static
/// execution-frequency estimator uses loop nesting depth and back-edge
/// identification to model "loops iterate about ten times" without looking
/// at profile-truth probabilities.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_ANALYSIS_LOOPINFO_H
#define CCRA_ANALYSIS_LOOPINFO_H

#include "ir/Function.h"

#include <vector>

namespace ccra {

class DominatorTree;

/// One natural loop: a header plus the set of blocks in the loop body
/// (including the header).
struct Loop {
  BasicBlock *Header = nullptr;
  std::vector<BasicBlock *> Blocks;

  bool contains(const BasicBlock *BB) const;
};

class LoopInfo {
public:
  /// Detects the natural loops of \p F. Loops sharing a header are merged.
  static LoopInfo compute(const Function &F, const DominatorTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Number of loops whose body contains \p BB.
  unsigned loopDepth(const BasicBlock *BB) const;

  /// True if the edge \p From -> \p To is a back edge (target dominates
  /// source).
  bool isBackEdge(const BasicBlock *From, const BasicBlock *To) const;

  /// True if \p BB is the header of some natural loop.
  bool isLoopHeader(const BasicBlock *BB) const;

private:
  std::vector<Loop> Loops;
  std::vector<unsigned> Depth;            // by block id
  std::vector<bool> HeaderFlags;          // by block id
  std::vector<std::vector<unsigned>> BackEdgeTargets; // by source block id
};

} // namespace ccra

#endif // CCRA_ANALYSIS_LOOPINFO_H
