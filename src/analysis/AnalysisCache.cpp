//===- analysis/AnalysisCache.cpp -----------------------------------------===//

#include "analysis/AnalysisCache.h"

#include <cassert>

using namespace ccra;

const FrequencyInfo &ModuleAnalysisCache::frequencies(const Module &Mod,
                                                      FrequencyMode Mode,
                                                      bool *WasHit) {
  std::lock_guard<std::mutex> Lock(M);
  auto [It, Inserted] = Frequencies.try_emplace({&Mod, Mode});
  if (Inserted) {
    ++Counts.FrequencyMisses;
    It->second =
        std::make_unique<FrequencyInfo>(FrequencyInfo::compute(Mod, Mode));
  } else {
    ++Counts.FrequencyHits;
  }
  if (WasHit)
    *WasHit = !Inserted;
  return *It->second;
}

const Liveness &ModuleAnalysisCache::baselineLiveness(const Module &Mod,
                                                      unsigned FnIdx,
                                                      bool *WasHit) {
  assert(FnIdx < Mod.functions().size() && "function index out of range");
  std::lock_guard<std::mutex> Lock(M);
  auto [It, Inserted] = Baselines.try_emplace({&Mod, FnIdx});
  if (Inserted) {
    ++Counts.LivenessMisses;
    It->second = std::make_unique<Liveness>(
        Liveness::compute(*Mod.functions()[FnIdx]));
  } else {
    ++Counts.LivenessHits;
  }
  if (WasHit)
    *WasHit = !Inserted;
  return *It->second;
}

ModuleAnalysisCache::Stats ModuleAnalysisCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counts;
}
