//===- analysis/LoopInfo.cpp ----------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/Dominators.h"

#include <algorithm>
#include <map>

using namespace ccra;

bool Loop::contains(const BasicBlock *BB) const {
  return std::find(Blocks.begin(), Blocks.end(), BB) != Blocks.end();
}

LoopInfo LoopInfo::compute(const Function &F, const DominatorTree &DT) {
  LoopInfo LI;
  LI.Depth.assign(F.numBlocks(), 0);
  LI.HeaderFlags.assign(F.numBlocks(), false);
  LI.BackEdgeTargets.assign(F.numBlocks(), {});

  // A back edge is an edge whose target dominates its source. The natural
  // loop of back edge (Tail -> Header) is Header plus all blocks that can
  // reach Tail without going through Header.
  std::map<BasicBlock *, std::vector<BasicBlock *>> HeaderToBody;
  for (const auto &BB : F.blocks()) {
    for (const CfgEdge &E : BB->successors()) {
      if (!DT.dominates(E.Succ, BB.get()))
        continue;
      LI.BackEdgeTargets[BB->getId()].push_back(E.Succ->getId());
      BasicBlock *Header = E.Succ;
      BasicBlock *Tail = BB.get();
      auto &Body = HeaderToBody[Header];
      // Backward flood fill from Tail, stopping at Header.
      std::vector<bool> InLoop(F.numBlocks(), false);
      for (BasicBlock *Existing : Body)
        InLoop[Existing->getId()] = true;
      InLoop[Header->getId()] = true;
      std::vector<BasicBlock *> Work;
      if (!InLoop[Tail->getId()]) {
        InLoop[Tail->getId()] = true;
        Work.push_back(Tail);
      }
      while (!Work.empty()) {
        BasicBlock *Cur = Work.back();
        Work.pop_back();
        for (BasicBlock *Pred : Cur->predecessors()) {
          if (!DT.isReachable(Pred) || InLoop[Pred->getId()])
            continue;
          InLoop[Pred->getId()] = true;
          Work.push_back(Pred);
        }
      }
      Body.clear();
      for (const auto &Candidate : F.blocks())
        if (InLoop[Candidate->getId()])
          Body.push_back(Candidate.get());
    }
  }

  for (auto &[Header, Body] : HeaderToBody) {
    Loop L;
    L.Header = Header;
    L.Blocks = Body;
    LI.HeaderFlags[Header->getId()] = true;
    for (BasicBlock *BB : Body)
      ++LI.Depth[BB->getId()];
    LI.Loops.push_back(std::move(L));
  }
  return LI;
}

unsigned LoopInfo::loopDepth(const BasicBlock *BB) const {
  return BB->getId() < Depth.size() ? Depth[BB->getId()] : 0;
}

bool LoopInfo::isBackEdge(const BasicBlock *From, const BasicBlock *To) const {
  if (From->getId() >= BackEdgeTargets.size())
    return false;
  const auto &Targets = BackEdgeTargets[From->getId()];
  return std::find(Targets.begin(), Targets.end(), To->getId()) !=
         Targets.end();
}

bool LoopInfo::isLoopHeader(const BasicBlock *BB) const {
  return BB->getId() < HeaderFlags.size() && HeaderFlags[BB->getId()];
}
