//===- support/Telemetry.cpp ----------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

using namespace ccra;

// --- TelemetrySnapshot ------------------------------------------------------

double TelemetrySnapshot::count(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0.0 : It->second;
}

double TelemetrySnapshot::timeMs(const std::string &Name) const {
  auto It = TimersMs.find(Name);
  return It == TimersMs.end() ? 0.0 : It->second;
}

static bool isMaxCounter(const std::string &Name) {
  const std::string Prefix = telemetry::MaxCounterPrefix;
  return Name.compare(0, Prefix.size(), Prefix) == 0;
}

TelemetrySnapshot &
TelemetrySnapshot::operator+=(const TelemetrySnapshot &Other) {
  for (const auto &[Name, Value] : Other.Counters) {
    double &Slot = Counters[Name];
    if (isMaxCounter(Name))
      Slot = std::max(Slot, Value);
    else
      Slot += Value;
  }
  for (const auto &[Name, Value] : Other.TimersMs)
    TimersMs[Name] += Value;
  return *this;
}

/// %.17g: enough digits that a double survives the text round trip.
static std::string formatNumber(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  return Buffer;
}

static void writeJsonMap(std::ostream &OS,
                         const std::map<std::string, double> &Map) {
  OS << '{';
  bool First = true;
  for (const auto &[Name, Value] : Map) {
    if (!First)
      OS << ", ";
    First = false;
    OS << '"' << Name << "\": " << formatNumber(Value);
  }
  OS << '}';
}

void TelemetrySnapshot::writeJson(std::ostream &OS) const {
  OS << "{\"counters\": ";
  writeJsonMap(OS, Counters);
  OS << ", \"timers_ms\": ";
  writeJsonMap(OS, TimersMs);
  OS << "}\n";
}

static void appendJsonMap(std::string &Out,
                          const std::map<std::string, double> &Map) {
  Out += '{';
  bool First = true;
  char Buffer[64];
  for (const auto &[Name, Value] : Map) {
    if (!First)
      Out += ", ";
    First = false;
    Out += '"';
    Out += Name;
    Out += "\": ";
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
    Out += Buffer;
  }
  Out += '}';
}

std::string TelemetrySnapshot::toJson() const {
  // String-append rather than ostringstream: the allocation service
  // renders one of these per response, where stream construction alone
  // is measurable against sub-millisecond requests. Byte-identical to
  // writeJson (same %.17g formatting).
  std::string Out;
  Out.reserve(32 * (Counters.size() + TimersMs.size()) + 64);
  Out += "{\"counters\": ";
  appendJsonMap(Out, Counters);
  Out += ", \"timers_ms\": ";
  appendJsonMap(Out, TimersMs);
  Out += "}\n";
  return Out;
}

void TelemetrySnapshot::writeCsv(std::ostream &OS) const {
  OS << "kind,name,value\n";
  for (const auto &[Name, Value] : Counters)
    OS << "counter," << Name << ',' << formatNumber(Value) << '\n';
  for (const auto &[Name, Value] : TimersMs)
    OS << "timer_ms," << Name << ',' << formatNumber(Value) << '\n';
}

TelemetrySnapshot TelemetrySnapshot::withoutSchedulingCounters() const {
  TelemetrySnapshot Out = *this;
  const std::string Prefix = telemetry::SchedPrefix;
  for (auto It = Out.Counters.begin(); It != Out.Counters.end();) {
    // Peak counters measure buffer capacity, which depends on arena reuse
    // order — scheduling-dependent just like the "sched." namespace.
    if (It->first.compare(0, Prefix.size(), Prefix) == 0 ||
        isMaxCounter(It->first))
      It = Out.Counters.erase(It);
    else
      ++It;
  }
  return Out;
}

// A minimal recursive-descent parser for exactly the JSON this file emits
// (an object of objects of numbers). Whitespace-tolerant; rejects
// everything else.
namespace {

struct JsonCursor {
  const char *P;
  const char *End;

  void skipSpace() {
    while (P != End && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }
  bool consume(char C) {
    skipSpace();
    if (P == End || *P != C)
      return false;
    ++P;
    return true;
  }
  bool parseString(std::string &Out) {
    skipSpace();
    if (P == End || *P != '"')
      return false;
    ++P;
    Out.clear();
    while (P != End && *P != '"') {
      if (*P == '\\') // no escapes in emitted keys
        return false;
      Out.push_back(*P++);
    }
    if (P == End)
      return false;
    ++P; // closing quote
    return true;
  }
  bool parseNumber(double &Out) {
    skipSpace();
    char *NumEnd = nullptr;
    Out = std::strtod(P, &NumEnd);
    if (NumEnd == P)
      return false;
    P = NumEnd;
    return true;
  }
  bool parseNumberMap(std::map<std::string, double> &Out) {
    Out.clear();
    if (!consume('{'))
      return false;
    skipSpace();
    if (consume('}'))
      return true;
    while (true) {
      std::string Key;
      double Value;
      if (!parseString(Key) || !consume(':') || !parseNumber(Value))
        return false;
      Out[Key] = Value;
      if (consume(','))
        continue;
      return consume('}');
    }
  }
};

} // namespace

bool TelemetrySnapshot::fromJson(const std::string &Text,
                                 TelemetrySnapshot &Out) {
  JsonCursor C{Text.data(), Text.data() + Text.size()};
  Out = TelemetrySnapshot();
  if (!C.consume('{'))
    return false;
  std::string Key;
  if (!C.parseString(Key) || Key != "counters" || !C.consume(':') ||
      !C.parseNumberMap(Out.Counters))
    return false;
  if (!C.consume(',') || !C.parseString(Key) || Key != "timers_ms" ||
      !C.consume(':') || !C.parseNumberMap(Out.TimersMs))
    return false;
  if (!C.consume('}'))
    return false;
  C.skipSpace();
  return C.P == C.End;
}

// --- Telemetry --------------------------------------------------------------

void Telemetry::addCount(const std::string &Name, double Delta) {
  std::lock_guard<std::mutex> Lock(M);
  Data.Counters[Name] += Delta;
}

void Telemetry::noteMax(const std::string &Name, double Value) {
  std::lock_guard<std::mutex> Lock(M);
  double &Slot = Data.Counters[Name];
  Slot = std::max(Slot, Value);
}

void Telemetry::addTimeMs(const std::string &Name, double Ms) {
  std::lock_guard<std::mutex> Lock(M);
  Data.TimersMs[Name] += Ms;
}

void Telemetry::merge(const TelemetrySnapshot &Other) {
  std::lock_guard<std::mutex> Lock(M);
  Data += Other;
}

double Telemetry::count(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  return Data.count(Name);
}

double Telemetry::timeMs(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  return Data.timeMs(Name);
}

TelemetrySnapshot Telemetry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  return Data;
}

TelemetrySnapshot Telemetry::takeSnapshot() {
  std::lock_guard<std::mutex> Lock(M);
  TelemetrySnapshot Out = std::move(Data);
  Data = TelemetrySnapshot();
  return Out;
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  Data = TelemetrySnapshot();
}
