//===- support/Rng.h - Deterministic random number generator ----*- C++ -*-===//
///
/// \file
/// A small, fast, fully deterministic PRNG (SplitMix64) used by the
/// synthetic workload generator. Determinism across platforms matters more
/// than statistical strength here: every experiment in the paper
/// reproduction must build bit-identical programs for a given seed.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_RNG_H
#define CCRA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace ccra {

/// SplitMix64 generator with convenience sampling helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed integer in [0, Bound). \p Bound must
  /// be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniformly distributed double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

  /// Picks a uniformly random element of \p Items (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick from empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Derives an independent generator from this one; useful for giving each
  /// generated function its own stream so edits to one function's spec do
  /// not perturb the others.
  Rng fork();

private:
  uint64_t State;
};

} // namespace ccra

#endif // CCRA_SUPPORT_RNG_H
