//===- support/Hash.h - Content hashing -------------------------*- C++ -*-===//
///
/// \file
/// FNV-1a 64-bit content hashing, shared by the content-addressed
/// allocation cache (service/AllocationCache.h) and the consistent-hash
/// shard ring (service/Sharding.h). Not cryptographic: every
/// hash-addressed structure in this codebase stores its full key material
/// and compares it on lookup, so a collision costs one extra comparison,
/// never a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_HASH_H
#define CCRA_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ccra {

inline constexpr std::uint64_t Fnv1a64Basis = 14695981039346656037ull;
inline constexpr std::uint64_t Fnv1a64Prime = 1099511628211ull;

/// FNV-1a over \p Len bytes, continuing from \p Seed; chain calls to hash
/// a multi-part key without concatenating the parts.
inline std::uint64_t fnv1a64(const void *Data, std::size_t Len,
                             std::uint64_t Seed = Fnv1a64Basis) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  std::uint64_t H = Seed;
  for (std::size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= Fnv1a64Prime;
  }
  return H;
}

inline std::uint64_t fnv1a64(std::string_view S,
                             std::uint64_t Seed = Fnv1a64Basis) {
  return fnv1a64(S.data(), S.size(), Seed);
}

} // namespace ccra

#endif // CCRA_SUPPORT_HASH_H
