//===- support/BuildInfo.h - Build provenance string ------------*- C++ -*-===//
///
/// \file
/// One shared build-identification string for every binary in the repo:
/// library version, git describe of the source tree, build type, and the
/// sanitizers compiled in. Every tool prints it under --version, and the
/// serving protocol echoes it in the HELLO frame so a client can log
/// exactly which build allocated its modules.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_BUILDINFO_H
#define CCRA_SUPPORT_BUILDINFO_H

#include <string>

namespace ccra {

/// The library version ("0.5.0").
const char *versionString();

/// `git describe --always --dirty --tags` of the tree this binary was
/// configured from ("unknown" outside a git checkout).
const char *gitDescribeString();

/// Comma-separated sanitizer tags compiled in ("none", "tsan",
/// "asan,ubsan", ...).
const char *sanitizerString();

/// The full one-line provenance, e.g.
/// "ccra 0.5.0 (git abc1234, RelWithDebInfo, sanitizers none)".
const std::string &buildInfoString();

} // namespace ccra

#endif // CCRA_SUPPORT_BUILDINFO_H
