//===- support/Diagnostic.h - Source-located diagnostics --------*- C++ -*-===//
///
/// \file
/// The one diagnostic currency shared by every textual frontend in the
/// repo: the `.ccra` IR parser (ir/IRParser.h) and the C-subset compiler
/// (frontend/Frontend.h). A diagnostic carries a 1-based line:column
/// position, the message, and the offending token when one is known, and
/// renders to a single canonical line so `ccra_cc` and `ccra_alloc` errors
/// look the same:
///
/// \code
///   line 4:17: unknown opcode 'bogus'
///   line 12:9: expected ';' after expression (near 'return')
/// \endcode
///
/// Tools prepend the file name themselves ("prog.c: line 12:9: ..."), so
/// the rendered form stays path-free and byte-stable across machines.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_DIAGNOSTIC_H
#define CCRA_SUPPORT_DIAGNOSTIC_H

#include <string>
#include <vector>

namespace ccra {

struct Diagnostic {
  /// 1-based source line; 0 means "no position" (e.g. module-level checks
  /// that run after the whole text has been consumed).
  unsigned Line = 0;
  /// 1-based column of the offending token; 0 means "whole line".
  unsigned Column = 0;
  std::string Message;
  /// The offending token text, when the reporter knows it. Rendered as a
  /// trailing "(near '...')" only when the message itself does not already
  /// quote it.
  std::string Near;

  Diagnostic() = default;
  Diagnostic(unsigned Line, unsigned Column, std::string Message,
             std::string Near = "")
      : Line(Line), Column(Column), Message(std::move(Message)),
        Near(std::move(Near)) {}

  /// "line L:C: message (near 'tok')" — the canonical one-line form. Parts
  /// without a value are dropped: no line -> just the message, no column ->
  /// "line L: message", no token (or a token the message already quotes)
  /// -> no "(near ...)" suffix.
  std::string render() const {
    std::string Out;
    if (Line > 0) {
      Out += "line " + std::to_string(Line);
      if (Column > 0)
        Out += ":" + std::to_string(Column);
      Out += ": ";
    }
    Out += Message;
    if (!Near.empty() && Message.find("'" + Near + "'") == std::string::npos)
      Out += " (near '" + Near + "')";
    return Out;
  }
};

/// Renders every diagnostic in \p Diags (helper for callers that keep the
/// legacy string-list error interface alive next to the structured one).
inline std::vector<std::string> renderDiagnostics(
    const std::vector<Diagnostic> &Diags) {
  std::vector<std::string> Out;
  Out.reserve(Diags.size());
  for (const Diagnostic &D : Diags)
    Out.push_back(D.render());
  return Out;
}

} // namespace ccra

#endif // CCRA_SUPPORT_DIAGNOSTIC_H
