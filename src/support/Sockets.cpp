//===- support/Sockets.cpp ------------------------------------------------===//

#include "support/Sockets.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ccra;

namespace {

void setError(std::string *Err, const char *What) {
  if (Err)
    *Err = std::string(What) + ": " + std::strerror(errno);
}

/// Every connected socket is switched to O_NONBLOCK so that send()/recv()
/// can never block past the poll() deadline: a full send buffer (slow
/// client that stopped reading) surfaces as EAGAIN and the transfer loop
/// re-checks the total deadline instead of wedging in the kernel.
bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Remaining milliseconds until \p Deadline (-1 = no deadline), clamped to
/// >= 0 once a deadline exists.
int remainingMs(std::chrono::steady_clock::time_point Deadline,
                bool HasDeadline) {
  if (!HasDeadline)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - std::chrono::steady_clock::now())
                  .count();
  return Left < 0 ? 0 : static_cast<int>(Left);
}

/// Waits for \p Events on \p Fd until the deadline. Returns Ok when ready,
/// Timeout/Error otherwise.
IoStatus waitReady(int Fd, short Events,
                   std::chrono::steady_clock::time_point Deadline,
                   bool HasDeadline, std::string *Err) {
  for (;;) {
    pollfd P{};
    P.fd = Fd;
    P.events = Events;
    int N = ::poll(&P, 1, remainingMs(Deadline, HasDeadline));
    if (N > 0)
      return IoStatus::Ok; // readable/writable, or HUP/ERR surfaced by I/O
    if (N == 0)
      return IoStatus::Timeout;
    if (errno == EINTR)
      continue;
    setError(Err, "poll");
    return IoStatus::Error;
  }
}

std::chrono::steady_clock::time_point deadlineFrom(int TimeoutMs) {
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(TimeoutMs < 0 ? 0 : TimeoutMs);
}

} // namespace

Socket &Socket::operator=(Socket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

IoStatus Socket::sendAll(const void *Data, std::size_t Len, int TimeoutMs,
                         std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "send on closed socket";
    return IoStatus::Error;
  }
  const bool HasDeadline = TimeoutMs >= 0;
  const auto Deadline = deadlineFrom(TimeoutMs);
  const char *P = static_cast<const char *>(Data);
  std::size_t Sent = 0;
  while (Sent < Len) {
    IoStatus S = waitReady(Fd, POLLOUT, Deadline, HasDeadline, Err);
    if (S != IoStatus::Ok)
      return S;
    ssize_t N = ::send(Fd, P + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<std::size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (N < 0 && (errno == EPIPE || errno == ECONNRESET))
      return IoStatus::Closed;
    setError(Err, "send");
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus Socket::recvAll(void *Data, std::size_t Len, int TimeoutMs,
                         std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "recv on closed socket";
    return IoStatus::Error;
  }
  const bool HasDeadline = TimeoutMs >= 0;
  const auto Deadline = deadlineFrom(TimeoutMs);
  char *P = static_cast<char *>(Data);
  std::size_t Got = 0;
  while (Got < Len) {
    IoStatus S = waitReady(Fd, POLLIN, Deadline, HasDeadline, Err);
    if (S != IoStatus::Ok)
      return S;
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N > 0) {
      Got += static_cast<std::size_t>(N);
      continue;
    }
    if (N == 0)
      return IoStatus::Closed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
      continue;
    if (errno == ECONNRESET)
      return IoStatus::Closed;
    setError(Err, "recv");
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

std::size_t Socket::sendSome(const void *Data, std::size_t Len,
                             IoStatus &Status) {
  if (Fd < 0) {
    Status = IoStatus::Error;
    return 0;
  }
  for (;;) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N >= 0) {
      Status = IoStatus::Ok;
      return static_cast<std::size_t>(N);
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status = IoStatus::Ok;
      return 0;
    }
    Status = (errno == EPIPE || errno == ECONNRESET) ? IoStatus::Closed
                                                     : IoStatus::Error;
    return 0;
  }
}

std::size_t Socket::recvSome(void *Data, std::size_t Len, IoStatus &Status) {
  if (Fd < 0) {
    Status = IoStatus::Error;
    return 0;
  }
  for (;;) {
    ssize_t N = ::recv(Fd, Data, Len, 0);
    if (N > 0) {
      Status = IoStatus::Ok;
      return static_cast<std::size_t>(N);
    }
    if (N == 0) {
      Status = IoStatus::Closed;
      return 0;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status = IoStatus::Ok;
      return 0;
    }
    Status = errno == ECONNRESET ? IoStatus::Closed : IoStatus::Error;
    return 0;
  }
}

Socket Socket::connectUnix(const std::string &Path, std::string *Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "unix socket path too long: " + Path;
    return Socket();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, "socket");
    return Socket();
  }
  // Blocking connect (loopback/unix — effectively instant), then switch to
  // non-blocking for the deadline-bounded transfer loops.
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      !setNonBlocking(Fd)) {
    setError(Err, "connect");
    ::close(Fd);
    return Socket();
  }
  return Socket(Fd);
}

Socket Socket::connectTcp(int Port, std::string *Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, "socket");
    return Socket();
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      !setNonBlocking(Fd)) {
    setError(Err, "connect");
    ::close(Fd);
    return Socket();
  }
  return Socket(Fd);
}

ListenSocket::ListenSocket(ListenSocket &&Other) noexcept
    : Fd(Other.Fd), Port(Other.Port), UnixPath(std::move(Other.UnixPath)) {
  Other.Fd = -1;
  Other.UnixPath.clear();
}

ListenSocket &ListenSocket::operator=(ListenSocket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Port = Other.Port;
    UnixPath = std::move(Other.UnixPath);
    Other.Fd = -1;
    Other.UnixPath.clear();
  }
  return *this;
}

void ListenSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!UnixPath.empty()) {
    ::unlink(UnixPath.c_str());
    UnixPath.clear();
  }
}

ListenSocket ListenSocket::listenUnix(const std::string &Path, int Backlog,
                                      std::string *Err) {
  ListenSocket L;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "unix socket path too long: " + Path;
    return L;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str()); // stale socket file from a crashed server

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, "socket");
    return L;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    setError(Err, "bind/listen");
    ::close(Fd);
    return L;
  }
  L.Fd = Fd;
  L.UnixPath = Path;
  return L;
}

ListenSocket ListenSocket::listenTcp(int Port, int Backlog, std::string *Err) {
  ListenSocket L;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, "socket");
    return L;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    setError(Err, "bind/listen");
    ::close(Fd);
    return L;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    L.Port = ntohs(Addr.sin_port);
  L.Fd = Fd;
  return L;
}

Socket ListenSocket::accept(int TimeoutMs, IoStatus &Status,
                            std::string *Err) {
  if (Fd < 0) {
    Status = IoStatus::Closed;
    return Socket();
  }
  const bool HasDeadline = TimeoutMs >= 0;
  const auto Deadline = deadlineFrom(TimeoutMs);
  for (;;) {
    Status = waitReady(Fd, POLLIN, Deadline, HasDeadline, Err);
    if (Status != IoStatus::Ok)
      return Socket();
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn >= 0) {
      if (!setNonBlocking(Conn)) {
        setError(Err, "fcntl");
        ::close(Conn);
        Status = IoStatus::Error;
        return Socket();
      }
      int One = 1;
      ::setsockopt(Conn, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      Status = IoStatus::Ok;
      return Socket(Conn);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED)
      continue;
    if (errno == EBADF || errno == EINVAL) {
      Status = IoStatus::Closed;
      return Socket();
    }
    setError(Err, "accept");
    Status = IoStatus::Error;
    return Socket();
  }
}

Socket ListenSocket::acceptNonBlocking(IoStatus &Status, std::string *Err) {
  if (Fd < 0) {
    Status = IoStatus::Closed;
    return Socket();
  }
  setNonBlocking(Fd); // idempotent; the blocking accept() path polls anyway
  for (;;) {
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn >= 0) {
      if (!setNonBlocking(Conn)) {
        setError(Err, "fcntl");
        ::close(Conn);
        Status = IoStatus::Error;
        return Socket();
      }
      int One = 1;
      ::setsockopt(Conn, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      Status = IoStatus::Ok;
      return Socket(Conn);
    }
    if (errno == EINTR || errno == ECONNABORTED)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status = IoStatus::Timeout;
      return Socket();
    }
    if (errno == EBADF || errno == EINVAL) {
      Status = IoStatus::Closed;
      return Socket();
    }
    // EMFILE/ENFILE under connection storms: report Error; the caller
    // backs off instead of spinning on the ready listener.
    setError(Err, "accept");
    Status = IoStatus::Error;
    return Socket();
  }
}

// --- EpollHandle ---------------------------------------------------------

EpollHandle &EpollHandle::operator=(EpollHandle &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

bool EpollHandle::create(std::string *Err) {
  close();
  Fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (Fd < 0) {
    setError(Err, "epoll_create1");
    return false;
  }
  return true;
}

void EpollHandle::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

namespace {
epoll_event makeEvent(std::uint64_t Data, bool Read, bool Write) {
  epoll_event Ev{};
  Ev.events = (Read ? EPOLLIN : 0u) | (Write ? EPOLLOUT : 0u) | EPOLLRDHUP;
  Ev.data.u64 = Data;
  return Ev;
}
} // namespace

bool EpollHandle::add(int TargetFd, std::uint64_t Data, bool Read, bool Write,
                      std::string *Err) {
  epoll_event Ev = makeEvent(Data, Read, Write);
  if (::epoll_ctl(Fd, EPOLL_CTL_ADD, TargetFd, &Ev) != 0) {
    setError(Err, "epoll_ctl(ADD)");
    return false;
  }
  return true;
}

bool EpollHandle::modify(int TargetFd, std::uint64_t Data, bool Read,
                         bool Write, std::string *Err) {
  epoll_event Ev = makeEvent(Data, Read, Write);
  if (::epoll_ctl(Fd, EPOLL_CTL_MOD, TargetFd, &Ev) != 0) {
    setError(Err, "epoll_ctl(MOD)");
    return false;
  }
  return true;
}

bool EpollHandle::remove(int TargetFd) {
  return ::epoll_ctl(Fd, EPOLL_CTL_DEL, TargetFd, nullptr) == 0;
}

int EpollHandle::wait(std::vector<EpollEvent> &Out, int TimeoutMs,
                      std::string *Err) {
  Out.clear();
  epoll_event Events[256];
  int N;
  do {
    N = ::epoll_wait(Fd, Events, 256, TimeoutMs);
  } while (N < 0 && errno == EINTR);
  if (N < 0) {
    setError(Err, "epoll_wait");
    return -1;
  }
  Out.reserve(static_cast<std::size_t>(N));
  for (int I = 0; I < N; ++I) {
    EpollEvent E;
    E.Data = Events[I].data.u64;
    E.Readable = (Events[I].events & (EPOLLIN | EPOLLRDHUP)) != 0;
    E.Writable = (Events[I].events & EPOLLOUT) != 0;
    E.Broken = (Events[I].events & (EPOLLHUP | EPOLLERR)) != 0;
    Out.push_back(E);
  }
  return N;
}

// --- WakeEvent -----------------------------------------------------------

WakeEvent &WakeEvent::operator=(WakeEvent &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

bool WakeEvent::create(std::string *Err) {
  close();
  Fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (Fd < 0) {
    setError(Err, "eventfd");
    return false;
  }
  return true;
}

void WakeEvent::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void WakeEvent::signal() {
  if (Fd < 0)
    return;
  std::uint64_t One = 1;
  ssize_t N;
  do {
    N = ::write(Fd, &One, sizeof(One));
  } while (N < 0 && errno == EINTR);
  // EAGAIN means the counter is already saturated: the wakeup is pending.
}

void WakeEvent::drain() {
  if (Fd < 0)
    return;
  std::uint64_t Count;
  while (::read(Fd, &Count, sizeof(Count)) > 0) {
  }
}

// --- TimerFd -------------------------------------------------------------

TimerFd &TimerFd::operator=(TimerFd &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

bool TimerFd::create(int IntervalMs, std::string *Err) {
  close();
  Fd = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  if (Fd < 0) {
    setError(Err, "timerfd_create");
    return false;
  }
  itimerspec Spec{};
  Spec.it_interval.tv_sec = IntervalMs / 1000;
  Spec.it_interval.tv_nsec = static_cast<long>(IntervalMs % 1000) * 1000000;
  Spec.it_value = Spec.it_interval;
  if (::timerfd_settime(Fd, 0, &Spec, nullptr) != 0) {
    setError(Err, "timerfd_settime");
    close();
    return false;
  }
  return true;
}

void TimerFd::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void TimerFd::drain() {
  if (Fd < 0)
    return;
  std::uint64_t Expirations;
  while (::read(Fd, &Expirations, sizeof(Expirations)) > 0) {
  }
}
