//===- support/Sockets.cpp ------------------------------------------------===//

#include "support/Sockets.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ccra;

namespace {

void setError(std::string *Err, const char *What) {
  if (Err)
    *Err = std::string(What) + ": " + std::strerror(errno);
}

/// Every connected socket is switched to O_NONBLOCK so that send()/recv()
/// can never block past the poll() deadline: a full send buffer (slow
/// client that stopped reading) surfaces as EAGAIN and the transfer loop
/// re-checks the total deadline instead of wedging in the kernel.
bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Remaining milliseconds until \p Deadline (-1 = no deadline), clamped to
/// >= 0 once a deadline exists.
int remainingMs(std::chrono::steady_clock::time_point Deadline,
                bool HasDeadline) {
  if (!HasDeadline)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - std::chrono::steady_clock::now())
                  .count();
  return Left < 0 ? 0 : static_cast<int>(Left);
}

/// Waits for \p Events on \p Fd until the deadline. Returns Ok when ready,
/// Timeout/Error otherwise.
IoStatus waitReady(int Fd, short Events,
                   std::chrono::steady_clock::time_point Deadline,
                   bool HasDeadline, std::string *Err) {
  for (;;) {
    pollfd P{};
    P.fd = Fd;
    P.events = Events;
    int N = ::poll(&P, 1, remainingMs(Deadline, HasDeadline));
    if (N > 0)
      return IoStatus::Ok; // readable/writable, or HUP/ERR surfaced by I/O
    if (N == 0)
      return IoStatus::Timeout;
    if (errno == EINTR)
      continue;
    setError(Err, "poll");
    return IoStatus::Error;
  }
}

std::chrono::steady_clock::time_point deadlineFrom(int TimeoutMs) {
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(TimeoutMs < 0 ? 0 : TimeoutMs);
}

} // namespace

Socket &Socket::operator=(Socket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

IoStatus Socket::sendAll(const void *Data, std::size_t Len, int TimeoutMs,
                         std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "send on closed socket";
    return IoStatus::Error;
  }
  const bool HasDeadline = TimeoutMs >= 0;
  const auto Deadline = deadlineFrom(TimeoutMs);
  const char *P = static_cast<const char *>(Data);
  std::size_t Sent = 0;
  while (Sent < Len) {
    IoStatus S = waitReady(Fd, POLLOUT, Deadline, HasDeadline, Err);
    if (S != IoStatus::Ok)
      return S;
    ssize_t N = ::send(Fd, P + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<std::size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (N < 0 && (errno == EPIPE || errno == ECONNRESET))
      return IoStatus::Closed;
    setError(Err, "send");
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus Socket::recvAll(void *Data, std::size_t Len, int TimeoutMs,
                         std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "recv on closed socket";
    return IoStatus::Error;
  }
  const bool HasDeadline = TimeoutMs >= 0;
  const auto Deadline = deadlineFrom(TimeoutMs);
  char *P = static_cast<char *>(Data);
  std::size_t Got = 0;
  while (Got < Len) {
    IoStatus S = waitReady(Fd, POLLIN, Deadline, HasDeadline, Err);
    if (S != IoStatus::Ok)
      return S;
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N > 0) {
      Got += static_cast<std::size_t>(N);
      continue;
    }
    if (N == 0)
      return IoStatus::Closed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
      continue;
    if (errno == ECONNRESET)
      return IoStatus::Closed;
    setError(Err, "recv");
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

Socket Socket::connectUnix(const std::string &Path, std::string *Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "unix socket path too long: " + Path;
    return Socket();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, "socket");
    return Socket();
  }
  // Blocking connect (loopback/unix — effectively instant), then switch to
  // non-blocking for the deadline-bounded transfer loops.
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      !setNonBlocking(Fd)) {
    setError(Err, "connect");
    ::close(Fd);
    return Socket();
  }
  return Socket(Fd);
}

Socket Socket::connectTcp(int Port, std::string *Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, "socket");
    return Socket();
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      !setNonBlocking(Fd)) {
    setError(Err, "connect");
    ::close(Fd);
    return Socket();
  }
  return Socket(Fd);
}

ListenSocket::ListenSocket(ListenSocket &&Other) noexcept
    : Fd(Other.Fd), Port(Other.Port), UnixPath(std::move(Other.UnixPath)) {
  Other.Fd = -1;
  Other.UnixPath.clear();
}

ListenSocket &ListenSocket::operator=(ListenSocket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Port = Other.Port;
    UnixPath = std::move(Other.UnixPath);
    Other.Fd = -1;
    Other.UnixPath.clear();
  }
  return *this;
}

void ListenSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!UnixPath.empty()) {
    ::unlink(UnixPath.c_str());
    UnixPath.clear();
  }
}

ListenSocket ListenSocket::listenUnix(const std::string &Path, int Backlog,
                                      std::string *Err) {
  ListenSocket L;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "unix socket path too long: " + Path;
    return L;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str()); // stale socket file from a crashed server

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, "socket");
    return L;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    setError(Err, "bind/listen");
    ::close(Fd);
    return L;
  }
  L.Fd = Fd;
  L.UnixPath = Path;
  return L;
}

ListenSocket ListenSocket::listenTcp(int Port, int Backlog, std::string *Err) {
  ListenSocket L;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Err, "socket");
    return L;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    setError(Err, "bind/listen");
    ::close(Fd);
    return L;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    L.Port = ntohs(Addr.sin_port);
  L.Fd = Fd;
  return L;
}

Socket ListenSocket::accept(int TimeoutMs, IoStatus &Status,
                            std::string *Err) {
  if (Fd < 0) {
    Status = IoStatus::Closed;
    return Socket();
  }
  const bool HasDeadline = TimeoutMs >= 0;
  const auto Deadline = deadlineFrom(TimeoutMs);
  for (;;) {
    Status = waitReady(Fd, POLLIN, Deadline, HasDeadline, Err);
    if (Status != IoStatus::Ok)
      return Socket();
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn >= 0) {
      if (!setNonBlocking(Conn)) {
        setError(Err, "fcntl");
        ::close(Conn);
        Status = IoStatus::Error;
        return Socket();
      }
      int One = 1;
      ::setsockopt(Conn, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      Status = IoStatus::Ok;
      return Socket(Conn);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED)
      continue;
    if (errno == EBADF || errno == EINVAL) {
      Status = IoStatus::Closed;
      return Socket();
    }
    setError(Err, "accept");
    Status = IoStatus::Error;
    return Socket();
  }
}
