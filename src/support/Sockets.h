//===- support/Sockets.h - RAII sockets with deadlines ----------*- C++ -*-===//
///
/// \file
/// The transport layer under the allocation service: thin RAII wrappers
/// over POSIX stream sockets (Unix-domain and 127.0.0.1 TCP) with
/// poll-based deadline semantics on every blocking operation. The serving
/// stack needs deadlines everywhere — a slow client must not be able to
/// wedge a server thread on write, and a drained server must notice the
/// stop flag while parked in accept/read — so the primitive operations
/// here all take a timeout instead of blocking indefinitely.
///
/// Timeout convention: milliseconds; -1 blocks forever, 0 polls. For the
/// sendAll/recvAll loops the timeout is a *total* deadline for the whole
/// transfer, not per chunk.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_SOCKETS_H
#define CCRA_SUPPORT_SOCKETS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccra {

/// Outcome of a timed transfer. Closed means the peer shut the stream down
/// cleanly mid-transfer (for recvAll: before the first byte too).
enum class IoStatus { Ok, Timeout, Closed, Error };

/// A connected stream socket (move-only; closes on destruction). The fd is
/// kept in O_NONBLOCK mode so the deadline bounds the actual transfer, not
/// just readiness — a peer that stops draining its receive buffer makes
/// send() return EAGAIN rather than blocking past the poll() deadline.
/// Writes never raise SIGPIPE — a dead peer surfaces as IoStatus::Error.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  Socket &operator=(Socket &&Other) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// Writes all \p Len bytes within \p TimeoutMs.
  IoStatus sendAll(const void *Data, std::size_t Len, int TimeoutMs,
                   std::string *Err = nullptr);
  /// Reads exactly \p Len bytes within \p TimeoutMs.
  IoStatus recvAll(void *Data, std::size_t Len, int TimeoutMs,
                   std::string *Err = nullptr);

  /// Single-shot non-blocking transfer primitives for event-loop callers
  /// that multiplex readiness themselves (epoll) instead of parking in
  /// poll(). Both return the bytes moved this call; 0 with Status == Ok
  /// means "would block, try again on the next readiness event". recvSome
  /// reports a clean peer close as Status == Closed.
  std::size_t sendSome(const void *Data, std::size_t Len, IoStatus &Status);
  std::size_t recvSome(void *Data, std::size_t Len, IoStatus &Status);

  /// Connects to a Unix-domain socket at \p Path.
  static Socket connectUnix(const std::string &Path, std::string *Err);
  /// Connects to 127.0.0.1:\p Port.
  static Socket connectTcp(int Port, std::string *Err);

private:
  int Fd = -1;
};

/// A listening socket (move-only). Closing a Unix listener unlinks its
/// path, so a drained server leaves no stale socket file behind.
class ListenSocket {
public:
  ListenSocket() = default;
  ~ListenSocket() { close(); }

  ListenSocket(ListenSocket &&Other) noexcept;
  ListenSocket &operator=(ListenSocket &&Other) noexcept;
  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;

  bool valid() const { return Fd >= 0; }
  void close();

  /// Binds and listens on a Unix-domain socket at \p Path (unlinking any
  /// stale file first).
  static ListenSocket listenUnix(const std::string &Path, int Backlog,
                                 std::string *Err);
  /// Binds and listens on 127.0.0.1:\p Port (0 picks an ephemeral port;
  /// boundPort() reports it).
  static ListenSocket listenTcp(int Port, int Backlog, std::string *Err);

  /// Accepts one connection within \p TimeoutMs. Returns an invalid Socket
  /// on timeout (\p Status = Timeout), listener closed from another thread
  /// (Closed), or error (Error).
  Socket accept(int TimeoutMs, IoStatus &Status, std::string *Err = nullptr);

  /// Non-blocking accept for event-loop callers: returns immediately with
  /// Status == Timeout when no connection is pending (the epoll event was
  /// already consumed or spurious). The listening fd is switched to
  /// O_NONBLOCK on first use and stays that way.
  Socket acceptNonBlocking(IoStatus &Status, std::string *Err = nullptr);

  int fd() const { return Fd; }

  /// The TCP port actually bound (ephemeral-port servers), -1 for Unix.
  int boundPort() const { return Port; }

private:
  int Fd = -1;
  int Port = -1;
  std::string UnixPath;
};

/// One readiness event out of EpollHandle::wait. \p Data is the caller's
/// registration cookie (a connection id, never a pointer — ids survive the
/// connection-table rehashing a pointer would not).
struct EpollEvent {
  std::uint64_t Data = 0;
  bool Readable = false;
  bool Writable = false;
  /// EPOLLHUP/EPOLLERR: the peer is gone or the fd broke; the owner should
  /// attempt a final read (to drain buffered bytes) and close.
  bool Broken = false;
};

/// RAII epoll instance (move-only). Level-triggered: the event loop's
/// per-connection state machines re-run until they would block, so no
/// readiness edge is ever lost to a short read.
class EpollHandle {
public:
  EpollHandle() = default;
  ~EpollHandle() { close(); }

  EpollHandle(EpollHandle &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  EpollHandle &operator=(EpollHandle &&Other) noexcept;
  EpollHandle(const EpollHandle &) = delete;
  EpollHandle &operator=(const EpollHandle &) = delete;

  /// Creates the epoll instance; returns false with a diagnostic on
  /// failure (fd exhaustion).
  bool create(std::string *Err = nullptr);
  bool valid() const { return Fd >= 0; }
  void close();

  /// Registers / re-arms / removes \p Fd. \p Read / \p Write select
  /// EPOLLIN / EPOLLOUT; \p Data is returned verbatim in events.
  bool add(int Fd, std::uint64_t Data, bool Read, bool Write,
           std::string *Err = nullptr);
  bool modify(int Fd, std::uint64_t Data, bool Read, bool Write,
              std::string *Err = nullptr);
  bool remove(int Fd);

  /// Blocks up to \p TimeoutMs (-1 = forever) and fills \p Out with ready
  /// events. Returns the event count, 0 on timeout, -1 on error (EINTR is
  /// retried internally).
  int wait(std::vector<EpollEvent> &Out, int TimeoutMs,
           std::string *Err = nullptr);

private:
  int Fd = -1;
};

/// RAII eventfd: a cross-thread doorbell for the event loop. Worker
/// threads signal() when they post a completed response; the loop has the
/// fd registered in its epoll set and drain()s it on wakeup.
class WakeEvent {
public:
  WakeEvent() = default;
  ~WakeEvent() { close(); }

  WakeEvent(WakeEvent &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  WakeEvent &operator=(WakeEvent &&Other) noexcept;
  WakeEvent(const WakeEvent &) = delete;
  WakeEvent &operator=(const WakeEvent &) = delete;

  bool create(std::string *Err = nullptr);
  bool valid() const { return Fd >= 0; }
  void close();
  int fd() const { return Fd; }

  /// Async-signal-safe and thread-safe; coalesces with pending signals.
  void signal();
  /// Consumes all pending signals (the loop side).
  void drain();

private:
  int Fd = -1;
};

/// RAII periodic timerfd: the event loop's deadline sweeper. Registered in
/// the epoll set like any fd; each expiry is one readable event, and
/// drain() consumes the expiration count.
class TimerFd {
public:
  TimerFd() = default;
  ~TimerFd() { close(); }

  TimerFd(TimerFd &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  TimerFd &operator=(TimerFd &&Other) noexcept;
  TimerFd(const TimerFd &) = delete;
  TimerFd &operator=(const TimerFd &) = delete;

  /// Creates the timer firing every \p IntervalMs (first expiry one
  /// interval out).
  bool create(int IntervalMs, std::string *Err = nullptr);
  bool valid() const { return Fd >= 0; }
  void close();
  int fd() const { return Fd; }

  /// Consumes pending expirations so the level-triggered epoll stops
  /// reporting the fd readable.
  void drain();

private:
  int Fd = -1;
};

} // namespace ccra

#endif // CCRA_SUPPORT_SOCKETS_H
