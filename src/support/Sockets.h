//===- support/Sockets.h - RAII sockets with deadlines ----------*- C++ -*-===//
///
/// \file
/// The transport layer under the allocation service: thin RAII wrappers
/// over POSIX stream sockets (Unix-domain and 127.0.0.1 TCP) with
/// poll-based deadline semantics on every blocking operation. The serving
/// stack needs deadlines everywhere — a slow client must not be able to
/// wedge a server thread on write, and a drained server must notice the
/// stop flag while parked in accept/read — so the primitive operations
/// here all take a timeout instead of blocking indefinitely.
///
/// Timeout convention: milliseconds; -1 blocks forever, 0 polls. For the
/// sendAll/recvAll loops the timeout is a *total* deadline for the whole
/// transfer, not per chunk.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_SOCKETS_H
#define CCRA_SUPPORT_SOCKETS_H

#include <cstddef>
#include <string>

namespace ccra {

/// Outcome of a timed transfer. Closed means the peer shut the stream down
/// cleanly mid-transfer (for recvAll: before the first byte too).
enum class IoStatus { Ok, Timeout, Closed, Error };

/// A connected stream socket (move-only; closes on destruction). The fd is
/// kept in O_NONBLOCK mode so the deadline bounds the actual transfer, not
/// just readiness — a peer that stops draining its receive buffer makes
/// send() return EAGAIN rather than blocking past the poll() deadline.
/// Writes never raise SIGPIPE — a dead peer surfaces as IoStatus::Error.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  Socket &operator=(Socket &&Other) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// Writes all \p Len bytes within \p TimeoutMs.
  IoStatus sendAll(const void *Data, std::size_t Len, int TimeoutMs,
                   std::string *Err = nullptr);
  /// Reads exactly \p Len bytes within \p TimeoutMs.
  IoStatus recvAll(void *Data, std::size_t Len, int TimeoutMs,
                   std::string *Err = nullptr);

  /// Connects to a Unix-domain socket at \p Path.
  static Socket connectUnix(const std::string &Path, std::string *Err);
  /// Connects to 127.0.0.1:\p Port.
  static Socket connectTcp(int Port, std::string *Err);

private:
  int Fd = -1;
};

/// A listening socket (move-only). Closing a Unix listener unlinks its
/// path, so a drained server leaves no stale socket file behind.
class ListenSocket {
public:
  ListenSocket() = default;
  ~ListenSocket() { close(); }

  ListenSocket(ListenSocket &&Other) noexcept;
  ListenSocket &operator=(ListenSocket &&Other) noexcept;
  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;

  bool valid() const { return Fd >= 0; }
  void close();

  /// Binds and listens on a Unix-domain socket at \p Path (unlinking any
  /// stale file first).
  static ListenSocket listenUnix(const std::string &Path, int Backlog,
                                 std::string *Err);
  /// Binds and listens on 127.0.0.1:\p Port (0 picks an ephemeral port;
  /// boundPort() reports it).
  static ListenSocket listenTcp(int Port, int Backlog, std::string *Err);

  /// Accepts one connection within \p TimeoutMs. Returns an invalid Socket
  /// on timeout (\p Status = Timeout), listener closed from another thread
  /// (Closed), or error (Error).
  Socket accept(int TimeoutMs, IoStatus &Status, std::string *Err = nullptr);

  /// The TCP port actually bound (ephemeral-port servers), -1 for Unix.
  int boundPort() const { return Port; }

private:
  int Fd = -1;
  int Port = -1;
  std::string UnixPath;
};

} // namespace ccra

#endif // CCRA_SUPPORT_SOCKETS_H
