//===- support/Rng.cpp ----------------------------------------------------===//

#include "support/Rng.h"

using namespace ccra;

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be nonzero");
  // Rejection-free multiply-shift; the tiny modulo bias is irrelevant for
  // workload generation and keeps results identical across platforms.
  return next() % Bound;
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(
                  nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }
