//===- support/BitVector.h - Fixed-capacity dynamic bit vector --*- C++ -*-===//
//
// Part of the ccra project: a reproduction of "Call-Cost Directed Register
// Allocation" (Lueh & Gross, PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A word-packed bit vector used for dataflow sets (liveness) and
/// interference bit matrices. Mirrors the subset of llvm::BitVector the
/// allocator needs: set/reset/test, bulk union/intersect/subtract, iteration
/// over set bits, and population count.
///
/// Indices are size_t: the triangular interference bit matrix stores
/// V*(V-1)/2 bits, which exceeds 2^32 once V reaches ~93k nodes, so the
/// index space must be wider than the node count's.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_BITVECTOR_H
#define CCRA_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccra {

/// A resizable vector of bits with word-granularity bulk operations.
class BitVector {
public:
  BitVector() = default;

  /// Creates a bit vector holding \p NumBits bits, all initialized to
  /// \p InitialValue.
  explicit BitVector(size_t NumBits, bool InitialValue = false) {
    resize(NumBits, InitialValue);
  }

  /// Returns the number of bits tracked by this vector.
  size_t size() const { return NumBits; }

  /// Returns true if no bit is set.
  bool none() const;

  /// Returns true if at least one bit is set.
  bool any() const { return !none(); }

  /// Returns the number of set bits.
  size_t count() const;

  /// Grows or shrinks the vector to \p NewSize bits; new bits take
  /// \p Value.
  void resize(size_t NewSize, bool Value = false);

  /// Sets bit \p Idx to one.
  void set(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / BitsPerWord] |= wordMask(Idx);
  }

  /// Clears bit \p Idx.
  void reset(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / BitsPerWord] &= ~wordMask(Idx);
  }

  /// Clears every bit.
  void resetAll();

  /// Sets every bit.
  void setAll();

  /// Returns the value of bit \p Idx.
  bool test(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / BitsPerWord] & wordMask(Idx)) != 0;
  }

  bool operator[](size_t Idx) const { return test(Idx); }

  /// Bitwise-or of \p Other into this vector. Returns true if any bit of
  /// this vector changed (used to detect dataflow fixpoints). Sizes must
  /// match.
  bool unionWith(const BitVector &Other);

  /// Bitwise-and with \p Other. Sizes must match.
  void intersectWith(const BitVector &Other);

  /// Clears every bit that is set in \p Other. Sizes must match.
  void subtract(const BitVector &Other);

  /// Returns the index of the first set bit at or after \p From, or -1 if
  /// there is none.
  ptrdiff_t findNext(size_t From) const;

  /// Returns the index of the first set bit, or -1 for an empty vector.
  ptrdiff_t findFirst() const { return findNext(0); }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Appends the index of every set bit to \p Out.
  void collectSetBits(std::vector<unsigned> &Out) const;

  /// Bytes of heap capacity held by the word array (for memory telemetry).
  size_t memoryBytes() const { return Words.capacity() * sizeof(uint64_t); }

  /// Iterator over the indices of set bits.
  class SetBitIterator {
  public:
    SetBitIterator(const BitVector &BV, ptrdiff_t Pos) : BV(&BV), Pos(Pos) {}
    unsigned operator*() const { return static_cast<unsigned>(Pos); }
    SetBitIterator &operator++() {
      Pos = BV->findNext(static_cast<size_t>(Pos) + 1);
      return *this;
    }
    bool operator!=(const SetBitIterator &Other) const {
      return Pos != Other.Pos;
    }

  private:
    const BitVector *BV;
    ptrdiff_t Pos;
  };

  SetBitIterator begin() const { return SetBitIterator(*this, findFirst()); }
  SetBitIterator end() const { return SetBitIterator(*this, -1); }

private:
  static constexpr size_t BitsPerWord = 64;

  static uint64_t wordMask(size_t Idx) {
    return uint64_t(1) << (Idx % BitsPerWord);
  }

  /// Zeroes any bits in the last word beyond NumBits so count()/none()
  /// stay exact.
  void clearUnusedBits();

  std::vector<uint64_t> Words;
  size_t NumBits = 0;
};

} // namespace ccra

#endif // CCRA_SUPPORT_BITVECTOR_H
