//===- support/Statistics.h - Small numeric helpers -------------*- C++ -*-===//
///
/// \file
/// Mean / geometric-mean / ratio helpers used by the experiment harness when
/// summarizing overhead numbers across register configurations.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_STATISTICS_H
#define CCRA_SUPPORT_STATISTICS_H

#include <vector>

namespace ccra {

/// Arithmetic mean; returns 0 for an empty input.
double mean(const std::vector<double> &Values);

/// Geometric mean; every element must be positive. Returns 0 for an empty
/// input.
double geometricMean(const std::vector<double> &Values);

/// \p Numerator / \p Denominator with a defined result when both are zero
/// (1.0: "no overhead either way") or only the denominator is zero
/// (+infinity clamp, \p InfValue).
double safeRatio(double Numerator, double Denominator,
                 double InfValue = 1e9);

} // namespace ccra

#endif // CCRA_SUPPORT_STATISTICS_H
