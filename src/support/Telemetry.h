//===- support/Telemetry.h - Phase timers and counters ----------*- C++ -*-===//
///
/// \file
/// The measurement layer of the allocation engine: named counters (rounds,
/// spills, coalesces, callee registers paid, ...) and per-phase wall-clock
/// timers, with JSON and CSV emitters so bench output is machine-comparable
/// across runs and PRs.
///
/// Two types split the concerns:
///
/// - TelemetrySnapshot: a plain, copyable value — two sorted name->value
///   maps plus (de)serialization. What gets emitted, diffed, and asserted
///   on in tests.
/// - Telemetry: a thread-safe recorder. Worker threads record into
///   task-local recorders; the engine merges their snapshots in task order
///   so aggregate counters are deterministic.
///
/// JSON schema (all values doubles; timers in milliseconds):
///
///   {
///     "counters": {"functions": 14, "rounds": 19, ...},
///     "timers_ms": {"coalesce": 0.51, "color": 1.74, ...}
///   }
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_TELEMETRY_H
#define CCRA_SUPPORT_TELEMETRY_H

#include <chrono>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace ccra {

/// A copyable sample of telemetry state. Keys are sorted (std::map), so
/// emission order is stable.
struct TelemetrySnapshot {
  std::map<std::string, double> Counters;
  std::map<std::string, double> TimersMs;

  bool empty() const { return Counters.empty() && TimersMs.empty(); }

  double count(const std::string &Name) const;
  double timeMs(const std::string &Name) const;

  /// Adds every counter and timer of \p Other into this snapshot.
  TelemetrySnapshot &operator+=(const TelemetrySnapshot &Other);

  bool operator==(const TelemetrySnapshot &Other) const = default;

  /// Emits the schema documented above. Numbers use max precision, so a
  /// write -> parse round trip reproduces the snapshot exactly.
  void writeJson(std::ostream &OS) const;
  std::string toJson() const;

  /// Emits "kind,name,value" rows (kind is "counter" or "timer_ms") with a
  /// header row.
  void writeCsv(std::ostream &OS) const;

  /// Parses text produced by writeJson/toJson. Returns false (leaving
  /// \p Out in an unspecified state) on malformed input.
  static bool fromJson(const std::string &Text, TelemetrySnapshot &Out);

  /// Returns a copy without the "sched." counter namespace. Counters
  /// outside that namespace are deterministic functions of the allocation
  /// inputs (identical at any Jobs setting and with any cache/scratch
  /// configuration); "sched." counters describe scheduling, cache and
  /// arena occupancy and legitimately vary run to run. Equality assertions
  /// across Jobs settings must compare this view.
  TelemetrySnapshot withoutSchedulingCounters() const;
};

/// A thread-safe telemetry recorder.
class Telemetry {
public:
  Telemetry() = default;

  void addCount(const std::string &Name, double Delta = 1.0);
  /// Raises counter \p Name to \p Value if it is below it. Use for peak /
  /// high-water counters; name them under telemetry::MaxCounterPrefix so
  /// snapshot merging takes the max instead of the sum.
  void noteMax(const std::string &Name, double Value);
  void addTimeMs(const std::string &Name, double Ms);
  void merge(const TelemetrySnapshot &Other);

  double count(const std::string &Name) const;
  double timeMs(const std::string &Name) const;

  TelemetrySnapshot snapshot() const;
  /// Moves the accumulated data out, leaving this recorder empty. The
  /// serving batch path drains one short-lived recorder per request;
  /// copying the ~50-entry maps there is pure overhead.
  TelemetrySnapshot takeSnapshot();
  void reset();

  /// Adds the elapsed wall-clock time to timer \p Name on destruction.
  /// Null-safe: a null recorder makes the timer a no-op.
  class ScopedTimer {
  public:
    ScopedTimer(Telemetry *T, const char *Name) : T(T), Name(Name) {
      if (T)
        Start = std::chrono::steady_clock::now();
    }
    ~ScopedTimer() {
      if (!T)
        return;
      std::chrono::duration<double, std::milli> Elapsed =
          std::chrono::steady_clock::now() - Start;
      T->addTimeMs(Name, Elapsed.count());
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Telemetry *T;
    const char *Name;
    std::chrono::steady_clock::time_point Start;
  };

private:
  mutable std::mutex M;
  TelemetrySnapshot Data;
};

/// Canonical names used by the allocation engine, so every reporter (tool,
/// benches, tests) keys on the same strings.
namespace telemetry {
// Counters.
inline constexpr const char *Functions = "functions";
inline constexpr const char *Rounds = "rounds";
inline constexpr const char *SpilledRanges = "spilled_ranges";
inline constexpr const char *VoluntarySpills = "voluntary_spills";
inline constexpr const char *CoalescedMoves = "coalesced_moves";
inline constexpr const char *CalleeRegsPaid = "callee_regs_paid";
inline constexpr const char *Experiments = "experiments";
/// Full liveness dataflow runs during allocation. With the analysis cache
/// and incremental liveness on, at most one per allocation round (usually
/// zero: rounds start from a seeded or incrementally-maintained solution).
inline constexpr const char *LivenessComputes = "liveness_computes";
/// Incremental liveness updates that replaced a full recompute.
inline constexpr const char *LivenessIncrementalUpdates =
    "liveness_incremental_updates";

// Scheduling/occupancy counters ("sched." namespace): excluded from the
// determinism guarantee — they depend on which thread ran what and on
// cache warm-up order. See TelemetrySnapshot::withoutSchedulingCounters.
inline constexpr const char *SchedPrefix = "sched.";
inline constexpr const char *SchedAnalysisCacheHits =
    "sched.analysis_cache_hits";
inline constexpr const char *SchedAnalysisCacheMisses =
    "sched.analysis_cache_misses";
inline constexpr const char *SchedScratchReuses = "sched.scratch_reuses";
inline constexpr const char *SchedPoolBatches = "sched.pool_batches";
inline constexpr const char *SchedPoolTasks = "sched.pool_tasks";
inline constexpr const char *SchedPoolMaxSlotShare =
    "sched.pool_max_slot_share";

// Allocation hot-path counters ("alloc." namespace). The graph_dense /
// graph_sparse round counts are deterministic; counters under
// MaxCounterPrefix merge by maximum (order-independent) but measure buffer
// *capacity*, which depends on arena reuse order, so they are excluded
// from the determinism guarantee alongside the "sched." namespace.
inline constexpr const char *MaxCounterPrefix = "alloc.peak_";
/// High-water interference-graph footprint across rounds (bytes).
inline constexpr const char *AllocPeakGraphBytes = "alloc.peak_graph_bytes";
/// Rounds colored against a dense (bit-matrix) graph.
inline constexpr const char *AllocGraphDense = "alloc.graph_dense";
/// Rounds colored against a sparse (adjacency-only) graph.
inline constexpr const char *AllocGraphSparse = "alloc.graph_sparse";

// Serving counters ("serve." namespace): the allocation service's
// request/response accounting, exposed over the wire by a STATS request.
// Like "sched.", these describe operational behavior (arrival order, load,
// client speed), not allocation results, so they carry no determinism
// guarantee.
inline constexpr const char *ServeConnections = "serve.connections";
inline constexpr const char *ServeRequests = "serve.requests";
inline constexpr const char *ServeResponsesOk = "serve.responses_ok";
inline constexpr const char *ServeShed = "serve.shed";
inline constexpr const char *ServeDeadlineMissed = "serve.deadline_missed";
inline constexpr const char *ServeMalformed = "serve.malformed";
inline constexpr const char *ServeWorkerFaults = "serve.worker_faults";
inline constexpr const char *ServeDraining = "serve.rejected_draining";
inline constexpr const char *ServeBatches = "serve.batches";
inline constexpr const char *ServeBatchedRequests = "serve.batched_requests";
inline constexpr const char *ServeWriteTimeouts = "serve.write_timeouts";
inline constexpr const char *ServeStatsRequests = "serve.stats_requests";
/// High-water marks (same-recorder noteMax; operational, not merged).
inline constexpr const char *ServePeakQueue = "serve.peak_queue_depth";
inline constexpr const char *ServePeakBatch = "serve.peak_batch_size";
inline constexpr const char *ServePeakConnections = "serve.peak_connections";
/// Gauge sampled at STATS time: connections currently registered with the
/// event loop. The companion to ServeConnections (a lifetime total).
inline constexpr const char *ServeOpenConnections = "serve.open_connections";

// Content-addressed allocation cache ("cache." namespace) and shard
// dispatch ("shard." namespace): the serving tier's cache-and-shard
// telemetry, reported through STATS since wire protocol v1.1. Operational
// like "serve." — hit/miss split depends on arrival order, never on
// allocation results (which are deterministic and therefore cacheable in
// the first place). Per-shard keys are dynamic: "shard.<i>.queue_depth"
// and "shard.<i>.dispatched" for each shard index i.
inline constexpr const char *CacheHits = "cache.hits";
inline constexpr const char *CacheMisses = "cache.misses";
inline constexpr const char *CacheEvictions = "cache.evictions";
inline constexpr const char *CacheBytes = "cache.bytes";
inline constexpr const char *CacheInsertions = "cache.insertions";
inline constexpr const char *CacheModules = "cache.modules";
inline constexpr const char *ShardCount = "shard.count";

// Phase timers.
inline constexpr const char *CoalescePhase = "coalesce";
inline constexpr const char *BuildRangesPhase = "build_ranges";
inline constexpr const char *BuildGraphPhase = "build_graph";
inline constexpr const char *ReconstructPhase = "reconstruct";
inline constexpr const char *ColorPhase = "color";
inline constexpr const char *SpillInsertPhase = "spill_insert";
inline constexpr const char *MaterializePhase = "materialize";
inline constexpr const char *VerifyPhase = "verify";
/// Simplification inside the color phase (the worklist / reference loop).
inline constexpr const char *AllocSimplifyPhase = "alloc.simplify";
inline constexpr const char *AllocateTotal = "allocate_total";
/// Wall-clock the service's batch former spent inside engine grid runs.
inline constexpr const char *ServeBatchPhase = "serve.batch";
/// Response assembly inside a batch: per-function IR rendering plus the
/// cache-record build (serve.render) and the wire payload encoding
/// (serve.encode). Both are inside serve.batch; the difference between
/// serve.batch and allocate_total + these two is the engine-setup cost
/// (frequency analysis, engine construction, telemetry snapshots).
inline constexpr const char *ServeRenderPhase = "serve.render";
inline constexpr const char *ServeEncodePhase = "serve.encode";
/// Frequency analysis ahead of allocation (harness/Batch.h items).
inline constexpr const char *FreqComputePhase = "freq_compute";
} // namespace telemetry

} // namespace ccra

#endif // CCRA_SUPPORT_TELEMETRY_H
