//===- support/Table.cpp --------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

using namespace ccra;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

/// Returns true if \p Cell looks like a number (so it gets right-aligned).
static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.' && C != '-' &&
        C != '+' && C != ',' && C != '%' && C != 'e' && C != 'E' && C != 'x')
      return false;
  return true;
}

void TextTable::print(std::ostream &OS) const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());
  std::vector<size_t> Widths(NumCols, 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  if (!Header.empty())
    Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < NumCols; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      size_t Pad = Widths[I] - Cell.size();
      if (looksNumeric(Cell))
        OS << std::string(Pad, ' ') << Cell;
      else
        OS << Cell << std::string(Pad, ' ');
      if (I + 1 != NumCols)
        OS << "  ";
    }
    OS << '\n';
  };

  if (!Header.empty()) {
    Emit(Header);
    size_t Total = 0;
    for (size_t W : Widths)
      Total += W;
    OS << std::string(Total + 2 * (NumCols - 1), '-') << '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
}

void TextTable::printCsv(std::ostream &OS) const {
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        OS << ',';
      // Cells produced by the harness never contain commas or quotes, but
      // guard anyway.
      bool NeedsQuote = Row[I].find(',') != std::string::npos;
      if (NeedsQuote)
        OS << '"' << Row[I] << '"';
      else
        OS << Row[I];
    }
    OS << '\n';
  };
  if (!Header.empty())
    Emit(Header);
  for (const auto &Row : Rows)
    Emit(Row);
}

std::string TextTable::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string TextTable::formatCount(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.0f", std::round(Value));
  std::string Digits(Buffer);
  bool Negative = !Digits.empty() && Digits[0] == '-';
  std::string Body = Negative ? Digits.substr(1) : Digits;
  std::string Out;
  int Count = 0;
  for (auto It = Body.rbegin(); It != Body.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Out.push_back(',');
    Out.push_back(*It);
    ++Count;
  }
  std::reverse(Out.begin(), Out.end());
  return Negative ? "-" + Out : Out;
}
