//===- support/BuildInfo.cpp ----------------------------------------------===//

#include "support/BuildInfo.h"

using namespace ccra;

// The definitions come from src/support/CMakeLists.txt (configure-time git
// describe, project version, sanitizer options). Fallbacks keep the file
// compilable standalone.
#ifndef CCRA_VERSION
#define CCRA_VERSION "unknown"
#endif
#ifndef CCRA_GIT_DESCRIBE
#define CCRA_GIT_DESCRIBE "unknown"
#endif
#ifndef CCRA_BUILD_TYPE
#define CCRA_BUILD_TYPE "unknown"
#endif
#ifndef CCRA_SANITIZERS
#define CCRA_SANITIZERS "none"
#endif

const char *ccra::versionString() { return CCRA_VERSION; }

const char *ccra::gitDescribeString() { return CCRA_GIT_DESCRIBE; }

const char *ccra::sanitizerString() { return CCRA_SANITIZERS; }

const std::string &ccra::buildInfoString() {
  static const std::string Info = std::string("ccra ") + CCRA_VERSION +
                                  " (git " CCRA_GIT_DESCRIBE
                                  ", " CCRA_BUILD_TYPE
                                  ", sanitizers " CCRA_SANITIZERS ")";
  return Info;
}
