//===- support/BitVector.cpp ----------------------------------------------===//

#include "support/BitVector.h"

#include <algorithm>
#include <bit>

using namespace ccra;

bool BitVector::none() const {
  for (uint64_t W : Words)
    if (W != 0)
      return false;
  return true;
}

size_t BitVector::count() const {
  size_t Total = 0;
  for (uint64_t W : Words)
    Total += static_cast<size_t>(std::popcount(W));
  return Total;
}

void BitVector::resize(size_t NewSize, bool Value) {
  size_t OldSize = NumBits;
  size_t NewWords = (NewSize + BitsPerWord - 1) / BitsPerWord;
  Words.resize(NewWords, Value ? ~uint64_t(0) : 0);
  NumBits = NewSize;
  if (Value && NewSize > OldSize) {
    // Newly appended whole words are already all-ones; fill the tail of the
    // word that straddles the old size boundary.
    size_t BoundaryEnd = std::min(
        NewSize, (OldSize / BitsPerWord + 1) * BitsPerWord);
    for (size_t Idx = OldSize; Idx < BoundaryEnd; ++Idx)
      Words[Idx / BitsPerWord] |= wordMask(Idx);
  }
  clearUnusedBits();
}

void BitVector::resetAll() {
  for (uint64_t &W : Words)
    W = 0;
}

void BitVector::setAll() {
  for (uint64_t &W : Words)
    W = ~uint64_t(0);
  clearUnusedBits();
}

bool BitVector::unionWith(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "size mismatch in union");
  bool Changed = false;
  for (size_t I = 0, E = Words.size(); I != E; ++I) {
    uint64_t Merged = Words[I] | Other.Words[I];
    if (Merged != Words[I]) {
      Words[I] = Merged;
      Changed = true;
    }
  }
  return Changed;
}

void BitVector::intersectWith(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "size mismatch in intersect");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= Other.Words[I];
}

void BitVector::subtract(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "size mismatch in subtract");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= ~Other.Words[I];
}

ptrdiff_t BitVector::findNext(size_t From) const {
  if (From >= NumBits)
    return -1;
  size_t WordIdx = From / BitsPerWord;
  uint64_t Word = Words[WordIdx] & (~uint64_t(0) << (From % BitsPerWord));
  while (true) {
    if (Word != 0) {
      size_t Bit =
          WordIdx * BitsPerWord + static_cast<size_t>(std::countr_zero(Word));
      return Bit < NumBits ? static_cast<ptrdiff_t>(Bit) : -1;
    }
    if (++WordIdx == Words.size())
      return -1;
    Word = Words[WordIdx];
  }
}

void BitVector::collectSetBits(std::vector<unsigned> &Out) const {
  for (unsigned Idx : *this)
    Out.push_back(Idx);
}

void BitVector::clearUnusedBits() {
  size_t Tail = NumBits % BitsPerWord;
  if (Tail != 0 && !Words.empty())
    Words.back() &= (uint64_t(1) << Tail) - 1;
}
