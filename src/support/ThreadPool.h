//===- support/ThreadPool.h - Shared work-sharing worker pool ---*- C++ -*-===//
///
/// \file
/// The parallel-for engine of the allocation pipeline. A fixed set of
/// worker threads services *batches*: a batch is one parallelForEach call,
/// whose indices [0, Count) are claimed off a shared counter. Unlike the
/// classic single-batch pool, any number of batches may be in flight at
/// once and batches may be submitted from *inside* a running task — which
/// is what lets one shared pool serve both the experiment grid and the
/// per-function fan-out of every engine inside it, instead of every engine
/// spawning its own nested pool and oversubscribing the machine.
///
/// Deadlock freedom: the submitting thread always participates in its own
/// batch, so a batch completes even if every worker is busy elsewhere.
/// Batches are serviced oldest-first; within a batch, indices ascend.
///
/// Determinism note: the pool schedules *which thread* runs an index
/// nondeterministically, but callers index their outputs by task id, so
/// results are position-stable regardless of scheduling. Engine-level
/// reductions then happen in index order on the calling thread, which is
/// what makes parallel allocation bit-identical to the serial path.
///
/// Worker slots: every thread that can execute tasks of a pool has a
/// stable slot in [0, size()): the pool's workers get slots 1..size()-1
/// and the thread that constructed batches from outside the pool drains
/// under slot 0. Slot-indexed state (e.g. per-worker scratch arenas) is
/// therefore race-free as long as at most one non-worker thread submits
/// concurrently — which holds for the engine/harness usage, where outside
/// submissions come only from the single grid-driving thread.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_THREADPOOL_H
#define CCRA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccra {

class ThreadPool {
public:
  /// A pool giving \p Threads-way parallelism (0 = defaultParallelism()).
  /// The caller participates in every batch it submits, so only
  /// Threads - 1 worker threads are actually spawned.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Degree of parallelism parallelForEach delivers (workers + caller).
  unsigned size() const { return static_cast<unsigned>(Workers.size()) + 1; }

  /// Runs \p Body(I) for every I in [0, Count), fanning indices across the
  /// workers, and blocks until all of them finished. The calling thread
  /// participates too, so parallelForEach works even on a zero-worker
  /// pool, and the call may be issued from inside a task running on this
  /// pool (nested batches share the same workers instead of spawning
  /// more). If any task throws, the first exception is rethrown here after
  /// the batch drains.
  void parallelForEach(std::size_t Count,
                       const std::function<void(std::size_t)> &Body);

  /// Same, but the body also receives the executing thread's worker slot
  /// (stable, in [0, size())), for slot-indexed state like scratch arenas.
  void parallelForEachSlot(
      std::size_t Count,
      const std::function<void(std::size_t, unsigned)> &Body);

  /// Scheduler observability: totals since construction. TasksPerSlot
  /// exposes how evenly work spread across the caller (slot 0) and the
  /// workers — the imbalance the size-descending task ordering targets.
  struct Stats {
    std::uint64_t Batches = 0;
    std::uint64_t Tasks = 0;
    std::vector<std::uint64_t> TasksPerSlot;
  };
  Stats stats() const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned defaultParallelism();

private:
  /// One in-flight parallelForEach call.
  struct Batch {
    const std::function<void(std::size_t, unsigned)> *Body = nullptr;
    std::size_t Next = 0;      ///< next unclaimed index
    std::size_t Count = 0;     ///< total indices
    std::size_t Remaining = 0; ///< indices not yet finished
    std::exception_ptr FirstError;
  };

  void workerLoop(unsigned Slot);
  /// Claims and runs indices of \p B until none are unclaimed. Expects M
  /// held; returns with M held.
  void drainBatch(Batch &B, unsigned Slot, std::unique_lock<std::mutex> &Lock);

  std::vector<std::thread> Workers;

  mutable std::mutex M;
  std::condition_variable WorkReady; ///< workers: work arrived / shutdown
  std::condition_variable BatchDone; ///< submitters: some batch completed

  // Guarded by M.
  std::deque<Batch *> Open; ///< batches with unclaimed indices, oldest first
  Stats Totals;
  bool ShuttingDown = false;
};

} // namespace ccra

#endif // CCRA_SUPPORT_THREADPOOL_H
