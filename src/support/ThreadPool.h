//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
///
/// \file
/// A deliberately simple parallel-for engine for the allocation pipeline:
/// a fixed number of worker threads pull indices [0, Count) off a shared
/// counter and run the same body on each. No work stealing, no futures, no
/// task graph — the workloads this repo fans out (per-function allocation,
/// experiment grid points) are uniform enough that a shared counter is
/// both the fastest and the simplest correct scheduler.
///
/// Determinism note: the pool schedules *which thread* runs an index
/// nondeterministically, but callers index their outputs by task id, so
/// results are position-stable regardless of scheduling. Engine-level
/// reductions then happen in index order on the calling thread, which is
/// what makes parallel allocation bit-identical to the serial path.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_THREADPOOL_H
#define CCRA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccra {

class ThreadPool {
public:
  /// A pool giving \p Threads-way parallelism (0 = defaultParallelism()).
  /// The caller participates in every batch, so only Threads - 1 worker
  /// threads are actually spawned.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Degree of parallelism parallelForEach delivers (workers + caller).
  unsigned size() const { return static_cast<unsigned>(Workers.size()) + 1; }

  /// Runs \p Body(I) for every I in [0, Count), fanning indices across the
  /// workers, and blocks until all of them finished. The calling thread
  /// participates too, so parallelForEach works even on a zero-worker
  /// pool. If any task throws, the first exception is rethrown here after
  /// the batch drains.
  void parallelForEach(std::size_t Count,
                       const std::function<void(std::size_t)> &Body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned defaultParallelism();

private:
  void workerLoop();
  /// Claims and runs indices of the current batch until it is exhausted.
  void drainCurrentBatch(std::unique_lock<std::mutex> &Lock);

  std::vector<std::thread> Workers;

  std::mutex M;
  std::condition_variable WorkReady; ///< workers: a batch arrived / shutdown
  std::condition_variable BatchDone; ///< caller: all indices completed

  // State of the in-flight batch (guarded by M).
  const std::function<void(std::size_t)> *Body = nullptr;
  std::size_t NextIndex = 0;  ///< next unclaimed task index
  std::size_t BatchCount = 0; ///< total tasks in the batch
  std::size_t Remaining = 0;  ///< tasks not yet finished
  std::exception_ptr FirstError;
  bool ShuttingDown = false;
};

} // namespace ccra

#endif // CCRA_SUPPORT_THREADPOOL_H
