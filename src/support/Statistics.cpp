//===- support/Statistics.cpp ---------------------------------------------===//

#include "support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace ccra;

double ccra::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double ccra::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double ccra::safeRatio(double Numerator, double Denominator, double InfValue) {
  if (Denominator == 0.0)
    return Numerator == 0.0 ? 1.0 : InfValue;
  return Numerator / Denominator;
}
