//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace ccra;

unsigned ThreadPool::defaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultParallelism();
  // The caller participates in every batch, so N-way parallelism needs
  // only N-1 workers.
  for (unsigned I = 0; I + 1 < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::drainCurrentBatch(std::unique_lock<std::mutex> &Lock) {
  while (Body && NextIndex < BatchCount) {
    std::size_t Claimed = NextIndex++;
    const std::function<void(std::size_t)> *Task = Body;
    Lock.unlock();
    try {
      (*Task)(Claimed);
      Lock.lock();
    } catch (...) {
      Lock.lock();
      if (!FirstError)
        FirstError = std::current_exception();
    }
    if (--Remaining == 0)
      BatchDone.notify_all();
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(M);
  while (true) {
    WorkReady.wait(Lock, [this] {
      return ShuttingDown || (Body && NextIndex < BatchCount);
    });
    if (Body && NextIndex < BatchCount)
      drainCurrentBatch(Lock);
    else if (ShuttingDown)
      return;
  }
}

void ThreadPool::parallelForEach(
    std::size_t Count, const std::function<void(std::size_t)> &Body) {
  if (Count == 0)
    return;
  std::unique_lock<std::mutex> Lock(M);
  this->Body = &Body;
  NextIndex = 0;
  Remaining = Count;
  BatchCount = Count;
  FirstError = nullptr;
  WorkReady.notify_all();

  // The caller works the batch too, then waits for stragglers.
  drainCurrentBatch(Lock);
  BatchDone.wait(Lock, [this] { return Remaining == 0; });

  this->Body = nullptr;
  BatchCount = 0;
  std::exception_ptr Error = FirstError;
  FirstError = nullptr;
  Lock.unlock();
  if (Error)
    std::rethrow_exception(Error);
}
