//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace ccra;

unsigned ThreadPool::defaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultParallelism();
  Totals.TasksPerSlot.assign(Threads, 0);
  // The submitting thread participates in every batch (slot 0), so N-way
  // parallelism needs only N-1 workers.
  for (unsigned I = 0; I + 1 < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Totals;
}

void ThreadPool::drainBatch(Batch &B, unsigned Slot,
                            std::unique_lock<std::mutex> &Lock) {
  while (B.Next < B.Count) {
    std::size_t Claimed = B.Next++;
    if (B.Next == B.Count) {
      // Last index claimed: the batch no longer offers work.
      auto It = std::find(Open.begin(), Open.end(), &B);
      if (It != Open.end())
        Open.erase(It);
    }
    ++Totals.Tasks;
    ++Totals.TasksPerSlot[Slot];
    Lock.unlock();
    try {
      (*B.Body)(Claimed, Slot);
      Lock.lock();
    } catch (...) {
      Lock.lock();
      if (!B.FirstError)
        B.FirstError = std::current_exception();
    }
    if (--B.Remaining == 0)
      BatchDone.notify_all();
  }
}

void ThreadPool::workerLoop(unsigned Slot) {
  std::unique_lock<std::mutex> Lock(M);
  while (true) {
    WorkReady.wait(Lock, [this] { return ShuttingDown || !Open.empty(); });
    if (!Open.empty())
      drainBatch(*Open.front(), Slot, Lock);
    else if (ShuttingDown)
      return;
  }
}

void ThreadPool::parallelForEachSlot(
    std::size_t Count, const std::function<void(std::size_t, unsigned)> &Body) {
  if (Count == 0)
    return;

  Batch B;
  B.Body = &Body;
  B.Count = Count;
  B.Remaining = Count;

  std::unique_lock<std::mutex> Lock(M);
  ++Totals.Batches;
  Open.push_back(&B);
  WorkReady.notify_all();

  // The submitter works its own batch (slot 0 from outside the pool; a
  // nested submission keeps running under its worker's slot — drainBatch
  // below only touches *this* batch, and an index of it may equally be
  // claimed by any worker), then waits for stragglers.
  drainBatch(B, /*Slot=*/0, Lock);
  BatchDone.wait(Lock, [&B] { return B.Remaining == 0; });

  std::exception_ptr Error = B.FirstError;
  Lock.unlock();
  if (Error)
    std::rethrow_exception(Error);
}

void ThreadPool::parallelForEach(
    std::size_t Count, const std::function<void(std::size_t)> &Body) {
  const std::function<void(std::size_t, unsigned)> Wrapped =
      [&Body](std::size_t I, unsigned) { Body(I); };
  parallelForEachSlot(Count, Wrapped);
}
