//===- support/Table.h - Aligned text tables and CSV output -----*- C++ -*-===//
///
/// \file
/// The benchmark harness prints every reproduced table and figure as an
/// aligned text table (for humans) and can emit the same data as CSV (for
/// plotting). TextTable collects rows of strings and right-pads columns.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SUPPORT_TABLE_H
#define CCRA_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace ccra {

/// Accumulates rows of cells and renders them with aligned columns.
class TextTable {
public:
  /// Sets the header row. Optional; when present a separator line is drawn
  /// under it.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row.
  void addRow(std::vector<std::string> Cells);

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

  /// Renders the table with two-space column gaps. Numeric-looking cells
  /// are right-aligned, text cells left-aligned.
  void print(std::ostream &OS) const;

  /// Renders the table as CSV (header first when set).
  void printCsv(std::ostream &OS) const;

  /// Formats a double with \p Precision digits after the decimal point.
  static std::string formatDouble(double Value, int Precision = 2);

  /// Formats a large count with thousands separators (matches the paper's
  /// "120,000,000"-style axes).
  static std::string formatCount(double Value);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ccra

#endif // CCRA_SUPPORT_TABLE_H
