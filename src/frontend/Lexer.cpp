//===- frontend/Lexer.cpp -------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace ccra;
using namespace ccra::cc;

const char *ccra::cc::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier: return "identifier";
  case TokenKind::Number:     return "number";
  case TokenKind::KwInt:      return "'int'";
  case TokenKind::KwIf:       return "'if'";
  case TokenKind::KwElse:     return "'else'";
  case TokenKind::KwWhile:    return "'while'";
  case TokenKind::KwFor:      return "'for'";
  case TokenKind::KwReturn:   return "'return'";
  case TokenKind::KwBreak:    return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::LParen:     return "'('";
  case TokenKind::RParen:     return "')'";
  case TokenKind::LBrace:     return "'{'";
  case TokenKind::RBrace:     return "'}'";
  case TokenKind::LBracket:   return "'['";
  case TokenKind::RBracket:   return "']'";
  case TokenKind::Comma:      return "','";
  case TokenKind::Semi:       return "';'";
  case TokenKind::Assign:     return "'='";
  case TokenKind::Plus:       return "'+'";
  case TokenKind::Minus:      return "'-'";
  case TokenKind::Star:       return "'*'";
  case TokenKind::Slash:      return "'/'";
  case TokenKind::Percent:    return "'%'";
  case TokenKind::Not:        return "'!'";
  case TokenKind::EqEq:       return "'=='";
  case TokenKind::NotEq:      return "'!='";
  case TokenKind::Less:       return "'<'";
  case TokenKind::Greater:    return "'>'";
  case TokenKind::LessEq:     return "'<='";
  case TokenKind::GreaterEq:  return "'>='";
  case TokenKind::AndAnd:     return "'&&'";
  case TokenKind::OrOr:       return "'||'";
  case TokenKind::Eof:        return "end of file";
  }
  return "token";
}

namespace {

const std::map<std::string, TokenKind> &keywordTable() {
  static const std::map<std::string, TokenKind> Table = {
      {"int", TokenKind::KwInt},       {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},     {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},       {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},   {"continue", TokenKind::KwContinue},
  };
  return Table;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, std::vector<Diagnostic> &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  void advance() {
    if (Source[Pos] == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    ++Pos;
  }
  bool skipWhitespaceAndComments();
  Token makeToken(TokenKind Kind, std::string Text);

  const std::string &Source;
  std::vector<Diagnostic> &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  unsigned TokLine = 1;
  unsigned TokColumn = 1;
};

Token LexerImpl::makeToken(TokenKind Kind, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Line = TokLine;
  T.Column = TokColumn;
  return T;
}

bool LexerImpl::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      unsigned OpenLine = Line, OpenColumn = Column;
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos >= Source.size()) {
        Diags.emplace_back(OpenLine, OpenColumn, "unterminated block comment",
                           "/*");
        return false;
      }
      advance();
      advance();
      continue;
    }
    break;
  }
  return Pos < Source.size();
}

std::vector<Token> LexerImpl::run() {
  std::vector<Token> Tokens;
  while (skipWhitespaceAndComments()) {
    TokLine = Line;
    TokColumn = Column;
    char C = peek();

    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        Text.push_back(peek());
        advance();
      }
      Token T = makeToken(TokenKind::Number, Text);
      T.Value = std::strtoll(Text.c_str(), nullptr, 10);
      Tokens.push_back(std::move(T));
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        Text.push_back(peek());
        advance();
      }
      auto It = keywordTable().find(Text);
      Tokens.push_back(makeToken(
          It == keywordTable().end() ? TokenKind::Identifier : It->second,
          Text));
      continue;
    }

    // Two-character operators first.
    char Next = peek(1);
    TokenKind Kind;
    std::string Text(1, C);
    if (C == '=' && Next == '=') {
      Kind = TokenKind::EqEq;
    } else if (C == '!' && Next == '=') {
      Kind = TokenKind::NotEq;
    } else if (C == '<' && Next == '=') {
      Kind = TokenKind::LessEq;
    } else if (C == '>' && Next == '=') {
      Kind = TokenKind::GreaterEq;
    } else if (C == '&' && Next == '&') {
      Kind = TokenKind::AndAnd;
    } else if (C == '|' && Next == '|') {
      Kind = TokenKind::OrOr;
    } else {
      switch (C) {
      case '(': Kind = TokenKind::LParen; break;
      case ')': Kind = TokenKind::RParen; break;
      case '{': Kind = TokenKind::LBrace; break;
      case '}': Kind = TokenKind::RBrace; break;
      case '[': Kind = TokenKind::LBracket; break;
      case ']': Kind = TokenKind::RBracket; break;
      case ',': Kind = TokenKind::Comma; break;
      case ';': Kind = TokenKind::Semi; break;
      case '=': Kind = TokenKind::Assign; break;
      case '+': Kind = TokenKind::Plus; break;
      case '-': Kind = TokenKind::Minus; break;
      case '*': Kind = TokenKind::Star; break;
      case '/': Kind = TokenKind::Slash; break;
      case '%': Kind = TokenKind::Percent; break;
      case '!': Kind = TokenKind::Not; break;
      case '<': Kind = TokenKind::Less; break;
      case '>': Kind = TokenKind::Greater; break;
      default:
        Diags.emplace_back(Line, Column,
                           std::string("unexpected character '") + C + "'",
                           std::string(1, C));
        advance();
        continue;
      }
      Tokens.push_back(makeToken(Kind, Text));
      advance();
      continue;
    }
    Text.push_back(Next);
    Tokens.push_back(makeToken(Kind, Text));
    advance();
    advance();
  }

  TokLine = Line;
  TokColumn = Column;
  Tokens.push_back(makeToken(TokenKind::Eof, ""));
  return Tokens;
}

} // namespace

std::vector<Token> ccra::cc::lex(const std::string &Source,
                                 std::vector<Diagnostic> &Diags) {
  return LexerImpl(Source, Diags).run();
}
