//===- frontend/Sema.cpp --------------------------------------------------===//

#include "frontend/Sema.h"

#include <map>

using namespace ccra;
using namespace ccra::cc;

namespace {

/// Array-to-pointer decay: the type an expression has when its value is
/// used (everywhere except as the target of its own declaration).
Type decayed(Type Ty) {
  return Ty.Kind == TypeKind::Array ? Type::makePtr() : Ty;
}

const char *typeName(Type Ty) {
  switch (Ty.Kind) {
  case TypeKind::Int:   return "int";
  case TypeKind::Ptr:   return "int*";
  case TypeKind::Array: return "int[]";
  }
  return "?";
}

class SemaImpl {
public:
  explicit SemaImpl(TranslationUnit &TU) : TU(TU) {}

  SemaResult run();

private:
  void error(unsigned Line, unsigned Column, const std::string &Message,
             const std::string &Near = "") {
    Result.Diags.emplace_back(Line, Column, Message, Near);
  }

  int declareSymbol(Symbol Sym) {
    Result.Symbols.push_back(std::move(Sym));
    return static_cast<int>(Result.Symbols.size()) - 1;
  }

  void checkFunction(FunctionDecl &F, unsigned FnIndex);
  void checkStmt(Stmt &S);
  /// Type-checks \p E and annotates it. Returns the decayed type (errors
  /// recover as int so one pass reports everything).
  Type checkExpr(Expr &E);
  Type checkAssign(Expr &E);
  /// True when \p E may appear on the left of '='.
  bool isLValue(const Expr &E) const;

  int lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return -1;
  }

  TranslationUnit &TU;
  SemaResult Result;

  /// Function name -> index in TU.Functions (collected up front so calls
  /// may reference any function in the file, giving mutual recursion
  /// without prototypes).
  std::map<std::string, unsigned> FunctionsByName;
  std::map<std::string, int> GlobalsByName;
  std::vector<std::map<std::string, int>> Scopes;

  /// Next free byte in the current function's array frame.
  unsigned FrameCursor = 0;
  unsigned FrameLimit = 0;
  unsigned LoopDepth = 0;
};

SemaResult SemaImpl::run() {
  // Pass 1: globals get symbols and deterministic addresses; function
  // names become callable everywhere.
  unsigned GlobalCursor = GlobalBase;
  for (GlobalDecl &G : TU.Globals) {
    if (GlobalsByName.count(G.Name)) {
      error(G.Line, G.Column, "redefinition of global '" + G.Name + "'",
            G.Name);
      continue;
    }
    Symbol Sym;
    Sym.Name = G.Name;
    Sym.Ty = G.Ty;
    Sym.Sto = Symbol::Storage::Global;
    Sym.Address = GlobalCursor;
    GlobalCursor += 4 * (G.Ty.Kind == TypeKind::Array ? G.Ty.ArraySize : 1);
    G.SymbolId = declareSymbol(std::move(Sym));
    GlobalsByName[G.Name] = G.SymbolId;
  }
  for (unsigned Idx = 0; Idx < TU.Functions.size(); ++Idx) {
    FunctionDecl &F = TU.Functions[Idx];
    if (FunctionsByName.count(F.Name)) {
      error(F.Line, F.Column, "redefinition of function '" + F.Name + "'",
            F.Name);
      continue;
    }
    if (GlobalsByName.count(F.Name)) {
      error(F.Line, F.Column,
            "'" + F.Name + "' is already declared as a global", F.Name);
      continue;
    }
    FunctionsByName[F.Name] = Idx;
  }

  // Pass 2: bodies.
  for (unsigned Idx = 0; Idx < TU.Functions.size(); ++Idx)
    checkFunction(TU.Functions[Idx], Idx);
  return std::move(Result);
}

void SemaImpl::checkFunction(FunctionDecl &F, unsigned FnIndex) {
  Scopes.clear();
  Scopes.emplace_back(); // parameter scope
  FrameCursor = FrameBase + FnIndex * FrameStride;
  FrameLimit = FrameCursor + FrameStride;
  LoopDepth = 0;

  for (unsigned PIdx = 0; PIdx < F.Params.size(); ++PIdx) {
    ParamDecl &P = F.Params[PIdx];
    if (Scopes.back().count(P.Name)) {
      error(P.Line, P.Column, "duplicate parameter '" + P.Name + "'",
            P.Name);
      continue;
    }
    Symbol Sym;
    Sym.Name = P.Name;
    Sym.Ty = P.Ty;
    Sym.Sto = Symbol::Storage::Param;
    Sym.ParamIndex = PIdx;
    P.SymbolId = declareSymbol(std::move(Sym));
    Scopes.back()[P.Name] = P.SymbolId;
  }
  checkStmt(*F.Body);
}

void SemaImpl::checkStmt(Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Compound:
    Scopes.emplace_back();
    for (StmtPtr &Child : S.Body)
      checkStmt(*Child);
    Scopes.pop_back();
    break;
  case StmtKind::Decl: {
    if (Scopes.back().count(S.DeclName)) {
      error(S.Line, S.Column,
            "redefinition of '" + S.DeclName + "' in the same scope",
            S.DeclName);
      break;
    }
    Symbol Sym;
    Sym.Name = S.DeclName;
    Sym.Ty = S.DeclTy;
    Sym.Sto = Symbol::Storage::Local;
    if (S.DeclTy.Kind == TypeKind::Array) {
      unsigned Bytes = 4 * S.DeclTy.ArraySize;
      if (FrameCursor + Bytes > FrameLimit) {
        error(S.Line, S.Column,
              "local arrays exceed the function's frame budget (" +
                  std::to_string(FrameStride) + " bytes)",
              S.DeclName);
        break;
      }
      Sym.Address = FrameCursor;
      FrameCursor += Bytes;
    }
    S.SymbolId = declareSymbol(std::move(Sym));
    Scopes.back()[S.DeclName] = S.SymbolId;
    if (S.Init) {
      Type InitTy = checkExpr(*S.Init);
      Type DeclTy = decayed(S.DeclTy);
      if (InitTy.Kind != DeclTy.Kind)
        error(S.Init->Line, S.Init->Column,
              std::string("cannot initialize ") + typeName(DeclTy) +
                  " with " + typeName(InitTy));
    }
    break;
  }
  case StmtKind::ExprStmt:
    checkExpr(*S.E);
    break;
  case StmtKind::If: {
    Type CondTy = checkExpr(*S.E);
    if (!CondTy.isInt())
      error(S.E->Line, S.E->Column, "if condition must be an int");
    checkStmt(*S.Then);
    if (S.Else)
      checkStmt(*S.Else);
    break;
  }
  case StmtKind::While: {
    Type CondTy = checkExpr(*S.E);
    if (!CondTy.isInt())
      error(S.E->Line, S.E->Column, "while condition must be an int");
    ++LoopDepth;
    checkStmt(*S.LoopBody);
    --LoopDepth;
    break;
  }
  case StmtKind::For: {
    Scopes.emplace_back(); // for-init declarations scope to the loop
    if (S.ForInit)
      checkStmt(*S.ForInit);
    if (S.ForCond) {
      Type CondTy = checkExpr(*S.ForCond);
      if (!CondTy.isInt())
        error(S.ForCond->Line, S.ForCond->Column,
              "for condition must be an int");
    }
    if (S.ForStep)
      checkExpr(*S.ForStep);
    ++LoopDepth;
    checkStmt(*S.LoopBody);
    --LoopDepth;
    Scopes.pop_back();
    break;
  }
  case StmtKind::Return: {
    Type Ty = checkExpr(*S.E);
    if (!Ty.isInt())
      error(S.E->Line, S.E->Column,
            std::string("functions return int, not ") + typeName(Ty));
    break;
  }
  case StmtKind::Break:
    if (LoopDepth == 0)
      error(S.Line, S.Column, "'break' outside of a loop", "break");
    break;
  case StmtKind::Continue:
    if (LoopDepth == 0)
      error(S.Line, S.Column, "'continue' outside of a loop", "continue");
    break;
  case StmtKind::Empty:
    break;
  }
}

bool SemaImpl::isLValue(const Expr &E) const {
  switch (E.Kind) {
  case ExprKind::VarRef:
    // Arrays are not assignable; everything else named is.
    return E.SymbolId < 0 ||
           Result.Symbols[E.SymbolId].Ty.Kind != TypeKind::Array;
  case ExprKind::Index:
    return true;
  case ExprKind::Unary:
    return E.OpText == "*";
  default:
    return false;
  }
}

Type SemaImpl::checkAssign(Expr &E) {
  Type LhsTy = checkExpr(*E.Lhs);
  Type RhsTy = checkExpr(*E.Rhs);
  if (!isLValue(*E.Lhs)) {
    error(E.Lhs->Line, E.Lhs->Column,
          "left side of '=' is not assignable");
  } else if (LhsTy.Kind != RhsTy.Kind) {
    error(E.Line, E.Column, std::string("cannot assign ") +
                                typeName(RhsTy) + " to " + typeName(LhsTy));
  }
  E.Ty = LhsTy;
  return E.Ty;
}

Type SemaImpl::checkExpr(Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLiteral:
    E.Ty = Type::makeInt();
    return E.Ty;
  case ExprKind::VarRef: {
    int Id = lookup(E.Name);
    if (Id < 0) {
      auto GlobalIt = GlobalsByName.find(E.Name);
      if (GlobalIt != GlobalsByName.end())
        Id = GlobalIt->second;
    }
    if (Id < 0) {
      if (FunctionsByName.count(E.Name))
        error(E.Line, E.Column,
              "function '" + E.Name + "' used as a variable", E.Name);
      else
        error(E.Line, E.Column, "use of undeclared identifier '" + E.Name +
                                    "'",
              E.Name);
      E.Ty = Type::makeInt();
      return E.Ty;
    }
    E.SymbolId = Id;
    // The annotated type keeps the array-ness (the lowering needs it);
    // the *returned* type decays so every use site sees int*.
    E.Ty = Result.Symbols[Id].Ty;
    return decayed(E.Ty);
  }
  case ExprKind::Unary: {
    Type OperandTy = checkExpr(*E.Lhs);
    if (E.OpText == "*") {
      if (!OperandTy.isPointerLike()) {
        error(E.Line, E.Column, "cannot dereference a non-pointer", "*");
        E.Ty = Type::makeInt();
        return E.Ty;
      }
      E.Ty = Type::makeInt();
      return E.Ty;
    }
    if (!OperandTy.isInt())
      error(E.Line, E.Column,
            "operand of unary '" + E.OpText + "' must be an int", E.OpText);
    E.Ty = Type::makeInt();
    return E.Ty;
  }
  case ExprKind::Binary: {
    Type LhsTy = checkExpr(*E.Lhs);
    Type RhsTy = checkExpr(*E.Rhs);
    const std::string &Op = E.OpText;
    if (Op == "+" || Op == "-") {
      if (LhsTy.isPointerLike() && RhsTy.isInt()) {
        E.Ty = Type::makePtr();
        return E.Ty; // pointer arithmetic, element-scaled by the lowering
      }
      if (Op == "+" && LhsTy.isInt() && RhsTy.isPointerLike()) {
        E.Ty = Type::makePtr();
        return E.Ty;
      }
      if (!LhsTy.isInt() || !RhsTy.isInt())
        error(E.Line, E.Column,
              std::string("invalid operands to '") + Op + "' (" +
                  typeName(LhsTy) + " and " + typeName(RhsTy) + ")",
              Op);
      E.Ty = Type::makeInt();
      return E.Ty;
    }
    if (Op == "==" || Op == "!=" || Op == "<" || Op == ">" || Op == "<=" ||
        Op == ">=") {
      if (LhsTy.Kind != RhsTy.Kind)
        error(E.Line, E.Column,
              std::string("comparison of ") + typeName(LhsTy) + " with " +
                  typeName(RhsTy),
              Op);
      E.Ty = Type::makeInt();
      return E.Ty;
    }
    // * / % && ||: int only.
    if (!LhsTy.isInt() || !RhsTy.isInt())
      error(E.Line, E.Column,
            std::string("invalid operands to '") + Op + "' (" +
                typeName(LhsTy) + " and " + typeName(RhsTy) + ")",
            Op);
    E.Ty = Type::makeInt();
    return E.Ty;
  }
  case ExprKind::Assign:
    return checkAssign(E);
  case ExprKind::Index: {
    Type BaseTy = checkExpr(*E.Lhs);
    Type SubTy = checkExpr(*E.Rhs);
    if (!BaseTy.isPointerLike())
      error(E.Line, E.Column, "subscripted value is not a pointer or array",
            "[");
    if (!SubTy.isInt())
      error(E.Rhs->Line, E.Rhs->Column, "array subscript must be an int");
    E.Ty = Type::makeInt();
    return E.Ty;
  }
  case ExprKind::Call: {
    auto It = FunctionsByName.find(E.Name);
    if (It == FunctionsByName.end()) {
      if (lookup(E.Name) >= 0 || GlobalsByName.count(E.Name))
        error(E.Line, E.Column, "'" + E.Name + "' is not a function",
              E.Name);
      else
        error(E.Line, E.Column,
              "call to undefined function '" + E.Name +
                  "' (the subset has no extern declarations: define every "
                  "callee in this file)",
              E.Name);
      for (ExprPtr &Arg : E.Args)
        checkExpr(*Arg);
      E.Ty = Type::makeInt();
      return E.Ty;
    }
    const FunctionDecl &Callee = TU.Functions[It->second];
    if (E.Args.size() != Callee.Params.size())
      error(E.Line, E.Column,
            "call to '" + E.Name + "' with " +
                std::to_string(E.Args.size()) + " arguments; it takes " +
                std::to_string(Callee.Params.size()),
            E.Name);
    for (size_t Idx = 0; Idx < E.Args.size(); ++Idx) {
      Type ArgTy = checkExpr(*E.Args[Idx]);
      if (Idx < Callee.Params.size() &&
          ArgTy.Kind != Callee.Params[Idx].Ty.Kind)
        error(E.Args[Idx]->Line, E.Args[Idx]->Column,
              std::string("argument ") + std::to_string(Idx + 1) + " of '" +
                  E.Name + "' expects " + typeName(Callee.Params[Idx].Ty) +
                  ", got " + typeName(ArgTy));
    }
    E.Ty = Type::makeInt();
    return E.Ty;
  }
  }
  E.Ty = Type::makeInt();
  return E.Ty;
}

} // namespace

SemaResult ccra::cc::analyze(TranslationUnit &TU) {
  return SemaImpl(TU).run();
}
