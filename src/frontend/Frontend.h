//===- frontend/Frontend.h - C-subset compilation entry ---------*- C++ -*-===//
///
/// \file
/// The one-call driver over the pipeline Lexer -> Parser -> Sema ->
/// IRGen. Used by `tools/ccra_cc`, the experiment harness's real-corpus
/// leg, and the tests. Compilation either yields a verifier-clean Module
/// or a list of line:column Diagnostics (the same support/Diagnostic.h
/// type the `.ccra` IR parser reports in, so both toolchains' errors
/// render identically).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FRONTEND_FRONTEND_H
#define CCRA_FRONTEND_FRONTEND_H

#include "ir/Module.h"
#include "support/Diagnostic.h"

#include <memory>
#include <string>
#include <vector>

namespace ccra {

struct CompileResult {
  /// The lowered module; null when compilation failed.
  std::unique_ptr<Module> M;
  std::vector<Diagnostic> Diags;

  bool ok() const { return M != nullptr; }
};

struct Frontend {
  /// Compiles C-subset \p Source into a Module named \p ModuleName.
  /// Deterministic: identical source always produces byte-identical
  /// printed IR. The returned module passes verifyModule by construction
  /// (tested, and re-checked by every tool that embeds the frontend).
  static CompileResult compile(const std::string &Source,
                               const std::string &ModuleName);

  /// Reads \p Path and compiles it; the module name is the file's stem
  /// ("examples/corpus_c/matmul.c" -> "matmul"). A read failure is
  /// reported as a diagnostic.
  static CompileResult compileFile(const std::string &Path);

  /// The module name compileFile derives from \p Path.
  static std::string moduleNameForPath(const std::string &Path);
};

} // namespace ccra

#endif // CCRA_FRONTEND_FRONTEND_H
