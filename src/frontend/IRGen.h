//===- frontend/IRGen.h - AST to ccra IR lowering ---------------*- C++ -*-===//
///
/// \file
/// Lowers a Sema-checked TranslationUnit into a ccra IR Module. The
/// lowering rules (all documented in DESIGN.md):
///
///  - Scalar locals and parameters live in virtual registers, reused
///    across assignments (the IR is non-SSA). Parameter values are
///    materialized at function entry with `loadimm <param-index>` stand-in
///    definitions: the IR has no argument-passing convention below the
///    Call instruction, and the allocator only models liveness and the
///    save/restore traffic around calls, not value flow into callees.
///  - Globals and arrays are memory-resident at the deterministic
///    synthetic addresses Sema assigned; every access materializes the
///    address with `loadimm` and goes through load/store. Pointer
///    arithmetic and subscripts scale by 4 (the word size).
///  - All comparison operators lower to the IR's single generic `cmp`;
///    `%` expands to a-(a/b)*b; `&&`/`||` are bitwise (no short-circuit);
///    `-x` is `0-x`; `!x` is `cmp x, 0`.
///  - Branch probabilities are dyadic rationals so every edge pair sums
///    to exactly 1.0 and prints in shortest round-trip form: if/else
///    splits 0.5/0.5, a guard `if` without else takes the then-edge with
///    0.25, and a loop at nesting depth d keeps iterating with
///    probability 1 - 2^-(d+2), capped at d = 5 (0.875, 0.9375, ...,
///    0.9921875).
///
/// Every construct allocates registers and labels from per-function
/// counters in source order, so compilation is deterministic by
/// construction: the same source always produces byte-identical IR.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FRONTEND_IRGEN_H
#define CCRA_FRONTEND_IRGEN_H

#include "frontend/AST.h"
#include "frontend/Sema.h"
#include "ir/Module.h"

#include <memory>
#include <string>

namespace ccra {
namespace cc {

/// Lowers \p TU (which must have passed Sema with no diagnostics) into a
/// Module named \p ModuleName. Functions appear in source order; "main",
/// when present, becomes the module's entry function.
std::unique_ptr<Module> generateIR(const TranslationUnit &TU,
                                   const SemaResult &Sema,
                                   const std::string &ModuleName);

} // namespace cc
} // namespace ccra

#endif // CCRA_FRONTEND_IRGEN_H
