//===- frontend/Parser.cpp ------------------------------------------------===//

#include "frontend/Parser.h"

using namespace ccra;
using namespace ccra::cc;

namespace {

class ParserImpl {
public:
  ParserImpl(const std::vector<Token> &Tokens, std::vector<Diagnostic> &Diags)
      : Tokens(Tokens), Diags(Diags) {}

  std::unique_ptr<TranslationUnit> run();

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t Idx = Pos + Ahead;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }
  const Token &advance() { return Tokens[Pos++]; }
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind) {
    if (!check(Kind))
      return false;
    ++Pos;
    return true;
  }
  /// Consumes a token of \p Kind or reports "expected X" at the current
  /// token and fails.
  bool expect(TokenKind Kind, const char *Context) {
    if (match(Kind))
      return true;
    const Token &T = peek();
    error(std::string("expected ") + tokenKindName(Kind) + " " + Context, T);
    return false;
  }
  void error(const std::string &Message, const Token &T) {
    Diags.emplace_back(T.Line, T.Column, Message,
                       T.is(TokenKind::Eof) ? "" : T.Text);
  }

  bool parseTopLevel(TranslationUnit &TU);
  bool parseGlobal(TranslationUnit &TU, Type Ty, const Token &NameTok);
  bool parseFunction(TranslationUnit &TU, const Token &NameTok);
  StmtPtr parseStmt();
  StmtPtr parseCompound();
  StmtPtr parseDecl();
  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  const std::vector<Token> &Tokens;
  std::vector<Diagnostic> &Diags;
  size_t Pos = 0;
};

/// Binding power of a (left-associative) binary operator, or -1.
int binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::OrOr:      return 1;
  case TokenKind::AndAnd:    return 2;
  case TokenKind::EqEq:
  case TokenKind::NotEq:     return 3;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEq:
  case TokenKind::GreaterEq: return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:     return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:   return 6;
  default:                   return -1;
  }
}

ExprPtr makeExpr(ExprKind Kind, const Token &At) {
  auto E = std::make_unique<Expr>(Kind);
  E->Line = At.Line;
  E->Column = At.Column;
  return E;
}

StmtPtr makeStmt(StmtKind Kind, const Token &At) {
  auto S = std::make_unique<Stmt>(Kind);
  S->Line = At.Line;
  S->Column = At.Column;
  return S;
}

std::unique_ptr<TranslationUnit> ParserImpl::run() {
  auto TU = std::make_unique<TranslationUnit>();
  while (!check(TokenKind::Eof)) {
    if (!parseTopLevel(*TU))
      return nullptr;
  }
  return TU;
}

bool ParserImpl::parseTopLevel(TranslationUnit &TU) {
  if (!expect(TokenKind::KwInt, "at top level (every declaration starts "
                                "with 'int')"))
    return false;
  bool IsPtr = match(TokenKind::Star);
  const Token &NameTok = peek();
  if (!expect(TokenKind::Identifier, "after 'int'"))
    return false;
  if (check(TokenKind::LParen)) {
    if (IsPtr) {
      error("functions must return 'int' (pointer returns are not in the "
            "subset)",
            NameTok);
      return false;
    }
    return parseFunction(TU, NameTok);
  }
  return parseGlobal(TU, IsPtr ? Type::makePtr() : Type::makeInt(), NameTok);
}

bool ParserImpl::parseGlobal(TranslationUnit &TU, Type Ty,
                             const Token &NameTok) {
  if (Ty.Kind == TypeKind::Ptr) {
    error("pointer globals are not in the subset (pass arrays as "
          "parameters instead)",
          NameTok);
    return false;
  }
  GlobalDecl G;
  G.Name = NameTok.Text;
  G.Line = NameTok.Line;
  G.Column = NameTok.Column;
  G.Ty = Ty;
  if (match(TokenKind::LBracket)) {
    const Token &SizeTok = peek();
    if (!expect(TokenKind::Number, "as array size"))
      return false;
    if (SizeTok.Value <= 0) {
      error("array size must be positive", SizeTok);
      return false;
    }
    G.Ty = Type::makeArray(static_cast<unsigned>(SizeTok.Value));
    if (!expect(TokenKind::RBracket, "after array size"))
      return false;
  }
  if (match(TokenKind::Assign)) {
    if (G.Ty.Kind == TypeKind::Array) {
      error("array initializers are not in the subset", peek());
      return false;
    }
    bool Negative = match(TokenKind::Minus);
    const Token &ValueTok = peek();
    if (!expect(TokenKind::Number, "as global initializer (globals take "
                                   "constant initializers only)"))
      return false;
    G.Init = Negative ? -ValueTok.Value : ValueTok.Value;
  }
  if (!expect(TokenKind::Semi, "after global declaration"))
    return false;
  TU.Globals.push_back(std::move(G));
  return true;
}

bool ParserImpl::parseFunction(TranslationUnit &TU, const Token &NameTok) {
  FunctionDecl F;
  F.Name = NameTok.Text;
  F.Line = NameTok.Line;
  F.Column = NameTok.Column;
  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      if (!expect(TokenKind::KwInt, "to start a parameter"))
        return false;
      ParamDecl P;
      P.Ty = match(TokenKind::Star) ? Type::makePtr() : Type::makeInt();
      const Token &ParamTok = peek();
      if (!expect(TokenKind::Identifier, "as parameter name"))
        return false;
      P.Name = ParamTok.Text;
      P.Line = ParamTok.Line;
      P.Column = ParamTok.Column;
      F.Params.push_back(std::move(P));
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameter list"))
    return false;
  if (!check(TokenKind::LBrace)) {
    error("expected '{' to start the function body (forward declarations "
          "are not needed: calls may reference any function in the file)",
          peek());
    return false;
  }
  F.Body = parseCompound();
  if (!F.Body)
    return false;
  TU.Functions.push_back(std::move(F));
  return true;
}

StmtPtr ParserImpl::parseCompound() {
  const Token &Open = peek();
  if (!expect(TokenKind::LBrace, "to open a block"))
    return nullptr;
  StmtPtr S = makeStmt(StmtKind::Compound, Open);
  while (!check(TokenKind::RBrace)) {
    if (check(TokenKind::Eof)) {
      error("missing '}' before end of file", peek());
      return nullptr;
    }
    StmtPtr Child = parseStmt();
    if (!Child)
      return nullptr;
    S->Body.push_back(std::move(Child));
  }
  advance(); // '}'
  return S;
}

StmtPtr ParserImpl::parseDecl() {
  const Token &IntTok = advance(); // 'int'
  StmtPtr S = makeStmt(StmtKind::Decl, IntTok);
  bool IsPtr = match(TokenKind::Star);
  const Token &NameTok = peek();
  if (!expect(TokenKind::Identifier, "as variable name"))
    return nullptr;
  S->DeclName = NameTok.Text;
  S->DeclTy = IsPtr ? Type::makePtr() : Type::makeInt();
  if (match(TokenKind::LBracket)) {
    if (IsPtr) {
      error("arrays of pointers are not in the subset", NameTok);
      return nullptr;
    }
    const Token &SizeTok = peek();
    if (!expect(TokenKind::Number, "as array size"))
      return nullptr;
    if (SizeTok.Value <= 0) {
      error("array size must be positive", SizeTok);
      return nullptr;
    }
    S->DeclTy = Type::makeArray(static_cast<unsigned>(SizeTok.Value));
    if (!expect(TokenKind::RBracket, "after array size"))
      return nullptr;
  }
  if (match(TokenKind::Assign)) {
    if (S->DeclTy.Kind == TypeKind::Array) {
      error("array initializers are not in the subset", peek());
      return nullptr;
    }
    S->Init = parseExpr();
    if (!S->Init)
      return nullptr;
  }
  if (!expect(TokenKind::Semi, "after declaration"))
    return nullptr;
  return S;
}

StmtPtr ParserImpl::parseStmt() {
  const Token &T = peek();
  switch (T.Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::KwInt:
    return parseDecl();
  case TokenKind::Semi:
    advance();
    return makeStmt(StmtKind::Empty, T);
  case TokenKind::KwIf: {
    advance();
    StmtPtr S = makeStmt(StmtKind::If, T);
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    S->E = parseExpr();
    if (!S->E || !expect(TokenKind::RParen, "after if condition"))
      return nullptr;
    S->Then = parseStmt();
    if (!S->Then)
      return nullptr;
    if (match(TokenKind::KwElse)) {
      S->Else = parseStmt();
      if (!S->Else)
        return nullptr;
    }
    return S;
  }
  case TokenKind::KwWhile: {
    advance();
    StmtPtr S = makeStmt(StmtKind::While, T);
    if (!expect(TokenKind::LParen, "after 'while'"))
      return nullptr;
    S->E = parseExpr();
    if (!S->E || !expect(TokenKind::RParen, "after while condition"))
      return nullptr;
    S->LoopBody = parseStmt();
    if (!S->LoopBody)
      return nullptr;
    return S;
  }
  case TokenKind::KwFor: {
    advance();
    StmtPtr S = makeStmt(StmtKind::For, T);
    if (!expect(TokenKind::LParen, "after 'for'"))
      return nullptr;
    if (check(TokenKind::KwInt)) {
      S->ForInit = parseDecl(); // consumes the ';'
      if (!S->ForInit)
        return nullptr;
    } else if (!match(TokenKind::Semi)) {
      const Token &InitTok = peek();
      StmtPtr Init = makeStmt(StmtKind::ExprStmt, InitTok);
      Init->E = parseExpr();
      if (!Init->E || !expect(TokenKind::Semi, "after for initializer"))
        return nullptr;
      S->ForInit = std::move(Init);
    }
    if (!check(TokenKind::Semi)) {
      S->ForCond = parseExpr();
      if (!S->ForCond)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "after for condition"))
      return nullptr;
    if (!check(TokenKind::RParen)) {
      S->ForStep = parseExpr();
      if (!S->ForStep)
        return nullptr;
    }
    if (!expect(TokenKind::RParen, "after for clauses"))
      return nullptr;
    S->LoopBody = parseStmt();
    if (!S->LoopBody)
      return nullptr;
    return S;
  }
  case TokenKind::KwReturn: {
    advance();
    StmtPtr S = makeStmt(StmtKind::Return, T);
    S->E = parseExpr();
    if (!S->E || !expect(TokenKind::Semi, "after return value (every "
                                          "function returns an int)"))
      return nullptr;
    return S;
  }
  case TokenKind::KwBreak: {
    advance();
    if (!expect(TokenKind::Semi, "after 'break'"))
      return nullptr;
    return makeStmt(StmtKind::Break, T);
  }
  case TokenKind::KwContinue: {
    advance();
    if (!expect(TokenKind::Semi, "after 'continue'"))
      return nullptr;
    return makeStmt(StmtKind::Continue, T);
  }
  default: {
    StmtPtr S = makeStmt(StmtKind::ExprStmt, T);
    S->E = parseExpr();
    if (!S->E || !expect(TokenKind::Semi, "after expression"))
      return nullptr;
    return S;
  }
  }
}

ExprPtr ParserImpl::parseExpr() { return parseAssignment(); }

ExprPtr ParserImpl::parseAssignment() {
  const Token &Start = peek();
  ExprPtr Lhs = parseBinary(1);
  if (!Lhs)
    return nullptr;
  if (match(TokenKind::Assign)) {
    ExprPtr Rhs = parseAssignment(); // right-associative
    if (!Rhs)
      return nullptr;
    ExprPtr E = makeExpr(ExprKind::Assign, Start);
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    return E;
  }
  return Lhs;
}

ExprPtr ParserImpl::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (true) {
    const Token &Op = peek();
    int Prec = binaryPrecedence(Op.Kind);
    if (Prec < MinPrec)
      return Lhs;
    advance();
    ExprPtr Rhs = parseBinary(Prec + 1);
    if (!Rhs)
      return nullptr;
    ExprPtr E = makeExpr(ExprKind::Binary, Op);
    E->OpText = Op.Text;
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
}

ExprPtr ParserImpl::parseUnary() {
  const Token &T = peek();
  if (T.is(TokenKind::Minus) || T.is(TokenKind::Not) ||
      T.is(TokenKind::Star)) {
    advance();
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    ExprPtr E = makeExpr(ExprKind::Unary, T);
    E->OpText = T.Text;
    E->Lhs = std::move(Operand);
    return E;
  }
  return parsePostfix();
}

ExprPtr ParserImpl::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (check(TokenKind::LBracket)) {
    const Token &Open = advance();
    ExprPtr Subscript = parseExpr();
    if (!Subscript || !expect(TokenKind::RBracket, "after array subscript"))
      return nullptr;
    ExprPtr Idx = makeExpr(ExprKind::Index, Open);
    Idx->Lhs = std::move(E);
    Idx->Rhs = std::move(Subscript);
    E = std::move(Idx);
  }
  return E;
}

ExprPtr ParserImpl::parsePrimary() {
  const Token &T = peek();
  switch (T.Kind) {
  case TokenKind::Number: {
    advance();
    ExprPtr E = makeExpr(ExprKind::IntLiteral, T);
    E->Value = T.Value;
    return E;
  }
  case TokenKind::Identifier: {
    advance();
    if (match(TokenKind::LParen)) {
      ExprPtr E = makeExpr(ExprKind::Call, T);
      E->Name = T.Text;
      if (!check(TokenKind::RParen)) {
        do {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          E->Args.push_back(std::move(Arg));
        } while (match(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "after call arguments"))
        return nullptr;
      return E;
    }
    ExprPtr E = makeExpr(ExprKind::VarRef, T);
    E->Name = T.Text;
    return E;
  }
  case TokenKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    if (!E || !expect(TokenKind::RParen, "to close the parenthesized "
                                         "expression"))
      return nullptr;
    return E;
  }
  default:
    error("expected an expression", T);
    return nullptr;
  }
}

} // namespace

std::unique_ptr<TranslationUnit>
ccra::cc::parse(const std::vector<Token> &Tokens,
                std::vector<Diagnostic> &Diags) {
  return ParserImpl(Tokens, Diags).run();
}
