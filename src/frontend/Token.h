//===- frontend/Token.h - C-subset tokens -----------------------*- C++ -*-===//
///
/// \file
/// Tokens for the C-subset frontend. Every token carries its 1-based
/// line:column so later stages (parser, sema) can report diagnostics that
/// point at the offending token — the same support/Diagnostic.h currency
/// the `.ccra` IR parser uses.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FRONTEND_TOKEN_H
#define CCRA_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace ccra {
namespace cc {

enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Identifier,
  Number,
  // Keywords.
  KwInt,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  // Punctuation and operators.
  LParen,   // (
  RParen,   // )
  LBrace,   // {
  RBrace,   // }
  LBracket, // [
  RBracket, // ]
  Comma,    // ,
  Semi,     // ;
  Assign,   // =
  Plus,     // +
  Minus,    // -
  Star,     // * (multiply or dereference)
  Slash,    // /
  Percent,  // %
  Not,      // !
  EqEq,     // ==
  NotEq,    // !=
  Less,     // <
  Greater,  // >
  LessEq,   // <=
  GreaterEq, // >=
  AndAnd,   // &&
  OrOr,     // ||
  Eof,
};

/// Human-readable spelling of a token kind ("'=='", "identifier", ...),
/// used in "expected X" diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  /// The source spelling (identifier name, number text, operator).
  std::string Text;
  /// Numeric value for TokenKind::Number.
  long long Value = 0;
  /// 1-based source position of the token's first character.
  unsigned Line = 0;
  unsigned Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace cc
} // namespace ccra

#endif // CCRA_FRONTEND_TOKEN_H
