//===- frontend/AST.h - C-subset abstract syntax tree -----------*- C++ -*-===//
///
/// \file
/// The AST for the C subset: enough C to write honest benchmark kernels
/// (sorts, matmul, recursive math, interpreter loops) without any of the
/// language's dark corners. Types are `int`, `int*`, and one-dimensional
/// `int` arrays; control flow is if/else, while, for, break/continue,
/// return. Nodes carry their 1-based line:column for diagnostics, and Sema
/// annotates expressions with types and resolved symbol ids in place.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FRONTEND_AST_H
#define CCRA_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccra {
namespace cc {

/// The three storable types of the subset. Arrays decay to pointers in
/// every expression context except their own declaration.
enum class TypeKind : uint8_t { Int, Ptr, Array };

struct Type {
  TypeKind Kind = TypeKind::Int;
  /// Element count for TypeKind::Array.
  unsigned ArraySize = 0;

  bool isInt() const { return Kind == TypeKind::Int; }
  /// True for pointers and (decayed) arrays — anything indexable.
  bool isPointerLike() const { return Kind != TypeKind::Int; }

  static Type makeInt() { return Type{TypeKind::Int, 0}; }
  static Type makePtr() { return Type{TypeKind::Ptr, 0}; }
  static Type makeArray(unsigned Size) { return Type{TypeKind::Array, Size}; }
};

// --- Expressions ----------------------------------------------------------

enum class ExprKind : uint8_t {
  IntLiteral, // Value
  VarRef,     // Name (SymbolId after Sema)
  Unary,      // OpText in {"-", "!", "*"}; operand in Lhs
  Binary,     // OpText in {+ - * / % == != < > <= >= && ||}; Lhs, Rhs
  Assign,     // Lhs = Rhs (Lhs must be an lvalue)
  Index,      // Lhs[Rhs]
  Call,       // Name(Args)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  unsigned Line = 0;
  unsigned Column = 0;

  long long Value = 0;      // IntLiteral
  std::string Name;         // VarRef / Call
  std::string OpText;       // Unary / Binary
  ExprPtr Lhs;              // Unary operand, Binary/Assign/Index lhs
  ExprPtr Rhs;              // Binary/Assign rhs, Index subscript
  std::vector<ExprPtr> Args; // Call

  // --- Sema annotations ---
  Type Ty;
  /// VarRef: index into the translation unit's symbol table.
  int SymbolId = -1;

  explicit Expr(ExprKind Kind) : Kind(Kind) {}
};

// --- Statements -----------------------------------------------------------

enum class StmtKind : uint8_t {
  Compound, // Body
  Decl,     // DeclName : DeclTy = Init?
  ExprStmt, // E
  If,       // E, Then, Else?
  While,    // E, LoopBody
  For,      // ForInit?, E?, ForStep?, LoopBody
  Return,   // E
  Break,
  Continue,
  Empty,    // lone ';'
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind Kind;
  unsigned Line = 0;
  unsigned Column = 0;

  std::vector<StmtPtr> Body; // Compound
  std::string DeclName;      // Decl
  Type DeclTy;               // Decl
  ExprPtr Init;              // Decl initializer (scalar decls only)
  ExprPtr E;                 // ExprStmt / Return value / If / While cond
  StmtPtr Then;              // If
  StmtPtr Else;              // If (may be null)
  StmtPtr LoopBody;          // While / For
  StmtPtr ForInit;           // For (Decl or ExprStmt; may be null)
  ExprPtr ForCond;           // For (may be null: treated as constant true)
  ExprPtr ForStep;           // For (may be null)

  // --- Sema annotations ---
  /// Decl: index into the translation unit's symbol table.
  int SymbolId = -1;

  explicit Stmt(StmtKind Kind) : Kind(Kind) {}
};

// --- Declarations ---------------------------------------------------------

struct ParamDecl {
  std::string Name;
  Type Ty; // Int or Ptr
  unsigned Line = 0;
  unsigned Column = 0;
  int SymbolId = -1; // set by Sema
};

struct FunctionDecl {
  std::string Name;
  unsigned Line = 0;
  unsigned Column = 0;
  std::vector<ParamDecl> Params;
  StmtPtr Body; // Compound
};

struct GlobalDecl {
  std::string Name;
  Type Ty;
  long long Init = 0; // scalar globals only; arrays are zero-initialized
  unsigned Line = 0;
  unsigned Column = 0;
  int SymbolId = -1; // set by Sema
};

struct TranslationUnit {
  /// Globals and functions in source order (IR function order mirrors it,
  /// keeping compilation deterministic by construction).
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

} // namespace cc
} // namespace ccra

#endif // CCRA_FRONTEND_AST_H
