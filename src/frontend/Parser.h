//===- frontend/Parser.h - C-subset recursive-descent parser ----*- C++ -*-===//
///
/// \file
/// Parses a token stream into a TranslationUnit. Standard recursive
/// descent, one token of lookahead, precedence climbing for binary
/// operators. On error the parser reports a Diagnostic at the offending
/// token and stops — the subset is small enough that error recovery would
/// cost more complexity than it saves in a corpus this size.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FRONTEND_PARSER_H
#define CCRA_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"
#include "support/Diagnostic.h"

#include <memory>
#include <vector>

namespace ccra {
namespace cc {

/// Parses \p Tokens (which must end with Eof). Returns null and appends to
/// \p Diags on the first syntax error.
std::unique_ptr<TranslationUnit> parse(const std::vector<Token> &Tokens,
                                       std::vector<Diagnostic> &Diags);

} // namespace cc
} // namespace ccra

#endif // CCRA_FRONTEND_PARSER_H
