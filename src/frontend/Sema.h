//===- frontend/Sema.h - C-subset semantic analysis -------------*- C++ -*-===//
///
/// \file
/// Sema resolves names, checks the minimal type system (int / int* /
/// int[N] with array-to-pointer decay), and annotates the AST in place
/// with types and symbol ids. It also assigns every memory-resident
/// symbol (globals and local arrays) a deterministic synthetic byte
/// address: the IR has no symbolic relocations, so the frontend
/// materializes addresses with `loadimm` — globals are laid out in
/// declaration order from GlobalBase, and each function's arrays from its
/// own frame base (FrameBase + function index * FrameStride). The layout
/// depends only on source order, which keeps compilation byte-identical
/// across runs and machines.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FRONTEND_SEMA_H
#define CCRA_FRONTEND_SEMA_H

#include "frontend/AST.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace ccra {
namespace cc {

/// One resolved variable. SymbolId fields in the AST index into
/// SemaResult::Symbols.
struct Symbol {
  enum class Storage : uint8_t { Global, Param, Local };

  std::string Name;
  Type Ty;
  Storage Sto = Storage::Local;
  /// Synthetic byte address for globals and local arrays (memory-resident
  /// symbols); 0 for register-resident scalars.
  unsigned Address = 0;
  /// Position in the parameter list, for Storage::Param.
  unsigned ParamIndex = 0;
};

struct SemaResult {
  std::vector<Symbol> Symbols;
  std::vector<Diagnostic> Diags;

  bool ok() const { return Diags.empty(); }
};

/// Address-space layout constants (documented in DESIGN.md).
constexpr unsigned GlobalBase = 0x1000;
constexpr unsigned FrameBase = 0x100000;
constexpr unsigned FrameStride = 0x10000;

/// Checks \p TU, annotating it in place. All diagnostics (not just the
/// first) are collected where recovery is safe.
SemaResult analyze(TranslationUnit &TU);

} // namespace cc
} // namespace ccra

#endif // CCRA_FRONTEND_SEMA_H
