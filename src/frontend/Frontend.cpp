//===- frontend/Frontend.cpp ----------------------------------------------===//

#include "frontend/Frontend.h"

#include "frontend/IRGen.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <fstream>
#include <sstream>

using namespace ccra;

CompileResult Frontend::compile(const std::string &Source,
                                const std::string &ModuleName) {
  CompileResult Result;

  std::vector<cc::Token> Tokens = cc::lex(Source, Result.Diags);
  if (!Result.Diags.empty())
    return Result;

  std::unique_ptr<cc::TranslationUnit> TU = cc::parse(Tokens, Result.Diags);
  if (!TU)
    return Result;

  cc::SemaResult Sema = cc::analyze(*TU);
  if (!Sema.ok()) {
    Result.Diags = std::move(Sema.Diags);
    return Result;
  }

  Result.M = cc::generateIR(*TU, Sema, ModuleName);
  return Result;
}

std::string Frontend::moduleNameForPath(const std::string &Path) {
  size_t Slash = Path.find_last_of("/\\");
  std::string Stem = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Stem.find_last_of('.');
  if (Dot != std::string::npos && Dot > 0)
    Stem = Stem.substr(0, Dot);
  return Stem;
}

CompileResult Frontend::compileFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    CompileResult Result;
    Result.Diags.emplace_back(0, 0, "cannot open '" + Path + "'");
    return Result;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return compile(Buffer.str(), moduleNameForPath(Path));
}
