//===- frontend/IRGen.cpp -------------------------------------------------===//

#include "frontend/IRGen.h"

#include "ir/IRBuilder.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ccra;
using namespace ccra::cc;

namespace {

/// Probability that a loop at 1-based nesting depth \p Depth keeps
/// iterating: 1 - 2^-(depth+2), capped at depth 5. Dyadic, so the exit
/// edge (1 - p) is exact and both print in short round-trip form.
double loopBodyProbability(unsigned Depth) {
  static const double Table[] = {0.875, 0.9375, 0.96875, 0.984375,
                                 0.9921875};
  return Table[std::min(Depth, 5u) - 1];
}

class IRGenImpl {
public:
  IRGenImpl(const TranslationUnit &TU, const SemaResult &Sema,
            const std::string &ModuleName)
      : TU(TU), Sema(Sema), ModuleName(ModuleName) {}

  std::unique_ptr<Module> run();

private:
  void genFunction(const FunctionDecl &FD, Function &F);
  void genStmt(const Stmt &S);
  VirtReg genExpr(const Expr &E);
  /// Computes the byte address of an lvalue (deref, subscript, or
  /// memory-resident variable).
  VirtReg genAddr(const Expr &E);
  void genStore(const Expr &Target, VirtReg Value);
  VirtReg genCondValue(const Expr *E);

  const Symbol &symbolOf(const Expr &E) const {
    assert(E.SymbolId >= 0 && "unresolved symbol survived Sema");
    return Sema.Symbols[E.SymbolId];
  }
  bool isRegisterResident(const Symbol &Sym) const {
    return Sym.Sto != Symbol::Storage::Global &&
           Sym.Ty.Kind != TypeKind::Array;
  }

  std::string label(const char *Stem) {
    return std::string(Stem) + "." + std::to_string(NextLabel);
  }

  const TranslationUnit &TU;
  const SemaResult &Sema;
  const std::string &ModuleName;

  std::unique_ptr<Module> M;
  std::map<std::string, Function *> FunctionByName;
  IRBuilder *B = nullptr;

  /// SymbolId -> virtual register for register-resident scalars.
  std::map<int, VirtReg> RegOfSymbol;
  unsigned NextLabel = 0;
  unsigned LoopDepth = 0;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
};

std::unique_ptr<Module> IRGenImpl::run() {
  M = std::make_unique<Module>(ModuleName);
  // Create every function up front so calls resolve regardless of
  // definition order (Sema allowed forward and mutual recursion).
  for (const FunctionDecl &FD : TU.Functions) {
    Function *F = M->createFunction(FD.Name);
    FunctionByName[FD.Name] = F;
    if (FD.Name == "main")
      M->setEntryFunction(F);
  }
  for (const FunctionDecl &FD : TU.Functions)
    genFunction(FD, *FunctionByName.at(FD.Name));
  return std::move(M);
}

void IRGenImpl::genFunction(const FunctionDecl &FD, Function &F) {
  RegOfSymbol.clear();
  NextLabel = 0;
  LoopDepth = 0;
  BreakTargets.clear();
  ContinueTargets.clear();

  IRBuilder Builder(F);
  B = &Builder;
  B->startBlock("entry");

  // Parameters: stand-in definitions (see IRGen.h). The immediate is the
  // parameter index, purely for readability of the emitted IR.
  for (const ParamDecl &P : FD.Params) {
    VirtReg Reg = F.createVReg(RegBank::Int);
    RegOfSymbol[P.SymbolId] = Reg;
    VirtReg Init = B->buildLoadImm(static_cast<int64_t>(P.SymbolId >= 0
                                       ? Sema.Symbols[P.SymbolId].ParamIndex
                                       : 0));
    B->buildMoveTo(Reg, Init);
  }

  genStmt(*FD.Body);

  // Implicit `return 0` when control falls off the end.
  if (!B->getInsertBlock()->isTerminated()) {
    VirtReg Zero = B->buildLoadImm(0);
    B->buildRet(Zero);
  }

  // Drop the continuation blocks that ended up unreachable (joins after
  // both arms returned, code after break/return). The verifier requires
  // every remaining block to be terminated, which erasing guarantees:
  // only fall-off paths reach the implicit return above.
  F.eraseUnreachableBlocks();
  // Pred lists were filled in lowering order; reparsing the printed form
  // would rebuild them in block-layout order. Normalize so print ->
  // parse -> print is byte-identical.
  F.normalizePredecessors();
  B = nullptr;
}

void IRGenImpl::genStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Compound:
    for (const StmtPtr &Child : S.Body)
      genStmt(*Child);
    break;
  case StmtKind::Decl: {
    if (S.DeclTy.Kind == TypeKind::Array)
      break; // memory-resident; Sema already assigned the address
    VirtReg Reg = B->getFunction().createVReg(RegBank::Int);
    RegOfSymbol[S.SymbolId] = Reg;
    VirtReg Init = S.Init ? genExpr(*S.Init) : B->buildLoadImm(0);
    B->buildMoveTo(Reg, Init);
    break;
  }
  case StmtKind::ExprStmt:
    genExpr(*S.E);
    break;
  case StmtKind::If: {
    ++NextLabel;
    VirtReg Cond = genCondValue(S.E.get());
    BasicBlock *Then = B->getFunction().createBlock(label("then"));
    BasicBlock *Else =
        S.Else ? B->getFunction().createBlock(label("else")) : nullptr;
    BasicBlock *End = B->getFunction().createBlock(label("endif"));
    // With an else the split is 50/50; a lone guard `if` is taken 25% of
    // the time (guards mostly fail).
    double ThenProb = S.Else ? 0.5 : 0.25;
    B->buildCondBr(Cond, Then, Else ? Else : End, ThenProb);
    B->setInsertBlock(Then);
    genStmt(*S.Then);
    if (!B->getInsertBlock()->isTerminated())
      B->buildBr(End);
    if (Else) {
      B->setInsertBlock(Else);
      genStmt(*S.Else);
      if (!B->getInsertBlock()->isTerminated())
        B->buildBr(End);
    }
    B->setInsertBlock(End);
    break;
  }
  case StmtKind::While: {
    ++NextLabel;
    BasicBlock *CondBB = B->getFunction().createBlock(label("while.cond"));
    BasicBlock *BodyBB = B->getFunction().createBlock(label("while.body"));
    BasicBlock *EndBB = B->getFunction().createBlock(label("while.end"));
    B->buildBr(CondBB);
    B->setInsertBlock(CondBB);
    ++LoopDepth;
    VirtReg Cond = genCondValue(S.E.get());
    B->buildCondBr(Cond, BodyBB, EndBB, loopBodyProbability(LoopDepth));
    B->setInsertBlock(BodyBB);
    BreakTargets.push_back(EndBB);
    ContinueTargets.push_back(CondBB);
    genStmt(*S.LoopBody);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    --LoopDepth;
    if (!B->getInsertBlock()->isTerminated())
      B->buildBr(CondBB);
    B->setInsertBlock(EndBB);
    break;
  }
  case StmtKind::For: {
    ++NextLabel;
    // Blocks in source order: cond, body, step, end. `continue` jumps to
    // the step block so the step expression still runs.
    BasicBlock *CondBB = B->getFunction().createBlock(label("for.cond"));
    BasicBlock *BodyBB = B->getFunction().createBlock(label("for.body"));
    BasicBlock *StepBB = B->getFunction().createBlock(label("for.step"));
    BasicBlock *EndBB = B->getFunction().createBlock(label("for.end"));
    if (S.ForInit)
      genStmt(*S.ForInit);
    B->buildBr(CondBB);
    B->setInsertBlock(CondBB);
    ++LoopDepth;
    VirtReg Cond = genCondValue(S.ForCond.get());
    B->buildCondBr(Cond, BodyBB, EndBB, loopBodyProbability(LoopDepth));
    B->setInsertBlock(BodyBB);
    BreakTargets.push_back(EndBB);
    ContinueTargets.push_back(StepBB);
    genStmt(*S.LoopBody);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    --LoopDepth;
    if (!B->getInsertBlock()->isTerminated())
      B->buildBr(StepBB);
    B->setInsertBlock(StepBB);
    if (S.ForStep)
      genExpr(*S.ForStep);
    B->buildBr(CondBB);
    B->setInsertBlock(EndBB);
    break;
  }
  case StmtKind::Return: {
    VirtReg Value = genExpr(*S.E);
    B->buildRet(Value);
    ++NextLabel;
    B->startBlock(label("dead")); // absorbs unreachable trailing code
    break;
  }
  case StmtKind::Break:
    B->buildBr(BreakTargets.back());
    ++NextLabel;
    B->startBlock(label("dead"));
    break;
  case StmtKind::Continue:
    B->buildBr(ContinueTargets.back());
    ++NextLabel;
    B->startBlock(label("dead"));
    break;
  case StmtKind::Empty:
    break;
  }
}

VirtReg IRGenImpl::genCondValue(const Expr *E) {
  // A missing for-condition is constant truth.
  return E ? genExpr(*E) : B->buildLoadImm(1);
}

VirtReg IRGenImpl::genAddr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::VarRef: {
    const Symbol &Sym = symbolOf(E);
    assert(!isRegisterResident(Sym) && "address of a register scalar");
    return B->buildLoadImm(Sym.Address);
  }
  case ExprKind::Unary:
    assert(E.OpText == "*" && "not an lvalue");
    return genExpr(*E.Lhs); // the pointer value is the address
  case ExprKind::Index: {
    VirtReg Base = genExpr(*E.Lhs);
    VirtReg Idx = genExpr(*E.Rhs);
    VirtReg Four = B->buildLoadImm(4);
    VirtReg Offset = B->buildBinary(Opcode::Mul, Idx, Four);
    return B->buildBinary(Opcode::Add, Base, Offset);
  }
  default:
    assert(false && "not an lvalue");
    return VirtReg();
  }
}

void IRGenImpl::genStore(const Expr &Target, VirtReg Value) {
  if (Target.Kind == ExprKind::VarRef) {
    const Symbol &Sym = symbolOf(Target);
    if (isRegisterResident(Sym)) {
      B->buildMoveTo(RegOfSymbol.at(Target.SymbolId), Value);
      return;
    }
  }
  VirtReg Address = genAddr(Target);
  B->buildStore(Value, Address);
}

VirtReg IRGenImpl::genExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLiteral:
    return B->buildLoadImm(E.Value);
  case ExprKind::VarRef: {
    const Symbol &Sym = symbolOf(E);
    if (isRegisterResident(Sym))
      return RegOfSymbol.at(E.SymbolId);
    if (Sym.Ty.Kind == TypeKind::Array)
      return B->buildLoadImm(Sym.Address); // decays to its base address
    // Global scalar: load through its address.
    VirtReg Address = B->buildLoadImm(Sym.Address);
    return B->buildLoad(Address);
  }
  case ExprKind::Unary: {
    if (E.OpText == "*") {
      VirtReg Address = genExpr(*E.Lhs);
      return B->buildLoad(Address);
    }
    VirtReg Operand = genExpr(*E.Lhs);
    VirtReg Zero = B->buildLoadImm(0);
    if (E.OpText == "-")
      return B->buildBinary(Opcode::Sub, Zero, Operand);
    assert(E.OpText == "!");
    return B->buildCmp(Operand, Zero);
  }
  case ExprKind::Binary: {
    const std::string &Op = E.OpText;
    VirtReg Lhs = genExpr(*E.Lhs);
    VirtReg Rhs = genExpr(*E.Rhs);
    bool LhsPtr = E.Lhs->Ty.isPointerLike();
    bool RhsPtr = E.Rhs->Ty.isPointerLike();
    if (Op == "+" || Op == "-") {
      // Pointer arithmetic scales the integer side by the word size.
      if (LhsPtr && !RhsPtr) {
        VirtReg Four = B->buildLoadImm(4);
        Rhs = B->buildBinary(Opcode::Mul, Rhs, Four);
      } else if (RhsPtr && !LhsPtr) {
        VirtReg Four = B->buildLoadImm(4);
        Lhs = B->buildBinary(Opcode::Mul, Lhs, Four);
      }
      return B->buildBinary(Op == "+" ? Opcode::Add : Opcode::Sub, Lhs,
                            Rhs);
    }
    if (Op == "*")
      return B->buildBinary(Opcode::Mul, Lhs, Rhs);
    if (Op == "/")
      return B->buildBinary(Opcode::Div, Lhs, Rhs);
    if (Op == "%") {
      // a % b  ->  a - (a/b)*b  (the machine model has no remainder op).
      VirtReg Quotient = B->buildBinary(Opcode::Div, Lhs, Rhs);
      VirtReg Product = B->buildBinary(Opcode::Mul, Quotient, Rhs);
      return B->buildBinary(Opcode::Sub, Lhs, Product);
    }
    if (Op == "&&")
      return B->buildBinary(Opcode::And, Lhs, Rhs);
    if (Op == "||")
      return B->buildBinary(Opcode::Or, Lhs, Rhs);
    // All six comparisons lower to the IR's generic boolean compare; the
    // relation itself is irrelevant to allocation.
    return B->buildCmp(Lhs, Rhs);
  }
  case ExprKind::Assign: {
    VirtReg Value = genExpr(*E.Rhs);
    genStore(*E.Lhs, Value);
    return Value;
  }
  case ExprKind::Index: {
    VirtReg Address = genAddr(E);
    return B->buildLoad(Address);
  }
  case ExprKind::Call: {
    std::vector<VirtReg> Args;
    Args.reserve(E.Args.size());
    for (const ExprPtr &Arg : E.Args)
      Args.push_back(genExpr(*Arg));
    Function *Callee = FunctionByName.at(E.Name);
    return B->buildCall(Callee, Args, {RegBank::Int})[0];
  }
  }
  assert(false && "unhandled expression kind");
  return VirtReg();
}

} // namespace

std::unique_ptr<Module> ccra::cc::generateIR(const TranslationUnit &TU,
                                             const SemaResult &Sema,
                                             const std::string &ModuleName) {
  return IRGenImpl(TU, Sema, ModuleName).run();
}
