//===- frontend/Lexer.h - C-subset lexer ------------------------*- C++ -*-===//
///
/// \file
/// Turns C-subset source text into a token stream. The lexer is a single
/// forward pass with no lookahead state, so tokenization is deterministic
/// by construction. Unknown characters and unterminated block comments are
/// reported as Diagnostics with line:column; lexing continues after an
/// error so one pass surfaces every lexical problem in the file.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FRONTEND_LEXER_H
#define CCRA_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace ccra {
namespace cc {

/// Lexes \p Source completely. The returned stream always ends with an Eof
/// token. Lexical errors are appended to \p Diags.
std::vector<Token> lex(const std::string &Source,
                       std::vector<Diagnostic> &Diags);

} // namespace cc
} // namespace ccra

#endif // CCRA_FRONTEND_LEXER_H
