//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include "core/EngineBuilder.h"
#include "ir/Cloner.h"
#include "ir/Module.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

ExperimentRun ccra::runExperiment(const ExperimentSpec &Spec) {
  assert(Spec.Program && "experiment needs a program");
  ExperimentRun Run;

  std::unique_ptr<Module> Clone = cloneModule(*Spec.Program);
  FrequencyInfo Freq = FrequencyInfo::compute(*Clone, Spec.Mode);

  Telemetry T;
  AllocationEngine Engine = EngineBuilder(Spec.Config)
                                .options(Spec.Options)
                                .jobs(Spec.Jobs)
                                .telemetry(&T)
                                .build();
  ModuleAllocationResult Alloc = Engine.allocateModule(*Clone, Freq);

  Run.Result.Costs = Alloc.Totals;
  for (const auto &[F, FA] : Alloc.PerFunction) {
    (void)F;
    Run.Result.SpilledRanges += FA.SpilledRanges;
    Run.Result.VoluntarySpills += FA.VoluntarySpills;
    Run.Result.CoalescedMoves += FA.CoalescedMoves;
    Run.Result.CalleeRegsPaid += FA.CalleeRegsPaid;
    Run.Result.MaxRounds = std::max(Run.Result.MaxRounds, FA.Rounds);
  }
  Run.Result.Cycles = estimateDynamicCycles(*Clone, Freq);

  T.addCount(telemetry::Experiments);
  Run.Telemetry = T.snapshot();
  return Run;
}

std::vector<ExperimentRun>
ccra::runExperiments(const std::vector<ExperimentSpec> &Specs, unsigned Jobs) {
  std::vector<ExperimentRun> Runs(Specs.size());
  if (Jobs == 0)
    Jobs = ThreadPool::defaultParallelism();
  Jobs = static_cast<unsigned>(
      std::min<std::size_t>(Jobs, Specs.size() ? Specs.size() : 1));
  if (Jobs <= 1) {
    for (std::size_t I = 0; I < Specs.size(); ++I)
      Runs[I] = runExperiment(Specs[I]);
    return Runs;
  }

  // Each grid point clones its program and owns its telemetry, so tasks
  // share nothing; results land at their spec's index.
  ThreadPool Pool(Jobs);
  Pool.parallelForEach(Specs.size(),
                       [&](std::size_t I) { Runs[I] = runExperiment(Specs[I]); });
  return Runs;
}

ExperimentResult ccra::runExperiment(const Module &M,
                                     const RegisterConfig &Config,
                                     const AllocatorOptions &Opts,
                                     FrequencyMode Mode) {
  return runExperiment({&M, Config, Opts, Mode, /*Jobs=*/1}).Result;
}

/// Per-instruction cycle costs, loosely following the MIPS R3000 the paper
/// measured on (DECstation 5000): single-cycle ALU ops, two-cycle memory
/// accesses (including every overhead load/store), multi-cycle
/// multiply/divide, and a small fixed call overhead.
static double instructionCycles(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Mul:
  case Opcode::FMul:
    return 5.0;
  case Opcode::Div:
  case Opcode::FDiv:
    return 20.0;
  case Opcode::Call:
    return 2.0;
  default:
    return I.isMemory() ? 2.0 : 1.0;
  }
}

double ccra::estimateDynamicCycles(const Module &M,
                                   const FrequencyInfo &Freq) {
  double Cycles = 0.0;
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      double BlockFreq = Freq.blockFrequency(*BB);
      double PerIteration = 0.0;
      for (const Instruction &I : BB->instructions())
        PerIteration += instructionCycles(I);
      Cycles += BlockFreq * PerIteration;
    }
  }
  return Cycles;
}
