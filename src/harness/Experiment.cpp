//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include "analysis/AnalysisCache.h"
#include "core/EngineBuilder.h"
#include "ir/Cloner.h"
#include "ir/Module.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace ccra;

ExperimentRun ccra::runExperiment(const ExperimentSpec &Spec,
                                  ModuleAnalysisCache *Cache,
                                  ThreadPool *Pool) {
  assert(Spec.Program && "experiment needs a program");
  ExperimentRun Run;

  std::unique_ptr<Module> Clone = cloneModule(*Spec.Program);

  // With a cache the analyses run (at most) once per source module across
  // the whole grid: frequencies transfer to the clone by position (same
  // doubles), baseline liveness seeds round 1 by block-id identity.
  std::uint64_t CacheHits = 0, CacheMisses = 0;
  FrequencyInfo Freq;
  if (Cache) {
    bool Hit = false;
    const FrequencyInfo &Shared =
        Cache->frequencies(*Spec.Program, Spec.Mode, &Hit);
    ++(Hit ? CacheHits : CacheMisses);
    Freq = Shared.remappedTo(*Spec.Program, *Clone);
  } else {
    Freq = FrequencyInfo::compute(*Clone, Spec.Mode);
  }

  AnalysisSeeds Seeds;
  const AnalysisSeeds *SeedsPtr = nullptr;
  if (Cache && Spec.Options.IncrementalLiveness) {
    const auto &Fns = Spec.Program->functions();
    for (unsigned I = 0; I < Fns.size(); ++I) {
      if (Fns[I]->isDeclaration())
        continue;
      bool Hit = false;
      Seeds.BaselineLiveness.push_back(
          &Cache->baselineLiveness(*Spec.Program, I, &Hit));
      ++(Hit ? CacheHits : CacheMisses);
    }
    SeedsPtr = &Seeds;
  }

  Telemetry T;
  AllocationEngine Engine = EngineBuilder(Spec.Config)
                                .options(Spec.Options)
                                .jobs(Spec.Jobs)
                                .telemetry(&T)
                                .pool(Pool)
                                .build();
  ModuleAllocationResult Alloc = Engine.allocateModule(*Clone, Freq, SeedsPtr);

  Run.Result.Costs = Alloc.Totals;
  for (const auto &[F, FA] : Alloc.PerFunction) {
    (void)F;
    Run.Result.SpilledRanges += FA.SpilledRanges;
    Run.Result.VoluntarySpills += FA.VoluntarySpills;
    Run.Result.CoalescedMoves += FA.CoalescedMoves;
    Run.Result.CalleeRegsPaid += FA.CalleeRegsPaid;
    Run.Result.MaxRounds = std::max(Run.Result.MaxRounds, FA.Rounds);
  }
  Run.Result.Cycles = estimateDynamicCycles(*Clone, Freq);

  if (Cache) {
    T.addCount(telemetry::SchedAnalysisCacheHits,
               static_cast<double>(CacheHits));
    T.addCount(telemetry::SchedAnalysisCacheMisses,
               static_cast<double>(CacheMisses));
  }
  T.addCount(telemetry::Experiments);
  Run.Telemetry = T.snapshot();
  return Run;
}

std::vector<ExperimentRun>
ccra::runExperiments(const std::vector<ExperimentSpec> &Specs, unsigned Jobs,
                     TelemetrySnapshot *GridTelemetry) {
  std::vector<ExperimentRun> Runs(Specs.size());
  if (Jobs == 0)
    Jobs = ThreadPool::defaultParallelism();
  Jobs = static_cast<unsigned>(
      std::min<std::size_t>(Jobs, Specs.size() ? Specs.size() : 1));

  // One analysis cache for the whole grid (specs over the same program and
  // mode share one FrequencyInfo and one baseline liveness per function),
  // and one pool wide enough for the largest parallelism any level asks
  // for. Engines submit their function batches to this same pool — nested
  // batches, not nested pools — so grid x module parallelism can never
  // oversubscribe the machine beyond the pool's width.
  ModuleAnalysisCache Cache;
  unsigned Width = Jobs;
  for (const ExperimentSpec &S : Specs)
    Width = std::max(Width,
                     S.Jobs == 0 ? ThreadPool::defaultParallelism() : S.Jobs);

  std::optional<ThreadPool> Pool;
  if (Width > 1)
    Pool.emplace(Width);
  ThreadPool *P = Pool ? &*Pool : nullptr;

  if (Jobs <= 1) {
    for (std::size_t I = 0; I < Specs.size(); ++I)
      Runs[I] = runExperiment(Specs[I], &Cache, P);
  } else {
    // Each grid point clones its program and owns its telemetry; results
    // land at their spec's index. The cache serializes only first
    // computation of a shared analysis.
    P->parallelForEach(Specs.size(), [&](std::size_t I) {
      Runs[I] = runExperiment(Specs[I], &Cache, P);
    });
  }

  if (GridTelemetry) {
    Telemetry T;
    ModuleAnalysisCache::Stats CS = Cache.stats();
    T.addCount(telemetry::SchedAnalysisCacheHits,
               static_cast<double>(CS.hits()));
    T.addCount(telemetry::SchedAnalysisCacheMisses,
               static_cast<double>(CS.misses()));
    if (Pool) {
      ThreadPool::Stats PS = Pool->stats();
      T.addCount(telemetry::SchedPoolBatches, static_cast<double>(PS.Batches));
      T.addCount(telemetry::SchedPoolTasks, static_cast<double>(PS.Tasks));
      std::uint64_t Busiest = 0;
      for (std::uint64_t N : PS.TasksPerSlot)
        Busiest = std::max(Busiest, N);
      if (PS.Tasks > 0)
        T.addCount(telemetry::SchedPoolMaxSlotShare,
                   static_cast<double>(Busiest) /
                       static_cast<double>(PS.Tasks));
    }
    *GridTelemetry = T.snapshot();
  }
  return Runs;
}

ExperimentResult ccra::runExperiment(const Module &M,
                                     const RegisterConfig &Config,
                                     const AllocatorOptions &Opts,
                                     FrequencyMode Mode) {
  return runExperiment({&M, Config, Opts, Mode, /*Jobs=*/1}).Result;
}

/// Per-instruction cycle costs, loosely following the MIPS R3000 the paper
/// measured on (DECstation 5000): single-cycle ALU ops, two-cycle memory
/// accesses (including every overhead load/store), multi-cycle
/// multiply/divide, and a small fixed call overhead.
static double instructionCycles(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Mul:
  case Opcode::FMul:
    return 5.0;
  case Opcode::Div:
  case Opcode::FDiv:
    return 20.0;
  case Opcode::Call:
    return 2.0;
  default:
    return I.isMemory() ? 2.0 : 1.0;
  }
}

double ccra::estimateDynamicCycles(const Module &M,
                                   const FrequencyInfo &Freq) {
  double Cycles = 0.0;
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      double BlockFreq = Freq.blockFrequency(*BB);
      double PerIteration = 0.0;
      for (const Instruction &I : BB->instructions())
        PerIteration += instructionCycles(I);
      Cycles += BlockFreq * PerIteration;
    }
  }
  return Cycles;
}
