//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include "core/AllocatorFactory.h"
#include "ir/Cloner.h"
#include "ir/Module.h"

#include <algorithm>

using namespace ccra;

ExperimentResult ccra::runExperiment(const Module &M,
                                     const RegisterConfig &Config,
                                     const AllocatorOptions &Opts,
                                     FrequencyMode Mode) {
  ExperimentResult Result;

  std::unique_ptr<Module> Clone = cloneModule(M);
  FrequencyInfo Freq = FrequencyInfo::compute(*Clone, Mode);

  AllocationEngine Engine = makeEngine(MachineDescription(Config), Opts);
  ModuleAllocationResult Alloc = Engine.allocateModule(*Clone, Freq);

  Result.Costs = Alloc.Totals;
  for (const auto &[F, FA] : Alloc.PerFunction) {
    (void)F;
    Result.SpilledRanges += FA.SpilledRanges;
    Result.VoluntarySpills += FA.VoluntarySpills;
    Result.CoalescedMoves += FA.CoalescedMoves;
    Result.CalleeRegsPaid += FA.CalleeRegsPaid;
    Result.MaxRounds = std::max(Result.MaxRounds, FA.Rounds);
  }
  Result.Cycles = estimateDynamicCycles(*Clone, Freq);
  return Result;
}

/// Per-instruction cycle costs, loosely following the MIPS R3000 the paper
/// measured on (DECstation 5000): single-cycle ALU ops, two-cycle memory
/// accesses (including every overhead load/store), multi-cycle
/// multiply/divide, and a small fixed call overhead.
static double instructionCycles(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Mul:
  case Opcode::FMul:
    return 5.0;
  case Opcode::Div:
  case Opcode::FDiv:
    return 20.0;
  case Opcode::Call:
    return 2.0;
  default:
    return I.isMemory() ? 2.0 : 1.0;
  }
}

double ccra::estimateDynamicCycles(const Module &M,
                                   const FrequencyInfo &Freq) {
  double Cycles = 0.0;
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      double BlockFreq = Freq.blockFrequency(*BB);
      double PerIteration = 0.0;
      for (const Instruction &I : BB->instructions())
        PerIteration += instructionCycles(I);
      Cycles += BlockFreq * PerIteration;
    }
  }
  return Cycles;
}
