//===- harness/Batch.h - Coalesced allocation batches -----------*- C++ -*-===//
///
/// \file
/// The serving counterpart of the experiment grid: a *batch* is a set of
/// independent allocation requests (each with its own module, register
/// configuration, options, and frequency mode) coalesced into one grid run
/// over a shared ThreadPool. The allocation service's batch former drains
/// its bounded request queue into one of these per engine pass; every item
/// allocates its module in place (the service parses a private module per
/// request, so there is nothing to clone) and the per-item results are
/// bit-identical to running the same request alone — the same contract the
/// experiment grid documents.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_HARNESS_BATCH_H
#define CCRA_HARNESS_BATCH_H

#include "analysis/Frequency.h"
#include "regalloc/AllocationResult.h"
#include "regalloc/AllocatorOptions.h"
#include "support/Telemetry.h"
#include "target/MachineDescription.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace ccra {

class Module;
class ThreadPool;

/// One request of a batch. The module is allocated (mutated) in place.
struct AllocationBatchItem {
  Module *Program = nullptr;
  RegisterConfig Config;
  AllocatorOptions Options;
  FrequencyMode Mode = FrequencyMode::Profile;
};

struct AllocationBatchResult {
  ModuleAllocationResult Result;
  TelemetrySnapshot Telemetry; ///< this item's engine telemetry
};

/// Called once per finished item, with the item's index and its result,
/// on whichever thread ran the item and as soon as it completes — items
/// finishing early are observable before the batch drains. Callbacks for
/// different items may run concurrently; the callee synchronizes anything
/// shared. The allocation service uses this to flush each response (and
/// publish its cache entry) without waiting for the slowest item of the
/// batch.
using BatchItemCallback =
    std::function<void(std::size_t, AllocationBatchResult &)>;

/// Runs every item of \p Items, fanning the batch across \p Pool when one
/// is given (items run concurrently, and each item's engine additionally
/// fans its functions out on the same pool when its Options.Jobs asks for
/// parallelism — nested batches, never nested pools). Output order matches
/// input order and each result is bit-identical to a serial run of the
/// same item. An item whose engine throws never reaches \p OnItemDone; the
/// first such exception is rethrown after the batch drains.
std::vector<AllocationBatchResult>
runAllocationBatch(const std::vector<AllocationBatchItem> &Items,
                   ThreadPool *Pool,
                   const BatchItemCallback &OnItemDone = {});

} // namespace ccra

#endif // CCRA_HARNESS_BATCH_H
