//===- harness/Batch.cpp --------------------------------------------------===//

#include "harness/Batch.h"

#include "core/EngineBuilder.h"
#include "ir/Module.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace ccra;

namespace {

AllocationBatchResult runItem(const AllocationBatchItem &Item,
                              ThreadPool *Pool) {
  assert(Item.Program && "batch item needs a program");
  AllocationBatchResult Out;

  Telemetry T;
  FrequencyInfo Freq = [&] {
    Telemetry::ScopedTimer Timer(&T, telemetry::FreqComputePhase);
    return FrequencyInfo::compute(*Item.Program, Item.Mode);
  }();
  AllocationEngine Engine = EngineBuilder(Item.Config)
                                .options(Item.Options)
                                .telemetry(&T)
                                .pool(Pool)
                                .build();
  Out.Result = Engine.allocateModule(*Item.Program, Freq);
  Out.Telemetry = T.takeSnapshot();
  return Out;
}

} // namespace

std::vector<AllocationBatchResult>
ccra::runAllocationBatch(const std::vector<AllocationBatchItem> &Items,
                         ThreadPool *Pool,
                         const BatchItemCallback &OnItemDone) {
  std::vector<AllocationBatchResult> Results(Items.size());
  if (!Pool || Items.size() <= 1) {
    for (std::size_t I = 0; I < Items.size(); ++I) {
      Results[I] = runItem(Items[I], Pool);
      if (OnItemDone)
        OnItemDone(I, Results[I]);
    }
    return Results;
  }
  Pool->parallelForEach(Items.size(), [&](std::size_t I) {
    Results[I] = runItem(Items[I], Pool);
    if (OnItemDone)
      OnItemDone(I, Results[I]);
  });
  return Results;
}
