//===- harness/Experiment.h - Reproduction experiment driver ---*- C++ -*-===//
///
/// \file
/// Runs one point of the paper's evaluation grid — (workload, register
/// configuration, allocator, frequency source) — on a clone of the
/// workload, and the Table 4 execution-time model. Every bench binary is a
/// thin loop over this.
///
/// A grid point is described by an ExperimentSpec and produces an
/// ExperimentRun: the cost/statistics summary plus the telemetry the
/// allocation recorded (per-phase timers and counters). runExperiments
/// fans a whole grid across ONE shared thread pool that also serves each
/// spec's per-function fan-out (Spec.Jobs) — nested batches on the shared
/// pool, never nested pools — and shares one ModuleAnalysisCache across
/// the grid so frequencies and baseline liveness are computed once per
/// (module, mode) / (module, function) instead of once per grid point.
/// Neither sharing changes any result bit.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_HARNESS_EXPERIMENT_H
#define CCRA_HARNESS_EXPERIMENT_H

#include "analysis/Frequency.h"
#include "regalloc/AllocationResult.h"
#include "regalloc/AllocatorOptions.h"
#include "support/Telemetry.h"
#include "target/MachineDescription.h"

#include <string>
#include <vector>

namespace ccra {

class ModuleAnalysisCache;
class ThreadPool;

struct ExperimentResult {
  CostBreakdown Costs;
  unsigned SpilledRanges = 0;
  unsigned VoluntarySpills = 0;
  unsigned CoalescedMoves = 0;
  unsigned CalleeRegsPaid = 0;
  unsigned MaxRounds = 0;
  /// Estimated dynamic cycles of the allocated program (Table 4 model):
  /// one cycle per instruction plus one extra per memory operation.
  double Cycles = 0.0;
};

/// One evaluation grid point. The program is never modified: each run
/// allocates a private clone.
struct ExperimentSpec {
  const Module *Program = nullptr;
  RegisterConfig Config;
  AllocatorOptions Options;
  FrequencyMode Mode = FrequencyMode::Profile;
  /// Function allocations run concurrently within this experiment
  /// (AllocatorOptions::Jobs semantics: 1 = serial, 0 = hardware).
  unsigned Jobs = 1;
};

/// What one grid point produced: the summary plus everything the engine's
/// telemetry recorded while allocating (phase timers, counters).
struct ExperimentRun {
  ExperimentResult Result;
  TelemetrySnapshot Telemetry;
};

/// Runs one grid point. Results are identical for any Spec.Jobs setting.
/// \p Cache, when given, supplies shared frequencies (rekeyed onto the
/// run's private clone) and baseline-liveness seeds; \p Pool, when given,
/// carries the spec's function fan-out instead of a private pool. Both are
/// pure compute-sharing: results are bit-identical with or without them.
ExperimentRun runExperiment(const ExperimentSpec &Spec,
                            ModuleAnalysisCache *Cache,
                            ThreadPool *Pool = nullptr);
inline ExperimentRun runExperiment(const ExperimentSpec &Spec) {
  return runExperiment(Spec, nullptr, nullptr);
}

/// Runs a grid of experiments, \p Jobs specs concurrently (1 = serial,
/// 0 = one per hardware thread). Output order matches input order and
/// every run is bit-identical to running its spec alone. One analysis
/// cache and (when anything is parallel) one thread pool are shared by
/// the whole grid; \p GridTelemetry, if non-null, receives the grid-level
/// scheduling counters (cache hit/miss totals, pool batch/task counts,
/// the busiest slot's share of tasks).
std::vector<ExperimentRun> runExperiments(const std::vector<ExperimentSpec> &Specs,
                                          unsigned Jobs = 1,
                                          TelemetrySnapshot *GridTelemetry = nullptr);

/// \deprecated Positional shim over the ExperimentSpec overload; drops the
/// telemetry half of the result.
ExperimentResult runExperiment(const Module &M, const RegisterConfig &Config,
                               const AllocatorOptions &Opts,
                               FrequencyMode Mode);

/// The Table 4 cycle model, exposed for tests: weighted dynamic instruction
/// count with memory operations (including all overhead loads/stores)
/// costing one extra cycle.
double estimateDynamicCycles(const Module &M, const FrequencyInfo &Freq);

} // namespace ccra

#endif // CCRA_HARNESS_EXPERIMENT_H
