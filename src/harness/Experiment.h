//===- harness/Experiment.h - Reproduction experiment driver ---*- C++ -*-===//
///
/// \file
/// Runs one point of the paper's evaluation grid — (workload, register
/// configuration, allocator, frequency source) — on a clone of the
/// workload, and the Table 4 execution-time model. Every bench binary is a
/// thin loop over this.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_HARNESS_EXPERIMENT_H
#define CCRA_HARNESS_EXPERIMENT_H

#include "analysis/Frequency.h"
#include "regalloc/AllocationResult.h"
#include "regalloc/AllocatorOptions.h"
#include "target/MachineDescription.h"

#include <string>

namespace ccra {

struct ExperimentResult {
  CostBreakdown Costs;
  unsigned SpilledRanges = 0;
  unsigned VoluntarySpills = 0;
  unsigned CoalescedMoves = 0;
  unsigned CalleeRegsPaid = 0;
  unsigned MaxRounds = 0;
  /// Estimated dynamic cycles of the allocated program (Table 4 model):
  /// one cycle per instruction plus one extra per memory operation.
  double Cycles = 0.0;
};

/// Allocates a clone of \p M with \p Opts under \p Config, using \p Mode
/// execution-frequency estimates. \p M itself is never modified.
ExperimentResult runExperiment(const Module &M, const RegisterConfig &Config,
                               const AllocatorOptions &Opts,
                               FrequencyMode Mode);

/// The Table 4 cycle model, exposed for tests: weighted dynamic instruction
/// count with memory operations (including all overhead loads/stores)
/// costing one extra cycle.
double estimateDynamicCycles(const Module &M, const FrequencyInfo &Freq);

} // namespace ccra

#endif // CCRA_HARNESS_EXPERIMENT_H
