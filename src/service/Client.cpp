//===- service/Client.cpp -------------------------------------------------===//

#include "service/Client.h"

#include "service/BinaryCodec.h"

using namespace ccra;

bool ServiceClient::connectUnix(const std::string &Path, std::string *Err) {
  Conn = Socket::connectUnix(Path, Err);
  return finishConnect(Err);
}

bool ServiceClient::connectTcp(int Port, std::string *Err) {
  Conn = Socket::connectTcp(Port, Err);
  return finishConnect(Err);
}

std::size_t ServiceClient::maxResponseBytes() const {
  // An AllocResponse echoes the allocated module (comparable in size to
  // the request payload the server caps at MaxPayloadBytes) plus
  // per-function stats and telemetry; twice the cap plus 1 MiB of fixed
  // slack covers every legitimate response.
  return Hello.MaxPayloadBytes * 2 + (1u << 20);
}

bool ServiceClient::finishConnect(std::string *Err) {
  if (!Conn.valid())
    return false;
  Frame F;
  FrameReadStatus RS = readFrame(Conn, F, 1u << 20, TimeoutMs, TimeoutMs, Err);
  if (RS != FrameReadStatus::Ok || F.Type != FrameType::Hello) {
    if (Err && Err->empty())
      *Err = "did not receive a Hello frame";
    Conn.close();
    return false;
  }
  if (!parseHello(F.Payload, Hello, Err)) {
    Conn.close();
    return false;
  }
  if (Hello.Protocol != WireVersion) {
    if (Err)
      *Err = "protocol version mismatch: server speaks v" +
             std::to_string(Hello.Protocol) + ", client v" +
             std::to_string(WireVersion);
    Conn.close();
    return false;
  }
  return true;
}

RpcStatus ServiceClient::roundTrip(const Frame &Request, Frame &In,
                                   ErrorResponse &ServerError,
                                   std::string *Err) {
  if (!Conn.valid()) {
    if (Err)
      *Err = "not connected";
    return RpcStatus::Transport;
  }
  if (writeFrame(Conn, Request, TimeoutMs, Err) != IoStatus::Ok) {
    Conn.close();
    return RpcStatus::Transport;
  }
  FrameReadStatus RS =
      readFrame(Conn, In, maxResponseBytes(), TimeoutMs, TimeoutMs, Err);
  if (RS != FrameReadStatus::Ok) {
    Conn.close();
    return RpcStatus::Transport;
  }
  if (In.Type == FrameType::Shed) {
    ServerError.Code = "shed";
    ServerError.Message = In.Payload;
    return RpcStatus::Shed;
  }
  if (In.Type == FrameType::Error) {
    if (!parseError(In.Payload, ServerError)) {
      ServerError.Code = "internal";
      ServerError.Message = In.Payload;
    }
    return RpcStatus::Rejected;
  }
  return RpcStatus::Ok;
}

RpcStatus ServiceClient::allocate(const AllocRequest &Request,
                                  AllocResponse &Out,
                                  ErrorResponse &ServerError,
                                  std::string *Err) {
  Frame Req;
  if (!Request.ModuleBinary.empty()) {
    // Codec v2 is negotiated, never assumed: a pre-v1.2 server would
    // reject the frame type as malformed and drop the stream.
    if (Hello.MaxCodec < 2) {
      if (Err)
        *Err = "server does not accept binary modules (codec-max " +
               std::to_string(Hello.MaxCodec) + ")";
      return RpcStatus::Transport;
    }
    Req.Type = FrameType::AllocRequestV2;
    Req.Payload = encodeAllocRequestV2(Request);
  } else {
    Req.Type = FrameType::AllocRequest;
    Req.Payload = encodeAllocRequest(Request);
  }
  Frame In;
  RpcStatus Status = roundTrip(Req, In, ServerError, Err);
  if (Status != RpcStatus::Ok)
    return Status;
  if (In.Type != FrameType::AllocResponse ||
      !parseAllocResponse(In.Payload, Out, Err)) {
    if (Err && Err->empty())
      *Err = "unexpected response frame type";
    Conn.close();
    return RpcStatus::Transport;
  }
  return RpcStatus::Ok;
}

RpcStatus ServiceClient::stats(TelemetrySnapshot &Out,
                               ErrorResponse &ServerError, std::string *Err) {
  Frame Req;
  Req.Type = FrameType::StatsRequest;
  Frame In;
  RpcStatus Status = roundTrip(Req, In, ServerError, Err);
  if (Status != RpcStatus::Ok)
    return Status;
  if (In.Type != FrameType::StatsResponse ||
      !TelemetrySnapshot::fromJson(In.Payload, Out)) {
    if (Err)
      *Err = "unexpected response frame type";
    Conn.close();
    return RpcStatus::Transport;
  }
  return RpcStatus::Ok;
}

bool ServiceClient::sendRawBytes(const std::string &Bytes, std::string *Err) {
  return Conn.sendAll(Bytes.data(), Bytes.size(), TimeoutMs, Err) ==
         IoStatus::Ok;
}

FrameReadStatus ServiceClient::readResponse(Frame &Out, std::string *Err) {
  return readFrame(Conn, Out, maxResponseBytes(), TimeoutMs, TimeoutMs, Err);
}
