//===- service/AllocationCache.h - Content-addressed results ----*- C++ -*-===//
///
/// \file
/// The content-addressed allocation cache fronting the serving tier's
/// batch former. Allocation in this codebase is deterministic — the oracle
/// lattice proves bit-identity across every engine configuration — so a
/// response is a pure function of (module text, behavior-affecting
/// options, register config, frequency mode). That whole tuple, flattened
/// by allocationCacheKey(), IS the cache key: a hit can replay the stored
/// response verbatim and be byte-identical to a cold allocation, with no
/// invalidation or coherence protocol ever needed.
///
/// Layout mirrors the `(module, fn)` keying discipline of
/// analysis/AnalysisCache.h: a module-level entry holds the totals, the
/// replayed telemetry, and the `module <name>` header line, while each
/// function's summary and IR slice lives in its own (module-id, fn-index)
/// entry. A hit reassembles `printModule` output byte-for-byte from the
/// slices. Keys are hash-addressed (support/Hash.h FNV-1a 64) but every
/// entry stores its full key text and lookup compares it exactly, so a
/// hash collision costs one string compare, never a wrong response.
///
/// Bounded by bytes, evicting least-recently-used whole modules (a module
/// and its function entries enter and leave together; an entry larger than
/// the whole budget is simply not admitted). Thread-safe: one mutex, held
/// only for map/list operations — the expensive work a hit avoids (parse,
/// verify, engine run) never happens at all.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SERVICE_ALLOCATIONCACHE_H
#define CCRA_SERVICE_ALLOCATIONCACHE_H

#include "service/WireProtocol.h"

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccra {

/// Flattens everything an allocation's result depends on into one key
/// string: the canonical options key, the register config, the frequency
/// mode, and the verbatim module text. DeadlineMs is deliberately absent —
/// it is admission control, not behavior.
std::string allocationCacheKey(const AllocRequest &R);

struct AllocationCacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Evictions = 0;  ///< modules evicted (not function entries)
  std::uint64_t Insertions = 0;
  std::size_t Bytes = 0;        ///< current footprint estimate
  std::size_t Modules = 0;
  std::size_t Functions = 0;
};

class AllocationCache {
public:
  /// One cached function: its response summary (absent for declarations,
  /// which appear in the IR but not in the response's function list) and
  /// its exact slice of the printModule output.
  struct FunctionRecord {
    bool HasSummary = false;
    FunctionSummary Summary;
    std::string Ir; ///< printFunction output + trailing '\n'
  };

  /// \p MaxBytes = 0 disables the cache (lookup always misses, insert is a
  /// no-op) — the "cache off" configuration is the same object, so callers
  /// never branch on a null pointer.
  explicit AllocationCache(std::size_t MaxBytes) : MaxBytes(MaxBytes) {}

  AllocationCache(const AllocationCache &) = delete;
  AllocationCache &operator=(const AllocationCache &) = delete;

  bool enabled() const { return MaxBytes > 0; }
  std::size_t capacityBytes() const { return MaxBytes; }

  /// On hit, rebuilds the full response (totals, per-function summaries,
  /// replayed telemetry, reassembled IR) into \p Out and returns true.
  /// Counts a miss when the cache is disabled or the key is absent.
  bool lookup(const std::string &Key, AllocResponse &Out);

  /// Publishes one successful allocation. \p IrHeader is the module header
  /// line of the printModule output; \p Functions holds one record per
  /// module function, in module order. Re-inserting an existing key is a
  /// no-op (two shards can race to publish the same miss).
  void insert(const std::string &Key, const std::string &IrHeader,
              const CostBreakdown &Totals, const TelemetrySnapshot &Telemetry,
              std::vector<FunctionRecord> Functions);

  AllocationCacheStats stats() const;

private:
  struct ModuleEntry {
    std::uint64_t Id = 0;
    std::uint64_t Hash = 0;
    std::string Key; ///< full key material; compared exactly on lookup
    std::string IrHeader;
    CostBreakdown Totals;
    TelemetrySnapshot Telemetry;
    unsigned FunctionCount = 0;
    std::size_t Bytes = 0;
    std::list<std::uint64_t>::iterator LruPos;
  };

  /// Drops the LRU tail until the footprint fits. Caller holds M.
  void evictToFit();
  /// Removes one module entry and its function entries. Caller holds M.
  void erase(std::uint64_t Id);

  const std::size_t MaxBytes;

  mutable std::mutex M;
  std::uint64_t NextId = 1;
  std::size_t TotalBytes = 0;
  std::uint64_t Hits = 0, Misses = 0, Evictions = 0, Insertions = 0;
  /// hash -> ids of entries with that hash (collision bucket).
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> Buckets;
  std::unordered_map<std::uint64_t, ModuleEntry> Modules;
  /// (module id, function index) -> record: the per-function granularity.
  std::map<std::pair<std::uint64_t, unsigned>, FunctionRecord> Functions;
  std::list<std::uint64_t> Lru; ///< front = most recently used
};

} // namespace ccra

#endif // CCRA_SERVICE_ALLOCATIONCACHE_H
