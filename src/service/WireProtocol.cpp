//===- service/WireProtocol.cpp -------------------------------------------===//

#include "service/WireProtocol.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace ccra;

namespace {

void putU16(std::string &Out, std::uint16_t V) {
  Out.push_back(static_cast<char>(V & 0xff));
  Out.push_back(static_cast<char>((V >> 8) & 0xff));
}

void putU32(std::string &Out, std::uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<char>((V >> Shift) & 0xff));
}

std::uint16_t getU16(const unsigned char *P) {
  return static_cast<std::uint16_t>(P[0] | (P[1] << 8));
}

std::uint32_t getU32(const unsigned char *P) {
  return static_cast<std::uint32_t>(P[0]) |
         (static_cast<std::uint32_t>(P[1]) << 8) |
         (static_cast<std::uint32_t>(P[2]) << 16) |
         (static_cast<std::uint32_t>(P[3]) << 24);
}

bool validFrameType(std::uint16_t T) {
  return T >= static_cast<std::uint16_t>(FrameType::Hello) &&
         T <= static_cast<std::uint16_t>(FrameType::AllocRequestV2);
}

/// Walks a line-oriented payload. Lines end in '\n' (a missing final
/// newline still yields the last line).
class LineScanner {
public:
  explicit LineScanner(const std::string &Text) : Text(Text) {}

  bool next(std::string &Line) {
    if (Pos >= Text.size())
      return false;
    std::size_t End = Text.find('\n', Pos);
    if (End == std::string::npos) {
      Line = Text.substr(Pos);
      Pos = Text.size();
    } else {
      Line = Text.substr(Pos, End - Pos);
      Pos = End + 1;
    }
    return true;
  }

  /// Everything after the last line returned by next().
  std::string rest() const { return Text.substr(Pos); }

private:
  const std::string &Text;
  std::size_t Pos = 0;
};

bool fail(std::string *Err, const std::string &Message) {
  if (Err)
    *Err = Message;
  return false;
}

/// "key: value" split; returns false when \p Line lacks the separator.
bool splitHeader(const std::string &Line, std::string &Key,
                 std::string &Value) {
  std::size_t Colon = Line.find(": ");
  if (Colon == std::string::npos) {
    // Bare "key:" section markers have no value.
    if (!Line.empty() && Line.back() == ':') {
      Key = Line.substr(0, Line.size() - 1);
      Value.clear();
      return true;
    }
    return false;
  }
  Key = Line.substr(0, Colon);
  Value = Line.substr(Colon + 2);
  return true;
}

bool parseUnsigned(const std::string &S, unsigned long long &Out) {
  if (S.empty())
    return false;
  auto R = std::from_chars(S.data(), S.data() + S.size(), Out);
  return R.ec == std::errc() && R.ptr == S.data() + S.size();
}

bool parseExactDouble(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  auto R = std::from_chars(S.data(), S.data() + S.size(), Out);
  return R.ec == std::errc() && R.ptr == S.data() + S.size();
}

const char TelemetryEndMarker[] = "end-telemetry";

} // namespace

std::uint32_t ccra::wireChecksum(const std::string &Payload) {
  std::uint32_t H = 2166136261u;
  for (unsigned char C : Payload) {
    H ^= C;
    H *= 16777619u;
  }
  return H;
}

void ccra::encodeFrame(const Frame &F, std::string &Out) {
  Out.reserve(Out.size() + WireHeaderSize + F.Payload.size());
  putU32(Out, WireMagic);
  putU16(Out, WireVersion);
  putU16(Out, static_cast<std::uint16_t>(F.Type));
  putU32(Out, static_cast<std::uint32_t>(F.Payload.size()));
  putU32(Out, wireChecksum(F.Payload));
  Out += F.Payload;
}

FrameReadStatus ccra::decodeFrameHeader(const unsigned char *Bytes,
                                        std::size_t MaxPayload,
                                        FrameHeader &Out, std::string *Err) {
  if (getU32(Bytes) != WireMagic) {
    if (Err)
      *Err = "bad frame magic";
    return FrameReadStatus::Malformed;
  }
  if (getU16(Bytes + 4) != WireVersion) {
    if (Err)
      *Err = "unsupported protocol version";
    return FrameReadStatus::Malformed;
  }
  std::uint16_t Type = getU16(Bytes + 6);
  if (!validFrameType(Type)) {
    if (Err)
      *Err = "unknown frame type";
    return FrameReadStatus::Malformed;
  }
  Out.Type = static_cast<FrameType>(Type);
  Out.Length = getU32(Bytes + 8);
  Out.Checksum = getU32(Bytes + 12);
  if (Out.Length > MaxPayload) {
    if (Err)
      *Err = "frame payload over limit";
    return FrameReadStatus::TooLarge;
  }
  return FrameReadStatus::Ok;
}

FrameReadStatus ccra::readFrame(Socket &S, Frame &Out, std::size_t MaxPayload,
                                int IdleTimeoutMs, int FrameTimeoutMs,
                                std::string *Err) {
  unsigned char Header[WireHeaderSize];
  // First byte separately: a clean close between frames is Eof, a close
  // inside the header is a torn frame, and an idle wait consumes nothing.
  IoStatus St = S.recvAll(Header, 1, IdleTimeoutMs, Err);
  if (St == IoStatus::Closed)
    return FrameReadStatus::Eof;
  if (St == IoStatus::Timeout)
    return FrameReadStatus::Idle;
  if (St != IoStatus::Ok)
    return FrameReadStatus::IoError;

  St = S.recvAll(Header + 1, WireHeaderSize - 1, FrameTimeoutMs, Err);
  if (St == IoStatus::Closed)
    return FrameReadStatus::Malformed; // torn header
  if (St == IoStatus::Timeout)
    return FrameReadStatus::Timeout;
  if (St != IoStatus::Ok)
    return FrameReadStatus::IoError;

  FrameHeader H;
  FrameReadStatus HS = decodeFrameHeader(Header, MaxPayload, H, Err);
  if (HS != FrameReadStatus::Ok)
    return HS;

  Out.Type = H.Type;
  Out.Payload.resize(H.Length);
  if (H.Length > 0) {
    St = S.recvAll(Out.Payload.data(), H.Length, FrameTimeoutMs, Err);
    if (St == IoStatus::Closed)
      return FrameReadStatus::Malformed; // torn payload
    if (St == IoStatus::Timeout)
      return FrameReadStatus::Timeout;
    if (St != IoStatus::Ok)
      return FrameReadStatus::IoError;
  }
  if (wireChecksum(Out.Payload) != H.Checksum) {
    if (Err)
      *Err = "payload checksum mismatch";
    return FrameReadStatus::Malformed;
  }
  return FrameReadStatus::Ok;
}

IoStatus ccra::writeFrame(Socket &S, const Frame &F, int TimeoutMs,
                          std::string *Err) {
  std::string Wire;
  encodeFrame(F, Wire);
  return S.sendAll(Wire.data(), Wire.size(), TimeoutMs, Err);
}

std::string ccra::formatExactDouble(double V) {
  char Buf[64];
  auto R = std::to_chars(Buf, Buf + sizeof(Buf), V);
  return std::string(Buf, R.ptr);
}

// --- Hello ---------------------------------------------------------------

std::string ccra::encodeHello(const HelloInfo &H) {
  std::string Out;
  Out += "server: " + H.ServerInfo + "\n";
  Out += "protocol: " + std::to_string(H.Protocol) + "\n";
  Out += "max-payload: " + std::to_string(H.MaxPayloadBytes) + "\n";
  Out += "queue: " + std::to_string(H.QueueCapacity) + "\n";
  Out += "batch: " + std::to_string(H.MaxBatch) + "\n";
  if (H.ProtocolMinor > 0) {
    // v1.1 capability fields; a v1.0 hello carries none of them and a
    // v1.0 parser skips them as unknown keys.
    Out += "minor: " + std::to_string(H.ProtocolMinor) + "\n";
    Out += "cache: " + std::string(H.CacheEnabled ? "1" : "0") + "\n";
    Out += "shards: " + std::to_string(H.Shards) + "\n";
  }
  if (H.ProtocolMinor > 1) {
    // v1.2: codec negotiation. Same discipline — old parsers skip it, and
    // its absence parses as "text only" (MaxCodec = 1).
    Out += "codec-max: " + std::to_string(H.MaxCodec) + "\n";
  }
  return Out;
}

bool ccra::parseHello(const std::string &Payload, HelloInfo &Out,
                      std::string *Err) {
  Out = HelloInfo();
  Out.ServerInfo.clear();
  LineScanner Lines(Payload);
  std::string Line, Key, Value;
  while (Lines.next(Line)) {
    if (Line.empty())
      continue;
    if (!splitHeader(Line, Key, Value))
      return fail(Err, "malformed hello line '" + Line + "'");
    unsigned long long N = 0;
    if (Key == "server") {
      Out.ServerInfo = Value;
    } else if (Key == "protocol") {
      if (!parseUnsigned(Value, N))
        return fail(Err, "bad protocol number");
      Out.Protocol = static_cast<std::uint16_t>(N);
    } else if (Key == "max-payload") {
      if (!parseUnsigned(Value, N))
        return fail(Err, "bad max-payload");
      Out.MaxPayloadBytes = static_cast<std::size_t>(N);
    } else if (Key == "queue") {
      if (!parseUnsigned(Value, N))
        return fail(Err, "bad queue");
      Out.QueueCapacity = static_cast<unsigned>(N);
    } else if (Key == "batch") {
      if (!parseUnsigned(Value, N))
        return fail(Err, "bad batch");
      Out.MaxBatch = static_cast<unsigned>(N);
    } else if (Key == "minor") {
      if (!parseUnsigned(Value, N))
        return fail(Err, "bad minor");
      Out.ProtocolMinor = static_cast<std::uint16_t>(N);
    } else if (Key == "cache") {
      Out.CacheEnabled = Value == "1";
    } else if (Key == "shards") {
      if (!parseUnsigned(Value, N))
        return fail(Err, "bad shards");
      Out.Shards = static_cast<unsigned>(N);
    } else if (Key == "codec-max") {
      if (!parseUnsigned(Value, N))
        return fail(Err, "bad codec-max");
      Out.MaxCodec = static_cast<std::uint16_t>(N);
    }
    // Unknown keys are ignored: the hello may grow fields.
  }
  return true;
}

// --- AllocRequest --------------------------------------------------------

std::string ccra::encodeAllocRequest(const AllocRequest &R) {
  std::string Out;
  Out += "config: " + std::to_string(R.Config.IntCallerSave) + "," +
         std::to_string(R.Config.FloatCallerSave) + "," +
         std::to_string(R.Config.IntCalleeSave) + "," +
         std::to_string(R.Config.FloatCalleeSave) + "\n";
  // Not frequencyModeName(): that renders Profile as "dynamic" for the
  // tables; the wire grammar names the enumerator.
  Out += std::string("mode: ") +
         (R.Mode == FrequencyMode::Static ? "static" : "profile") + "\n";
  if (R.DeadlineMs > 0)
    Out += "deadline-ms: " + std::to_string(R.DeadlineMs) + "\n";
  // canonicalKey, not serializeAllocatorOptions: the wire carries behavior,
  // not execution strategy (see AllocRequest::Options).
  Out += "options: " + R.Options.canonicalKey() + "\n";
  Out += "module:\n";
  Out += R.ModuleText;
  return Out;
}

bool ccra::parseAllocRequest(const std::string &Payload, AllocRequest &Out,
                             std::string *Err) {
  Out = AllocRequest();
  LineScanner Lines(Payload);
  std::string Line, Key, Value;
  bool SawModule = false;
  while (Lines.next(Line)) {
    if (Line.empty())
      continue;
    if (!splitHeader(Line, Key, Value))
      return fail(Err, "malformed request line '" + Line + "'");
    if (Key == "module") {
      Out.ModuleText = Lines.rest();
      SawModule = true;
      break;
    }
    if (Key == "config") {
      unsigned Ri, Rf, Ei, Ef;
      if (std::sscanf(Value.c_str(), "%u,%u,%u,%u", &Ri, &Rf, &Ei, &Ef) != 4)
        return fail(Err, "bad config '" + Value + "'");
      Out.Config = RegisterConfig(Ri, Rf, Ei, Ef);
    } else if (Key == "mode") {
      if (Value == "profile")
        Out.Mode = FrequencyMode::Profile;
      else if (Value == "static")
        Out.Mode = FrequencyMode::Static;
      else
        return fail(Err, "bad mode '" + Value + "'");
    } else if (Key == "deadline-ms") {
      unsigned long long N = 0;
      if (!parseUnsigned(Value, N))
        return fail(Err, "bad deadline-ms '" + Value + "'");
      Out.DeadlineMs = static_cast<unsigned>(N);
    } else if (Key == "options") {
      std::string OptErr;
      if (!parseAllocatorOptions(Value, Out.Options, &OptErr))
        return fail(Err, "bad options: " + OptErr);
    } else {
      return fail(Err, "unknown request key '" + Key + "'");
    }
  }
  if (!SawModule)
    return fail(Err, "request has no module section");
  if (Out.ModuleText.empty())
    return fail(Err, "request module is empty");
  return true;
}

// --- AllocResponse -------------------------------------------------------

std::string ccra::encodeAllocResponse(const AllocResponse &R) {
  std::string Out;
  Out.reserve(R.AllocatedIr.size() + 96 * R.Functions.size() + 4096);
  Out += "costs: " + formatExactDouble(R.Totals.Spill) + " " +
         formatExactDouble(R.Totals.CallerSave) + " " +
         formatExactDouble(R.Totals.CalleeSave) + " " +
         formatExactDouble(R.Totals.Shuffle) + "\n";
  Out += "functions: " + std::to_string(R.Functions.size()) + "\n";
  for (const FunctionSummary &F : R.Functions) {
    Out += "function: " + F.Name + " " + formatExactDouble(F.Costs.Spill) +
           " " + formatExactDouble(F.Costs.CallerSave) + " " +
           formatExactDouble(F.Costs.CalleeSave) + " " +
           formatExactDouble(F.Costs.Shuffle) + " " +
           std::to_string(F.Rounds) + " " + std::to_string(F.SpilledRanges) +
           " " + std::to_string(F.VoluntarySpills) + " " +
           std::to_string(F.CoalescedMoves) + " " +
           std::to_string(F.CalleeRegsPaid) + "\n";
  }
  Out += "telemetry:\n";
  Out += R.Telemetry.toJson();
  if (Out.empty() || Out.back() != '\n')
    Out += '\n';
  Out += TelemetryEndMarker;
  Out += '\n';
  Out += "ir:\n";
  Out += R.AllocatedIr;
  return Out;
}

bool ccra::parseAllocResponse(const std::string &Payload, AllocResponse &Out,
                              std::string *Err) {
  Out = AllocResponse();
  LineScanner Lines(Payload);
  std::string Line, Key, Value;
  unsigned long long DeclaredFunctions = 0;
  bool SawIr = false;
  while (Lines.next(Line)) {
    if (Line.empty())
      continue;
    if (!splitHeader(Line, Key, Value))
      return fail(Err, "malformed response line '" + Line + "'");
    if (Key == "costs") {
      std::istringstream IS(Value);
      std::string A, B, C, D;
      if (!(IS >> A >> B >> C >> D) ||
          !parseExactDouble(A, Out.Totals.Spill) ||
          !parseExactDouble(B, Out.Totals.CallerSave) ||
          !parseExactDouble(C, Out.Totals.CalleeSave) ||
          !parseExactDouble(D, Out.Totals.Shuffle))
        return fail(Err, "bad costs line");
    } else if (Key == "functions") {
      if (!parseUnsigned(Value, DeclaredFunctions))
        return fail(Err, "bad functions count");
    } else if (Key == "function") {
      std::istringstream IS(Value);
      FunctionSummary F;
      std::string S0, S1, S2, S3;
      if (!(IS >> F.Name >> S0 >> S1 >> S2 >> S3 >> F.Rounds >>
            F.SpilledRanges >> F.VoluntarySpills >> F.CoalescedMoves >>
            F.CalleeRegsPaid) ||
          !parseExactDouble(S0, F.Costs.Spill) ||
          !parseExactDouble(S1, F.Costs.CallerSave) ||
          !parseExactDouble(S2, F.Costs.CalleeSave) ||
          !parseExactDouble(S3, F.Costs.Shuffle))
        return fail(Err, "bad function line '" + Value + "'");
      Out.Functions.push_back(std::move(F));
    } else if (Key == "telemetry") {
      std::string Json;
      bool Terminated = false;
      while (Lines.next(Line)) {
        if (Line == TelemetryEndMarker) {
          Terminated = true;
          break;
        }
        Json += Line;
        Json += '\n';
      }
      if (!Terminated)
        return fail(Err, "unterminated telemetry section");
      if (!TelemetrySnapshot::fromJson(Json, Out.Telemetry))
        return fail(Err, "bad telemetry json");
    } else if (Key == "ir") {
      Out.AllocatedIr = Lines.rest();
      SawIr = true;
      break;
    } else {
      return fail(Err, "unknown response key '" + Key + "'");
    }
  }
  if (!SawIr)
    return fail(Err, "response has no ir section");
  if (Out.Functions.size() != DeclaredFunctions)
    return fail(Err, "function count mismatch");
  return true;
}

// --- Error ---------------------------------------------------------------

std::string ccra::encodeError(const ErrorResponse &E) {
  return "code: " + E.Code + "\n" + E.Message;
}

bool ccra::parseError(const std::string &Payload, ErrorResponse &Out) {
  Out = ErrorResponse();
  LineScanner Lines(Payload);
  std::string Line, Key, Value;
  if (!Lines.next(Line) || !splitHeader(Line, Key, Value) || Key != "code")
    return false;
  Out.Code = Value;
  Out.Message = Lines.rest();
  return true;
}
