//===- service/BinaryCodec.cpp --------------------------------------------===//

#include "service/BinaryCodec.h"

#include "ir/IRBinary.h"

#include <cstdio>

using namespace ccra;

namespace {

bool fail(std::string *Err, const std::string &Message) {
  if (Err)
    *Err = Message;
  return false;
}

/// Shared with the v1 encoder by construction: the header section of both
/// payload forms is identical so the two parsers stay trivially in sync.
std::string encodeRequestHeaders(const AllocRequest &R) {
  std::string Out;
  Out += "config: " + std::to_string(R.Config.IntCallerSave) + "," +
         std::to_string(R.Config.FloatCallerSave) + "," +
         std::to_string(R.Config.IntCalleeSave) + "," +
         std::to_string(R.Config.FloatCalleeSave) + "\n";
  Out += std::string("mode: ") +
         (R.Mode == FrequencyMode::Static ? "static" : "profile") + "\n";
  if (R.DeadlineMs > 0)
    Out += "deadline-ms: " + std::to_string(R.DeadlineMs) + "\n";
  Out += "options: " + R.Options.canonicalKey() + "\n";
  return Out;
}

} // namespace

std::string ccra::encodeAllocRequestV2(const AllocRequest &R) {
  std::string Out = encodeRequestHeaders(R);
  Out += "module-bytes: " + std::to_string(R.ModuleBinary.size()) + "\n";
  Out += R.ModuleBinary;
  return Out;
}

bool ccra::encodeAllocRequestV2(AllocRequest &R, const Module &M,
                                std::string &Out, std::string *Err) {
  R.ModuleText.clear();
  if (!encodeModuleBinary(M, R.ModuleBinary, Err))
    return false;
  Out = encodeAllocRequestV2(R);
  return true;
}

bool ccra::parseAllocRequestV2(const std::string &Payload, AllocRequest &Out,
                               std::string *Err) {
  Out = AllocRequest();
  std::size_t Pos = 0;
  bool SawModule = false;
  while (Pos < Payload.size()) {
    std::size_t End = Payload.find('\n', Pos);
    if (End == std::string::npos)
      End = Payload.size();
    std::string Line = Payload.substr(Pos, End - Pos);
    Pos = End == Payload.size() ? End : End + 1;
    if (Line.empty())
      continue;
    std::size_t Colon = Line.find(": ");
    if (Colon == std::string::npos)
      return fail(Err, "malformed request line '" + Line + "'");
    std::string Key = Line.substr(0, Colon);
    std::string Value = Line.substr(Colon + 2);
    if (Key == "module-bytes") {
      // The byte count is explicit (not "rest of payload") so a torn or
      // padded payload is detected here rather than surfacing as a module
      // decode error with a misleading message.
      unsigned long long N = 0;
      if (std::sscanf(Value.c_str(), "%llu", &N) != 1 ||
          std::to_string(N) != Value)
        return fail(Err, "bad module-bytes count '" + Value + "'");
      if (N != Payload.size() - Pos)
        return fail(Err, "module-bytes count does not match payload");
      Out.ModuleBinary = Payload.substr(Pos);
      SawModule = true;
      break;
    }
    if (Key == "config") {
      unsigned Ri, Rf, Ei, Ef;
      if (std::sscanf(Value.c_str(), "%u,%u,%u,%u", &Ri, &Rf, &Ei, &Ef) != 4)
        return fail(Err, "bad config '" + Value + "'");
      Out.Config = RegisterConfig(Ri, Rf, Ei, Ef);
    } else if (Key == "mode") {
      if (Value == "profile")
        Out.Mode = FrequencyMode::Profile;
      else if (Value == "static")
        Out.Mode = FrequencyMode::Static;
      else
        return fail(Err, "bad mode '" + Value + "'");
    } else if (Key == "deadline-ms") {
      unsigned long long N = 0;
      if (std::sscanf(Value.c_str(), "%llu", &N) != 1)
        return fail(Err, "bad deadline-ms '" + Value + "'");
      Out.DeadlineMs = static_cast<unsigned>(N);
    } else if (Key == "options") {
      std::string OptErr;
      if (!parseAllocatorOptions(Value, Out.Options, &OptErr))
        return fail(Err, "bad options: " + OptErr);
    } else {
      return fail(Err, "unknown request key '" + Key + "'");
    }
  }
  if (!SawModule)
    return fail(Err, "request has no module-bytes section");
  if (Out.ModuleBinary.empty())
    return fail(Err, "request module is empty");
  return true;
}
