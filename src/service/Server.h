//===- service/Server.h - Networked allocation service ----------*- C++ -*-===//
///
/// \file
/// A long-lived allocation daemon: keeps warm engine substrate resident
/// and feeds it a stream of allocation requests arriving over a
/// Unix-domain or loopback-TCP socket, speaking the framed protocol of
/// service/WireProtocol.h.
///
/// Architecture (one box per thread kind):
///
///   event loop (ONE thread, epoll) ──> content-addressed cache
///     accepts, reassembles frames,       │hit          │miss
///     parses, admits ◄── responses ◄─────┘   consistent-hash ring
///     SHED / errors written in line              │
///                                     shard 0 .. shard N-1, each:
///                                       bounded queue
///                                       batch former thread
///                                       runAllocationBatch over a
///                                       private thread pool
///
/// - **Connections.** service/EventLoop.h multiplexes every client over
///   one epoll thread: connection count is decoupled from thread count,
///   so ten thousand mostly-idle connections cost table entries, not
///   stacks (the C10k soak in bench/perf_service.cpp holds exactly that).
///   Frame reassembly, write buffering, and both deadline classes (the
///   mid-frame budget and the slow-client write budget) live there.
/// - **Admission.** The loop's frame handler parses requests (textual v1
///   or binary v2; service/BinaryCodec.h), consults the cache, and either
///   answers in line (hit, malformed, SHED, draining) or enqueues and
///   marks the connection in-flight. Parse and IR verification happen on
///   the loop thread so the queues only ever hold admissible work — the
///   binary codec exists to keep that stage cheap (no text parse; the
///   module stays encoded until a cache miss proves decoding necessary).
/// - **Caching.** Allocation is deterministic (the oracle lattice proves
///   bit-identity across every engine configuration), so each response is
///   a pure function of (module bytes, canonical options, config, mode).
///   Repeat requests are served straight from the AllocationCache — no
///   parse, no IR verify, no engine run, byte-identical to a cold run.
/// - **Sharding.** Cold requests dispatch to one of Config.Shards worker
///   shards through a consistent-hash ring over the module-bytes hash, so
///   a hot module keeps hitting the same warm shard while distinct
///   modules spread across cores. Shards live in this process: see
///   DESIGN.md ("Threads, not processes") — each owns a PRIVATE thread
///   pool because the pool's scratch-arena slot discipline allows one
///   outside submitter per pool, and determinism means shards can share
///   the one cache with no coherence protocol.
/// - **Backpressure.** Each shard's queue is bounded (QueueCapacity split
///   evenly); when full an arriving request is answered immediately with
///   an explicit SHED frame instead of being buffered without limit.
/// - **Batching.** Each shard's batch former takes whatever is queued (up
///   to MaxBatch) and runs it as ONE engine grid pass over the shard's
///   pool; responses flush per item as they finish, not when the batch
///   drains.
/// - **Deadlines.** A request may carry `deadline-ms`; if it is still
///   queued when the deadline expires it is answered with an Error frame
///   ("deadline") instead of occupying the engine.
/// - **Graceful degradation / drain.** requestDrain() (the daemon wires
///   SIGTERM to it) stops accepting, drops connections owed nothing,
///   finishes in-flight work, flushes those responses, then closes
///   everything; wait() returns once the server is fully quiesced.
///   Batchers exit once the loop confirms admissions are closed and their
///   queues are empty — all enqueues happen on the loop thread, so that
///   confirmation is a simple happens-before, not a count of connections.
///
/// A STATS request returns the server-wide telemetry: "serve."
/// operational counters, the "cache." and "shard." namespaces of the
/// cache-and-shard tier, plus the merged engine telemetry of everything
/// allocated. ServerTestHooks mirrors the fuzz subsystem's InjectedFault:
/// tests force queue overflow, mid-request worker failure, and batcher
/// stalls without needing to win races.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SERVICE_SERVER_H
#define CCRA_SERVICE_SERVER_H

#include "service/AllocationCache.h"
#include "service/EventLoop.h"
#include "service/Sharding.h"
#include "service/WireProtocol.h"
#include "support/Telemetry.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ccra {

class Module;
class ThreadPool;

struct ServerConfig {
  /// Exactly one transport: a Unix-domain socket path, or (when UnixPath
  /// is empty) loopback TCP on TcpPort (0 = ephemeral; boundPort()).
  std::string UnixPath;
  int TcpPort = 0;

  unsigned PoolThreads = 0;  ///< total engine pool width (0 = hardware),
                             ///< split evenly across shards
  unsigned QueueCapacity = 64; ///< total; split evenly across shards
  unsigned MaxBatch = 8;
  std::size_t MaxPayloadBytes = 16u << 20;
  int WriteTimeoutMs = 5000; ///< slow-client response write budget
  int AcceptBacklog = 64;

  /// Worker shards behind the consistent-hash dispatcher.
  unsigned Shards = 1;
  /// Content-addressed allocation cache budget; 0 disables the cache.
  std::size_t CacheBytes = 64u << 20;
};

/// Test-only fault injection (all hooks optional, called concurrently).
struct ServerTestHooks {
  /// Treat the queue as full for this enqueue → SHED response.
  std::function<bool()> ForceQueueOverflow;
  /// Fail this request mid-worker → Error("fault") response; the rest of
  /// its batch completes normally.
  std::function<bool(const AllocRequest &)> FailRequest;
  /// Called by every batch former before it drains its queue (tests stall
  /// here to make deadlines expire deterministically).
  std::function<void()> BeforeBatch;
};

class AllocationServer {
public:
  explicit AllocationServer(ServerConfig Config,
                            ServerTestHooks Hooks = ServerTestHooks());
  ~AllocationServer();

  AllocationServer(const AllocationServer &) = delete;
  AllocationServer &operator=(const AllocationServer &) = delete;

  /// Binds the transport and starts the event loop and batcher threads.
  /// Returns false with a diagnostic on bind failure.
  bool start(std::string *Err);

  /// Begins graceful drain (idempotent, any thread, including after
  /// SIGTERM via a self-pipe in the daemon): stop accepting, finish
  /// in-flight work, flush responses, close. Does not block.
  void requestDrain();

  /// Blocks until the server has fully quiesced (all threads joined). The
  /// destructor calls requestDrain() + wait() if still running.
  void wait();

  bool draining() const { return Draining.load(); }

  /// TCP only: the port actually bound (for TcpPort = 0).
  int boundPort() const { return BoundPort; }

  /// Server-wide telemetry: "serve." counters, the "cache." / "shard."
  /// namespaces, and merged engine telemetry. What a STATS request
  /// returns.
  TelemetrySnapshot stats() const;

private:
  struct PendingRequest {
    AllocRequest Request;
    /// Parsed + IR-verified on the loop thread, so the queue only ever
    /// holds admissible work and malformed modules are rejected without
    /// occupying the batch former.
    std::unique_ptr<Module> M;
    /// allocationCacheKey of the request; empty when the cache is off.
    /// Computed once at admission, reused for the publish.
    std::string CacheKey;
    std::chrono::steady_clock::time_point Arrival;
    /// The event-loop connection awaiting this response; the batch former
    /// answers with Loop.postResponse(ConnId, ...).
    std::uint64_t ConnId = 0;
  };

  /// One worker shard: a bounded queue, a batch former, and a PRIVATE
  /// thread pool (the pool's per-worker scratch arenas tolerate exactly
  /// one non-worker submitter, so batchers cannot share a pool).
  struct Shard {
    mutable std::mutex QueueMutex;
    std::condition_variable QueueReady;
    std::deque<std::unique_ptr<PendingRequest>> Queue;
    std::unique_ptr<ThreadPool> Pool;
    std::thread Batcher;
    std::atomic<std::uint64_t> Dispatched{0};
  };

  /// The event loop's frame handler: everything between a reassembled
  /// frame and a queued PendingRequest (runs on the loop thread).
  FrameDisposition handleFrame(std::uint64_t ConnId, Frame &In);
  void batcherLoop(Shard &S);
  /// Forms one batch from \p Taken and answers every item (per item, as
  /// each finishes), publishing successful results to the cache.
  void runBatch(Shard &S, std::vector<std::unique_ptr<PendingRequest>> Taken);
  Frame helloFrame() const;
  /// Wakes every shard's batcher (drain signal).
  void notifyAllShards();

  ServerConfig Config;
  ServerTestHooks Hooks;
  Telemetry Telem;

  EventLoop Loop;
  std::vector<std::unique_ptr<Shard>> Shards;
  ConsistentHashRing Ring;
  AllocationCache Cache;
  unsigned PerShardCapacity = 0;
  int BoundPort = -1;

  std::atomic<bool> Started{false};
  std::atomic<bool> Draining{false};
  /// Set on the loop thread once drain processing is done — after which
  /// no enqueue can ever happen again (they all run on that thread).
  /// Batchers exit when this is set and their queue is empty.
  std::atomic<bool> AdmissionsClosed{false};
};

} // namespace ccra

#endif // CCRA_SERVICE_SERVER_H
