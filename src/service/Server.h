//===- service/Server.h - Networked allocation service ----------*- C++ -*-===//
///
/// \file
/// A long-lived allocation daemon: keeps warm engine substrate resident
/// and feeds it a stream of allocation requests arriving over a
/// Unix-domain or loopback-TCP socket, speaking the framed protocol of
/// service/WireProtocol.h.
///
/// Architecture (one box per thread kind):
///
///   accept loop ──> connection threads ──> content-addressed cache
///                      │     ▲               │hit          │miss
///                      │     └── responses ◄─┘   consistent-hash ring
///                      │                              │
///                      │                    shard 0 .. shard N-1, each:
///                      └─ SHED / errors       bounded queue
///                         written directly    batch former thread
///                                             runAllocationBatch over a
///                                             private thread pool
///
/// - **Caching.** Allocation is deterministic (the oracle lattice proves
///   bit-identity across every engine configuration), so each response is
///   a pure function of (module text, canonical options, config, mode).
///   The connection thread hashes that tuple and serves repeat requests
///   straight from the AllocationCache — no parse, no IR verify, no
///   engine run, byte-identical to a cold allocation.
/// - **Sharding.** Cold requests dispatch to one of Config.Shards worker
///   shards through a consistent-hash ring over the module-text hash, so
///   a hot module keeps hitting the same warm shard while distinct
///   modules spread across cores. Shards live in this process: see
///   DESIGN.md ("Threads, not processes") — each owns a PRIVATE thread
///   pool because the pool's scratch-arena slot discipline allows one
///   outside submitter per pool, and determinism means shards can share
///   the one cache with no coherence protocol.
/// - **Backpressure.** Each shard's queue is bounded (QueueCapacity split
///   evenly); when full an arriving request is answered immediately with
///   an explicit SHED frame instead of being buffered without limit.
/// - **Batching.** Each shard's batch former takes whatever is queued (up
///   to MaxBatch) and runs it as ONE engine grid pass over the shard's
///   pool; responses flush per item as they finish, not when the batch
///   drains.
/// - **Deadlines.** A request may carry `deadline-ms`; if it is still
///   queued when the deadline expires it is answered with an Error frame
///   ("deadline") instead of occupying the engine.
/// - **Slow clients.** Every response write carries a timeout; a client
///   that stops reading loses its connection, never a server thread.
/// - **Graceful degradation / drain.** requestDrain() (the daemon wires
///   SIGTERM to it) stops accepting connections and new requests, lets
///   queued and in-flight work finish, flushes those responses, then
///   closes everything; wait() returns once the server is fully quiesced.
///
/// A STATS request returns the server-wide telemetry: "serve."
/// operational counters, the "cache." and "shard." namespaces of the
/// cache-and-shard tier, plus the merged engine telemetry of everything
/// allocated. ServerTestHooks mirrors the fuzz subsystem's InjectedFault:
/// tests force queue overflow, mid-request worker failure, and batcher
/// stalls without needing to win races.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SERVICE_SERVER_H
#define CCRA_SERVICE_SERVER_H

#include "service/AllocationCache.h"
#include "service/Sharding.h"
#include "service/WireProtocol.h"
#include "support/Telemetry.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ccra {

class Module;
class ThreadPool;

struct ServerConfig {
  /// Exactly one transport: a Unix-domain socket path, or (when UnixPath
  /// is empty) loopback TCP on TcpPort (0 = ephemeral; boundPort()).
  std::string UnixPath;
  int TcpPort = 0;

  unsigned PoolThreads = 0;  ///< total engine pool width (0 = hardware),
                             ///< split evenly across shards
  unsigned QueueCapacity = 64; ///< total; split evenly across shards
  unsigned MaxBatch = 8;
  std::size_t MaxPayloadBytes = 16u << 20;
  int WriteTimeoutMs = 5000; ///< slow-client response write budget
  int AcceptBacklog = 64;

  /// Worker shards behind the consistent-hash dispatcher.
  unsigned Shards = 1;
  /// Content-addressed allocation cache budget; 0 disables the cache.
  std::size_t CacheBytes = 64u << 20;
};

/// Test-only fault injection (all hooks optional, called concurrently).
struct ServerTestHooks {
  /// Treat the queue as full for this enqueue → SHED response.
  std::function<bool()> ForceQueueOverflow;
  /// Fail this request mid-worker → Error("fault") response; the rest of
  /// its batch completes normally.
  std::function<bool(const AllocRequest &)> FailRequest;
  /// Called by every batch former before it drains its queue (tests stall
  /// here to make deadlines expire deterministically).
  std::function<void()> BeforeBatch;
};

class AllocationServer {
public:
  explicit AllocationServer(ServerConfig Config,
                            ServerTestHooks Hooks = ServerTestHooks());
  ~AllocationServer();

  AllocationServer(const AllocationServer &) = delete;
  AllocationServer &operator=(const AllocationServer &) = delete;

  /// Binds the transport and starts the accept, connection, and batcher
  /// threads. Returns false with a diagnostic on bind failure.
  bool start(std::string *Err);

  /// Begins graceful drain (idempotent, any thread, including after
  /// SIGTERM via a self-pipe in the daemon): stop accepting, finish
  /// in-flight work, flush responses, close. Does not block.
  void requestDrain();

  /// Blocks until the server has fully quiesced (all threads joined). The
  /// destructor calls requestDrain() + wait() if still running.
  void wait();

  bool draining() const { return Draining.load(); }

  /// TCP only: the port actually bound (for TcpPort = 0).
  int boundPort() const;

  /// Server-wide telemetry: "serve." counters, the "cache." / "shard."
  /// namespaces, and merged engine telemetry. What a STATS request
  /// returns.
  TelemetrySnapshot stats() const;

private:
  struct PendingRequest {
    AllocRequest Request;
    /// Parsed + IR-verified in the connection thread, so the queue only
    /// ever holds admissible work and malformed modules are rejected
    /// without occupying the batch former.
    std::unique_ptr<Module> M;
    /// allocationCacheKey of the request; empty when the cache is off.
    /// Computed once in the connection thread, reused for the publish.
    std::string CacheKey;
    std::chrono::steady_clock::time_point Arrival;
    std::promise<Frame> Response;
  };

  /// One worker shard: a bounded queue, a batch former, and a PRIVATE
  /// thread pool (the pool's per-worker scratch arenas tolerate exactly
  /// one non-worker submitter, so batchers cannot share a pool).
  struct Shard {
    mutable std::mutex QueueMutex;
    std::condition_variable QueueReady;
    std::deque<std::unique_ptr<PendingRequest>> Queue;
    std::unique_ptr<ThreadPool> Pool;
    std::thread Batcher;
    std::atomic<std::uint64_t> Dispatched{0};
  };

  void acceptLoop();
  void connectionLoop(std::uint64_t Id, Socket Conn);
  /// Joins connection threads whose loop has returned. Called from the
  /// accept loop every iteration so a long-lived daemon under connection
  /// churn holds handles only for live connections, never one per
  /// connection ever served.
  void reapFinishedConns();
  void batcherLoop(Shard &S);
  /// Forms one batch from \p Taken and fulfills every promise (per item,
  /// as each finishes), publishing successful results to the cache.
  void runBatch(Shard &S, std::vector<std::unique_ptr<PendingRequest>> Taken);
  Frame helloFrame() const;
  /// Wakes every shard's batcher (drain and connection-exit signals).
  void notifyAllShards();

  ServerConfig Config;
  ServerTestHooks Hooks;
  Telemetry Telem;

  ListenSocket Listener;
  std::vector<std::unique_ptr<Shard>> Shards;
  ConsistentHashRing Ring;
  AllocationCache Cache;
  unsigned PerShardCapacity = 0;

  std::atomic<bool> Started{false};
  std::atomic<bool> Draining{false};

  std::thread AcceptThread;

  mutable std::mutex ConnMutex;
  /// Live connection threads by id; finished ones are reaped by the accept
  /// loop, stragglers joined in wait().
  std::unordered_map<std::uint64_t, std::thread> ConnThreads;
  /// Raw fds of live connections, so requestDrain() can shutdown(SHUT_RD)
  /// each one: a peer parked mid-frame (torn header, stalled stream) would
  /// otherwise hold drain hostage for the full frame-read budget. Writes
  /// stay open so in-flight responses still flush. Entries are erased
  /// (under ConnMutex, before the fd is closed) by the owning connection
  /// thread, so drain never touches a reused fd.
  std::unordered_map<std::uint64_t, int> ConnFds;
  std::vector<std::uint64_t> FinishedConns; ///< ids ready to join
  std::uint64_t NextConnId = 0;             ///< guarded by ConnMutex
  /// Batchers exit only once this reaches zero during drain; connection
  /// threads notify every shard on exit (see notifyAllShards).
  std::atomic<unsigned> ActiveConnections{0};
};

} // namespace ccra

#endif // CCRA_SERVICE_SERVER_H
