//===- service/Client.h - Allocation service client -------------*- C++ -*-===//
///
/// \file
/// The client side of the allocation service: connects over a Unix-domain
/// or loopback-TCP socket, consumes the server's Hello, and issues
/// allocate/stats RPCs. One outstanding request per connection (the
/// protocol is strictly request/response); open several clients for
/// concurrency.
///
/// Shedding and server-reported errors are first-class outcomes, not
/// transport failures: RpcStatus::Shed tells a caller to back off and
/// retry, RpcStatus::Rejected carries the server's ErrorResponse (code +
/// message), and RpcStatus::Transport means the connection itself broke.
///
/// sendRawBytes/readResponse exist for protocol-robustness tests that must
/// write torn or garbage frames a well-behaved client never produces.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SERVICE_CLIENT_H
#define CCRA_SERVICE_CLIENT_H

#include "service/WireProtocol.h"
#include "support/Sockets.h"

#include <string>

namespace ccra {

enum class RpcStatus {
  Ok,
  Shed,      ///< server queue full; retry with backoff
  Rejected,  ///< server answered with an Error frame (see ErrorResponse)
  Transport, ///< connection failed, timed out, or desynced
};

class ServiceClient {
public:
  ServiceClient() = default;

  /// Connects and reads the server's Hello frame. Returns false with a
  /// diagnostic on failure.
  bool connectUnix(const std::string &Path, std::string *Err = nullptr);
  bool connectTcp(int Port, std::string *Err = nullptr);

  bool connected() const { return Conn.valid(); }
  void close() { Conn.close(); }

  /// The Hello received on connect (valid once connect*() succeeded).
  const HelloInfo &hello() const { return Hello; }

  /// Per-operation total deadline (default 30 s; -1 blocks forever).
  void setTimeoutMs(int Ms) { TimeoutMs = Ms; }

  /// Runs one allocation. On Ok fills \p Out; on Rejected fills
  /// \p ServerError; on Shed \p ServerError.Message carries the server's
  /// retry hint; on Transport \p Err explains and the connection is dead.
  /// A request with ModuleBinary set goes out as an AllocRequestV2 frame;
  /// that requires the server's Hello to advertise codec-max >= 2 (check
  /// hello().MaxCodec before building binary requests — a request against
  /// an older server fails as Transport without sending anything).
  RpcStatus allocate(const AllocRequest &Request, AllocResponse &Out,
                     ErrorResponse &ServerError, std::string *Err = nullptr);

  /// Fetches server-wide telemetry (a STATS request).
  RpcStatus stats(TelemetrySnapshot &Out, ErrorResponse &ServerError,
                  std::string *Err = nullptr);

  /// Test hook: writes \p Bytes verbatim (torn/garbage frames).
  bool sendRawBytes(const std::string &Bytes, std::string *Err = nullptr);
  /// Test hook: reads one frame; returns the raw read status.
  FrameReadStatus readResponse(Frame &Out, std::string *Err = nullptr);

private:
  bool finishConnect(std::string *Err);
  /// Sends \p Request and reads the one response frame into \p In.
  RpcStatus roundTrip(const Frame &Request, Frame &In,
                      ErrorResponse &ServerError, std::string *Err);
  /// Largest response frame this client will buffer. Derived from the
  /// server's advertised MaxPayloadBytes (plus slack for response
  /// overhead) so a corrupted or hostile length field cannot make the
  /// client allocate up to 4 GiB before the checksum is even validated.
  std::size_t maxResponseBytes() const;

  Socket Conn;
  HelloInfo Hello;
  int TimeoutMs = 30000;
};

} // namespace ccra

#endif // CCRA_SERVICE_CLIENT_H
