//===- service/EventLoop.cpp ----------------------------------------------===//

#include "service/EventLoop.h"

#include "support/Telemetry.h"

using namespace ccra;

namespace {

/// Registration cookies for the loop's own fds; connection ids start at 16
/// so they can never collide.
constexpr std::uint64_t ListenerId = 0;
constexpr std::uint64_t WakeId = 1;
constexpr std::uint64_t TimerId = 2;

Frame errorFrame(const std::string &Code, const std::string &Message) {
  Frame F;
  F.Type = FrameType::Error;
  F.Payload = encodeError({Code, Message});
  return F;
}

} // namespace

EventLoop::EventLoop(EventLoopConfig Config, Telemetry *Telem)
    : Config(Config), Telem(Telem) {}

EventLoop::~EventLoop() {
  requestDrain();
  wait();
}

bool EventLoop::start(ListenSocket L, Frame HelloFrame, FrameHandler Handler,
                      std::function<void()> DrainStarted, std::string *Err) {
  if (Started.load()) {
    if (Err)
      *Err = "event loop already started";
    return false;
  }
  Listener = std::move(L);
  Hello = std::move(HelloFrame);
  OnFrame = std::move(Handler);
  OnDrainStarted = std::move(DrainStarted);

  if (!Ep.create(Err) || !Wake.create(Err) ||
      !Sweep.create(Config.SweepIntervalMs, Err))
    return false;
  if (!Ep.add(Listener.fd(), ListenerId, /*Read=*/true, /*Write=*/false, Err) ||
      !Ep.add(Wake.fd(), WakeId, true, false, Err) ||
      !Ep.add(Sweep.fd(), TimerId, true, false, Err))
    return false;

  Started.store(true);
  LoopThread = std::thread([this] { run(); });
  return true;
}

void EventLoop::requestDrain() {
  DrainRequested.store(true);
  if (Started.load())
    Wake.signal();
}

void EventLoop::wait() {
  if (LoopThread.joinable())
    LoopThread.join();
}

void EventLoop::postResponse(std::uint64_t ConnId, Frame Response) {
  {
    std::lock_guard<std::mutex> Lock(CompletionMutex);
    Completions.emplace_back(ConnId, std::move(Response));
  }
  if (!WakePending.exchange(true))
    Wake.signal();
}

void EventLoop::postResponseDeferred(std::uint64_t ConnId, Frame Response) {
  std::lock_guard<std::mutex> Lock(CompletionMutex);
  Completions.emplace_back(ConnId, std::move(Response));
}

void EventLoop::flushPosted() {
  bool Pending;
  {
    std::lock_guard<std::mutex> Lock(CompletionMutex);
    Pending = !Completions.empty();
  }
  if (Pending && !WakePending.exchange(true))
    Wake.signal();
}

void EventLoop::run() {
  std::vector<EpollEvent> Events;
  for (;;) {
    if (Ep.wait(Events, -1) < 0)
      break; // epoll itself broke; nothing recoverable remains
    for (const EpollEvent &Ev : Events) {
      switch (Ev.Data) {
      case ListenerId:
        acceptReady();
        break;
      case WakeId:
        Wake.drain();
        handleWake();
        break;
      case TimerId:
        Sweep.drain();
        sweepDeadlines();
        break;
      default:
        handleConnEvent(Ev.Data, Ev);
        break;
      }
    }
    if (Draining && Conns.empty())
      break;
  }
  // Whatever survives (loop killed by epoll failure) closes via RAII.
  Conns.clear();
  OpenConns.store(0);
  Listener.close();
}

void EventLoop::acceptReady() {
  if (Draining)
    return; // listener already closed; a stale event
  for (;;) {
    IoStatus Status = IoStatus::Error;
    Socket Sock = Listener.acceptNonBlocking(Status);
    if (Status == IoStatus::Timeout)
      return; // backlog drained
    if (Status != IoStatus::Ok) {
      // Transient failure (EMFILE/ENFILE under fd exhaustion). Returning
      // with the listener still armed would busy-spin: level-triggered
      // epoll re-reports the ready listener immediately. Disarm EPOLLIN
      // and let the sweep timer re-arm it, so exhaustion degrades into a
      // SweepIntervalMs-paced retry instead of 100% CPU.
      Ep.modify(Listener.fd(), ListenerId, /*Read=*/false, /*Write=*/false);
      ListenerDisarmed = true;
      return;
    }
    Telem->addCount(telemetry::ServeConnections);
    std::uint64_t Id = NextConnId++;
    Conn C;
    C.Sock = std::move(Sock);
    int Fd = C.Sock.fd();
    auto [It, Inserted] = Conns.emplace(Id, std::move(C));
    (void)Inserted;
    if (!Ep.add(Fd, Id, /*Read=*/true, /*Write=*/false)) {
      Conns.erase(It);
      continue;
    }
    It->second.ReadArmed = true;
    OpenConns.store(Conns.size());
    Telem->noteMax(telemetry::ServePeakConnections,
                   static_cast<double>(Conns.size()));
    queueWrite(Id, Hello);
  }
}

void EventLoop::handleConnEvent(std::uint64_t Id, const EpollEvent &Ev) {
  if (Ev.Writable) {
    flushWrites(Id);
    if (!Conns.count(Id))
      return;
    updateInterest(Id);
  }
  if (Ev.Readable) {
    readReady(Id);
    return;
  }
  if (Ev.Broken) {
    // EPOLLHUP/EPOLLERR with nothing readable: the peer is fully gone. An
    // InFlight connection's response is discarded when posted — same
    // outcome as the old server's EPIPE on the response write.
    closeConn(Id);
  }
}

void EventLoop::readReady(std::uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  char Buf[64 * 1024];
  for (;;) {
    IoStatus Status = IoStatus::Error;
    std::size_t N = C.Sock.recvSome(Buf, sizeof(Buf), Status);
    if (Status == IoStatus::Closed) {
      if (C.In.empty() && !C.Busy) {
        closeConn(Id); // clean close between frames
        return;
      }
      if (C.Busy) {
        // Half-closed peer still owed a response: suppress reads (already
        // off while Busy) and let the completion path flush and close.
        C.CloseAfterFlush = true;
        updateInterest(Id);
        return;
      }
      // Torn frame: answer if the pipe still works, then drop.
      Telem->addCount(telemetry::ServeMalformed);
      C.In.clear();
      C.MidFrame = false;
      C.CloseAfterFlush = true;
      queueWrite(Id, errorFrame("malformed", "torn frame"));
      return;
    }
    if (Status != IoStatus::Ok) {
      closeConn(Id);
      return;
    }
    if (N == 0)
      break; // would block; level-triggered epoll re-arms us
    bool WasIdle = C.In.empty() && !C.MidFrame;
    C.In.append(Buf, N);
    if (WasIdle) {
      // First byte of a new frame starts the mid-frame budget (the idle
      // wait before it is unbounded, exactly like the blocking reader).
      C.MidFrame = true;
      C.FrameDeadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Config.FrameTimeoutMs);
    }
  }
  processInput(Id);
}

void EventLoop::processInput(std::uint64_t Id) {
  for (;;) {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      return;
    Conn &C = It->second;
    if (C.Busy || C.CloseAfterFlush)
      break;
    if (C.In.empty()) {
      C.MidFrame = false;
      break;
    }
    if (!C.MidFrame) {
      // Leftover pipelined bytes begin the next frame right now.
      C.MidFrame = true;
      C.FrameDeadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Config.FrameTimeoutMs);
    }
    if (C.In.size() < WireHeaderSize)
      break;

    FrameHeader H;
    std::string Err;
    FrameReadStatus HS = decodeFrameHeader(
        reinterpret_cast<const unsigned char *>(C.In.data()),
        Config.MaxPayloadBytes, H, &Err);
    if (HS != FrameReadStatus::Ok) {
      // Garbage magic, alien version, unknown type, oversized declaration:
      // the stream cannot be resynchronized. Answer and close.
      Telem->addCount(telemetry::ServeMalformed);
      const char *Code =
          HS == FrameReadStatus::TooLarge ? "too-large" : "malformed";
      C.CloseAfterFlush = true;
      queueWrite(Id, errorFrame(Code, Err));
      return;
    }
    if (C.In.size() < WireHeaderSize + H.Length)
      break; // payload still arriving

    Frame In;
    In.Type = H.Type;
    In.Payload.assign(C.In, WireHeaderSize, H.Length);
    C.In.erase(0, WireHeaderSize + H.Length);
    C.MidFrame = false;
    if (wireChecksum(In.Payload) != H.Checksum) {
      Telem->addCount(telemetry::ServeMalformed);
      C.CloseAfterFlush = true;
      queueWrite(Id, errorFrame("malformed", "payload checksum mismatch"));
      return;
    }

    FrameDisposition D = OnFrame(Id, In);
    // The handler cannot touch the connection table, but queueWrite below
    // can close the connection; re-find on every iteration (above).
    switch (D.Action) {
    case FrameAction::Reply:
      queueWrite(Id, D.Response);
      continue;
    case FrameAction::ReplyClose: {
      auto It2 = Conns.find(Id);
      if (It2 == Conns.end())
        return;
      It2->second.CloseAfterFlush = true;
      queueWrite(Id, D.Response);
      return;
    }
    case FrameAction::InFlight: {
      auto It2 = Conns.find(Id);
      if (It2 == Conns.end())
        return;
      It2->second.Busy = true;
      updateInterest(Id);
      return;
    }
    case FrameAction::Close:
      closeConn(Id);
      return;
    }
  }
  updateInterest(Id);
}

void EventLoop::queueWrite(std::uint64_t Id, const Frame &F) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  bool WasEmpty = C.OutPos >= C.Out.size();
  encodeFrame(F, C.Out);
  if (WasEmpty) {
    // The write budget is a total deadline for everything queued from this
    // moment, matching sendAll's contract in the blocking server.
    C.WriteDeadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(Config.WriteTimeoutMs);
  }
  flushWrites(Id);
  if (Conns.count(Id))
    updateInterest(Id);
}

void EventLoop::flushWrites(std::uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  while (C.OutPos < C.Out.size()) {
    IoStatus Status = IoStatus::Error;
    std::size_t N = C.Sock.sendSome(C.Out.data() + C.OutPos,
                                    C.Out.size() - C.OutPos, Status);
    if (Status != IoStatus::Ok) {
      closeConn(Id);
      return;
    }
    if (N == 0)
      return; // would block; EPOLLOUT re-enters here
    C.OutPos += N;
  }
  C.Out.clear();
  C.OutPos = 0;
  if (C.CloseAfterFlush)
    closeConn(Id);
}

void EventLoop::updateInterest(std::uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  bool WantRead = !C.Busy && !C.CloseAfterFlush;
  bool WantWrite = C.OutPos < C.Out.size();
  if (WantRead == C.ReadArmed && WantWrite == C.WriteArmed)
    return;
  C.ReadArmed = WantRead;
  C.WriteArmed = WantWrite;
  Ep.modify(C.Sock.fd(), Id, WantRead, WantWrite);
}

void EventLoop::sweepDeadlines() {
  if (ListenerDisarmed && !Draining) {
    // Accept previously failed on fd exhaustion; closed connections may
    // have freed fds since. Re-arm and retry immediately — on another
    // failure acceptReady disarms again and the next sweep re-tries.
    ListenerDisarmed = false;
    Ep.modify(Listener.fd(), ListenerId, /*Read=*/true, /*Write=*/false);
    acceptReady();
  }
  auto Now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> Expired;
  for (const auto &Entry : Conns) {
    const Conn &C = Entry.second;
    if (C.MidFrame && Now >= C.FrameDeadline) {
      // Mid-frame stall: the stream is desynced, close without an answer
      // (the blocking reader's Timeout semantics).
      Expired.push_back(Entry.first);
      continue;
    }
    if (C.OutPos < C.Out.size() && Now >= C.WriteDeadline) {
      Telem->addCount(telemetry::ServeWriteTimeouts);
      Expired.push_back(Entry.first);
    }
  }
  for (std::uint64_t Id : Expired)
    closeConn(Id);
}

void EventLoop::handleWake() {
  // Disarm before swapping: a post that lands after the swap sees the flag
  // false and rings the doorbell again, so nothing is ever stranded.
  WakePending.store(false);
  std::vector<std::pair<std::uint64_t, Frame>> Done;
  {
    std::lock_guard<std::mutex> Lock(CompletionMutex);
    Done.swap(Completions);
  }
  for (auto &Entry : Done) {
    std::uint64_t Id = Entry.first;
    auto It = Conns.find(Id);
    if (It == Conns.end())
      continue; // connection died while its request ran
    Conn &C = It->second;
    C.Busy = false;
    if (Draining)
      C.CloseAfterFlush = true;
    queueWrite(Id, Entry.second);
    if (!Conns.count(Id))
      continue;
    // Pipelined bytes may already hold the next request.
    processInput(Id);
  }
  if (DrainRequested.load())
    beginDrain();
}

void EventLoop::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  // Refuse new connections the moment drain starts: close (and for Unix
  // sockets unlink) the listener so clients see ECONNREFUSED/ENOENT
  // instead of hanging in a never-accepted backlog.
  ListenerDisarmed = false;
  Ep.remove(Listener.fd());
  Listener.close();
  // A connection is owed something only while Busy (response pending) or
  // flushing. Everything else — idle, mid-frame, mid-garbage — closes now;
  // a wedged peer cannot hold drain hostage because no thread is parked on
  // it, the table entry just goes away.
  std::vector<std::uint64_t> Victims;
  for (auto &Entry : Conns) {
    Conn &C = Entry.second;
    if (C.Busy)
      continue; // completion path closes after flush (Draining is set)
    if (C.OutPos < C.Out.size()) {
      C.CloseAfterFlush = true;
      continue;
    }
    Victims.push_back(Entry.first);
  }
  for (std::uint64_t Id : Victims)
    closeConn(Id);
  // All admissions happen on this thread, so after this callback returns
  // no new work can ever reach the shard queues: the batchers' exit
  // condition (admissions closed + empty queue) is now monotone.
  if (OnDrainStarted)
    OnDrainStarted();
}

void EventLoop::closeConn(std::uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Ep.remove(It->second.Sock.fd());
  Conns.erase(It);
  OpenConns.store(Conns.size());
}
