//===- service/EventLoop.h - epoll connection reactor -----------*- C++ -*-===//
///
/// \file
/// The allocation server's connection engine: ONE thread multiplexing
/// every client connection over epoll, in place of the former
/// thread-per-connection model. Connection count is decoupled from thread
/// count — ten thousand mostly-idle connections cost table entries and
/// kernel fds, not stacks and schedulers — which is what lets the serving
/// benches soak the daemon at C10k.
///
/// Responsibilities split:
///
/// - The **loop** owns transport and framing: non-blocking accept, the
///   per-connection read state machine reassembling frames incrementally
///   (header, then payload, validated by the same decodeFrameHeader the
///   blocking reader uses), the write state machine (immediate send, spill
///   to a buffer armed on EPOLLOUT), and both deadline classes — a
///   mid-frame budget so a torn header cannot park a connection forever,
///   and a write budget so a client that stops reading loses its
///   connection, never the loop.
/// - The **server** (via FrameHandler, called on the loop thread) owns
///   payloads and policy: parse, cache lookup, admission to the shard
///   queues, SHED, drain refusal. A handler that admits work returns
///   InFlight; the shard's batch former later hands the finished frame
///   back with postResponse(), the loop's cross-thread completion path
///   (mutex queue + eventfd doorbell).
///
/// One request per connection is in flight at a time, exactly like the
/// thread-per-connection server this replaces: while a connection is
/// InFlight its EPOLLIN interest is dropped, so pipelined bytes sit in the
/// kernel buffer (and whatever the loop already buffered) until the
/// response flushes. That keeps per-connection ordering trivial and the
/// bounded queues the sole backpressure point.
///
/// Drain: requestDrain() (any thread) rings the doorbell; the loop closes
/// the listener, drops every connection with no response owed (idle,
/// mid-frame, or mid-garbage alike — the peer was promised nothing), marks
/// the rest close-after-flush, then invokes the OnDrainStarted callback so
/// the server can close admissions AFTER the last possible enqueue (all
/// enqueues happen on the loop thread, so the callback ordering is the
/// proof). The loop exits once draining and the connection table is empty.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SERVICE_EVENTLOOP_H
#define CCRA_SERVICE_EVENTLOOP_H

#include "service/WireProtocol.h"
#include "support/Sockets.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ccra {

class Telemetry;

/// What the frame handler tells the loop to do with a well-formed frame.
enum class FrameAction {
  /// Write Response, keep the connection reading.
  Reply,
  /// Write Response, close once it flushes (protocol errors that desync
  /// the stream, drain refusals).
  ReplyClose,
  /// The request was admitted to a queue; suspend reads until the owner
  /// hands the response back via postResponse().
  InFlight,
  /// Close immediately; nothing to write.
  Close,
};

struct FrameDisposition {
  FrameAction Action = FrameAction::Close;
  Frame Response;
};

struct EventLoopConfig {
  std::size_t MaxPayloadBytes = 16u << 20;
  /// Budget for flushing a response to a slow client.
  int WriteTimeoutMs = 5000;
  /// Budget for the rest of a frame once its first byte arrived.
  int FrameTimeoutMs = 30000;
  /// Deadline sweep granularity (timerfd period).
  int SweepIntervalMs = 100;
};

class EventLoop {
public:
  /// Called on the loop thread for every well-formed frame.
  using FrameHandler =
      std::function<FrameDisposition(std::uint64_t ConnId, Frame &In)>;

  /// \p Telem receives the transport-level counters (connections, stream
  /// malformations, write timeouts); payload-level counters stay with the
  /// frame handler.
  EventLoop(EventLoopConfig Config, Telemetry *Telem);
  ~EventLoop();

  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

  /// Takes ownership of the bound listener and starts the loop thread.
  /// \p Hello is written to every accepted connection. \p OnDrainStarted
  /// runs on the loop thread after drain processing (see file comment).
  bool start(ListenSocket Listener, Frame Hello, FrameHandler OnFrame,
             std::function<void()> OnDrainStarted, std::string *Err);

  /// Thread-safe, idempotent, non-blocking; see the file comment.
  void requestDrain();

  /// Joins the loop thread (after requestDrain(); returns immediately if
  /// never started).
  void wait();

  /// Thread-safe: hands the response for an InFlight connection back to
  /// the loop. If the connection died meanwhile the frame is discarded —
  /// the caller must not care (the old server's write-to-dead-peer EPIPE,
  /// one layer earlier).
  void postResponse(std::uint64_t ConnId, Frame Response);

  /// Like postResponse, but leaves the doorbell unrung: the frame sits in
  /// the completion queue until flushPosted() (or any other wakeup). Batch
  /// publishers use this so a batch rings the loop once instead of once
  /// per item — on a single-core host every ring preempts the publishing
  /// worker for a full scheduling round trip.
  void postResponseDeferred(std::uint64_t ConnId, Frame Response);

  /// Rings the doorbell if deferred completions are queued. Thread-safe;
  /// a spurious flush is a no-op.
  void flushPosted();

  /// Gauge: connections currently in the table (loop-thread maintained,
  /// sampled by STATS from other threads).
  std::size_t openConnections() const { return OpenConns.load(); }

private:
  struct Conn {
    Socket Sock;
    std::string In;       ///< reassembly buffer (unparsed stream bytes)
    std::string Out;      ///< unflushed response bytes
    std::size_t OutPos = 0;
    bool Busy = false;           ///< one InFlight request
    bool CloseAfterFlush = false;
    bool ReadArmed = false;      ///< current epoll interest
    bool WriteArmed = false;
    bool MidFrame = false;       ///< FrameDeadline is live
    std::chrono::steady_clock::time_point FrameDeadline{};
    std::chrono::steady_clock::time_point WriteDeadline{};
  };

  void run();
  void acceptReady();
  void handleConnEvent(std::uint64_t Id, const EpollEvent &Ev);
  void readReady(std::uint64_t Id);
  /// Runs the frame state machine over Conn::In until it needs more bytes,
  /// the connection goes Busy/closed, or a stream error ends it.
  void processInput(std::uint64_t Id);
  /// Appends the encoded frame and flushes as much as the socket takes.
  void queueWrite(std::uint64_t Id, const Frame &F);
  void flushWrites(std::uint64_t Id);
  void updateInterest(std::uint64_t Id);
  void sweepDeadlines();
  void handleWake();
  void beginDrain();
  void closeConn(std::uint64_t Id);

  EventLoopConfig Config;
  Telemetry *Telem;

  ListenSocket Listener;
  Frame Hello;
  FrameHandler OnFrame;
  std::function<void()> OnDrainStarted;

  EpollHandle Ep;
  WakeEvent Wake;
  TimerFd Sweep;
  std::thread LoopThread;

  /// Loop-thread state. Connection ids start above the reserved sentinel
  /// ids of the listener / doorbell / timer registrations.
  std::unordered_map<std::uint64_t, Conn> Conns;
  std::uint64_t NextConnId = 16;
  bool Draining = false;
  /// Listener EPOLLIN dropped after accept() failed on fd exhaustion
  /// (EMFILE/ENFILE); the sweep timer re-arms it. Keeping the listener
  /// armed would busy-spin: level-triggered epoll re-reports it forever.
  bool ListenerDisarmed = false;

  std::atomic<bool> Started{false};
  std::atomic<bool> DrainRequested{false};
  std::atomic<std::size_t> OpenConns{0};

  std::mutex CompletionMutex;
  std::vector<std::pair<std::uint64_t, Frame>> Completions;
  /// True while a completion wakeup is already in flight. postResponse
  /// only writes the doorbell eventfd on the false->true transition; the
  /// loop clears the flag before swapping Completions out, so a post that
  /// lands after the swap re-arms it. Without this, every response pays a
  /// write(2) that makes the loop thread runnable — on a single-core host
  /// the kernel preempts the publishing worker at that syscall, turning
  /// each post into a forced scheduling round trip.
  std::atomic<bool> WakePending{false};
};

} // namespace ccra

#endif // CCRA_SERVICE_EVENTLOOP_H
