//===- service/Server.cpp -------------------------------------------------===//

#include "service/Server.h"

#include "harness/Batch.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/BuildInfo.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <sstream>

#include <sys/socket.h>

using namespace ccra;

namespace {

/// How often parked server threads re-check the drain flag. Short enough
/// that SIGTERM drains promptly, long enough to stay off the profiles.
constexpr int PollIntervalMs = 100;
/// Total budget for reading the rest of a frame once its first byte
/// arrived. Generous: a legitimate client streams a 16 MiB module well
/// inside this; only a stalled peer trips it.
constexpr int FrameReadTimeoutMs = 30000;

Frame errorFrame(const std::string &Code, const std::string &Message) {
  Frame F;
  F.Type = FrameType::Error;
  F.Payload = encodeError({Code, Message});
  return F;
}

} // namespace

AllocationServer::AllocationServer(ServerConfig Config, ServerTestHooks Hooks)
    : Config(std::move(Config)), Hooks(std::move(Hooks)) {}

AllocationServer::~AllocationServer() {
  requestDrain();
  wait();
}

bool AllocationServer::start(std::string *Err) {
  if (Started.load()) {
    if (Err)
      *Err = "server already started";
    return false;
  }
  if (!Config.UnixPath.empty())
    Listener = ListenSocket::listenUnix(Config.UnixPath, Config.AcceptBacklog,
                                        Err);
  else
    Listener = ListenSocket::listenTcp(Config.TcpPort, Config.AcceptBacklog,
                                       Err);
  if (!Listener.valid())
    return false;

  Pool = std::make_unique<ThreadPool>(Config.PoolThreads);
  Started.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  BatcherThread = std::thread([this] { batcherLoop(); });
  return true;
}

void AllocationServer::requestDrain() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Draining.store(true);
  }
  QueueReady.notify_all();
  // Wake connection threads parked in a mid-frame read: without this a
  // peer that sent a torn header and went silent pins its thread for the
  // full frame-read budget and drain waits it out. Read side only —
  // responses for already-admitted requests still flush.
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (const auto &Entry : ConnFds)
      ::shutdown(Entry.second, SHUT_RD);
  }
}

void AllocationServer::wait() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  // No new connection threads can appear once the accept loop is gone.
  std::vector<std::thread> Conns;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto &Entry : ConnThreads)
      Conns.push_back(std::move(Entry.second));
    ConnThreads.clear();
    FinishedConns.clear();
  }
  for (std::thread &T : Conns)
    if (T.joinable())
      T.join();
  if (BatcherThread.joinable())
    BatcherThread.join();
  Listener.close();
  Pool.reset();
}

int AllocationServer::boundPort() const { return Listener.boundPort(); }

TelemetrySnapshot AllocationServer::stats() const {
  TelemetrySnapshot S = Telem.snapshot();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    S.Counters["serve.queue_depth"] = static_cast<double>(Queue.size());
  }
  if (Pool) {
    ThreadPool::Stats PS = Pool->stats();
    S.Counters[telemetry::SchedPoolBatches] = static_cast<double>(PS.Batches);
    S.Counters[telemetry::SchedPoolTasks] = static_cast<double>(PS.Tasks);
  }
  return S;
}

Frame AllocationServer::helloFrame() const {
  HelloInfo H;
  H.ServerInfo = buildInfoString();
  H.Protocol = WireVersion;
  H.MaxPayloadBytes = Config.MaxPayloadBytes;
  H.QueueCapacity = Config.QueueCapacity;
  H.MaxBatch = Config.MaxBatch;
  Frame F;
  F.Type = FrameType::Hello;
  F.Payload = encodeHello(H);
  return F;
}

void AllocationServer::reapFinishedConns() {
  std::vector<std::thread> Done;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (std::uint64_t Id : FinishedConns) {
      auto It = ConnThreads.find(Id);
      if (It != ConnThreads.end()) {
        Done.push_back(std::move(It->second));
        ConnThreads.erase(It);
      }
    }
    FinishedConns.clear();
  }
  // Joins happen outside ConnMutex: the finishing thread's last act is to
  // push its id under the same mutex, and join() only waits for the final
  // return after that.
  for (std::thread &T : Done)
    if (T.joinable())
      T.join();
}

void AllocationServer::acceptLoop() {
  while (!Draining.load()) {
    reapFinishedConns();
    IoStatus Status = IoStatus::Error;
    Socket Conn = Listener.accept(PollIntervalMs, Status);
    if (Status == IoStatus::Timeout)
      continue;
    if (Status != IoStatus::Ok)
      break; // listener closed or broken; drain handles the rest
    Telem.addCount(telemetry::ServeConnections);
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      ++ActiveConnections;
    }
    std::lock_guard<std::mutex> Lock(ConnMutex);
    std::uint64_t Id = NextConnId++;
    ConnFds.emplace(Id, Conn.fd());
    ConnThreads.emplace(Id, std::thread([this, Id, C = std::move(Conn)]() mutable {
      connectionLoop(Id, std::move(C));
      std::lock_guard<std::mutex> FinLock(ConnMutex);
      FinishedConns.push_back(Id);
    }));
  }
  // Drain may have raced past connections admitted in this loop's final
  // iterations; re-run the read-side shutdown now that the set is final.
  if (Draining.load()) {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (const auto &Entry : ConnFds)
      ::shutdown(Entry.second, SHUT_RD);
  }
  // Refuse connections the moment drain starts: close (and for Unix
  // sockets unlink) the listener so clients see ECONNREFUSED/ENOENT
  // instead of hanging in a never-accepted backlog.
  Listener.close();
}

void AllocationServer::connectionLoop(std::uint64_t Id, Socket Conn) {
  std::string Err;
  bool HelloOk =
      writeFrame(Conn, helloFrame(), Config.WriteTimeoutMs) == IoStatus::Ok;

  while (HelloOk) {
    Frame In;
    FrameReadStatus RS = readFrame(Conn, In, Config.MaxPayloadBytes,
                                   PollIntervalMs, FrameReadTimeoutMs, &Err);
    if (RS == FrameReadStatus::Idle) {
      if (Draining.load())
        break;
      continue;
    }
    if (RS == FrameReadStatus::Eof)
      break;
    if (RS == FrameReadStatus::Malformed || RS == FrameReadStatus::TooLarge) {
      // Torn frame, garbage magic, checksum mismatch, or an oversized
      // declaration: answer if the pipe still works, then drop the
      // connection — the stream cannot be resynchronized.
      Telem.addCount(telemetry::ServeMalformed);
      const char *Code =
          RS == FrameReadStatus::TooLarge ? "too-large" : "malformed";
      writeFrame(Conn, errorFrame(Code, Err), Config.WriteTimeoutMs);
      break;
    }
    if (RS != FrameReadStatus::Ok)
      break; // Timeout mid-frame or I/O error: stream unusable

    if (In.Type == FrameType::StatsRequest) {
      Telem.addCount(telemetry::ServeStatsRequests);
      Frame Out;
      Out.Type = FrameType::StatsResponse;
      Out.Payload = stats().toJson();
      if (writeFrame(Conn, Out, Config.WriteTimeoutMs) != IoStatus::Ok)
        break;
      continue;
    }
    if (In.Type != FrameType::AllocRequest) {
      // Well-formed frame of a kind only servers send; protocol misuse,
      // but the stream is intact, so answer and keep the connection.
      if (writeFrame(Conn, errorFrame("malformed", "unexpected frame type"),
                     Config.WriteTimeoutMs) != IoStatus::Ok)
        break;
      continue;
    }

    Telem.addCount(telemetry::ServeRequests);
    auto Pending = std::make_unique<PendingRequest>();
    Pending->Arrival = std::chrono::steady_clock::now();
    if (!parseAllocRequest(In.Payload, Pending->Request, &Err)) {
      Telem.addCount(telemetry::ServeMalformed);
      if (writeFrame(Conn, errorFrame("malformed", Err),
                     Config.WriteTimeoutMs) != IoStatus::Ok)
        break;
      continue;
    }
    {
      ParseResult PR = parseModule(Pending->Request.ModuleText);
      std::vector<std::string> VerifyErrors;
      if (!PR.ok() || !verifyModule(*PR.M, &VerifyErrors)) {
        Telem.addCount(telemetry::ServeMalformed);
        std::string Detail;
        for (const std::string &E : PR.ok() ? VerifyErrors : PR.Errors)
          Detail += E + "\n";
        if (writeFrame(Conn, errorFrame("malformed", "bad module:\n" + Detail),
                       Config.WriteTimeoutMs) != IoStatus::Ok)
          break;
        continue;
      }
      Pending->M = std::move(PR.M);
    }

    if (Draining.load()) {
      Telem.addCount(telemetry::ServeDraining);
      writeFrame(Conn, errorFrame("draining", "server is shutting down"),
                 Config.WriteTimeoutMs);
      break;
    }

    // Admission control: bounded queue, explicit SHED on overflow.
    std::future<Frame> Response;
    bool Shed = false;
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      Shed = Queue.size() >= Config.QueueCapacity ||
             (Hooks.ForceQueueOverflow && Hooks.ForceQueueOverflow());
      if (!Shed) {
        Response = Pending->Response.get_future();
        Queue.push_back(std::move(Pending));
        Telem.noteMax(telemetry::ServePeakQueue,
                      static_cast<double>(Queue.size()));
      }
    }
    if (Shed) {
      Telem.addCount(telemetry::ServeShed);
      Frame Out;
      Out.Type = FrameType::Shed;
      Out.Payload = "queue full (capacity " +
                    std::to_string(Config.QueueCapacity) + "); retry later";
      if (writeFrame(Conn, Out, Config.WriteTimeoutMs) != IoStatus::Ok)
        break;
      continue;
    }
    QueueReady.notify_all();

    // The batch former always fulfills the promise: this connection counts
    // as active until it returns, and the batcher only exits once the
    // queue is empty and every connection is gone.
    Frame Out = Response.get();
    IoStatus WS = writeFrame(Conn, Out, Config.WriteTimeoutMs);
    if (WS != IoStatus::Ok) {
      if (WS == IoStatus::Timeout)
        Telem.addCount(telemetry::ServeWriteTimeouts);
      break;
    }
  }

  {
    // Deregister before closing, under the same mutex drain's shutdown
    // sweep holds, so drain never shuts down a recycled fd number.
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ConnFds.erase(Id);
    Conn.close();
  }
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    --ActiveConnections;
  }
  QueueReady.notify_all(); // batcher may be waiting on the exit condition
}

void AllocationServer::batcherLoop() {
  for (;;) {
    std::vector<std::unique_ptr<PendingRequest>> Taken;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueReady.wait_for(Lock, std::chrono::milliseconds(PollIntervalMs),
                          [this] { return !Queue.empty() || Draining.load(); });
      if (Queue.empty()) {
        if (Draining.load() && ActiveConnections == 0)
          return;
        continue;
      }
      if (Hooks.BeforeBatch) {
        // Tests stall here (queue untouched) to expire deadlines or pile
        // up overflow deterministically.
        Lock.unlock();
        Hooks.BeforeBatch();
        Lock.lock();
      }
      std::size_t Take = std::min<std::size_t>(Queue.size(), Config.MaxBatch);
      for (std::size_t I = 0; I < Take; ++I) {
        Taken.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    }
    runBatch(std::move(Taken));
  }
}

void AllocationServer::runBatch(
    std::vector<std::unique_ptr<PendingRequest>> Taken) {
  // Admission checks first: expired deadlines and injected worker faults
  // are answered without occupying the engine.
  std::vector<PendingRequest *> Runnable;
  auto Now = std::chrono::steady_clock::now();
  for (auto &P : Taken) {
    if (P->Request.DeadlineMs > 0 &&
        Now - P->Arrival >= std::chrono::milliseconds(P->Request.DeadlineMs)) {
      Telem.addCount(telemetry::ServeDeadlineMissed);
      P->Response.set_value(errorFrame(
          "deadline", "request expired after " +
                          std::to_string(P->Request.DeadlineMs) +
                          " ms in queue"));
      continue;
    }
    if (Hooks.FailRequest && Hooks.FailRequest(P->Request)) {
      Telem.addCount(telemetry::ServeWorkerFaults);
      P->Response.set_value(
          errorFrame("fault", "worker failed while allocating this request"));
      continue;
    }
    Runnable.push_back(P.get());
  }
  if (Runnable.empty())
    return;

  Telem.addCount(telemetry::ServeBatches);
  Telem.addCount(telemetry::ServeBatchedRequests,
                 static_cast<double>(Runnable.size()));
  Telem.noteMax(telemetry::ServePeakBatch,
                static_cast<double>(Runnable.size()));

  std::vector<AllocationBatchItem> Items;
  Items.reserve(Runnable.size());
  for (PendingRequest *P : Runnable)
    Items.push_back({P->M.get(), P->Request.Config, P->Request.Options,
                     P->Request.Mode});

  std::vector<AllocationBatchResult> Results;
  try {
    Telemetry::ScopedTimer Timer(&Telem, telemetry::ServeBatchPhase);
    Results = runAllocationBatch(Items, Pool.get());
  } catch (const std::exception &E) {
    // Graceful degradation: one poisoned batch answers "internal" instead
    // of taking the daemon down; subsequent batches run normally.
    for (PendingRequest *P : Runnable)
      P->Response.set_value(errorFrame("internal", E.what()));
    return;
  }

  for (std::size_t I = 0; I < Runnable.size(); ++I) {
    PendingRequest *P = Runnable[I];
    AllocationBatchResult &R = Results[I];

    AllocResponse Resp;
    Resp.Totals = R.Result.Totals;
    for (const auto &F : P->M->functions()) {
      if (F->isDeclaration())
        continue;
      auto It = R.Result.PerFunction.find(F.get());
      if (It == R.Result.PerFunction.end())
        continue;
      const FunctionAllocation &FA = It->second;
      Resp.Functions.push_back({F->getName(), FA.Costs, FA.Rounds,
                                FA.SpilledRanges, FA.VoluntarySpills,
                                FA.CoalescedMoves, FA.CalleeRegsPaid});
    }
    Resp.Telemetry = R.Telemetry;
    std::ostringstream IR;
    printModule(*P->M, IR);
    Resp.AllocatedIr = IR.str();

    Telem.merge(R.Telemetry);
    Telem.addCount(telemetry::ServeResponsesOk);

    Frame Out;
    Out.Type = FrameType::AllocResponse;
    Out.Payload = encodeAllocResponse(Resp);
    P->Response.set_value(std::move(Out));
  }
}
