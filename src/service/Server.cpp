//===- service/Server.cpp -------------------------------------------------===//

#include "service/Server.h"

#include "harness/Batch.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/BuildInfo.h"
#include "support/Hash.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <sstream>

#include <sys/socket.h>

using namespace ccra;

namespace {

/// How often parked server threads re-check the drain flag. Short enough
/// that SIGTERM drains promptly, long enough to stay off the profiles.
constexpr int PollIntervalMs = 100;
/// Total budget for reading the rest of a frame once its first byte
/// arrived. Generous: a legitimate client streams a 16 MiB module well
/// inside this; only a stalled peer trips it.
constexpr int FrameReadTimeoutMs = 30000;

Frame errorFrame(const std::string &Code, const std::string &Message) {
  Frame F;
  F.Type = FrameType::Error;
  F.Payload = encodeError({Code, Message});
  return F;
}

} // namespace

AllocationServer::AllocationServer(ServerConfig Config, ServerTestHooks Hooks)
    : Config(std::move(Config)), Hooks(std::move(Hooks)),
      Cache(this->Config.CacheBytes) {}

AllocationServer::~AllocationServer() {
  requestDrain();
  wait();
}

bool AllocationServer::start(std::string *Err) {
  if (Started.load()) {
    if (Err)
      *Err = "server already started";
    return false;
  }
  if (!Config.UnixPath.empty())
    Listener = ListenSocket::listenUnix(Config.UnixPath, Config.AcceptBacklog,
                                        Err);
  else
    Listener = ListenSocket::listenTcp(Config.TcpPort, Config.AcceptBacklog,
                                       Err);
  if (!Listener.valid())
    return false;

  unsigned NumShards = std::max(1u, Config.Shards);
  PerShardCapacity = std::max(1u, Config.QueueCapacity / NumShards);
  Ring = ConsistentHashRing(NumShards);
  // Split the engine pool budget evenly: each shard gets a PRIVATE pool
  // (the scratch-arena slot discipline allows one outside submitter per
  // pool, and each batcher is exactly that submitter for its shard).
  unsigned TotalThreads = Config.PoolThreads ? Config.PoolThreads
                                             : ThreadPool::defaultParallelism();
  unsigned PerShardThreads = std::max(1u, TotalThreads / NumShards);
  for (unsigned I = 0; I < NumShards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Pool = std::make_unique<ThreadPool>(PerShardThreads);
    Shards.push_back(std::move(S));
  }

  Started.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  for (auto &S : Shards)
    S->Batcher = std::thread([this, SP = S.get()] { batcherLoop(*SP); });
  return true;
}

void AllocationServer::notifyAllShards() {
  for (auto &S : Shards) {
    { std::lock_guard<std::mutex> Lock(S->QueueMutex); }
    S->QueueReady.notify_all();
  }
}

void AllocationServer::requestDrain() {
  Draining.store(true);
  notifyAllShards();
  // Wake connection threads parked in a mid-frame read: without this a
  // peer that sent a torn header and went silent pins its thread for the
  // full frame-read budget and drain waits it out. Read side only —
  // responses for already-admitted requests still flush.
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (const auto &Entry : ConnFds)
      ::shutdown(Entry.second, SHUT_RD);
  }
}

void AllocationServer::wait() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  // No new connection threads can appear once the accept loop is gone.
  std::vector<std::thread> Conns;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto &Entry : ConnThreads)
      Conns.push_back(std::move(Entry.second));
    ConnThreads.clear();
    FinishedConns.clear();
  }
  for (std::thread &T : Conns)
    if (T.joinable())
      T.join();
  for (auto &S : Shards)
    if (S->Batcher.joinable())
      S->Batcher.join();
  Listener.close();
  for (auto &S : Shards)
    S->Pool.reset();
}

int AllocationServer::boundPort() const { return Listener.boundPort(); }

TelemetrySnapshot AllocationServer::stats() const {
  TelemetrySnapshot S = Telem.snapshot();
  std::size_t TotalDepth = 0;
  ThreadPool::Stats PoolTotal;
  for (std::size_t I = 0; I < Shards.size(); ++I) {
    const Shard &Sh = *Shards[I];
    std::size_t Depth;
    {
      std::lock_guard<std::mutex> Lock(Sh.QueueMutex);
      Depth = Sh.Queue.size();
    }
    TotalDepth += Depth;
    std::string Prefix = "shard." + std::to_string(I);
    S.Counters[Prefix + ".queue_depth"] = static_cast<double>(Depth);
    S.Counters[Prefix + ".dispatched"] =
        static_cast<double>(Sh.Dispatched.load());
    if (Sh.Pool) {
      ThreadPool::Stats PS = Sh.Pool->stats();
      PoolTotal.Batches += PS.Batches;
      PoolTotal.Tasks += PS.Tasks;
    }
  }
  S.Counters["serve.queue_depth"] = static_cast<double>(TotalDepth);
  S.Counters[telemetry::ShardCount] = static_cast<double>(Shards.size());
  S.Counters[telemetry::SchedPoolBatches] =
      static_cast<double>(PoolTotal.Batches);
  S.Counters[telemetry::SchedPoolTasks] = static_cast<double>(PoolTotal.Tasks);

  AllocationCacheStats CS = Cache.stats();
  S.Counters[telemetry::CacheHits] = static_cast<double>(CS.Hits);
  S.Counters[telemetry::CacheMisses] = static_cast<double>(CS.Misses);
  S.Counters[telemetry::CacheEvictions] = static_cast<double>(CS.Evictions);
  S.Counters[telemetry::CacheBytes] = static_cast<double>(CS.Bytes);
  S.Counters[telemetry::CacheInsertions] =
      static_cast<double>(CS.Insertions);
  S.Counters[telemetry::CacheModules] = static_cast<double>(CS.Modules);
  return S;
}

Frame AllocationServer::helloFrame() const {
  HelloInfo H;
  H.ServerInfo = buildInfoString();
  H.Protocol = WireVersion;
  H.MaxPayloadBytes = Config.MaxPayloadBytes;
  H.QueueCapacity = Config.QueueCapacity;
  H.MaxBatch = Config.MaxBatch;
  H.ProtocolMinor = WireMinorVersion;
  H.CacheEnabled = Cache.enabled();
  H.Shards = static_cast<unsigned>(Shards.size());
  Frame F;
  F.Type = FrameType::Hello;
  F.Payload = encodeHello(H);
  return F;
}

void AllocationServer::reapFinishedConns() {
  std::vector<std::thread> Done;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (std::uint64_t Id : FinishedConns) {
      auto It = ConnThreads.find(Id);
      if (It != ConnThreads.end()) {
        Done.push_back(std::move(It->second));
        ConnThreads.erase(It);
      }
    }
    FinishedConns.clear();
  }
  // Joins happen outside ConnMutex: the finishing thread's last act is to
  // push its id under the same mutex, and join() only waits for the final
  // return after that.
  for (std::thread &T : Done)
    if (T.joinable())
      T.join();
}

void AllocationServer::acceptLoop() {
  while (!Draining.load()) {
    reapFinishedConns();
    IoStatus Status = IoStatus::Error;
    Socket Conn = Listener.accept(PollIntervalMs, Status);
    if (Status == IoStatus::Timeout)
      continue;
    if (Status != IoStatus::Ok)
      break; // listener closed or broken; drain handles the rest
    Telem.addCount(telemetry::ServeConnections);
    ActiveConnections.fetch_add(1);
    std::lock_guard<std::mutex> Lock(ConnMutex);
    std::uint64_t Id = NextConnId++;
    ConnFds.emplace(Id, Conn.fd());
    ConnThreads.emplace(Id, std::thread([this, Id, C = std::move(Conn)]() mutable {
      connectionLoop(Id, std::move(C));
      std::lock_guard<std::mutex> FinLock(ConnMutex);
      FinishedConns.push_back(Id);
    }));
  }
  // Drain may have raced past connections admitted in this loop's final
  // iterations; re-run the read-side shutdown now that the set is final.
  if (Draining.load()) {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (const auto &Entry : ConnFds)
      ::shutdown(Entry.second, SHUT_RD);
  }
  // Refuse connections the moment drain starts: close (and for Unix
  // sockets unlink) the listener so clients see ECONNREFUSED/ENOENT
  // instead of hanging in a never-accepted backlog.
  Listener.close();
}

void AllocationServer::connectionLoop(std::uint64_t Id, Socket Conn) {
  std::string Err;
  bool HelloOk =
      writeFrame(Conn, helloFrame(), Config.WriteTimeoutMs) == IoStatus::Ok;

  while (HelloOk) {
    Frame In;
    FrameReadStatus RS = readFrame(Conn, In, Config.MaxPayloadBytes,
                                   PollIntervalMs, FrameReadTimeoutMs, &Err);
    if (RS == FrameReadStatus::Idle) {
      if (Draining.load())
        break;
      continue;
    }
    if (RS == FrameReadStatus::Eof)
      break;
    if (RS == FrameReadStatus::Malformed || RS == FrameReadStatus::TooLarge) {
      // Torn frame, garbage magic, checksum mismatch, or an oversized
      // declaration: answer if the pipe still works, then drop the
      // connection — the stream cannot be resynchronized.
      Telem.addCount(telemetry::ServeMalformed);
      const char *Code =
          RS == FrameReadStatus::TooLarge ? "too-large" : "malformed";
      writeFrame(Conn, errorFrame(Code, Err), Config.WriteTimeoutMs);
      break;
    }
    if (RS != FrameReadStatus::Ok)
      break; // Timeout mid-frame or I/O error: stream unusable

    if (In.Type == FrameType::StatsRequest) {
      Telem.addCount(telemetry::ServeStatsRequests);
      Frame Out;
      Out.Type = FrameType::StatsResponse;
      Out.Payload = stats().toJson();
      if (writeFrame(Conn, Out, Config.WriteTimeoutMs) != IoStatus::Ok)
        break;
      continue;
    }
    if (In.Type != FrameType::AllocRequest) {
      // Well-formed frame of a kind only servers send; protocol misuse,
      // but the stream is intact, so answer and keep the connection.
      if (writeFrame(Conn, errorFrame("malformed", "unexpected frame type"),
                     Config.WriteTimeoutMs) != IoStatus::Ok)
        break;
      continue;
    }

    Telem.addCount(telemetry::ServeRequests);
    auto Pending = std::make_unique<PendingRequest>();
    Pending->Arrival = std::chrono::steady_clock::now();
    if (!parseAllocRequest(In.Payload, Pending->Request, &Err)) {
      Telem.addCount(telemetry::ServeMalformed);
      if (writeFrame(Conn, errorFrame("malformed", Err),
                     Config.WriteTimeoutMs) != IoStatus::Ok)
        break;
      continue;
    }

    if (Draining.load()) {
      Telem.addCount(telemetry::ServeDraining);
      writeFrame(Conn, errorFrame("draining", "server is shutting down"),
                 Config.WriteTimeoutMs);
      break;
    }

    // Cache front: a hit replays the stored response byte-identically and
    // skips parse, IR verification, queueing, and the engine entirely.
    // Safe before verification — an entry only exists because the same
    // byte-identical request text once parsed, verified, and allocated.
    if (Cache.enabled()) {
      Pending->CacheKey = allocationCacheKey(Pending->Request);
      AllocResponse Cached;
      if (Cache.lookup(Pending->CacheKey, Cached)) {
        Telem.addCount(telemetry::ServeResponsesOk);
        Frame Out;
        Out.Type = FrameType::AllocResponse;
        Out.Payload = encodeAllocResponse(Cached);
        IoStatus WS = writeFrame(Conn, Out, Config.WriteTimeoutMs);
        if (WS != IoStatus::Ok) {
          if (WS == IoStatus::Timeout)
            Telem.addCount(telemetry::ServeWriteTimeouts);
          break;
        }
        continue;
      }
    }

    {
      ParseResult PR = parseModule(Pending->Request.ModuleText);
      std::vector<std::string> VerifyErrors;
      if (!PR.ok() || !verifyModule(*PR.M, &VerifyErrors)) {
        Telem.addCount(telemetry::ServeMalformed);
        std::string Detail;
        for (const std::string &E : PR.ok() ? VerifyErrors : PR.Errors)
          Detail += E + "\n";
        if (writeFrame(Conn, errorFrame("malformed", "bad module:\n" + Detail),
                       Config.WriteTimeoutMs) != IoStatus::Ok)
          break;
        continue;
      }
      Pending->M = std::move(PR.M);
    }

    // Consistent-hash dispatch on the module text alone (not the full
    // cache key): every configuration of a hot module lands on the same
    // shard, whose warm pool just allocated it.
    Shard &Sh = *Shards[Ring.shardFor(fnv1a64(Pending->Request.ModuleText))];
    Sh.Dispatched.fetch_add(1, std::memory_order_relaxed);

    // Admission control: bounded per-shard queue, explicit SHED on
    // overflow.
    std::future<Frame> Response;
    bool Shed = false;
    {
      std::lock_guard<std::mutex> Lock(Sh.QueueMutex);
      Shed = Sh.Queue.size() >= PerShardCapacity ||
             (Hooks.ForceQueueOverflow && Hooks.ForceQueueOverflow());
      if (!Shed) {
        Response = Pending->Response.get_future();
        Sh.Queue.push_back(std::move(Pending));
        Telem.noteMax(telemetry::ServePeakQueue,
                      static_cast<double>(Sh.Queue.size()));
      }
    }
    if (Shed) {
      Telem.addCount(telemetry::ServeShed);
      Frame Out;
      Out.Type = FrameType::Shed;
      Out.Payload = "queue full (capacity " +
                    std::to_string(PerShardCapacity) + "); retry later";
      if (writeFrame(Conn, Out, Config.WriteTimeoutMs) != IoStatus::Ok)
        break;
      continue;
    }
    Sh.QueueReady.notify_all();

    // The batch former always fulfills the promise: this connection counts
    // as active until it returns, and each batcher only exits once its
    // queue is empty and every connection is gone.
    Frame Out = Response.get();
    IoStatus WS = writeFrame(Conn, Out, Config.WriteTimeoutMs);
    if (WS != IoStatus::Ok) {
      if (WS == IoStatus::Timeout)
        Telem.addCount(telemetry::ServeWriteTimeouts);
      break;
    }
  }

  {
    // Deregister before closing, under the same mutex drain's shutdown
    // sweep holds, so drain never shuts down a recycled fd number.
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ConnFds.erase(Id);
    Conn.close();
  }
  ActiveConnections.fetch_sub(1);
  notifyAllShards(); // batchers may be waiting on the exit condition
}

void AllocationServer::batcherLoop(Shard &S) {
  for (;;) {
    std::vector<std::unique_ptr<PendingRequest>> Taken;
    {
      std::unique_lock<std::mutex> Lock(S.QueueMutex);
      S.QueueReady.wait_for(
          Lock, std::chrono::milliseconds(PollIntervalMs),
          [&] { return !S.Queue.empty() || Draining.load(); });
      if (S.Queue.empty()) {
        if (Draining.load() && ActiveConnections.load() == 0)
          return;
        continue;
      }
      if (Hooks.BeforeBatch) {
        // Tests stall here (queue untouched) to expire deadlines or pile
        // up overflow deterministically.
        Lock.unlock();
        Hooks.BeforeBatch();
        Lock.lock();
      }
      std::size_t Take = std::min<std::size_t>(S.Queue.size(), Config.MaxBatch);
      for (std::size_t I = 0; I < Take; ++I) {
        Taken.push_back(std::move(S.Queue.front()));
        S.Queue.pop_front();
      }
    }
    runBatch(S, std::move(Taken));
  }
}

void AllocationServer::runBatch(
    Shard &S, std::vector<std::unique_ptr<PendingRequest>> Taken) {
  // Admission checks first: expired deadlines and injected worker faults
  // are answered without occupying the engine.
  std::vector<PendingRequest *> Runnable;
  auto Now = std::chrono::steady_clock::now();
  for (auto &P : Taken) {
    if (P->Request.DeadlineMs > 0 &&
        Now - P->Arrival >= std::chrono::milliseconds(P->Request.DeadlineMs)) {
      Telem.addCount(telemetry::ServeDeadlineMissed);
      P->Response.set_value(errorFrame(
          "deadline", "request expired after " +
                          std::to_string(P->Request.DeadlineMs) +
                          " ms in queue"));
      continue;
    }
    if (Hooks.FailRequest && Hooks.FailRequest(P->Request)) {
      Telem.addCount(telemetry::ServeWorkerFaults);
      P->Response.set_value(
          errorFrame("fault", "worker failed while allocating this request"));
      continue;
    }
    Runnable.push_back(P.get());
  }
  if (Runnable.empty())
    return;

  Telem.addCount(telemetry::ServeBatches);
  Telem.addCount(telemetry::ServeBatchedRequests,
                 static_cast<double>(Runnable.size()));
  Telem.noteMax(telemetry::ServePeakBatch,
                static_cast<double>(Runnable.size()));

  std::vector<AllocationBatchItem> Items;
  Items.reserve(Runnable.size());
  for (PendingRequest *P : Runnable)
    Items.push_back({P->M.get(), P->Request.Config, P->Request.Options,
                     P->Request.Mode});

  // Per-item completion: build the response from per-function IR slices
  // (the exact pieces the cache stores, so a later hit reassembles
  // byte-identical output), publish it to the cache, and fulfill the
  // promise — the client's connection thread starts writing while the
  // rest of the batch is still allocating. Runs on pool worker threads;
  // Telem and Cache are internally locked, Answered entries are disjoint.
  std::vector<char> Answered(Runnable.size(), 0);
  auto Publish = [&](std::size_t I, AllocationBatchResult &R) {
    PendingRequest *P = Runnable[I];
    AllocResponse Resp;
    Resp.Totals = R.Result.Totals;
    std::string IrHeader = "module " + P->M->getName() + "\n";
    std::vector<AllocationCache::FunctionRecord> Records;
    Records.reserve(P->M->functions().size());
    for (const auto &F : P->M->functions()) {
      AllocationCache::FunctionRecord Rec;
      std::ostringstream FnIr;
      printFunction(*F, FnIr);
      FnIr << '\n';
      Rec.Ir = FnIr.str();
      if (!F->isDeclaration()) {
        auto It = R.Result.PerFunction.find(F.get());
        if (It != R.Result.PerFunction.end()) {
          const FunctionAllocation &FA = It->second;
          Rec.HasSummary = true;
          Rec.Summary = {F->getName(),       FA.Costs,
                         FA.Rounds,          FA.SpilledRanges,
                         FA.VoluntarySpills, FA.CoalescedMoves,
                         FA.CalleeRegsPaid};
          Resp.Functions.push_back(Rec.Summary);
        }
      }
      Records.push_back(std::move(Rec));
    }
    Resp.Telemetry = R.Telemetry;
    Resp.AllocatedIr = IrHeader;
    for (const AllocationCache::FunctionRecord &Rec : Records)
      Resp.AllocatedIr += Rec.Ir;

    if (!P->CacheKey.empty())
      Cache.insert(P->CacheKey, IrHeader, Resp.Totals, R.Telemetry,
                   std::move(Records));

    Telem.merge(R.Telemetry);
    Telem.addCount(telemetry::ServeResponsesOk);
    Frame Out;
    Out.Type = FrameType::AllocResponse;
    Out.Payload = encodeAllocResponse(Resp);
    P->Response.set_value(std::move(Out));
    Answered[I] = 1;
  };

  try {
    Telemetry::ScopedTimer Timer(&Telem, telemetry::ServeBatchPhase);
    runAllocationBatch(Items, S.Pool.get(), Publish);
  } catch (const std::exception &E) {
    // Graceful degradation: items whose engine (or response build) threw
    // answer "internal" instead of taking the daemon down; items that
    // already flushed keep their real responses, and subsequent batches
    // run normally.
    for (std::size_t I = 0; I < Runnable.size(); ++I)
      if (!Answered[I])
        Runnable[I]->Response.set_value(errorFrame("internal", E.what()));
  }
}
