//===- service/Server.cpp -------------------------------------------------===//

#include "service/Server.h"

#include "harness/Batch.h"
#include "ir/IRBinary.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "service/BinaryCodec.h"
#include "support/BuildInfo.h"
#include "support/Hash.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace ccra;

namespace {

/// How often parked batch formers re-check the drain flag. Short enough
/// that SIGTERM drains promptly, long enough to stay off the profiles.
constexpr int PollIntervalMs = 100;
/// Total budget for reading the rest of a frame once its first byte
/// arrived. Generous: a legitimate client streams a 16 MiB module well
/// inside this; only a stalled peer trips it.
constexpr int FrameReadTimeoutMs = 30000;

Frame errorFrame(const std::string &Code, const std::string &Message) {
  Frame F;
  F.Type = FrameType::Error;
  F.Payload = encodeError({Code, Message});
  return F;
}

FrameDisposition reply(Frame F) {
  return {FrameAction::Reply, std::move(F)};
}

} // namespace

AllocationServer::AllocationServer(ServerConfig Config, ServerTestHooks Hooks)
    : Config(std::move(Config)), Hooks(std::move(Hooks)),
      Loop(EventLoopConfig{this->Config.MaxPayloadBytes,
                           this->Config.WriteTimeoutMs, FrameReadTimeoutMs,
                           PollIntervalMs},
           &Telem),
      Cache(this->Config.CacheBytes) {}

AllocationServer::~AllocationServer() {
  requestDrain();
  wait();
}

bool AllocationServer::start(std::string *Err) {
  if (Started.load()) {
    if (Err)
      *Err = "server already started";
    return false;
  }
  ListenSocket Listener;
  if (!Config.UnixPath.empty())
    Listener = ListenSocket::listenUnix(Config.UnixPath, Config.AcceptBacklog,
                                        Err);
  else
    Listener = ListenSocket::listenTcp(Config.TcpPort, Config.AcceptBacklog,
                                       Err);
  if (!Listener.valid())
    return false;
  BoundPort = Listener.boundPort();

  unsigned NumShards = std::max(1u, Config.Shards);
  PerShardCapacity = std::max(1u, Config.QueueCapacity / NumShards);
  Ring = ConsistentHashRing(NumShards);
  // Split the engine pool budget evenly: each shard gets a PRIVATE pool
  // (the scratch-arena slot discipline allows one outside submitter per
  // pool, and each batcher is exactly that submitter for its shard).
  unsigned TotalThreads = Config.PoolThreads ? Config.PoolThreads
                                             : ThreadPool::defaultParallelism();
  unsigned PerShardThreads = std::max(1u, TotalThreads / NumShards);
  for (unsigned I = 0; I < NumShards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Pool = std::make_unique<ThreadPool>(PerShardThreads);
    Shards.push_back(std::move(S));
  }

  if (!Loop.start(
          std::move(Listener), helloFrame(),
          [this](std::uint64_t ConnId, Frame &In) {
            return handleFrame(ConnId, In);
          },
          [this] {
            // Runs on the loop thread after drain processing: every
            // enqueue also runs there, so once this flag is visible the
            // queues can only shrink.
            AdmissionsClosed.store(true);
            notifyAllShards();
          },
          Err)) {
    Shards.clear();
    return false;
  }

  Started.store(true);
  for (auto &S : Shards)
    S->Batcher = std::thread([this, SP = S.get()] { batcherLoop(*SP); });
  return true;
}

void AllocationServer::notifyAllShards() {
  for (auto &S : Shards) {
    { std::lock_guard<std::mutex> Lock(S->QueueMutex); }
    S->QueueReady.notify_all();
  }
}

void AllocationServer::requestDrain() {
  Draining.store(true);
  Loop.requestDrain();
  notifyAllShards();
}

void AllocationServer::wait() {
  Loop.wait();
  for (auto &S : Shards)
    if (S->Batcher.joinable())
      S->Batcher.join();
  for (auto &S : Shards)
    S->Pool.reset();
}

TelemetrySnapshot AllocationServer::stats() const {
  TelemetrySnapshot S = Telem.snapshot();
  std::size_t TotalDepth = 0;
  ThreadPool::Stats PoolTotal;
  for (std::size_t I = 0; I < Shards.size(); ++I) {
    const Shard &Sh = *Shards[I];
    std::size_t Depth;
    {
      std::lock_guard<std::mutex> Lock(Sh.QueueMutex);
      Depth = Sh.Queue.size();
    }
    TotalDepth += Depth;
    std::string Prefix = "shard." + std::to_string(I);
    S.Counters[Prefix + ".queue_depth"] = static_cast<double>(Depth);
    S.Counters[Prefix + ".dispatched"] =
        static_cast<double>(Sh.Dispatched.load());
    if (Sh.Pool) {
      ThreadPool::Stats PS = Sh.Pool->stats();
      PoolTotal.Batches += PS.Batches;
      PoolTotal.Tasks += PS.Tasks;
    }
  }
  S.Counters["serve.queue_depth"] = static_cast<double>(TotalDepth);
  S.Counters[telemetry::ServeOpenConnections] =
      static_cast<double>(Loop.openConnections());
  S.Counters[telemetry::ShardCount] = static_cast<double>(Shards.size());
  S.Counters[telemetry::SchedPoolBatches] =
      static_cast<double>(PoolTotal.Batches);
  S.Counters[telemetry::SchedPoolTasks] = static_cast<double>(PoolTotal.Tasks);

  AllocationCacheStats CS = Cache.stats();
  S.Counters[telemetry::CacheHits] = static_cast<double>(CS.Hits);
  S.Counters[telemetry::CacheMisses] = static_cast<double>(CS.Misses);
  S.Counters[telemetry::CacheEvictions] = static_cast<double>(CS.Evictions);
  S.Counters[telemetry::CacheBytes] = static_cast<double>(CS.Bytes);
  S.Counters[telemetry::CacheInsertions] =
      static_cast<double>(CS.Insertions);
  S.Counters[telemetry::CacheModules] = static_cast<double>(CS.Modules);
  return S;
}

Frame AllocationServer::helloFrame() const {
  HelloInfo H;
  H.ServerInfo = buildInfoString();
  H.Protocol = WireVersion;
  H.MaxPayloadBytes = Config.MaxPayloadBytes;
  H.QueueCapacity = Config.QueueCapacity;
  H.MaxBatch = Config.MaxBatch;
  H.ProtocolMinor = WireMinorVersion;
  H.CacheEnabled = Cache.enabled();
  H.Shards = std::max(1u, Config.Shards);
  H.MaxCodec = WireMaxCodec;
  Frame F;
  F.Type = FrameType::Hello;
  F.Payload = encodeHello(H);
  return F;
}

FrameDisposition AllocationServer::handleFrame(std::uint64_t ConnId,
                                               Frame &In) {
  std::string Err;
  if (In.Type == FrameType::StatsRequest) {
    Telem.addCount(telemetry::ServeStatsRequests);
    Frame Out;
    Out.Type = FrameType::StatsResponse;
    Out.Payload = stats().toJson();
    return reply(std::move(Out));
  }
  if (In.Type != FrameType::AllocRequest &&
      In.Type != FrameType::AllocRequestV2) {
    // Well-formed frame of a kind only servers send; protocol misuse, but
    // the stream is intact, so answer and keep the connection.
    return reply(errorFrame("malformed", "unexpected frame type"));
  }

  Telem.addCount(telemetry::ServeRequests);
  auto Pending = std::make_unique<PendingRequest>();
  Pending->Arrival = std::chrono::steady_clock::now();
  Pending->ConnId = ConnId;
  bool ParseOk =
      In.Type == FrameType::AllocRequestV2
          ? parseAllocRequestV2(In.Payload, Pending->Request, &Err)
          : parseAllocRequest(In.Payload, Pending->Request, &Err);
  if (!ParseOk) {
    Telem.addCount(telemetry::ServeMalformed);
    return reply(errorFrame("malformed", Err));
  }

  if (Draining.load()) {
    Telem.addCount(telemetry::ServeDraining);
    return {FrameAction::ReplyClose,
            errorFrame("draining", "server is shutting down")};
  }

  // Cache front: a hit replays the stored response byte-identically and
  // skips parse, IR verification, queueing, and the engine entirely. Safe
  // before verification — an entry only exists because the same
  // byte-identical request once parsed, verified, and allocated.
  if (Cache.enabled()) {
    Pending->CacheKey = allocationCacheKey(Pending->Request);
    AllocResponse Cached;
    if (Cache.lookup(Pending->CacheKey, Cached)) {
      Telem.addCount(telemetry::ServeResponsesOk);
      Frame Out;
      Out.Type = FrameType::AllocResponse;
      Out.Payload = encodeAllocResponse(Cached);
      return reply(std::move(Out));
    }
  }

  if (In.Type == FrameType::AllocRequestV2) {
    // Binary modules decode straight into IR — the whole point of the
    // codec is that a cache miss costs a bounds-checked byte walk, not a
    // text parse. The verifier still runs: decode guarantees structural
    // sanity, not semantic admissibility.
    Pending->M = decodeModuleBinary(Pending->Request.ModuleBinary, &Err);
    std::vector<std::string> VerifyErrors;
    if (Pending->M && !verifyModule(*Pending->M, &VerifyErrors)) {
      for (const std::string &E : VerifyErrors)
        Err += E + "\n";
      Pending->M.reset();
    }
    if (!Pending->M) {
      Telem.addCount(telemetry::ServeMalformed);
      return reply(errorFrame("malformed", "bad module:\n" + Err));
    }
  } else {
    ParseResult PR = parseModule(Pending->Request.ModuleText);
    std::vector<std::string> VerifyErrors;
    if (!PR.ok() || !verifyModule(*PR.M, &VerifyErrors)) {
      Telem.addCount(telemetry::ServeMalformed);
      std::string Detail;
      for (const std::string &E : PR.ok() ? VerifyErrors : PR.Errors)
        Detail += E + "\n";
      return reply(errorFrame("malformed", "bad module:\n" + Detail));
    }
    Pending->M = std::move(PR.M);
  }

  // Consistent-hash dispatch on the module bytes alone (not the full
  // cache key): every configuration of a hot module lands on the same
  // shard, whose warm pool just allocated it.
  const std::string &ShardKey = Pending->Request.ModuleBinary.empty()
                                    ? Pending->Request.ModuleText
                                    : Pending->Request.ModuleBinary;
  Shard &Sh = *Shards[Ring.shardFor(fnv1a64(ShardKey))];
  Sh.Dispatched.fetch_add(1, std::memory_order_relaxed);

  // Admission control: bounded per-shard queue, explicit SHED on overflow.
  bool Shed = false;
  {
    std::lock_guard<std::mutex> Lock(Sh.QueueMutex);
    Shed = Sh.Queue.size() >= PerShardCapacity ||
           (Hooks.ForceQueueOverflow && Hooks.ForceQueueOverflow());
    if (!Shed) {
      Sh.Queue.push_back(std::move(Pending));
      Telem.noteMax(telemetry::ServePeakQueue,
                    static_cast<double>(Sh.Queue.size()));
    }
  }
  if (Shed) {
    Telem.addCount(telemetry::ServeShed);
    Frame Out;
    Out.Type = FrameType::Shed;
    Out.Payload = "queue full (capacity " +
                  std::to_string(PerShardCapacity) + "); retry later";
    return reply(std::move(Out));
  }
  Sh.QueueReady.notify_all();

  // The batch former always answers every queued item, so an InFlight
  // connection is never stranded: the response arrives via postResponse
  // and the loop resumes (or, during drain, closes) the connection.
  return {FrameAction::InFlight, Frame()};
}

void AllocationServer::batcherLoop(Shard &S) {
  for (;;) {
    std::vector<std::unique_ptr<PendingRequest>> Taken;
    {
      std::unique_lock<std::mutex> Lock(S.QueueMutex);
      S.QueueReady.wait_for(
          Lock, std::chrono::milliseconds(PollIntervalMs),
          [&] { return !S.Queue.empty() || Draining.load(); });
      if (S.Queue.empty()) {
        // AdmissionsClosed is set on the loop thread after its drain
        // processing, and every enqueue happens on that same thread —
        // so empty-after-closed is a stable exit, not a race window.
        if (Draining.load() && AdmissionsClosed.load())
          return;
        continue;
      }
      if (Hooks.BeforeBatch) {
        // Tests stall here (queue untouched) to expire deadlines or pile
        // up overflow deterministically.
        Lock.unlock();
        Hooks.BeforeBatch();
        Lock.lock();
      }
      std::size_t Take = std::min<std::size_t>(S.Queue.size(), Config.MaxBatch);
      for (std::size_t I = 0; I < Take; ++I) {
        Taken.push_back(std::move(S.Queue.front()));
        S.Queue.pop_front();
      }
    }
    runBatch(S, std::move(Taken));
  }
}

void AllocationServer::runBatch(
    Shard &S, std::vector<std::unique_ptr<PendingRequest>> Taken) {
  // Admission checks first: expired deadlines and injected worker faults
  // are answered without occupying the engine.
  std::vector<PendingRequest *> Runnable;
  auto Now = std::chrono::steady_clock::now();
  for (auto &P : Taken) {
    if (P->Request.DeadlineMs > 0 &&
        Now - P->Arrival >= std::chrono::milliseconds(P->Request.DeadlineMs)) {
      Telem.addCount(telemetry::ServeDeadlineMissed);
      Loop.postResponse(P->ConnId,
                        errorFrame("deadline",
                                   "request expired after " +
                                       std::to_string(P->Request.DeadlineMs) +
                                       " ms in queue"));
      continue;
    }
    if (Hooks.FailRequest && Hooks.FailRequest(P->Request)) {
      Telem.addCount(telemetry::ServeWorkerFaults);
      Loop.postResponse(
          P->ConnId,
          errorFrame("fault", "worker failed while allocating this request"));
      continue;
    }
    Runnable.push_back(P.get());
  }
  if (Runnable.empty())
    return;

  Telem.addCount(telemetry::ServeBatches);
  Telem.addCount(telemetry::ServeBatchedRequests,
                 static_cast<double>(Runnable.size()));
  Telem.noteMax(telemetry::ServePeakBatch,
                static_cast<double>(Runnable.size()));

  std::vector<AllocationBatchItem> Items;
  Items.reserve(Runnable.size());
  for (PendingRequest *P : Runnable)
    Items.push_back({P->M.get(), P->Request.Config, P->Request.Options,
                     P->Request.Mode});

  // Per-item completion: build the response from per-function IR slices
  // (the exact pieces the cache stores, so a later hit reassembles
  // byte-identical output), publish it to the cache, and post it to the
  // event loop — which starts writing while the rest of the batch is
  // still allocating. Runs on pool worker threads; Telem, Cache, and
  // postResponse are internally locked, Answered entries are disjoint.
  std::vector<char> Answered(Runnable.size(), 0);
  auto Publish = [&](std::size_t I, AllocationBatchResult &R) {
    PendingRequest *P = Runnable[I];
    AllocResponse Resp;
    Resp.Totals = R.Result.Totals;
    std::string IrHeader = "module " + P->M->getName() + "\n";
    std::vector<AllocationCache::FunctionRecord> Records;
    {
      Telemetry::ScopedTimer Render(&Telem, telemetry::ServeRenderPhase);
      Records.reserve(P->M->functions().size());
      std::size_t IrBytes = IrHeader.size();
      for (const auto &F : P->M->functions()) {
        AllocationCache::FunctionRecord Rec;
        printFunction(*F, Rec.Ir);
        Rec.Ir += '\n';
        IrBytes += Rec.Ir.size();
        if (!F->isDeclaration()) {
          auto It = R.Result.PerFunction.find(F.get());
          if (It != R.Result.PerFunction.end()) {
            const FunctionAllocation &FA = It->second;
            Rec.HasSummary = true;
            Rec.Summary = {F->getName(),       FA.Costs,
                           FA.Rounds,          FA.SpilledRanges,
                           FA.VoluntarySpills, FA.CoalescedMoves,
                           FA.CalleeRegsPaid};
            Resp.Functions.push_back(Rec.Summary);
          }
        }
        Records.push_back(std::move(Rec));
      }
      Resp.AllocatedIr.reserve(IrBytes);
      Resp.AllocatedIr = IrHeader;
      for (const AllocationCache::FunctionRecord &Rec : Records)
        Resp.AllocatedIr += Rec.Ir;
    }

    if (!P->CacheKey.empty())
      Cache.insert(P->CacheKey, IrHeader, Resp.Totals, R.Telemetry,
                   std::move(Records));

    Telem.merge(R.Telemetry);
    Telem.addCount(telemetry::ServeResponsesOk);
    // Last consumer of the item's telemetry: move it into the response
    // instead of copying the ~50-entry maps a third time.
    Resp.Telemetry = std::move(R.Telemetry);
    Frame Out;
    Out.Type = FrameType::AllocResponse;
    {
      Telemetry::ScopedTimer Encode(&Telem, telemetry::ServeEncodePhase);
      Out.Payload = encodeAllocResponse(Resp);
    }
    // Deferred: the batch rings the loop once after the last item. Ringing
    // per item makes the loop thread runnable at every write(2), and on a
    // single-core host the kernel preempts this worker for a scheduling
    // round trip per response.
    Loop.postResponseDeferred(P->ConnId, std::move(Out));
    Answered[I] = 1;
  };

  try {
    Telemetry::ScopedTimer Timer(&Telem, telemetry::ServeBatchPhase);
    runAllocationBatch(Items, S.Pool.get(), Publish);
  } catch (const std::exception &E) {
    // Graceful degradation: items whose engine (or response build) threw
    // answer "internal" instead of taking the daemon down; items that
    // already flushed keep their real responses, and subsequent batches
    // run normally.
    for (std::size_t I = 0; I < Runnable.size(); ++I)
      if (!Answered[I])
        Loop.postResponse(Runnable[I]->ConnId,
                          errorFrame("internal", E.what()));
  }
  Loop.flushPosted();
}
