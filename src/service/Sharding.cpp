//===- service/Sharding.cpp -----------------------------------------------===//

#include "service/Sharding.h"

#include "support/Hash.h"

#include <algorithm>
#include <string>

using namespace ccra;

ConsistentHashRing::ConsistentHashRing(unsigned Shards,
                                       unsigned VNodesPerShard)
    : NumShards(Shards == 0 ? 1 : Shards) {
  if (NumShards == 1)
    return; // one shard owns the whole ring; no points needed
  Points.reserve(static_cast<std::size_t>(NumShards) * VNodesPerShard);
  for (unsigned S = 0; S < NumShards; ++S) {
    for (unsigned V = 0; V < VNodesPerShard; ++V) {
      std::string Label =
          "shard " + std::to_string(S) + " vnode " + std::to_string(V);
      Points.emplace_back(fnv1a64(Label), S);
    }
  }
  std::sort(Points.begin(), Points.end());
}

unsigned ConsistentHashRing::shardFor(std::uint64_t KeyHash) const {
  if (Points.empty())
    return 0;
  auto It = std::lower_bound(
      Points.begin(), Points.end(), KeyHash,
      [](const std::pair<std::uint64_t, unsigned> &P, std::uint64_t H) {
        return P.first < H;
      });
  if (It == Points.end())
    It = Points.begin(); // wrap past the highest point
  return It->second;
}
