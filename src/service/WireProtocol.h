//===- service/WireProtocol.h - Framed allocation protocol ------*- C++ -*-===//
///
/// \file
/// The wire format of the allocation service: length-prefixed, versioned,
/// checksummed frames carrying textual payloads.
///
/// Frame layout (all integers little-endian):
///
///   u32 magic     'CCRA' (0x41524343)
///   u16 version   WireVersion
///   u16 type      FrameType
///   u32 length    payload bytes
///   u32 checksum  FNV-1a over the payload
///
/// Conversation: on connect the server sends one Hello frame (build info,
/// protocol version, limits). The client then issues AllocRequest /
/// StatsRequest frames; every request gets exactly one response frame —
/// AllocResponse, StatsResponse, Shed (bounded queue overflowed; retry
/// later), or Error (code + message; see ErrorResponse for codes).
///
/// Payloads are line-oriented text: `key: value` headers, then (where
/// applicable) a section marker (`module:` / `ir:` / `telemetry:`) whose
/// body runs to the end of the payload or to a fixed end marker. Every
/// number that feeds the bit-identity contract (costs) is emitted in
/// shortest-round-trip form, so a response reparses to exactly the values
/// the server computed.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SERVICE_WIREPROTOCOL_H
#define CCRA_SERVICE_WIREPROTOCOL_H

#include "analysis/Frequency.h"
#include "regalloc/AllocationResult.h"
#include "regalloc/AllocatorOptions.h"
#include "support/Sockets.h"
#include "support/Telemetry.h"
#include "target/MachineDescription.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccra {

inline constexpr std::uint32_t WireMagic = 0x41524343; // "CCRA" in LE bytes
inline constexpr std::uint16_t WireVersion = 1;
/// Protocol minor version, advertised as a Hello payload field rather than
/// in the frame header: the header version is a hard compatibility gate
/// (readFrame rejects a mismatch), while minor revisions only ADD payload
/// fields that old peers ignore. v1.1 adds the cache/shard capability
/// fields to Hello and the "cache."/"shard." counter namespaces to STATS.
/// v1.2 adds the `codec-max` Hello field and the AllocRequestV2 frame
/// (binary module payload; see service/BinaryCodec.h) — a client must see
/// `codec-max: 2` before sending one, so a v1.1 server is never handed a
/// frame type it would reject as malformed.
inline constexpr std::uint16_t WireMinorVersion = 2;
inline constexpr std::size_t WireHeaderSize = 16;

/// Highest module codec this build speaks: 1 = textual `.ccra` payloads,
/// 2 = the length-prefixed binary encoding of ir/IRBinary.h.
inline constexpr std::uint16_t WireMaxCodec = 2;

enum class FrameType : std::uint16_t {
  Hello = 1,
  AllocRequest = 2,
  AllocResponse = 3,
  StatsRequest = 4,
  StatsResponse = 5,
  Error = 6,
  Shed = 7,
  /// An allocation request whose module section is binary (codec v2). The
  /// response is a regular AllocResponse either way — the bit-identity
  /// contract is stated over the textual response, so both ingestion paths
  /// must produce byte-identical output.
  AllocRequestV2 = 8,
};

struct Frame {
  FrameType Type = FrameType::Error;
  std::string Payload;
};

/// FNV-1a over the payload; cheap torn-frame detection, not cryptographic.
std::uint32_t wireChecksum(const std::string &Payload);

/// Serializes header + payload into \p Out (appending nothing else).
void encodeFrame(const Frame &F, std::string &Out);

enum class FrameReadStatus {
  Ok,
  Eof,     ///< peer closed cleanly between frames
  Idle,    ///< no frame started within IdleTimeoutMs; nothing consumed,
           ///< safe to retry (servers poll this way to notice drain)
  Timeout, ///< deadline expired mid-frame; stream desynced, close it
  Malformed, ///< bad magic/version/type, torn frame, checksum mismatch
  TooLarge,  ///< declared payload exceeds \p MaxPayload
  IoError,
};

/// A decoded (and validated) fixed frame header. The payload checksum is
/// carried along so callers that reassemble the payload incrementally (the
/// event loop) can verify it once the bytes are complete.
struct FrameHeader {
  FrameType Type = FrameType::Error;
  std::uint32_t Length = 0;
  std::uint32_t Checksum = 0;
};

/// Validates the WireHeaderSize fixed bytes at \p Bytes: magic, version,
/// frame type, and the declared length against \p MaxPayload. Returns Ok,
/// Malformed, or TooLarge — the single source of truth for header
/// admissibility, shared by the blocking readFrame and the event loop's
/// incremental reassembly so the two paths cannot drift.
FrameReadStatus decodeFrameHeader(const unsigned char *Bytes,
                                  std::size_t MaxPayload, FrameHeader &Out,
                                  std::string *Err = nullptr);

/// Reads one frame. \p IdleTimeoutMs bounds the wait for the frame's first
/// byte (Idle on expiry, with nothing consumed); \p FrameTimeoutMs is the
/// total budget for the rest of the frame once started (Timeout on expiry
/// — the stream is desynced and should be closed). On TooLarge the payload
/// is NOT consumed — the stream is unusable and should be closed.
FrameReadStatus readFrame(Socket &S, Frame &Out, std::size_t MaxPayload,
                          int IdleTimeoutMs, int FrameTimeoutMs,
                          std::string *Err = nullptr);

/// Writes one frame within \p TimeoutMs (total).
IoStatus writeFrame(Socket &S, const Frame &F, int TimeoutMs,
                    std::string *Err = nullptr);

// --- Payload codecs -----------------------------------------------------

/// Shortest text that parses back to exactly \p V (std::to_chars).
std::string formatExactDouble(double V);

struct HelloInfo {
  std::string ServerInfo;    ///< buildInfoString() of the serving binary
  std::uint16_t Protocol = WireVersion;
  std::size_t MaxPayloadBytes = 0;
  unsigned QueueCapacity = 0;
  unsigned MaxBatch = 0;
  /// v1.1 capability fields. Version-gated: emitted only when
  /// ProtocolMinor > 0, ignored (left at their v1.0 zero defaults) by old
  /// parsers, and defaulted to zero when a v1.0 server omits them — both
  /// directions of a mixed-version conversation keep working.
  std::uint16_t ProtocolMinor = 0;
  bool CacheEnabled = false; ///< content-addressed allocation cache on
  unsigned Shards = 0;       ///< worker shards behind the dispatcher
  /// v1.2: highest module codec the server accepts (1 when a pre-v1.2
  /// server omits the field). Clients send AllocRequestV2 only when >= 2.
  std::uint16_t MaxCodec = 1;
};
std::string encodeHello(const HelloInfo &H);
bool parseHello(const std::string &Payload, HelloInfo &Out,
                std::string *Err = nullptr);

struct AllocRequest {
  RegisterConfig Config = RegisterConfig(9, 7, 3, 3);
  FrequencyMode Mode = FrequencyMode::Profile;
  /// Ships as AllocatorOptions::canonicalKey(): behavior-affecting fields
  /// only. Execution-strategy fields (Jobs, GraphMode, ...) are the
  /// SERVER's policy, not the client's — results are bit-identical across
  /// them, so a request carrying them could only fragment the server's
  /// content-addressed cache. A parsed request therefore holds defaults
  /// for every excluded field.
  AllocatorOptions Options;
  /// Admission deadline in milliseconds from arrival; 0 = none. A request
  /// still queued when its deadline expires is answered with an Error
  /// frame (code "deadline") instead of being allocated.
  unsigned DeadlineMs = 0;
  /// Textual .ccra module (ir/IRParser.h grammar). Empty for a codec-v2
  /// request, which carries ModuleBinary instead.
  std::string ModuleText;
  /// Binary module (ir/IRBinary.h), the codec-v2 payload. Exactly one of
  /// ModuleText / ModuleBinary is set on a well-formed request; the
  /// encode/parse pair for this form lives in service/BinaryCodec.h.
  std::string ModuleBinary;
};
std::string encodeAllocRequest(const AllocRequest &R);
bool parseAllocRequest(const std::string &Payload, AllocRequest &Out,
                       std::string *Err = nullptr);

struct FunctionSummary {
  std::string Name;
  CostBreakdown Costs;
  unsigned Rounds = 0;
  unsigned SpilledRanges = 0;
  unsigned VoluntarySpills = 0;
  unsigned CoalescedMoves = 0;
  unsigned CalleeRegsPaid = 0;
};

struct AllocResponse {
  CostBreakdown Totals;
  std::vector<FunctionSummary> Functions; ///< module order
  TelemetrySnapshot Telemetry;            ///< this request's engine telemetry
  std::string AllocatedIr;                ///< printModule of the result
};
std::string encodeAllocResponse(const AllocResponse &R);
bool parseAllocResponse(const std::string &Payload, AllocResponse &Out,
                        std::string *Err = nullptr);

/// Error codes: "malformed" (bad frame payload / module / options),
/// "too-large" (payload over the advertised limit), "deadline" (request
/// expired while queued), "draining" (server is shutting down), "fault"
/// (worker failed mid-request), "internal".
struct ErrorResponse {
  std::string Code;
  std::string Message;
};
std::string encodeError(const ErrorResponse &E);
bool parseError(const std::string &Payload, ErrorResponse &Out);

} // namespace ccra

#endif // CCRA_SERVICE_WIREPROTOCOL_H
