//===- service/Sharding.h - Consistent-hash shard dispatch ------*- C++ -*-===//
///
/// \file
/// The dispatch half of the serving tier's cache-and-shard design: a
/// classic consistent-hash ring mapping a 64-bit content hash (the hash of
/// a request's module text) to one of N worker shards. Each shard gets
/// VNodesPerShard pseudo-random points on the ring; a key is owned by the
/// first point at or after its hash (wrapping). Virtual nodes keep the
/// per-shard load share close to 1/N, and growing the shard count by one
/// moves only ~1/(N+1) of the key space — the property that makes warm
/// per-shard working sets survive a reconfiguration.
///
/// The mapping is a pure function of (Shards, VNodesPerShard, key), so two
/// ring instances built with the same parameters dispatch identically —
/// tests and the dispatcher never need to share an object.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SERVICE_SHARDING_H
#define CCRA_SERVICE_SHARDING_H

#include <cstdint>
#include <utility>
#include <vector>

namespace ccra {

class ConsistentHashRing {
public:
  /// An empty ring dispatches everything to shard 0.
  ConsistentHashRing() = default;
  explicit ConsistentHashRing(unsigned Shards, unsigned VNodesPerShard = 64);

  unsigned shards() const { return NumShards; }

  /// The shard owning \p KeyHash: index in [0, shards()).
  unsigned shardFor(std::uint64_t KeyHash) const;

private:
  unsigned NumShards = 1;
  /// (ring position, shard index), sorted by position.
  std::vector<std::pair<std::uint64_t, unsigned>> Points;
};

} // namespace ccra

#endif // CCRA_SERVICE_SHARDING_H
