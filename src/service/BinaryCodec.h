//===- service/BinaryCodec.h - Wire codec v2 (binary modules) ---*- C++ -*-===//
///
/// \file
/// The AllocRequestV2 payload codec: the same `key: value` request headers
/// as the textual v1 form (config / mode / deadline-ms / options), then a
/// `module-bytes: N` header followed by exactly N bytes of binary module
/// (ir/IRBinary.h) in place of v1's `module:` text section.
///
/// Negotiation: a server advertising `codec-max: 2` in its Hello accepts
/// AllocRequestV2 frames; anything older treats the frame type as
/// malformed, so clients must check HelloInfo::MaxCodec first
/// (ServiceClient does). Responses are textual AllocResponse frames for
/// both codecs — the bit-identity contract is stated over response text,
/// and the fuzz harness holds the two ingestion paths byte-equivalent:
///
///   printModule(decode_v2(x)) == printModule(parse_v1(print(x)))
///
/// v1 text stays the canonical format for fuzz reproducers and anything a
/// human reads or edits: reproducer files carry provenance comment headers
/// the binary form has no room for, and a shrunk reproducer is only useful
/// if a person can open it.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_SERVICE_BINARYCODEC_H
#define CCRA_SERVICE_BINARYCODEC_H

#include "service/WireProtocol.h"

namespace ccra {

class Module;

/// Encodes \p R as an AllocRequestV2 payload. R.ModuleBinary must already
/// hold the encoded module (encodeModuleBinary); R.ModuleText is ignored.
std::string encodeAllocRequestV2(const AllocRequest &R);

/// Convenience: encodes \p M into R.ModuleBinary (clearing R.ModuleText),
/// then builds the payload. Returns false when the module cannot be
/// expressed in the interchange grammar (see encodeModuleBinary).
bool encodeAllocRequestV2(AllocRequest &R, const Module &M, std::string &Out,
                          std::string *Err = nullptr);

/// Parses an AllocRequestV2 payload. On success Out.ModuleBinary holds the
/// raw module bytes and Out.ModuleText is empty; the caller decodes with
/// decodeModuleBinary when (and only when) the cache misses.
bool parseAllocRequestV2(const std::string &Payload, AllocRequest &Out,
                         std::string *Err = nullptr);

} // namespace ccra

#endif // CCRA_SERVICE_BINARYCODEC_H
