//===- service/AllocationCache.cpp ----------------------------------------===//

#include "service/AllocationCache.h"

#include "support/Hash.h"

#include <algorithm>

using namespace ccra;

std::string ccra::allocationCacheKey(const AllocRequest &R) {
  std::string Key;
  Key.reserve(R.ModuleText.size() + 256);
  Key += R.Options.canonicalKey();
  Key += " config=";
  Key += std::to_string(R.Config.IntCallerSave) + "," +
         std::to_string(R.Config.FloatCallerSave) + "," +
         std::to_string(R.Config.IntCalleeSave) + "," +
         std::to_string(R.Config.FloatCalleeSave);
  Key += " mode=";
  Key += R.Mode == FrequencyMode::Static ? "static" : "profile";
  Key += '\n';
  // Both codecs tag the payload section, so crafted text can never alias a
  // binary entry (lookup runs before parse — without the tag a text
  // request whose bytes equal "v2\n" + someone's binary payload would
  // replay that entry's response). A module submitted through both codecs
  // occupies two entries: keying on the canonical text would mean decoding
  // + printing the binary before lookup, putting the parse cost the codec
  // exists to remove back on every request.
  if (!R.ModuleBinary.empty()) {
    Key += "wire=v2\n";
    Key += R.ModuleBinary;
  } else {
    Key += "wire=v1\n";
    Key += R.ModuleText;
  }
  return Key;
}

namespace {

std::size_t snapshotBytes(const TelemetrySnapshot &S) {
  std::size_t N = 0;
  for (const auto &E : S.Counters)
    N += E.first.size() + sizeof(double);
  for (const auto &E : S.TimersMs)
    N += E.first.size() + sizeof(double);
  return N;
}

std::size_t recordBytes(const AllocationCache::FunctionRecord &F) {
  return F.Ir.size() + F.Summary.Name.size() + sizeof(FunctionSummary);
}

} // namespace

bool AllocationCache::lookup(const std::string &Key, AllocResponse &Out) {
  if (!enabled())
    return false;
  std::uint64_t Hash = fnv1a64(Key);
  std::lock_guard<std::mutex> Lock(M);
  auto BucketIt = Buckets.find(Hash);
  ModuleEntry *Entry = nullptr;
  if (BucketIt != Buckets.end()) {
    for (std::uint64_t Id : BucketIt->second) {
      ModuleEntry &E = Modules.at(Id);
      if (E.Key == Key) {
        Entry = &E;
        break;
      }
    }
  }
  if (!Entry) {
    ++Misses;
    return false;
  }
  ++Hits;
  Lru.splice(Lru.begin(), Lru, Entry->LruPos);

  Out = AllocResponse();
  Out.Totals = Entry->Totals;
  Out.Telemetry = Entry->Telemetry;
  Out.AllocatedIr = Entry->IrHeader;
  for (unsigned I = 0; I < Entry->FunctionCount; ++I) {
    const FunctionRecord &F = Functions.at({Entry->Id, I});
    Out.AllocatedIr += F.Ir;
    if (F.HasSummary)
      Out.Functions.push_back(F.Summary);
  }
  return true;
}

void AllocationCache::insert(const std::string &Key,
                             const std::string &IrHeader,
                             const CostBreakdown &Totals,
                             const TelemetrySnapshot &Telemetry,
                             std::vector<FunctionRecord> Records) {
  if (!enabled())
    return;
  std::uint64_t Hash = fnv1a64(Key);

  std::size_t EntryBytes = Key.size() + IrHeader.size() +
                           snapshotBytes(Telemetry) + sizeof(ModuleEntry);
  for (const FunctionRecord &F : Records)
    EntryBytes += recordBytes(F);
  if (EntryBytes > MaxBytes)
    return; // would evict everything and still not fit

  std::lock_guard<std::mutex> Lock(M);
  for (std::uint64_t Id : Buckets[Hash])
    if (Modules.at(Id).Key == Key)
      return; // lost a publish race; the existing entry is identical

  std::uint64_t Id = NextId++;
  ModuleEntry E;
  E.Id = Id;
  E.Hash = Hash;
  E.Key = Key;
  E.IrHeader = IrHeader;
  E.Totals = Totals;
  E.Telemetry = Telemetry;
  E.FunctionCount = static_cast<unsigned>(Records.size());
  E.Bytes = EntryBytes;
  Lru.push_front(Id);
  E.LruPos = Lru.begin();
  for (unsigned I = 0; I < E.FunctionCount; ++I)
    Functions.emplace(std::make_pair(Id, I), std::move(Records[I]));
  Buckets[Hash].push_back(Id);
  Modules.emplace(Id, std::move(E));
  TotalBytes += EntryBytes;
  ++Insertions;
  evictToFit();
}

void AllocationCache::evictToFit() {
  while (TotalBytes > MaxBytes && !Lru.empty()) {
    erase(Lru.back());
    ++Evictions;
  }
}

void AllocationCache::erase(std::uint64_t Id) {
  auto It = Modules.find(Id);
  if (It == Modules.end())
    return;
  ModuleEntry &E = It->second;
  TotalBytes -= E.Bytes;
  Functions.erase(Functions.lower_bound({Id, 0}),
                  Functions.upper_bound({Id, ~0u}));
  auto BucketIt = Buckets.find(E.Hash);
  if (BucketIt != Buckets.end()) {
    auto &Ids = BucketIt->second;
    Ids.erase(std::remove(Ids.begin(), Ids.end(), Id), Ids.end());
    if (Ids.empty())
      Buckets.erase(BucketIt);
  }
  Lru.erase(E.LruPos);
  Modules.erase(It);
}

AllocationCacheStats AllocationCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  AllocationCacheStats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Insertions = Insertions;
  S.Bytes = TotalBytes;
  S.Modules = Modules.size();
  S.Functions = Functions.size();
  return S;
}
