//===- regalloc/GraphReconstructor.h - Incremental reconstruction -*- C++ -*-===//
///
/// \file
/// The paper's "graph reconstruction" step (§2, Figure 1): after spill-code
/// insertion, the interference graph is *modified* instead of being rebuilt
/// from scratch, which improves compilation time. Spilling changes very
/// little of the allocation state:
///
///  - the spilled classes' registers vanish from the code, so their live
///    ranges, their graph edges, and their liveness bits just disappear;
///  - every other live range keeps its references, crossed calls, and
///    block-boundary liveness exactly (spill loads/stores are *inserted
///    between* existing instructions);
///  - the new reload temporaries live only inside one block, between their
///    spill.load/spill.store and the single instruction using or defining
///    them — their metrics and edges come from rescanning just the blocks
///    that received spill code.
///
/// The patched state is identical to a from-scratch recomputation whenever
/// the coalescing phase has nothing left to do, i.e. the function contains
/// no copies — always true after the first round, since spill code never
/// introduces copies (verified by the equivalence tests and asserted by the
/// engine's fallback condition).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_GRAPHRECONSTRUCTOR_H
#define CCRA_REGALLOC_GRAPHRECONSTRUCTOR_H

#include "analysis/Liveness.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/LiveRange.h"

#include <vector>

namespace ccra {

class AllocationScratch;
class FrequencyInfo;
class VRegClasses;

class GraphReconstructor {
public:
  /// Patches \p LV / \p LRS / \p IG — valid for the code *before* the spill
  /// rewrite — to describe \p F *after* SpillCodeInserter ran.
  /// \p SpilledRangeIds are the live-range ids (in the old \p LRS) that
  /// were spilled; \p OldNumVRegs is the register count before the rewrite
  /// (every register >= OldNumVRegs is a fresh reload temporary). The new
  /// graph inherits the old graph's representation policy and is finalized;
  /// the old graph's buffers are recycled through \p Scratch when given.
  static void apply(const Function &F, const FrequencyInfo &Freq,
                    Liveness &LV, LiveRangeSet &LRS, InterferenceGraph &IG,
                    const std::vector<unsigned> &SpilledRangeIds,
                    unsigned OldNumVRegs, AllocationScratch *Scratch = nullptr);

  /// True if \p F contains no copy instructions — the condition under which
  /// skipping the coalescing phase (and hence using apply()) is exact.
  static bool hasNoCopies(const Function &F);
};

} // namespace ccra

#endif // CCRA_REGALLOC_GRAPHRECONSTRUCTOR_H
