//===- regalloc/Coalescer.h - Copy coalescing -------------------*- C++ -*-===//
///
/// \file
/// The coalescing phase of the framework (paper Figure 1): copies between
/// non-conflicting live ranges are eliminated by merging their congruence
/// classes. The default is Briggs-conservative coalescing (the merged node
/// must have fewer than N neighbors of significant degree, so coalescing
/// can never cause a spill); aggressive mode skips the degree test.
///
/// Each pass canonicalizes operands, derives liveness, builds the live
/// ranges and the interference graph, and sweeps the code merging safe
/// copies — so the final (no-change) pass leaves behind exactly the
/// live-range set and graph the allocator needs next, which run() returns
/// instead of making the caller rebuild them.
///
/// Liveness per pass is the dominant cost, and with IncrementalLiveness on
/// it is *maintained* instead of recomputed: merging two non-interfering
/// ranges unions their solutions (Liveness::renameRegister is exact for
/// that case), and deleting a copy can only change a block's transfer
/// function in ways a local upward-exposed-use/kill comparison detects —
/// the rare register that fails the comparison gets a surgical
/// single-register re-solve (Liveness::recomputeRegister). A run seeded
/// with valid liveness (SeededLV) therefore does *zero* full
/// Liveness::compute calls, and an unseeded one does exactly one;
/// CoalesceStats reports both so telemetry can prove it.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_COALESCER_H
#define CCRA_REGALLOC_COALESCER_H

#include "analysis/Liveness.h"
#include "regalloc/GraphRep.h"

namespace ccra {

class AllocationScratch;
class FrequencyInfo;
class Function;
class InterferenceGraph;
class LiveRangeSet;
class MachineDescription;
class Telemetry;
class VRegClasses;

struct CoalesceStats {
  unsigned CoalescedMoves = 0;
  unsigned Passes = 0;
  /// Full Liveness::compute runs (0 when seeded, 1 otherwise, barring the
  /// never-taken pass-cap fallback).
  unsigned LivenessComputes = 0;
  /// Passes whose liveness came from incremental maintenance (renames and
  /// targeted per-register re-solves) instead of a full recompute.
  unsigned IncrementalLVUpdates = 0;
};

/// Per-run configuration of the coalescer.
struct CoalesceRequest {
  bool Aggressive = false;
  /// Maintain liveness across passes by renaming/patching instead of
  /// re-running the dataflow each pass. Bit-identical either way.
  bool IncrementalLiveness = true;
  /// The Liveness passed to run() already holds the exact solution for the
  /// incoming code (the cached baseline at round 1, the spill-maintained
  /// solution at later rounds), so the first pass skips its compute too.
  bool SeededLV = false;
  /// Optional per-worker buffer arena for the internal graph builds.
  AllocationScratch *Scratch = nullptr;
  /// Optional recorder for the build_ranges / build_graph phase timers.
  Telemetry *T = nullptr;
  /// Representation for the per-pass interference graphs (and therefore
  /// for the final graph handed back through OutIG).
  GraphRep GraphMode = GraphRep::Auto;
};

class Coalescer {
public:
  /// Coalesces to a fixpoint. Merged copies are deleted from \p F and
  /// their classes merged in \p Classes. On return \p LV holds exact
  /// liveness for the final code, and \p OutLRS / \p OutIG hold the final
  /// pass's live-range set and interference graph (already valid for the
  /// final code — the caller must not rebuild them).
  static CoalesceStats run(Function &F, VRegClasses &Classes,
                           const MachineDescription &MD,
                           const FrequencyInfo &Freq, Liveness &LV,
                           const CoalesceRequest &Req, LiveRangeSet &OutLRS,
                           InterferenceGraph &OutIG);

  /// Compatibility entry point: full liveness recompute every pass, built
  /// live ranges and graph discarded.
  static CoalesceStats run(Function &F, VRegClasses &Classes,
                           const MachineDescription &MD,
                           const FrequencyInfo &Freq, Liveness &LV,
                           bool Aggressive);
};

} // namespace ccra

#endif // CCRA_REGALLOC_COALESCER_H
