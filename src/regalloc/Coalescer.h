//===- regalloc/Coalescer.h - Copy coalescing -------------------*- C++ -*-===//
///
/// \file
/// The coalescing phase of the framework (paper Figure 1): copies between
/// non-conflicting live ranges are eliminated by merging their congruence
/// classes. The default is Briggs-conservative coalescing (the merged node
/// must have fewer than N neighbors of significant degree, so coalescing
/// can never cause a spill); aggressive mode skips the degree test.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_COALESCER_H
#define CCRA_REGALLOC_COALESCER_H

#include "analysis/Liveness.h"

namespace ccra {

class FrequencyInfo;
class Function;
class MachineDescription;
class VRegClasses;

struct CoalesceStats {
  unsigned CoalescedMoves = 0;
  unsigned Passes = 0;
};

class Coalescer {
public:
  /// Coalesces to a fixpoint. Merged copies are deleted from \p F and their
  /// classes merged in \p Classes. On return \p LV holds liveness for the
  /// final code.
  static CoalesceStats run(Function &F, VRegClasses &Classes,
                           const MachineDescription &MD,
                           const FrequencyInfo &Freq, Liveness &LV,
                           bool Aggressive);
};

} // namespace ccra

#endif // CCRA_REGALLOC_COALESCER_H
