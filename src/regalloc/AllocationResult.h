//===- regalloc/AllocationResult.h - Locations and cost breakdown -*- C++ -*-===//
///
/// \file
/// The outputs of register allocation: per-register storage locations and
/// the paper's cost breakdown (§3) — spill cost + caller-save cost +
/// callee-save cost + shuffle cost, all in frequency-weighted overhead
/// operations relative to a perfect allocation with unbounded registers.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_ALLOCATIONRESULT_H
#define CCRA_REGALLOC_ALLOCATIONRESULT_H

#include "ir/Register.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace ccra {

class Function;

/// Where a live range ended up: a physical register or its stack home.
struct Location {
  enum class Kind { Register, Memory } K = Kind::Memory;
  PhysReg Reg;

  static Location inRegister(PhysReg R) {
    Location L;
    L.K = Kind::Register;
    L.Reg = R;
    return L;
  }
  static Location inMemory() { return Location(); }

  bool isRegister() const { return K == Kind::Register; }
  bool isMemory() const { return K == Kind::Memory; }
};

/// §3's three cost components plus shuffle cost, in weighted overhead
/// operations (expected dynamic loads/stores/moves introduced by the
/// allocator).
struct CostBreakdown {
  double Spill = 0.0;
  double CallerSave = 0.0;
  double CalleeSave = 0.0;
  double Shuffle = 0.0;

  double total() const { return Spill + CallerSave + CalleeSave + Shuffle; }

  /// Exact (bitwise-value) comparison; the serving stack's bit-identity
  /// contract asserts equality of costs across the wire.
  bool operator==(const CostBreakdown &Other) const = default;

  CostBreakdown &operator+=(const CostBreakdown &Other) {
    Spill += Other.Spill;
    CallerSave += Other.CallerSave;
    CalleeSave += Other.CalleeSave;
    Shuffle += Other.Shuffle;
    return *this;
  }
};

/// Result of allocating one function.
struct FunctionAllocation {
  /// Final storage location of every virtual register that ever existed in
  /// the function (including spill temporaries).
  std::unordered_map<unsigned, Location> VRegLocations;

  CostBreakdown Costs;

  /// Soundness-verifier findings, populated only under
  /// AllocatorOptions::VerifyReportOnly (the default verifier path aborts
  /// instead). Empty means the allocation verified clean.
  std::vector<std::string> VerifyErrors;

  unsigned Rounds = 0;          ///< Spill-and-retry iterations used.
  unsigned SpilledRanges = 0;   ///< Ranges spilled because coloring failed.
  unsigned VoluntarySpills = 0; ///< Storage-class-analysis spill decisions.
  unsigned CoalescedMoves = 0;  ///< Copies removed by the coalescer.
  unsigned CalleeRegsPaid = 0;  ///< Callee-save registers saved/restored.

  Location locationOf(VirtReg R) const {
    auto It = VRegLocations.find(R.Id);
    return It == VRegLocations.end() ? Location::inMemory() : It->second;
  }
};

/// Result of allocating a whole module.
struct ModuleAllocationResult {
  std::unordered_map<const Function *, FunctionAllocation> PerFunction;
  CostBreakdown Totals;
};

} // namespace ccra

#endif // CCRA_REGALLOC_ALLOCATIONRESULT_H
