//===- regalloc/OverheadMaterializer.cpp ----------------------------------===//

#include "regalloc/OverheadMaterializer.h"

#include "support/BitVector.h"
#include "target/MachineDescription.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

std::vector<PhysReg>
OverheadMaterializer::paidCalleeRegs(const AllocationContext &Ctx,
                                     const RoundResult &RR) {
  if (RR.PayUnusedCallee)
    return RR.ForcedCalleePaid;

  std::vector<PhysReg> Paid;
  auto AlreadyPaid = [&](PhysReg Reg) {
    return std::find(Paid.begin(), Paid.end(), Reg) != Paid.end();
  };
  for (const Location &Loc : RR.Assignment) {
    if (!Loc.isRegister() || !Ctx.MD.isCalleeSave(Loc.Reg))
      continue;
    if (!AlreadyPaid(Loc.Reg))
      Paid.push_back(Loc.Reg);
  }
  return Paid;
}

OverheadMaterializer::Stats
OverheadMaterializer::run(AllocationContext &Ctx, const RoundResult &RR) {
  Stats S;
  Function &F = Ctx.F;

  // --- Caller-save saves/restores around calls ---------------------------
  // Plan first (per block, per instruction index, the registers to wrap),
  // then rewrite each block once.
  for (const auto &BB : F.blocks()) {
    auto &Insts = BB->instructions();
    // Live-after set per instruction index, derived by one backward scan.
    std::vector<std::vector<PhysReg>> WrapRegs(Insts.size());
    BitVector Live(F.numVRegs());
    Live = Ctx.LV.liveOut(*BB);
    bool AnyWrap = false;
    for (size_t Idx = Insts.size(); Idx-- > 0;) {
      const Instruction &I = Insts[Idx];
      if (I.isCall()) {
        for (unsigned V : Live) {
          bool DefinedHere = false;
          for (VirtReg D : I.Defs)
            DefinedHere |= (D.Id == V);
          if (DefinedHere)
            continue;
          int RangeId = Ctx.LRS.rangeIdOf(VirtReg(V));
          assert(RangeId >= 0 && "live register without live range");
          const Location &Loc = RR.Assignment[RangeId];
          if (!Loc.isRegister() || !Ctx.MD.isCallerSave(Loc.Reg))
            continue;
          auto &Regs = WrapRegs[Idx];
          if (std::find(Regs.begin(), Regs.end(), Loc.Reg) == Regs.end()) {
            Regs.push_back(Loc.Reg);
            AnyWrap = true;
          }
        }
      }
      for (VirtReg D : I.Defs)
        Live.reset(D.Id);
      for (VirtReg U : I.Uses)
        Live.set(U.Id);
    }
    if (!AnyWrap)
      continue;
    std::vector<Instruction> Out;
    Out.reserve(Insts.size() + 4);
    for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
      for (PhysReg Reg : WrapRegs[Idx]) {
        Instruction Save(Opcode::Save);
        Save.Phys = Reg;
        Save.Overhead = OverheadKind::CallerSave;
        Out.push_back(std::move(Save));
        ++S.CallerSavesInserted;
      }
      Out.push_back(std::move(Insts[Idx]));
      for (PhysReg Reg : WrapRegs[Idx]) {
        Instruction Restore(Opcode::Restore);
        Restore.Phys = Reg;
        Restore.Overhead = OverheadKind::CallerSave;
        Out.push_back(std::move(Restore));
        ++S.CallerSavesInserted;
      }
    }
    Insts = std::move(Out);
  }

  // --- Callee-save saves at entry, restores before every return ----------
  std::vector<PhysReg> Paid = paidCalleeRegs(Ctx, RR);
  S.CalleeRegsPaid = static_cast<unsigned>(Paid.size());
  if (!Paid.empty()) {
    BasicBlock *Entry = F.getEntryBlock();
    auto &EntryInsts = Entry->instructions();
    std::vector<Instruction> Prologue;
    for (PhysReg Reg : Paid) {
      Instruction Save(Opcode::Save);
      Save.Phys = Reg;
      Save.Overhead = OverheadKind::CalleeSave;
      Prologue.push_back(std::move(Save));
      ++S.CalleeSavesInserted;
    }
    EntryInsts.insert(EntryInsts.begin(),
                      std::make_move_iterator(Prologue.begin()),
                      std::make_move_iterator(Prologue.end()));

    for (const auto &BB : F.blocks()) {
      const Instruction *Term = BB->getTerminator();
      if (!Term || Term->Op != Opcode::Ret)
        continue;
      auto &Insts = BB->instructions();
      // Restore in reverse order, right before the return.
      for (auto It = Paid.rbegin(); It != Paid.rend(); ++It) {
        Instruction Restore(Opcode::Restore);
        Restore.Phys = *It;
        Restore.Overhead = OverheadKind::CalleeSave;
        Insts.insert(Insts.end() - 1, std::move(Restore));
        ++S.CalleeSavesInserted;
      }
    }
  }
  return S;
}
