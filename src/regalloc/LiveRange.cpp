//===- regalloc/LiveRange.cpp ---------------------------------------------===//

#include "regalloc/LiveRange.h"

#include "analysis/Frequency.h"
#include "analysis/Liveness.h"
#include "regalloc/VRegClasses.h"
#include "support/BitVector.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

unsigned LiveRangeSet::addRange(LiveRange LR) {
  LR.Id = numRanges();
  Ranges.push_back(std::move(LR));
  return Ranges.back().Id;
}

int LiveRangeSet::rangeIdOf(VirtReg R) const {
  assert(R.Id < VRegToRange.size() && "register out of range");
  return VRegToRange[R.Id];
}

LiveRangeSet LiveRangeSet::build(const Function &F, const Liveness &LV,
                                 const FrequencyInfo &Freq,
                                 const VRegClasses &Classes) {
  LiveRangeSet Set;
  unsigned NumVRegs = F.numVRegs();
  Set.VRegToRange.assign(NumVRegs, -1);

  // Which registers actually appear in the code? Registers whose live range
  // was spilled in a previous round no longer occur and get no live range.
  std::vector<bool> Referenced(NumVRegs, false);
  for (const auto &BB : F.blocks()) {
    for (const Instruction &I : BB->instructions()) {
      for (VirtReg R : I.Defs)
        Referenced[R.Id] = true;
      for (VirtReg R : I.Uses)
        Referenced[R.Id] = true;
    }
  }

  // Create one live range per referenced congruence class, in ascending
  // root order for determinism.
  for (unsigned V = 0; V < NumVRegs; ++V) {
    if (!Referenced[V])
      continue;
    unsigned Root = Classes.find(VirtReg(V)).Id;
    if (Set.VRegToRange[Root] == -1) {
      LiveRange LR;
      LR.Id = Set.numRanges();
      LR.Root = VirtReg(Root);
      LR.Bank = F.vregBank(VirtReg(V));
      Set.VRegToRange[Root] = static_cast<int>(LR.Id);
      Set.Ranges.push_back(std::move(LR));
    }
  }
  // Map every member register to its class's live range. A class is
  // unspillable when *any* member is a reload temporary (operands may have
  // been canonicalized to the representative, so membership — not
  // occurrence — is what matters).
  for (unsigned V = 0; V < NumVRegs; ++V) {
    unsigned Root = Classes.find(VirtReg(V)).Id;
    Set.VRegToRange[V] = Set.VRegToRange[Root];
    if (Set.VRegToRange[V] >= 0 && F.isSpillTemp(VirtReg(V)))
      Set.Ranges[Set.VRegToRange[V]].NoSpill = true;
  }

  // Enumerate call sites.
  for (const auto &BB : F.blocks()) {
    const auto &Insts = BB->instructions();
    for (unsigned Idx = 0; Idx < Insts.size(); ++Idx) {
      if (!Insts[Idx].isCall())
        continue;
      CallSite CS;
      CS.Id = static_cast<unsigned>(Set.Calls.size());
      CS.Block = BB.get();
      CS.InstIndex = Idx;
      CS.Freq = Freq.blockFrequency(*BB);
      CS.Inst = &Insts[Idx];
      Set.Calls.push_back(CS);
    }
  }

  // Weighted references and block spans.
  const unsigned NumRanges = Set.numRanges();
  std::vector<int> LastBlockSeen(NumRanges, -1);
  auto SpanBlock = [&](int RangeId, int BlockId) {
    if (RangeId < 0 || LastBlockSeen[RangeId] == BlockId)
      return;
    LastBlockSeen[RangeId] = BlockId;
    ++Set.Ranges[RangeId].NumBlocks;
  };
  for (const auto &BB : F.blocks()) {
    double BlockFreq = Freq.blockFrequency(*BB);
    int BlockId = static_cast<int>(BB->getId());
    for (const Instruction &I : BB->instructions()) {
      for (VirtReg R : I.Defs) {
        LiveRange &LR = Set.Ranges[Set.VRegToRange[R.Id]];
        LR.WeightedRefs += BlockFreq;
        ++LR.NumRefs;
        SpanBlock(Set.VRegToRange[R.Id], BlockId);
      }
      for (VirtReg R : I.Uses) {
        LiveRange &LR = Set.Ranges[Set.VRegToRange[R.Id]];
        LR.WeightedRefs += BlockFreq;
        ++LR.NumRefs;
        SpanBlock(Set.VRegToRange[R.Id], BlockId);
      }
    }
    for (unsigned V : LV.liveIn(*BB))
      SpanBlock(Set.VRegToRange[V], BlockId);
    for (unsigned V : LV.liveOut(*BB))
      SpanBlock(Set.VRegToRange[V], BlockId);
  }

  // Call-crossing: a live range crosses a call when some member register is
  // live immediately after the call and not defined by it (then it is also
  // live immediately before, i.e. live *through* the call).
  std::vector<unsigned> LastCallSeen(NumRanges, ~0u);
  BitVector Live(NumVRegs);
  for (const auto &BB : F.blocks()) {
    Live = LV.liveOut(*BB);
    const auto &Insts = BB->instructions();
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      const Instruction &I = *It;
      if (I.isCall()) {
        unsigned CallId = ~0u;
        // Recover the call site id by matching the instruction pointer.
        for (const CallSite &CS : Set.Calls)
          if (CS.Inst == &I) {
            CallId = CS.Id;
            break;
          }
        assert(CallId != ~0u && "call site not enumerated");
        double CallFreq = Set.Calls[CallId].Freq;
        for (unsigned V : Live) {
          bool DefinedHere = false;
          for (VirtReg D : I.Defs)
            DefinedHere |= (D.Id == V);
          if (DefinedHere)
            continue;
          int RangeId = Set.VRegToRange[V];
          assert(RangeId >= 0 && "live register without live range");
          LiveRange &LR = Set.Ranges[RangeId];
          if (LastCallSeen[RangeId] == CallId)
            continue; // Another member already crossed this call.
          LastCallSeen[RangeId] = CallId;
          LR.CrossedCalls.push_back(CallId);
          LR.CallerSaveCost += 2.0 * CallFreq;
          LR.ContainsCall = true;
        }
      }
      for (VirtReg D : I.Defs)
        Live.reset(D.Id);
      for (VirtReg U : I.Uses)
        Live.set(U.Id);
    }
  }
  for (LiveRange &LR : Set.Ranges)
    std::sort(LR.CrossedCalls.begin(), LR.CrossedCalls.end());

  double CalleeSaveCost = 2.0 * Freq.entryFrequency(F);
  for (LiveRange &LR : Set.Ranges)
    LR.CalleeSaveCost = CalleeSaveCost;

  return Set;
}
