//===- regalloc/GraphReconstructor.cpp ------------------------------------===//

#include "regalloc/GraphReconstructor.h"

#include "analysis/Frequency.h"
#include "regalloc/AllocationScratch.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

bool GraphReconstructor::hasNoCopies(const Function &F) {
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      if (I.isMove())
        return false;
  return true;
}

void GraphReconstructor::apply(const Function &F, const FrequencyInfo &Freq,
                               Liveness &LV, LiveRangeSet &LRS,
                               InterferenceGraph &IG,
                               const std::vector<unsigned> &SpilledRangeIds,
                               unsigned OldNumVRegs,
                               AllocationScratch *Scratch) {
  const unsigned OldNumRanges = LRS.numRanges();
  const unsigned NewNumVRegs = F.numVRegs();

  std::vector<bool> Spilled(OldNumRanges, false);
  for (unsigned Id : SpilledRangeIds)
    Spilled[Id] = true;

  // --- Liveness: spilled registers vanish; temporaries are block-local ----
  for (unsigned V = 0; V < OldNumVRegs; ++V) {
    int RangeId = LRS.rangeIdOf(VirtReg(V));
    if (RangeId >= 0 && Spilled[static_cast<unsigned>(RangeId)])
      LV.eraseRegister(VirtReg(V));
  }
  LV.growUniverse(NewNumVRegs);

  // --- Live ranges: drop spilled, renumber survivors, append temps --------
  std::vector<int> NewIdOfOld(OldNumRanges, -1);
  std::vector<LiveRange> NewRanges;
  NewRanges.reserve(OldNumRanges);
  for (unsigned Id = 0; Id < OldNumRanges; ++Id) {
    if (Spilled[Id])
      continue;
    NewIdOfOld[Id] = static_cast<int>(NewRanges.size());
    LiveRange LR = LRS.range(Id);
    LR.Id = static_cast<unsigned>(NewRanges.size());
    // The preference decision annotates ranges during each round; a fresh
    // round starts with clean annotations.
    LR.ForcedCallerPref = false;
    NewRanges.push_back(std::move(LR));
  }

  // One singleton range per reload temporary, metrics from the code.
  std::vector<int> TempRangeOf(NewNumVRegs - OldNumVRegs, -1);
  auto TempIndex = [&](VirtReg R) {
    return static_cast<unsigned>(R.Id - OldNumVRegs);
  };
  for (const auto &BB : F.blocks()) {
    double BlockFreq = Freq.blockFrequency(*BB);
    for (const Instruction &I : BB->instructions()) {
      auto Touch = [&](VirtReg R) {
        if (R.Id < OldNumVRegs)
          return;
        int &Slot = TempRangeOf[TempIndex(R)];
        if (Slot < 0) {
          LiveRange Temp;
          Temp.Id = static_cast<unsigned>(NewRanges.size());
          Temp.Root = R;
          Temp.Bank = F.vregBank(R);
          Temp.CalleeSaveCost = 2.0 * Freq.entryFrequency(F);
          Temp.NumBlocks = 1;
          Temp.NoSpill = true;
          Slot = static_cast<int>(Temp.Id);
          NewRanges.push_back(std::move(Temp));
        }
        LiveRange &Temp = NewRanges[static_cast<size_t>(Slot)];
        Temp.WeightedRefs += BlockFreq;
        ++Temp.NumRefs;
      };
      for (VirtReg D : I.Defs)
        Touch(D);
      for (VirtReg U : I.Uses)
        Touch(U);
    }
  }

  LiveRangeSet NewLRS;
  for (LiveRange &LR : NewRanges)
    NewLRS.addRange(std::move(LR));
  NewLRS.resizeMapping(NewNumVRegs);
  for (unsigned V = 0; V < OldNumVRegs; ++V) {
    int OldRange = LRS.rangeIdOf(VirtReg(V));
    NewLRS.mapRegister(VirtReg(V),
                       OldRange < 0
                           ? -1
                           : NewIdOfOld[static_cast<unsigned>(OldRange)]);
  }
  for (unsigned V = OldNumVRegs; V < NewNumVRegs; ++V)
    NewLRS.mapRegister(VirtReg(V), TempRangeOf[TempIndex(VirtReg(V))]);

  // Call sites: spill code shifted instruction positions but never
  // reordered calls, so re-enumerating preserves the ids that survivors'
  // CrossedCalls lists reference.
  unsigned CallId = 0;
  for (const auto &BB : F.blocks()) {
    const auto &Insts = BB->instructions();
    for (unsigned Idx = 0; Idx < Insts.size(); ++Idx) {
      if (!Insts[Idx].isCall())
        continue;
      CallSite CS;
      CS.Id = CallId++;
      CS.Block = BB.get();
      CS.InstIndex = Idx;
      CS.Freq = Freq.blockFrequency(*BB);
      CS.Inst = &Insts[Idx];
      NewLRS.addCallSite(CS);
    }
  }

  // --- Interference graph: copy surviving edges, rescan touched blocks ----
  // The new graph keeps the old graph's representation policy, so a forced
  // Dense/Sparse choice survives spill rounds.
  AllocationScratch LocalScratch;
  AllocationScratch &S = Scratch ? *Scratch : LocalScratch;
  InterferenceGraph NewIG(NewLRS.numRanges(), IG.policy(), &S);
  for (unsigned A = 0; A < OldNumRanges; ++A) {
    if (NewIdOfOld[A] < 0)
      continue;
    for (unsigned B : IG.neighbors(A)) {
      if (B <= A || NewIdOfOld[B] < 0)
        continue;
      NewIG.addEdge(static_cast<unsigned>(NewIdOfOld[A]),
                    static_cast<unsigned>(NewIdOfOld[B]));
    }
  }
  // Blocks referencing a temporary are the only ones with new edges
  // (everything else kept its liveness and instructions).
  for (const auto &BB : F.blocks()) {
    bool Touched = false;
    for (const Instruction &I : BB->instructions()) {
      for (VirtReg D : I.Defs)
        Touched |= D.Id >= OldNumVRegs;
      for (VirtReg U : I.Uses)
        Touched |= U.Id >= OldNumVRegs;
      if (Touched)
        break;
    }
    if (Touched)
      InterferenceGraph::scanBlockForEdges(F, *BB, LV.liveOut(*BB), NewLRS,
                                           NewIG, &S);
  }
  NewIG.finalize(&S);

  LRS = std::move(NewLRS);
  IG.recycle(S);
  IG = std::move(NewIG);
}

#ifdef CCRA_RECONSTRUCT_SELFCHECK
#include "analysis/Liveness.h"
#include "regalloc/VRegClasses.h"
#include <cstdio>
namespace ccra {
void reconstructSelfCheck(const Function &F, const FrequencyInfo &Freq,
                          const Liveness &LV, const LiveRangeSet &LRS,
                          const InterferenceGraph &IG) {
  VRegClasses Classes(F.numVRegs());
  Liveness FreshLV = Liveness::compute(F);
  LiveRangeSet FreshLRS = LiveRangeSet::build(F, FreshLV, Freq, Classes);
  if (FreshLRS.numRanges() != LRS.numRanges()) {
    std::fprintf(stderr, "SELF-CHECK: range count %u vs %u\n", LRS.numRanges(), FreshLRS.numRanges());
    return;
  }
  for (unsigned I = 0; I < LRS.numRanges(); ++I) {
    const LiveRange &A = LRS.range(I);
    const LiveRange &B = FreshLRS.range(I);
    if (A.Root != B.Root) std::fprintf(stderr, "SELF-CHECK %u: root %u vs %u\n", I, A.Root.Id, B.Root.Id);
    if (A.WeightedRefs != B.WeightedRefs) std::fprintf(stderr, "SELF-CHECK %u(v%u): refs %f vs %f\n", I, A.Root.Id, A.WeightedRefs, B.WeightedRefs);
    if (A.CallerSaveCost != B.CallerSaveCost) std::fprintf(stderr, "SELF-CHECK %u(v%u): callerC %f vs %f\n", I, A.Root.Id, A.CallerSaveCost, B.CallerSaveCost);
    if (A.CrossedCalls != B.CrossedCalls) std::fprintf(stderr, "SELF-CHECK %u(v%u): crossed %zu vs %zu\n", I, A.Root.Id, A.CrossedCalls.size(), B.CrossedCalls.size());
    if (A.NoSpill != B.NoSpill) std::fprintf(stderr, "SELF-CHECK %u(v%u): nospill %d vs %d\n", I, A.Root.Id, A.NoSpill, B.NoSpill);
    if (A.NumBlocks != B.NumBlocks) std::fprintf(stderr, "SELF-CHECK %u(v%u): blocks %u vs %u\n", I, A.Root.Id, A.NumBlocks, B.NumBlocks);
  }
  InterferenceGraph FreshIG = InterferenceGraph::build(F, FreshLV, FreshLRS);
  for (unsigned I = 0; I < LRS.numRanges(); ++I)
    if (IG.degree(I) != FreshIG.degree(I))
      std::fprintf(stderr, "SELF-CHECK %u(v%u): degree %u vs %u\n", I, LRS.range(I).Root.Id, IG.degree(I), FreshIG.degree(I));
  for (const auto &BB : F.blocks()) {
    if (!(LV.liveOut(*BB) == FreshLV.liveOut(*BB)))
      std::fprintf(stderr, "SELF-CHECK: liveOut differs in %s\n", BB->getName().c_str());
  }
}
} // namespace ccra
#endif
