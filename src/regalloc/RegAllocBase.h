//===- regalloc/RegAllocBase.h - Allocator interface ------------*- C++ -*-===//
///
/// \file
/// The interface one coloring approach implements inside the shared
/// framework: given a round's context (live ranges + interference graph),
/// decide a storage location for every live range. The driver
/// (AllocationEngine) handles spill-code insertion, graph reconstruction,
/// retries, overhead materialization, and cost accounting.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_REGALLOCBASE_H
#define CCRA_REGALLOC_REGALLOCBASE_H

#include "regalloc/AllocationContext.h"

namespace ccra {

class RegAllocBase {
public:
  virtual ~RegAllocBase() = default;

  /// Runs color ordering + color assignment for one round. Must fill
  /// \p RR.Assignment with one Location per live range; Memory entries are
  /// spill decisions the driver will materialize.
  virtual void runRound(AllocationContext &Ctx, RoundResult &RR) = 0;

  virtual const char *name() const = 0;
};

} // namespace ccra

#endif // CCRA_REGALLOC_REGALLOCBASE_H
