//===- regalloc/Coalescer.cpp ---------------------------------------------===//

#include "regalloc/Coalescer.h"

#include "regalloc/InterferenceGraph.h"
#include "regalloc/LiveRange.h"
#include "regalloc/VRegClasses.h"
#include "target/MachineDescription.h"

#include <cassert>

using namespace ccra;

namespace {

/// Briggs test: merging is safe if the combined node has fewer than N
/// neighbors whose degree is at least N.
bool conservativelySafe(const InterferenceGraph &IG, const LiveRangeSet &LRS,
                        unsigned A, unsigned B, unsigned N) {
  unsigned Significant = 0;
  auto CountFrom = [&](unsigned Node, unsigned Other) {
    for (unsigned Neighbor : IG.neighbors(Node)) {
      if (Neighbor == Other)
        continue;
      // A shared neighbor is counted twice, which only makes the test more
      // conservative (Briggs' original behaves the same with sorted merge;
      // double counting errs on the safe side).
      unsigned Degree = IG.degree(Neighbor);
      if (IG.interfere(Neighbor, A) && IG.interfere(Neighbor, B))
        Degree -= 1; // It will lose one edge when A and B merge.
      if (Degree >= N)
        ++Significant;
    }
  };
  (void)LRS;
  CountFrom(A, B);
  CountFrom(B, A);
  return Significant < N;
}

} // namespace

CoalesceStats Coalescer::run(Function &F, VRegClasses &Classes,
                             const MachineDescription &MD,
                             const FrequencyInfo &Freq, Liveness &LV,
                             bool Aggressive) {
  CoalesceStats Stats;
  constexpr unsigned MaxPasses = 64;

  for (unsigned Pass = 0; Pass < MaxPasses; ++Pass) {
    ++Stats.Passes;
    Classes.grow(F.numVRegs());
    // Canonicalize operands to their class representative so the code
    // never references a register whose defining copy was deleted (the IR
    // stays verifier-clean, and printed code reads naturally).
    for (const auto &BB : F.blocks())
      for (Instruction &I : BB->instructions()) {
        for (VirtReg &R : I.Defs)
          R = Classes.find(R);
        for (VirtReg &R : I.Uses)
          R = Classes.find(R);
      }
    LV = Liveness::compute(F);
    LiveRangeSet LRS = LiveRangeSet::build(F, LV, Freq, Classes);
    InterferenceGraph IG = InterferenceGraph::build(F, LV, LRS);

    // One merge per live range per pass: after a merge the graph is stale
    // for the nodes involved, so further copies touching them wait for the
    // next pass.
    std::vector<bool> Touched(LRS.numRanges(), false);
    bool Changed = false;

    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      std::vector<Instruction> Kept;
      Kept.reserve(Insts.size());
      for (Instruction &I : Insts) {
        if (!I.isMove()) {
          Kept.push_back(std::move(I));
          continue;
        }
        int SrcRange = LRS.rangeIdOf(I.moveSource());
        int DstRange = LRS.rangeIdOf(I.moveDest());
        assert(SrcRange >= 0 && DstRange >= 0 && "move operands unmapped");
        if (SrcRange == DstRange) {
          // Already one class: the copy is dead — delete it.
          Changed = true;
          continue;
        }
        unsigned Src = static_cast<unsigned>(SrcRange);
        unsigned Dst = static_cast<unsigned>(DstRange);
        RegBank Bank = LRS.range(Src).Bank;
        unsigned N = MD.numRegs(Bank);
        bool CanMerge = !Touched[Src] && !Touched[Dst] &&
                        LRS.range(Dst).Bank == Bank &&
                        !IG.interfere(Src, Dst) &&
                        (Aggressive || conservativelySafe(IG, LRS, Src, Dst, N));
        if (!CanMerge) {
          Kept.push_back(std::move(I));
          continue;
        }
        Classes.merge(LRS.range(Src).Root, LRS.range(Dst).Root);
        Touched[Src] = Touched[Dst] = true;
        ++Stats.CoalescedMoves;
        Changed = true; // The copy is dropped (not kept).
      }
      Insts = std::move(Kept);
    }

    if (!Changed)
      return Stats; // LV matches the final (unmodified) code.
  }
  // Fixpoint not reached within the cap (should not happen: every pass
  // with changes removes an instruction or a class). Recompute liveness so
  // the caller still sees a consistent view.
  LV = Liveness::compute(F);
  return Stats;
}
