//===- regalloc/Coalescer.cpp ---------------------------------------------===//
//
// Incremental-liveness invariant maintained across passes: at the top of
// every pass, LV (when valid) is the exact dataflow solution for the code
// *as the canonicalization sweep is about to name it*. Pass 1 gets this
// from the seed (classes are identity at round 1, and later rounds hand
// code that is already canonical); every later pass gets it from the
// previous pass's maintenance:
//
//  1. Renaming. A pass's merges form disjoint pairs (one merge per live
//     range per pass), each pair certified non-interfering by the graph.
//     Folding loser into winner (Liveness::renameRegister) yields the
//     exact solution for the renamed code with the merged copies still in
//     place — the classic coalescing result: for non-interfering
//     copy-related ranges, the merged register's liveness is the pointwise
//     union.
//  2. Deletion. Every deleted copy is `r <- r` in the renamed view. Block
//     sets can only change if the deletion changed the block's transfer
//     function f(out) = UE | (out & ~Kill), so for every affected block
//     and register we compare (UE, Kill) with and without the deleted
//     instructions — computed *after* the whole sweep, under the final
//     class map, so merges later in the pass are reflected. Functions are
//     equivalent iff UE is unchanged and (UE = 1 or Kill unchanged). The
//     rare register that fails gets an exact single-register re-solve
//     (Liveness::recomputeRegister); everything else keeps the renamed
//     solution bit for bit.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coalescer.h"

#include "regalloc/AllocationScratch.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/LiveRange.h"
#include "regalloc/VRegClasses.h"
#include "support/Telemetry.h"
#include "target/MachineDescription.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

namespace {

/// Briggs test: merging is safe if the combined node has fewer than N
/// neighbors whose degree is at least N.
bool conservativelySafe(const InterferenceGraph &IG, const LiveRangeSet &LRS,
                        unsigned A, unsigned B, unsigned N) {
  unsigned Significant = 0;
  auto CountFrom = [&](unsigned Node, unsigned Other) {
    for (unsigned Neighbor : IG.neighbors(Node)) {
      if (Neighbor == Other)
        continue;
      // A shared neighbor is counted twice, which only makes the test more
      // conservative (Briggs' original behaves the same with sorted merge;
      // double counting errs on the safe side).
      unsigned Degree = IG.degree(Neighbor);
      if (IG.interfere(Neighbor, A) && IG.interfere(Neighbor, B))
        Degree -= 1; // It will lose one edge when A and B merge.
      if (Degree >= N)
        ++Significant;
    }
  };
  (void)LRS;
  CountFrom(A, B);
  CountFrom(B, A);
  return Significant < N;
}

struct MergePair {
  VirtReg Winner;
  VirtReg Loser;
};

/// Rewrites every operand of \p F to its class representative.
void canonicalize(Function &F, const VRegClasses &Classes) {
  for (const auto &BB : F.blocks())
    for (Instruction &I : BB->instructions()) {
      for (VirtReg &R : I.Defs)
        R = Classes.find(R);
      for (VirtReg &R : I.Uses)
        R = Classes.find(R);
    }
}

} // namespace

CoalesceStats Coalescer::run(Function &F, VRegClasses &Classes,
                             const MachineDescription &MD,
                             const FrequencyInfo &Freq, Liveness &LV,
                             const CoalesceRequest &Req, LiveRangeSet &OutLRS,
                             InterferenceGraph &OutIG) {
  CoalesceStats Stats;
  constexpr unsigned MaxPasses = 64;
  Telemetry *T = Req.T;

  AllocationScratch LocalScratch;
  AllocationScratch &S = Req.Scratch ? *Req.Scratch : LocalScratch;

  bool LVValid = Req.SeededLV;

  // Hoisted per-pass work lists (cleared each pass, capacity kept).
  std::vector<std::size_t> BlockStart;
  std::vector<MergePair> Merges;
  std::vector<VirtReg> BlockReps, StaleRegs;

  for (unsigned Pass = 0; Pass < MaxPasses; ++Pass) {
    ++Stats.Passes;
    Classes.grow(F.numVRegs());
    // Canonicalize operands to their class representative so the code
    // never references a register whose defining copy was deleted (the IR
    // stays verifier-clean, and printed code reads naturally).
    canonicalize(F, Classes);
    if (LVValid) {
      ++Stats.IncrementalLVUpdates;
    } else {
      LV = Liveness::compute(F);
      ++Stats.LivenessComputes;
      LVValid = true;
    }
    LiveRangeSet LRS;
    {
      Telemetry::ScopedTimer Timer(T, telemetry::BuildRangesPhase);
      LRS = LiveRangeSet::build(F, LV, Freq, Classes);
    }
    InterferenceGraph IG;
    {
      Telemetry::ScopedTimer Timer(T, telemetry::BuildGraphPhase);
      IG = InterferenceGraph::build(F, LV, LRS, &S, Req.GraphMode);
    }

    // --- Phase 1: decide merges and deletions (code untouched) ------------
    // One merge per live range per pass: after a merge the graph is stale
    // for the nodes involved, so further copies touching them wait for the
    // next pass.
    std::vector<char> &Touched = S.touchedRanges(LRS.numRanges());
    std::size_t TotalInsts = 0;
    BlockStart.clear();
    for (const auto &BB : F.blocks()) {
      BlockStart.push_back(TotalInsts);
      TotalInsts += BB->instructions().size();
    }
    std::vector<char> &Deleted = S.deleteFlags(TotalInsts);
    Merges.clear();
    bool Changed = false;

    std::size_t BlockIdx = 0;
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      const std::size_t Base = BlockStart[BlockIdx++];
      for (std::size_t Idx = 0; Idx < Insts.size(); ++Idx) {
        const Instruction &I = Insts[Idx];
        if (!I.isMove())
          continue;
        int SrcRange = LRS.rangeIdOf(I.moveSource());
        int DstRange = LRS.rangeIdOf(I.moveDest());
        assert(SrcRange >= 0 && DstRange >= 0 && "move operands unmapped");
        if (SrcRange == DstRange) {
          // Already one class: the copy is dead — delete it.
          Deleted[Base + Idx] = 1;
          Changed = true;
          continue;
        }
        unsigned Src = static_cast<unsigned>(SrcRange);
        unsigned Dst = static_cast<unsigned>(DstRange);
        RegBank Bank = LRS.range(Src).Bank;
        unsigned N = MD.numRegs(Bank);
        bool CanMerge =
            !Touched[Src] && !Touched[Dst] && LRS.range(Dst).Bank == Bank &&
            !IG.interfere(Src, Dst) &&
            (Req.Aggressive || conservativelySafe(IG, LRS, Src, Dst, N));
        if (!CanMerge)
          continue;
        VirtReg RootS = LRS.range(Src).Root;
        VirtReg RootD = LRS.range(Dst).Root;
        VirtReg Winner = Classes.merge(RootS, RootD);
        if (Req.IncrementalLiveness)
          Merges.push_back({Winner, Winner == RootS ? RootD : RootS});
        Touched[Src] = Touched[Dst] = 1;
        ++Stats.CoalescedMoves;
        Deleted[Base + Idx] = 1; // The copy is dropped.
        Changed = true;
      }
    }

    if (!Changed) {
      // LV, LRS and IG all describe the final (unmodified) code.
      OutLRS = std::move(LRS);
      OutIG = std::move(IG);
      return Stats;
    }

    // --- Phase 2: certify transfer functions, then erase ------------------
    StaleRegs.clear();
    BlockIdx = 0;
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      const std::size_t Base = BlockStart[BlockIdx++];
      bool AnyDeleted = false;
      for (std::size_t Idx = 0; Idx < Insts.size(); ++Idx)
        AnyDeleted |= Deleted[Base + Idx] != 0;
      if (!AnyDeleted)
        continue;

      if (Req.IncrementalLiveness) {
        // The registers a deletion here can affect: the (final) class
        // representative of each deleted copy.
        BlockReps.clear();
        for (std::size_t Idx = 0; Idx < Insts.size(); ++Idx) {
          if (!Deleted[Base + Idx])
            continue;
          VirtReg Rep = Classes.find(Insts[Idx].moveDest());
          if (std::find(BlockReps.begin(), BlockReps.end(), Rep) ==
              BlockReps.end())
            BlockReps.push_back(Rep);
        }
        for (VirtReg Rep : BlockReps) {
          bool DefWith = false, DefWithout = false;
          bool UEWith = false, UEWithout = false;
          bool KillWith = false, KillWithout = false;
          for (std::size_t Idx = 0; Idx < Insts.size(); ++Idx) {
            const Instruction &I = Insts[Idx];
            bool Del = Deleted[Base + Idx] != 0;
            for (VirtReg U : I.Uses)
              if (Classes.find(U) == Rep) {
                if (!DefWith)
                  UEWith = true;
                if (!Del && !DefWithout)
                  UEWithout = true;
              }
            for (VirtReg D : I.Defs)
              if (Classes.find(D) == Rep) {
                KillWith = true;
                DefWith = true;
                if (!Del) {
                  KillWithout = true;
                  DefWithout = true;
                }
              }
          }
          bool SameTransfer =
              UEWith == UEWithout && (UEWith || KillWith == KillWithout);
          if (!SameTransfer &&
              std::find(StaleRegs.begin(), StaleRegs.end(), Rep) ==
                  StaleRegs.end())
            StaleRegs.push_back(Rep);
        }
      }

      std::size_t W = 0;
      for (std::size_t Idx = 0; Idx < Insts.size(); ++Idx)
        if (!Deleted[Base + Idx]) {
          if (W != Idx)
            Insts[W] = std::move(Insts[Idx]);
          ++W;
        }
      Insts.erase(Insts.begin() + static_cast<std::ptrdiff_t>(W),
                  Insts.end());
    }

    // --- Liveness maintenance for the next pass ---------------------------
    if (Req.IncrementalLiveness) {
      for (const MergePair &M : Merges)
        LV.renameRegister(M.Loser, M.Winner);
      if (!StaleRegs.empty()) {
        std::vector<unsigned char> UE(F.numBlocks()), Kill(F.numBlocks());
        for (VirtReg Rep : StaleRegs) {
          std::fill(UE.begin(), UE.end(), 0);
          std::fill(Kill.begin(), Kill.end(), 0);
          for (const auto &BB : F.blocks()) {
            bool DefSeen = false, UEBit = false, KillBit = false;
            for (const Instruction &I : BB->instructions()) {
              for (VirtReg U : I.Uses)
                if (!DefSeen && Classes.find(U) == Rep)
                  UEBit = true;
              for (VirtReg D : I.Defs)
                if (Classes.find(D) == Rep) {
                  KillBit = true;
                  DefSeen = true;
                }
            }
            UE[BB->getId()] = UEBit;
            Kill[BB->getId()] = KillBit;
          }
          LV.recomputeRegister(F, Rep, UE, Kill);
        }
      }
#ifdef CCRA_COALESCER_SELFCHECK
      {
        Function &Check = F;
        VRegClasses &CheckClasses = Classes;
        // The maintained solution must equal a fresh run on the code as
        // the next pass will name it.
        canonicalize(Check, CheckClasses);
        assert(LV == Liveness::compute(Check) &&
               "incremental liveness diverged from fresh compute");
      }
#endif
    } else {
      LVValid = false;
    }

    // This pass's graph is stale (code changed); give its buffers back to
    // the arena for the next pass's build.
    IG.recycle(S);
  }

  // Fixpoint not reached within the cap (should not happen: every pass
  // with changes removes an instruction or a class). Rebuild everything so
  // the caller still sees a consistent view.
  Classes.grow(F.numVRegs());
  canonicalize(F, Classes);
  LV = Liveness::compute(F);
  ++Stats.LivenessComputes;
  OutLRS = LiveRangeSet::build(F, LV, Freq, Classes);
  OutIG = InterferenceGraph::build(F, LV, OutLRS, &S, Req.GraphMode);
  return Stats;
}

CoalesceStats Coalescer::run(Function &F, VRegClasses &Classes,
                             const MachineDescription &MD,
                             const FrequencyInfo &Freq, Liveness &LV,
                             bool Aggressive) {
  CoalesceRequest Req;
  Req.Aggressive = Aggressive;
  Req.IncrementalLiveness = false;
  LiveRangeSet LRS;
  InterferenceGraph IG;
  return run(F, Classes, MD, Freq, LV, Req, LRS, IG);
}
