//===- regalloc/PriorityAllocator.h - Chow-style coloring -------*- C++ -*-===//
///
/// \file
/// Priority-based coloring (§9) without live-range splitting: live ranges
/// are colored in descending priority order, where
///
///   priority(lr) = max(benefitCaller(lr), benefitCallee(lr)) / size(lr)
///
/// and size(lr) is the number of basic blocks the range spans. A live range
/// with no legal color (or a negative best benefit) is spilled. The three
/// color-ordering heuristics of §9.1 are selectable: peel unconstrained
/// nodes first (Chow's original), peel them in priority order, or sort
/// everything purely by priority (the paper's pick).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_PRIORITYALLOCATOR_H
#define CCRA_REGALLOC_PRIORITYALLOCATOR_H

#include "regalloc/AllocatorOptions.h"
#include "regalloc/RegAllocBase.h"

namespace ccra {

class PriorityAllocator : public RegAllocBase {
public:
  explicit PriorityAllocator(const AllocatorOptions &Opts) : Opts(Opts) {}

  void runRound(AllocationContext &Ctx, RoundResult &RR) override;
  const char *name() const override { return "priority"; }

  /// Chow's priority function (exposed for tests and benches).
  static double priorityOf(const LiveRange &LR);

private:
  AllocatorOptions Opts;
};

} // namespace ccra

#endif // CCRA_REGALLOC_PRIORITYALLOCATOR_H
