//===- regalloc/PriorityAllocator.cpp -------------------------------------===//

#include "regalloc/PriorityAllocator.h"

#include "regalloc/AssignmentState.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace ccra;

double PriorityAllocator::priorityOf(const LiveRange &LR) {
  if (LR.NoSpill)
    return std::numeric_limits<double>::infinity();
  double Best = std::max(LR.benefitCaller(), LR.benefitCallee());
  return Best / static_cast<double>(std::max(LR.NumBlocks, 1u));
}

void PriorityAllocator::runRound(AllocationContext &Ctx, RoundResult &RR) {
  const LiveRangeSet &LRS = Ctx.LRS;
  const InterferenceGraph &IG = Ctx.IG;
  unsigned NumNodes = IG.numNodes();

  std::vector<double> Priority(NumNodes);
  for (unsigned I = 0; I < NumNodes; ++I)
    Priority[I] = priorityOf(LRS.range(I));

  // Ascending priority comparison with id tie-break (stack is built bottom
  // to top, so ascending pushes leave the highest priority on top).
  auto ByAscendingPriority = [&](unsigned A, unsigned B) {
    if (Priority[A] != Priority[B])
      return Priority[A] < Priority[B];
    return A < B;
  };

  std::vector<unsigned> Stack;
  Stack.reserve(NumNodes);

  if (Opts.Ordering == PriorityOrdering::FullSort) {
    for (unsigned I = 0; I < NumNodes; ++I)
      Stack.push_back(I);
    std::sort(Stack.begin(), Stack.end(), ByAscendingPriority);
  } else {
    // Peel unconstrained nodes (cascading, like simplification), then push
    // the remaining constrained nodes in ascending priority order.
    std::vector<unsigned> Degree(NumNodes);
    std::vector<bool> Active(NumNodes, true);
    for (unsigned I = 0; I < NumNodes; ++I)
      Degree[I] = IG.degree(I);

    std::vector<unsigned> Peeled;
    bool SortPeels = Opts.Ordering == PriorityOrdering::SortUnconstrained;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      int Pick = -1;
      for (unsigned I = 0; I < NumNodes; ++I) {
        if (!Active[I] || Degree[I] >= Ctx.MD.numRegs(LRS.range(I).Bank))
          continue;
        if (Pick < 0 ||
            (SortPeels
                 ? ByAscendingPriority(I, static_cast<unsigned>(Pick))
                 : I < static_cast<unsigned>(Pick)))
          Pick = static_cast<int>(I);
      }
      if (Pick >= 0) {
        unsigned Node = static_cast<unsigned>(Pick);
        Peeled.push_back(Node);
        Active[Node] = false;
        for (unsigned Neighbor : IG.neighbors(Node))
          if (Active[Neighbor])
            --Degree[Neighbor];
        Progress = true;
      }
    }
    std::vector<unsigned> Constrained;
    for (unsigned I = 0; I < NumNodes; ++I)
      if (Active[I])
        Constrained.push_back(I);
    std::sort(Constrained.begin(), Constrained.end(), ByAscendingPriority);

    // Unconstrained nodes can always find a color, so they go to the
    // bottom of the stack (colored last); constrained nodes sit above them
    // in priority order.
    Stack = std::move(Peeled);
    Stack.insert(Stack.end(), Constrained.begin(), Constrained.end());
  }

  AssignmentState State(Ctx);
  for (auto It = Stack.rbegin(), E = Stack.rend(); It != E; ++It) {
    unsigned Node = *It;
    const LiveRange &LR = LRS.range(Node);
    // Chow's cost-driven decision: a live range whose best benefit is
    // negative is cheaper in memory than in any register.
    if (!LR.NoSpill &&
        std::max(LR.benefitCaller(), LR.benefitCallee()) < 0.0) {
      State.spill(Node);
      ++RR.VoluntarySpills;
      continue;
    }
    RegKindPref Pref = LR.benefitCallee() > LR.benefitCaller()
                           ? RegKindPref::Callee
                           : RegKindPref::Caller;
    PhysReg Reg = State.pickRegister(Node, Pref);
    if (Reg.isValid()) {
      State.assign(Node, Reg);
      continue;
    }
    if (LR.NoSpill) {
      Reg = State.stealRegisterFor(Node);
      assert(Reg.isValid() && "cannot color unspillable reload temp");
      State.assign(Node, Reg);
      continue;
    }
    State.spill(Node); // Out of colors: spill, never split.
  }
  RR.Assignment = State.takeAssignment();
}
