//===- regalloc/ChaitinAllocator.cpp --------------------------------------===//

#include "regalloc/ChaitinAllocator.h"

#include "regalloc/Simplifier.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace ccra;

void ChaitinAllocator::runRound(AllocationContext &Ctx, RoundResult &RR) {
  preColorOrdering(Ctx);

  Simplifier::KeyFn Key;
  if (hasSimplifyKey())
    Key = [this, &Ctx](const LiveRange &LR) { return simplifyKey(Ctx, LR); };
  SimplifyResult Simp;
  {
    Telemetry::ScopedTimer Timer(Ctx.T, telemetry::AllocSimplifyPhase);
    Simp = Opts.LegacySimplifier
               ? Simplifier::runReference(Ctx, Opts.Optimistic, Key)
               : Simplifier::run(Ctx, Opts.Optimistic, Key);
  }

  AssignmentState State(Ctx);
  for (PhysReg Reg : Ctx.RefusedCalleeRegs)
    State.lockRegister(Reg);
  for (unsigned Node : Simp.SpilledNodes)
    State.spill(Node);

  // Pop the color stack: top of stack (back) is colored first.
  for (auto It = Simp.Stack.rbegin(), E = Simp.Stack.rend(); It != E; ++It) {
    unsigned Node = *It;
    const LiveRange &LR = Ctx.LRS.range(Node);
    PhysReg Reg = State.pickRegister(Node, preference(Ctx, Node, LR, State));
    if (!Reg.isValid()) {
      // Only nodes pushed while simplification was blocked can get here
      // (Chaitin's guarantee covers the rest).
      assert(Simp.PushedOptimistically[Node] &&
             "guaranteed-colorable node found no color");
      if (LR.NoSpill) {
        Reg = State.stealRegisterFor(Node);
        assert(Reg.isValid() && "cannot color unspillable reload temp");
        State.assign(Node, Reg);
      } else {
        State.spill(Node);
      }
      continue;
    }
    if (!LR.NoSpill && shouldSpillInstead(Ctx, LR, Reg, State)) {
      State.spill(Node);
      ++RR.VoluntarySpills;
      continue;
    }
    State.assign(Node, Reg);
  }

  postAssignment(Ctx, State, RR);
  RR.Assignment = State.takeAssignment();
}
