//===- regalloc/OverheadMaterializer.h - Save/restore insertion -*- C++ -*-===//
///
/// \file
/// After allocation converges, materializes the call-cost overhead as real
/// instructions (paper §3): Save/Restore of caller-save registers around
/// every call they are live across, and Save/Restore of each paid
/// callee-save register at function entry/exit. Spill code was already
/// inserted during the rounds; together the tagged overhead instructions
/// let the cost accounting read the breakdown straight off the code.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_OVERHEADMATERIALIZER_H
#define CCRA_REGALLOC_OVERHEADMATERIALIZER_H

#include "regalloc/AllocationContext.h"

#include <vector>

namespace ccra {

class OverheadMaterializer {
public:
  struct Stats {
    unsigned CalleeRegsPaid = 0;
    unsigned CallerSavesInserted = 0; ///< Save+Restore instruction count.
    unsigned CalleeSavesInserted = 0;
  };

  /// Determines the callee-save registers whose entry/exit save must be
  /// paid: the forced set from \p RR (CBH) or, by default, those used by
  /// any live range.
  static std::vector<PhysReg> paidCalleeRegs(const AllocationContext &Ctx,
                                             const RoundResult &RR);

  /// Inserts the Save/Restore instructions. \p Ctx.LV must describe the
  /// final code (the driver guarantees this).
  static Stats run(AllocationContext &Ctx, const RoundResult &RR);
};

} // namespace ccra

#endif // CCRA_REGALLOC_OVERHEADMATERIALIZER_H
